/// \file bench_ablation_platoon_size.cpp
/// Future-work study (paper §6): how the loss reduction scales with the
/// number of cooperating cars. Sweeps platoon size 1..6 and prints, for
/// the lead car, losses before / after cooperation and the joint
/// (virtual-car) bound. Expected: the joint bound and realised after-coop
/// losses fall monotonically (with diminishing returns) as the platoon
/// grows; a lone car gains nothing.

#include <iomanip>
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace vanet;
  const Flags flags(argc, argv);
  bench::printHeader("Ablation: platoon size sweep",
                     "Morillo-Pozo et al., ICDCS'08 W, §6 (future work)");

  std::cout << std::left << std::setw(8) << "cars" << std::right
            << std::setw(14) << "car1 bef." << std::setw(14) << "car1 aft."
            << std::setw(14) << "car1 joint" << std::setw(16)
            << "CoopData/round" << "\n";

  const int maxCars = flags.getInt("max-cars", 6);
  for (int cars = 1; cars <= maxCars; ++cars) {
    analysis::UrbanExperimentConfig config =
        bench::urbanConfigFromFlags(flags);
    config.rounds = flags.getInt("rounds", 15);
    config.scenario.carCount = cars;
    analysis::UrbanExperiment experiment(config);
    const auto result = experiment.run();
    const auto& car1 = result.table1.rows.front();
    std::cout << std::left << std::setw(8) << cars << std::right << std::fixed
              << std::setprecision(1) << std::setw(13)
              << car1.pctLostBefore.mean() << "%" << std::setw(13)
              << car1.pctLostAfter.mean() << "%" << std::setw(13)
              << car1.pctLostJoint.mean() << "%" << std::setw(16)
              << result.totals.coopDataPerRound.mean() << "\n";
  }
  std::cout << "\nexpected shape: after-coop and joint columns fall with"
               " platoon size, flattening after 3-4 cars\n";
  return 0;
}
