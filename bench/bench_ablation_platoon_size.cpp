/// \file bench_ablation_platoon_size.cpp
/// Future-work study (paper §6): how the loss reduction scales with the
/// number of cooperating cars. Sweeps platoon size 1..6 and prints, for
/// the lead car, losses before / after cooperation and the joint
/// (virtual-car) bound. Expected: the joint bound and realised after-coop
/// losses fall monotonically (with diminishing returns) as the platoon
/// grows; a lone car gains nothing.
///
/// The sweep is one campaign-engine grid (cars axis x --repl
/// replications) executed in parallel on --threads workers.

#include <iomanip>
#include <iostream>
#include <vector>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace vanet;
  const Flags flags(argc, argv);
  bench::printHeader("Ablation: platoon size sweep",
                     "Morillo-Pozo et al., ICDCS'08 W, §6 (future work)");

  runner::CampaignConfig campaign = bench::campaignFromFlags(
      flags, "urban", /*defaultRounds=*/5, /*defaultReplications=*/3);
  bench::applyUrbanFlags(flags, campaign.base);
  std::vector<double> sizes;
  for (int cars = 1; cars <= flags.getInt("max-cars", 6); ++cars) {
    sizes.push_back(cars);
  }
  campaign.grid.add("cars", sizes);
  const runner::CampaignResult result = runner::runCampaign(campaign);

  std::cout << std::left << std::setw(8) << "cars" << std::right
            << std::setw(14) << "car1 bef." << std::setw(14) << "car1 aft."
            << std::setw(14) << "car1 joint" << std::setw(16)
            << "CoopData/round" << "\n";
  for (const runner::GridPointSummary& point : result.points) {
    std::cout << std::left << std::setw(8) << point.params.getInt("cars", 0)
              << std::right << std::fixed << std::setprecision(1)
              << std::setw(13)
              << point.metrics.at("car1_pct_lost_before").mean() << "%"
              << std::setw(13)
              << point.metrics.at("car1_pct_lost_after").mean() << "%"
              << std::setw(13)
              << point.metrics.at("car1_pct_lost_joint").mean() << "%"
              << std::setw(16) << point.totals.coopDataPerRound.mean() << "\n";
  }
  bench::printThroughput(result);
  std::cout << "\nexpected shape: after-coop and joint columns fall with"
               " platoon size, flattening after 3-4 cars\n";
  bench::maybeWriteCampaign(flags, "ablation_platoon_size", result);
  return 0;
}
