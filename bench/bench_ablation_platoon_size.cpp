/// \file bench_ablation_platoon_size.cpp
/// Future-work study (paper §6): how the loss reduction scales with the
/// number of cooperating cars. Sweeps platoon size 1..6 and prints, for
/// the lead car, losses before / after cooperation and the joint
/// (virtual-car) bound. Expected: the joint bound and realised after-coop
/// losses fall monotonically (with diminishing returns) as the platoon
/// grows; a lone car gains nothing.
///
/// Spec-driven: the sweep definition lives in
/// specs/ablation_platoon_size.json (--spec=PATH overrides; --max-cars=N
/// rebuilds the axis as 1..N); grid points run in parallel on --threads
/// workers.

#include <iomanip>
#include <iostream>
#include <vector>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace vanet;
  obs::setRunIdentity(argc, argv);
  const Flags flags(argc, argv);
  flags.allowOnly(bench::benchFlagNames(bench::urbanFlagNames(), {"max-cars"}));
  const runner::CampaignSpec spec =
      bench::loadBenchSpec(flags, "ablation_platoon_size");

  runner::CampaignConfig campaign = bench::campaignFromSpec(flags, spec);
  bench::applyUrbanFlags(flags, campaign.base);
  if (flags.has("max-cars")) {
    std::vector<double> sizes;
    for (int cars = 1; cars <= flags.getInt("max-cars", 6); ++cars) {
      sizes.push_back(cars);
    }
    runner::SweepGrid grid;
    grid.add("cars", sizes);
    campaign.grid = grid;
  }
  const runner::CampaignResult result = runner::runCampaign(campaign);

  std::cout << std::left << std::setw(8) << "cars" << std::right
            << std::setw(14) << "car1 bef." << std::setw(14) << "car1 aft."
            << std::setw(14) << "car1 joint" << std::setw(16)
            << "CoopData/round" << "\n";
  for (const runner::GridPointSummary& point : result.points) {
    std::cout << std::left << std::setw(8) << point.params.getInt("cars", 0)
              << std::right << std::fixed << std::setprecision(1)
              << std::setw(13)
              << point.metrics.at("car1_pct_lost_before").mean() << "%"
              << std::setw(13)
              << point.metrics.at("car1_pct_lost_after").mean() << "%"
              << std::setw(13)
              << point.metrics.at("car1_pct_lost_joint").mean() << "%"
              << std::setw(16) << point.totals.coopDataPerRound.mean() << "\n";
  }
  bench::printThroughput(result);
  std::cout << "\nexpected shape: after-coop and joint columns fall with"
               " platoon size, flattening after 3-4 cars\n";
  bench::maybeWriteSpecArtifacts(flags, spec, result);
  return 0;
}
