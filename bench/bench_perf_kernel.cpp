/// \file bench_perf_kernel.cpp
/// google-benchmark microbenchmarks for the simulation substrate: event
/// queue throughput, channel sampling, airtime computation and a complete
/// urban round. These guard the "30 rounds in under a second" property the
/// experiment harnesses rely on.

#include <benchmark/benchmark.h>

#include "analysis/experiment.h"
#include "channel/link_model.h"
#include "mac/airtime.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace {

using namespace vanet;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const auto events = static_cast<int>(state.range(0));
  Rng rng{42};
  for (auto _ : state) {
    sim::Simulator sim;
    std::uint64_t sink = 0;
    for (int i = 0; i < events; ++i) {
      sim.scheduleAt(sim::SimTime::micros(rng.uniform(0.0, 1e6)),
                     [&sink] { ++sink; });
    }
    sim.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_EventCancelHeavy(benchmark::State& state) {
  // Half the scheduled events are cancelled: exercises lazy deletion.
  const int events = 10000;
  for (auto _ : state) {
    sim::Simulator sim;
    std::vector<sim::EventId> ids;
    ids.reserve(events);
    std::uint64_t sink = 0;
    for (int i = 0; i < events; ++i) {
      ids.push_back(sim.scheduleAt(sim::SimTime::micros(i), [&sink] { ++sink; }));
    }
    for (int i = 0; i < events; i += 2) {
      sim.cancel(ids[static_cast<std::size_t>(i)]);
    }
    sim.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EventCancelHeavy);

void BM_LinkModelSampling(benchmark::State& state) {
  const geom::Polyline road{{{0.0, 0.0}, {500.0, 0.0}}};
  analysis::ChannelConfig config;
  auto model = analysis::buildLinkModel(road, config, Rng{7});
  Rng rng{9};
  double x = 0.0;
  for (auto _ : state) {
    x += 1.0;
    if (x > 400.0) x = 0.0;
    const double mean = model->meanRxPowerDbm(kFirstApId, {250.0, -8.0}, 18.0,
                                              1, {x, 0.0});
    const double faded = model->fadedRxPowerDbm(mean, rng);
    benchmark::DoNotOptimize(
        model->successProbability(channel::PhyMode::kDsss1Mbps,
                                  faded + 94.0, 8224));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LinkModelSampling);

void BM_FrameAirtime(benchmark::State& state) {
  int bytes = 0;
  for (auto _ : state) {
    bytes = (bytes + 17) % 1500;
    benchmark::DoNotOptimize(
        mac::frameAirtime(channel::PhyMode::kDsss1Mbps, bytes));
    benchmark::DoNotOptimize(
        mac::frameAirtime(channel::PhyMode::kErpOfdm54Mbps, bytes));
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_FrameAirtime);

void BM_FullUrbanRound(benchmark::State& state) {
  analysis::UrbanExperimentConfig config;
  config.rounds = 1;
  config.seed = 11;
  for (auto _ : state) {
    analysis::UrbanExperiment experiment(config);
    benchmark::DoNotOptimize(experiment.runRound(0));
  }
}
BENCHMARK(BM_FullUrbanRound)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
