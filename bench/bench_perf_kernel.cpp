/// \file bench_perf_kernel.cpp
/// Microbenchmarks for the simulation substrate: event-queue throughput,
/// cancellation-heavy scheduling (the eager queue-compaction path),
/// channel sampling, airtime computation, and the complete urban and
/// highway rounds. These guard the "30 rounds in under a second"
/// property the experiment harnesses rely on.
///
/// Every timed section reports mean +- CI95 wall time via RunningStats
/// (no external benchmark framework). Flags are the shared campaign CLI
/// (--seed, --round-threads; see util/flags.h) plus:
///   --iters=N   timing repetitions per section (default 10)
///   --laps=N    rounds of the experiment-level timing (default 8)
///   --json=PATH machine-readable result document ("vanet-bench" schema,
///               see docs/observability.md); bare --json auto-names it
///               BENCH_<git-rev>.json in the working directory. This is
///               the perf-trajectory artefact CI compares against the
///               committed baseline with example_bench_compare.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/experiment.h"
#include "analysis/round.h"
#include "channel/link_batch.h"
#include "channel/link_model.h"
#include "mac/airtime.h"
#include "obs/counters.h"
#include "obs/manifest.h"
#include "runner/accumulate.h"
#include "runner/campaign.h"
#include "runner/partial_binary.h"
#include "sim/simulator.h"
#include "trace/aggregate.h"
#include "util/flags.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/thread_pool.h"
#include "util/vmath.h"

namespace {

using namespace vanet;

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// One timed section, collected for the report lines and the --json
/// document.
struct KernelResult {
  std::string name;      ///< schema key, stable across revisions
  RunningStats wall;     ///< seconds per repetition
  double itemsPerRun;    ///< items one repetition processes (0 = whole run)
};

/// One "mean +- ci95  (per-item rate)" report line.
void report(const char* name, const RunningStats& wall, double itemsPerRun,
            const char* item) {
  std::printf("%-28s %9.3f ms +- %6.3f", name, wall.mean() * 1e3,
              wall.confidence95() * 1e3);
  if (itemsPerRun > 0.0 && wall.mean() > 0.0) {
    std::printf("   (%11.0f %s/s)", itemsPerRun / wall.mean(), item);
  }
  std::printf("\n");
}

/// Keeps computed values observable so the loops cannot be elided.
std::uint64_t gSink = 0;

RunningStats timeEventQueue(int iters, int events) {
  RunningStats wall;
  Rng rng{42};
  for (int it = 0; it < iters; ++it) {
    sim::Simulator sim;
    const auto start = Clock::now();
    for (int i = 0; i < events; ++i) {
      sim.scheduleAt(sim::SimTime::micros(rng.uniform(0.0, 1e6)),
                     [] { ++gSink; });
    }
    sim.run();
    wall.add(secondsSince(start));
  }
  return wall;
}

RunningStats timeCancelHeavy(int iters, int events) {
  // 90% of the scheduled timers are cancelled -- the C-ARQ churn pattern
  // that used to leave dead entries in the queue until their timestamp
  // popped; now exercises the eager compaction.
  RunningStats wall;
  for (int it = 0; it < iters; ++it) {
    sim::Simulator sim;
    std::vector<sim::EventId> ids;
    ids.reserve(static_cast<std::size_t>(events));
    const auto start = Clock::now();
    for (int i = 0; i < events; ++i) {
      ids.push_back(
          sim.scheduleAt(sim::SimTime::micros(i), [] { ++gSink; }));
    }
    for (int i = 0; i < events; ++i) {
      if (i % 10 != 0) sim.cancel(ids[static_cast<std::size_t>(i)]);
    }
    sim.run();
    wall.add(secondsSince(start));
    gSink += sim.queueDepth();
  }
  return wall;
}

RunningStats timeLinkSampling(int iters, int samples) {
  // Times link evaluation the way RadioEnvironment::deliver pays for it
  // since the struct-of-arrays rewiring: one planBatch (distance, path
  // loss, shadowing, mean power, fading) plus one successProbabilityBatch
  // per transmission's receiver set, 16 receivers per batch (the 9plus
  // occupancy bucket of a highway platoon). The scalar per-receiver calls
  // this loop used to make remain as the bit-identical behavioural
  // reference (LinkModel::planBatch base implementation).
  const geom::Polyline road{{{0.0, 0.0}, {500.0, 0.0}}};
  analysis::ChannelConfig config;
  auto model = analysis::buildLinkModel(road, config, Rng{7});
  Rng rng{9};
  RunningStats wall;
  constexpr int kRxPerBatch = 16;
  channel::LinkBatch batch;
  std::vector<double> probs(kRxPerBatch);
  double x = 0.0;
  for (int it = 0; it < iters; ++it) {
    const auto start = Clock::now();
    for (int i = 0; i < samples; i += kRxPerBatch) {
      batch.clear();
      for (int r = 0; r < kRxPerBatch; ++r) {
        x += 1.0;
        if (x > 400.0) x = 0.0;
        batch.add(static_cast<NodeId>(r + 1), {x, 0.0});
      }
      batch.prepare();
      model->planBatch(kFirstApId, {250.0, -8.0}, 18.0, batch, rng);
      const double* faded = batch.fadedDbm();
      double* sinr = batch.meanDbm();  // reuse plan scratch for SINR
      for (int r = 0; r < kRxPerBatch; ++r) {
        sinr[r] = faded[r] + 94.0;
      }
      model->successProbabilityBatch(channel::PhyMode::kDsss1Mbps, sinr, 8224,
                                     probs.data(), kRxPerBatch);
      for (int r = 0; r < kRxPerBatch; ++r) {
        gSink += probs[r] > 0.5;
      }
    }
    wall.add(secondsSince(start));
  }
  return wall;
}

/// ns/op for one batched vmath kernel over a hot-cache input vector --
/// the per-element cost the link/error-model stages pay after the rewiring.
template <class Fn>
RunningStats timeVmathKernel(int iters, int n, double lo, double hi, Fn&& fn) {
  Rng rng{31};
  std::vector<double> x(static_cast<std::size_t>(n));
  std::vector<double> out(x.size());
  for (double& v : x) v = rng.uniform(lo, hi);
  RunningStats wall;
  for (int it = 0; it < iters; ++it) {
    const auto start = Clock::now();
    for (int rep = 0; rep < 64; ++rep) {
      fn(x.data(), out.data(), x.size());
      gSink += static_cast<std::uint64_t>(out[0] != 0.0);
    }
    wall.add(secondsSince(start) / 64.0);
  }
  return wall;
}

RunningStats timeVmathNormal(int iters, int n) {
  Rng rng{33};
  std::vector<double> u1(static_cast<std::size_t>(n));
  std::vector<double> u2(u1.size());
  std::vector<double> z0(u1.size());
  std::vector<double> z1(u1.size());
  for (std::size_t i = 0; i < u1.size(); ++i) {
    u1[i] = 1.0 - rng.uniform();
    u2[i] = rng.uniform();
  }
  RunningStats wall;
  for (int it = 0; it < iters; ++it) {
    const auto start = Clock::now();
    for (int rep = 0; rep < 64; ++rep) {
      vmath::vnormalpair(u1.data(), u2.data(), z0.data(), z1.data(), u1.size());
      gSink += static_cast<std::uint64_t>(z0[0] != 0.0);
    }
    wall.add(secondsSince(start) / 64.0);
  }
  return wall;
}

RunningStats timeFrameAirtime(int iters, int frames) {
  RunningStats wall;
  int bytes = 0;
  for (int it = 0; it < iters; ++it) {
    const auto start = Clock::now();
    for (int i = 0; i < frames; ++i) {
      bytes = (bytes + 17) % 1500;
      gSink += static_cast<std::uint64_t>(
          mac::frameAirtime(channel::PhyMode::kDsss1Mbps, bytes).toSeconds() +
          mac::frameAirtime(channel::PhyMode::kErpOfdm54Mbps, bytes)
              .toSeconds());
    }
    wall.add(secondsSince(start));
  }
  return wall;
}

/// Per-round wall time of the full urban kernel: one sample per distinct
/// round index (each round builds its own world, like production runs).
RunningStats timeUrbanRound(int iters, std::uint64_t seed) {
  analysis::UrbanExperimentConfig config;
  config.rounds = iters;
  config.seed = seed;
  const analysis::UrbanExperiment experiment(config);
  RunningStats wall;
  for (int round = 0; round < iters; ++round) {
    const auto start = Clock::now();
    const analysis::UrbanRoundOutcome outcome = experiment.runRound(round);
    wall.add(secondsSince(start));
    gSink += outcome.trace.txCount(1);
  }
  return wall;
}

/// Same for the highway kernel, so the perf trajectory covers both
/// scenario families (their hot paths differ: multi-AP handover vs the
/// urban single-AP loop).
RunningStats timeHighwayRound(int iters, std::uint64_t seed) {
  analysis::HighwayExperimentConfig config;
  config.rounds = iters;
  config.seed = seed;
  const analysis::HighwayExperiment experiment(config);
  RunningStats wall;
  for (int round = 0; round < iters; ++round) {
    const auto start = Clock::now();
    const analysis::HighwayRoundOutcome outcome = experiment.runRound(round);
    wall.add(secondsSince(start));
    gSink += outcome.trace.txCount(1);
  }
  return wall;
}

/// One synthetic shard partial for the serialization kernels: every
/// point carries a realistic payload (Table-1 rows, two figure flows,
/// protocol totals, metrics), so the write/merge timings reflect the
/// production record shape rather than a toy. Shard s owns the grid
/// indices s, s+count, s+2*count, ... -- together the shards tile the
/// full grid, so the merge kernels exercise the real validation path.
runner::CampaignPartial syntheticPartial(int shardIndex, int shardCount,
                                         int pointsPerShard,
                                         std::uint64_t seed) {
  Rng rng{seed + static_cast<std::uint64_t>(shardIndex)};
  const auto stats = [&rng](int samples) {
    RunningStats s;
    for (int i = 0; i < samples; ++i) s.add(rng.uniform(0.0, 100.0));
    return s;
  };
  runner::CampaignPartial partial;
  partial.scenario = "urban";
  partial.masterSeed = seed;
  partial.shard = runner::Shard{shardIndex, shardCount};
  partial.replications = 4;
  partial.totalPoints =
      static_cast<std::size_t>(pointsPerShard) * shardCount;
  partial.totalJobs = partial.totalPoints * 4;
  partial.points.reserve(static_cast<std::size_t>(pointsPerShard));
  for (int p = 0; p < pointsPerShard; ++p) {
    runner::GridPointSummary point;
    point.gridIndex = static_cast<std::size_t>(shardIndex) +
                      static_cast<std::size_t>(p) * shardCount;
    point.caseName = "case" + std::to_string(p % 3);
    point.replications = 4;
    point.rounds = 40;
    point.achievedCi95 = rng.uniform(0.0, 0.1);
    point.params.set("speed_kmh", 20.0 + p);
    point.params.set("cars", 3.0);
    for (NodeId car = 1; car <= 3; ++car) {
      trace::Table1Row row;
      row.car = car;
      row.txByAp = stats(8);
      row.lostBefore = stats(8);
      row.lostAfter = stats(8);
      row.lostJoint = stats(8);
      row.pctLostBefore = stats(8);
      row.pctLostAfter = stats(8);
      row.pctLostJoint = stats(8);
      point.table1.rows.push_back(row);
    }
    point.table1.rounds = 40;
    for (FlowId flow = 1; flow <= 2; ++flow) {
      trace::FlowFigure figure;
      figure.flow = flow;
      for (NodeId car = 1; car <= 3; ++car) {
        SeriesAccumulator& series = figure.rxByCar[car];
        for (std::size_t k = 0; k < 64; ++k) {
          series.add(k, rng.uniform(0.0, 1.0));
        }
      }
      for (std::size_t k = 0; k < 64; ++k) {
        figure.afterCoop.add(k, rng.uniform(0.0, 1.0));
        figure.joint.add(k, rng.uniform(0.0, 1.0));
      }
      figure.regionBoundary12 = stats(4);
      figure.regionBoundary23 = stats(4);
      point.figures[flow] = std::move(figure);
    }
    point.totals.requestsPerRound = stats(8);
    point.totals.requestSeqsPerRound = stats(8);
    point.totals.coopDataPerRound = stats(8);
    point.totals.suppressedPerRound = stats(8);
    point.totals.hellosPerRound = stats(8);
    point.totals.bufferedPerRound = stats(8);
    point.totals.medium.framesTransmitted = 100000 + static_cast<std::uint64_t>(p);
    point.totals.medium.framesDelivered = 90000;
    point.totals.medium.framesCollided = 700;
    point.totals.medium.framesChannelError = 1200;
    point.metrics["pdr"] = stats(4);
    point.metrics["losses_after_pct"] = stats(4);
    partial.points.push_back(std::move(point));
  }
  return partial;
}

/// Serializes every shard once per repetition (in memory, both formats --
/// no disk noise in the timing).
RunningStats timePartialWrite(
    const std::vector<runner::CampaignPartial>& shards, int iters,
    bool binary) {
  RunningStats wall;
  for (int it = 0; it < iters; ++it) {
    const auto start = Clock::now();
    for (const runner::CampaignPartial& shard : shards) {
      const std::string bytes = binary
                                    ? runner::campaignPartialBinary(shard)
                                    : runner::campaignPartialJson(shard);
      gSink += bytes.size();
    }
    wall.add(secondsSince(start));
  }
  return wall;
}

/// Parses every serialized shard and folds them back into the full grid
/// once per repetition -- the campaign_merge hot path, both formats.
RunningStats timePartialMerge(const std::vector<std::string>& shardBytes,
                              int iters, bool binary) {
  RunningStats wall;
  for (int it = 0; it < iters; ++it) {
    const auto start = Clock::now();
    std::vector<runner::CampaignPartial> partials;
    partials.reserve(shardBytes.size());
    for (const std::string& bytes : shardBytes) {
      partials.push_back(binary ? runner::parseCampaignPartialBinary(bytes)
                                : runner::parseCampaignPartial(bytes));
    }
    const std::vector<runner::GridPointSummary> merged =
        runner::mergeCampaignPartials(std::move(partials));
    gSink += merged.size();
    wall.add(secondsSince(start));
  }
  return wall;
}

/// A small fixed campaign through the full plan/execute/accumulate
/// pipeline, to put an end-to-end jobs/sec figure next to the kernel
/// numbers.
runner::CampaignResult runProbeCampaign(std::uint64_t seed, int threads) {
  runner::CampaignConfig config;
  config.scenario = "urban";
  config.masterSeed = seed;
  config.replications = 4;
  config.threads = threads;
  config.base.set("rounds", 2);
  config.base.set("cars", 3);
  return runner::runCampaign(config);
}

/// The "vanet-bench" JSON document (schema in docs/observability.md).
/// Deterministic key order; json::num full-precision numbers.
std::string benchJson(const std::vector<KernelResult>& kernels,
                      const runner::CampaignResult& campaign,
                      std::uint64_t seed, int iters) {
  using json::num;
  using json::quote;
  std::string out = "{\n";
  out += "\"format\":\"vanet-bench\",\n";
  out += "\"version\":1,\n";
  out += "\"git_rev\":" + quote(obs::buildGitRevision()) + ",\n";
  out += "\"build_flags\":" + quote(obs::buildFlagsString()) + ",\n";
  out += "\"seed\":" + std::to_string(seed) + ",\n";
  out += "\"iters\":" + std::to_string(iters) + ",\n";
  out += "\"kernels\":[";
  for (std::size_t k = 0; k < kernels.size(); ++k) {
    const KernelResult& kernel = kernels[k];
    if (k > 0) out += ",";
    const double itemsPerRun =
        kernel.itemsPerRun > 0.0 ? kernel.itemsPerRun : 1.0;
    out += "\n {\"name\":" + quote(kernel.name);
    out += ",\"mean_seconds\":" + num(kernel.wall.mean());
    out += ",\"ci95_seconds\":" + num(kernel.wall.confidence95());
    out += ",\"items_per_run\":" + num(itemsPerRun);
    out += ",\"ns_per_item\":" + num(kernel.wall.mean() * 1e9 / itemsPerRun);
    out += "}";
  }
  out += "\n],\n";
  out += "\"campaign\":{\"scenario\":" + quote(campaign.scenario);
  out += ",\"jobs\":" + std::to_string(campaign.jobCount);
  out += ",\"wall_seconds\":" + num(campaign.wallSeconds);
  out += ",\"jobs_per_second\":" + num(campaign.jobsPerSecond);
  out += "},\n";
  out += "\"obs\":" + obs::snapshotJson(obs::takeSnapshot()) + "\n";
  out += "}\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  vanet::obs::setRunIdentity(argc, argv);
  const Flags flags(argc, argv);
  {
    std::vector<std::string> names = campaignFlagNames();
    names.insert(names.end(), {"iters", "laps", "json"});
    flags.allowOnly(names);
  }
  const CampaignRunFlags run = campaignRunFlags(flags, /*defaultSeed=*/11);
  const int iters = flags.getInt("iters", 10);
  const int laps = flags.getInt("laps", 8);

  std::vector<KernelResult> kernels;
  const auto timeKernel = [&](const char* schemaName, const char* label,
                              RunningStats wall, double itemsPerRun,
                              const char* item) {
    report(label, wall, itemsPerRun, item);
    kernels.push_back(KernelResult{schemaName, wall, itemsPerRun});
    return wall;
  };

  std::printf("simulation-substrate kernels, %d repetitions each "
              "(mean +- CI95)\n\n", iters);
  timeKernel("event_queue", "event queue (100k events)",
             timeEventQueue(iters, 100000), 100000, "events");
  timeKernel("cancel_heavy", "cancel-heavy (10k, 90%)",
             timeCancelHeavy(iters, 10000), 10000, "timers");
  timeKernel("link_sampling", "link-model sampling (10k)",
             timeLinkSampling(iters, 10000), 10000, "samples");
  timeKernel("frame_airtime", "frame airtime (20k)",
             timeFrameAirtime(iters, 10000), 20000, "frames");
  // The vmath kernels behind the batched radio pipeline (simdIsa() says
  // which body runs; VANET_SIMD=off forces the scalar one).
  const int kVmathN = 4096;
  timeKernel("vmath_exp", "vmath exp (4k batch)",
             timeVmathKernel(iters, kVmathN, -700.0, 700.0,
                             [](const double* x, double* o, std::size_t n) {
                               vmath::vexp(x, o, n);
                             }),
             kVmathN, "elems");
  timeKernel("vmath_log10", "vmath log10 (4k batch)",
             timeVmathKernel(iters, kVmathN, 1e-15, 1e9,
                             [](const double* x, double* o, std::size_t n) {
                               vmath::vlog10(x, o, n);
                             }),
             kVmathN, "elems");
  timeKernel("vmath_erfc", "vmath erfc (4k batch)",
             timeVmathKernel(iters, kVmathN, -3.0, 20.0,
                             [](const double* x, double* o, std::size_t n) {
                               vmath::verfc(x, o, n);
                             }),
             kVmathN, "elems");
  timeKernel("vmath_normal", "vmath normal pairs (4k batch)",
             timeVmathNormal(iters, kVmathN), kVmathN, "pairs");
  const RunningStats roundWall = timeKernel(
      "urban_round", "full urban round", timeUrbanRound(iters, run.seed), 0,
      "");
  timeKernel("highway_round", "full highway round",
             timeHighwayRound(iters, run.seed), 0, "");

  // Campaign-partial serialization: a synthetic 4-shard, 256-point
  // campaign with production-shaped records, written and merged in both
  // formats. The bin/json ratios are the Table-1 numbers behind making
  // binary the --shard default.
  const int kShardCount = 4;
  const int kPointsPerShard = 64;
  std::vector<runner::CampaignPartial> shards;
  std::vector<std::string> jsonShards;
  std::vector<std::string> binShards;
  for (int s = 0; s < kShardCount; ++s) {
    shards.push_back(
        syntheticPartial(s, kShardCount, kPointsPerShard, run.seed));
    jsonShards.push_back(runner::campaignPartialJson(shards.back()));
    binShards.push_back(runner::campaignPartialBinary(shards.back()));
  }
  const double partialPoints =
      static_cast<double>(kShardCount) * kPointsPerShard;
  timeKernel("partial_write_json", "partial write json (256 pts)",
             timePartialWrite(shards, iters, /*binary=*/false), partialPoints,
             "points");
  timeKernel("partial_write_bin", "partial write bin (256 pts)",
             timePartialWrite(shards, iters, /*binary=*/true), partialPoints,
             "points");
  timeKernel("partial_merge_json", "partial merge json (4 shards)",
             timePartialMerge(jsonShards, iters, /*binary=*/false),
             partialPoints, "points");
  timeKernel("partial_merge_bin", "partial merge bin (4 shards)",
             timePartialMerge(binShards, iters, /*binary=*/true),
             partialPoints, "points");

  // Experiment-level wall: the round engine at --round-threads workers
  // against the serial fold (same bytes, fewer seconds).
  analysis::UrbanExperimentConfig config;
  config.rounds = laps;
  config.seed = run.seed;
  config.roundThreads = 1;
  auto start = Clock::now();
  analysis::UrbanExperimentResult serial =
      analysis::UrbanExperiment(config).run();
  const double serialWall = secondsSince(start);
  std::printf("\n%d-round experiment, serial fold:      %8.3f s\n", laps,
              serialWall);
  if (run.roundThreads != 1) {
    config.roundThreads = run.roundThreads;
    start = Clock::now();
    analysis::UrbanExperimentResult parallel =
        analysis::UrbanExperiment(config).run();
    const double parallelWall = secondsSince(start);
    std::printf("%d-round experiment, %d round workers: %8.3f s "
                "(speedup %.2fx)\n",
                laps, parallel.roundWorkers, parallelWall,
                serialWall / parallelWall);
    gSink += static_cast<std::uint64_t>(parallel.totals.medium.framesDelivered);
  }
  gSink += static_cast<std::uint64_t>(serial.totals.medium.framesDelivered);

  // End-to-end campaign throughput for the trajectory document.
  const runner::CampaignResult campaign =
      runProbeCampaign(run.seed, run.threads);
  std::printf("\nprobe campaign: %zu jobs, %.2f jobs/s\n", campaign.jobCount,
              campaign.jobsPerSecond);

  std::printf("\nper-round budget: %.1f ms mean -> %.1f rounds/s "
              "(paper campaign = 30 rounds)\n",
              roundWall.mean() * 1e3,
              roundWall.mean() > 0.0 ? 1.0 / roundWall.mean() : 0.0);
  std::printf("(checksum %llu)\n",
              static_cast<unsigned long long>(gSink % 997));

  if (flags.has("json")) {
    // Bare --json auto-names the artefact after the built revision --
    // the naming convention the committed baselines and the CI compare
    // step share.
    std::string path = flags.getString("json", "");
    if (path.empty() || path == "true") {
      path = "BENCH_" + obs::buildGitRevision() + ".json";
    }
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
      return 1;
    }
    out << benchJson(kernels, campaign, run.seed, iters);
    if (!out) {
      std::fprintf(stderr, "short write on %s\n", path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", path.c_str());
    obs::writeManifestSidecar(obs::manifestForArtifact(path));
  }
  return 0;
}
