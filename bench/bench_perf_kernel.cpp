/// \file bench_perf_kernel.cpp
/// Microbenchmarks for the simulation substrate: event-queue throughput,
/// cancellation-heavy scheduling (the eager queue-compaction path),
/// channel sampling, airtime computation, and the complete urban round.
/// These guard the "30 rounds in under a second" property the experiment
/// harnesses rely on.
///
/// Every timed section reports mean +- CI95 wall time via RunningStats
/// (no external benchmark framework). Flags are the shared campaign CLI
/// (--seed, --round-threads; see util/flags.h) plus:
///   --iters=N   timing repetitions per section (default 10)
///   --laps=N    rounds of the experiment-level timing (default 8)

#include <chrono>
#include <cstdio>
#include <vector>

#include "analysis/experiment.h"
#include "analysis/round.h"
#include "channel/link_model.h"
#include "mac/airtime.h"
#include "sim/simulator.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace {

using namespace vanet;

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// One "mean +- ci95  (per-item rate)" report line.
void report(const char* name, const RunningStats& wall, double itemsPerRun,
            const char* item) {
  std::printf("%-28s %9.3f ms +- %6.3f", name, wall.mean() * 1e3,
              wall.confidence95() * 1e3);
  if (itemsPerRun > 0.0 && wall.mean() > 0.0) {
    std::printf("   (%11.0f %s/s)", itemsPerRun / wall.mean(), item);
  }
  std::printf("\n");
}

/// Keeps computed values observable so the loops cannot be elided.
std::uint64_t gSink = 0;

RunningStats timeEventQueue(int iters, int events) {
  RunningStats wall;
  Rng rng{42};
  for (int it = 0; it < iters; ++it) {
    sim::Simulator sim;
    const auto start = Clock::now();
    for (int i = 0; i < events; ++i) {
      sim.scheduleAt(sim::SimTime::micros(rng.uniform(0.0, 1e6)),
                     [] { ++gSink; });
    }
    sim.run();
    wall.add(secondsSince(start));
  }
  return wall;
}

RunningStats timeCancelHeavy(int iters, int events) {
  // 90% of the scheduled timers are cancelled -- the C-ARQ churn pattern
  // that used to leave dead entries in the queue until their timestamp
  // popped; now exercises the eager compaction.
  RunningStats wall;
  for (int it = 0; it < iters; ++it) {
    sim::Simulator sim;
    std::vector<sim::EventId> ids;
    ids.reserve(static_cast<std::size_t>(events));
    const auto start = Clock::now();
    for (int i = 0; i < events; ++i) {
      ids.push_back(
          sim.scheduleAt(sim::SimTime::micros(i), [] { ++gSink; }));
    }
    for (int i = 0; i < events; ++i) {
      if (i % 10 != 0) sim.cancel(ids[static_cast<std::size_t>(i)]);
    }
    sim.run();
    wall.add(secondsSince(start));
    gSink += sim.queueDepth();
  }
  return wall;
}

RunningStats timeLinkSampling(int iters, int samples) {
  const geom::Polyline road{{{0.0, 0.0}, {500.0, 0.0}}};
  analysis::ChannelConfig config;
  auto model = analysis::buildLinkModel(road, config, Rng{7});
  Rng rng{9};
  RunningStats wall;
  double x = 0.0;
  for (int it = 0; it < iters; ++it) {
    const auto start = Clock::now();
    for (int i = 0; i < samples; ++i) {
      x += 1.0;
      if (x > 400.0) x = 0.0;
      const double mean = model->meanRxPowerDbm(kFirstApId, {250.0, -8.0},
                                                18.0, 1, {x, 0.0});
      const double faded = model->fadedRxPowerDbm(mean, rng);
      gSink += model->successProbability(channel::PhyMode::kDsss1Mbps,
                                         faded + 94.0, 8224) > 0.5;
    }
    wall.add(secondsSince(start));
  }
  return wall;
}

RunningStats timeFrameAirtime(int iters, int frames) {
  RunningStats wall;
  int bytes = 0;
  for (int it = 0; it < iters; ++it) {
    const auto start = Clock::now();
    for (int i = 0; i < frames; ++i) {
      bytes = (bytes + 17) % 1500;
      gSink += static_cast<std::uint64_t>(
          mac::frameAirtime(channel::PhyMode::kDsss1Mbps, bytes).toSeconds() +
          mac::frameAirtime(channel::PhyMode::kErpOfdm54Mbps, bytes)
              .toSeconds());
    }
    wall.add(secondsSince(start));
  }
  return wall;
}

/// Per-round wall time of the full urban kernel: one sample per distinct
/// round index (each round builds its own world, like production runs).
RunningStats timeUrbanRound(int iters, std::uint64_t seed) {
  analysis::UrbanExperimentConfig config;
  config.rounds = iters;
  config.seed = seed;
  const analysis::UrbanExperiment experiment(config);
  RunningStats wall;
  for (int round = 0; round < iters; ++round) {
    const auto start = Clock::now();
    const analysis::UrbanRoundOutcome outcome = experiment.runRound(round);
    wall.add(secondsSince(start));
    gSink += outcome.trace.txCount(1);
  }
  return wall;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const CampaignRunFlags run = campaignRunFlags(flags, /*defaultSeed=*/11);
  const int iters = flags.getInt("iters", 10);
  const int laps = flags.getInt("laps", 8);

  std::printf("simulation-substrate kernels, %d repetitions each "
              "(mean +- CI95)\n\n", iters);
  report("event queue (100k events)", timeEventQueue(iters, 100000), 100000,
         "events");
  report("cancel-heavy (10k, 90%)", timeCancelHeavy(iters, 10000), 10000,
         "timers");
  report("link-model sampling (10k)", timeLinkSampling(iters, 10000), 10000,
         "samples");
  report("frame airtime (20k)", timeFrameAirtime(iters, 10000), 20000,
         "frames");
  const RunningStats roundWall = timeUrbanRound(iters, run.seed);
  report("full urban round", roundWall, 0, "");

  // Experiment-level wall: the round engine at --round-threads workers
  // against the serial fold (same bytes, fewer seconds).
  analysis::UrbanExperimentConfig config;
  config.rounds = laps;
  config.seed = run.seed;
  config.roundThreads = 1;
  auto start = Clock::now();
  analysis::UrbanExperimentResult serial =
      analysis::UrbanExperiment(config).run();
  const double serialWall = secondsSince(start);
  std::printf("\n%d-round experiment, serial fold:      %8.3f s\n", laps,
              serialWall);
  if (run.roundThreads != 1) {
    config.roundThreads = run.roundThreads;
    start = Clock::now();
    analysis::UrbanExperimentResult parallel =
        analysis::UrbanExperiment(config).run();
    const double parallelWall = secondsSince(start);
    std::printf("%d-round experiment, %d round workers: %8.3f s "
                "(speedup %.2fx)\n",
                laps, parallel.roundWorkers, parallelWall,
                serialWall / parallelWall);
    gSink += static_cast<std::uint64_t>(parallel.totals.medium.framesDelivered);
  }
  gSink += static_cast<std::uint64_t>(serial.totals.medium.framesDelivered);

  std::printf("\nper-round budget: %.1f ms mean -> %.1f rounds/s "
              "(paper campaign = 30 rounds)\n",
              roundWall.mean() * 1e3,
              roundWall.mean() > 0.0 ? 1.0 / roundWall.mean() : 0.0);
  std::printf("(checksum %llu)\n",
              static_cast<unsigned long long>(gSink % 997));
  return 0;
}
