#pragma once

/// Shared driver for the six figure benches (Figures 3-8): run the urban
/// experiment and print one flow's reception or cooperation figure.

#include <iostream>

#include "bench_common.h"

namespace vanet::bench {

enum class FigureKind { kReception, kCooperation };

inline int runFigureBench(int argc, char** argv, FlowId flow,
                          FigureKind kind, const std::string& title,
                          const std::string& paperRef) {
  const Flags flags(argc, argv);
  printHeader(title, paperRef);

  analysis::UrbanExperimentConfig config = urbanConfigFromFlags(flags);
  analysis::UrbanExperiment experiment(config);
  const analysis::UrbanExperimentResult result = experiment.run();

  const auto it = result.figures.find(flow);
  if (it == result.figures.end()) {
    std::cerr << "no figure data for flow " << flow
              << " (is --cars at least " << flow << "?)\n";
    return 1;
  }
  if (kind == FigureKind::kReception) {
    std::cout << analysis::renderReceptionFigure(it->second);
  } else {
    std::cout << analysis::renderCoopFigure(it->second);
  }
  maybeWriteFigureCsv(flags, "fig_flow" + std::to_string(flow), it->second);
  return 0;
}

}  // namespace vanet::bench
