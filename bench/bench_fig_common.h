#pragma once

/// Shared driver for the six figure benches (Figures 3-8): one urban
/// campaign (a single grid point, --repl replications of --rounds laps
/// each, defaulting to the paper's 3 x 10 = 30 rounds) whose
/// per-replication FlowFigure series merge deterministically, then print
/// one flow's reception or cooperation figure and optionally emit its
/// mean +- CI series as CSV.

#include <iostream>

#include "bench_common.h"

namespace vanet::bench {

enum class FigureKind { kReception, kCooperation };

inline int runFigureBench(int argc, char** argv, FlowId flow,
                          FigureKind kind, const std::string& title,
                          const std::string& paperRef) {
  const Flags flags(argc, argv);
  {
    std::vector<std::string> names = campaignFlagNames();
    names.insert(names.end(), {"rounds", "cars", "repl", "csv"});
    const std::vector<std::string> urban = urbanFlagNames();
    names.insert(names.end(), urban.begin(), urban.end());
    flags.allowOnly(names);
  }
  printHeader(title, paperRef);

  runner::CampaignConfig campaign = campaignFromFlags(
      flags, "urban", /*defaultRounds=*/10, /*defaultReplications=*/3);
  applyUrbanFlags(flags, campaign.base);
  const runner::CampaignResult result = runner::runCampaign(campaign);
  if (result.halted) {  // --halt-after-waves: fold state is in the checkpoint
    printThroughput(result);
    return 0;
  }
  const runner::GridPointSummary& point = result.points.front();

  const auto it = point.figures.find(flow);
  if (it == point.figures.end()) {
    std::cerr << "no figure data for flow " << flow
              << " (is --cars at least " << flow << "?)\n";
    return 1;
  }
  if (kind == FigureKind::kReception) {
    std::cout << analysis::renderReceptionFigure(it->second);
  } else {
    std::cout << analysis::renderCoopFigure(it->second);
  }
  printThroughput(result);
  const std::string dir = flags.getString("csv", "");
  if (!dir.empty()) {
    const std::string path =
        dir + "/fig_flow" + std::to_string(flow) + ".csv";
    if (runner::writeFigureCsv(path, it->second)) {
      std::cout << "wrote " << path << "\n";
    }
  }
  maybeWriteCampaign(flags, "fig_flow" + std::to_string(flow), result);
  return 0;
}

}  // namespace vanet::bench
