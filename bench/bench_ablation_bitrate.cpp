/// \file bench_ablation_bitrate.cpp
/// The paper's final future-work question (§6): can the loss reduction
/// "allow to increment the bit rate used by the APs"? We sweep the AP PHY
/// mode while keeping the channel duty cycle constant (faster modes send
/// proportionally more packets per second), and compare no cooperation,
/// C-ARQ, and C-ARQ with Frame Combining (the authors' PIMRC'07 companion
/// scheme, ref [12] — corrupt copies soft-combine until they decode).
///
/// Faster modes need more SNR: the decode radius shrinks (e.g. at CCK-11M
/// the window-mounted AP only covers the middle of the street), so losses
/// rise steeply — exactly the regime cooperation and combining repair.
/// The delivered column answers the paper's question: with C-ARQ the
/// best operating point moves to a faster mode than without.

#include <iomanip>
#include <iostream>

#include "bench_common.h"
#include "mac/airtime.h"

int main(int argc, char** argv) {
  using namespace vanet;
  const Flags flags(argc, argv);
  bench::printHeader("Ablation: AP bit-rate sweep with C-ARQ and C-ARQ/FC",
                     "Morillo-Pozo et al., ICDCS'08 W, §6 (future work)");

  const channel::PhyMode modes[] = {
      channel::PhyMode::kDsss1Mbps, channel::PhyMode::kDsss2Mbps,
      channel::PhyMode::kCck5_5Mbps, channel::PhyMode::kCck11Mbps};

  // Match the paper's channel duty: 15 frames/s of 1000 B at 1 Mbps.
  const double referenceDuty =
      15.0 * mac::frameAirtime(channel::PhyMode::kDsss1Mbps, 1000).toSeconds();

  std::cout << std::left << std::setw(10) << "mode" << std::setw(10)
            << "pkt/s" << std::right << std::setw(13) << "variant"
            << std::setw(12) << "offered" << std::setw(11) << "loss"
            << std::setw(12) << "delivered" << "\n";

  for (const channel::PhyMode mode : modes) {
    const double perFlowRate =
        referenceDuty / (3.0 * mac::frameAirtime(mode, 1000).toSeconds()) ;
    struct Variant {
      const char* name;
      bool coop;
      bool combining;
    };
    for (const Variant variant : {Variant{"plain", false, false},
                                  Variant{"c-arq", true, false},
                                  Variant{"c-arq/fc", true, true}}) {
      analysis::UrbanExperimentConfig config =
          bench::urbanConfigFromFlags(flags);
      config.rounds = flags.getInt("rounds", 10);
      config.packetsPerSecondPerFlow = perFlowRate;
      config.carq.phyMode = mode;
      config.carq.cooperationEnabled = variant.coop;
      config.carq.frameCombining = variant.combining;
      analysis::UrbanExperiment experiment(config);
      const auto result = experiment.run();
      double offered = 0.0;
      double loss = 0.0;
      double delivered = 0.0;
      for (const auto& row : result.table1.rows) {
        offered += row.txByAp.mean();
        loss += row.pctLostAfter.mean();
        delivered += row.txByAp.mean() - row.lostAfter.mean();
      }
      const auto cars = static_cast<double>(result.table1.rows.size());
      std::cout << std::left << std::setw(10) << channel::modeName(mode)
                << std::setw(10) << std::fixed << std::setprecision(1)
                << perFlowRate << std::right << std::setw(13) << variant.name
                << std::setw(12) << offered / cars << std::setw(10)
                << loss / cars << "%" << std::setw(12) << delivered / cars
                << "\n";
    }
  }
  std::cout << "\nexpected shape: faster modes offer more packets but decode"
               " over a smaller radius;\ncooperation recovers enough of the"
               " shortfall that the delivered optimum sits at a\nfaster mode"
               " than without it, and frame combining adds a further margin"
               " at the\nfast end (corrupt copies become useful energy)\n";
  return 0;
}
