/// \file bench_ablation_bitrate.cpp
/// The paper's final future-work question (§6): can the loss reduction
/// "allow to increment the bit rate used by the APs"? We sweep the AP PHY
/// mode while keeping the channel duty cycle constant (faster modes send
/// proportionally more packets per second), and compare no cooperation,
/// C-ARQ, and C-ARQ with Frame Combining (the authors' PIMRC'07 companion
/// scheme, ref [12] — corrupt copies soft-combine until they decode).
///
/// Faster modes need more SNR: the decode radius shrinks (e.g. at CCK-11M
/// the window-mounted AP only covers the middle of the street), so losses
/// rise steeply — exactly the regime cooperation and combining repair.
/// The delivered column answers the paper's question: with C-ARQ the
/// best operating point moves to a faster mode than without.
///
/// Spec-driven: the three named cases (plain / c-arq / c-arq+fc) x phy
/// axis grid lives in specs/ablation_bitrate.json (--spec=PATH overrides)
/// and runs --repl replications per point in parallel on --threads
/// workers.

#include <iomanip>
#include <iostream>

#include "bench_common.h"
#include "channel/error_model.h"

int main(int argc, char** argv) {
  using namespace vanet;
  obs::setRunIdentity(argc, argv);
  const Flags flags(argc, argv);
  flags.allowOnly(bench::benchFlagNames(bench::urbanFlagNames()));
  const runner::CampaignSpec spec =
      bench::loadBenchSpec(flags, "ablation_bitrate");

  runner::CampaignConfig campaign = bench::campaignFromSpec(flags, spec);
  bench::applyUrbanFlags(flags, campaign.base);
  const runner::CampaignResult result = runner::runCampaign(campaign);

  std::cout << std::left << std::setw(13) << "variant" << std::setw(10)
            << "mode" << std::right << std::setw(12) << "offered"
            << std::setw(11) << "loss" << std::setw(12) << "delivered"
            << "\n";
  for (const runner::GridPointSummary& point : result.points) {
    const channel::PhyMode mode =
        runner::phyModeFromParam(point.params.getInt("phy", 0));
    std::cout << std::left << std::setw(13) << point.caseName << std::setw(10)
              << channel::modeName(mode) << std::right << std::fixed
              << std::setprecision(1) << std::setw(12)
              << point.metrics.at("tx_by_ap").mean() << std::setw(10)
              << point.metrics.at("pct_lost_after").mean() << "%"
              << std::setw(12) << point.metrics.at("delivered").mean()
              << "\n";
  }
  bench::printThroughput(result);
  std::cout << "\nexpected shape: faster modes offer more packets but decode"
               " over a smaller radius;\ncooperation recovers enough of the"
               " shortfall that the delivered optimum sits at a\nfaster mode"
               " than without it, and frame combining adds a further margin"
               " at the\nfast end (corrupt copies become useful energy)\n";
  bench::maybeWriteSpecArtifacts(flags, spec, result);
  return 0;
}
