/// \file bench_ablation_cooperator_selection.cpp
/// Future-work study (paper §6): "an algorithm for selecting the optimal
/// cooperators has not been addressed". Compares the announcement policies
/// on a 5-car platoon where the cooperator cap bites: all one-hop
/// neighbours (the paper's prototype), strongest-K by smoothed HELLO RSSI,
/// and random-K. Finding: strongest-RSSI favours the *adjacent* cars,
/// whose receptions correlate most with the requester's, so capping by
/// RSSI costs recovery; random-K preserves more diversity. Optimal
/// selection should weigh reception diversity, not link strength.
///
/// One campaign: three named cases (policy + cap pairs) x --repl
/// replications, in parallel on --threads workers.

#include <iomanip>
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace vanet;
  const Flags flags(argc, argv);
  bench::printHeader("Ablation: cooperator selection policy",
                     "Morillo-Pozo et al., ICDCS'08 W, §6 (future work)");

  runner::CampaignConfig campaign = bench::campaignFromFlags(
      flags, "urban", /*defaultRounds=*/15, /*defaultReplications=*/1);
  bench::applyUrbanFlags(flags, campaign.base);
  campaign.base.set("cars", flags.getInt("cars", 5));
  campaign.cases = {
      {"all-one-hop", {{"selection", 0.0}, {"max_coop", 8.0}}},
      {"best-rssi k=2", {{"selection", 1.0}, {"max_coop", 2.0}}},
      {"random k=2", {{"selection", 2.0}, {"max_coop", 2.0}}},
  };
  const runner::CampaignResult result = runner::runCampaign(campaign);

  std::cout << std::left << std::setw(16) << "policy" << std::right
            << std::setw(12) << "loss bef." << std::setw(12) << "loss aft."
            << std::setw(12) << "joint" << std::setw(16) << "CoopData/round"
            << "\n";
  for (const runner::GridPointSummary& point : result.points) {
    std::cout << std::left << std::setw(16) << point.caseName << std::right
              << std::fixed << std::setprecision(1) << std::setw(11)
              << point.metrics.at("pct_lost_before").mean() << "%"
              << std::setw(11) << point.metrics.at("pct_lost_after").mean()
              << "%" << std::setw(11)
              << point.metrics.at("pct_lost_joint").mean() << "%"
              << std::setw(16) << point.totals.coopDataPerRound.mean() << "\n";
  }
  bench::printThroughput(result);
  std::cout << "\nexpected shape: all-one-hop recovers the most; the capped"
               " policies trade recovery\nfor response traffic, and best-rssi"
               " trails random-k because the strongest\nneighbours are the"
               " closest, most-correlated ones -- selection should optimise"
               "\ndiversity, not RSSI (the paper's open question)\n";
  bench::maybeWriteCampaign(flags, "ablation_cooperator_selection", result);
  return 0;
}
