/// \file bench_ablation_cooperator_selection.cpp
/// Future-work study (paper §6): "an algorithm for selecting the optimal
/// cooperators has not been addressed". Compares the announcement policies
/// on a 5-car platoon where the cooperator cap bites: all one-hop
/// neighbours (the paper's prototype), strongest-K by smoothed HELLO RSSI,
/// and random-K. Finding: strongest-RSSI favours the *adjacent* cars,
/// whose receptions correlate most with the requester's, so capping by
/// RSSI costs recovery; random-K preserves more diversity. Optimal
/// selection should weigh reception diversity, not link strength.
///
/// Spec-driven: the three named cases (policy + cap pairs) live in
/// specs/ablation_cooperator_selection.json (--spec=PATH overrides) and
/// run x --repl replications in parallel on --threads workers.

#include <iomanip>
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace vanet;
  obs::setRunIdentity(argc, argv);
  const Flags flags(argc, argv);
  flags.allowOnly(bench::benchFlagNames(bench::urbanFlagNames()));
  const runner::CampaignSpec spec =
      bench::loadBenchSpec(flags, "ablation_cooperator_selection");

  runner::CampaignConfig campaign = bench::campaignFromSpec(flags, spec);
  bench::applyUrbanFlags(flags, campaign.base);
  const runner::CampaignResult result = runner::runCampaign(campaign);

  std::cout << std::left << std::setw(16) << "policy" << std::right
            << std::setw(12) << "loss bef." << std::setw(12) << "loss aft."
            << std::setw(12) << "joint" << std::setw(16) << "CoopData/round"
            << "\n";
  for (const runner::GridPointSummary& point : result.points) {
    std::cout << std::left << std::setw(16) << point.caseName << std::right
              << std::fixed << std::setprecision(1) << std::setw(11)
              << point.metrics.at("pct_lost_before").mean() << "%"
              << std::setw(11) << point.metrics.at("pct_lost_after").mean()
              << "%" << std::setw(11)
              << point.metrics.at("pct_lost_joint").mean() << "%"
              << std::setw(16) << point.totals.coopDataPerRound.mean() << "\n";
  }
  bench::printThroughput(result);
  std::cout << "\nexpected shape: all-one-hop recovers the most; the capped"
               " policies trade recovery\nfor response traffic, and best-rssi"
               " trails random-k because the strongest\nneighbours are the"
               " closest, most-correlated ones -- selection should optimise"
               "\ndiversity, not RSSI (the paper's open question)\n";
  bench::maybeWriteSpecArtifacts(flags, spec, result);
  return 0;
}
