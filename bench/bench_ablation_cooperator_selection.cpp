/// \file bench_ablation_cooperator_selection.cpp
/// Future-work study (paper §6): "an algorithm for selecting the optimal
/// cooperators has not been addressed". Compares the announcement policies
/// on a 5-car platoon where the cooperator cap bites: all one-hop
/// neighbours (the paper's prototype), strongest-K by smoothed HELLO RSSI,
/// and random-K. Finding: strongest-RSSI favours the *adjacent* cars,
/// whose receptions correlate most with the requester's, so capping by
/// RSSI costs recovery; random-K preserves more diversity. Optimal
/// selection should weigh reception diversity, not link strength.

#include <iomanip>
#include <iostream>
#include <string>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace vanet;
  const Flags flags(argc, argv);
  bench::printHeader("Ablation: cooperator selection policy",
                     "Morillo-Pozo et al., ICDCS'08 W, §6 (future work)");

  struct Policy {
    std::string name;
    carq::SelectionPolicy policy;
    int cap;
  };
  const Policy policies[] = {
      {"all-one-hop", carq::SelectionPolicy::kAllOneHop, 8},
      {"best-rssi k=2", carq::SelectionPolicy::kBestRssi, 2},
      {"random k=2", carq::SelectionPolicy::kRandomK, 2}};

  std::cout << std::left << std::setw(16) << "policy" << std::right
            << std::setw(12) << "loss bef." << std::setw(12) << "loss aft."
            << std::setw(12) << "joint" << std::setw(16) << "CoopData/round"
            << "\n";

  for (const Policy& entry : policies) {
    analysis::UrbanExperimentConfig config =
        bench::urbanConfigFromFlags(flags);
    config.rounds = flags.getInt("rounds", 15);
    config.scenario.carCount = flags.getInt("cars", 5);
    config.carq.selection = entry.policy;
    config.carq.maxCooperators = entry.cap;
    analysis::UrbanExperiment experiment(config);
    const auto result = experiment.run();
    double before = 0.0;
    double after = 0.0;
    double joint = 0.0;
    for (const auto& row : result.table1.rows) {
      before += row.pctLostBefore.mean();
      after += row.pctLostAfter.mean();
      joint += row.pctLostJoint.mean();
    }
    const auto cars = static_cast<double>(result.table1.rows.size());
    std::cout << std::left << std::setw(16) << entry.name << std::right
              << std::fixed << std::setprecision(1) << std::setw(11)
              << before / cars << "%" << std::setw(11) << after / cars << "%"
              << std::setw(11) << joint / cars << "%" << std::setw(16)
              << result.totals.coopDataPerRound.mean() << "\n";
  }
  std::cout << "\nexpected shape: all-one-hop recovers the most; the capped"
               " policies trade recovery\nfor response traffic, and best-rssi"
               " trails random-k because the strongest\nneighbours are the"
               " closest, most-correlated ones -- selection should optimise"
               "\ndiversity, not RSSI (the paper's open question)\n";
  return 0;
}
