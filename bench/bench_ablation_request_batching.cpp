/// \file bench_ablation_request_batching.cpp
/// Ablation for the paper's §3.3 optimisation: instead of one REQUEST per
/// missing packet, a REQUEST can carry the whole missing list. Compares
/// the two modes on recovery quality (after-coop loss), request traffic
/// and response traffic. Expected: batching preserves the loss reduction
/// while cutting REQUEST frames by roughly the batch factor.

#include <iomanip>
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace vanet;
  const Flags flags(argc, argv);
  bench::printHeader(
      "Ablation: per-packet vs batched REQUESTs",
      "Morillo-Pozo et al., ICDCS'08 W, §3.3 (proposed optimisation)");

  std::cout << std::left << std::setw(14) << "mode" << std::right
            << std::setw(12) << "loss bef." << std::setw(12) << "loss aft."
            << std::setw(14) << "REQ/round" << std::setw(12) << "seqs/REQ"
            << std::setw(16) << "CoopData/round" << "\n";

  for (const bool batched : {false, true}) {
    analysis::UrbanExperimentConfig config =
        bench::urbanConfigFromFlags(flags);
    config.carq.requestMode =
        batched ? carq::RequestMode::kBatched : carq::RequestMode::kPerPacket;
    config.carq.maxBatchSeqs = flags.getInt("batch", 16);
    analysis::UrbanExperiment experiment(config);
    const auto result = experiment.run();

    double before = 0.0;
    double after = 0.0;
    for (const auto& row : result.table1.rows) {
      before += row.pctLostBefore.mean();
      after += row.pctLostAfter.mean();
    }
    const auto cars = static_cast<double>(result.table1.rows.size());
    const double requests = result.totals.requestsPerRound.mean();
    const double seqs = result.totals.requestSeqsPerRound.mean();
    const double coopData = result.totals.coopDataPerRound.mean();
    std::cout << std::left << std::setw(14)
              << (batched ? "batched" : "per-packet") << std::right
              << std::fixed << std::setprecision(1) << std::setw(11)
              << before / cars << "%" << std::setw(11) << after / cars << "%"
              << std::setw(14) << requests << std::setw(12)
              << (requests > 0.0 ? seqs / requests : 0.0) << std::setw(16)
              << coopData << "\n";
  }
  std::cout << "\nexpected shape: equal loss columns, REQ/round shrinking by"
               " ~ the batch factor in batched mode\n";
  return 0;
}
