/// \file bench_ablation_request_batching.cpp
/// Ablation for the paper's §3.3 optimisation: instead of one REQUEST per
/// missing packet, a REQUEST can carry the whole missing list. Compares
/// the two modes on recovery quality (after-coop loss), request traffic
/// and response traffic. Expected: batching preserves the loss reduction
/// while cutting REQUEST frames by roughly the batch factor.
///
/// Spec-driven: the batched on/off grid lives in
/// specs/ablation_request_batching.json (--spec=PATH overrides; --batch=N
/// tweaks the list capacity) and is executed in parallel on --threads
/// workers.

#include <iomanip>
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace vanet;
  obs::setRunIdentity(argc, argv);
  const Flags flags(argc, argv);
  flags.allowOnly(bench::benchFlagNames(bench::urbanFlagNames(), {"batch"}));
  const runner::CampaignSpec spec =
      bench::loadBenchSpec(flags, "ablation_request_batching");

  runner::CampaignConfig campaign = bench::campaignFromSpec(flags, spec);
  bench::applyUrbanFlags(flags, campaign.base);
  if (flags.has("batch")) {
    campaign.base.set("batch", flags.getInt("batch", 16));
  }
  const runner::CampaignResult result = runner::runCampaign(campaign);

  std::cout << std::left << std::setw(14) << "mode" << std::right
            << std::setw(12) << "loss bef." << std::setw(12) << "loss aft."
            << std::setw(14) << "REQ/round" << std::setw(12) << "seqs/REQ"
            << std::setw(16) << "CoopData/round" << "\n";
  for (const runner::GridPointSummary& point : result.points) {
    const double requests = point.totals.requestsPerRound.mean();
    const double seqs = point.totals.requestSeqsPerRound.mean();
    std::cout << std::left << std::setw(14)
              << (point.params.getBool("batched", false) ? "batched"
                                                         : "per-packet")
              << std::right << std::fixed << std::setprecision(1)
              << std::setw(11) << point.metrics.at("pct_lost_before").mean()
              << "%" << std::setw(11)
              << point.metrics.at("pct_lost_after").mean() << "%"
              << std::setw(14) << requests << std::setw(12)
              << (requests > 0.0 ? seqs / requests : 0.0) << std::setw(16)
              << point.totals.coopDataPerRound.mean() << "\n";
  }
  bench::printThroughput(result);
  std::cout << "\nexpected shape: equal loss columns, REQ/round shrinking by"
               " ~ the batch factor in batched mode\n";
  bench::maybeWriteSpecArtifacts(flags, spec, result);
  return 0;
}
