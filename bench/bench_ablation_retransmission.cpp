/// \file bench_ablation_retransmission.cpp
/// Future-work study (paper §3.2): the prototype deliberately disables AP
/// retransmissions, betting that the channel is better spent on new data
/// with cooperative repair in the dark area. This bench compares, under
/// the same channel budget (15 frames/s):
///   * plain        - no retransmissions, no cooperation (baseline)
///   * blind-retx r - every packet sent r times, no cooperation
///   * c-arq        - no retransmissions, cooperation enabled
///   * retx+c-arq   - both combined
/// Metrics: unique packets offered per window, per-packet loss after all
/// repair, and unique packets delivered (the goodput proxy). Expected:
/// blind repetition lowers loss but halves/thirds the offered window;
/// C-ARQ delivers the most unique packets.
///
/// Spec-driven: the five named cases (repeat + coop combos) live in
/// specs/ablation_retransmission.json (--spec=PATH overrides) and run
/// x --repl replications in parallel on --threads workers.

#include <iomanip>
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace vanet;
  obs::setRunIdentity(argc, argv);
  const Flags flags(argc, argv);
  flags.allowOnly(bench::benchFlagNames(bench::urbanFlagNames()));
  const runner::CampaignSpec spec =
      bench::loadBenchSpec(flags, "ablation_retransmission");

  runner::CampaignConfig campaign = bench::campaignFromSpec(flags, spec);
  bench::applyUrbanFlags(flags, campaign.base);
  const runner::CampaignResult result = runner::runCampaign(campaign);

  std::cout << std::left << std::setw(18) << "variant" << std::right
            << std::setw(12) << "offered" << std::setw(12) << "loss"
            << std::setw(14) << "delivered" << "\n";
  for (const runner::GridPointSummary& point : result.points) {
    std::cout << std::left << std::setw(18) << point.caseName << std::right
              << std::fixed << std::setprecision(1) << std::setw(12)
              << point.metrics.at("tx_by_ap").mean() << std::setw(11)
              << point.metrics.at("pct_lost_after").mean() << "%"
              << std::setw(14) << point.metrics.at("delivered").mean()
              << "\n";
  }
  bench::printThroughput(result);
  std::cout << "\nexpected shape: blind repeats cut loss but shrink the"
               " offered window; c-arq tops the delivered column\n";
  bench::maybeWriteSpecArtifacts(flags, spec, result);
  return 0;
}
