/// \file bench_ablation_retransmission.cpp
/// Future-work study (paper §3.2): the prototype deliberately disables AP
/// retransmissions, betting that the channel is better spent on new data
/// with cooperative repair in the dark area. This bench compares, under
/// the same channel budget (15 frames/s):
///   * plain        - no retransmissions, no cooperation (baseline)
///   * blind-retx r - every packet sent r times, no cooperation
///   * c-arq        - no retransmissions, cooperation enabled
///   * retx+c-arq   - both combined
/// Metrics: unique packets offered per window, per-packet loss after all
/// repair, and unique packets delivered (the goodput proxy). Expected:
/// blind repetition lowers loss but halves/thirds the offered window;
/// C-ARQ delivers the most unique packets.

#include <iomanip>
#include <iostream>
#include <string>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace vanet;
  const Flags flags(argc, argv);
  bench::printHeader("Ablation: AP blind retransmissions vs Cooperative ARQ",
                     "Morillo-Pozo et al., ICDCS'08 W, §3.2 (future work)");

  struct Variant {
    std::string name;
    int repeat;
    bool coop;
  };
  const Variant variants[] = {{"plain", 1, false},
                              {"blind-retx x2", 2, false},
                              {"blind-retx x3", 3, false},
                              {"c-arq", 1, true},
                              {"retx x2 + c-arq", 2, true}};

  std::cout << std::left << std::setw(18) << "variant" << std::right
            << std::setw(12) << "offered" << std::setw(12) << "loss"
            << std::setw(14) << "delivered" << "\n";

  for (const Variant& variant : variants) {
    analysis::UrbanExperimentConfig config =
        bench::urbanConfigFromFlags(flags);
    config.rounds = flags.getInt("rounds", 15);
    config.repeatCount = variant.repeat;
    config.carq.cooperationEnabled = variant.coop;
    analysis::UrbanExperiment experiment(config);
    const auto result = experiment.run();
    double offered = 0.0;
    double lostPct = 0.0;
    double delivered = 0.0;
    for (const auto& row : result.table1.rows) {
      offered += row.txByAp.mean();
      lostPct += row.pctLostAfter.mean();
      delivered += row.txByAp.mean() - row.lostAfter.mean();
    }
    const auto cars = static_cast<double>(result.table1.rows.size());
    std::cout << std::left << std::setw(18) << variant.name << std::right
              << std::fixed << std::setprecision(1) << std::setw(12)
              << offered / cars << std::setw(11) << lostPct / cars << "%"
              << std::setw(14) << delivered / cars << "\n";
  }
  std::cout << "\nexpected shape: blind repeats cut loss but shrink the"
               " offered window; c-arq tops the delivered column\n";
  return 0;
}
