/// \file bench_ablation_c2c_quality.cpp
/// Stress test of the Figures 6-8 optimality claim: the after-coop curve
/// coincides with the joint curve only while the car-to-car channel can
/// actually deliver REQUESTs and CoopData. Sweeps the car-to-car reference
/// loss (40 dB = clean street LOS up to ~85 dB = heavily obstructed) and
/// prints the optimality gap (after-coop loss minus joint loss). Expected:
/// near-zero gap for clean links, growing monotonically as the C2C channel
/// degrades, with before-coop losses unchanged (the AP link is untouched).

#include <iomanip>
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace vanet;
  const Flags flags(argc, argv);
  bench::printHeader("Ablation: car-to-car channel quality sweep",
                     "Morillo-Pozo et al., ICDCS'08 W, Figs. 6-8 optimality");

  std::cout << std::left << std::setw(16) << "c2c refloss" << std::right
            << std::setw(12) << "loss bef." << std::setw(12) << "loss aft."
            << std::setw(12) << "joint" << std::setw(18) << "optimality gap"
            << "\n";

  for (const double refLoss : {40.0, 70.0, 85.0, 90.0, 95.0, 100.0}) {
    analysis::UrbanExperimentConfig config =
        bench::urbanConfigFromFlags(flags);
    config.rounds = flags.getInt("rounds", 15);
    config.channel.c2cReferenceLossDb = refLoss;
    analysis::UrbanExperiment experiment(config);
    const auto result = experiment.run();
    double before = 0.0;
    double after = 0.0;
    double joint = 0.0;
    for (const auto& row : result.table1.rows) {
      before += row.pctLostBefore.mean();
      after += row.pctLostAfter.mean();
      joint += row.pctLostJoint.mean();
    }
    const auto cars = static_cast<double>(result.table1.rows.size());
    std::cout << std::left << std::setw(13) << refLoss << " dB" << std::right
              << std::fixed << std::setprecision(1) << std::setw(11)
              << before / cars << "%" << std::setw(11) << after / cars << "%"
              << std::setw(11) << joint / cars << "%" << std::setw(17)
              << (after - joint) / cars << "%\n";
  }
  std::cout << "\nexpected shape: constant before/joint columns; the gap"
               " stays ~0 through moderate\ndegradation (the long dark area"
               " provides time diversity: the request cycle keeps\nretrying"
               " for tens of seconds) and snaps open once car-to-car links"
               " fall below\nsensitivity (~90+ dB reference loss at platoon"
               " distances)\n";
  return 0;
}
