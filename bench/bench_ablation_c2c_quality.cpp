/// \file bench_ablation_c2c_quality.cpp
/// Stress test of the Figures 6-8 optimality claim: the after-coop curve
/// coincides with the joint curve only while the car-to-car channel can
/// actually deliver REQUESTs and CoopData. Sweeps the car-to-car reference
/// loss (40 dB = clean street LOS up to ~100 dB = heavily obstructed) and
/// prints the optimality gap (after-coop loss minus joint loss). Expected:
/// near-zero gap for clean links, growing monotonically as the C2C channel
/// degrades, with before-coop losses unchanged (the AP link is untouched).
///
/// Spec-driven: the c2c_ref_loss axis lives in
/// specs/ablation_c2c_quality.json (--spec=PATH overrides) and runs
/// x --repl replications in parallel on --threads workers.

#include <iomanip>
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace vanet;
  obs::setRunIdentity(argc, argv);
  const Flags flags(argc, argv);
  flags.allowOnly(bench::benchFlagNames(bench::urbanFlagNames()));
  const runner::CampaignSpec spec =
      bench::loadBenchSpec(flags, "ablation_c2c_quality");

  runner::CampaignConfig campaign = bench::campaignFromSpec(flags, spec);
  bench::applyUrbanFlags(flags, campaign.base);
  const runner::CampaignResult result = runner::runCampaign(campaign);

  std::cout << std::left << std::setw(16) << "c2c refloss" << std::right
            << std::setw(12) << "loss bef." << std::setw(12) << "loss aft."
            << std::setw(12) << "joint" << std::setw(18) << "optimality gap"
            << "\n";
  for (const runner::GridPointSummary& point : result.points) {
    const double before = point.metrics.at("pct_lost_before").mean();
    const double after = point.metrics.at("pct_lost_after").mean();
    const double joint = point.metrics.at("pct_lost_joint").mean();
    std::cout << std::left << std::setw(13)
              << point.params.get("c2c_ref_loss", 0.0) << " dB" << std::right
              << std::fixed << std::setprecision(1) << std::setw(11) << before
              << "%" << std::setw(11) << after << "%" << std::setw(11)
              << joint << "%" << std::setw(17) << after - joint << "%\n";
  }
  bench::printThroughput(result);
  std::cout << "\nexpected shape: constant before/joint columns; the gap"
               " stays ~0 through moderate\ndegradation (the long dark area"
               " provides time diversity: the request cycle keeps\nretrying"
               " for tens of seconds) and snaps open once car-to-car links"
               " fall below\nsensitivity (~90+ dB reference loss at platoon"
               " distances)\n";
  bench::maybeWriteSpecArtifacts(flags, spec, result);
  return 0;
}
