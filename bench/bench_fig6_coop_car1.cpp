/// \file bench_fig6_coop_car1.cpp
/// Regenerates Figure 6: probability of reception in car 1 after
/// Cooperative ARQ versus the joint probability of reception in any car.
/// Paper claim: the two curves are almost coincident — the protocol is
/// near-optimal, performing like a virtual car enjoying the best reception
/// conditions of the whole platoon. The bench also prints the mean and max
/// gap between the two curves to quantify "almost".

#include "bench_fig_common.h"

int main(int argc, char** argv) {
  return vanet::bench::runFigureBench(
      argc, argv, /*flow=*/1, vanet::bench::FigureKind::kCooperation,
      "Figure 6: P(reception) with C-ARQ in car 1 vs joint reception",
      "Morillo-Pozo et al., ICDCS'08 W, Figure 6");
}
