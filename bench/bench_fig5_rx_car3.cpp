/// \file bench_fig5_rx_car3.cpp
/// Regenerates Figure 5: probability of reception, per packet number, of
/// the packets addressed to car 3 at each of the three cars. Paper shape:
/// while car 3 enters the coverage area (Region I) cars 1 and 2 hear its
/// packets better; when car 3 leaves (Region III) car 1 is already almost
/// out of coverage and helps little.

#include "bench_fig_common.h"

int main(int argc, char** argv) {
  return vanet::bench::runFigureBench(
      argc, argv, /*flow=*/3, vanet::bench::FigureKind::kReception,
      "Figure 5: P(reception) of car 3's packets at cars 1/2/3",
      "Morillo-Pozo et al., ICDCS'08 W, Figure 5");
}
