/// \file bench_ablation_speed.cpp
/// Drive-thru speed sweep, connecting to Ott & Kutscher (the paper's [1]):
/// a platoon passes a single highway AP at 20..120 km/h. Higher speed
/// means a shorter coverage window (fewer packets offered) and a coarser
/// chance to recover, but the relative C-ARQ gain persists. Prints per-
/// speed packets offered, losses before/after cooperation and the joint
/// bound, averaged over the platoon.

#include <iomanip>
#include <iostream>

#include "analysis/experiment.h"
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace vanet;
  const Flags flags(argc, argv);
  bench::printHeader("Ablation: drive-thru speed sweep (single highway AP)",
                     "Morillo-Pozo et al., ICDCS'08 W, §1/§4 via ref [1]");

  std::cout << std::left << std::setw(10) << "km/h" << std::right
            << std::setw(12) << "tx by AP" << std::setw(12) << "loss bef."
            << std::setw(12) << "loss aft." << std::setw(12) << "joint"
            << "\n";

  for (const double kmh : {20.0, 40.0, 60.0, 80.0, 100.0, 120.0}) {
    analysis::HighwayExperimentConfig config;
    config.rounds = flags.getInt("rounds", 15);
    config.seed = static_cast<std::uint64_t>(flags.getInt("seed", 2008));
    config.scenario.carCount = flags.getInt("cars", 3);
    config.scenario.speedMps = kmh / 3.6;
    config.scenario.apCount = 1;
    config.scenario.roadLengthMetres = 2400.0;
    config.scenario.firstApArc = 1200.0;
    config.scenario.gapSeconds = 1.2;
    analysis::HighwayExperiment experiment(config);
    const auto result = experiment.run();
    double tx = 0.0;
    double before = 0.0;
    double after = 0.0;
    double joint = 0.0;
    for (const auto& row : result.table1.rows) {
      tx += row.txByAp.mean();
      before += row.pctLostBefore.mean();
      after += row.pctLostAfter.mean();
      joint += row.pctLostJoint.mean();
    }
    const auto cars = static_cast<double>(result.table1.rows.size());
    std::cout << std::left << std::setw(10) << kmh << std::right << std::fixed
              << std::setprecision(1) << std::setw(12) << tx / cars
              << std::setw(11) << before / cars << "%" << std::setw(11)
              << after / cars << "%" << std::setw(11) << joint / cars
              << "%\n";
  }
  std::cout << "\nexpected shape: offered packets fall ~1/speed (the"
               " drive-thru window shrinks);\nloss percentages stay roughly"
               " speed-invariant without rate adaptation, and the\nafter-coop"
               " column hugs the joint bound. The bound is looser than in the"
               " urban\nscenario: a tight platoon crosses the same coverage"
               " edges together, so open-road\ndiversity is limited -- the"
               " staggered urban entries/exits are where C-ARQ shines\n";
  return 0;
}
