/// \file bench_ablation_speed.cpp
/// Drive-thru speed sweep, connecting to Ott & Kutscher (the paper's [1]):
/// a platoon passes a single highway AP at 20..120 km/h. Higher speed
/// means a shorter coverage window (fewer packets offered) and a coarser
/// chance to recover, but the relative C-ARQ gain persists. Prints per-
/// speed packets offered, losses before/after cooperation and the joint
/// bound, averaged over the platoon.
///
/// The sweep is one campaign-engine grid (speed_kmh axis x --repl
/// replications), so the six speeds run concurrently on --threads workers.

#include <iomanip>
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace vanet;
  const Flags flags(argc, argv);
  bench::printHeader("Ablation: drive-thru speed sweep (single highway AP)",
                     "Morillo-Pozo et al., ICDCS'08 W, §1/§4 via ref [1]");

  runner::CampaignConfig campaign = bench::campaignFromFlags(
      flags, "highway", /*defaultRounds=*/5, /*defaultReplications=*/3);
  campaign.base.set("aps", 1);
  campaign.base.set("road_length", 2400.0);
  campaign.base.set("first_ap_arc", 1200.0);
  campaign.base.set("gap_seconds", 1.2);
  campaign.grid.add("speed_kmh", {20.0, 40.0, 60.0, 80.0, 100.0, 120.0});
  const runner::CampaignResult result = runner::runCampaign(campaign);

  std::cout << std::left << std::setw(10) << "km/h" << std::right
            << std::setw(12) << "tx by AP" << std::setw(12) << "loss bef."
            << std::setw(12) << "loss aft." << std::setw(12) << "joint"
            << "\n";
  for (const runner::GridPointSummary& point : result.points) {
    std::cout << std::left << std::setw(10)
              << point.params.get("speed_kmh", 0.0) << std::right << std::fixed
              << std::setprecision(1) << std::setw(12)
              << point.metrics.at("tx_by_ap").mean() << std::setw(11)
              << point.metrics.at("pct_lost_before").mean() << "%"
              << std::setw(11) << point.metrics.at("pct_lost_after").mean()
              << "%" << std::setw(11)
              << point.metrics.at("pct_lost_joint").mean() << "%\n";
  }
  bench::printThroughput(result);
  std::cout << "\nexpected shape: offered packets fall ~1/speed (the"
               " drive-thru window shrinks);\nloss percentages stay roughly"
               " speed-invariant without rate adaptation, and the\nafter-coop"
               " column hugs the joint bound. The bound is looser than in the"
               " urban\nscenario: a tight platoon crosses the same coverage"
               " edges together, so open-road\ndiversity is limited -- the"
               " staggered urban entries/exits are where C-ARQ shines\n";
  bench::maybeWriteCampaign(flags, "ablation_speed", result);
  return 0;
}
