/// \file bench_ablation_speed.cpp
/// Drive-thru speed sweep, connecting to Ott & Kutscher (the paper's [1]):
/// a platoon passes a single highway AP at 20..120 km/h. Higher speed
/// means a shorter coverage window (fewer packets offered) and a coarser
/// chance to recover, but the relative C-ARQ gain persists. Prints per-
/// speed packets offered, losses before/after cooperation and the joint
/// bound, averaged over the platoon.
///
/// Spec-driven: the sweep definition lives in specs/ablation_speed.json
/// (--spec=PATH overrides); the six speeds run concurrently on --threads
/// workers, and `vanet_campaign run specs/ablation_speed.json` produces
/// byte-identical artefacts.

#include <iomanip>
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace vanet;
  obs::setRunIdentity(argc, argv);
  const Flags flags(argc, argv);
  flags.allowOnly(bench::benchFlagNames());
  const runner::CampaignSpec spec =
      bench::loadBenchSpec(flags, "ablation_speed");

  const runner::CampaignConfig campaign = bench::campaignFromSpec(flags, spec);
  const runner::CampaignResult result = runner::runCampaign(campaign);

  std::cout << std::left << std::setw(10) << "km/h" << std::right
            << std::setw(12) << "tx by AP" << std::setw(12) << "loss bef."
            << std::setw(12) << "loss aft." << std::setw(12) << "joint"
            << "\n";
  for (const runner::GridPointSummary& point : result.points) {
    std::cout << std::left << std::setw(10)
              << point.params.get("speed_kmh", 0.0) << std::right << std::fixed
              << std::setprecision(1) << std::setw(12)
              << point.metrics.at("tx_by_ap").mean() << std::setw(11)
              << point.metrics.at("pct_lost_before").mean() << "%"
              << std::setw(11) << point.metrics.at("pct_lost_after").mean()
              << "%" << std::setw(11)
              << point.metrics.at("pct_lost_joint").mean() << "%\n";
  }
  bench::printThroughput(result);
  std::cout << "\nexpected shape: offered packets fall ~1/speed (the"
               " drive-thru window shrinks);\nloss percentages stay roughly"
               " speed-invariant without rate adaptation, and the\nafter-coop"
               " column hugs the joint bound. The bound is looser than in the"
               " urban\nscenario: a tight platoon crosses the same coverage"
               " edges together, so open-road\ndiversity is limited -- the"
               " staggered urban entries/exits are where C-ARQ shines\n";
  bench::maybeWriteSpecArtifacts(flags, spec, result);
  return 0;
}
