/// \file bench_fig7_coop_car2.cpp
/// Regenerates Figure 7: probability of reception in car 2 after
/// Cooperative ARQ versus the joint probability. Paper shape: car 2's
/// early packets are repaired by car 1 (Region I of Figure 4), and the
/// after-coop curve tracks the joint curve closely.

#include "bench_fig_common.h"

int main(int argc, char** argv) {
  return vanet::bench::runFigureBench(
      argc, argv, /*flow=*/2, vanet::bench::FigureKind::kCooperation,
      "Figure 7: P(reception) with C-ARQ in car 2 vs joint reception",
      "Morillo-Pozo et al., ICDCS'08 W, Figure 7");
}
