/// \file bench_ablation_infostation_density.cpp
/// Future-work study (paper §6): "how the presented loss reduction can
/// reduce the number of APs that a vehicular node needs to visit to
/// download a file". A platoon drives a highway with Infostations every
/// `--spacing` metres, each cycling the same F-packet file per car.
/// Compares cooperation on/off on: AP visits needed to complete the file,
/// completion time, and completion rate within the road. Expected: with
/// C-ARQ the platoon fills its gaps between APs and completes the file
/// one-to-several AP visits earlier.
///
/// The on/off comparison is one campaign-engine grid (coop axis x --repl
/// replications) executed in parallel on --threads workers.

#include <iomanip>
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace vanet;
  const Flags flags(argc, argv);
  bench::printHeader(
      "Ablation: Infostation density / file download (AP visits to finish)",
      "Morillo-Pozo et al., ICDCS'08 W, §6 (future work)");

  runner::CampaignConfig campaign = bench::campaignFromFlags(
      flags, "highway_file", /*defaultRounds=*/5, /*defaultReplications=*/2);
  campaign.base.set("aps", flags.getInt("aps", 8));
  campaign.base.set("spacing", flags.getDouble("spacing", 700.0));
  campaign.base.set("speed_kmh", flags.getDouble("speed-kmh", 50.0));
  campaign.base.set("file", flags.getInt("file", 220));
  campaign.grid.add("coop", {0.0, 1.0});
  const runner::CampaignResult result = runner::runCampaign(campaign);

  std::cout << "file size: " << campaign.base.getInt("file", 220)
            << " packets per car\n\n";
  std::cout << std::left << std::setw(10) << "coop" << std::right
            << std::setw(12) << "completed" << std::setw(16) << "AP visits"
            << std::setw(18) << "time to finish" << "\n";
  for (const runner::GridPointSummary& point : result.points) {
    const double completed = point.metrics.at("completed_rounds").sum();
    const double attempted = point.metrics.at("attempted_rounds").sum();
    std::cout << std::left << std::setw(10)
              << (point.params.getBool("coop", true) ? "on" : "off")
              << std::right << std::fixed << std::setprecision(1)
              << std::setw(8) << completed << "/" << std::left << std::setw(3)
              << attempted << std::right << std::setw(16)
              << point.metrics.at("ap_visits").mean() << std::setw(16)
              << point.metrics.at("time_to_complete_s").mean() << " s\n";
  }
  bench::printThroughput(result);
  std::cout << "\nexpected shape: cooperation completes the same file with"
               " fewer AP visits and earlier\n";
  bench::maybeWriteCampaign(flags, "ablation_infostation_density", result);
  return 0;
}
