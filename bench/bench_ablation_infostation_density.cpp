/// \file bench_ablation_infostation_density.cpp
/// Future-work study (paper §6): "how the presented loss reduction can
/// reduce the number of APs that a vehicular node needs to visit to
/// download a file". A platoon drives a highway with Infostations every
/// `--spacing` metres, each cycling the same F-packet file per car.
/// Compares cooperation on/off on: AP visits needed to complete the file,
/// completion time, and completion rate within the road. Expected: with
/// C-ARQ the platoon fills its gaps between APs and completes the file
/// one-to-several AP visits earlier.

#include <iomanip>
#include <iostream>

#include "analysis/experiment.h"
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace vanet;
  const Flags flags(argc, argv);
  bench::printHeader(
      "Ablation: Infostation density / file download (AP visits to finish)",
      "Morillo-Pozo et al., ICDCS'08 W, §6 (future work)");

  const SeqNo fileSize = static_cast<SeqNo>(flags.getInt("file", 220));
  std::cout << "file size: " << fileSize << " packets per car\n\n";
  std::cout << std::left << std::setw(10) << "coop" << std::right
            << std::setw(12) << "completed" << std::setw(16) << "AP visits"
            << std::setw(18) << "time to finish" << "\n";

  for (const bool coop : {false, true}) {
    analysis::HighwayExperimentConfig config;
    config.rounds = flags.getInt("rounds", 10);
    config.seed = static_cast<std::uint64_t>(flags.getInt("seed", 2008));
    config.scenario.carCount = flags.getInt("cars", 3);
    config.scenario.apCount = flags.getInt("aps", 8);
    config.scenario.apSpacing = flags.getDouble("spacing", 700.0);
    config.scenario.roadLengthMetres =
        config.scenario.firstApArc +
        config.scenario.apSpacing * (config.scenario.apCount - 1) + 500.0;
    config.scenario.speedMps = flags.getDouble("speed-kmh", 50.0) / 3.6;
    config.carq.fileSizeSeqs = fileSize;
    config.carq.cooperationEnabled = coop;
    analysis::HighwayExperiment experiment(config);
    const auto result = experiment.run();

    RunningStats visits;
    RunningStats seconds;
    int completed = 0;
    int total = 0;
    for (const auto& [car, carResult] : result.cars) {
      completed += carResult.completedRounds;
      total += config.rounds;
      visits.merge(carResult.apVisitsToComplete);
      seconds.merge(carResult.timeToCompleteSeconds);
    }
    std::cout << std::left << std::setw(10) << (coop ? "on" : "off")
              << std::right << std::fixed << std::setprecision(1)
              << std::setw(8) << completed << "/" << std::left << std::setw(3)
              << total << std::right << std::setw(16) << visits.mean()
              << std::setw(16) << seconds.mean() << " s\n";
  }
  std::cout << "\nexpected shape: cooperation completes the same file with"
               " fewer AP visits and earlier\n";
  return 0;
}
