/// \file bench_ablation_infostation_density.cpp
/// Future-work study (paper §6): "how the presented loss reduction can
/// reduce the number of APs that a vehicular node needs to visit to
/// download a file". A platoon drives a highway with Infostations every
/// `--spacing` metres, each cycling the same F-packet file per car.
/// Compares cooperation on/off on: AP visits needed to complete the file,
/// completion time, and completion rate within the road. Expected: with
/// C-ARQ the platoon fills its gaps between APs and completes the file
/// one-to-several AP visits earlier.
///
/// Spec-driven: the on/off grid lives in
/// specs/ablation_infostation_density.json (--spec=PATH overrides;
/// --aps/--spacing/--speed-kmh/--file tweak the scene) and is executed in
/// parallel on --threads workers.

#include <iomanip>
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace vanet;
  obs::setRunIdentity(argc, argv);
  const Flags flags(argc, argv);
  flags.allowOnly(
      bench::benchFlagNames({"aps", "spacing", "speed-kmh", "file"}));
  const runner::CampaignSpec spec =
      bench::loadBenchSpec(flags, "ablation_infostation_density");

  runner::CampaignConfig campaign = bench::campaignFromSpec(flags, spec);
  if (flags.has("aps")) campaign.base.set("aps", flags.getInt("aps", 8));
  if (flags.has("spacing")) {
    campaign.base.set("spacing", flags.getDouble("spacing", 700.0));
  }
  if (flags.has("speed-kmh")) {
    campaign.base.set("speed_kmh", flags.getDouble("speed-kmh", 50.0));
  }
  if (flags.has("file")) campaign.base.set("file", flags.getInt("file", 220));
  const runner::CampaignResult result = runner::runCampaign(campaign);

  std::cout << "file size: " << campaign.base.getInt("file", 220)
            << " packets per car\n\n";
  std::cout << std::left << std::setw(10) << "coop" << std::right
            << std::setw(12) << "completed" << std::setw(16) << "AP visits"
            << std::setw(18) << "time to finish" << "\n";
  for (const runner::GridPointSummary& point : result.points) {
    const double completed = point.metrics.at("completed_rounds").sum();
    const double attempted = point.metrics.at("attempted_rounds").sum();
    std::cout << std::left << std::setw(10)
              << (point.params.getBool("coop", true) ? "on" : "off")
              << std::right << std::fixed << std::setprecision(1)
              << std::setw(8) << completed << "/" << std::left << std::setw(3)
              << attempted << std::right << std::setw(16)
              << point.metrics.at("ap_visits").mean() << std::setw(16)
              << point.metrics.at("time_to_complete_s").mean() << " s\n";
  }
  bench::printThroughput(result);
  std::cout << "\nexpected shape: cooperation completes the same file with"
               " fewer AP visits and earlier\n";
  bench::maybeWriteSpecArtifacts(flags, spec, result);
  return 0;
}
