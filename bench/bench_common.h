#pragma once

/// Shared plumbing for the bench harnesses. Every bench runs on the
/// campaign engine: the helpers here translate the shared CLI flags into
/// a CampaignConfig, print throughput footers and write the emitted
/// artefacts.
///
/// Common flags (all benches):
///   --rounds=N       rounds per replication
///   --seed=S         master seed (default 2008)
///   --cars=N         platoon size (default 3)
///   --repl=N         independent replications per grid point
///   --threads=N      campaign job workers (0 = hardware concurrency)
///   --round-threads=N  round workers inside each job (1 = serial)
///   --csv=DIR        also write CSV/JSON outputs into DIR
///   --shard=i/N      run only shard i of N (whole grid points)
///   --partial-out=F  write this shard's partial-result JSON to F
///   --streaming      bounded-memory streaming accumulation

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "analysis/csv.h"
#include "analysis/experiment.h"
#include "analysis/figures.h"
#include "analysis/table1.h"
#include "runner/campaign.h"
#include "runner/emit.h"
#include "util/flags.h"

namespace vanet::bench {

/// Common campaign skeleton from the shared flags. `defaultRounds` are
/// rounds *per replication*: a bench that used to run 30 serial rounds now
/// runs e.g. 3 replications x 10 rounds, which merge to the same sample
/// count but parallelise.
inline runner::CampaignConfig campaignFromFlags(const Flags& flags,
                                                std::string scenario,
                                                int defaultRounds,
                                                int defaultReplications) {
  const CampaignRunFlags run = campaignRunFlags(flags);
  runner::CampaignConfig config;
  config.scenario = std::move(scenario);
  config.masterSeed = run.seed;
  config.replications = flags.getInt("repl", defaultReplications);
  config.threads = run.threads;
  config.roundThreads = run.roundThreads;
  config.shard = runner::Shard{run.shard.index, run.shard.count};
  config.streaming = run.streaming;
  config.base.set("rounds", flags.getInt("rounds", defaultRounds));
  config.base.set("cars", flags.getInt("cars", 3));
  return config;
}

/// Urban-scenario overrides from the optional tuning flags.
inline void applyUrbanFlags(const Flags& flags, runner::ParamSet& base) {
  if (flags.has("speed-kmh")) {
    base.set("speed_kmh", flags.getDouble("speed-kmh", 20.0));
  }
  if (flags.getBool("no-coop", false)) base.set("coop", 0);
  if (flags.getBool("batched", false)) base.set("batched", 1);
  if (flags.getBool("gossip", false)) base.set("gossip", 1);
  if (flags.getBool("fc", false)) base.set("fc", 1);
  if (flags.has("repeat")) base.set("repeat", flags.getInt("repeat", 1));
  if (flags.has("phy")) base.set("phy", flags.getInt("phy", 0));
  if (flags.has("nakagami")) {
    base.set("nakagami", flags.getDouble("nakagami", 0.0));
  }
}

/// Writes the shard's partial-result JSON when --partial-out is given.
/// Only reached on a successful run: a failed campaign throws out of
/// runCampaign before any summary exists, so a shard file is never
/// truncated. A failed *write* exits non-zero -- a shard pipeline must
/// never see success next to a missing or stale partial file.
inline void maybeWritePartial(const Flags& flags,
                              const runner::CampaignResult& result) {
  const std::string path = flags.getString("partial-out", "");
  if (path.empty()) return;
  if (!runner::writeCampaignPartial(path, runner::campaignPartial(result))) {
    std::exit(1);
  }
  std::cout << "wrote " << path << "\n";
}

/// Writes the campaign CSV + JSON summaries when --csv is given, and the
/// shard partial when --partial-out is given.
inline void maybeWriteCampaign(const Flags& flags, const std::string& name,
                               const runner::CampaignResult& result) {
  maybeWritePartial(flags, result);
  const std::string dir = flags.getString("csv", "");
  if (dir.empty()) return;
  const std::string csvPath = dir + "/" + name + "_campaign.csv";
  if (runner::writeCampaignCsv(csvPath, result)) {
    std::cout << "wrote " << csvPath << "\n";
  }
  const std::string jsonPath = dir + "/" + name + "_campaign.json";
  if (runner::writeCampaignJson(jsonPath, result)) {
    std::cout << "wrote " << jsonPath << "\n";
  }
}

/// Writes one figure-series CSV per (grid point, flow) when --csv is
/// given (see runner::writeCampaignFigureCsvs for the naming).
inline void maybeWriteFigures(const Flags& flags, const std::string& name,
                              const runner::CampaignResult& result) {
  const std::string dir = flags.getString("csv", "");
  if (dir.empty()) return;
  const std::size_t written =
      runner::writeCampaignFigureCsvs(dir, name, result);
  if (written > 0) {
    std::cout << "wrote " << written << " figure CSV(s) under " << dir
              << "/" << name << "*\n";
  }
}

/// The per-bench throughput footer.
inline void printThroughput(const runner::CampaignResult& result) {
  char footer[128];
  std::snprintf(footer, sizeof footer,
                "\n%zu jobs in %.2f s (%.2f jobs/s, %d threads)\n",
                result.jobCount, result.wallSeconds, result.jobsPerSecond,
                result.threads);
  std::cout << footer;
}

inline void printHeader(const std::string& title, const std::string& paperRef) {
  std::cout << "==============================================================="
               "=========\n";
  std::cout << title << "\n";
  std::cout << "reproduces: " << paperRef << "\n";
  std::cout << "==============================================================="
               "=========\n";
}

}  // namespace vanet::bench
