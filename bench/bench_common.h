#pragma once

/// Shared plumbing for the bench harnesses. Every bench runs on the
/// campaign engine: the helpers here translate the shared CLI flags into
/// a CampaignConfig, print throughput footers and write the emitted
/// artefacts.
///
/// Common flags (all benches):
///   --rounds=N       rounds per replication
///   --seed=S         master seed (default 2008)
///   --cars=N         platoon size (default 3)
///   --repl=N         independent replications per grid point
///   --threads=N      campaign job workers (0 = hardware concurrency)
///   --round-threads=N  round workers inside each job (1 = serial)
///   --csv=DIR        also write CSV/JSON outputs into DIR
///   --shard=i/N      run only shard i of N (whole grid points)
///   --partial-out=F  write this shard's partial result to F
///   --partial-format=bin|json  partial encoding (default: binary for
///                    --shard runs, JSON otherwise)
///   --checkpoint=F   write a binary checkpoint partial at every wave
///                    barrier (atomically; resume point after a kill)
///   --resume         restore from --checkpoint=F and continue; final
///                    artifacts byte-match the uninterrupted run
///   --halt-after-waves=K  stop after K wave barriers (kill simulation)
///   --streaming      bounded-memory streaming accumulation
///   --target-ci=X    adaptive replication: per grid point, keep
///                    replicating in doubling waves until the 95 % CI
///                    half-width of the target metric / |mean| <= X
///   --min-reps=N     adaptive floor (default: the --repl count)
///   --max-reps=N     adaptive cap (default 64)
///   --target-metric=M  stop-rule metric (default: scenario's, e.g. pdr)

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/csv.h"
#include "analysis/experiment.h"
#include "analysis/figures.h"
#include "analysis/table1.h"
#include "obs/manifest.h"
#include "runner/campaign.h"
#include "runner/emit.h"
#include "runner/spec.h"
#include "util/flags.h"

namespace vanet::bench {

/// Common campaign skeleton from the shared flags. `defaultRounds` are
/// rounds *per replication*: a bench that used to run 30 serial rounds now
/// runs e.g. 3 replications x 10 rounds, which merge to the same sample
/// count but parallelise.
inline runner::CampaignConfig campaignFromFlags(const Flags& flags,
                                                std::string scenario,
                                                int defaultRounds,
                                                int defaultReplications) {
  const CampaignRunFlags run = campaignRunFlags(flags);
  runner::CampaignConfig config;
  config.scenario = std::move(scenario);
  config.masterSeed = run.seed;
  config.replications = flags.getInt("repl", defaultReplications);
  config.threads = run.threads;
  config.roundThreads = run.roundThreads;
  config.shard = runner::Shard{run.shard.index, run.shard.count};
  config.streaming = run.streaming;
  config.progress = run.progress;
  config.checkpointPath = run.checkpoint;
  config.resume = run.resume;
  config.haltAfterWaves = run.haltAfterWaves;
  // Bad adaptive bounds die with the same exit(2) diagnostic style as
  // the flag parsers -- an explicit --min-reps=0, a --max-reps below the
  // floor, or a degenerate --repl floor must never silently read as
  // "unset" or escape as an uncaught buildPlan exception.
  const auto usage = [](const char* message) {
    std::fprintf(stderr, "%s\n", message);
    std::exit(2);
  };
  if (flags.has("target-ci") && run.targetCi <= 0.0) {
    usage("flag --target-ci: must be > 0 (a relative CI95 half-width)");
  }
  if (run.targetCi > 0.0) {
    // Adaptive replication: the --repl count (or --min-reps) becomes the
    // wave-0 floor, and points replicate on until their CI95 target or
    // the cap. Fixed-count semantics are untouched without --target-ci.
    if (flags.has("min-reps") && run.minReps < 1) {
      usage("flag --min-reps: must be >= 1");
    }
    if (flags.has("max-reps") && run.maxReps < 1) {
      usage("flag --max-reps: must be >= 1");
    }
    config.targetRelativeCi95 = run.targetCi;
    config.minReplications =
        run.minReps > 0 ? run.minReps : config.replications;
    if (config.minReplications < 1) {
      usage("flag --repl: the adaptive floor must be >= 1 (or pass "
            "--min-reps)");
    }
    config.maxReplications =
        run.maxReps > 0 ? run.maxReps
                        : std::max(config.maxReplications,
                                   config.minReplications);
    if (config.maxReplications < config.minReplications) {
      usage("flags --min-reps/--max-reps (or --repl as the floor): need "
            "min <= max replications");
    }
    config.targetMetric = run.targetMetric;
  } else if (flags.has("min-reps") || flags.has("max-reps") ||
             flags.has("target-metric")) {
    // Never drop an adaptive knob silently: without the target the stop
    // rule cannot run, so the bounds would be dead flags.
    usage("flags --min-reps/--max-reps/--target-metric need "
          "--target-ci=X to enable adaptive replication");
  }
  config.base.set("rounds", flags.getInt("rounds", defaultRounds));
  config.base.set("cars", flags.getInt("cars", 3));
  return config;
}

/// Urban-scenario overrides from the optional tuning flags.
inline void applyUrbanFlags(const Flags& flags, runner::ParamSet& base) {
  if (flags.has("speed-kmh")) {
    base.set("speed_kmh", flags.getDouble("speed-kmh", 20.0));
  }
  if (flags.getBool("no-coop", false)) base.set("coop", 0);
  if (flags.getBool("batched", false)) base.set("batched", 1);
  if (flags.getBool("gossip", false)) base.set("gossip", 1);
  if (flags.getBool("fc", false)) base.set("fc", 1);
  if (flags.has("repeat")) base.set("repeat", flags.getInt("repeat", 1));
  if (flags.has("phy")) base.set("phy", flags.getInt("phy", 0));
  if (flags.has("nakagami")) {
    base.set("nakagami", flags.getDouble("nakagami", 0.0));
  }
}

/// Writes the shard's partial-result file when --partial-out is given
/// (--partial-format selects the encoding; the default is binary v3 for
/// --shard runs and JSON otherwise). Only reached on a successful run: a
/// failed campaign throws out of runCampaign before any summary exists,
/// so a shard file is never truncated. A failed *write* exits non-zero --
/// a shard pipeline must never see success next to a missing or stale
/// partial file. Halted runs (--halt-after-waves) skip the write: their
/// state lives in the checkpoint file.
inline void maybeWritePartial(const Flags& flags,
                              const runner::CampaignResult& result) {
  const std::string path = flags.getString("partial-out", "");
  if (path.empty() || result.halted) return;
  const std::string formatName = flags.getString("partial-format", "");
  const runner::PartialFormat format =
      formatName == "bin"    ? runner::PartialFormat::kBinary
      : formatName == "json" ? runner::PartialFormat::kJson
                             : runner::PartialFormat::kAuto;
  if (!runner::writeCampaignPartial(path, runner::campaignPartial(result),
                                    format)) {
    std::exit(1);
  }
  std::cout << "wrote " << path << "\n";
}

/// Writes the campaign CSV + JSON summaries when --csv is given, and the
/// shard partial when --partial-out is given.
inline void maybeWriteCampaign(const Flags& flags, const std::string& name,
                               const runner::CampaignResult& result) {
  maybeWritePartial(flags, result);
  const std::string dir = flags.getString("csv", "");
  if (dir.empty() || result.halted) return;
  const std::string csvPath = dir + "/" + name + "_campaign.csv";
  if (runner::writeCampaignCsv(csvPath, result)) {
    std::cout << "wrote " << csvPath << "\n";
  }
  const std::string jsonPath = dir + "/" + name + "_campaign.json";
  if (runner::writeCampaignJson(jsonPath, result)) {
    std::cout << "wrote " << jsonPath << "\n";
  }
}

/// Writes one figure-series CSV per (grid point, flow) when --csv is
/// given (see runner::writeCampaignFigureCsvs for the naming).
inline void maybeWriteFigures(const Flags& flags, const std::string& name,
                              const runner::CampaignResult& result) {
  const std::string dir = flags.getString("csv", "");
  if (dir.empty()) return;
  const std::size_t written =
      runner::writeCampaignFigureCsvs(dir, name, result);
  if (written > 0) {
    std::cout << "wrote " << written << " figure CSV(s) under " << dir
              << "/" << name << "*\n";
  }
}

/// The per-bench throughput footer.
inline void printThroughput(const runner::CampaignResult& result) {
  char footer[160];
  if (result.halted) {
    std::snprintf(footer, sizeof footer,
                  "\nhalted at a wave barrier after %d wave(s), %zu jobs; "
                  "the checkpoint file holds the fold state\n",
                  result.waves, result.jobCount);
    std::cout << footer;
    return;
  }
  std::snprintf(footer, sizeof footer,
                "\n%zu jobs in %.2f s (%.2f jobs/s, %d threads)\n",
                result.jobCount, result.wallSeconds, result.jobsPerSecond,
                result.threads);
  std::cout << footer;
  if (result.targetRelativeCi95 > 0.0) {
    std::snprintf(footer, sizeof footer,
                  "adaptive: %zu of %zu budgeted jobs in %d wave(s), "
                  "target ci95/|mean| <= %g on %s\n",
                  result.jobCount, result.totalJobs, result.waves,
                  result.targetRelativeCi95, result.targetMetric.c_str());
    std::cout << footer;
  }
}

inline void printHeader(const std::string& title, const std::string& paperRef) {
  std::cout << "==============================================================="
               "=========\n";
  std::cout << title << "\n";
  std::cout << "reproduces: " << paperRef << "\n";
  std::cout << "==============================================================="
               "=========\n";
}

/// The full flag vocabulary of a spec-backed bench: the shared engine
/// flags, the experiment overrides every bench keeps (--rounds / --cars /
/// --repl), --csv / --spec, plus `extra` bench-specific names. Pass the
/// result to Flags::allowOnly() right after parsing.
inline std::vector<std::string> benchFlagNames(
    std::vector<std::string> extra = {}, std::vector<std::string> more = {}) {
  std::vector<std::string> names = campaignFlagNames();
  names.insert(names.end(), {"rounds", "cars", "repl", "csv", "spec"});
  names.insert(names.end(), extra.begin(), extra.end());
  names.insert(names.end(), more.begin(), more.end());
  return names;
}

/// The applyUrbanFlags() vocabulary, for benches on the urban scenario.
inline std::vector<std::string> urbanFlagNames() {
  return {"speed-kmh", "no-coop", "batched", "gossip",
          "fc",        "repeat",  "phy",     "nakagami"};
}

/// Loads the bench's committed campaign spec -- specs/<name>.json under
/// the source tree (VANET_SPEC_DIR), overridable per run with
/// --spec=PATH -- records the spec identity for every manifest sidecar,
/// and prints the spec's title / paper-reference header. A ported bench
/// main is then a thin wrapper: spec -> config -> flag overrides ->
/// runCampaign -> its custom console table.
inline runner::CampaignSpec loadBenchSpec(const Flags& flags,
                                          const std::string& name) {
  const std::string path = flags.getString(
      "spec", std::string(VANET_SPEC_DIR "/") + name + ".json");
  runner::CampaignSpec spec;
  try {
    spec = runner::loadCampaignSpec(path);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "%s\n", error.what());
    std::exit(1);
  }
  obs::setRunSpec(path, runner::campaignSpecDigest(spec));
  printHeader(spec.title, spec.paperRef);
  return spec;
}

/// CampaignConfig from a bench spec plus the traditional flag overrides.
/// The committed spec is the source of truth for the experiment
/// definition; --seed / --repl / --rounds / --cars and the adaptive knobs
/// still tweak it for one-off runs (same validation and semantics as the
/// flag-first campaignFromFlags), and the engine flags apply unchanged.
inline runner::CampaignConfig campaignFromSpec(const Flags& flags,
                                               const runner::CampaignSpec& spec) {
  const CampaignRunFlags run = campaignRunFlags(flags, spec.seed);
  runner::CampaignConfig config = runner::campaignConfigFromSpec(spec);
  runner::applyEngineFlags(run, config);
  config.masterSeed = run.seed;  // defaults to the spec's seed
  if (flags.has("repl")) {
    config.replications = flags.getInt("repl", config.replications);
  }
  if (flags.has("rounds")) {
    config.base.set("rounds", flags.getInt("rounds", 0));
  }
  if (flags.has("cars")) config.base.set("cars", flags.getInt("cars", 0));

  const auto usage = [](const char* message) {
    std::fprintf(stderr, "%s\n", message);
    std::exit(2);
  };
  if (flags.has("target-ci") && run.targetCi <= 0.0) {
    usage("flag --target-ci: must be > 0 (a relative CI95 half-width)");
  }
  if (flags.has("target-ci")) {
    config.targetRelativeCi95 = run.targetCi;
    config.targetMetric = run.targetMetric;
    if (spec.targetCi <= 0.0) {
      // Flags switched adaptive mode on: historical defaults -- the
      // replication count is the wave-0 floor, the cap at least 64.
      config.minReplications = config.replications;
      config.maxReplications = std::max(64, config.minReplications);
    }
  }
  if (config.targetRelativeCi95 > 0.0) {
    if (flags.has("min-reps")) {
      if (run.minReps < 1) usage("flag --min-reps: must be >= 1");
      config.minReplications = run.minReps;
    }
    if (flags.has("max-reps")) {
      if (run.maxReps < 1) usage("flag --max-reps: must be >= 1");
      config.maxReplications = run.maxReps;
    }
    if (flags.has("target-metric")) config.targetMetric = run.targetMetric;
    if (config.minReplications < 1) {
      usage("flag --repl: the adaptive floor must be >= 1 (or pass "
            "--min-reps)");
    }
    if (config.maxReplications < config.minReplications) {
      usage("flags --min-reps/--max-reps (or --repl as the floor): need "
            "min <= max replications");
    }
  } else if (flags.has("min-reps") || flags.has("max-reps") ||
             flags.has("target-metric")) {
    usage("flags --min-reps/--max-reps/--target-metric need "
          "--target-ci=X to enable adaptive replication");
  }
  return config;
}

/// Writes the spec's emit list into --csv=DIR (when given) and the shard
/// partial when --partial-out is given. Halted runs skip both: their
/// state lives in the checkpoint file. A failed artefact write exits
/// non-zero, same contract as maybeWritePartial.
inline void maybeWriteSpecArtifacts(const Flags& flags,
                                    const runner::CampaignSpec& spec,
                                    const runner::CampaignResult& result) {
  maybeWritePartial(flags, result);
  const std::string dir = flags.getString("csv", "");
  if (dir.empty() || result.halted) return;
  std::vector<std::string> written;
  const bool ok = runner::writeSpecArtifacts(spec, result, dir, written);
  for (const std::string& path : written) {
    std::cout << "wrote " << path << "\n";
  }
  if (!ok) std::exit(1);
}

}  // namespace vanet::bench
