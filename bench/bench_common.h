#pragma once

/// Shared plumbing for the bench harnesses: flag-driven experiment
/// configuration so every bench can be re-run with different rounds,
/// seeds, or scenario tweaks, plus small printing helpers.
///
/// Common flags (all benches):
///   --rounds=N    experiment rounds (default: the paper's 30)
///   --seed=S      master seed (default 2008)
///   --cars=N      platoon size (default 3)
///   --csv=DIR     also write CSV outputs into DIR
///
/// Campaign-engine benches additionally accept:
///   --repl=N      independent replications per grid point
///   --threads=N   worker threads (0 = hardware concurrency)

#include <iostream>
#include <string>

#include "analysis/csv.h"
#include "analysis/experiment.h"
#include "analysis/figures.h"
#include "analysis/table1.h"
#include "runner/campaign.h"
#include "runner/emit.h"
#include "util/flags.h"

namespace vanet::bench {

inline analysis::UrbanExperimentConfig urbanConfigFromFlags(
    const Flags& flags) {
  analysis::UrbanExperimentConfig config;
  config.rounds = flags.getInt("rounds", 30);
  config.seed = static_cast<std::uint64_t>(flags.getInt("seed", 2008));
  config.scenario.carCount = flags.getInt("cars", 3);
  config.scenario.baseSpeedMps =
      flags.getDouble("speed-kmh", 20.0) / 3.6;
  config.repeatCount = flags.getInt("repeat", 1);
  if (flags.getBool("no-coop", false)) {
    config.carq.cooperationEnabled = false;
  }
  if (flags.getBool("batched", false)) {
    config.carq.requestMode = carq::RequestMode::kBatched;
  }
  if (flags.getBool("gossip", false)) {
    config.carq.gossipWindowExtension = true;
  }
  if (flags.getBool("fc", false)) {
    config.carq.frameCombining = true;
  }
  if (flags.has("nakagami")) {
    config.channel.nakagamiM = flags.getDouble("nakagami", 0.0);
  }
  return config;
}

/// Common campaign skeleton from the shared flags. `defaultRounds` are
/// rounds *per replication*: a bench that used to run 30 serial rounds now
/// runs e.g. 3 replications x 10 rounds, which merge to the same sample
/// count but parallelise.
inline runner::CampaignConfig campaignFromFlags(const Flags& flags,
                                                std::string scenario,
                                                int defaultRounds,
                                                int defaultReplications) {
  runner::CampaignConfig config;
  config.scenario = std::move(scenario);
  config.masterSeed = static_cast<std::uint64_t>(flags.getInt("seed", 2008));
  config.replications = flags.getInt("repl", defaultReplications);
  config.threads = flags.getInt("threads", 0);
  config.base.set("rounds", flags.getInt("rounds", defaultRounds));
  config.base.set("cars", flags.getInt("cars", 3));
  return config;
}

/// Urban-scenario overrides mirroring urbanConfigFromFlags().
inline void applyUrbanFlags(const Flags& flags, runner::ParamSet& base) {
  if (flags.has("speed-kmh")) {
    base.set("speed_kmh", flags.getDouble("speed-kmh", 20.0));
  }
  if (flags.getBool("no-coop", false)) base.set("coop", 0);
  if (flags.getBool("batched", false)) base.set("batched", 1);
  if (flags.getBool("gossip", false)) base.set("gossip", 1);
  if (flags.getBool("fc", false)) base.set("fc", 1);
  if (flags.has("repeat")) base.set("repeat", flags.getInt("repeat", 1));
  if (flags.has("nakagami")) {
    base.set("nakagami", flags.getDouble("nakagami", 0.0));
  }
}

/// Writes the campaign CSV + JSON summaries when --csv is given.
inline void maybeWriteCampaign(const Flags& flags, const std::string& name,
                               const runner::CampaignResult& result) {
  const std::string dir = flags.getString("csv", "");
  if (dir.empty()) return;
  const std::string csvPath = dir + "/" + name + "_campaign.csv";
  if (runner::writeCampaignCsv(csvPath, result)) {
    std::cout << "wrote " << csvPath << "\n";
  }
  const std::string jsonPath = dir + "/" + name + "_campaign.json";
  if (runner::writeCampaignJson(jsonPath, result)) {
    std::cout << "wrote " << jsonPath << "\n";
  }
}

inline void printHeader(const std::string& title, const std::string& paperRef) {
  std::cout << "==============================================================="
               "=========\n";
  std::cout << title << "\n";
  std::cout << "reproduces: " << paperRef << "\n";
  std::cout << "==============================================================="
               "=========\n";
}

/// Writes the figure series of `flow` as CSV when --csv is given.
inline void maybeWriteFigureCsv(const Flags& flags, const std::string& name,
                                const trace::FlowFigure& figure) {
  const std::string dir = flags.getString("csv", "");
  if (dir.empty()) return;
  std::vector<std::string> headers;
  std::vector<std::vector<double>> columns;
  for (const auto& [car, acc] : figure.rxByCar) {
    headers.push_back("rx_car_" + std::to_string(car));
    columns.push_back(acc.means());
  }
  headers.push_back("after_coop");
  columns.push_back(figure.afterCoop.means());
  headers.push_back("joint");
  columns.push_back(figure.joint.means());
  const std::string path = dir + "/" + name + ".csv";
  if (analysis::writeSeriesCsv(path, "packet", headers, columns)) {
    std::cout << "wrote " << path << "\n";
  }
}

}  // namespace vanet::bench
