/// \file bench_fig8_coop_car3.cpp
/// Regenerates Figure 8: probability of reception in car 3 after
/// Cooperative ARQ versus the joint probability. Paper shape: car 3
/// benefits from cooperation on its first packets (cars 1 and 2 were
/// already in coverage); for the last packets little cooperation is
/// available since car 3 is the last to leave the coverage area.

#include "bench_fig_common.h"

int main(int argc, char** argv) {
  return vanet::bench::runFigureBench(
      argc, argv, /*flow=*/3, vanet::bench::FigureKind::kCooperation,
      "Figure 8: P(reception) with C-ARQ in car 3 vs joint reception",
      "Morillo-Pozo et al., ICDCS'08 W, Figure 8");
}
