/// \file bench_ablation_window_gossip.cpp
/// Our window-gossip extension, in the spirit of the paper's §3.3
/// message-enrichment optimisation. The paper's recovery window is
/// [first, last] *received* packet: the first car to leave coverage never
/// learns about the packets the AP addressed to it afterwards, even
/// though trailing cars buffered them — the visible tail gap between the
/// after-coop and joint curves of Figure 6. With gossip, HELLOs advertise
/// the highest buffered seq per flow and the destination extends its
/// request window. Expected: car 1's after-coop loss drops towards its
/// joint bound; cars 2 and 3 (already near-optimal) barely change.
///
/// Spec-driven: the gossip on/off grid lives in
/// specs/ablation_window_gossip.json (--spec=PATH overrides), whose emit
/// list leads with the per-car figure series (the tail gap of Figure 6
/// closing is the point of this study), and runs in parallel on
/// --threads workers.

#include <iomanip>
#include <iostream>
#include <sstream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace vanet;
  obs::setRunIdentity(argc, argv);
  const Flags flags(argc, argv);
  flags.allowOnly(bench::benchFlagNames(bench::urbanFlagNames()));
  const runner::CampaignSpec spec =
      bench::loadBenchSpec(flags, "ablation_window_gossip");

  runner::CampaignConfig campaign = bench::campaignFromSpec(flags, spec);
  bench::applyUrbanFlags(flags, campaign.base);
  const runner::CampaignResult result = runner::runCampaign(campaign);

  std::cout << std::left << std::setw(10) << "gossip" << std::right
            << std::setw(14) << "car1 aft/joint" << std::setw(16)
            << "car2 aft/joint" << std::setw(16) << "car3 aft/joint" << "\n";
  for (const runner::GridPointSummary& point : result.points) {
    std::cout << std::left << std::setw(10)
              << (point.params.getBool("gossip", false) ? "on" : "off")
              << std::right;
    for (const trace::Table1Row& row : point.table1.rows) {
      std::ostringstream cell;
      cell << std::fixed << std::setprecision(1) << row.pctLostAfter.mean()
           << "/" << row.pctLostJoint.mean() << "%";
      std::cout << std::setw(row.car == 1 ? 14 : 16) << cell.str();
    }
    std::cout << "\n";
  }
  bench::printThroughput(result);
  std::cout << "\nexpected shape: with gossip on, each car's after-coop loss"
               " sits on its joint\nbound; the largest win is the lead car"
               " (it leaves coverage first)\n";
  bench::maybeWriteSpecArtifacts(flags, spec, result);
  return 0;
}
