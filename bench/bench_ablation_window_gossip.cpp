/// \file bench_ablation_window_gossip.cpp
/// Our window-gossip extension, in the spirit of the paper's §3.3
/// message-enrichment optimisation. The paper's recovery window is
/// [first, last] *received* packet: the first car to leave coverage never
/// learns about the packets the AP addressed to it afterwards, even
/// though trailing cars buffered them — the visible tail gap between the
/// after-coop and joint curves of Figure 6. With gossip, HELLOs advertise
/// the highest buffered seq per flow and the destination extends its
/// request window. Expected: car 1's after-coop loss drops towards its
/// joint bound; cars 2 and 3 (already near-optimal) barely change.
///
/// The on/off comparison is one campaign-engine grid (gossip axis x
/// --repl replications) executed in parallel on --threads workers.

#include <iomanip>
#include <iostream>
#include <sstream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace vanet;
  const Flags flags(argc, argv);
  bench::printHeader(
      "Ablation: request-window gossip (extension closing Figure 6's tail)",
      "Morillo-Pozo et al., ICDCS'08 W, §3.3 direction + Figure 6");

  runner::CampaignConfig campaign = bench::campaignFromFlags(
      flags, "urban", /*defaultRounds=*/10, /*defaultReplications=*/3);
  bench::applyUrbanFlags(flags, campaign.base);
  campaign.grid.add("gossip", {0.0, 1.0});
  const runner::CampaignResult result = runner::runCampaign(campaign);

  std::cout << std::left << std::setw(10) << "gossip" << std::right
            << std::setw(14) << "car1 aft/joint" << std::setw(16)
            << "car2 aft/joint" << std::setw(16) << "car3 aft/joint" << "\n";
  for (const runner::GridPointSummary& point : result.points) {
    std::cout << std::left << std::setw(10)
              << (point.params.getBool("gossip", false) ? "on" : "off")
              << std::right;
    for (const trace::Table1Row& row : point.table1.rows) {
      std::ostringstream cell;
      cell << std::fixed << std::setprecision(1) << row.pctLostAfter.mean()
           << "/" << row.pctLostJoint.mean() << "%";
      std::cout << std::setw(row.car == 1 ? 14 : 16) << cell.str();
    }
    std::cout << "\n";
  }
  bench::printThroughput(result);
  std::cout << "\nexpected shape: with gossip on, each car's after-coop loss"
               " sits on its joint\nbound; the largest win is the lead car"
               " (it leaves coverage first)\n";
  // The per-car figure series are the point of this study (the tail gap
  // of Figure 6 closes with gossip on): emit them per grid point.
  bench::maybeWriteFigures(flags, "ablation_window_gossip", result);
  bench::maybeWriteCampaign(flags, "ablation_window_gossip", result);
  return 0;
}
