/// \file bench_fig4_rx_car2.cpp
/// Regenerates Figure 4: probability of reception, per packet number, of
/// the packets addressed to car 2 at each of the three cars. Paper shape:
/// car 1 receives car 2's early packets better (it is deeper inside the
/// coverage area); near the end cars 2 and 3 have almost identical curves
/// (corner-C convergence).

#include "bench_fig_common.h"

int main(int argc, char** argv) {
  return vanet::bench::runFigureBench(
      argc, argv, /*flow=*/2, vanet::bench::FigureKind::kReception,
      "Figure 4: P(reception) of car 2's packets at cars 1/2/3",
      "Morillo-Pozo et al., ICDCS'08 W, Figure 4");
}
