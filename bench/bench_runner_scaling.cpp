/// \file bench_runner_scaling.cpp
/// Parallel-scaling study of the campaign engine itself: one fixed
/// campaign executed with 1, 2 and N worker threads. Reports wall-clock,
/// jobs/s and speedup per thread count, and verifies that the merged
/// campaign is bit-identical across thread counts (the engine's core
/// guarantee: results depend on (config, master seed) only, never on
/// scheduling).
///
/// Six modes:
///   default     highway speed x coop grid; compares campaignPointsJson()
///   --figures   urban campaign carrying FlowFigure series; compares the
///               emitted figure CSVs (exercises FlowFigure::merge, the
///               path the figure benches rely on)
///   --batched   streaming (bounded-memory) execution at each thread
///               count against the buffered serial reference; also
///               reports the reordering-window high-water mark
///   --shard     splits the campaign into 2 and 3 shards, folds the
///               partials back with the merge pipeline, and compares
///               against the unsharded single-thread run
///   --rounds    round-parallel speedup on a ONE-grid-point campaign
///               (--laps rounds inside a single job): runs the round
///               engine at 1/2/4/N workers and byte-compares Table-1
///               JSON *and* every figure CSV against the serial run
///   --adaptive  CI95-targeted replication (--target-ci / --min-reps /
///               --max-reps): the wave schedule must be a pure function
///               of the fold state, so the adaptive campaign is
///               byte-compared at 1/2/N threads, under streaming, and
///               reassembled from 2 shard processes; also reports the
///               per-point replications used and achieved CI95
/// Every mode exits non-zero if any variant changes the bytes.

#include <algorithm>
#include <iomanip>
#include <iostream>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "util/thread_pool.h"

namespace {

/// Every figure CSV of the campaign, concatenated in point/flow order:
/// byte equality of this string is bit-identity of every merged series.
std::string allFigureCsvs(const vanet::runner::CampaignResult& result) {
  std::string out;
  for (const vanet::runner::GridPointSummary& point : result.points) {
    for (const auto& [flow, figure] : point.figures) {
      out += "# point " + std::to_string(point.gridIndex) + " flow " +
             std::to_string(flow) + "\n";
      out += vanet::runner::figureSeriesCsv(figure);
    }
  }
  return out;
}

/// Runs the campaign once per shard, serializes each shard's summaries
/// through the partial-result format, and folds them back -- the same
/// round trip two processes and campaign_merge would perform.
vanet::runner::CampaignResult runSharded(vanet::runner::CampaignConfig config,
                                         int shardCount) {
  std::vector<vanet::runner::CampaignPartial> partials;
  partials.reserve(static_cast<std::size_t>(shardCount));
  for (int shard = 0; shard < shardCount; ++shard) {
    config.shard = vanet::runner::Shard{shard, shardCount};
    const vanet::runner::CampaignResult result =
        vanet::runner::runCampaign(config);
    // Round-trip the bytes a shard process would write to disk.
    partials.push_back(vanet::runner::parseCampaignPartial(
        vanet::runner::campaignPartialJson(
            vanet::runner::campaignPartial(result))));
  }
  return vanet::runner::resultFromPartials(std::move(partials));
}

int runShardMode(vanet::runner::CampaignConfig campaign) {
  campaign.threads = 1;
  campaign.shard = vanet::runner::Shard{};
  const vanet::runner::CampaignResult reference =
      vanet::runner::runCampaign(campaign);
  const std::string referenceJson =
      vanet::runner::campaignPointsJson(reference);
  const std::string referenceCsv = vanet::runner::campaignCsv(reference);

  std::cout << std::left << std::setw(10) << "shards" << std::right
            << std::setw(16) << "identical" << "\n";
  bool allIdentical = true;
  campaign.threads = 2;
  for (const int shards : {2, 3}) {
    const vanet::runner::CampaignResult merged = runSharded(campaign, shards);
    const bool identical =
        vanet::runner::campaignPointsJson(merged) == referenceJson &&
        vanet::runner::campaignCsv(merged) == referenceCsv;
    allIdentical = allIdentical && identical;
    std::cout << std::left << std::setw(10) << shards << std::right
              << std::setw(16) << (identical ? "yes" : "NO") << "\n";
  }
  std::cout << "\nsharded + merged output bit-identical to the 1-process"
               " run: "
            << (allIdentical ? "yes" : "NO") << "\n";
  std::cout << "expected shape: a shard owns whole grid points (round-robin"
               " by index), seeds\nstay derived from the global job index,"
               " and the partial-file round trip is\nexact -- so merging"
               " shard files reproduces the monolithic bytes\n";
  return allIdentical ? 0 : 1;
}

/// --adaptive: the campaign stops each grid point at its CI95 target, so
/// the interesting claim is that the *stop decisions* -- not just the
/// merged stats -- are identical however the jobs are scheduled. Runs
/// the same adaptive campaign at 1, 2 and N threads (buffered), N
/// threads streaming, and as 2 shard processes folded through the
/// partial-file round trip; byte-compares points JSON + campaign CSV of
/// every variant against the serial reference.
int runAdaptiveMode(vanet::runner::CampaignConfig campaign) {
  namespace runner = vanet::runner;
  campaign.threads = 1;
  campaign.streaming = false;
  campaign.shard = runner::Shard{};
  const runner::CampaignResult reference = runner::runCampaign(campaign);
  const std::string referenceJson = runner::campaignPointsJson(reference);
  const std::string referenceCsv = runner::campaignCsv(reference);

  std::cout << "target ci95/|mean| <= " << campaign.targetRelativeCi95
            << " on \"" << reference.targetMetric << "\", "
            << campaign.minReplications << ".." << campaign.maxReplications
            << " replications/point\n\n";
  std::cout << std::left << std::setw(8) << "point" << std::right
            << std::setw(12) << "reps used" << std::setw(14) << "ci95"
            << "\n";
  for (const runner::GridPointSummary& point : reference.points) {
    std::cout << std::left << std::setw(8) << point.gridIndex << std::right
              << std::setw(12) << point.replications << std::setw(14)
              << point.achievedCi95 << "\n";
  }
  std::cout << "\n"
            << reference.jobCount << " of " << reference.totalJobs
            << " budgeted jobs in " << reference.waves << " wave(s)\n\n";

  const int hardware =
      std::max(4, static_cast<int>(std::thread::hardware_concurrency()));
  std::cout << std::left << std::setw(24) << "variant" << std::right
            << std::setw(16) << "identical" << "\n";
  bool allIdentical = true;
  const auto check = [&](const std::string& label,
                         const runner::CampaignResult& result) {
    const bool identical = runner::campaignPointsJson(result) == referenceJson &&
                           runner::campaignCsv(result) == referenceCsv;
    allIdentical = allIdentical && identical;
    std::cout << std::left << std::setw(24) << label << std::right
              << std::setw(16) << (identical ? "yes" : "NO") << "\n";
  };
  for (const int threads : {2, hardware}) {
    campaign.threads = threads;
    check("threads=" + std::to_string(threads), runner::runCampaign(campaign));
  }
  campaign.streaming = true;
  check("streaming", runner::runCampaign(campaign));
  campaign.streaming = false;
  campaign.threads = 2;
  check("2 shards + merge", runSharded(campaign, 2));

  std::cout << "\nadaptive campaign bit-identical across threads, streaming"
               " and shards: "
            << (allIdentical ? "yes" : "NO") << "\n";
  std::cout << "expected shape: reps used varies per point (noisy points"
               " replicate further);\nthe identical column must read yes"
               " everywhere -- convergence is evaluated only\nat wave"
               " barriers on fold state that is itself scheduling-invariant\n";
  return allIdentical ? 0 : 1;
}

/// --rounds: a single-point campaign leaves the job axis with nothing to
/// parallelise; all speedup must come from the round engine inside the
/// one experiment. Byte-compares the merged Table-1/metrics JSON and the
/// figure CSVs of every round-worker count against the serial run.
int runRoundsMode(const vanet::Flags& flags) {
  namespace runner = vanet::runner;
  runner::CampaignConfig campaign;
  campaign.scenario = "urban";
  campaign.masterSeed = flags.getUInt64("seed", 2008);
  campaign.replications = flags.getInt("repl", 1);
  campaign.threads = 1;
  campaign.base.set("rounds", flags.getInt("laps", 8));
  campaign.base.set("cars", flags.getInt("cars", 3));

  const int hardware = vanet::util::hardwareThreads();
  std::vector<int> workerCounts{1, 2, 4};
  if (hardware > 4) workerCounts.push_back(hardware);
  // The study measures the engine, not this machine's core count: give
  // the shared budget room for the largest worker count (restored below).
  vanet::util::ThreadBudget& budget = vanet::util::ThreadBudget::global();
  budget.setLimit(*std::max_element(workerCounts.begin(), workerCounts.end()) +
                  1);

  std::cout << "1 grid point x " << campaign.replications
            << " replication(s) x " << campaign.base.get("rounds", 0)
            << " rounds (hardware concurrency: " << hardware << ")\n\n";
  std::cout << std::left << std::setw(14) << "round workers" << std::right
            << std::setw(12) << "wall s" << std::setw(12) << "speedup"
            << std::setw(16) << "identical" << "\n";

  std::string reference;
  double serialWall = 0.0;
  bool allIdentical = true;
  for (const int workers : workerCounts) {
    campaign.roundThreads = workers;
    const runner::CampaignResult result = runner::runCampaign(campaign);
    // Table-1 + protocol totals + metrics land in the points JSON; the
    // figure CSVs carry every per-packet series. Byte equality of both
    // is bit-identity of everything the campaign emits.
    const std::string merged =
        runner::campaignPointsJson(result) + allFigureCsvs(result);
    if (workers == 1) {
      reference = merged;
      serialWall = result.wallSeconds;
    }
    const bool identical = merged == reference;
    allIdentical = allIdentical && identical;
    std::cout << std::left << std::setw(14) << workers << std::right
              << std::fixed << std::setprecision(2) << std::setw(12)
              << result.wallSeconds << std::setw(11)
              << serialWall / result.wallSeconds << "x" << std::setw(16)
              << (identical ? "yes" : "NO") << "\n";
  }
  budget.setLimit(0);  // back to hardware concurrency

  std::cout << "\nround-parallel Table-1 + figure CSVs bit-identical to the"
               " serial run: "
            << (allIdentical ? "yes" : "NO") << "\n";
  std::cout << "expected shape: wall time drops with round workers up to the"
               " core count; the\nidentical column must read yes everywhere"
               " -- every round owns a private RNG\nchild of (seed, round"
               " index) and outcomes fold strictly in round order\n";
  return allIdentical ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vanet;
  const Flags flags(argc, argv);
  flags.allowOnly(bench::benchFlagNames(
      {"figures", "batched", "adaptive", "laps", "max-threads"}));
  const bool figures = flags.getBool("figures", false);
  const bool batched = flags.getBool("batched", false);
  const bool adaptive = flags.getBool("adaptive", false);
  const bool shardMode = flags.getString("shard", "") == "true";
  // A bare `--rounds` selects the round-engine mode; `--rounds=N` stays
  // the shared rounds-per-replication knob of the other modes.
  const bool roundsMode = flags.getString("rounds", "") == "true";
  bench::printHeader(
      figures    ? "Campaign engine: figure-series merge determinism"
      : batched  ? "Campaign engine: streaming (bounded-memory) determinism"
      : adaptive ? "Campaign engine: adaptive (CI95-targeted) replication "
                   "determinism"
      : shardMode? "Campaign engine: shard + merge determinism"
      : roundsMode
          ? "Round engine: intra-experiment parallel scaling and determinism"
          : "Campaign engine: parallel scaling and determinism",
      "engine study (no paper counterpart)");
  if (roundsMode) return runRoundsMode(flags);

  runner::CampaignConfig campaign;
  if (figures) {
    campaign = bench::campaignFromFlags(flags, "urban", /*defaultRounds=*/3,
                                        /*defaultReplications=*/4);
    campaign.grid.add("gossip", {0.0, 1.0});
  } else {
    campaign = bench::campaignFromFlags(flags, "highway", /*defaultRounds=*/3,
                                        /*defaultReplications=*/4);
    campaign.base.set("aps", 1);
    campaign.base.set("road_length", 2400.0);
    campaign.base.set("first_ap_arc", 1200.0);
    campaign.grid.add("speed_kmh", {40.0, 60.0, 80.0, 100.0})
        .add("coop", {0.0, 1.0});
  }

  if (adaptive) {
    // A bare --adaptive gets defaults tuned so a short smoke run
    // genuinely converges some points early and drives others to the
    // cap. Explicit bounds travel with --target-ci through the shared
    // flag vocabulary (campaignFromFlags rejects bounds without it, so
    // nothing is ever silently dropped).
    if (campaign.targetRelativeCi95 <= 0.0) {
      campaign.targetRelativeCi95 = 0.1;
      campaign.minReplications = 2;
      campaign.maxReplications = 8;
    }
    return runAdaptiveMode(std::move(campaign));
  }

  if (shardMode) return runShardMode(std::move(campaign));

  const int hardware =
      static_cast<int>(std::thread::hardware_concurrency());
  std::vector<int> threadCounts{1, 2};
  if (hardware > 2) threadCounts.push_back(hardware);
  const int maxThreads = flags.getInt("max-threads", 0);
  if (maxThreads > 2 && maxThreads != hardware) {
    threadCounts.push_back(maxThreads);
  }

  std::cout << campaign.grid.pointCount() << " grid points x "
            << campaign.replications << " replications = "
            << campaign.grid.pointCount() *
                   static_cast<std::size_t>(campaign.replications)
            << " jobs (hardware concurrency: " << hardware << ")\n\n";
  std::cout << std::left << std::setw(10) << "threads" << std::right
            << std::setw(12) << "wall s" << std::setw(12) << "jobs/s"
            << std::setw(12) << "speedup" << std::setw(16) << "identical";
  if (batched) std::cout << std::setw(14) << "peak buffered";
  std::cout << "\n";

  // The reference is always the buffered serial run; --batched then pits
  // the streaming backend against it at every thread count.
  campaign.streaming = false;
  std::string reference;
  double serialWall = 0.0;
  bool allIdentical = true;
  bool first = true;
  for (const int threads : threadCounts) {
    campaign.threads = threads;
    campaign.streaming = batched && !first;
    const runner::CampaignResult result = runner::runCampaign(campaign);
    const std::string merged = figures ? allFigureCsvs(result)
                                       : runner::campaignPointsJson(result);
    if (first) {
      reference = merged;
      serialWall = result.wallSeconds;
    }
    first = false;
    const bool identical = merged == reference;
    allIdentical = allIdentical && identical;
    std::cout << std::left << std::setw(10) << threads << std::right
              << std::fixed << std::setprecision(2) << std::setw(12)
              << result.wallSeconds << std::setw(12) << result.jobsPerSecond
              << std::setw(11) << serialWall / result.wallSeconds << "x"
              << std::setw(16) << (identical ? "yes" : "NO");
    if (batched) {
      std::cout << std::setw(10) << result.peakBufferedResults
                << (result.streaming ? " (cap " +
                        std::to_string(runner::streamingWindowCap(threads)) +
                        ")"
                                     : " (all)");
    }
    std::cout << "\n";
  }
  std::cout << "\n"
            << (figures ? "figure CSVs" : "merged output")
            << " bit-identical across "
            << (batched ? "backends and thread counts" : "thread counts")
            << ": " << (allIdentical ? "yes" : "NO") << "\n";
  if (batched) {
    std::cout << "expected shape: streaming folds through a reordering"
                 " window of at most\nstreamingWindowCap(threads) parked"
                 " results (O(threads), not O(jobs)) and still\nmatches the"
                 " buffered reference byte for byte\n";
  } else {
    std::cout << "expected shape: jobs/s scales with threads up to the core"
                 " count; the identical\ncolumn must read yes everywhere --"
                 " the merge is in job order and every job owns\na private"
                 " RNG stream hashed from (master seed, job index)\n";
  }
  return allIdentical ? 0 : 1;
}
