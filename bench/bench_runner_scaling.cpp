/// \file bench_runner_scaling.cpp
/// Parallel-scaling study of the campaign engine itself: one fixed
/// campaign executed with 1, 2 and N worker threads. Reports wall-clock,
/// jobs/s and speedup per thread count, and verifies that the merged
/// campaign is bit-identical across thread counts (the engine's core
/// guarantee: results depend on (config, master seed) only, never on
/// scheduling).
///
/// Two modes:
///   default     highway speed x coop grid; compares campaignPointsJson()
///   --figures   urban campaign carrying FlowFigure series; compares the
///               emitted figure CSVs (exercises FlowFigure::merge, the
///               path the figure benches rely on)
/// Either mode exits non-zero if any thread count changes the bytes.

#include <iomanip>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.h"

namespace {

/// Every figure CSV of the campaign, concatenated in point/flow order:
/// byte equality of this string is bit-identity of every merged series.
std::string allFigureCsvs(const vanet::runner::CampaignResult& result) {
  std::string out;
  for (const vanet::runner::GridPointSummary& point : result.points) {
    for (const auto& [flow, figure] : point.figures) {
      out += "# point " + std::to_string(point.gridIndex) + " flow " +
             std::to_string(flow) + "\n";
      out += vanet::runner::figureSeriesCsv(figure);
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vanet;
  const Flags flags(argc, argv);
  const bool figures = flags.getBool("figures", false);
  bench::printHeader(
      figures ? "Campaign engine: figure-series merge determinism"
              : "Campaign engine: parallel scaling and determinism",
      "engine study (no paper counterpart)");

  runner::CampaignConfig campaign;
  if (figures) {
    campaign = bench::campaignFromFlags(flags, "urban", /*defaultRounds=*/3,
                                        /*defaultReplications=*/4);
    campaign.grid.add("gossip", {0.0, 1.0});
  } else {
    campaign = bench::campaignFromFlags(flags, "highway", /*defaultRounds=*/3,
                                        /*defaultReplications=*/4);
    campaign.base.set("aps", 1);
    campaign.base.set("road_length", 2400.0);
    campaign.base.set("first_ap_arc", 1200.0);
    campaign.grid.add("speed_kmh", {40.0, 60.0, 80.0, 100.0})
        .add("coop", {0.0, 1.0});
  }

  const int hardware =
      static_cast<int>(std::thread::hardware_concurrency());
  std::vector<int> threadCounts{1, 2};
  if (hardware > 2) threadCounts.push_back(hardware);
  const int maxThreads = flags.getInt("max-threads", 0);
  if (maxThreads > 2 && maxThreads != hardware) {
    threadCounts.push_back(maxThreads);
  }

  std::cout << campaign.grid.pointCount() << " grid points x "
            << campaign.replications << " replications = "
            << campaign.grid.pointCount() *
                   static_cast<std::size_t>(campaign.replications)
            << " jobs (hardware concurrency: " << hardware << ")\n\n";
  std::cout << std::left << std::setw(10) << "threads" << std::right
            << std::setw(12) << "wall s" << std::setw(12) << "jobs/s"
            << std::setw(12) << "speedup" << std::setw(16) << "identical"
            << "\n";

  std::string reference;
  double serialWall = 0.0;
  bool allIdentical = true;
  for (const int threads : threadCounts) {
    campaign.threads = threads;
    const runner::CampaignResult result = runner::runCampaign(campaign);
    const std::string merged = figures ? allFigureCsvs(result)
                                       : runner::campaignPointsJson(result);
    if (reference.empty()) {
      reference = merged;
      serialWall = result.wallSeconds;
    }
    const bool identical = merged == reference;
    allIdentical = allIdentical && identical;
    std::cout << std::left << std::setw(10) << threads << std::right
              << std::fixed << std::setprecision(2) << std::setw(12)
              << result.wallSeconds << std::setw(12) << result.jobsPerSecond
              << std::setw(11) << serialWall / result.wallSeconds << "x"
              << std::setw(16) << (identical ? "yes" : "NO") << "\n";
  }
  std::cout << "\n"
            << (figures ? "figure CSVs" : "merged output")
            << " bit-identical across thread counts: "
            << (allIdentical ? "yes" : "NO") << "\n";
  std::cout << "expected shape: jobs/s scales with threads up to the core"
               " count; the identical\ncolumn must read yes everywhere --"
               " the merge is in job order and every job owns\na private"
               " RNG stream hashed from (master seed, job index)\n";
  return allIdentical ? 0 : 1;
}
