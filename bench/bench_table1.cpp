/// \file bench_table1.cpp
/// Regenerates the paper's Table 1: per-car mean and standard deviation of
/// packets transmitted by the AP in the car's association window, packets
/// lost before cooperation and packets lost after cooperation.
///
/// Runs on the campaign engine: --repl independent replications of
/// --rounds laps each (default 3 x 10, merging to the paper's 30 rounds)
/// execute in parallel on --threads workers and merge deterministically.
///
/// Paper reference values (ICDCS 2008, Table 1):
///   car 1: 130.4 tx, 30.5 lost (23.4 %) -> 13.7 (10.5 %)
///   car 2: 143.0 tx, 38.4 lost (26.9 %) -> 24.8 (17.3 %)
///   car 3: 121.4 tx, 34.7 lost (28.6 %) -> 19.1 (15.7 %)
/// We target the shape: losses in the twenties of percent before
/// cooperation, roughly halved after, car 1 helped the most, with the
/// joint (virtual-car) bound close underneath the after-coop numbers.

#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace vanet;
  const Flags flags(argc, argv);
  bench::printHeader("Table 1: packets received and lost per car",
                     "Morillo-Pozo et al., ICDCS'08 W, Table 1");

  runner::CampaignConfig campaign = bench::campaignFromFlags(
      flags, "urban", /*defaultRounds=*/10, /*defaultReplications=*/3);
  bench::applyUrbanFlags(flags, campaign.base);
  const runner::CampaignResult result = runner::runCampaign(campaign);
  if (result.halted) {  // --halt-after-waves: fold state is in the checkpoint
    bench::printThroughput(result);
    return 0;
  }
  const runner::GridPointSummary& point = result.points.front();

  std::cout << analysis::renderTable1(point.table1) << "\n";
  std::cout << analysis::renderLossSummary(point.table1) << "\n";

  std::cout << "protocol activity per car-round (mean): "
            << point.totals.requestsPerRound.mean() << " REQUESTs, "
            << point.totals.coopDataPerRound.mean() << " CoopData, "
            << point.totals.suppressedPerRound.mean() << " suppressed, "
            << point.totals.bufferedPerRound.mean() << " buffered\n";
  bench::printThroughput(result);

  const std::string dir = flags.getString("csv", "");
  if (!dir.empty() && analysis::writeTable1Csv(dir + "/table1.csv", point.table1)) {
    std::cout << "wrote " << dir << "/table1.csv\n";
  }
  bench::maybeWriteCampaign(flags, "table1", result);
  return 0;
}
