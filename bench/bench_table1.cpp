/// \file bench_table1.cpp
/// Regenerates the paper's Table 1: per-car mean and standard deviation of
/// packets transmitted by the AP in the car's association window, packets
/// lost before cooperation and packets lost after cooperation.
///
/// Spec-driven: the study definition lives in specs/table1.json
/// (--spec=PATH overrides); this main loads it, applies the traditional
/// flag overrides (--rounds/--repl/--seed/... still work for one-off
/// runs) and renders the console table. `vanet_campaign run
/// specs/table1.json` produces byte-identical artefacts.
///
/// Paper reference values (ICDCS 2008, Table 1):
///   car 1: 130.4 tx, 30.5 lost (23.4 %) -> 13.7 (10.5 %)
///   car 2: 143.0 tx, 38.4 lost (26.9 %) -> 24.8 (17.3 %)
///   car 3: 121.4 tx, 34.7 lost (28.6 %) -> 19.1 (15.7 %)
/// We target the shape: losses in the twenties of percent before
/// cooperation, roughly halved after, car 1 helped the most, with the
/// joint (virtual-car) bound close underneath the after-coop numbers.

#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace vanet;
  obs::setRunIdentity(argc, argv);
  const Flags flags(argc, argv);
  flags.allowOnly(bench::benchFlagNames(bench::urbanFlagNames()));
  const runner::CampaignSpec spec = bench::loadBenchSpec(flags, "table1");

  runner::CampaignConfig campaign = bench::campaignFromSpec(flags, spec);
  bench::applyUrbanFlags(flags, campaign.base);
  const runner::CampaignResult result = runner::runCampaign(campaign);
  if (result.halted) {  // --halt-after-waves: fold state is in the checkpoint
    bench::printThroughput(result);
    return 0;
  }
  const runner::GridPointSummary& point = result.points.front();

  std::cout << analysis::renderTable1(point.table1) << "\n";
  std::cout << analysis::renderLossSummary(point.table1) << "\n";

  std::cout << "protocol activity per car-round (mean): "
            << point.totals.requestsPerRound.mean() << " REQUESTs, "
            << point.totals.coopDataPerRound.mean() << " CoopData, "
            << point.totals.suppressedPerRound.mean() << " suppressed, "
            << point.totals.bufferedPerRound.mean() << " buffered\n";
  bench::printThroughput(result);

  bench::maybeWriteSpecArtifacts(flags, spec, result);
  return 0;
}
