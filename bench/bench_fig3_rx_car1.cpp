/// \file bench_fig3_rx_car1.cpp
/// Regenerates Figure 3: probability of reception, per packet number, of
/// the packets addressed to car 1 at each of the three cars, over 30
/// rounds. Paper shape: in Region I car 1 (entering coverage first)
/// receives clearly better than cars 2 and 3; in Region II all are high;
/// in Region III car 1's curve collapses (leaving coverage) while cars 2
/// and 3 stay high — and their two curves nearly coincide because car 3
/// closed on car 2 at corner C.

#include "bench_fig_common.h"

int main(int argc, char** argv) {
  return vanet::bench::runFigureBench(
      argc, argv, /*flow=*/1, vanet::bench::FigureKind::kReception,
      "Figure 3: P(reception) of car 1's packets at cars 1/2/3",
      "Morillo-Pozo et al., ICDCS'08 W, Figure 3");
}
