#!/usr/bin/env python3
"""Generate and validate polynomial coefficients for util/vmath.

Fits near-minimax polynomials (mpmath.chebyfit) for each vmath kernel,
then *simulates the exact C++ double-precision op sequence* in Python
(Python floats are IEEE-754 binary64 with correctly rounded ops) and
reports the observed max error against a 50-digit mpmath reference.
The printed constant block is pasted into src/util/vmath_kernels.h; the
measured bounds are documented there and asserted (with margin) in
tests/util/vmath_test.cpp.

Run: python3 tools/gen_vmath_coeffs.py
"""

import math
import random
import struct

import mpmath as mp

mp.mp.dps = 50

random.seed(20260807)


def bits_of(x: float) -> int:
    return struct.unpack("<Q", struct.pack("<d", x))[0]


def from_bits(b: int) -> float:
    return struct.unpack("<d", struct.pack("<Q", b & 0xFFFFFFFFFFFFFFFF))[0]


def ulp_diff(got: float, want_mp) -> float:
    """Error in units of the last place of the correctly rounded result."""
    want = float(want_mp)  # round-to-nearest double
    if want == got:
        return 0.0
    if want == 0.0 or not math.isfinite(want):
        return float("inf") if got != want else 0.0
    u = math.ulp(want)
    return abs(mp.mpf(got) - want_mp) / mp.mpf(u)


def horner(coeffs, x):
    acc = coeffs[0]
    for c in coeffs[1:]:
        acc = acc * x + c  # each op correctly rounded in binary64
    return acc


def fit(f, lo, hi, max_deg, target, name, center=0.0):
    """Chebyshev near-minimax fit; picks the lowest degree meeting target.

    `center` shifts the polynomial variable (evaluate at x - center): on wide
    intervals the monomial basis is ill-conditioned unless recentered around
    the interval midpoint, which keeps Horner's rounding error ~1 ulp.
    """
    g = (lambda v: f(mp.mpf(v) + center)) if center else f
    for deg in range(2, max_deg + 1):
        coeffs, err = mp.chebyfit(g, [lo - center, hi - center], deg + 1,
                                  error=True)
        if err < target:
            print(f"  {name}: degree {deg}, fit error {mp.nstr(err, 3)}")
            return [float(c) for c in coeffs]
    raise SystemExit(f"{name}: no fit under {target} up to degree {max_deg}")


# ---------------------------------------------------------------- constants
SHIFTER = 6755399441055744.0  # 1.5 * 2^52: round-to-even magic constant
INVLN2 = float(mp.mpf(1) / mp.log(2))
LN2HI = from_bits(0x3FE62E42FEE00000)  # 20 trailing zero bits: q*LN2HI exact
LN2LO = float(mp.log(2) - mp.mpf(LN2HI))
SQRT2 = float(mp.sqrt(2))
LOG10E = float(1 / mp.log(10))
LOG10_2HI = from_bits(bits_of(float(mp.log(2, 10))) & ~0x1FFFFF)
LOG10_2LO = float(mp.log(2, 10) - mp.mpf(LOG10_2HI))
LN10_10 = float(mp.log(10) / 10)
TWO52 = 2.0**52
EXP_LO = -745.0  # exp(-745) ~ 5e-324: saturates to the subnormal floor
EXP_HI = 709.7  # exp(709.7) ~ 1.68e308: stays finite
ERFC_SPLIT = 1.0
ERFC_TMIN = 1.0 / 28.0  # erfc underflows to 0 well before x=28

# ---------------------------------------------------------------- fits
print("fitting:")

HALF_LN2 = float(mp.log(2) / 2)


def exp_q(r):
    r = mp.mpf(r)
    if abs(r) < mp.mpf("1e-8"):
        return mp.mpf(0.5) + r / 6 + r**2 / 24
    return (mp.expm1(r) - r) / r**2


EXPQ = fit(exp_q, -HALF_LN2, HALF_LN2, 12, mp.mpf("1e-19"), "EXPQ")


def log_p(w):
    w = mp.mpf(w)
    if w < mp.mpf("1e-12"):
        return mp.mpf(2) / 3 + 2 * w / 5 + 2 * w**2 / 7
    z = mp.sqrt(w)
    return (2 * mp.atanh(z) / z - 2) / w


ZMAX = (SQRT2 - 1.0) / (SQRT2 + 1.0)
LOGP = fit(log_p, 0, ZMAX * ZMAX * 1.0001, 10, mp.mpf("1e-18"), "LOGP")
# log1p on x in [-0.5, 0.5] -> z = x/(2+x) in [-1/3, 1/5] -> w <= 1/9
LOG1PP = fit(log_p, 0, (1.0 / 9.0) * 1.0001, 14, mp.mpf("1e-18"), "LOG1PP")


def erf_a(w):
    w = mp.mpf(w)
    if w < mp.mpf("1e-12"):
        return 2 / mp.sqrt(mp.pi) * (1 - w / 3)
    x = mp.sqrt(w)
    return mp.erf(x) / x


ERFA_CENTER = 0.5
ERFA = fit(erf_a, 0, 1.0, 16, mp.mpf("5e-19"), "ERFA", center=ERFA_CENTER)


def erfc_f(t):
    # F(t) = x * exp(x^2) * erfc(x) with t = 1/x, x in [1, 28]
    x = 1 / mp.mpf(t)
    return x * mp.exp(x * x) * mp.erfc(x)


ERFC_TSPLIT = 0.25  # x = 4: near poly on t in [0.25,1], far poly on [1/28,0.25]
ERFB_NEAR_CENTER = 0.625
ERFB_FAR_CENTER = 0.14453125  # 37/256, ~midpoint of [1/28, 1/4], exact binary
ERFB_NEAR = fit(erfc_f, ERFC_TSPLIT, 1.0, 24, mp.mpf("2e-18"), "ERFB_NEAR",
                center=ERFB_NEAR_CENTER)
ERFB_FAR = fit(erfc_f, ERFC_TMIN, ERFC_TSPLIT, 24, mp.mpf("2e-18"), "ERFB_FAR",
               center=ERFB_FAR_CENTER)


def sin_s(w):
    w = mp.mpf(w)
    if w < mp.mpf("1e-12"):
        return 2 * mp.pi * (1 - (2 * mp.pi) ** 2 * w / 6)
    r = mp.sqrt(w)
    return mp.sin(2 * mp.pi * r) / r


SINP = fit(sin_s, 0, 1.0 / 64.0, 10, mp.mpf("5e-19"), "SINP")


def cos_c(w):
    w = mp.mpf(w)
    if w < mp.mpf("1e-12"):
        return -((2 * mp.pi) ** 2) / 2 * (1 - (2 * mp.pi) ** 2 * w / 12)
    return (mp.cos(2 * mp.pi * mp.sqrt(w)) - 1) / w


COSP = fit(cos_c, 0, 1.0 / 64.0, 10, mp.mpf("5e-19"), "COSP")

# ------------------------------------------------- simulated double kernels


def sim_exp(x: float) -> float:
    if x < EXP_LO:
        x = EXP_LO
    if x > EXP_HI:
        x = EXP_HI
    kq = x * INVLN2 + SHIFTER
    q = kq - SHIFTER
    r = (x - q * LN2HI) - q * LN2LO
    w = r * r
    p = 1.0 + (r + w * horner(EXPQ, r))
    qb = ((bits_of(kq) & 0xFFFFFFFF) + 2098) & 0xFFFFFFFF
    q1b = qb >> 1
    s1 = from_bits((q1b - 26) << 52)
    s2 = from_bits((qb - q1b - 26) << 52)
    return (p * s1) * s2


DBL_MIN = 2.2250738585072014e-308
TWO54 = 2.0**54
MANT_MASK = 0x000FFFFFFFFFFFFF
ONE_BITS = 0x3FF0000000000000


def _log_core(x: float):
    """Returns (e, logm) with log(x) = e*ln2 + logm, both doubles."""
    e_adj = 0.0
    if x < DBL_MIN:
        x = x * TWO54
        e_adj = -54.0
    b = bits_of(x)
    eb = b >> 52
    m = from_bits((b & MANT_MASK) | ONE_BITS)
    e = from_bits(eb | bits_of(TWO52)) - (TWO52 + 1023.0)
    if m >= SQRT2:
        m = m * 0.5
        e = e + 1.0
    e = e + e_adj
    z = (m - 1.0) / (m + 1.0)
    w = z * z
    t = w * horner(LOGP, w)
    logm = z * 2.0 + z * t
    return e, logm


def sim_log(x: float) -> float:
    e, logm = _log_core(x)
    return e * LN2HI + (logm + e * LN2LO)


def sim_log10(x: float) -> float:
    e, logm = _log_core(x)
    return e * LOG10_2HI + (logm * LOG10E + e * LOG10_2LO)


def sim_log1p(x: float) -> float:
    z = x / (2.0 + x)
    w = z * z
    t = w * horner(LOG1PP, w)
    return z * 2.0 + z * t


def sim_pow10db(x: float) -> float:
    return sim_exp(x * LN10_10)


def sim_erfc(x: float) -> float:
    ax = abs(x)
    xx = ax * ax
    if ax < ERFC_SPLIT:
        p = 1.0 - ax * horner(ERFA, xx - ERFA_CENTER)
    else:
        t = 1.0 / ax
        if t >= ERFC_TSPLIT:
            poly = horner(ERFB_NEAR, t - ERFB_NEAR_CENTER)
        else:
            poly = horner(ERFB_FAR, t - ERFB_FAR_CENTER)
        p = (t * poly) * sim_exp(-xx)
    return 2.0 - p if x < 0.0 else p


def sim_sincos2pi(u: float):
    kq = u * 4.0 + SHIFTER
    qf = kq - SHIFTER
    r = u - qf * 0.25
    w = r * r
    s0 = r * horner(SINP, w)
    c0 = 1.0 + w * horner(COSP, w)
    q = bits_of(kq) & 3
    s, c = (c0, s0) if (q & 1) else (s0, c0)
    if q & 2:
        s = -s
    if (q & 1) ^ ((q >> 1) & 1):
        c = -c
    return s, c


# ---------------------------------------------------------------- validation
def report(name, samples, sim, ref, ulp_cap=None):
    worst, worst_x = 0.0, None
    for x in samples:
        got = sim(x)
        u = ulp_diff(got, ref(x))
        if u > worst:
            worst, worst_x = u, x
    print(f"  {name}: max {float(worst):.2f} ulp (at {worst_x!r})")
    if ulp_cap is not None and worst > ulp_cap:
        raise SystemExit(f"{name} exceeds {ulp_cap} ulp")
    return worst


print("validating (max observed error, simulated binary64 pipeline):")
N = 20000

xs = [random.uniform(-745, 709.7) for _ in range(N)] + [
    0.0, -0.0, -700.0, -745.0, 709.7, 1e-300, -1e-300, 0.5, -0.5]
report("vexp", xs, sim_exp, lambda x: mp.exp(mp.mpf(x)), ulp_cap=2.0)

xs = [from_bits(random.getrandbits(62) % bits_of(1.7e308) + 1) for _ in range(N)]
xs += [from_bits(random.getrandbits(51) + 1) for _ in range(2000)]  # subnormals
xs += [5e-324, DBL_MIN, 1.0, 2.0, 0.5, 1e300, 1e-300]
report("vlog", xs, sim_log, lambda x: mp.log(mp.mpf(x)), ulp_cap=3.0)
report("vlog10", xs, sim_log10, lambda x: mp.log(mp.mpf(x), 10), ulp_cap=3.0)

xs = [random.uniform(-0.5, 0.5) for _ in range(N)] + [-0.5, 0.5, -1e-300, 1e-300]
report("vlog1p", xs, sim_log1p, lambda x: mp.log1p(mp.mpf(x)), ulp_cap=3.0)

xs = [random.uniform(-3100, 3070) for _ in range(N)] + [-3100.0, 3070.0, 0.0]
worst = 0.0
for x in xs:
    got = sim_pow10db(x)
    want = mp.power(10, mp.mpf(x) / 10)
    if float(want) == 0.0 or float(want) == float("inf") or abs(float(want)) < 1e-290:
        continue
    rel = abs((mp.mpf(got) - want) / want)
    # inherent conditioning: the rounded product x*ln10/10 perturbs the
    # exponent by ~ulp(|x|*0.2303)/2 (std::pow(10, x/10) pays the same for
    # rounding x/10); kernel error adds ~1 ulp on top.
    budget = mp.mpf(2 ** -53) * (abs(x) * 0.5 + 8)
    if rel > budget:
        raise SystemExit(f"vpow10db rel {mp.nstr(rel, 3)} > budget at x={x!r}")
    worst = max(worst, float(rel / budget))
print(f"  vpow10db: worst rel-error/budget ratio {worst:.2f} "
      f"(budget = (0.5|x|+8)*2^-53)")

xs = [random.uniform(-6, 27.5) for _ in range(N)] + [0.0, -0.0, 1.0, -6.0, 26.5]
worst = 0.0
for x in xs:
    got = sim_erfc(x)
    want = mp.erfc(mp.mpf(x))
    rel = abs((mp.mpf(got) - want) / want) if want != 0 else mp.mpf(0)
    # budget: poly error + exp(-x^2) argument rounding ~ x^2 * 2^-53
    budget = mp.mpf(2 ** -53) * (2 * x * x + 8) if x > 0 else mp.mpf("6e-16")
    if float(want) != 0.0 and abs(float(want)) > 1e-290:
        if rel > budget:
            raise SystemExit(f"verfc rel {mp.nstr(rel, 3)} > budget at x={x!r}")
        worst = max(worst, float(rel / budget))
print(f"  verfc: worst rel-error/budget ratio {worst:.2f} "
      f"(budget = (2x^2+8)*2^-53 for x>0, 6e-16 for x<=0)")

xs = [random.uniform(0.0, 1.0 - 2**-53) for _ in range(N)] + [
    0.0, 0.25, 0.5, 0.75, 0.125, 1.0 - 2**-53]
worst_s = worst_c = 0.0
for u in xs:
    s, c = sim_sincos2pi(u)
    ws = mp.sin(2 * mp.pi * mp.mpf(u))
    wc = mp.cos(2 * mp.pi * mp.mpf(u))
    worst_s = max(worst_s, abs(float(mp.mpf(s) - ws)))
    worst_c = max(worst_c, abs(float(mp.mpf(c) - wc)))
print(f"  vsincos2pi: max abs err sin {worst_s:.2e} cos {worst_c:.2e}")
if worst_s > 3e-16 or worst_c > 3e-16:
    raise SystemExit("vsincos2pi exceeds 3e-16 abs")

# exactness anchors relied on by the pipeline
assert sim_exp(0.0) == 1.0 and sim_exp(-0.0) == 1.0
assert sim_log(1.0) == 0.0 and sim_log10(1.0) == 0.0
assert sim_log1p(0.0) == 0.0
assert sim_erfc(0.0) == 1.0
assert sim_sincos2pi(0.0) == (0.0, 1.0)
assert sim_pow10db(0.0) == 1.0
assert abs(sim_log10(10.0) - 1.0) <= 2 * math.ulp(1.0), sim_log10(10.0)
assert sim_exp(-745.9) >= 0.0 and sim_exp(-800.0) >= 0.0
assert sim_exp(800.0) == sim_exp(EXP_HI) < float("inf")
print("  exactness anchors OK "
      f"(log10(10)={sim_log10(10.0)!r}, exp(-800)={sim_exp(-800.0)!r})")


# ---------------------------------------------------------------- emit C++
def emit(name, coeffs):
    body = ",\n    ".join(f"{c!r}" for c in coeffs)
    print(f"inline constexpr double {name}[] = {{  // degree {len(coeffs)-1}"
          f"\n    {body}}};")


print("\n// ---- generated by tools/gen_vmath_coeffs.py (highest degree first)")
for n, v in [("kShifter", SHIFTER), ("kInvLn2", INVLN2), ("kLn2Hi", LN2HI),
             ("kLn2Lo", LN2LO), ("kSqrt2", SQRT2), ("kLog10E", LOG10E),
             ("kLog10_2Hi", LOG10_2HI), ("kLog10_2Lo", LOG10_2LO),
             ("kLn10Over10", LN10_10), ("kExpLo", EXP_LO), ("kExpHi", EXP_HI)]:
    print(f"inline constexpr double {n} = {v!r};")
for n, v in [("kExpQ", EXPQ), ("kLogP", LOGP), ("kLog1pP", LOG1PP),
             ("kErfA", ERFA), ("kErfBNear", ERFB_NEAR),
             ("kErfBFar", ERFB_FAR), ("kSinP", SINP),
             ("kCosP", COSP)]:
    emit(n, v)
