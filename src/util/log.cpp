#include "util/log.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace vanet {
namespace {

/// The process-wide initial level: `VANET_LOG` when set to a valid name,
/// warn otherwise. Evaluated once, before main touches any flag.
LogLevel initialLevel() noexcept {
  const char* env = std::getenv("VANET_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  const std::string name(env);
  if (name == "error") return LogLevel::kError;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "info") return LogLevel::kInfo;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "trace") return LogLevel::kTrace;
  std::fprintf(stderr, "[W] VANET_LOG='%s' is not a level name "
                       "(error|warn|info|debug|trace); keeping 'warn'\n",
               env);
  return LogLevel::kWarn;
}

std::mutex& sinkMutex() {
  static std::mutex mutex;
  return mutex;
}

}  // namespace

std::atomic<LogLevel> Log::level_{initialLevel()};

bool Log::setLevelFromName(const std::string& name) noexcept {
  if (name == "error") {
    setLevel(LogLevel::kError);
  } else if (name == "warn") {
    setLevel(LogLevel::kWarn);
  } else if (name == "info") {
    setLevel(LogLevel::kInfo);
  } else if (name == "debug") {
    setLevel(LogLevel::kDebug);
  } else if (name == "trace") {
    setLevel(LogLevel::kTrace);
  } else {
    return false;
  }
  return true;
}

const char* Log::tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kError:
      return "E";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kTrace:
      return "T";
  }
  return "?";
}

void Log::write(LogLevel level, const std::string& message) {
  // Format the full line first so the locked region is one buffered
  // write: concurrent workers' lines cannot interleave mid-line.
  std::string line;
  line.reserve(message.size() + 5);
  line += '[';
  line += tag(level);
  line += "] ";
  line += message;
  line += '\n';
  const std::lock_guard<std::mutex> lock(sinkMutex());
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace vanet
