#include "util/log.h"

#include <cstdio>

namespace vanet {

LogLevel Log::level_ = LogLevel::kWarn;

const char* Log::tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kError:
      return "E";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kTrace:
      return "T";
  }
  return "?";
}

void Log::write(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "[%s] %s\n", tag(level), message.c_str());
}

}  // namespace vanet
