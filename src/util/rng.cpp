#include "util/rng.h"

#include <cmath>
#include <vector>

#include "util/assert.h"
#include "util/vmath.h"

namespace vanet {
namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  // SplitMix64 expansion guarantees a non-degenerate xoshiro state even for
  // adversarial seeds (for example 0).
  std::uint64_t s = seed;
  for (auto& word : state_) {
    word = splitmix64(s);
  }
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

int Rng::uniformInt(int lo, int hi) noexcept {
  VANET_DASSERT(lo <= hi, "uniformInt requires lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<int>(next() % span);
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal(double mean, double stddev) noexcept {
  // Box–Muller on two fresh uniforms; cache the second variate. Both the
  // fresh and the cached return go through the same `mean + stddev * z`
  // association, and the transform matches vmath::vnormalpair bit for bit,
  // so batch paths can draw the uniforms here and vector-transform them.
  double z;
  if (hasCachedGaussian_) {
    hasCachedGaussian_ = false;
    z = cachedGaussian_;
  } else {
    double u1 = uniform();
    while (u1 <= 0.0) {
      u1 = uniform();
    }
    const double u2 = uniform();
    double z1;
    vmath::vnormalpair(u1, u2, z, z1);
    cachedGaussian_ = z1;
    hasCachedGaussian_ = true;
  }
  return mean + stddev * z;
}

void Rng::normalBatch(double* z, std::size_t n) noexcept {
  std::size_t i = 0;
  if (n == 0) return;
  if (hasCachedGaussian_) {
    hasCachedGaussian_ = false;
    z[i++] = cachedGaussian_;
  }
  const std::size_t rest = n - i;
  if (rest == 0) return;
  const std::size_t pairs = (rest + 1) / 2;
  thread_local std::vector<double> u1, u2, z0, z1;
  u1.resize(pairs);
  u2.resize(pairs);
  z0.resize(pairs);
  z1.resize(pairs);
  // Uniform draws stay scalar and in-order (the u1 <= 0 redraw makes the
  // consumption data-dependent); only the transform is vectorized.
  for (std::size_t p = 0; p < pairs; ++p) {
    double a = uniform();
    while (a <= 0.0) {
      a = uniform();
    }
    u1[p] = a;
    u2[p] = uniform();
  }
  vmath::vnormalpair(u1.data(), u2.data(), z0.data(), z1.data(), pairs);
  for (std::size_t p = 0; p < pairs; ++p) {
    z[i++] = z0[p];
    if (i < n) z[i++] = z1[p];
  }
  if (rest % 2 == 1) {
    cachedGaussian_ = z1[pairs - 1];
    hasCachedGaussian_ = true;
  }
}

double Rng::exponential(double rate) noexcept {
  VANET_DASSERT(rate > 0.0, "exponential requires rate > 0");
  double u = uniform();
  while (u <= 0.0) {
    u = uniform();
  }
  return -std::log(u) / rate;
}

std::uint64_t Rng::hash(std::string_view text) noexcept {
  std::uint64_t h = kFnvOffset;
  for (const char c : text) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t Rng::deriveStreamSeed(std::uint64_t masterSeed,
                                    std::uint64_t streamIndex) noexcept {
  // Two SplitMix64 rounds over an odd-multiplier combination; the golden
  // ratio multiplier decorrelates neighbouring indices, the second round
  // breaks the linearity of the first.
  std::uint64_t mix = masterSeed ^ (0x9e3779b97f4a7c15ULL * (streamIndex + 1));
  (void)splitmix64(mix);
  return splitmix64(mix);
}

Rng Rng::child(std::string_view name) const noexcept {
  // Mix the label hash with a digest of the current state. The child seed is
  // a pure function of (parent construction seed, label): deriving children
  // does not perturb the parent and is order-independent.
  const std::uint64_t digest =
      state_[0] ^ rotl(state_[1], 13) ^ rotl(state_[2], 29) ^ rotl(state_[3], 47);
  std::uint64_t mix = digest ^ hash(name);
  return Rng{splitmix64(mix)};
}

Rng Rng::child(std::uint64_t index) const noexcept {
  const std::uint64_t digest =
      state_[0] ^ rotl(state_[1], 13) ^ rotl(state_[2], 29) ^ rotl(state_[3], 47);
  std::uint64_t mix = digest ^ (0x9e3779b97f4a7c15ULL * (index + 1));
  return Rng{splitmix64(mix)};
}

}  // namespace vanet
