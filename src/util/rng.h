#pragma once

/// \file rng.h
/// Deterministic random number generation for reproducible experiments.
///
/// Every stochastic component of the simulator draws from its own named
/// child stream of a master seed. Re-running an experiment with the same
/// master seed reproduces every draw bit-for-bit, regardless of event
/// interleaving in unrelated components. The generator is xoshiro256**
/// (public domain, Blackman & Vigna) seeded through SplitMix64.

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace vanet {

/// A deterministic pseudo-random stream with convenience distributions.
///
/// Copyable: a copy continues the sequence independently from the same
/// state. Use child() to derive statistically independent streams.
class Rng {
 public:
  /// Constructs a stream whose sequence is fully determined by `seed`.
  explicit Rng(std::uint64_t seed) noexcept;

  /// Next raw 64-bit draw.
  std::uint64_t next() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi], both inclusive. Requires lo <= hi.
  int uniformInt(int lo, int hi) noexcept;

  /// True with probability `p` (clamped to [0, 1]).
  bool bernoulli(double p) noexcept;

  /// Gaussian with the given mean and standard deviation (Box–Muller).
  double normal(double mean = 0.0, double stddev = 1.0) noexcept;

  /// Fills `z` with `n` unit Gaussians, bit- and stream-identical to `n`
  /// successive normal() calls (honours the Box–Muller cache on entry and
  /// leaves the same cache state behind), but runs the transform through
  /// the batched vmath Box–Muller kernel. Batch fading paths use this to
  /// vectorize without moving any RNG stream position.
  void normalBatch(double* z, std::size_t n) noexcept;

  /// Exponential with the given rate (mean 1/rate). Requires rate > 0.
  double exponential(double rate) noexcept;

  /// Derives an independent stream labelled by `name`. Children with
  /// different names (or different parent states) do not correlate.
  [[nodiscard]] Rng child(std::string_view name) const noexcept;

  /// Derives an independent stream labelled by an index, e.g. per node.
  [[nodiscard]] Rng child(std::uint64_t index) const noexcept;

  /// FNV-1a 64-bit hash, exposed for deterministic labelling elsewhere.
  static std::uint64_t hash(std::string_view text) noexcept;

  /// Derives the seed of stream `streamIndex` of a family rooted at
  /// `masterSeed` by SplitMix64 mixing. A pure function of its arguments:
  /// the campaign runner uses it to give every (config, seed, replication)
  /// job an independent RNG stream that is identical no matter which
  /// thread, or in which order, the job runs.
  static std::uint64_t deriveStreamSeed(std::uint64_t masterSeed,
                                        std::uint64_t streamIndex) noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
  double cachedGaussian_ = 0.0;
  bool hasCachedGaussian_ = false;
};

}  // namespace vanet
