#pragma once

/// \file types.h
/// Shared identifier types. A flow is addressed by the NodeId of its
/// destination car (the AP transmits one numbered flow per car), so
/// FlowId == NodeId throughout.

#include <cstdint>

namespace vanet {

/// Unique node identifier (cars and access points share the space).
using NodeId = std::int32_t;

/// Flow identifier: the destination car's NodeId.
using FlowId = std::int32_t;

/// Per-flow packet sequence number; numbering starts at 1 each round.
using SeqNo = std::int32_t;

/// Destination id used for broadcast frames.
inline constexpr NodeId kBroadcastId = -1;

/// Conventional id of the first access point (cars use small positive ids).
inline constexpr NodeId kFirstApId = 1000;

}  // namespace vanet
