#pragma once

/// \file binio.h
/// Little-endian binary reader/writer primitives for the compact campaign
/// formats (runner/partial_binary.h). Fixed-width integers are encoded
/// explicitly byte by byte (so the wire format is host-endianness
/// independent; on little-endian hosts the compiler folds the shifts into
/// single moves), doubles are encoded as their raw IEEE-754 bit pattern
/// (bit-exact round trips, the same guarantee json::num gives the text
/// formats), and strings are u32-length-prefixed byte runs.
///
/// BinReader is bounds-checked: every read that would run past the end
/// throws std::runtime_error naming the byte offset and what was being
/// read, which is what lets the partial-format layer report "truncated at
/// byte N while reading X" for damaged shard files.

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>

namespace vanet::util {

/// FNV-1a 64-bit over a byte range: the checksum the binary partial
/// format appends so bit rot in a shard file fails loudly instead of
/// merging silently-wrong doubles. Incremental form: feed chunks with
/// the previous return value as `seed`.
inline std::uint64_t fnv1a64(const void* data, std::size_t size,
                             std::uint64_t seed = 0xcbf29ce484222325ull) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t hash = seed;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

/// Appends little-endian fixed-width values to a growing byte buffer.
class BinWriter {
 public:
  void u8(std::uint8_t value) { buf_.push_back(static_cast<char>(value)); }

  void u32(std::uint32_t value) {
    char bytes[4];
    for (int i = 0; i < 4; ++i) {
      bytes[i] = static_cast<char>((value >> (8 * i)) & 0xff);
    }
    buf_.append(bytes, sizeof bytes);
  }

  void u64(std::uint64_t value) {
    char bytes[8];
    for (int i = 0; i < 8; ++i) {
      bytes[i] = static_cast<char>((value >> (8 * i)) & 0xff);
    }
    buf_.append(bytes, sizeof bytes);
  }

  void i32(std::int32_t value) { u32(static_cast<std::uint32_t>(value)); }
  void i64(std::int64_t value) { u64(static_cast<std::uint64_t>(value)); }

  /// Raw IEEE-754 payload: the double's bit pattern, bit-exact (NaN
  /// payloads and signed zeros included).
  void f64(double value) { u64(std::bit_cast<std::uint64_t>(value)); }

  /// u32 byte length + the bytes (no terminator, any payload allowed).
  void str(std::string_view text) {
    u32(static_cast<std::uint32_t>(text.size()));
    buf_.append(text.data(), text.size());
  }

  void raw(const void* data, std::size_t size) {
    buf_.append(static_cast<const char*>(data), size);
  }

  /// Overwrites the u64 previously written at `offset` (length framing:
  /// reserve with u64(0), fill in once the section length is known).
  void patchU64(std::size_t offset, std::uint64_t value) {
    if (offset + 8 > buf_.size()) {
      throw std::logic_error("BinWriter::patchU64 out of range");
    }
    for (int i = 0; i < 8; ++i) {
      buf_[offset + static_cast<std::size_t>(i)] =
          static_cast<char>((value >> (8 * i)) & 0xff);
    }
  }

  std::size_t size() const noexcept { return buf_.size(); }
  const std::string& buffer() const noexcept { return buf_; }
  std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked reader over an in-memory byte range. The optional
/// `baseOffset` is added to reported offsets, so a reader constructed
/// over one section of a larger file still reports absolute file offsets
/// in its errors.
class BinReader {
 public:
  explicit BinReader(std::string_view data, std::size_t baseOffset = 0)
      : data_(data), base_(baseOffset) {}

  std::size_t offset() const noexcept { return base_ + pos_; }
  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool atEnd() const noexcept { return pos_ == data_.size(); }

  std::uint8_t u8(const char* what) {
    need(1, what);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  std::uint32_t u32(const char* what) {
    need(4, what);
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      value |= static_cast<std::uint32_t>(
                   static_cast<unsigned char>(data_[pos_ + i]))
               << (8 * i);
    }
    pos_ += 4;
    return value;
  }

  std::uint64_t u64(const char* what) {
    need(8, what);
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= static_cast<std::uint64_t>(
                   static_cast<unsigned char>(data_[pos_ + i]))
               << (8 * i);
    }
    pos_ += 8;
    return value;
  }

  std::int32_t i32(const char* what) {
    return static_cast<std::int32_t>(u32(what));
  }
  std::int64_t i64(const char* what) {
    return static_cast<std::int64_t>(u64(what));
  }
  double f64(const char* what) { return std::bit_cast<double>(u64(what)); }

  std::string str(const char* what) {
    const std::uint32_t length = u32(what);
    need(length, what);
    std::string out(data_.substr(pos_, length));
    pos_ += length;
    return out;
  }

  /// A sub-view of `length` bytes from the current position (consumed),
  /// for delegating one length-framed record to a nested reader.
  std::string_view view(std::size_t length, const char* what) {
    need(length, what);
    const std::string_view out = data_.substr(pos_, length);
    pos_ += length;
    return out;
  }

  /// Throws unless `count` more bytes are available; names the absolute
  /// byte offset and the field being read.
  void need(std::size_t count, const char* what) const {
    if (count > data_.size() - pos_) {
      throw std::runtime_error(
          "truncated at byte offset " + std::to_string(offset()) +
          " while reading " + what + " (need " + std::to_string(count) +
          " bytes, have " + std::to_string(data_.size() - pos_) + ")");
    }
  }

 private:
  std::string_view data_;
  std::size_t base_ = 0;
  std::size_t pos_ = 0;
};

}  // namespace vanet::util
