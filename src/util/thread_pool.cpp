#include "util/thread_pool.h"

#include <thread>
#include <vector>

namespace vanet::util {

int hardwareThreads() noexcept {
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware > 0 ? static_cast<int>(hardware) : 1;
}

void runWorkers(int workers, const std::function<void()>& worker) {
  if (workers <= 1) {
    worker();
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers - 1));
  for (int t = 0; t < workers - 1; ++t) {
    pool.emplace_back(worker);
  }
  worker();  // the calling thread is a worker too
  for (std::thread& thread : pool) {
    thread.join();
  }
}

ThreadBudget& ThreadBudget::global() {
  static ThreadBudget* budget = new ThreadBudget();
  return *budget;
}

ThreadBudget::ThreadBudget() noexcept : limit_(hardwareThreads()) {}

ThreadBudget::ThreadBudget(int limit) noexcept
    : limit_(limit > 0 ? limit : hardwareThreads()) {}

void ThreadBudget::setLimit(int limit) noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  limit_ = limit > 0 ? limit : hardwareThreads();
}

int ThreadBudget::limit() const noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  return limit_;
}

int ThreadBudget::inUse() const noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  return inUse_;
}

int ThreadBudget::acquire(int requested, bool force) noexcept {
  if (requested <= 0) return 0;
  const std::lock_guard<std::mutex> lock(mutex_);
  int granted = requested;
  if (!force) {
    const int room = limit_ - inUse_;
    if (granted > room) granted = room;
    if (granted < 0) granted = 0;
  }
  inUse_ += granted;
  return granted;
}

void ThreadBudget::release(int granted) noexcept {
  if (granted <= 0) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  inUse_ -= granted;
  if (inUse_ < 0) inUse_ = 0;
}

}  // namespace vanet::util
