#pragma once

/// \file text.h
/// Small string helpers shared by the diagnostic paths: Levenshtein edit
/// distance and nearest-name lookup, used for the "did you mean" hints
/// the flag parser and the campaign-spec validator attach to unknown
/// names. Header-only; nothing here is performance-sensitive.

#include <algorithm>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace vanet::util {

/// Levenshtein edit distance (insertions, deletions, substitutions all
/// cost 1). O(|a| * |b|) time, O(|b|) memory.
inline std::size_t editDistance(std::string_view a, std::string_view b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diagonal = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t previous = row[j];
      const std::size_t substitution =
          diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, substitution});
      diagonal = previous;
    }
  }
  return row[b.size()];
}

/// The candidate closest to `name` by edit distance, or an empty string
/// when nothing is within `maxDistance` edits (a hint further away than
/// that would mislead more than it helps). Ties resolve to the first
/// candidate in iteration order, so sorted candidate lists give
/// deterministic hints.
inline std::string nearestName(std::string_view name,
                               const std::vector<std::string>& candidates,
                               std::size_t maxDistance = 3) {
  std::string best;
  std::size_t bestDistance = maxDistance + 1;
  for (const std::string& candidate : candidates) {
    const std::size_t distance = editDistance(name, candidate);
    if (distance < bestDistance) {
      bestDistance = distance;
      best = candidate;
    }
  }
  return best;
}

}  // namespace vanet::util
