#include "util/json.h"

#include <charconv>
#include <cstdio>
#include <stdexcept>

namespace vanet::json {

std::string num(double value) {
  char buffer[32];
  const auto [end, ec] = std::to_chars(buffer, buffer + sizeof buffer, value);
  return ec == std::errc() ? std::string(buffer, end) : std::string("nan");
}

std::string quote(const std::string& text) {
  std::string out = "\"";
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof hex, "\\u%04x", c);
          out += hex;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

namespace {

[[noreturn]] void typeError(const char* want) {
  throw std::runtime_error(std::string("json: value is not ") + want);
}

}  // namespace

bool Value::asBool() const {
  if (type_ != Type::Bool) typeError("a bool");
  return bool_;
}

double Value::asDouble() const {
  if (type_ != Type::Number) typeError("a number");
  return number_;
}

std::uint64_t Value::asUInt64() const {
  if (type_ != Type::Number) typeError("a number");
  std::uint64_t v = 0;
  const char* first = raw_.data();
  const char* last = raw_.data() + raw_.size();
  const auto [ptr, ec] = std::from_chars(first, last, v);
  if (ec != std::errc() || ptr != last) typeError("an unsigned integer");
  return v;
}

std::int64_t Value::asInt64() const {
  if (type_ != Type::Number) typeError("a number");
  std::int64_t v = 0;
  const char* first = raw_.data();
  const char* last = raw_.data() + raw_.size();
  const auto [ptr, ec] = std::from_chars(first, last, v);
  if (ec != std::errc() || ptr != last) typeError("an integer");
  return v;
}

const std::string& Value::asString() const {
  if (type_ != Type::String) typeError("a string");
  return raw_;
}

const std::vector<Value>& Value::asArray() const {
  if (type_ != Type::Array) typeError("an array");
  return array_;
}

const std::vector<std::pair<std::string, Value>>& Value::asObject() const {
  if (type_ != Type::Object) typeError("an object");
  return object_;
}

const Value* Value::find(const std::string& key) const {
  if (type_ != Type::Object) return nullptr;
  for (const auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

const Value& Value::at(const std::string& key) const {
  const Value* v = find(key);
  if (v == nullptr) {
    throw std::runtime_error("json: missing key \"" + key + "\"");
  }
  return *v;
}

/// Recursive-descent parser over a string view of the document.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value document() {
    Value v = value();
    skipSpace();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json: " + what + " at offset " +
                             std::to_string(pos_));
  }

  void skipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consumeWord(const char* word) {
    const std::size_t n = std::char_traits<char>::length(word);
    if (text_.compare(pos_, n, word) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Value value() {
    skipSpace();
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
      case 'f': {
        Value v;
        v.type_ = Value::Type::Bool;
        if (consumeWord("true")) {
          v.bool_ = true;
        } else if (consumeWord("false")) {
          v.bool_ = false;
        } else {
          fail("invalid literal");
        }
        return v;
      }
      default:
        if (consumeWord("null")) return Value();
        return number();
    }
  }

  Value string() {
    expect('"');
    Value v;
    v.type_ = Value::Type::String;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c != '\\') {
        v.raw_ += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          v.raw_ += '"';
          break;
        case '\\':
          v.raw_ += '\\';
          break;
        case '/':
          v.raw_ += '/';
          break;
        case 'n':
          v.raw_ += '\n';
          break;
        case 't':
          v.raw_ += '\t';
          break;
        case 'r':
          v.raw_ += '\r';
          break;
        case 'b':
          v.raw_ += '\b';
          break;
        case 'f':
          v.raw_ += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid \\u escape");
            }
          }
          // The writer only escapes control characters; decode the
          // basic-multilingual-plane code point as UTF-8.
          if (code < 0x80) {
            v.raw_ += static_cast<char>(code);
          } else if (code < 0x800) {
            v.raw_ += static_cast<char>(0xC0 | (code >> 6));
            v.raw_ += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            v.raw_ += static_cast<char>(0xE0 | (code >> 12));
            v.raw_ += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            v.raw_ += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("invalid escape");
      }
    }
    return v;
  }

  Value number() {
    // Token: everything a decimal double, "inf"/"-inf" or "nan" can use.
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      const bool tokenChar = (c >= '0' && c <= '9') || c == '+' || c == '-' ||
                             c == '.' || c == 'e' || c == 'E' || c == 'i' ||
                             c == 'n' || c == 'f' || c == 'a';
      if (!tokenChar) break;
      ++pos_;
    }
    if (pos_ == start) fail("invalid value");
    Value v;
    v.type_ = Value::Type::Number;
    v.raw_.assign(text_, start, pos_ - start);
    const char* first = v.raw_.data();
    const char* last = v.raw_.data() + v.raw_.size();
    const auto [ptr, ec] = std::from_chars(first, last, v.number_);
    if (ec != std::errc() || ptr != last) fail("invalid number");
    return v;
  }

  Value array() {
    expect('[');
    Value v;
    v.type_ = Value::Type::Array;
    skipSpace();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array_.push_back(value());
      skipSpace();
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  Value object() {
    expect('{');
    Value v;
    v.type_ = Value::Type::Object;
    skipSpace();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skipSpace();
      Value key = string();
      skipSpace();
      expect(':');
      v.object_.emplace_back(std::move(key.raw_), value());
      skipSpace();
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

Value parse(const std::string& text) { return Parser(text).document(); }

}  // namespace vanet::json
