/// The SIMD dispatch TU: picks the widest lane the compile supports and
/// instantiates every batch body with it. Kept in its own translation unit
/// so the choice is a link-time fact (reported via simdIsaName()) and the
/// kernels in vmath.cpp stay pure scalar code.

#include "util/vmath_kernels.h"

namespace vanet::vmath::detail {
namespace {

#if VANET_VMATH_AVX2
using BestLane = Avx2Lane;
constexpr const char* kIsaName = "avx2";
#elif VANET_VMATH_NEON
using BestLane = NeonLane;
constexpr const char* kIsaName = "neon";
#elif VANET_VMATH_SSE2
using BestLane = Sse2Lane;
constexpr const char* kIsaName = "sse2";
#else
using BestLane = ScalarLane;
constexpr const char* kIsaName = "scalar";
#endif

}  // namespace

const char* simdIsaName() noexcept { return kIsaName; }

void vexpSimd(const double* x, double* out, std::size_t n) noexcept {
  mapBody<BestLane>(x, out, n, ExpOp{});
}
void vlogSimd(const double* x, double* out, std::size_t n) noexcept {
  mapBody<BestLane>(x, out, n, LogOp{});
}
void vlog10Simd(const double* x, double* out, std::size_t n) noexcept {
  mapBody<BestLane>(x, out, n, Log10Op{});
}
void vlog1pSimd(const double* x, double* out, std::size_t n) noexcept {
  mapBody<BestLane>(x, out, n, Log1pOp{});
}
void vpow10dbSimd(const double* x, double* out, std::size_t n) noexcept {
  mapBody<BestLane>(x, out, n, Pow10DbOp{});
}
void vlinear2dbSimd(const double* x, double* out, std::size_t n) noexcept {
  mapBody<BestLane>(x, out, n, Linear2DbOp{});
}
void verfcSimd(const double* x, double* out, std::size_t n) noexcept {
  mapBody<BestLane>(x, out, n, ErfcOp{});
}
void vnormalpairSimd(const double* u1, const double* u2, double* z0,
                     double* z1, std::size_t n) noexcept {
  normalpairBody<BestLane>(u1, u2, z0, z1, n);
}

}  // namespace vanet::vmath::detail
