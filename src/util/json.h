#pragma once

/// \file json.h
/// Minimal JSON utilities shared by the emitters and the campaign
/// partial-result format: exact, locale-independent number rendering
/// (shortest round-trip via std::to_chars, so serialize -> parse ->
/// serialize is byte-stable) and a small recursive-descent parser.
///
/// The parser accepts standard JSON plus the non-standard number tokens
/// our writer can produce for degenerate statistics ("inf", "-inf",
/// "nan"); it keeps each number's raw token so 64-bit integers (seeds,
/// sample counts) round-trip without passing through a double.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace vanet::json {

/// Shortest round-trip rendering of `value` (std::to_chars): parsing the
/// text back yields the identical bit pattern, and equal bits render to
/// equal bytes. Never consults the locale.
std::string num(double value);

/// `text` as a JSON string literal (quotes, backslashes, newlines and
/// control characters escaped).
std::string quote(const std::string& text);

/// A parsed JSON value. Numbers keep both the converted double and the
/// raw token (for exact 64-bit integer recovery).
class Value {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  Type type() const noexcept { return type_; }
  bool isNull() const noexcept { return type_ == Type::Null; }

  /// Typed accessors throw std::runtime_error on a type mismatch, so a
  /// malformed partial file fails loudly instead of reading zeros.
  bool asBool() const;
  double asDouble() const;
  std::uint64_t asUInt64() const;  ///< exact; parses the raw token
  std::int64_t asInt64() const;    ///< exact; parses the raw token
  const std::string& asString() const;
  const std::vector<Value>& asArray() const;
  const std::vector<std::pair<std::string, Value>>& asObject() const;

  /// Object member lookup; nullptr when absent (or not an object).
  const Value* find(const std::string& key) const;

  /// Object member that must exist; throws std::runtime_error otherwise.
  const Value& at(const std::string& key) const;

 private:
  friend Value parse(const std::string&);
  friend class Parser;

  Type type_ = Type::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string raw_;     ///< number token or string payload
  std::vector<Value> array_;
  std::vector<std::pair<std::string, Value>> object_;
};

/// Parses one JSON document (trailing whitespace allowed, trailing
/// garbage is an error). Throws std::runtime_error with a byte offset on
/// malformed input.
Value parse(const std::string& text);

}  // namespace vanet::json
