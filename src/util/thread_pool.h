#pragma once

/// \file thread_pool.h
/// The process-wide worker-thread vocabulary shared by every parallel
/// layer: the campaign executor (src/runner/executor.cpp) and the
/// intra-experiment round engine (src/analysis/experiment.cpp) both draw
/// their workers from one ThreadBudget, so a single `--threads` budget
/// splits as campaign jobs x round workers instead of two layers each
/// spawning hardware_concurrency threads on top of each other.
///
/// Conventions:
///
///  - The budget counts threads *participating in parallel regions*,
///    including the calling thread of each region. A layer that resolves
///    an explicit user request (`--threads=N`) acquires with force=true:
///    the request is an instruction and is always honoured, it merely
///    records the usage. A layer expanding inside another one (the round
///    engine under a campaign job) acquires without force: it receives
///    only what keeps the budget within its limit, degrading gracefully
///    to inline execution when nothing is left -- no oversubscription.
///  - Grant sizes never influence results: every consumer folds its
///    outputs in index order (util/reorder.h), so the bytes are a pure
///    function of the configuration, not of how many workers the budget
///    happened to have free.

#include <functional>
#include <mutex>

namespace vanet::util {

/// std::thread::hardware_concurrency clamped to >= 1.
int hardwareThreads() noexcept;

/// Runs `worker` concurrently on `workers` threads: `workers - 1`
/// spawned plus the calling thread. `workers` <= 1 calls it inline on
/// the calling thread. Joins every spawned thread before returning;
/// `worker` must not throw (wrap the body, park the error, rethrow after
/// -- see util/reorder.h's foldOrdered for the canonical pattern).
void runWorkers(int workers, const std::function<void()>& worker);

/// A reservation counter for worker threads. Thread-safe.
class ThreadBudget {
 public:
  /// The process-wide budget every layer shares. Limit defaults to
  /// hardwareThreads().
  static ThreadBudget& global();

  ThreadBudget() noexcept;
  /// `limit` <= 0 selects hardwareThreads().
  explicit ThreadBudget(int limit) noexcept;

  /// Replaces the limit; <= 0 resets to hardwareThreads(). Outstanding
  /// reservations are unaffected.
  void setLimit(int limit) noexcept;
  int limit() const noexcept;

  /// Threads currently reserved.
  int inUse() const noexcept;

  /// Reserves up to `requested` threads and returns the granted count.
  /// Without `force` the grant keeps inUse() <= limit() (possibly 0);
  /// with `force` the full request is granted unconditionally (used for
  /// explicit user thread counts, which are instructions, not hints).
  int acquire(int requested, bool force = false) noexcept;

  /// Returns a grant. `granted` must come from acquire().
  void release(int granted) noexcept;

 private:
  mutable std::mutex mutex_;
  int limit_ = 1;
  int inUse_ = 0;
};

/// RAII reservation: acquires on construction, releases on destruction.
class ThreadLease {
 public:
  ThreadLease(ThreadBudget& budget, int requested, bool force = false) noexcept
      : budget_(&budget), granted_(budget.acquire(requested, force)) {}
  ~ThreadLease() { budget_->release(granted_); }

  ThreadLease(const ThreadLease&) = delete;
  ThreadLease& operator=(const ThreadLease&) = delete;

  /// Threads this lease holds.
  int granted() const noexcept { return granted_; }

 private:
  ThreadBudget* budget_;
  int granted_;
};

}  // namespace vanet::util
