#pragma once

/// \file vmath.h
/// Deterministic vector math for the batched radio pipeline.
///
/// Each kernel (exp, log, log10, log1p, 10^(x/10), 10*log10, erfc, and the
/// Box-Muller sin/cos-2-pi pair) is implemented *once* as a branch-light
/// polynomial/bit-trick element kernel over an abstract SIMD lane
/// (src/util/vmath_kernels.h) and compiled in several bodies: a scalar
/// loop, a baseline SIMD loop (SSE2/NEON, picked at compile time), and on
/// x86-64 an AVX2 loop in its own -mavx2 translation unit selected at
/// runtime via cpuid. Every body executes the identical sequence of
/// IEEE-754 operations per element -- only +, -, *, /, sqrt, compares and
/// bit ops, no FMA contraction (-ffp-contract=off project-wide), no
/// hardware min/max, and polynomials evaluated with a fixed Estrin tree --
/// so scalar and SIMD outputs are **bit-identical** by construction. The
/// scalar element overloads below inline the same kernels, which is what
/// keeps the scalar reference paths of the link model bit-identical to the
/// batched ones.
///
/// Accuracy versus libm (measured by tools/gen_vmath_coeffs.py and
/// re-checked in tests/util/vmath_test.cpp):
///   vexp      <= 2 ulp on [-745, 709.7]; saturates (no inf/0-crossing
///              surprises): below -745 returns ~5e-324, above 709.7 returns
///              exp(709.7) ~ 1.68e308.
///   vlog      <= 3 ulp on (0, inf), denormals included (2^54 pre-scale).
///              vlog(0) returns a finite ~-746.6 instead of -inf; callers
///              floor their inputs (see kLinearFloor).
///   vlog10    <= 3 ulp, same domain handling as vlog.
///   vlog1p    <= 3 ulp on [-0.5, 0.5] (the BER->PER domain); outside that
///              interval the polynomial is NOT valid.
///   vpow10db  relative error <= (0.5|x| + 8) * 2^-53: the |x| term is the
///              inherent rounding of the x*ln10/10 argument product
///              (std::pow(10, x/10) pays the same for rounding x/10).
///   verfc     relative error <= (2x^2 + 8) * 2^-53 for x > 0 (the x^2 term
///              is the rounding of -x*x feeding exp), <= 6e-16 for x <= 0.
///   vsincos2pi <= 2.5e-16 absolute (~1 ulp of a unit-range value); the
///              angle argument is in *turns* (sin/cos of 2*pi*u), so
///              Box-Muller's 2*pi*uniform angle needs no range reduction.
///
/// `VANET_SIMD=off|0|false` (or setSimdEnabled(false)) forces the scalar
/// bodies; because both bodies are bit-identical this must not change any
/// emitted artefact byte (CI enforces this on the Table-1 and figure CSVs).

#include <cstddef>

#include "util/vmath_kernels.h"

namespace vanet::vmath {

/// The one linear-power floor used by every dB conversion in the code base
/// (vlinear2db / linearToDb): 10*log10(1e-15) = -150 dB, far below the
/// -96 dBm sensitivity gate and the deepest fade any statistic resolves.
/// (Historically fading clamped at 1e-12 and the radio environment at
/// 1e-15; this is the single documented survivor.)
inline constexpr double kLinearFloor = 1e-15;

// --- scalar elements (same kernels as the batch bodies, bit-identical;
// --- inline because they sit on per-sample hot paths) ---
inline double vexp(double x) noexcept {
  return detail::expK<detail::ScalarLane>(x);
}
inline double vlog(double x) noexcept {
  return detail::logK<detail::ScalarLane>(x);
}
inline double vlog10(double x) noexcept {
  return detail::log10K<detail::ScalarLane>(x);
}
inline double vlog1p(double x) noexcept {
  return detail::log1pK<detail::ScalarLane>(x);
}
/// 10^(db/10), dB -> linear power
inline double vpow10db(double db) noexcept {
  return detail::pow10dbK<detail::ScalarLane>(db);
}
/// 10*log10(max(mw, kLinearFloor))
inline double vlinear2db(double mw) noexcept {
  return detail::linear2dbK<detail::ScalarLane>(mw);
}
inline double verfc(double x) noexcept {
  return detail::erfcK<detail::ScalarLane>(x);
}
/// sin/cos of 2*pi*turns (turns in [0, 1) reduced exactly; any finite
/// |turns| < 2^51 works).
inline void vsincos2pi(double turns, double& sinOut, double& cosOut) noexcept {
  detail::sincos2piK<detail::ScalarLane>(turns, sinOut, cosOut);
}
/// Box-Muller pair from two uniforms, u1 in (0, 1], u2 in [0, 1):
/// z0 = r*cos(2*pi*u2), z1 = r*sin(2*pi*u2) with r = sqrt(-2*ln(u1)).
/// Mirrors Rng::normal (z0 is the returned variate, z1 the cached one).
inline void vnormalpair(double u1, double u2, double& z0, double& z1) noexcept {
  detail::normalpairK<detail::ScalarLane>(u1, u2, z0, z1);
}

// --- batch bodies (out may alias the input array exactly; partial overlap
// --- is not allowed) ---
void vexp(const double* x, double* out, std::size_t n) noexcept;
void vlog(const double* x, double* out, std::size_t n) noexcept;
void vlog10(const double* x, double* out, std::size_t n) noexcept;
void vlog1p(const double* x, double* out, std::size_t n) noexcept;
void vpow10db(const double* db, double* out, std::size_t n) noexcept;
void vlinear2db(const double* mw, double* out, std::size_t n) noexcept;
void verfc(const double* x, double* out, std::size_t n) noexcept;
/// Batched Box-Muller transform; z0/z1 must not alias u1/u2.
void vnormalpair(const double* u1, const double* u2, double* z0, double* z1,
                 std::size_t n) noexcept;

// --- shared dB <-> linear helpers (the one home for what used to be
// --- per-file dbmToMilliwatt / snrLinear / milliwattToDbm copies) ---
inline double dbToLinear(double db) noexcept { return vpow10db(db); }
inline double linearToDb(double mw) noexcept { return vlinear2db(mw); }
inline void dbToLinear(const double* db, double* out, std::size_t n) noexcept {
  vpow10db(db, out, n);
}
inline void linearToDb(const double* mw, double* out, std::size_t n) noexcept {
  vlinear2db(mw, out, n);
}

// --- runtime SIMD toggle (byte-diff testing hook) ---
/// True unless VANET_SIMD=off|0|false was set at process start or
/// setSimdEnabled(false) was called.
bool simdEnabled() noexcept;
void setSimdEnabled(bool on) noexcept;
/// The SIMD body batch calls dispatch to when the toggle is on: "avx2"
/// (runtime cpuid pick on x86-64), "sse2", "neon" or "scalar".
const char* simdIsa() noexcept;

}  // namespace vanet::vmath
