#pragma once

/// \file flags.h
/// Tiny command-line flag parser for the examples and bench harnesses.
/// Accepts `--name=value`, `--name value` and bare boolean `--name`.
/// Unknown positional arguments are collected in positional().

#include <map>
#include <string>
#include <vector>

namespace vanet {

/// Parsed command line. Lookup is by flag name without the leading dashes.
class Flags {
 public:
  Flags() = default;

  /// Parses argv; later occurrences of a flag override earlier ones.
  Flags(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  /// Typed getters return `fallback` when the flag is absent; they abort
  /// with a clear message when the value does not parse.
  int getInt(const std::string& name, int fallback) const;
  double getDouble(const std::string& name, double fallback) const;
  std::string getString(const std::string& name, std::string fallback) const;

  /// A bare `--name` or `--name=true|1|yes` is true; `=false|0|no` is false.
  bool getBool(const std::string& name, bool fallback) const;

  const std::vector<std::string>& positional() const noexcept { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace vanet
