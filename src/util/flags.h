#pragma once

/// \file flags.h
/// Tiny command-line flag parser for the examples and bench harnesses.
/// Accepts `--name=value`, `--name value` and bare boolean `--name`.
/// Unknown positional arguments are collected in positional().

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace vanet {

/// One shard of a partitioned run, as written on the command line:
/// `--shard=i/N` selects shard i of N.
struct ShardSpec {
  int index = 0;
  int count = 1;
};

/// Parsed command line. Lookup is by flag name without the leading dashes.
class Flags {
 public:
  Flags() = default;

  /// Parses argv; later occurrences of a flag override earlier ones.
  Flags(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  /// Typed getters return `fallback` when the flag is absent; they abort
  /// with a clear message when the value does not parse.
  int getInt(const std::string& name, int fallback) const;
  std::uint64_t getUInt64(const std::string& name,
                          std::uint64_t fallback) const;
  double getDouble(const std::string& name, double fallback) const;
  std::string getString(const std::string& name, std::string fallback) const;

  /// A bare `--name` or `--name=true|1|yes` is true; `=false|0|no` is false.
  bool getBool(const std::string& name, bool fallback) const;

  /// Parses `--name=i/N` with 0 <= i < N; `fallback` when absent or when
  /// the flag was given bare (so a bool `--shard` mode flag can coexist),
  /// abort on a malformed spec.
  ShardSpec getShard(const std::string& name, ShardSpec fallback = {}) const;

  const std::vector<std::string>& positional() const noexcept { return positional_; }

  /// Rejects (exit 2) any parsed flag whose name is not in `known`, with
  /// a did-you-mean nearest-name hint -- a typo'd `--target-cl=0.05`
  /// must not silently run a study with the default. Every binary calls
  /// this once, right after parsing, with its full flag vocabulary
  /// (typically campaignFlagNames() plus its own additions).
  void allowOnly(const std::vector<std::string>& known) const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

/// The names campaignRunFlags() reads -- the shared engine vocabulary
/// every campaign binary accepts. Append binary-specific names to a copy
/// and pass the result to Flags::allowOnly().
std::vector<std::string> campaignFlagNames();

/// The campaign CLI vocabulary shared by every bench and example (one
/// parser instead of per-binary copies):
///   --seed=S           master seed
///   --threads=N        campaign job workers (0 = hardware concurrency)
///   --round-threads=N  round workers inside each job's experiment
///                      (1 = serial rounds, 0 = whatever the shared
///                      thread budget has left); results are identical
///                      for every value
///   --shard=i/N        run shard i of N (whole grid points)
///   --partial-out=F    write this shard's partial result to F
///   --partial-format=X partial encoding: "bin" (compact binary v3) or
///                      "json"; omit for the default (binary for --shard
///                      runs, JSON otherwise)
///   --checkpoint=F     write a binary checkpoint partial to F at every
///                      replication-wave barrier (atomically)
///   --resume           restore the fold state from --checkpoint=F and
///                      continue at the first uncovered wave; the final
///                      artifacts are byte-identical to an uninterrupted
///                      run
///   --halt-after-waves=K  stop after K wave barriers (kill simulation
///                      for checkpoint tests; default: run to completion)
///   --streaming        fold results through the bounded reordering
///                      window (O(points+threads) memory)
///   --target-ci=X      adaptive replication: stop a grid point once the
///                      95 % CI half-width of the target metric divided
///                      by |mean| drops to X, which must be > 0 (omit
///                      the flag to keep the fixed --repl count)
///   --min-reps=N       adaptive wave-0 size / convergence floor
///                      (defaults to the --repl count)
///   --max-reps=N       adaptive replication cap (default 64)
///   --target-metric=M  metric the stop rule watches (default: the
///                      scenario's, e.g. "pdr")
///   --progress         live progress lines on stderr (rate-limited,
///                      `progress: `-prefixed; results are unchanged)
///   --log-level=L      error|warn|info|debug|trace; overrides the
///                      VANET_LOG environment variable (default warn)
struct CampaignRunFlags {
  std::uint64_t seed = 2008;
  int threads = 0;
  int roundThreads = 1;
  ShardSpec shard{};
  std::string partialOut;
  /// Partial-file encoding: "bin", "json", or empty for the format-auto
  /// default (binary when sharded, JSON otherwise).
  std::string partialFormat;
  std::string checkpoint;     ///< per-wave checkpoint file; empty = off
  bool resume = false;        ///< restore from `checkpoint` first
  int haltAfterWaves = -1;    ///< stop after K barriers (< 0: run all)
  bool streaming = false;
  double targetCi = 0.0;  ///< <= 0 keeps the fixed replication count
  int minReps = 0;        ///< 0 = derive from the fixed count
  int maxReps = 0;        ///< 0 = engine default
  std::string targetMetric;
  bool progress = false;
};

/// Reads the shared campaign flags from `flags`. Also *applies* the
/// logging flags as a side effect: `--log-level=L` (validated; abort on
/// an unknown name) wins over the VANET_LOG environment default.
CampaignRunFlags campaignRunFlags(const Flags& flags,
                                  std::uint64_t defaultSeed = 2008);

}  // namespace vanet
