#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "util/assert.h"

namespace vanet {

void RunningStats::add(double x) noexcept {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

RunningStats::State RunningStats::state() const noexcept {
  State s;
  s.count = count_;
  s.mean = mean_;
  s.m2 = m2_;
  s.sum = sum_;
  if (count_ > 0) {
    s.min = min_;
    s.max = max_;
  }
  return s;
}

RunningStats RunningStats::fromState(const State& state) noexcept {
  RunningStats stats;
  if (state.count == 0) return stats;
  stats.count_ = state.count;
  stats.mean_ = state.mean;
  stats.m2_ = state.m2;
  stats.sum_ = state.sum;
  stats.min_ = state.min;
  stats.max_ = state.max;
  return stats;
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::stderrOfMean() const noexcept {
  if (count_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(count_));
}

namespace {

/// Two-sided 95 % Student-t quantiles for small n; converges to 1.96.
double tQuantile95(std::size_t degreesOfFreedom) noexcept {
  static constexpr double kTable[] = {
      0.0,  12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
      2.262, 2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110,
      2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
      2.052, 2.048, 2.045, 2.042};
  if (degreesOfFreedom == 0) return 0.0;
  if (degreesOfFreedom < std::size(kTable)) return kTable[degreesOfFreedom];
  if (degreesOfFreedom < 60) return 2.00;
  if (degreesOfFreedom < 120) return 1.98;
  return 1.96;
}

}  // namespace

double RunningStats::confidence95() const noexcept {
  if (count_ < 2) return 0.0;
  return tQuantile95(count_ - 1) * stderrOfMean();
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), binWidth_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  VANET_ASSERT(hi > lo, "histogram range must be non-empty");
  VANET_ASSERT(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x) noexcept {
  // NaN has no bin position at all: dropped entirely, not counted toward
  // total_, so quantiles stay consistent with the recorded mass.
  if (std::isnan(x)) return;
  // Clamp in the *double* domain before the integer cast: converting a
  // double outside the target type's range (1e300, +-inf, or NaN above)
  // is undefined behaviour, not a saturation.
  const double position = (x - lo_) / binWidth_;
  std::size_t bin = 0;
  if (position >= static_cast<double>(counts_.size())) {
    bin = counts_.size() - 1;
  } else if (position > 0.0) {
    bin = static_cast<std::size_t>(position);
  }
  ++counts_[bin];
  ++total_;
}

std::uint64_t Histogram::binCount(std::size_t bin) const {
  VANET_ASSERT(bin < counts_.size(), "bin out of range");
  return counts_[bin];
}

double Histogram::binLow(std::size_t bin) const {
  VANET_ASSERT(bin < counts_.size(), "bin out of range");
  return lo_ + binWidth_ * static_cast<double>(bin);
}

double Histogram::binHigh(std::size_t bin) const { return binLow(bin) + binWidth_; }

double Histogram::quantile(double q) const noexcept {
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double cumulative = 0.0;
  for (std::size_t bin = 0; bin < counts_.size(); ++bin) {
    const auto c = static_cast<double>(counts_[bin]);
    // Empty bins carry no quantile mass: without the c > 0 guard, an
    // empty bin sitting exactly at the target boundary (cumulative ==
    // target, e.g. q == 0 before any mass) would claim the quantile and
    // report its own low edge instead of where the data actually is.
    if (c > 0.0 && cumulative + c >= target) {
      const double inBin = std::max(0.0, (target - cumulative) / c);
      return binLow(bin) + binWidth_ * inBin;
    }
    cumulative += c;
  }
  return hi_;
}

std::string Histogram::render(std::size_t width) const {
  std::ostringstream out;
  const std::uint64_t peak = counts_.empty()
                                 ? 0
                                 : *std::max_element(counts_.begin(), counts_.end());
  for (std::size_t bin = 0; bin < counts_.size(); ++bin) {
    const std::size_t bar =
        peak == 0 ? 0
                  : static_cast<std::size_t>(static_cast<double>(counts_[bin]) /
                                             static_cast<double>(peak) *
                                             static_cast<double>(width));
    out << "[" << binLow(bin) << ", " << binHigh(bin) << ") "
        << std::string(bar, '#') << " " << counts_[bin] << "\n";
  }
  return out.str();
}

void SeriesAccumulator::add(std::size_t i, double value) {
  if (i >= cells_.size()) {
    cells_.resize(i + 1);
  }
  cells_[i].add(value);
}

void SeriesAccumulator::merge(const SeriesAccumulator& other) {
  if (other.cells_.size() > cells_.size()) {
    cells_.resize(other.cells_.size());
  }
  for (std::size_t i = 0; i < other.cells_.size(); ++i) {
    cells_[i].merge(other.cells_[i]);
  }
}

SeriesAccumulator SeriesAccumulator::fromCells(std::vector<RunningStats> cells) {
  SeriesAccumulator acc;
  acc.cells_ = std::move(cells);
  return acc;
}

const RunningStats& SeriesAccumulator::at(std::size_t i) const {
  VANET_ASSERT(i < cells_.size(), "series index out of range");
  return cells_[i];
}

std::vector<double> SeriesAccumulator::means() const {
  std::vector<double> out(cells_.size());
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    out[i] = cells_[i].mean();
  }
  return out;
}

std::vector<double> SeriesAccumulator::smoothedMeans(std::size_t halfWindow) const {
  const std::vector<double> raw = means();
  if (halfWindow == 0 || raw.empty()) return raw;
  std::vector<double> out(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const std::size_t lo = i >= halfWindow ? i - halfWindow : 0;
    const std::size_t hi = std::min(raw.size() - 1, i + halfWindow);
    double sum = 0.0;
    for (std::size_t j = lo; j <= hi; ++j) sum += raw[j];
    out[i] = sum / static_cast<double>(hi - lo + 1);
  }
  return out;
}

}  // namespace vanet
