#include "util/vmath.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "util/vmath_kernels.h"

namespace vanet::vmath {
namespace {

using detail::ScalarLane;

bool simdEnvEnabled() {
  const char* v = std::getenv("VANET_SIMD");
  if (v == nullptr) {
    return true;
  }
  return !(std::strcmp(v, "off") == 0 || std::strcmp(v, "0") == 0 ||
           std::strcmp(v, "false") == 0);
}

std::atomic<bool>& simdFlag() {
  static std::atomic<bool> flag{simdEnvEnabled()};
  return flag;
}

/// True when the -mavx2 translation unit was really built with AVX2 *and*
/// this machine has it; the baseline SSE2/NEON body is the fallback.
bool useAvx2() noexcept {
#if defined(VANET_VMATH_X86) && defined(__GNUC__)
  static const bool ok =
      detail::avx2BodyCompiled() && __builtin_cpu_supports("avx2");
  return ok;
#else
  return false;
#endif
}

}  // namespace

bool simdEnabled() noexcept {
  return simdFlag().load(std::memory_order_relaxed);
}

void setSimdEnabled(bool on) noexcept {
  simdFlag().store(on, std::memory_order_relaxed);
}

const char* simdIsa() noexcept {
  return useAvx2() ? "avx2" : detail::simdIsaName();
}

// --- batch bodies: dispatch to the widest available SIMD body unless the
// --- runtime toggle forces the scalar one ---

#if defined(VANET_VMATH_X86)
#define VANET_VMATH_DISPATCH(fn, ...)                 \
  do {                                                \
    if (!simdEnabled()) {                             \
      break;                                          \
    }                                                 \
    if (useAvx2()) {                                  \
      detail::fn##Avx2(__VA_ARGS__);                  \
    } else {                                          \
      detail::fn##Simd(__VA_ARGS__);                  \
    }                                                 \
    return;                                           \
  } while (false)
#else
#define VANET_VMATH_DISPATCH(fn, ...)                 \
  do {                                                \
    if (!simdEnabled()) {                             \
      break;                                          \
    }                                                 \
    detail::fn##Simd(__VA_ARGS__);                    \
    return;                                           \
  } while (false)
#endif

void vexp(const double* x, double* out, std::size_t n) noexcept {
  VANET_VMATH_DISPATCH(vexp, x, out, n);
  detail::mapBody<ScalarLane>(x, out, n, detail::ExpOp{});
}

void vlog(const double* x, double* out, std::size_t n) noexcept {
  VANET_VMATH_DISPATCH(vlog, x, out, n);
  detail::mapBody<ScalarLane>(x, out, n, detail::LogOp{});
}

void vlog10(const double* x, double* out, std::size_t n) noexcept {
  VANET_VMATH_DISPATCH(vlog10, x, out, n);
  detail::mapBody<ScalarLane>(x, out, n, detail::Log10Op{});
}

void vlog1p(const double* x, double* out, std::size_t n) noexcept {
  VANET_VMATH_DISPATCH(vlog1p, x, out, n);
  detail::mapBody<ScalarLane>(x, out, n, detail::Log1pOp{});
}

void vpow10db(const double* db, double* out, std::size_t n) noexcept {
  VANET_VMATH_DISPATCH(vpow10db, db, out, n);
  detail::mapBody<ScalarLane>(db, out, n, detail::Pow10DbOp{});
}

void vlinear2db(const double* mw, double* out, std::size_t n) noexcept {
  VANET_VMATH_DISPATCH(vlinear2db, mw, out, n);
  detail::mapBody<ScalarLane>(mw, out, n, detail::Linear2DbOp{});
}

void verfc(const double* x, double* out, std::size_t n) noexcept {
  VANET_VMATH_DISPATCH(verfc, x, out, n);
  detail::mapBody<ScalarLane>(x, out, n, detail::ErfcOp{});
}

void vnormalpair(const double* u1, const double* u2, double* z0, double* z1,
                 std::size_t n) noexcept {
  VANET_VMATH_DISPATCH(vnormalpair, u1, u2, z0, z1, n);
  detail::normalpairBody<ScalarLane>(u1, u2, z0, z1, n);
}

#undef VANET_VMATH_DISPATCH

}  // namespace vanet::vmath
