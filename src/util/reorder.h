#pragma once

/// \file reorder.h
/// Bounded index-order reordering window, hoisted from the campaign
/// executor's streaming backend so the intra-experiment round engine can
/// fold round outcomes through the exact same machinery.
///
/// The shape: jobs 0..count-1 complete on worker threads in any order;
/// completed results are *parked* keyed by index, and the worker whose
/// insert completes the window front folds every contiguous result --
/// strictly in ascending index -- before releasing the lock. A worker may
/// only claim a new index while the window has room (claimed index <
/// folded frontier + cap), so at most `cap` completed-but-unfolded
/// results ever exist. Because the fold order is a pure function of the
/// index sequence, the folded bytes are identical for any worker count,
/// including fully inline execution.
///
/// Error path: the first failure (in a job or in the fold itself) aborts
/// the window; blocked claimants wake and drain, late completions are
/// dropped, and the error is rethrown on the calling thread after the
/// workers join -- nothing partial ever escapes.

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <map>
#include <mutex>
#include <utility>

#include "obs/counters.h"
#include "util/thread_pool.h"

namespace vanet::util {

/// The window capacity for `workers` threads: every worker can have one
/// in-flight job plus one parked result before the frontier job
/// completes, so twice the worker count bounds the parked set at
/// O(workers) however many jobs the run has.
inline std::size_t reorderWindowCap(int workers) noexcept {
  const std::size_t count =
      workers > 0 ? static_cast<std::size_t>(workers) : std::size_t{1};
  return std::max<std::size_t>(2, 2 * count);
}

/// The reordering window itself. Thread-safe; see the file comment for
/// the protocol. `Result` must be movable.
template <typename Result>
class ReorderWindow {
 public:
  using Fold = std::function<void(std::size_t, Result&)>;

  /// A window over indices [0, count) holding at most `cap` (>= 1)
  /// parked results; `fold` is called under the window lock, strictly in
  /// ascending index order.
  ReorderWindow(std::size_t count, std::size_t cap, Fold fold)
      : count_(count), cap_(std::max<std::size_t>(1, cap)),
        fold_(std::move(fold)) {}

  /// Blocks until an index is claimable (window has room), the run is
  /// drained, or the window failed. Returns false when there is nothing
  /// left to claim.
  bool claim(std::size_t& index) {
    std::unique_lock<std::mutex> lock(mutex_);
    const auto claimableNow = [&] {
      return failed_ || nextClaim_ >= count_ || nextClaim_ < frontier_ + cap_;
    };
    // A stall = the window is full and this worker must sleep until the
    // frontier folds forward. Scheduling-dependent, so observability
    // only -- never part of the determinism contract.
    if (!claimableNow()) OBS_COUNT("util.reorder.stalls");
    claimable_.wait(lock, claimableNow);
    if (failed_ || nextClaim_ >= count_) return false;
    index = nextClaim_++;
    return true;
  }

  /// Parks the result of a claimed index and folds every contiguous
  /// result from the frontier. May throw (parking allocates and the fold
  /// runs arbitrary merges): callers must route any exception to fail().
  /// Completions after a failure are dropped.
  void complete(std::size_t index, Result result) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (failed_) return;
    pending_.emplace(index, std::move(result));
    peakParked_ = std::max(peakParked_, pending_.size());
    while (!pending_.empty() && pending_.begin()->first == frontier_) {
      fold_(frontier_, pending_.begin()->second);
      pending_.erase(pending_.begin());
      ++frontier_;
    }
    // Folding moved the window; blocked claimants may now proceed.
    claimable_.notify_all();
  }

  /// Aborts the window with the first error; later errors are ignored.
  void fail(std::exception_ptr error) noexcept {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!error_) error_ = error;
    failed_ = true;
    claimable_.notify_all();
  }

  /// Rethrows the failure, if any. Call after every worker joined.
  void rethrowIfFailed() {
    if (error_) std::rethrow_exception(error_);
  }

  /// High-water mark of parked (completed-but-unfolded) results.
  std::size_t peakParked() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return peakParked_;
  }

  /// Indices folded so far (the frontier).
  std::size_t folded() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return frontier_;
  }

 private:
  const std::size_t count_;
  const std::size_t cap_;
  Fold fold_;

  mutable std::mutex mutex_;
  std::condition_variable claimable_;
  std::map<std::size_t, Result> pending_;
  std::size_t nextClaim_ = 0;
  std::size_t frontier_ = 0;  ///< next index to fold
  std::size_t peakParked_ = 0;
  bool failed_ = false;
  std::exception_ptr error_;
};

/// Runs `job` for every index in [0, count) on `workers` threads (the
/// calling thread included; <= 1 is fully inline) and folds each result
/// through a ReorderWindow of capacity `cap`, strictly in index order.
/// Rethrows the first job/fold error on the calling thread after the
/// workers drain; the fold is then incomplete and must be discarded.
/// Returns the window's parked-results high-water mark.
template <typename Result>
std::size_t foldOrdered(std::size_t count, int workers, std::size_t cap,
                        const std::function<Result(std::size_t)>& job,
                        const std::function<void(std::size_t, Result&)>& fold) {
  ReorderWindow<Result> window(count, cap, fold);
  const auto worker = [&] {
    for (;;) {
      std::size_t index = 0;
      if (!window.claim(index)) return;
      try {
        window.complete(index, job(index));
      } catch (...) {
        window.fail(std::current_exception());
        return;
      }
    }
  };
  runWorkers(workers, worker);
  window.rethrowIfFailed();
  return window.peakParked();
}

}  // namespace vanet::util
