#pragma once

/// \file log.h
/// Minimal leveled logger. Messages are composed with `operator<<` into a
/// per-call stream, so there is zero formatting cost when the level is
/// disabled. The sink is thread-safe: each line is formatted off-lock and
/// written to stderr as a single mutex-guarded write, so lines from
/// concurrent campaign workers never interleave mid-line.
///
/// The initial level comes from the `VANET_LOG` environment variable
/// (error|warn|info|debug|trace; default warn); binaries that parse the
/// shared campaign flags also honour `--log-level=LEVEL`, which wins over
/// the environment.

#include <atomic>
#include <sstream>
#include <string>

namespace vanet {

/// Severity levels, ordered from most to least severe.
enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3, kTrace = 4 };

/// Global logging configuration and sink.
class Log {
 public:
  /// Sets the most verbose level that will be emitted.
  static void setLevel(LogLevel level) noexcept {
    level_.store(level, std::memory_order_relaxed);
  }
  static LogLevel level() noexcept {
    return level_.load(std::memory_order_relaxed);
  }
  static bool enabled(LogLevel level) noexcept { return level <= Log::level(); }

  /// Parses a level name ("error", "warn", "info", "debug", "trace",
  /// case-sensitive). Returns false (and leaves the level untouched) on
  /// an unknown name.
  static bool setLevelFromName(const std::string& name) noexcept;

  /// Emits one formatted line to stderr. Used by the LOG_* macros.
  /// Thread-safe: one locked write per line.
  static void write(LogLevel level, const std::string& message);

  /// Returns the short tag ("E", "W", ...) for a level.
  static const char* tag(LogLevel level) noexcept;

 private:
  static std::atomic<LogLevel> level_;
};

}  // namespace vanet

#define VANET_LOG_AT(level, expr)                         \
  do {                                                    \
    if (::vanet::Log::enabled(level)) {                   \
      std::ostringstream vanet_log_oss_;                  \
      vanet_log_oss_ << expr;                             \
      ::vanet::Log::write(level, vanet_log_oss_.str());   \
    }                                                     \
  } while (false)

#define LOG_ERROR(expr) VANET_LOG_AT(::vanet::LogLevel::kError, expr)
#define LOG_WARN(expr) VANET_LOG_AT(::vanet::LogLevel::kWarn, expr)
#define LOG_INFO(expr) VANET_LOG_AT(::vanet::LogLevel::kInfo, expr)
#define LOG_DEBUG(expr) VANET_LOG_AT(::vanet::LogLevel::kDebug, expr)
#define LOG_TRACE(expr) VANET_LOG_AT(::vanet::LogLevel::kTrace, expr)
