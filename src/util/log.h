#pragma once

/// \file log.h
/// Minimal leveled logger. Messages are composed with `operator<<` into a
/// per-call stream, so there is zero formatting cost when the level is
/// disabled. Not thread-safe by design: the simulator is single-threaded.

#include <sstream>
#include <string>

namespace vanet {

/// Severity levels, ordered from most to least severe.
enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3, kTrace = 4 };

/// Global logging configuration and sink.
class Log {
 public:
  /// Sets the most verbose level that will be emitted.
  static void setLevel(LogLevel level) noexcept { level_ = level; }
  static LogLevel level() noexcept { return level_; }
  static bool enabled(LogLevel level) noexcept { return level <= level_; }

  /// Emits one formatted line to stderr. Used by the LOG_* macros.
  static void write(LogLevel level, const std::string& message);

  /// Returns the short tag ("E", "W", ...) for a level.
  static const char* tag(LogLevel level) noexcept;

 private:
  static LogLevel level_;
};

}  // namespace vanet

#define VANET_LOG_AT(level, expr)                         \
  do {                                                    \
    if (::vanet::Log::enabled(level)) {                   \
      std::ostringstream vanet_log_oss_;                  \
      vanet_log_oss_ << expr;                             \
      ::vanet::Log::write(level, vanet_log_oss_.str());   \
    }                                                     \
  } while (false)

#define LOG_ERROR(expr) VANET_LOG_AT(::vanet::LogLevel::kError, expr)
#define LOG_WARN(expr) VANET_LOG_AT(::vanet::LogLevel::kWarn, expr)
#define LOG_INFO(expr) VANET_LOG_AT(::vanet::LogLevel::kInfo, expr)
#define LOG_DEBUG(expr) VANET_LOG_AT(::vanet::LogLevel::kDebug, expr)
#define LOG_TRACE(expr) VANET_LOG_AT(::vanet::LogLevel::kTrace, expr)
