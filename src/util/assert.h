#pragma once

/// \file assert.h
/// Precondition / invariant checking macros (C++ Core Guidelines I.5, P.7).
///
/// `VANET_ASSERT` is always active (simulation correctness depends on it and
/// the cost is negligible next to event dispatch); `VANET_DASSERT` compiles
/// away in release builds and may guard hot paths.

#include <cstdio>
#include <cstdlib>

namespace vanet::detail {

[[noreturn]] inline void assertFail(const char* expr, const char* file,
                                    int line, const char* msg) {
  std::fprintf(stderr, "ASSERT FAILED: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg);
  std::abort();
}

}  // namespace vanet::detail

#define VANET_ASSERT(expr, msg)                                     \
  do {                                                              \
    if (!(expr)) {                                                  \
      ::vanet::detail::assertFail(#expr, __FILE__, __LINE__, msg);  \
    }                                                               \
  } while (false)

#ifdef NDEBUG
#define VANET_DASSERT(expr, msg) \
  do {                           \
  } while (false)
#else
#define VANET_DASSERT(expr, msg) VANET_ASSERT(expr, msg)
#endif
