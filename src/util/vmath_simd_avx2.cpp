/// x86-64 AVX2 batch bodies (4 doubles per lane), compiled with -mavx2 via
/// a per-source CMake flag and gated at *runtime* on cpuid by vmath.cpp --
/// the rest of the binary stays baseline x86-64 and still runs on
/// SSE2-only machines. Same element kernels as every other body; -mavx2
/// does not enable FMA and -ffp-contract=off applies to this TU too, so
/// the 4-wide results stay bit-identical to the scalar and SSE2 bodies.

#include "util/vmath_kernels.h"

#if defined(VANET_VMATH_X86)

namespace vanet::vmath::detail {

#if VANET_VMATH_AVX2

bool avx2BodyCompiled() noexcept { return true; }

void vexpAvx2(const double* x, double* out, std::size_t n) noexcept {
  mapBody<Avx2Lane>(x, out, n, ExpOp{});
}
void vlogAvx2(const double* x, double* out, std::size_t n) noexcept {
  mapBody<Avx2Lane>(x, out, n, LogOp{});
}
void vlog10Avx2(const double* x, double* out, std::size_t n) noexcept {
  mapBody<Avx2Lane>(x, out, n, Log10Op{});
}
void vlog1pAvx2(const double* x, double* out, std::size_t n) noexcept {
  mapBody<Avx2Lane>(x, out, n, Log1pOp{});
}
void vpow10dbAvx2(const double* x, double* out, std::size_t n) noexcept {
  mapBody<Avx2Lane>(x, out, n, Pow10DbOp{});
}
void vlinear2dbAvx2(const double* x, double* out, std::size_t n) noexcept {
  mapBody<Avx2Lane>(x, out, n, Linear2DbOp{});
}
void verfcAvx2(const double* x, double* out, std::size_t n) noexcept {
  mapBody<Avx2Lane>(x, out, n, ErfcOp{});
}
void vnormalpairAvx2(const double* u1, const double* u2, double* z0,
                     double* z1, std::size_t n) noexcept {
  normalpairBody<Avx2Lane>(u1, u2, z0, z1, n);
}

#else  // the build system did not apply -mavx2; fall back to the baseline

bool avx2BodyCompiled() noexcept { return false; }

void vexpAvx2(const double* x, double* out, std::size_t n) noexcept {
  vexpSimd(x, out, n);
}
void vlogAvx2(const double* x, double* out, std::size_t n) noexcept {
  vlogSimd(x, out, n);
}
void vlog10Avx2(const double* x, double* out, std::size_t n) noexcept {
  vlog10Simd(x, out, n);
}
void vlog1pAvx2(const double* x, double* out, std::size_t n) noexcept {
  vlog1pSimd(x, out, n);
}
void vpow10dbAvx2(const double* x, double* out, std::size_t n) noexcept {
  vpow10dbSimd(x, out, n);
}
void vlinear2dbAvx2(const double* x, double* out, std::size_t n) noexcept {
  vlinear2dbSimd(x, out, n);
}
void verfcAvx2(const double* x, double* out, std::size_t n) noexcept {
  verfcSimd(x, out, n);
}
void vnormalpairAvx2(const double* u1, const double* u2, double* z0,
                     double* z1, std::size_t n) noexcept {
  vnormalpairSimd(u1, u2, z0, z1, n);
}

#endif  // VANET_VMATH_AVX2

}  // namespace vanet::vmath::detail

#endif  // VANET_VMATH_X86
