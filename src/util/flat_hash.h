#pragma once

/// \file flat_hash.h
/// Minimal open-addressing hash map from a 64-bit key to a value, for the
/// per-link caches on the radio hot path (Gilbert-Elliott chains, c2c
/// shadowing pair constants). Linear probing over a power-of-two index
/// table of entry indices; entries themselves live contiguously in
/// insertion order, so iteration-free lookups touch at most two cache
/// lines. No erase support -- link caches only grow within a round.

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace vanet::util {

/// Hash map keyed by std::uint64_t. Values must be movable. Pointers and
/// references to values stay valid until the map is destroyed or cleared
/// (entries are stored in a std::deque-free vector, but lookups return
/// indices re-resolved per call, so growth is safe for callers holding
/// only the reference returned by the current call).
template <typename Value>
class FlatMap64 {
 public:
  /// Returns the value for `key`, or nullptr when absent.
  Value* find(std::uint64_t key) noexcept {
    if (entries_.empty()) return nullptr;
    const std::size_t mask = index_.size() - 1;
    for (std::size_t probe = mix(key) & mask;; probe = (probe + 1) & mask) {
      const std::int32_t slot = index_[probe];
      if (slot < 0) return nullptr;
      if (entries_[static_cast<std::size_t>(slot)].first == key) {
        return &entries_[static_cast<std::size_t>(slot)].second;
      }
    }
  }

  /// Returns the value for `key`, inserting `Value(args...)` when absent.
  template <typename... Args>
  Value& findOrEmplace(std::uint64_t key, Args&&... args) {
    if (Value* hit = find(key)) return *hit;
    if ((entries_.size() + 1) * 10 >= index_.size() * 7) grow();
    const std::size_t mask = index_.size() - 1;
    std::size_t probe = mix(key) & mask;
    while (index_[probe] >= 0) probe = (probe + 1) & mask;
    index_[probe] = static_cast<std::int32_t>(entries_.size());
    entries_.emplace_back(std::piecewise_construct, std::forward_as_tuple(key),
                          std::forward_as_tuple(std::forward<Args>(args)...));
    return entries_.back().second;
  }

  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }

  void clear() noexcept {
    entries_.clear();
    index_.clear();
  }

 private:
  // splitmix64 finalizer: full-avalanche mix so packed (tx, rx) node pairs
  // spread over the table even when ids are small consecutive integers.
  static std::uint64_t mix(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  void grow() {
    const std::size_t cap = index_.empty() ? 16 : index_.size() * 2;
    index_.assign(cap, -1);
    const std::size_t mask = cap - 1;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      std::size_t probe = mix(entries_[i].first) & mask;
      while (index_[probe] >= 0) probe = (probe + 1) & mask;
      index_[probe] = static_cast<std::int32_t>(i);
    }
  }

  std::vector<std::pair<std::uint64_t, Value>> entries_;
  std::vector<std::int32_t> index_;  // -1 = empty
};

}  // namespace vanet::util
