#pragma once

/// \file flat_hash.h
/// Minimal open-addressing hash map from a 64-bit key to a value, for the
/// per-link caches on the radio hot path (Gilbert-Elliott chains, c2c
/// shadowing pair constants). Linear probing over a power-of-two index
/// table of entry indices; entries themselves live contiguously in
/// insertion order, so iteration-free lookups touch at most two cache
/// lines. Erase uses tombstones in the index table plus swap-pop in the
/// entry array, so the entry storage stays dense and probe chains stay
/// intact; tombstoned cells are recycled by later inserts and dropped
/// wholesale on the next rehash.

#include <cstddef>
#include <cstdint>
#include <tuple>
#include <utility>
#include <vector>

namespace vanet::util {

/// Hash map keyed by std::uint64_t. Values must be movable. Pointers and
/// references to values stay valid until the map is destroyed or cleared
/// (entries are stored in a std::deque-free vector, but lookups return
/// indices re-resolved per call, so growth is safe for callers holding
/// only the reference returned by the current call).
template <typename Value>
class FlatMap64 {
 public:
  /// Returns the value for `key`, or nullptr when absent.
  Value* find(std::uint64_t key) noexcept {
    if (entries_.empty()) return nullptr;
    const std::size_t mask = index_.size() - 1;
    for (std::size_t probe = mix(key) & mask;; probe = (probe + 1) & mask) {
      const std::int32_t slot = index_[probe];
      if (slot == kEmpty) return nullptr;
      if (slot == kTombstone) continue;
      if (entries_[static_cast<std::size_t>(slot)].first == key) {
        return &entries_[static_cast<std::size_t>(slot)].second;
      }
    }
  }

  /// Returns the value for `key`, inserting `Value(args...)` when absent.
  template <typename... Args>
  Value& findOrEmplace(std::uint64_t key, Args&&... args) {
    // Grow on index occupancy (live + tombstones), not entry count, so
    // probe chains stay short even after heavy erase churn.
    if ((used_ + 1) * 10 >= index_.size() * 7) grow();
    const std::size_t mask = index_.size() - 1;
    std::size_t graveyard = index_.size();  // first tombstone on the chain
    std::size_t probe = mix(key) & mask;
    for (;; probe = (probe + 1) & mask) {
      const std::int32_t slot = index_[probe];
      if (slot == kEmpty) break;
      if (slot == kTombstone) {
        if (graveyard == index_.size()) graveyard = probe;
        continue;
      }
      if (entries_[static_cast<std::size_t>(slot)].first == key) {
        return entries_[static_cast<std::size_t>(slot)].second;
      }
    }
    if (graveyard != index_.size()) {
      probe = graveyard;  // recycle the tombstone: the chain stays intact
    } else {
      ++used_;
    }
    index_[probe] = static_cast<std::int32_t>(entries_.size());
    entries_.emplace_back(std::piecewise_construct, std::forward_as_tuple(key),
                          std::forward_as_tuple(std::forward<Args>(args)...));
    return entries_.back().second;
  }

  /// Removes `key`; returns true when it was present. The hole in the
  /// entry array is back-filled by the last entry (swap-pop), so erase
  /// invalidates pointers to the moved value and reorders iteration;
  /// the index cell becomes a tombstone so other probe chains survive.
  bool erase(std::uint64_t key) noexcept {
    if (entries_.empty()) return false;
    const std::size_t mask = index_.size() - 1;
    for (std::size_t probe = mix(key) & mask;; probe = (probe + 1) & mask) {
      const std::int32_t slot = index_[probe];
      if (slot == kEmpty) return false;
      if (slot == kTombstone) continue;
      const std::size_t hole = static_cast<std::size_t>(slot);
      if (entries_[hole].first != key) continue;
      index_[probe] = kTombstone;
      const std::size_t last = entries_.size() - 1;
      if (hole != last) {
        // Re-point the moved entry's index cell before the swap-pop.
        std::size_t p = mix(entries_[last].first) & mask;
        while (index_[p] != static_cast<std::int32_t>(last)) {
          p = (p + 1) & mask;
        }
        index_[p] = static_cast<std::int32_t>(hole);
        entries_[hole] = std::move(entries_[last]);
      }
      entries_.pop_back();
      return true;
    }
  }

  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }

  /// Iteration over (key, value) pairs in storage order. Insertion order
  /// until the first erase; erase swap-pops, which reorders.
  auto begin() noexcept { return entries_.begin(); }
  auto end() noexcept { return entries_.end(); }
  auto begin() const noexcept { return entries_.begin(); }
  auto end() const noexcept { return entries_.end(); }

  void clear() noexcept {
    entries_.clear();
    index_.clear();
    used_ = 0;
  }

 private:
  // splitmix64 finalizer: full-avalanche mix so packed (tx, rx) node pairs
  // spread over the table even when ids are small consecutive integers.
  static std::uint64_t mix(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  void grow() {
    const std::size_t cap = index_.empty() ? 16 : index_.size() * 2;
    index_.assign(cap, kEmpty);  // rehash from scratch: tombstones vanish
    const std::size_t mask = cap - 1;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      std::size_t probe = mix(entries_[i].first) & mask;
      while (index_[probe] != kEmpty) probe = (probe + 1) & mask;
      index_[probe] = static_cast<std::int32_t>(i);
    }
    used_ = entries_.size();
  }

  static constexpr std::int32_t kEmpty = -1;
  static constexpr std::int32_t kTombstone = -2;

  std::vector<std::pair<std::uint64_t, Value>> entries_;
  std::vector<std::int32_t> index_;  // entry index, kEmpty or kTombstone
  std::size_t used_ = 0;             // occupied index cells, live + tombstones
};

}  // namespace vanet::util
