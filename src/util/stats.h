#pragma once

/// \file stats.h
/// Streaming statistics used by the trace/analysis layers: Welford running
/// moments, fixed-bin histograms, and per-index series accumulators (one
/// Welford cell per packet number, used for the paper's figures).

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace vanet {

/// Numerically stable running mean / variance (Welford's algorithm).
class RunningStats {
 public:
  /// The full internal merge-state, exposed for serialization: a
  /// round-trip through State reconstructs a bit-identical accumulator,
  /// so merged results computed from deserialized partials match the
  /// in-process computation byte for byte.
  struct State {
    std::size_t count = 0;
    double mean = 0.0;
    double m2 = 0.0;
    double sum = 0.0;
    double min = 0.0;  ///< meaningful only when count > 0
    double max = 0.0;  ///< meaningful only when count > 0
  };

  void add(double x) noexcept;

  /// Merges another accumulator (parallel-combining form of Welford).
  void merge(const RunningStats& other) noexcept;

  State state() const noexcept;
  static RunningStats fromState(const State& state) noexcept;

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return count_ > 0 ? mean_ : 0.0; }

  /// Unbiased sample variance; 0 when fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return count_ > 0 ? min_ : 0.0; }
  double max() const noexcept { return count_ > 0 ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

  /// Standard error of the mean; 0 when fewer than two samples.
  double stderrOfMean() const noexcept;

  /// Half-width of the 95 % confidence interval of the mean (Student's t
  /// with n-1 degrees of freedom, interpolated); 0 when n < 2.
  double confidence95() const noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-width-bin histogram over [lo, hi); out-of-range samples
/// (including +-infinity) clamp to the first/last bin so mass is never
/// lost. NaN samples are dropped entirely -- they have no position, so
/// they count toward neither a bin nor total().
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  std::size_t bins() const noexcept { return counts_.size(); }
  std::uint64_t binCount(std::size_t bin) const;
  double binLow(std::size_t bin) const;
  double binHigh(std::size_t bin) const;
  std::uint64_t total() const noexcept { return total_; }

  /// Approximate quantile (q in [0,1]) by linear walk over bins. Empty
  /// bins carry no mass: the result always lies inside a bin that
  /// recorded samples (the range's low edge when the histogram is empty).
  double quantile(double q) const noexcept;

  /// Multi-line ASCII rendering, for debugging and example output.
  std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  double binWidth_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// A vector of RunningStats cells indexed by an integer key (for example
/// packet sequence number); grows on demand. Produces the mean series used
/// to plot reception probability versus packet number.
class SeriesAccumulator {
 public:
  /// Records `value` for index `i`.
  void add(std::size_t i, double value);

  /// Merges another accumulator cell-wise (parallel-combining form): cell
  /// i of the result carries every sample either side recorded for index
  /// i. The series grows to the longer of the two; merging with an empty
  /// accumulator is the identity.
  void merge(const SeriesAccumulator& other);

  std::size_t size() const noexcept { return cells_.size(); }
  const RunningStats& at(std::size_t i) const;

  /// Mean per index; indexes never touched report 0 with count 0.
  std::vector<double> means() const;

  /// Moving average of the mean series with the given half-window
  /// (window = 2*halfWindow+1, truncated at the edges).
  std::vector<double> smoothedMeans(std::size_t halfWindow) const;

  /// Serialization hooks: the raw cell vector out, and a bit-identical
  /// accumulator back from one.
  const std::vector<RunningStats>& cells() const noexcept { return cells_; }
  static SeriesAccumulator fromCells(std::vector<RunningStats> cells);

 private:
  std::vector<RunningStats> cells_;
};

}  // namespace vanet
