#include "util/flags.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "util/log.h"
#include "util/text.h"

namespace vanet {
namespace {

[[noreturn]] void badValue(const std::string& name, const std::string& value,
                           const char* expected) {
  std::fprintf(stderr, "flag --%s: cannot parse '%s' as %s\n", name.c_str(),
               value.c_str(), expected);
  std::exit(2);
}

/// `--flag=` (an explicitly empty value) is rejected by every typed
/// parser up front: the std::sto* family throws on it anyway, but
/// string inspection such as value.front() must never run on an empty
/// value, and "absent" (fallback) is the wrong reading of an empty
/// token the user typed.
void rejectEmpty(const std::string& name, const std::string& value,
                 const char* expected) {
  if (value.empty()) badValue(name, value, expected);
}

}  // namespace

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // `--name value` unless the next token is itself a flag (then bare bool).
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

bool Flags::has(const std::string& name) const { return values_.count(name) > 0; }

int Flags::getInt(const std::string& name, int fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  rejectEmpty(name, it->second, "int");
  try {
    std::size_t pos = 0;
    const int v = std::stoi(it->second, &pos);
    if (pos != it->second.size()) badValue(name, it->second, "int");
    return v;
  } catch (const std::exception&) {
    badValue(name, it->second, "int");
  }
}

double Flags::getDouble(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  rejectEmpty(name, it->second, "double");
  try {
    std::size_t pos = 0;
    const double v = std::stod(it->second, &pos);
    if (pos != it->second.size()) badValue(name, it->second, "double");
    return v;
  } catch (const std::exception&) {
    badValue(name, it->second, "double");
  }
}

std::uint64_t Flags::getUInt64(const std::string& name,
                               std::uint64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  // The front() sign check below needs a non-empty token; reject
  // `--seed=` before any inspection.
  rejectEmpty(name, it->second, "unsigned integer");
  try {
    std::size_t pos = 0;
    const std::uint64_t v = std::stoull(it->second, &pos);
    if (pos != it->second.size() || it->second.front() == '-') {
      badValue(name, it->second, "unsigned integer");
    }
    return v;
  } catch (const std::exception&) {
    badValue(name, it->second, "unsigned integer");
  }
}

ShardSpec Flags::getShard(const std::string& name, ShardSpec fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  rejectEmpty(name, v, "shard spec i/N");
  // A bare `--shard` parses as "true": leave it to getBool() callers that
  // use the same name as a mode switch.
  if (v == "true") return fallback;
  const auto slash = v.find('/');
  if (slash == std::string::npos) badValue(name, v, "shard spec i/N");
  try {
    std::size_t posIndex = 0;
    std::size_t posCount = 0;
    ShardSpec shard;
    shard.index = std::stoi(v.substr(0, slash), &posIndex);
    const std::string countText = v.substr(slash + 1);
    shard.count = std::stoi(countText, &posCount);
    if (posIndex != slash || posCount != countText.size() ||
        shard.count < 1 || shard.index < 0 || shard.index >= shard.count) {
      badValue(name, v, "shard spec i/N with 0 <= i < N");
    }
    return shard;
  } catch (const std::exception&) {
    badValue(name, v, "shard spec i/N");
  }
}

std::string Flags::getString(const std::string& name, std::string fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? std::move(fallback) : it->second;
}

void Flags::allowOnly(const std::vector<std::string>& known) const {
  for (const auto& [name, value] : values_) {
    if (std::find(known.begin(), known.end(), name) != known.end()) continue;
    std::string message = "unknown flag --" + name;
    const std::string hint = util::nearestName(name, known);
    if (!hint.empty()) message += " (did you mean --" + hint + "?)";
    std::fprintf(stderr, "%s\n", message.c_str());
    std::exit(2);
  }
}

std::vector<std::string> campaignFlagNames() {
  return {"seed",        "threads",      "round-threads",    "shard",
          "partial-out", "partial-format", "checkpoint",     "resume",
          "halt-after-waves", "streaming", "target-ci",      "min-reps",
          "max-reps",    "target-metric", "progress",        "log-level"};
}

bool Flags::getBool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  rejectEmpty(name, v, "bool");
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  badValue(name, v, "bool");
}

CampaignRunFlags campaignRunFlags(const Flags& flags,
                                  std::uint64_t defaultSeed) {
  CampaignRunFlags run;
  run.seed = flags.getUInt64("seed", defaultSeed);
  run.threads = flags.getInt("threads", 0);
  run.roundThreads = flags.getInt("round-threads", 1);
  run.shard = flags.getShard("shard");
  run.partialOut = flags.getString("partial-out", "");
  run.partialFormat = flags.getString("partial-format", "");
  if (!run.partialFormat.empty() && run.partialFormat != "bin" &&
      run.partialFormat != "json") {
    badValue("partial-format", run.partialFormat, "'bin' or 'json'");
  }
  run.checkpoint = flags.getString("checkpoint", "");
  run.resume = flags.getBool("resume", false);
  if (run.resume && run.checkpoint.empty()) {
    std::fprintf(stderr, "flag --resume needs --checkpoint=<path>\n");
    std::exit(2);
  }
  run.haltAfterWaves = flags.getInt("halt-after-waves", -1);
  run.streaming = flags.getBool("streaming", false);
  run.targetCi = flags.getDouble("target-ci", 0.0);
  run.minReps = flags.getInt("min-reps", 0);
  run.maxReps = flags.getInt("max-reps", 0);
  run.targetMetric = flags.getString("target-metric", "");
  run.progress = flags.getBool("progress", false);
  if (flags.has("log-level")) {
    const std::string level = flags.getString("log-level", "");
    if (!Log::setLevelFromName(level)) {
      badValue("log-level", level, "level name (error|warn|info|debug|trace)");
    }
  }
  return run;
}

}  // namespace vanet
