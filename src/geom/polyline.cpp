#include "geom/polyline.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/assert.h"

namespace vanet::geom {

Polyline::Polyline(std::vector<Vec2> vertices) : vertices_(std::move(vertices)) {
  VANET_ASSERT(vertices_.size() >= 2, "polyline needs at least two vertices");
  cumulative_.reserve(vertices_.size());
  cumulative_.push_back(0.0);
  for (std::size_t i = 1; i < vertices_.size(); ++i) {
    const double d = distance(vertices_[i - 1], vertices_[i]);
    VANET_ASSERT(d > 0.0, "polyline has a zero-length segment");
    cumulative_.push_back(cumulative_.back() + d);
  }
  // Build the project() scan table. Two compactions keep the scan short
  // for mobility-subdivided roads (subdivide() chops every street into
  // maxSegment pieces, turning a 4-street loop into hundreds of slivers):
  //
  //  1. Exactly-collinear runs are merged back into one table entry. The
  //     closest point on a straight run is the closest point on its span,
  //     and since subdivision interpolates along axis-aligned streets the
  //     sliver deltas match the span direction *exactly* (one coordinate
  //     is bitwise constant), so the merge fires on every road we build.
  //     The run is parameterised by its cumulative arc interval, which is
  //     what pointAt() uses, so projected arcs stay consistent with the
  //     rest of the class (they may differ from the unmerged scan in the
  //     last ulp -- a sub-micrometre shift, far below the shadowing
  //     field's 3 m grid).
  //  2. Entries bitwise-identical to an earlier one are dropped: with
  //     project()'s strict `<` the later twin can never become the
  //     argmin. Multi-lap paths (the urban loop runs the block twice)
  //     retrace the same streets, so after the collinear merge the whole
  //     second lap dedups away.
  const std::size_t lastVertex = vertices_.size() - 1;
  std::size_t i = 0;
  while (i < lastVertex) {
    const Vec2 a = vertices_[i];
    std::size_t j = i + 1;
    Vec2 span = vertices_[j] - a;
    while (j < lastVertex) {
      const Vec2 next = vertices_[j + 1] - vertices_[j];
      const bool collinear = span.x * next.y - span.y * next.x == 0.0 &&
                             span.x * next.x + span.y * next.y > 0.0;
      if (!collinear) break;
      ++j;
      span = vertices_[j] - a;
    }
    bool duplicate = false;
    for (std::size_t k = 0; k < segAx_.size(); ++k) {
      if (segAx_[k] == a.x && segAy_[k] == a.y && segDx_[k] == span.x &&
          segDy_[k] == span.y) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) {
      segAx_.push_back(a.x);
      segAy_.push_back(a.y);
      segDx_.push_back(span.x);
      segDy_.push_back(span.y);
      segLen2_.push_back(span.normSquared());
      segArc0_.push_back(cumulative_[i]);
      segArcLen_.push_back(cumulative_[j] - cumulative_[i]);
    }
    i = j;
  }
}

double Polyline::arcAtVertex(std::size_t i) const {
  VANET_ASSERT(i < vertices_.size(), "vertex index out of range");
  return cumulative_[i];
}

std::size_t Polyline::segmentIndex(double s) const noexcept {
  // upper_bound over cumulative arc lengths; clamp to the last segment.
  const auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), s);
  const auto idx = static_cast<std::size_t>(it - cumulative_.begin());
  if (idx == 0) return 0;
  return std::min(idx - 1, vertices_.size() - 2);
}

Vec2 Polyline::pointAt(double s) const noexcept {
  const double clamped = std::clamp(s, 0.0, length());
  const std::size_t seg = segmentIndex(clamped);
  const double segStart = cumulative_[seg];
  const double segLen = cumulative_[seg + 1] - segStart;
  const double t = segLen > 0.0 ? (clamped - segStart) / segLen : 0.0;
  return lerp(vertices_[seg], vertices_[seg + 1], t);
}

Vec2 Polyline::pointAt(double s, std::size_t& hint) const noexcept {
  const double clamped = std::clamp(s, 0.0, length());
  // The hint names the containing segment iff cumulative_[h] <= s <
  // cumulative_[h+1] -- exactly the segment upper_bound would select, so
  // hit or miss the interpolation below sees the same index and bits.
  std::size_t seg;
  if (hint + 1 < cumulative_.size() && cumulative_[hint] <= clamped &&
      clamped < cumulative_[hint + 1]) {
    seg = hint;
  } else {
    seg = segmentIndex(clamped);
    hint = seg;
  }
  const double segStart = cumulative_[seg];
  const double segLen = cumulative_[seg + 1] - segStart;
  const double t = segLen > 0.0 ? (clamped - segStart) / segLen : 0.0;
  return lerp(vertices_[seg], vertices_[seg + 1], t);
}

Vec2 Polyline::pointAtWrapped(double s) const noexcept {
  const double len = length();
  double wrapped = std::fmod(s, len);
  if (wrapped < 0.0) wrapped += len;
  return pointAt(wrapped);
}

Vec2 Polyline::tangentAt(double s) const noexcept {
  const double clamped = std::clamp(s, 0.0, length());
  const std::size_t seg = segmentIndex(clamped);
  return (vertices_[seg + 1] - vertices_[seg]).normalized();
}

double Polyline::project(Vec2 p) const noexcept {
  // Squared distances order identically to distances (sqrt is monotone),
  // so the scan never pays a per-segment sqrt; `t` keeps the exact
  // division the scalar formulation used.
  std::size_t bestSeg = 0;
  double bestT = 0.0;
  double bestDistSq = std::numeric_limits<double>::infinity();
  const std::size_t segments = segLen2_.size();
  for (std::size_t seg = 0; seg < segments; ++seg) {
    const double px = p.x - segAx_[seg];
    const double py = p.y - segAy_[seg];
    const double t = std::clamp(
        (px * segDx_[seg] + py * segDy_[seg]) / segLen2_[seg], 0.0, 1.0);
    const double qx = px - t * segDx_[seg];
    const double qy = py - t * segDy_[seg];
    const double dSq = qx * qx + qy * qy;
    if (dSq < bestDistSq) {
      bestDistSq = dSq;
      bestSeg = seg;
      bestT = t;
    }
  }
  return segArc0_[bestSeg] + bestT * segArcLen_[bestSeg];
}

Polyline makeRectangleLoop(double width, double height) {
  VANET_ASSERT(width > 0.0 && height > 0.0, "rectangle must be non-degenerate");
  return Polyline{{{0.0, 0.0},
                   {width, 0.0},
                   {width, height},
                   {0.0, height},
                   {0.0, 0.0}}};
}

}  // namespace vanet::geom
