#include "geom/polyline.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/assert.h"

namespace vanet::geom {

Polyline::Polyline(std::vector<Vec2> vertices) : vertices_(std::move(vertices)) {
  VANET_ASSERT(vertices_.size() >= 2, "polyline needs at least two vertices");
  cumulative_.reserve(vertices_.size());
  cumulative_.push_back(0.0);
  for (std::size_t i = 1; i < vertices_.size(); ++i) {
    const double d = distance(vertices_[i - 1], vertices_[i]);
    VANET_ASSERT(d > 0.0, "polyline has a zero-length segment");
    cumulative_.push_back(cumulative_.back() + d);
  }
}

double Polyline::arcAtVertex(std::size_t i) const {
  VANET_ASSERT(i < vertices_.size(), "vertex index out of range");
  return cumulative_[i];
}

std::size_t Polyline::segmentIndex(double s) const noexcept {
  // upper_bound over cumulative arc lengths; clamp to the last segment.
  const auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), s);
  const auto idx = static_cast<std::size_t>(it - cumulative_.begin());
  if (idx == 0) return 0;
  return std::min(idx - 1, vertices_.size() - 2);
}

Vec2 Polyline::pointAt(double s) const noexcept {
  const double clamped = std::clamp(s, 0.0, length());
  const std::size_t seg = segmentIndex(clamped);
  const double segStart = cumulative_[seg];
  const double segLen = cumulative_[seg + 1] - segStart;
  const double t = segLen > 0.0 ? (clamped - segStart) / segLen : 0.0;
  return lerp(vertices_[seg], vertices_[seg + 1], t);
}

Vec2 Polyline::pointAtWrapped(double s) const noexcept {
  const double len = length();
  double wrapped = std::fmod(s, len);
  if (wrapped < 0.0) wrapped += len;
  return pointAt(wrapped);
}

Vec2 Polyline::tangentAt(double s) const noexcept {
  const double clamped = std::clamp(s, 0.0, length());
  const std::size_t seg = segmentIndex(clamped);
  return (vertices_[seg + 1] - vertices_[seg]).normalized();
}

double Polyline::project(Vec2 p) const noexcept {
  double bestArc = 0.0;
  double bestDist = std::numeric_limits<double>::infinity();
  for (std::size_t seg = 0; seg + 1 < vertices_.size(); ++seg) {
    const Vec2 a = vertices_[seg];
    const Vec2 b = vertices_[seg + 1];
    const Vec2 ab = b - a;
    const double t =
        std::clamp((p - a).dot(ab) / ab.normSquared(), 0.0, 1.0);
    const Vec2 q = lerp(a, b, t);
    const double d = distance(p, q);
    if (d < bestDist) {
      bestDist = d;
      bestArc = cumulative_[seg] + t * (cumulative_[seg + 1] - cumulative_[seg]);
    }
  }
  return bestArc;
}

Polyline makeRectangleLoop(double width, double height) {
  VANET_ASSERT(width > 0.0 && height > 0.0, "rectangle must be non-degenerate");
  return Polyline{{{0.0, 0.0},
                   {width, 0.0},
                   {width, height},
                   {0.0, height},
                   {0.0, 0.0}}};
}

}  // namespace vanet::geom
