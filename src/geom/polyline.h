#pragma once

/// \file polyline.h
/// Piecewise-linear path with arc-length parameterisation. Roads and laps
/// are polylines; mobility models map time -> arc length -> position.

#include <cstddef>
#include <vector>

#include "geom/vec2.h"

namespace vanet::geom {

/// An ordered sequence of at least two vertices forming a path.
///
/// Arc length `s` runs from 0 at the first vertex to length() at the last.
/// For closed paths (laps) construct with the first vertex repeated at the
/// end, and use pointAtWrapped().
class Polyline {
 public:
  /// Requires at least two vertices; consecutive duplicates are rejected.
  explicit Polyline(std::vector<Vec2> vertices);

  const std::vector<Vec2>& vertices() const noexcept { return vertices_; }
  std::size_t segmentCount() const noexcept { return vertices_.size() - 1; }

  /// Total arc length, metres.
  double length() const noexcept { return cumulative_.back(); }

  /// Arc length from the start to vertex `i`.
  double arcAtVertex(std::size_t i) const;

  /// Position at arc length `s`, clamped to [0, length()].
  Vec2 pointAt(double s) const noexcept;

  /// Hinted variant for callers whose queries have locality (mobility
  /// models advancing along the path). `hint` is caller-owned scratch:
  /// when it still names the containing segment the binary search is
  /// skipped; the interpolation is bit-identical either way.
  Vec2 pointAt(double s, std::size_t& hint) const noexcept;

  /// Position at arc length `s` modulo length() (for closed laps).
  Vec2 pointAtWrapped(double s) const noexcept;

  /// Unit tangent of the segment containing arc length `s` (clamped).
  Vec2 tangentAt(double s) const noexcept;

  /// Arc length of the point on the path closest to `p`. Linear scan over
  /// a precomputed struct-of-arrays segment table (start, direction,
  /// len^2, cumulative arc) comparing *squared* distances. The table is
  /// compacted at construction -- exactly-collinear runs merge into one
  /// entry and repeated laps dedup away -- so mobility-subdivided roads
  /// (hundreds of slivers) scan only their handful of distinct streets;
  /// this is the single hottest call of the radio hot path.
  double project(Vec2 p) const noexcept;

 private:
  /// Index of the segment containing arc length `s` (clamped).
  std::size_t segmentIndex(double s) const noexcept;

  std::vector<Vec2> vertices_;
  std::vector<double> cumulative_;  // cumulative_[i] = arc length at vertex i

  // Parallel per-segment arrays for project(), filled once at
  // construction: run start, delta across the run, its squared norm, and
  // the run's arc interval. Exactly-collinear runs are merged and exact
  // duplicates of an earlier entry (multi-lap paths retrace the same
  // streets) are dropped -- see the constructor for why both compactions
  // preserve the projection.
  std::vector<double> segAx_, segAy_;
  std::vector<double> segDx_, segDy_;
  std::vector<double> segLen2_;
  std::vector<double> segArc0_, segArcLen_;
};

/// Builds an axis-aligned rectangular lap: corners (0,0), (w,0), (w,h),
/// (0,h), closed back to (0,0). Used by the urban-loop scenario.
Polyline makeRectangleLoop(double width, double height);

}  // namespace vanet::geom
