#pragma once

/// \file vec2.h
/// Two-dimensional vector used for node positions (metres).

#include <cmath>
#include <ostream>

namespace vanet::geom {

/// Cartesian point / vector in metres.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  friend constexpr Vec2 operator+(Vec2 a, Vec2 b) noexcept {
    return {a.x + b.x, a.y + b.y};
  }
  friend constexpr Vec2 operator-(Vec2 a, Vec2 b) noexcept {
    return {a.x - b.x, a.y - b.y};
  }
  friend constexpr Vec2 operator*(Vec2 a, double k) noexcept {
    return {a.x * k, a.y * k};
  }
  friend constexpr Vec2 operator*(double k, Vec2 a) noexcept { return a * k; }
  friend constexpr Vec2 operator/(Vec2 a, double k) noexcept {
    return {a.x / k, a.y / k};
  }
  constexpr Vec2& operator+=(Vec2 other) noexcept {
    x += other.x;
    y += other.y;
    return *this;
  }
  friend constexpr bool operator==(Vec2, Vec2) noexcept = default;

  constexpr double dot(Vec2 other) const noexcept { return x * other.x + y * other.y; }
  /// sqrt of the squared norm, not std::hypot: positions are metres (no
  /// overflow/underflow concern) and sqrt vectorizes while hypot is a
  /// ~40 ns libm call on the distance hot path.
  double norm() const noexcept { return std::sqrt(x * x + y * y); }
  constexpr double normSquared() const noexcept { return x * x + y * y; }

  /// Unit vector in the same direction; the zero vector maps to itself.
  Vec2 normalized() const noexcept {
    const double n = norm();
    return n > 0.0 ? Vec2{x / n, y / n} : Vec2{};
  }

  friend std::ostream& operator<<(std::ostream& os, Vec2 v) {
    return os << "(" << v.x << ", " << v.y << ")";
  }
};

/// Euclidean distance between two points, metres.
inline double distance(Vec2 a, Vec2 b) noexcept { return (a - b).norm(); }

/// Linear interpolation: t=0 -> a, t=1 -> b.
constexpr Vec2 lerp(Vec2 a, Vec2 b, double t) noexcept { return a + (b - a) * t; }

}  // namespace vanet::geom
