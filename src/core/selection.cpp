#include "core/selection.h"

#include <algorithm>

#include "core/cooperator_table.h"

namespace vanet::carq {
namespace {

std::vector<NodeId> keepKnown(const std::vector<NodeId>& current,
                              const PeerMap& peers) {
  std::vector<NodeId> out;
  out.reserve(current.size());
  for (const NodeId id : current) {
    if (peers.count(id) > 0) out.push_back(id);
  }
  return out;
}

}  // namespace

std::vector<NodeId> selectCooperators(SelectionPolicy policy,
                                      const PeerMap& peers,
                                      const std::vector<NodeId>& current,
                                      int maxCooperators, Rng& rng) {
  std::vector<NodeId> known = keepKnown(current, peers);
  const auto cap = static_cast<std::size_t>(std::max(0, maxCooperators));
  switch (policy) {
    case SelectionPolicy::kAllOneHop:
      return known;  // unbounded, first-heard order (paper behaviour)
    case SelectionPolicy::kBestRssi: {
      std::stable_sort(known.begin(), known.end(),
                       [&peers](NodeId a, NodeId b) {
                         return peers.at(a).emaRssiDbm > peers.at(b).emaRssiDbm;
                       });
      if (known.size() > cap) known.resize(cap);
      return known;
    }
    case SelectionPolicy::kRandomK: {
      // Fisher-Yates prefix shuffle, then truncate.
      for (std::size_t i = 0; i + 1 < known.size(); ++i) {
        const auto j = static_cast<std::size_t>(
            rng.uniformInt(static_cast<int>(i), static_cast<int>(known.size()) - 1));
        std::swap(known[i], known[j]);
      }
      if (known.size() > cap) known.resize(cap);
      return known;
    }
  }
  return known;
}

}  // namespace vanet::carq
