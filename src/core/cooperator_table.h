#pragma once

/// \file cooperator_table.h
/// Cooperator bookkeeping driven by HELLO messages (paper §3.2).
///
/// Semantics, following the paper exactly:
///  * Hearing a HELLO from x makes x a cooperator of mine (subject to the
///    selection policy): x goes into *my* ordered cooperator list, which I
///    announce in my own HELLOs.
///  * My position in *x's* announced list is the backoff order I must use
///    when answering x's REQUESTs; if I am absent from it, x has not asked
///    me to cooperate and I must not buffer or respond for x.

#include <map>
#include <optional>
#include <vector>

#include "core/config.h"
#include "sim/time.h"
#include "util/rng.h"
#include "util/types.h"

namespace vanet::carq {

/// Link-quality and announcement state for one heard neighbour.
struct PeerInfo {
  double emaRssiDbm = -100.0;       ///< smoothed HELLO receive power
  int helloCount = 0;
  sim::SimTime lastHeard{};
  std::vector<NodeId> announced;    ///< the peer's own cooperator list
};

/// Per-node cooperator state machine (pure bookkeeping, no I/O).
class CooperatorTable {
 public:
  explicit CooperatorTable(NodeId self) : self_(self) {}

  /// Processes a received HELLO. Returns true when the sender was newly
  /// added to my cooperator list.
  bool onHello(NodeId sender, const std::vector<NodeId>& senderCooperators,
               double rssiDbm, sim::SimTime now);

  /// My ordered cooperator list (the order assigns response backoffs).
  /// This is exactly what my HELLOs announce.
  const std::vector<NodeId>& myCooperators() const noexcept {
    return cooperators_;
  }

  /// My backoff order when answering `requester`, i.e. my index in the
  /// requester's announced list; nullopt when I am not its cooperator.
  std::optional<int> myOrderFor(NodeId requester) const;

  /// True when `other` announced me as one of its cooperators (then I must
  /// buffer packets addressed to `other`).
  bool considersMeCooperator(NodeId other) const;

  /// Re-derives my announced list according to the selection policy.
  /// kAllOneHop keeps first-heard order (the paper's behaviour).
  void applySelection(SelectionPolicy policy, int maxCooperators, Rng& rng);

  const std::map<NodeId, PeerInfo>& peers() const noexcept { return peers_; }

 private:
  NodeId self_;
  std::vector<NodeId> cooperators_;  // ordered; announced in HELLOs
  std::map<NodeId, PeerInfo> peers_;
};

}  // namespace vanet::carq
