#pragma once

/// \file cooperator_table.h
/// Cooperator bookkeeping driven by HELLO messages (paper §3.2).
///
/// Semantics, following the paper exactly:
///  * Hearing a HELLO from x makes x a cooperator of mine (subject to the
///    selection policy): x goes into *my* ordered cooperator list, which I
///    announce in my own HELLOs.
///  * My position in *x's* announced list is the backoff order I must use
///    when answering x's REQUESTs; if I am absent from it, x has not asked
///    me to cooperate and I must not buffer or respond for x.

#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "core/config.h"
#include "sim/time.h"
#include "util/rng.h"
#include "util/types.h"

namespace vanet::carq {

/// Link-quality and announcement state for one heard neighbour.
struct PeerInfo {
  double emaRssiDbm = -100.0;       ///< smoothed HELLO receive power
  int helloCount = 0;
  sim::SimTime lastHeard{};
  std::vector<NodeId> announced;    ///< the peer's own cooperator list
};

/// Flat sorted-vector map from node id to PeerInfo.
///
/// Peer tables are small (one-hop neighbourhood) but lookup-heavy -- every
/// REQUEST consults the requester's announced list, every HELLO updates
/// the sender's entry -- so a contiguous binary-searched vector replaces
/// the node-based std::map: no per-peer allocation, no pointer chasing,
/// and iteration (selection policies) walks cache lines in id order.
class PeerMap {
 public:
  using value_type = std::pair<NodeId, PeerInfo>;
  using const_iterator = std::vector<value_type>::const_iterator;

  /// Returns the entry for `id`, inserting a default PeerInfo at its
  /// sorted position when absent (std::map::operator[] semantics).
  PeerInfo& operator[](NodeId id);

  /// Returns the entry for `id`, or nullptr when absent.
  const PeerInfo* find(NodeId id) const noexcept;

  /// Returns the entry for `id`; asserts that it exists.
  const PeerInfo& at(NodeId id) const;

  std::size_t count(NodeId id) const noexcept {
    return find(id) != nullptr ? 1 : 0;
  }
  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }
  const_iterator begin() const noexcept { return entries_.begin(); }
  const_iterator end() const noexcept { return entries_.end(); }

 private:
  std::vector<value_type> entries_;  // sorted by node id
};

/// Per-node cooperator state machine (pure bookkeeping, no I/O).
class CooperatorTable {
 public:
  explicit CooperatorTable(NodeId self) : self_(self) {}

  /// Processes a received HELLO. Returns true when the sender was newly
  /// added to my cooperator list.
  bool onHello(NodeId sender, const std::vector<NodeId>& senderCooperators,
               double rssiDbm, sim::SimTime now);

  /// My ordered cooperator list (the order assigns response backoffs).
  /// This is exactly what my HELLOs announce.
  const std::vector<NodeId>& myCooperators() const noexcept {
    return cooperators_;
  }

  /// My backoff order when answering `requester`, i.e. my index in the
  /// requester's announced list; nullopt when I am not its cooperator.
  std::optional<int> myOrderFor(NodeId requester) const;

  /// True when `other` announced me as one of its cooperators (then I must
  /// buffer packets addressed to `other`).
  bool considersMeCooperator(NodeId other) const;

  /// Re-derives my announced list according to the selection policy.
  /// kAllOneHop keeps first-heard order (the paper's behaviour).
  void applySelection(SelectionPolicy policy, int maxCooperators, Rng& rng);

  const PeerMap& peers() const noexcept { return peers_; }

 private:
  NodeId self_;
  std::vector<NodeId> cooperators_;  // ordered; announced in HELLOs
  PeerMap peers_;
};

}  // namespace vanet::carq
