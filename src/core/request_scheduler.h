#pragma once

/// \file request_scheduler.h
/// Walks the missing-packet list the way the paper describes (§3.3): one
/// REQUEST per missing packet, cycling back to the start of the updated
/// (shorter) list when the end is reached, until the list empties. Batched
/// mode packs up to maxBatchSeqs per REQUEST (the §3.3 optimisation).

#include <deque>
#include <optional>
#include <vector>

#include "core/config.h"
#include "util/types.h"

namespace vanet::carq {

/// Pure cursor over the missing list; the agent owns all timing.
class RequestScheduler {
 public:
  RequestScheduler(RequestMode mode, int maxBatchSeqs);

  /// Installs a fresh missing list (starts a new walk). Clears history.
  void loadMissing(std::vector<SeqNo> missing);

  /// Packets still missing.
  std::size_t pendingCount() const noexcept { return pending_.size(); }
  bool empty() const noexcept { return pending_.empty(); }

  /// Content of the next REQUEST to broadcast. `wrapped` is true when this
  /// call restarted from the head of the list (a full cycle completed).
  /// Returns nullopt when nothing is missing.
  struct NextRequest {
    std::vector<SeqNo> seqs;
    bool wrapped = false;
  };
  std::optional<NextRequest> next();

  /// Removes a recovered packet wherever the cursor is.
  void markRecovered(SeqNo seq);

  /// Number of packets recovered since the last wrap (used by the agent to
  /// decide whether a completed cycle was productive).
  int recoveredSinceWrap() const noexcept { return recoveredSinceWrap_; }

  const std::deque<SeqNo>& pending() const noexcept { return pending_; }

 private:
  RequestMode mode_;
  int maxBatchSeqs_;
  std::deque<SeqNo> pending_;
  std::size_t cursor_ = 0;
  int recoveredSinceWrap_ = 0;
};

}  // namespace vanet::carq
