#pragma once

/// \file carq_agent.h
/// The Cooperative ARQ agent running on every car (the paper's
/// contribution, §3). It owns the three-phase state machine:
///
///   Idle ──first AP packet──▶ Reception ──5 s silence──▶ Cooperative-ARQ
///     ▲                                                        │
///     └──────────────── new AP packet ◀───────────────────────┘
///
/// During Reception it buffers overheard packets for platoon members that
/// announced it as a cooperator (HELLO exchange). In Cooperative-ARQ it
/// cycles REQUESTs over its missing list and answers other cars' REQUESTs
/// with an ordered fixed backoff, suppressing its response when a
/// lower-order cooperator is overheard sending the same packet first.

#include <cstdint>
#include <functional>
#include <map>

#include "core/config.h"
#include "core/cooperator_table.h"
#include "core/packet_store.h"
#include "core/request_scheduler.h"
#include "core/soft_combiner.h"
#include "net/node.h"

namespace vanet::carq {

/// Protocol phases (paper §3.1–§3.3; association is folded into the first
/// packet reception exactly like the prototype).
enum class Phase { kIdle, kReception, kCoopArq };

/// Human-readable phase name.
const char* phaseName(Phase phase) noexcept;

/// Observation points used by the trace/analysis layers and tests. All
/// callbacks are optional.
struct CarqHooks {
  /// Any decoded AP data frame, own flow or not (builds the Figures 3-5
  /// reception matrix).
  std::function<void(FlowId, SeqNo, sim::SimTime)> onOverhearData;
  /// A new own-flow packet received directly from the AP.
  std::function<void(SeqNo, sim::SimTime)> onDirectRx;
  /// A new own-flow packet recovered through cooperation.
  std::function<void(SeqNo, sim::SimTime)> onRecovered;
  /// Entered the Reception phase; the NodeId is the AP whose packet
  /// triggered the (re-)association.
  std::function<void(NodeId, sim::SimTime)> onEnterReception;
  std::function<void(sim::SimTime)> onEnterCoopArq;
  std::function<void(int seqCount, sim::SimTime)> onRequestSent;
  std::function<void(FlowId, SeqNo, sim::SimTime)> onCoopDataSent;
  /// The missing list emptied during a Cooperative-ARQ phase.
  std::function<void(sim::SimTime)> onWindowRecovered;
  /// File-download mode only: the whole file is present.
  std::function<void(sim::SimTime)> onFileComplete;
};

/// Protocol event counters (per run).
struct CarqCounters {
  std::uint64_t hellosSent = 0;
  std::uint64_t hellosReceived = 0;
  std::uint64_t dataDirect = 0;
  std::uint64_t dataOverheardBuffered = 0;
  std::uint64_t dataOverheardIgnored = 0;
  std::uint64_t requestsSent = 0;
  std::uint64_t requestSeqsSent = 0;
  std::uint64_t requestsReceived = 0;
  std::uint64_t coopDataSent = 0;
  std::uint64_t coopDataReceived = 0;
  std::uint64_t responsesSuppressed = 0;
  std::uint64_t recovered = 0;
  std::uint64_t duplicateRecoveries = 0;
  std::uint64_t cyclesCompleted = 0;
  std::uint64_t unproductiveCycles = 0;
  std::uint64_t corruptCopiesHeard = 0;   ///< frame-combining inputs
  std::uint64_t softCombinedDecodes = 0;  ///< packets decoded by combining
};

/// One car's C-ARQ protocol instance. Wire hooks, then call start().
class CarqAgent {
 public:
  CarqAgent(net::Node& node, CarqConfig config, Rng rng);
  CarqAgent(const CarqAgent&) = delete;
  CarqAgent& operator=(const CarqAgent&) = delete;

  /// Installs the MAC receive handler and begins the HELLO process.
  void start();

  NodeId id() const noexcept { return node_.id(); }
  Phase phase() const noexcept { return phase_; }
  const PacketStore& store() const noexcept { return store_; }
  const CooperatorTable& table() const noexcept { return table_; }
  const RequestScheduler& scheduler() const noexcept { return scheduler_; }
  const CarqCounters& counters() const noexcept { return counters_; }
  CarqHooks& hooks() noexcept { return hooks_; }
  const CarqConfig& config() const noexcept { return config_; }

  /// Highest own-flow sequence number learnt through window gossip (0
  /// when the extension is off or nothing was gossiped yet).
  SeqNo gossipedMaxSeq() const noexcept { return gossipedMaxSeq_; }

 private:
  struct ResponseKey {
    FlowId flow;
    SeqNo seq;
    friend auto operator<=>(const ResponseKey&, const ResponseKey&) = default;
  };

  void onFrame(const mac::Frame& frame, const mac::RxInfo& info);
  void onCorruptFrame(const mac::Frame& frame, const mac::RxInfo& info);
  void handleData(const mac::Frame& frame);
  void handleHello(const mac::Frame& frame, const mac::RxInfo& info);
  void handleRequest(const mac::Frame& frame);
  void handleCoopData(const mac::Frame& frame);

  void sendHello();
  void scheduleNextHello();
  void restartReceptionTimer();
  void onReceptionTimeout();
  void enterReception(NodeId viaAp);
  void enterCoopArq();
  void issueNextRequest();
  void sendCoopData(FlowId flow, SeqNo seq);
  void checkFileComplete();
  std::vector<SeqNo> currentMissing() const;

  net::Node& node_;
  sim::Simulator& sim_;
  CarqConfig config_;
  Rng rng_;
  CooperatorTable table_;
  PacketStore store_;
  RequestScheduler scheduler_;
  SoftCombiner combiner_;
  Phase phase_ = Phase::kIdle;
  CarqHooks hooks_;
  CarqCounters counters_;
  sim::EventId helloTimer_ = 0;
  sim::EventId receptionTimer_ = 0;
  sim::EventId requestTimer_ = 0;
  std::map<ResponseKey, sim::EventId> pendingResponses_;
  int recoveredDuringCycle_ = 0;
  SeqNo gossipedMaxSeq_ = 0;  ///< highest own-flow seq learnt from HELLOs
  bool started_ = false;
  bool fileCompleteFired_ = false;
};

}  // namespace vanet::carq
