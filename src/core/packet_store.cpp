#include "core/packet_store.h"

#include <algorithm>

#include "util/assert.h"

namespace vanet::carq {

void PacketStore::noteDirect(SeqNo seq) {
  VANET_DASSERT(seq > 0, "sequence numbers start at 1");
  if (!direct_.insert(seq).second) {
    ++duplicates_;
    return;
  }
  if (firstSeen_ == 0 || seq < firstSeen_) firstSeen_ = seq;
  lastSeen_ = std::max(lastSeen_, seq);
}

void PacketStore::noteRecovered(SeqNo seq) {
  if (direct_.count(seq) > 0 || !recovered_.insert(seq).second) {
    ++duplicates_;
  }
}

bool PacketStore::hasOwn(SeqNo seq) const {
  return direct_.count(seq) > 0 || recovered_.count(seq) > 0;
}

std::vector<SeqNo> PacketStore::missingInWindow() const {
  if (firstSeen_ == 0) return {};
  return missingInRange(firstSeen_, lastSeen_);
}

std::vector<SeqNo> PacketStore::missingInRange(SeqNo lo, SeqNo hi) const {
  std::vector<SeqNo> missing;
  for (SeqNo seq = lo; seq <= hi; ++seq) {
    if (!hasOwn(seq)) missing.push_back(seq);
  }
  return missing;
}

void PacketStore::buffer(FlowId flow, SeqNo seq, int payloadBytes) {
  foreign_[flow].insert(seq);
  foreignBytes_[flow] = payloadBytes;
}

bool PacketStore::hasBuffered(FlowId flow, SeqNo seq) const {
  const auto it = foreign_.find(flow);
  return it != foreign_.end() && it->second.count(seq) > 0;
}

int PacketStore::bufferedPayloadBytes(FlowId flow) const {
  const auto it = foreignBytes_.find(flow);
  return it != foreignBytes_.end() ? it->second : 0;
}

std::size_t PacketStore::bufferedCount() const {
  std::size_t total = 0;
  for (const auto& [flow, seqs] : foreign_) {
    total += seqs.size();
  }
  return total;
}

std::vector<std::pair<FlowId, SeqNo>> PacketStore::bufferedMaxSeqs() const {
  std::vector<std::pair<FlowId, SeqNo>> out;
  out.reserve(foreign_.size());
  for (const auto& [flow, seqs] : foreign_) {
    if (!seqs.empty()) out.emplace_back(flow, *seqs.rbegin());
  }
  return out;
}

}  // namespace vanet::carq
