#pragma once

/// \file selection.h
/// Cooperator-selection policies. The paper uses every one-hop neighbour
/// and explicitly leaves optimal selection as future work (§6); kBestRssi
/// and kRandomK exist for the selection ablation bench.

#include <vector>

#include "core/config.h"
#include "util/rng.h"
#include "util/types.h"

namespace vanet::carq {

class PeerMap;  // defined in cooperator_table.h

/// Returns the announced cooperator list under `policy`.
///
/// `current` is the existing ordered list (first-heard order); peers that
/// disappeared from `peers` are dropped under every policy. The result
/// never exceeds `maxCooperators` except under kAllOneHop, which is
/// unbounded like the paper's prototype.
std::vector<NodeId> selectCooperators(SelectionPolicy policy,
                                      const PeerMap& peers,
                                      const std::vector<NodeId>& current,
                                      int maxCooperators, Rng& rng);

}  // namespace vanet::carq
