#include "core/cooperator_table.h"

#include <algorithm>

#include "core/selection.h"
#include "util/assert.h"

namespace vanet::carq {

PeerInfo& PeerMap::operator[](NodeId id) {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), id,
      [](const value_type& e, NodeId key) { return e.first < key; });
  if (it != entries_.end() && it->first == id) return it->second;
  return entries_.emplace(it, id, PeerInfo{})->second;
}

const PeerInfo* PeerMap::find(NodeId id) const noexcept {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), id,
      [](const value_type& e, NodeId key) { return e.first < key; });
  if (it != entries_.end() && it->first == id) return &it->second;
  return nullptr;
}

const PeerInfo& PeerMap::at(NodeId id) const {
  const PeerInfo* hit = find(id);
  VANET_ASSERT(hit != nullptr, "peer id not present in the table");
  return *hit;
}

bool CooperatorTable::onHello(NodeId sender,
                              const std::vector<NodeId>& senderCooperators,
                              double rssiDbm, sim::SimTime now) {
  VANET_ASSERT(sender != self_, "a node cannot hear its own HELLO");
  PeerInfo& peer = peers_[sender];
  constexpr double kEmaAlpha = 0.25;
  peer.emaRssiDbm = peer.helloCount == 0
                        ? rssiDbm
                        : (1.0 - kEmaAlpha) * peer.emaRssiDbm + kEmaAlpha * rssiDbm;
  ++peer.helloCount;
  peer.lastHeard = now;
  peer.announced = senderCooperators;

  const bool isNew =
      std::find(cooperators_.begin(), cooperators_.end(), sender) ==
      cooperators_.end();
  if (isNew) {
    cooperators_.push_back(sender);
  }
  return isNew;
}

std::optional<int> CooperatorTable::myOrderFor(NodeId requester) const {
  const PeerInfo* peer = peers_.find(requester);
  if (peer == nullptr) return std::nullopt;
  const auto& list = peer->announced;
  const auto it = std::find(list.begin(), list.end(), self_);
  if (it == list.end()) return std::nullopt;
  return static_cast<int>(it - list.begin());
}

bool CooperatorTable::considersMeCooperator(NodeId other) const {
  return myOrderFor(other).has_value();
}

void CooperatorTable::applySelection(SelectionPolicy policy, int maxCooperators,
                                     Rng& rng) {
  cooperators_ = selectCooperators(policy, peers_, cooperators_,
                                   maxCooperators, rng);
}

}  // namespace vanet::carq
