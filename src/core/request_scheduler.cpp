#include "core/request_scheduler.h"

#include <algorithm>

#include "util/assert.h"

namespace vanet::carq {

RequestScheduler::RequestScheduler(RequestMode mode, int maxBatchSeqs)
    : mode_(mode), maxBatchSeqs_(maxBatchSeqs) {
  VANET_ASSERT(maxBatchSeqs_ >= 1, "batch size must be at least 1");
}

void RequestScheduler::loadMissing(std::vector<SeqNo> missing) {
  pending_.assign(missing.begin(), missing.end());
  cursor_ = 0;
  recoveredSinceWrap_ = 0;
}

std::optional<RequestScheduler::NextRequest> RequestScheduler::next() {
  if (pending_.empty()) return std::nullopt;

  NextRequest request;
  if (cursor_ >= pending_.size()) {
    cursor_ = 0;
    request.wrapped = true;
    recoveredSinceWrap_ = 0;
  }
  const std::size_t take =
      mode_ == RequestMode::kPerPacket
          ? 1
          : std::min<std::size_t>(static_cast<std::size_t>(maxBatchSeqs_),
                                  pending_.size() - cursor_);
  request.seqs.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    request.seqs.push_back(pending_[cursor_ + i]);
  }
  cursor_ += take;
  return request;
}

void RequestScheduler::markRecovered(SeqNo seq) {
  const auto it = std::find(pending_.begin(), pending_.end(), seq);
  if (it == pending_.end()) return;
  const auto idx = static_cast<std::size_t>(it - pending_.begin());
  pending_.erase(it);
  if (idx < cursor_ && cursor_ > 0) {
    --cursor_;  // keep the cursor on the same next element
  }
  ++recoveredSinceWrap_;
}

}  // namespace vanet::carq
