#include "core/carq_agent.h"

#include <algorithm>

#include "mac/airtime.h"
#include "util/assert.h"
#include "util/log.h"

namespace vanet::carq {

const char* phaseName(Phase phase) noexcept {
  switch (phase) {
    case Phase::kIdle:
      return "Idle";
    case Phase::kReception:
      return "Reception";
    case Phase::kCoopArq:
      return "CoopArq";
  }
  return "?";
}

CarqAgent::CarqAgent(net::Node& node, CarqConfig config, Rng rng)
    : node_(node), sim_(node.simulator()), config_(config), rng_(rng),
      table_(node.id()),
      scheduler_(config.requestMode, config.maxBatchSeqs) {
  VANET_ASSERT(config_.coopSlot > sim::SimTime::zero(),
               "cooperation slot must be positive");
}

void CarqAgent::start() {
  VANET_ASSERT(!started_, "agent already started");
  started_ = true;
  node_.mac().setRxHandler(
      [this](const mac::Frame& frame, const mac::RxInfo& info) {
        onFrame(frame, info);
      });
  if (config_.frameCombining) {
    node_.mac().setCorruptRxHandler(
        [this](const mac::Frame& frame, const mac::RxInfo& info) {
          onCorruptFrame(frame, info);
        });
  }
  if (config_.cooperationEnabled) {
    // Desynchronise first HELLOs across the platoon.
    const double offset =
        rng_.uniform(0.05, config_.helloPeriod.toSeconds());
    helloTimer_ =
        sim_.scheduleAfter(sim::SimTime::seconds(offset), [this] { sendHello(); });
  }
}

// ---------------------------------------------------------------- frames

void CarqAgent::onFrame(const mac::Frame& frame, const mac::RxInfo& info) {
  switch (frame.kind) {
    case mac::FrameKind::kData:
      handleData(frame);
      break;
    case mac::FrameKind::kHello:
      handleHello(frame, info);
      break;
    case mac::FrameKind::kRequest:
      handleRequest(frame);
      break;
    case mac::FrameKind::kCoopData:
      handleCoopData(frame);
      break;
  }
}

void CarqAgent::onCorruptFrame(const mac::Frame& frame,
                               const mac::RxInfo& info) {
  // Chase combining applies to copies of own-flow packets, whether they
  // arrive as AP data or as cooperator retransmissions.
  FlowId flow = 0;
  SeqNo seq = 0;
  bool fromAp = false;
  if (frame.kind == mac::FrameKind::kData) {
    flow = mac::dataOf(frame).flow;
    seq = mac::dataOf(frame).seq;
    fromAp = true;
  } else if (frame.kind == mac::FrameKind::kCoopData) {
    flow = mac::coopDataOf(frame).flow;
    seq = mac::coopDataOf(frame).seq;
  } else {
    return;
  }
  if (flow != id() || store_.hasOwn(seq)) return;
  ++counters_.corruptCopiesHeard;

  const int bits = mac::frameBits(frame.bytes);
  // The copy already failed an independent decode in the environment;
  // combining grants only the *additional* success probability the
  // accumulated energy provides beyond that single-copy attempt.
  const double single = channel::frameSuccessProbability(
      config_.phyMode, info.sinrDb, bits);
  const double combinedDb = combiner_.accumulateDb(seq, info.sinrDb);
  const double combined =
      channel::frameSuccessProbability(config_.phyMode, combinedDb, bits);
  const double extra =
      std::clamp((combined - single) / std::max(1e-12, 1.0 - single), 0.0, 1.0);
  if (!rng_.bernoulli(extra)) return;

  // Decoded via combining: from here on it is a normal reception.
  combiner_.clear(seq);
  ++counters_.softCombinedDecodes;
  const sim::SimTime now = sim_.now();
  if (fromAp) {
    if (hooks_.onOverhearData) hooks_.onOverhearData(flow, seq, now);
    restartReceptionTimer();
    if (phase_ != Phase::kReception) enterReception(frame.src);
    ++counters_.dataDirect;
    store_.noteDirect(seq);
    if (hooks_.onDirectRx) hooks_.onDirectRx(seq, now);
  } else {
    store_.noteRecovered(seq);
    ++counters_.recovered;
    ++recoveredDuringCycle_;
    scheduler_.markRecovered(seq);
    if (hooks_.onRecovered) hooks_.onRecovered(seq, now);
    if (phase_ == Phase::kCoopArq && scheduler_.empty() &&
        hooks_.onWindowRecovered) {
      hooks_.onWindowRecovered(now);
    }
  }
  if (config_.fileSizeSeqs > 0) checkFileComplete();
}

void CarqAgent::handleData(const mac::Frame& frame) {
  const mac::DataPayload& data = mac::dataOf(frame);
  const sim::SimTime now = sim_.now();
  if (hooks_.onOverhearData) hooks_.onOverhearData(data.flow, data.seq, now);

  // Any packet from an AP means we are in coverage (paper: a node is
  // associated from the first packet it receives).
  restartReceptionTimer();
  if (phase_ != Phase::kReception) enterReception(frame.src);

  if (data.flow == id()) {
    ++counters_.dataDirect;
    const bool isNew = !store_.hasOwn(data.seq);
    store_.noteDirect(data.seq);
    if (config_.frameCombining) combiner_.clear(data.seq);
    if (isNew && hooks_.onDirectRx) hooks_.onDirectRx(data.seq, now);
    if (config_.fileSizeSeqs > 0) checkFileComplete();
    return;
  }
  if (config_.cooperationEnabled && table_.considersMeCooperator(data.flow)) {
    store_.buffer(data.flow, data.seq, frame.bytes);
    ++counters_.dataOverheardBuffered;
  } else {
    ++counters_.dataOverheardIgnored;
  }
}

void CarqAgent::handleHello(const mac::Frame& frame, const mac::RxInfo& info) {
  if (!config_.cooperationEnabled) return;
  ++counters_.hellosReceived;
  const mac::HelloPayload& hello = mac::helloOf(frame);
  table_.onHello(frame.src, hello.cooperators, info.rxPowerDbm, sim_.now());
  if (config_.gossipWindowExtension) {
    for (const auto& [flow, maxSeq] : hello.bufferedMaxSeq) {
      if (flow == id() && maxSeq > gossipedMaxSeq_) {
        gossipedMaxSeq_ = maxSeq;
        // Learning about later packets while already in the dark area:
        // fold them into the walk, and restart the request cycle if it
        // had gone dormant (everything previously known was recovered).
        if (phase_ == Phase::kCoopArq && config_.fileSizeSeqs <= 0) {
          scheduler_.loadMissing(currentMissing());
          if (requestTimer_ == 0 && !scheduler_.empty()) {
            issueNextRequest();
          }
        }
      }
    }
  }
}

void CarqAgent::handleRequest(const mac::Frame& frame) {
  if (!config_.cooperationEnabled) return;
  const mac::RequestPayload& request = mac::requestOf(frame);
  if (request.origin == id()) return;
  ++counters_.requestsReceived;

  // Only nodes the origin announced as cooperators answer; the announced
  // position is the response order (paper §3.2).
  const std::optional<int> order = table_.myOrderFor(request.origin);
  if (!order.has_value()) return;
  const auto& peer = table_.peers().at(request.origin);
  const int maxOrder = std::max<int>(1, static_cast<int>(peer.announced.size()));

  for (std::size_t i = 0; i < request.seqs.size(); ++i) {
    const SeqNo seq = request.seqs[i];
    if (!store_.hasBuffered(request.flow, seq)) continue;
    const ResponseKey key{request.flow, seq};
    if (pendingResponses_.count(key) > 0) continue;
    // (seq-major, order-minor) slot grid; one seq per REQUEST degenerates
    // to the paper's plain `order * slot` backoff.
    const sim::SimTime delay =
        (static_cast<std::int64_t>(i) * maxOrder + *order) * config_.coopSlot;
    const sim::EventId ev = sim_.scheduleAfter(delay, [this, key] {
      pendingResponses_.erase(key);
      sendCoopData(key.flow, key.seq);
    });
    pendingResponses_.emplace(key, ev);
  }
}

void CarqAgent::handleCoopData(const mac::Frame& frame) {
  const mac::CoopDataPayload& coop = mac::coopDataOf(frame);
  ++counters_.coopDataReceived;
  const sim::SimTime now = sim_.now();

  // Overhearing another cooperator's response suppresses my own pending
  // response for the same packet (paper §3.3 "unless other cooperator
  // sends it before").
  const ResponseKey key{coop.flow, coop.seq};
  if (const auto it = pendingResponses_.find(key);
      it != pendingResponses_.end()) {
    sim_.cancel(it->second);
    pendingResponses_.erase(it);
    ++counters_.responsesSuppressed;
  }

  if (coop.flow == id()) {
    if (!store_.hasOwn(coop.seq)) {
      store_.noteRecovered(coop.seq);
      ++counters_.recovered;
      ++recoveredDuringCycle_;
      scheduler_.markRecovered(coop.seq);
      if (hooks_.onRecovered) hooks_.onRecovered(coop.seq, now);
      if (phase_ == Phase::kCoopArq && scheduler_.empty() &&
          hooks_.onWindowRecovered) {
        hooks_.onWindowRecovered(now);
      }
      if (config_.fileSizeSeqs > 0) checkFileComplete();
    } else {
      ++counters_.duplicateRecoveries;
    }
    return;
  }
  if (config_.bufferOverheardCoopData && config_.cooperationEnabled &&
      table_.considersMeCooperator(coop.flow) &&
      !store_.hasBuffered(coop.flow, coop.seq)) {
    store_.buffer(coop.flow, coop.seq,
                  std::max(0, frame.bytes - config_.coopDataHeaderBytes));
  }
}

// ---------------------------------------------------------------- HELLO

void CarqAgent::sendHello() {
  table_.applySelection(config_.selection, config_.maxCooperators, rng_);
  const std::vector<NodeId>& list = table_.myCooperators();

  mac::Frame frame;
  frame.kind = mac::FrameKind::kHello;
  frame.src = id();
  frame.bytes = config_.helloBaseBytes +
                config_.helloPerCooperatorBytes * static_cast<int>(list.size());
  mac::HelloPayload payload{list, {}};
  if (config_.gossipWindowExtension) {
    payload.bufferedMaxSeq = store_.bufferedMaxSeqs();
    frame.bytes += config_.helloPerGossipBytes *
                   static_cast<int>(payload.bufferedMaxSeq.size());
  }
  frame.payload = std::move(payload);
  node_.mac().enqueue(std::move(frame), config_.phyMode);
  ++counters_.hellosSent;
  scheduleNextHello();
}

void CarqAgent::scheduleNextHello() {
  const double jitter = rng_.uniform(-config_.helloJitterFraction,
                                     config_.helloJitterFraction);
  const sim::SimTime period =
      sim::SimTime::seconds(config_.helloPeriod.toSeconds() * (1.0 + jitter));
  helloTimer_ = sim_.scheduleAfter(period, [this] { sendHello(); });
}

// ------------------------------------------------------------- phases

void CarqAgent::restartReceptionTimer() {
  if (receptionTimer_ != 0) sim_.cancel(receptionTimer_);
  receptionTimer_ = sim_.scheduleAfter(config_.receptionTimeout,
                                       [this] { onReceptionTimeout(); });
}

void CarqAgent::enterReception(NodeId viaAp) {
  phase_ = Phase::kReception;
  if (requestTimer_ != 0) {
    sim_.cancel(requestTimer_);
    requestTimer_ = 0;
  }
  LOG_DEBUG("car " << id() << " -> Reception (AP " << viaAp << ") at "
                   << sim_.now());
  if (hooks_.onEnterReception) hooks_.onEnterReception(viaAp, sim_.now());
}

void CarqAgent::onReceptionTimeout() {
  receptionTimer_ = 0;
  if (phase_ != Phase::kReception) return;
  enterCoopArq();
}

void CarqAgent::enterCoopArq() {
  phase_ = Phase::kCoopArq;
  LOG_DEBUG("car " << id() << " -> CoopArq at " << sim_.now());
  if (hooks_.onEnterCoopArq) hooks_.onEnterCoopArq(sim_.now());
  if (!config_.cooperationEnabled) return;
  scheduler_.loadMissing(currentMissing());
  recoveredDuringCycle_ = 0;
  if (scheduler_.empty()) {
    if (hooks_.onWindowRecovered) hooks_.onWindowRecovered(sim_.now());
    return;
  }
  issueNextRequest();
}

std::vector<SeqNo> CarqAgent::currentMissing() const {
  if (config_.fileSizeSeqs > 0) {
    return store_.missingInRange(1, config_.fileSizeSeqs);
  }
  if (config_.gossipWindowExtension && store_.firstSeen() > 0 &&
      gossipedMaxSeq_ > store_.lastSeen()) {
    return store_.missingInRange(store_.firstSeen(), gossipedMaxSeq_);
  }
  return store_.missingInWindow();
}

// ------------------------------------------------------------- requests

void CarqAgent::issueNextRequest() {
  requestTimer_ = 0;
  if (phase_ != Phase::kCoopArq || !config_.cooperationEnabled) return;
  const auto next = scheduler_.next();
  if (!next.has_value()) return;  // everything recovered

  sim::SimTime extraDelay = sim::SimTime::zero();
  if (next->wrapped) {
    ++counters_.cyclesCompleted;
    if (recoveredDuringCycle_ == 0) {
      ++counters_.unproductiveCycles;
      extraDelay = config_.unproductiveCycleBackoff;
    }
    recoveredDuringCycle_ = 0;
  }

  mac::Frame frame;
  frame.kind = mac::FrameKind::kRequest;
  frame.src = id();
  frame.bytes = config_.requestBaseBytes +
                config_.requestPerSeqBytes * static_cast<int>(next->seqs.size());
  frame.payload = mac::RequestPayload{id(), id(), next->seqs};
  const int requestBytes = frame.bytes;
  node_.mac().enqueue(std::move(frame), config_.phyMode);
  ++counters_.requestsSent;
  counters_.requestSeqsSent += next->seqs.size();
  if (hooks_.onRequestSent) {
    hooks_.onRequestSent(static_cast<int>(next->seqs.size()), sim_.now());
  }

  // Response window: my announced cooperators answer on the
  // (seq-major, order-minor) slot grid after the REQUEST lands.
  const int maxOrder =
      std::max<int>(1, static_cast<int>(table_.myCooperators().size()));
  const sim::SimTime grid =
      static_cast<std::int64_t>(next->seqs.size()) * maxOrder * config_.coopSlot;
  const sim::SimTime wait = mac::frameAirtime(config_.phyMode, requestBytes) +
                            grid + config_.requestGuard + extraDelay;
  requestTimer_ = sim_.scheduleAfter(wait, [this] { issueNextRequest(); });
}

void CarqAgent::sendCoopData(FlowId flow, SeqNo seq) {
  mac::Frame frame;
  frame.kind = mac::FrameKind::kCoopData;
  frame.src = id();
  frame.bytes =
      config_.coopDataHeaderBytes + store_.bufferedPayloadBytes(flow);
  frame.payload = mac::CoopDataPayload{id(), flow, seq};
  node_.mac().enqueue(std::move(frame), config_.phyMode);
  ++counters_.coopDataSent;
  if (hooks_.onCoopDataSent) hooks_.onCoopDataSent(flow, seq, sim_.now());
}

void CarqAgent::checkFileComplete() {
  if (fileCompleteFired_ || config_.fileSizeSeqs <= 0) return;
  if (store_.missingInRange(1, config_.fileSizeSeqs).empty()) {
    fileCompleteFired_ = true;
    if (hooks_.onFileComplete) hooks_.onFileComplete(sim_.now());
  }
}

}  // namespace vanet::carq
