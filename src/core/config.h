#pragma once

/// \file config.h
/// Tunables of the Cooperative ARQ protocol (paper §3). Defaults follow
/// the prototype where the paper specifies a value (5 s reception timeout,
/// ordered fixed backoff) and conservative engineering choices elsewhere.

#include "channel/error_model.h"
#include "sim/time.h"
#include "util/types.h"

namespace vanet::carq {

/// How REQUEST frames enumerate missing packets.
enum class RequestMode {
  kPerPacket,  ///< one REQUEST per missing packet (the paper's prototype)
  kBatched,    ///< one REQUEST lists many (paper §3.3 optimisation)
};

/// How a node picks which neighbours to announce as cooperators.
enum class SelectionPolicy {
  kAllOneHop,  ///< every heard neighbour, in first-heard order (the paper)
  kBestRssi,   ///< strongest-first by smoothed HELLO RSSI, capped
  kRandomK,    ///< random subset, capped (control for the ablation)
};

/// Protocol parameters of one car's C-ARQ agent.
struct CarqConfig {
  // --- HELLO / cooperator management (paper §3.2) ---
  sim::SimTime helloPeriod = sim::SimTime::seconds(1.0);
  double helloJitterFraction = 0.2;  ///< uniform +- jitter on the period
  int helloBaseBytes = 32;           ///< fixed part of a HELLO
  int helloPerCooperatorBytes = 4;   ///< per announced cooperator

  // --- Reception phase (paper §3.2) ---
  sim::SimTime receptionTimeout = sim::SimTime::seconds(5.0);  ///< paper value

  // --- Cooperative-ARQ phase (paper §3.3) ---
  /// Ordered-backoff slot; must exceed one CoopData airtime so that a
  /// lower-order cooperator's response is overheard (and suppresses
  /// higher-order ones) before their own timers fire.
  sim::SimTime coopSlot = sim::SimTime::millis(12.0);
  sim::SimTime requestGuard = sim::SimTime::millis(5.0);  ///< extra wait per request
  int requestBaseBytes = 32;
  int requestPerSeqBytes = 4;
  int coopDataHeaderBytes = 16;  ///< added to the original payload size
  RequestMode requestMode = RequestMode::kPerPacket;
  int maxBatchSeqs = 32;  ///< cap on seqs per batched REQUEST
  /// Pause before re-walking the missing list when a full cycle recovered
  /// nothing (the paper loops forever; the pause avoids pure channel churn
  /// while cooperators have nothing new).
  sim::SimTime unproductiveCycleBackoff = sim::SimTime::seconds(1.0);

  // --- Cooperator selection (paper §6 leaves the policy open) ---
  SelectionPolicy selection = SelectionPolicy::kAllOneHop;
  int maxCooperators = 8;

  // --- Transport ---
  channel::PhyMode phyMode = channel::PhyMode::kDsss1Mbps;

  // --- Infostation file-download mode (paper §6 future work) ---
  /// When > 0 the agent tries to complete the whole file [1, fileSizeSeqs]
  /// rather than the per-window range, continuing across AP passes.
  SeqNo fileSizeSeqs = 0;

  /// When true, a cooperator also buffers packets it overhears in
  /// CoopData frames addressed to nodes it cooperates for (off in the
  /// paper's prototype).
  bool bufferOverheardCoopData = false;

  /// Window-gossip extension (ours, in the spirit of the paper's §3.3
  /// optimisations): HELLOs advertise the highest buffered seq per flow,
  /// and a destination extends its request window beyond the last packet
  /// it heard itself. Closes the tail gap of Figure 6: the first car to
  /// leave coverage otherwise never learns about the packets the AP sent
  /// it afterwards, even though trailing cars buffered them.
  bool gossipWindowExtension = false;
  int helloPerGossipBytes = 6;

  /// C-ARQ with Frame Combining (the authors' PIMRC'07 companion scheme,
  /// the paper's ref [12]): detected-but-corrupt copies of a packet are
  /// soft-combined (maximal-ratio, linear SINR sum) until the packet
  /// decodes. Inert at 1 Mbps DSSS, whose decode cliff lies below the
  /// detection threshold; pays at CCK/ERP rates, enabling the paper's §6
  /// "increment the bit rate used by the APs" direction.
  bool frameCombining = false;

  /// When true, cooperation is globally disabled: the agent still tracks
  /// losses (baseline measurement mode) but never requests nor responds.
  bool cooperationEnabled = true;
};

}  // namespace vanet::carq
