#pragma once

/// \file soft_combiner.h
/// Chase-combining state for C-ARQ with Frame Combining (the authors'
/// companion protocol, Morillo & García-Vidal, PIMRC 2007 — the paper's
/// reference [12]). Every detected-but-corrupt copy of a packet
/// contributes its SINR; maximal-ratio combining adds SINRs in the linear
/// domain, and a packet decodes once the combined SINR clears the frame's
/// error curve.

#include <cstddef>
#include <map>

#include "util/types.h"

namespace vanet::carq {

/// Accumulated soft energy per own-flow sequence number.
class SoftCombiner {
 public:
  /// Adds one corrupt copy's SINR (dB); returns the combined SINR in dB
  /// including this copy (maximal-ratio combining: linear sum).
  double accumulateDb(SeqNo seq, double sinrDb);

  /// Combined SINR in dB from previously accumulated copies only
  /// (-infinity when none).
  double combinedDb(SeqNo seq) const;

  /// Number of corrupt copies accumulated for `seq`.
  int copies(SeqNo seq) const;

  /// Drops the soft state for a decoded (or no longer needed) packet.
  void clear(SeqNo seq);

  std::size_t trackedCount() const noexcept { return energy_.size(); }

 private:
  struct Entry {
    double linearSum = 0.0;
    int copies = 0;
  };
  std::map<SeqNo, Entry> energy_;
};

}  // namespace vanet::carq
