#include "core/soft_combiner.h"

#include <cmath>
#include <limits>

namespace vanet::carq {

double SoftCombiner::accumulateDb(SeqNo seq, double sinrDb) {
  Entry& entry = energy_[seq];
  entry.linearSum += std::pow(10.0, sinrDb / 10.0);
  ++entry.copies;
  return 10.0 * std::log10(entry.linearSum);
}

double SoftCombiner::combinedDb(SeqNo seq) const {
  const auto it = energy_.find(seq);
  if (it == energy_.end() || it->second.linearSum <= 0.0) {
    return -std::numeric_limits<double>::infinity();
  }
  return 10.0 * std::log10(it->second.linearSum);
}

int SoftCombiner::copies(SeqNo seq) const {
  const auto it = energy_.find(seq);
  return it == energy_.end() ? 0 : it->second.copies;
}

void SoftCombiner::clear(SeqNo seq) { energy_.erase(seq); }

}  // namespace vanet::carq
