#pragma once

/// \file packet_store.h
/// Per-car packet bookkeeping: which own-flow packets arrived directly,
/// which were recovered through cooperation, and which foreign packets are
/// buffered on behalf of platoon members (paper §3.2: "each car receives
/// its data but also buffers the packets addressed to other cars ... that
/// consider it as cooperator").

#include <map>
#include <set>
#include <utility>
#include <vector>

#include "util/types.h"

namespace vanet::carq {

/// Sequence-number bookkeeping for one car.
class PacketStore {
 public:
  // --- own flow ---

  /// Records a packet of the car's own flow received from the AP.
  void noteDirect(SeqNo seq);

  /// Records a packet recovered through Cooperative ARQ.
  void noteRecovered(SeqNo seq);

  /// True when the packet is present either directly or via recovery.
  bool hasOwn(SeqNo seq) const;

  /// First / last own-flow sequence number received *directly* from an AP
  /// (0 before anything arrived). The paper's recovery window is
  /// [firstSeen, lastSeen]: a car cannot request packets it never learned
  /// existed.
  SeqNo firstSeen() const noexcept { return firstSeen_; }
  SeqNo lastSeen() const noexcept { return lastSeen_; }

  /// Missing own-flow packets within the paper's window, ascending.
  std::vector<SeqNo> missingInWindow() const;

  /// Missing packets within an explicit range (file-download mode).
  std::vector<SeqNo> missingInRange(SeqNo lo, SeqNo hi) const;

  std::size_t directCount() const noexcept { return direct_.size(); }
  std::size_t recoveredCount() const noexcept { return recovered_.size(); }
  std::size_t duplicateCount() const noexcept { return duplicates_; }

  // --- buffering for others ---

  /// Buffers a foreign packet (overheard AP data addressed to a platoon
  /// member that announced this car as cooperator).
  void buffer(FlowId flow, SeqNo seq, int payloadBytes);

  bool hasBuffered(FlowId flow, SeqNo seq) const;

  /// Payload size (bytes) recorded for the flow; 0 if unknown.
  int bufferedPayloadBytes(FlowId flow) const;

  std::size_t bufferedCount() const;

  /// Highest buffered sequence number per foreign flow (window gossip).
  std::vector<std::pair<FlowId, SeqNo>> bufferedMaxSeqs() const;

 private:
  std::set<SeqNo> direct_;
  std::set<SeqNo> recovered_;
  SeqNo firstSeen_ = 0;
  SeqNo lastSeen_ = 0;
  std::size_t duplicates_ = 0;
  std::map<FlowId, std::set<SeqNo>> foreign_;
  std::map<FlowId, int> foreignBytes_;
};

}  // namespace vanet::carq
