#include "channel/fading.h"

#include <cmath>
#include <vector>

#include "util/assert.h"
#include "util/vmath.h"

namespace vanet::channel {

double RayleighFading::sampleDb(Rng& rng) const {
  // Power gain is exponential with unit mean; guard against log(0).
  double u = rng.uniform();
  while (u <= 0.0) u = rng.uniform();
  const double power = -vmath::vlog(u);
  return vmath::vlinear2db(power);
}

RicianFading::RicianFading(double kFactor) : k_(kFactor) {
  VANET_ASSERT(k_ >= 0.0, "Rician K-factor must be non-negative");
}

NakagamiFading::NakagamiFading(double m) : m_(m) {
  VANET_ASSERT(m_ >= 0.5, "Nakagami m must be at least 0.5");
}

namespace {

/// Marsaglia-Tsang gamma sampler for shape >= 0.5 (unit scale). For
/// shape < 1 uses the standard boost Gamma(a) = Gamma(a+1) * U^(1/a).
double sampleGamma(double shape, Rng& rng) {
  if (shape < 1.0) {
    double u = rng.uniform();
    while (u <= 0.0) u = rng.uniform();
    return sampleGamma(shape + 1.0, rng) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = rng.normal();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    const double u = rng.uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0.0 &&
        vmath::vlog(u) < 0.5 * x * x + d * (1.0 - v + vmath::vlog(v))) {
      return d * v;
    }
  }
}

}  // namespace

double NakagamiFading::sampleDb(Rng& rng) const {
  // Power ~ Gamma(m, 1/m): unit mean, variance 1/m.
  const double power = sampleGamma(m_, rng) / m_;
  return vmath::vlinear2db(power);
}

double RicianFading::sampleDb(Rng& rng) const {
  // Complex gain = sqrt(K/(K+1)) + CN(0, 1/(K+1)); power normalised to
  // unit mean.
  const double losAmplitude = std::sqrt(k_ / (k_ + 1.0));
  const double scatterSigma = std::sqrt(1.0 / (2.0 * (k_ + 1.0)));
  const double re = losAmplitude + rng.normal(0.0, scatterSigma);
  const double im = rng.normal(0.0, scatterSigma);
  const double power = re * re + im * im;
  return vmath::vlinear2db(power);
}

// Batched variants: uniforms are drawn per receiver in the exact order the
// scalar loop would consume them (RNG stream positions unchanged; the
// twin-stack tests in tests/channel/link_batch_test.cpp prove this), then
// the log / Box-Muller / dB transforms run through the batched vmath
// kernels -- which are bit-identical to the scalar kernels the sampleDb
// methods above use, so values match the scalar loop bit for bit.

void RayleighFading::sampleDbBatch(Rng& rng, double* out,
                                   std::size_t n) const {
  for (std::size_t i = 0; i < n; ++i) {
    double u = rng.uniform();
    while (u <= 0.0) u = rng.uniform();
    out[i] = u;
  }
  vmath::vlog(out, out, n);
  for (std::size_t i = 0; i < n; ++i) out[i] = -out[i];
  vmath::vlinear2db(out, out, n);
}

void RicianFading::sampleDbBatch(Rng& rng, double* out, std::size_t n) const {
  const double losAmplitude = std::sqrt(k_ / (k_ + 1.0));
  const double scatterSigma = std::sqrt(1.0 / (2.0 * (k_ + 1.0)));
  thread_local std::vector<double> z;
  z.resize(2 * n);
  rng.normalBatch(z.data(), 2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    // Same association as the scalar path: rng.normal(0, sigma) returns
    // 0.0 + sigma * z, then losAmplitude is added.
    const double re = losAmplitude + (0.0 + scatterSigma * z[2 * i]);
    const double im = 0.0 + scatterSigma * z[2 * i + 1];
    out[i] = re * re + im * im;
  }
  vmath::vlinear2db(out, out, n);
}

void NakagamiFading::sampleDbBatch(Rng& rng, double* out,
                                   std::size_t n) const {
  // The rejection sampler stays scalar (data-dependent draw counts), but
  // its normals now ride the vmath Box-Muller and the final dB conversion
  // is one batched pass.
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = sampleGamma(m_, rng) / m_;
  }
  vmath::vlinear2db(out, out, n);
}

}  // namespace vanet::channel
