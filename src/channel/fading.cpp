#include "channel/fading.h"

#include <cmath>

#include "util/assert.h"

namespace vanet::channel {

double RayleighFading::sampleDb(Rng& rng) const {
  // Power gain is exponential with unit mean; guard against log(0).
  double u = rng.uniform();
  while (u <= 0.0) u = rng.uniform();
  const double power = -std::log(u);
  return 10.0 * std::log10(power);
}

RicianFading::RicianFading(double kFactor) : k_(kFactor) {
  VANET_ASSERT(k_ >= 0.0, "Rician K-factor must be non-negative");
}

NakagamiFading::NakagamiFading(double m) : m_(m) {
  VANET_ASSERT(m_ >= 0.5, "Nakagami m must be at least 0.5");
}

namespace {

/// Marsaglia-Tsang gamma sampler for shape >= 0.5 (unit scale). For
/// shape < 1 uses the standard boost Gamma(a) = Gamma(a+1) * U^(1/a).
double sampleGamma(double shape, Rng& rng) {
  if (shape < 1.0) {
    double u = rng.uniform();
    while (u <= 0.0) u = rng.uniform();
    return sampleGamma(shape + 1.0, rng) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = rng.normal();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    const double u = rng.uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

}  // namespace

double NakagamiFading::sampleDb(Rng& rng) const {
  // Power ~ Gamma(m, 1/m): unit mean, variance 1/m.
  const double power = sampleGamma(m_, rng) / m_;
  return 10.0 * std::log10(std::max(power, 1e-12));
}

double RicianFading::sampleDb(Rng& rng) const {
  // Complex gain = sqrt(K/(K+1)) + CN(0, 1/(K+1)); power normalised to
  // unit mean.
  const double losAmplitude = std::sqrt(k_ / (k_ + 1.0));
  const double scatterSigma = std::sqrt(1.0 / (2.0 * (k_ + 1.0)));
  const double re = losAmplitude + rng.normal(0.0, scatterSigma);
  const double im = rng.normal(0.0, scatterSigma);
  const double power = re * re + im * im;
  return 10.0 * std::log10(std::max(power, 1e-12));
}

// Batched variants: same per-draw math via the (devirtualised, same-TU)
// scalar sampler, so values and rng positions match the scalar loop bit
// for bit -- the batch only removes the per-receiver virtual dispatch.
void RayleighFading::sampleDbBatch(Rng& rng, double* out,
                                   std::size_t n) const {
  for (std::size_t i = 0; i < n; ++i) out[i] = RayleighFading::sampleDb(rng);
}

void RicianFading::sampleDbBatch(Rng& rng, double* out, std::size_t n) const {
  for (std::size_t i = 0; i < n; ++i) out[i] = RicianFading::sampleDb(rng);
}

void NakagamiFading::sampleDbBatch(Rng& rng, double* out,
                                   std::size_t n) const {
  for (std::size_t i = 0; i < n; ++i) out[i] = NakagamiFading::sampleDb(rng);
}

}  // namespace vanet::channel
