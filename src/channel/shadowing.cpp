#include "channel/shadowing.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace vanet::channel {

ObstructedShadowing::ObstructedShadowing(
    std::unique_ptr<ShadowingProvider> base,
    std::function<double(geom::Vec2)> obstructionDb)
    : base_(std::move(base)), obstructionDb_(std::move(obstructionDb)) {
  VANET_ASSERT(base_ != nullptr, "obstruction needs a base provider");
  VANET_ASSERT(obstructionDb_ != nullptr, "obstruction function required");
}

double ObstructedShadowing::shadowDb(NodeId tx, geom::Vec2 txPos, NodeId rx,
                                     geom::Vec2 rxPos) {
  const double base = base_->shadowDb(tx, txPos, rx, rxPos);
  const bool txInfra = tx >= kFirstApId;
  const bool rxInfra = rx >= kFirstApId;
  if (txInfra == rxInfra) return base;  // car<->car: no corner blocking
  const geom::Vec2 mobilePos = txInfra ? rxPos : txPos;
  return base - obstructionDb_(mobilePos);
}

void ObstructedShadowing::shadowDbBatch(NodeId tx, geom::Vec2 txPos,
                                        const NodeId* rxIds, const double* rxX,
                                        const double* rxY, double* out,
                                        std::size_t n) {
  base_->shadowDbBatch(tx, txPos, rxIds, rxX, rxY, out, n);
  const bool txInfra = tx >= kFirstApId;
  if (txInfra) {
    for (std::size_t i = 0; i < n; ++i) {
      if (rxIds[i] < kFirstApId) out[i] -= obstructionDb_({rxX[i], rxY[i]});
    }
  } else {
    // Mobile transmitter: every infra link is blocked as a function of the
    // same transmitter position -- evaluate it once.
    bool haveTxLoss = false;
    double txLossDb = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (rxIds[i] < kFirstApId) continue;  // car<->car: no corner blocking
      if (!haveTxLoss) {
        txLossDb = obstructionDb_(txPos);
        haveTxLoss = true;
      }
      out[i] -= txLossDb;
    }
  }
}

CorrelatedRoadShadowing::CorrelatedRoadShadowing(const geom::Polyline& road,
                                                 ShadowingParams params, Rng rng)
    : road_(road), params_(params), rng_(rng) {
  VANET_ASSERT(params_.gridStepMetres > 0.0, "grid step must be positive");
  VANET_ASSERT(params_.decorrelationMetres > 0.0,
               "decorrelation distance must be positive");
  const auto cells = static_cast<std::size_t>(
                         std::ceil(road_.length() / params_.gridStepMetres)) +
                     1;
  field_.reserve(cells);
  // Stationary AR(1): x[k] = rho x[k-1] + sqrt(1-rho^2) sigma n[k].
  const double rho =
      std::exp(-params_.gridStepMetres / params_.decorrelationMetres);
  const double innovation =
      params_.infraSigmaDb * std::sqrt(1.0 - rho * rho);
  double x = rng_.normal(0.0, params_.infraSigmaDb);
  field_.push_back(x);
  for (std::size_t k = 1; k < cells; ++k) {
    x = rho * x + rng_.normal(0.0, innovation);
    field_.push_back(x);
  }
}

double CorrelatedRoadShadowing::fieldAt(double arc) const {
  const double clamped = std::clamp(arc, 0.0, road_.length());
  const double pos = clamped / params_.gridStepMetres;
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, field_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return field_[lo] * (1.0 - frac) + field_[hi] * frac;
}

double CorrelatedRoadShadowing::pairConstant(NodeId a, NodeId b) {
  const auto [lo, hi] = std::minmax(a, b);
  const std::uint64_t key =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(lo)) << 32) |
      static_cast<std::uint32_t>(hi);
  if (const double* hit = pairDb_.find(key)) return *hit;
  const double value = rng_.normal(0.0, params_.c2cSigmaDb);
  return pairDb_.findOrEmplace(key, value);
}

double CorrelatedRoadShadowing::shadowDb(NodeId tx, geom::Vec2 txPos, NodeId rx,
                                         geom::Vec2 rxPos) {
  const bool txInfra = isInfrastructure(tx);
  const bool rxInfra = isInfrastructure(rx);
  if (txInfra == rxInfra) {
    // car<->car (or AP<->AP, unused): per-pair constant, symmetric.
    return pairConstant(tx, rx);
  }
  const geom::Vec2 mobilePos = txInfra ? rxPos : txPos;
  return fieldAt(road_.project(mobilePos));
}

void CorrelatedRoadShadowing::shadowDbBatch(NodeId tx, geom::Vec2 txPos,
                                            const NodeId* rxIds,
                                            const double* rxX,
                                            const double* rxY, double* out,
                                            std::size_t n) {
  const bool txInfra = isInfrastructure(tx);
  if (txInfra) {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = isInfrastructure(rxIds[i])
                   ? pairConstant(tx, rxIds[i])
                   : fieldAt(road_.project({rxX[i], rxY[i]}));
    }
    return;
  }
  // Mobile transmitter: every infra receiver reads the field at the same
  // projected transmitter arc. Project once per batch; pair-constant draws
  // still happen lazily in receiver order on this provider's own stream,
  // exactly as the scalar loop would have drawn them.
  bool haveTxField = false;
  double txFieldDb = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (isInfrastructure(rxIds[i])) {
      if (!haveTxField) {
        txFieldDb = fieldAt(road_.project(txPos));
        haveTxField = true;
      }
      out[i] = txFieldDb;
    } else {
      out[i] = pairConstant(tx, rxIds[i]);
    }
  }
}

}  // namespace vanet::channel
