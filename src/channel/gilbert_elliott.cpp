#include "channel/gilbert_elliott.h"

#include "util/assert.h"

namespace vanet::channel {

GilbertElliott::GilbertElliott(GilbertElliottParams params, Rng rng)
    : params_(params), rng_(rng) {
  VANET_ASSERT(params_.meanGoodSeconds > 0.0 && params_.meanBadSeconds > 0.0,
               "mean sojourn times must be positive");
}

void GilbertElliott::advanceTo(sim::SimTime now) {
  if (!initialised_) {
    // Start in the stationary state distribution.
    const double pGood = params_.meanGoodSeconds /
                         (params_.meanGoodSeconds + params_.meanBadSeconds);
    state_ = rng_.bernoulli(pGood) ? State::kGood : State::kBad;
    const double mean = state_ == State::kGood ? params_.meanGoodSeconds
                                               : params_.meanBadSeconds;
    stateUntil_ = sim::SimTime::seconds(rng_.exponential(1.0 / mean));
    initialised_ = true;
  }
  while (stateUntil_ < now) {
    state_ = state_ == State::kGood ? State::kBad : State::kGood;
    const double mean = state_ == State::kGood ? params_.meanGoodSeconds
                                               : params_.meanBadSeconds;
    stateUntil_ += sim::SimTime::seconds(rng_.exponential(1.0 / mean));
  }
}

bool GilbertElliott::loseFrame(sim::SimTime now) {
  advanceTo(now);
  const double p =
      state_ == State::kGood ? params_.lossInGood : params_.lossInBad;
  return rng_.bernoulli(p);
}

double GilbertElliott::stationaryLoss(const GilbertElliottParams& params) noexcept {
  const double total = params.meanGoodSeconds + params.meanBadSeconds;
  return (params.meanGoodSeconds * params.lossInGood +
          params.meanBadSeconds * params.lossInBad) /
         total;
}

}  // namespace vanet::channel
