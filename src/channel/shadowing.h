#pragma once

/// \file shadowing.h
/// Log-normal shadowing with Gudmundson-style spatial correlation.
///
/// AP->car links read a 1-D correlated Gaussian field indexed by the car's
/// arc position along the road: two cars close together see nearly the
/// same shadowing (this is what correlates car 2 and car 3 after the
/// corner-C convergence). Car->car links use a per-pair constant drawn
/// once per round (platoon members keep line of sight, so the variance is
/// small). The field is resampled every round.

#include <cstddef>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "geom/polyline.h"
#include "geom/vec2.h"
#include "util/flat_hash.h"
#include "util/rng.h"
#include "util/types.h"

namespace vanet::channel {

/// Interface: shadowing (dB) for a directed link at given positions.
class ShadowingProvider {
 public:
  virtual ~ShadowingProvider() = default;

  /// Shadowing term in dB added to the link budget (may be negative).
  virtual double shadowDb(NodeId tx, geom::Vec2 txPos, NodeId rx,
                          geom::Vec2 rxPos) = 0;

  /// Batched shadowDb over all receivers of one transmission (struct-of-
  /// arrays positions). Base implementation: scalar loop in receiver
  /// order. Overrides must keep bit-identical values and draw their RNG in
  /// the same receiver order.
  virtual void shadowDbBatch(NodeId tx, geom::Vec2 txPos, const NodeId* rxIds,
                             const double* rxX, const double* rxY, double* out,
                             std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = shadowDb(tx, txPos, rxIds[i], {rxX[i], rxY[i]});
    }
  }
};

/// Zero shadowing (for unit tests and idealised sweeps).
class NoShadowing final : public ShadowingProvider {
 public:
  double shadowDb(NodeId, geom::Vec2, NodeId, geom::Vec2) override { return 0.0; }
  void shadowDbBatch(NodeId, geom::Vec2, const NodeId*, const double*,
                     const double*, double* out, std::size_t n) override {
    for (std::size_t i = 0; i < n; ++i) out[i] = 0.0;
  }
};

/// Parameters of the correlated road-shadowing model.
struct ShadowingParams {
  double infraSigmaDb = 6.0;   ///< std-dev of AP->car shadowing
  double decorrelationMetres = 18.0;  ///< Gudmundson decorrelation distance
  double gridStepMetres = 3.0;        ///< field sampling grain
  double c2cSigmaDb = 2.0;     ///< std-dev of car->car per-pair constant
};

/// Decorator that subtracts a deterministic obstruction loss for
/// infrastructure links, as a function of the mobile endpoint's position.
/// Used to model urban corner blocking: once a car turns off the covered
/// street, buildings cut line of sight to the window-mounted AP far faster
/// than distance alone would.
class ObstructedShadowing final : public ShadowingProvider {
 public:
  /// `obstructionDb(pos)` returns extra loss (>= 0 dB) for a mobile at
  /// `pos`; applied only when exactly one endpoint is infrastructure
  /// (id >= kFirstApId).
  ObstructedShadowing(std::unique_ptr<ShadowingProvider> base,
                      std::function<double(geom::Vec2)> obstructionDb);

  double shadowDb(NodeId tx, geom::Vec2 txPos, NodeId rx,
                  geom::Vec2 rxPos) override;
  void shadowDbBatch(NodeId tx, geom::Vec2 txPos, const NodeId* rxIds,
                     const double* rxX, const double* rxY, double* out,
                     std::size_t n) override;

 private:
  std::unique_ptr<ShadowingProvider> base_;
  std::function<double(geom::Vec2)> obstructionDb_;
};

/// Correlated shadowing along a road polyline (see file comment).
///
/// Nodes with id >= kFirstApId are infrastructure; a link is "infra" when
/// either endpoint is infrastructure, and reads the spatial field at the
/// mobile endpoint's projected arc position.
class CorrelatedRoadShadowing final : public ShadowingProvider {
 public:
  CorrelatedRoadShadowing(const geom::Polyline& road, ShadowingParams params,
                          Rng rng);

  double shadowDb(NodeId tx, geom::Vec2 txPos, NodeId rx,
                  geom::Vec2 rxPos) override;
  /// Batched variant: when a car transmits to several APs, every such link
  /// reads the field at the *transmitter's* projected arc -- computed once
  /// per batch instead of once per AP (the road projection is the single
  /// most expensive term of the link chain).
  void shadowDbBatch(NodeId tx, geom::Vec2 txPos, const NodeId* rxIds,
                     const double* rxX, const double* rxY, double* out,
                     std::size_t n) override;

  /// Field value at road arc `s` (linear interpolation between grid points).
  double fieldAt(double arc) const;

 private:
  static bool isInfrastructure(NodeId id) noexcept { return id >= kFirstApId; }

  double pairConstant(NodeId a, NodeId b);

  const geom::Polyline& road_;
  ShadowingParams params_;
  Rng rng_;
  std::vector<double> field_;  // AR(1) samples every gridStepMetres
  util::FlatMap64<double> pairDb_;  // lazily sampled per unordered pair
};

}  // namespace vanet::channel
