#pragma once

/// \file gilbert_elliott.h
/// Two-state (Good/Bad) continuous-time burst-loss overlay. Useful to add
/// loss burstiness beyond what block fading produces, and as a standalone
/// channel for protocol unit tests with exactly controllable loss traces.

#include "sim/time.h"
#include "util/rng.h"

namespace vanet::channel {

/// Parameters of the continuous-time Gilbert–Elliott chain.
struct GilbertElliottParams {
  double meanGoodSeconds = 4.0;  ///< mean sojourn in Good
  double meanBadSeconds = 0.6;   ///< mean sojourn in Bad
  double lossInGood = 0.0;       ///< frame loss probability in Good
  double lossInBad = 0.8;        ///< frame loss probability in Bad
};

/// One directed link's burst state. Frames query loseFrame() with the
/// current simulation time; the chain advances by sampling exponential
/// sojourns over the elapsed interval.
class GilbertElliott {
 public:
  enum class State { kGood, kBad };

  GilbertElliott(GilbertElliottParams params, Rng rng);

  /// Advances the chain to `now` and samples whether a frame sent at `now`
  /// is lost by the burst process.
  bool loseFrame(sim::SimTime now);

  State state() const noexcept { return state_; }

  /// Long-run average frame loss probability of the chain.
  static double stationaryLoss(const GilbertElliottParams& params) noexcept;

 private:
  void advanceTo(sim::SimTime now);

  GilbertElliottParams params_;
  Rng rng_;
  State state_ = State::kGood;
  sim::SimTime stateUntil_{};  // sampled end of the current sojourn
  bool initialised_ = false;
};

}  // namespace vanet::channel
