#include "channel/link_model.h"

#include "util/assert.h"

namespace vanet::channel {
namespace {

std::uint64_t packLink(NodeId tx, NodeId rx) noexcept {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(tx)) << 32) |
         static_cast<std::uint32_t>(rx);
}

}  // namespace

void LinkModel::planBatch(NodeId tx, geom::Vec2 txPos, double txPowerDbm,
                          LinkBatch& batch, Rng& rng) {
  // Scalar reference path: per receiver in order, mean then faded power --
  // the exact draw order of a per-receiver loop. Kept virtual-call-per-
  // receiver on purpose: it is the behavioural spec batched overrides are
  // tested against.
  const std::size_t n = batch.size();
  double* mean = batch.meanDbm();
  double* faded = batch.fadedDbm();
  for (std::size_t i = 0; i < n; ++i) {
    mean[i] =
        meanRxPowerDbm(tx, txPos, txPowerDbm, batch.rxIds()[i], batch.rxPos(i));
    faded[i] = fadedRxPowerDbm(mean[i], rng);
  }
}

void LinkModel::successProbabilityBatch(PhyMode mode, const double* sinrDb,
                                        int bits, double* pOut,
                                        std::size_t n) const {
  for (std::size_t i = 0; i < n; ++i) {
    pOut[i] = successProbability(mode, sinrDb[i], bits);
  }
}

CompositeLinkModel::CompositeLinkModel(
    std::unique_ptr<PathLossModel> infraPathLoss,
    std::unique_ptr<PathLossModel> carToCarPathLoss,
    std::unique_ptr<ShadowingProvider> shadowing,
    std::unique_ptr<FadingModel> fading, LinkBudget budget)
    : infraPathLoss_(std::move(infraPathLoss)),
      carToCarPathLoss_(std::move(carToCarPathLoss)),
      shadowing_(std::move(shadowing)), fading_(std::move(fading)),
      budget_(budget) {
  VANET_ASSERT(infraPathLoss_ != nullptr, "infra path-loss model required");
  VANET_ASSERT(carToCarPathLoss_ != nullptr, "c2c path-loss model required");
  VANET_ASSERT(shadowing_ != nullptr, "shadowing provider required");
  VANET_ASSERT(fading_ != nullptr, "fading model required");
}

void CompositeLinkModel::enableBurstOverlay(GilbertElliottParams params, Rng rng) {
  burstParams_ = params;
  burstRng_ = rng;
  burstChains_.clear();
}

double CompositeLinkModel::meanRxPowerDbm(NodeId tx, geom::Vec2 txPos,
                                          double txPowerDbm, NodeId rx,
                                          geom::Vec2 rxPos) {
  const double d = geom::distance(txPos, rxPos);
  const bool infraLink = tx >= kFirstApId || rx >= kFirstApId;
  const PathLossModel& pathLoss =
      infraLink ? *infraPathLoss_ : *carToCarPathLoss_;
  return txPowerDbm - pathLoss.lossDb(d) +
         shadowing_->shadowDb(tx, txPos, rx, rxPos);
}

double CompositeLinkModel::fadedRxPowerDbm(double meanDbm, Rng& rng) {
  return meanDbm + fading_->sampleDb(rng);
}

double CompositeLinkModel::successProbability(PhyMode mode, double sinrDb,
                                              int bits) const {
  return frameSuccessProbability(mode, sinrDb, bits);
}

void CompositeLinkModel::planBatch(NodeId tx, geom::Vec2 txPos,
                                   double txPowerDbm, LinkBatch& batch,
                                   Rng& rng) {
  const std::size_t n = batch.size();
  if (n == 0) return;  // no receivers: no draws on any stream
  const NodeId* rxIds = batch.rxIds();
  const double* rxX = batch.rxX();
  const double* rxY = batch.rxY();
  double* dist = batch.distance();
  double* loss = batch.lossDb();
  double* shadow = batch.shadowDb();
  double* fade = batch.fadeDb();
  double* mean = batch.meanDbm();
  double* faded = batch.fadedDbm();

  // Stage 1: distances through geom::distance (sqrt of squares), the same
  // expression the scalar path evaluates -- bit-identical and free to
  // auto-vectorize.
  for (std::size_t i = 0; i < n; ++i) {
    dist[i] = geom::distance(txPos, {rxX[i], rxY[i]});
  }

  // Stage 2: path loss, split by link class exactly as the scalar path
  // (infra when either endpoint is an AP).
  if (tx >= kFirstApId) {
    infraPathLoss_->lossDbBatch(dist, loss, n);
  } else {
    carToCarPathLoss_->lossDbBatch(dist, loss, n);
    for (std::size_t i = 0; i < n; ++i) {
      if (rxIds[i] >= kFirstApId) loss[i] = infraPathLoss_->lossDb(dist[i]);
    }
  }

  // Stage 3: shadowing, one batched pass. Draws (c2c pair constants) occur
  // in receiver order on the shadowing provider's own stream.
  shadowing_->shadowDbBatch(tx, txPos, rxIds, rxX, rxY, shadow, n);

  // Stage 4: mean power. Same association as the scalar expression
  // (txPower - loss) + shadow.
  for (std::size_t i = 0; i < n; ++i) {
    mean[i] = txPowerDbm - loss[i] + shadow[i];
  }

  // Stage 5: fading draws in receiver order on the caller's stream, then
  // faded = mean + fade as in the scalar composition.
  fading_->sampleDbBatch(rng, fade, n);
  for (std::size_t i = 0; i < n; ++i) {
    faded[i] = mean[i] + fade[i];
  }
}

void CompositeLinkModel::successProbabilityBatch(PhyMode mode,
                                                 const double* sinrDb, int bits,
                                                 double* pOut,
                                                 std::size_t n) const {
  // Batched BER->PER chain; bit-identical to per-element
  // frameSuccessProbability (the LinkModel base-class reference loop).
  frameSuccessProbabilityBatch(mode, sinrDb, bits, pOut, n);
}

bool CompositeLinkModel::burstLoss(NodeId tx, NodeId rx, sim::SimTime now,
                                   int /*frameClass*/) {
  if (!burstParams_.has_value()) return false;
  const std::uint64_t key = packLink(tx, rx);
  if (GilbertElliott* chain = burstChains_.find(key)) {
    return chain->loseFrame(now);
  }
  // Derive a per-link chain seed deterministically from the pair, so chain
  // state is independent of link discovery order.
  Rng chainRng = burstRng_->child(key);
  return burstChains_.findOrEmplace(key, GilbertElliott{*burstParams_, chainRng})
      .loseFrame(now);
}

}  // namespace vanet::channel
