#include "channel/link_model.h"

#include "util/assert.h"

namespace vanet::channel {

CompositeLinkModel::CompositeLinkModel(
    std::unique_ptr<PathLossModel> infraPathLoss,
    std::unique_ptr<PathLossModel> carToCarPathLoss,
    std::unique_ptr<ShadowingProvider> shadowing,
    std::unique_ptr<FadingModel> fading, LinkBudget budget)
    : infraPathLoss_(std::move(infraPathLoss)),
      carToCarPathLoss_(std::move(carToCarPathLoss)),
      shadowing_(std::move(shadowing)), fading_(std::move(fading)),
      budget_(budget) {
  VANET_ASSERT(infraPathLoss_ != nullptr, "infra path-loss model required");
  VANET_ASSERT(carToCarPathLoss_ != nullptr, "c2c path-loss model required");
  VANET_ASSERT(shadowing_ != nullptr, "shadowing provider required");
  VANET_ASSERT(fading_ != nullptr, "fading model required");
}

void CompositeLinkModel::enableBurstOverlay(GilbertElliottParams params, Rng rng) {
  burstParams_ = params;
  burstRng_ = rng;
  burstChains_.clear();
}

double CompositeLinkModel::meanRxPowerDbm(NodeId tx, geom::Vec2 txPos,
                                          double txPowerDbm, NodeId rx,
                                          geom::Vec2 rxPos) {
  const double d = geom::distance(txPos, rxPos);
  const bool infraLink = tx >= kFirstApId || rx >= kFirstApId;
  const PathLossModel& pathLoss =
      infraLink ? *infraPathLoss_ : *carToCarPathLoss_;
  return txPowerDbm - pathLoss.lossDb(d) +
         shadowing_->shadowDb(tx, txPos, rx, rxPos);
}

double CompositeLinkModel::fadedRxPowerDbm(double meanDbm, Rng& rng) {
  return meanDbm + fading_->sampleDb(rng);
}

double CompositeLinkModel::successProbability(PhyMode mode, double sinrDb,
                                              int bits) const {
  return frameSuccessProbability(mode, sinrDb, bits);
}

bool CompositeLinkModel::burstLoss(NodeId tx, NodeId rx, sim::SimTime now,
                                   int /*frameClass*/) {
  if (!burstParams_.has_value()) return false;
  const auto key = std::make_pair(tx, rx);
  auto it = burstChains_.find(key);
  if (it == burstChains_.end()) {
    // Derive a per-link chain seed deterministically from the pair.
    Rng chainRng = burstRng_->child(
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(tx)) << 32) |
        static_cast<std::uint32_t>(rx));
    it = burstChains_.emplace(key, GilbertElliott{*burstParams_, chainRng}).first;
  }
  return it->second.loseFrame(now);
}

}  // namespace vanet::channel
