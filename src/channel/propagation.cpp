#include "channel/propagation.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/assert.h"

namespace vanet::channel {
namespace {

constexpr double kSpeedOfLight = 2.99792458e8;  // m/s
constexpr double kMinDistance = 1.0;            // metres

}  // namespace

FreeSpacePathLoss::FreeSpacePathLoss(double frequencyHz) {
  VANET_ASSERT(frequencyHz > 0.0, "carrier frequency must be positive");
  fixedTermDb_ =
      20.0 * std::log10(4.0 * std::numbers::pi * frequencyHz / kSpeedOfLight);
}

double FreeSpacePathLoss::lossDb(double distanceMetres) const {
  const double d = std::max(distanceMetres, kMinDistance);
  return fixedTermDb_ + 20.0 * std::log10(d);
}

LogDistancePathLoss::LogDistancePathLoss(double exponent, double referenceLossDb,
                                         double referenceDistance)
    : exponent_(exponent), referenceLossDb_(referenceLossDb),
      referenceDistance_(referenceDistance) {
  VANET_ASSERT(exponent_ > 0.0, "path-loss exponent must be positive");
  VANET_ASSERT(referenceDistance_ > 0.0, "reference distance must be positive");
}

double LogDistancePathLoss::lossDb(double distanceMetres) const {
  const double d = std::max(distanceMetres, kMinDistance);
  return referenceLossDb_ +
         10.0 * exponent_ * std::log10(d / referenceDistance_);
}

TwoRayGroundPathLoss::TwoRayGroundPathLoss(double txHeightMetres,
                                           double rxHeightMetres,
                                           double frequencyHz)
    : txHeight_(txHeightMetres), rxHeight_(rxHeightMetres),
      freeSpace_(frequencyHz) {
  VANET_ASSERT(txHeight_ > 0.0 && rxHeight_ > 0.0,
               "antenna heights must be positive");
  const double wavelength = kSpeedOfLight / frequencyHz;
  crossover_ = 4.0 * std::numbers::pi * txHeight_ * rxHeight_ / wavelength;
}

double TwoRayGroundPathLoss::lossDb(double distanceMetres) const {
  const double d = std::max(distanceMetres, kMinDistance);
  if (d < crossover_) {
    return freeSpace_.lossDb(d);
  }
  // Beyond the crossover the two-ray model: PL = 40 log10(d) - 20 log10(ht hr).
  return 40.0 * std::log10(d) - 20.0 * std::log10(txHeight_ * rxHeight_);
}

// Batched variants: identical per-element math through the same-TU scalar
// function (devirtualised and inlinable), so outputs match bit for bit.
void FreeSpacePathLoss::lossDbBatch(const double* distanceMetres, double* out,
                                    std::size_t n) const {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = FreeSpacePathLoss::lossDb(distanceMetres[i]);
  }
}

void LogDistancePathLoss::lossDbBatch(const double* distanceMetres, double* out,
                                      std::size_t n) const {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = LogDistancePathLoss::lossDb(distanceMetres[i]);
  }
}

void TwoRayGroundPathLoss::lossDbBatch(const double* distanceMetres,
                                       double* out, std::size_t n) const {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = TwoRayGroundPathLoss::lossDb(distanceMetres[i]);
  }
}

}  // namespace vanet::channel
