#include "channel/propagation.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/assert.h"
#include "util/vmath.h"

namespace vanet::channel {
namespace {

constexpr double kSpeedOfLight = 2.99792458e8;  // m/s
constexpr double kMinDistance = 1.0;            // metres

}  // namespace

FreeSpacePathLoss::FreeSpacePathLoss(double frequencyHz) {
  VANET_ASSERT(frequencyHz > 0.0, "carrier frequency must be positive");
  fixedTermDb_ =
      20.0 * std::log10(4.0 * std::numbers::pi * frequencyHz / kSpeedOfLight);
}

double FreeSpacePathLoss::lossDb(double distanceMetres) const {
  const double d = std::max(distanceMetres, kMinDistance);
  return fixedTermDb_ + 20.0 * vmath::vlog10(d);
}

LogDistancePathLoss::LogDistancePathLoss(double exponent, double referenceLossDb,
                                         double referenceDistance)
    : exponent_(exponent), slopeDb_(10.0 * exponent),
      referenceLossDb_(referenceLossDb), referenceDistance_(referenceDistance) {
  VANET_ASSERT(exponent_ > 0.0, "path-loss exponent must be positive");
  VANET_ASSERT(referenceDistance_ > 0.0, "reference distance must be positive");
}

double LogDistancePathLoss::lossDb(double distanceMetres) const {
  const double d = std::max(distanceMetres, kMinDistance);
  return referenceLossDb_ + slopeDb_ * vmath::vlog10(d / referenceDistance_);
}

TwoRayGroundPathLoss::TwoRayGroundPathLoss(double txHeightMetres,
                                           double rxHeightMetres,
                                           double frequencyHz)
    : txHeight_(txHeightMetres), rxHeight_(rxHeightMetres),
      freeSpace_(frequencyHz) {
  VANET_ASSERT(txHeight_ > 0.0 && rxHeight_ > 0.0,
               "antenna heights must be positive");
  const double wavelength = kSpeedOfLight / frequencyHz;
  crossover_ = 4.0 * std::numbers::pi * txHeight_ * rxHeight_ / wavelength;
  heightTermDb_ = 20.0 * std::log10(txHeight_ * rxHeight_);
}

double TwoRayGroundPathLoss::lossDb(double distanceMetres) const {
  const double d = std::max(distanceMetres, kMinDistance);
  if (d < crossover_) {
    return freeSpace_.lossDb(d);
  }
  // Beyond the crossover the two-ray model: PL = 40 log10(d) - 20 log10(ht hr).
  return 40.0 * vmath::vlog10(d) - heightTermDb_;
}

// Batched variants: one clamp pass, one batched vlog10, one elementwise
// finish -- the same per-element op sequence as the scalar lossDb (which
// runs the identical vmath kernel), so outputs match bit for bit.

void FreeSpacePathLoss::lossDbBatch(const double* distanceMetres, double* out,
                                    std::size_t n) const {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = std::max(distanceMetres[i], kMinDistance);
  }
  vmath::vlog10(out, out, n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = fixedTermDb_ + 20.0 * out[i];
  }
}

void LogDistancePathLoss::lossDbBatch(const double* distanceMetres, double* out,
                                      std::size_t n) const {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = std::max(distanceMetres[i], kMinDistance) / referenceDistance_;
  }
  vmath::vlog10(out, out, n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = referenceLossDb_ + slopeDb_ * out[i];
  }
}

void TwoRayGroundPathLoss::lossDbBatch(const double* distanceMetres,
                                       double* out, std::size_t n) const {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = std::max(distanceMetres[i], kMinDistance);
  }
  vmath::vlog10(out, out, n);
  const double fsFixed = freeSpace_.fixedTermDb();
  for (std::size_t i = 0; i < n; ++i) {
    const double d = std::max(distanceMetres[i], kMinDistance);
    out[i] = d < crossover_ ? fsFixed + 20.0 * out[i]
                            : 40.0 * out[i] - heightTermDb_;
  }
}

}  // namespace vanet::channel
