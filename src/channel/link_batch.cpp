#include "channel/link_batch.h"

namespace vanet::channel {

void LinkBatch::prepare() {
  const std::size_t n = ids_.size();
  dist_.resize(n);
  loss_.resize(n);
  shadow_.resize(n);
  fade_.resize(n);
  mean_.resize(n);
  faded_.resize(n);
}

}  // namespace vanet::channel
