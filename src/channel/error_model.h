#pragma once

/// \file error_model.h
/// SNR -> bit error rate -> frame success probability for the 802.11b/g
/// PHY modes used in the paper (the testbed ran 802.11g at 1 Mbps, i.e.
/// the DSSS DBPSK mode). The BER expressions are the standard analytic
/// approximations (DBPSK/DQPSK exact, CCK and ERP-OFDM approximated);
/// absolute calibration is done at the link-budget level, the role of this
/// module is a physically shaped S-curve.

#include <cstddef>
#include <string_view>

namespace vanet::channel {

/// PHY transmission modes (a subset sufficient for the experiments).
enum class PhyMode {
  kDsss1Mbps,   ///< DBPSK, 11-chip Barker (the paper's mode)
  kDsss2Mbps,   ///< DQPSK, 11-chip Barker
  kCck5_5Mbps,  ///< CCK
  kCck11Mbps,   ///< CCK
  kErpOfdm6Mbps,
  kErpOfdm12Mbps,
  kErpOfdm24Mbps,
  kErpOfdm54Mbps,
};

/// Data rate of a mode in Mbit/s.
double bitrateMbps(PhyMode mode) noexcept;

/// Human-readable mode name (for logs and bench output).
std::string_view modeName(PhyMode mode) noexcept;

/// Bit error probability at the given received SNR (dB over the 22 MHz
/// channel noise bandwidth for DSSS/CCK, 20 MHz for ERP).
double bitErrorRate(PhyMode mode, double snrDb) noexcept;

/// Probability that a frame of `bits` payload+header bits is received
/// without error: (1 - BER)^bits, with the PLCP preamble assumed robust.
double frameSuccessProbability(PhyMode mode, double snrDb, int bits) noexcept;

/// Batched frameSuccessProbability over `n` SINR values (one transmission's
/// surviving receivers): out[i] == frameSuccessProbability(mode, sinrDb[i],
/// bits) bit for bit, with the transcendentals running through the batched
/// vmath kernels. `out` may alias `sinrDb` exactly.
void frameSuccessProbabilityBatch(PhyMode mode, const double* sinrDb, int bits,
                                  double* out, std::size_t n) noexcept;

}  // namespace vanet::channel
