#pragma once

/// \file link_model.h
/// The composite link model: large-scale path loss + correlated shadowing
/// + per-frame fading + optional Gilbert–Elliott burst overlay, with the
/// receiver thresholds the radio environment needs (sensitivity, carrier
/// sense, capture).

#include <memory>
#include <optional>
#include <utility>

#include "channel/error_model.h"
#include "channel/fading.h"
#include "channel/gilbert_elliott.h"
#include "channel/link_batch.h"
#include "channel/propagation.h"
#include "channel/shadowing.h"
#include "geom/vec2.h"
#include "sim/time.h"
#include "util/flat_hash.h"
#include "util/rng.h"
#include "util/types.h"

namespace vanet::channel {

/// Receiver-side constants of the link budget.
struct LinkBudget {
  double noiseFloorDbm = -94.0;      ///< thermal noise + NF over 22 MHz
  double sensitivityDbm = -96.0;     ///< below this a frame is undetectable
  double carrierSenseDbm = -92.0;    ///< energy-detect threshold for CSMA
  double captureThresholdDb = 8.0;   ///< min SINR to attempt capture
};

/// Abstract link model consumed by the radio environment.
class LinkModel {
 public:
  virtual ~LinkModel() = default;

  /// Mean received power in dBm (path loss + shadowing, no fading): used
  /// for carrier sensing and as the base for per-frame fading draws.
  virtual double meanRxPowerDbm(NodeId tx, geom::Vec2 txPos, double txPowerDbm,
                                NodeId rx, geom::Vec2 rxPos) = 0;

  /// Per-frame faded received power in dBm given the mean.
  virtual double fadedRxPowerDbm(double meanDbm, Rng& rng) = 0;

  /// Frame decode probability at the given post-interference SINR.
  virtual double successProbability(PhyMode mode, double sinrDb,
                                    int bits) const = 0;

  /// Fills `batch.meanDbm()`/`batch.fadedDbm()` for every gathered
  /// receiver of one transmission. The base implementation is the scalar
  /// reference: per receiver in order, meanRxPowerDbm then fadedRxPowerDbm
  /// -- exactly the call (and RNG draw) sequence of a per-receiver loop.
  /// Concrete models may override with staged struct-of-arrays passes, but
  /// must produce bit-identical outputs and identical positions on every
  /// RNG stream (the reference-equivalence tests assert this).
  /// `batch.prepare()` must have been called.
  virtual void planBatch(NodeId tx, geom::Vec2 txPos, double txPowerDbm,
                         LinkBatch& batch, Rng& rng);

  /// Batched successProbability over `n` SINR values (one per surviving
  /// receiver, in receiver order). Base implementation: scalar loop.
  virtual void successProbabilityBatch(PhyMode mode, const double* sinrDb,
                                       int bits, double* pOut,
                                       std::size_t n) const;

  /// Stateful burst-loss overlay for a directed link; default: none.
  /// `frameClass` is an opaque tag supplied by the caller (the MAC passes
  /// its FrameKind) so overlays and test doubles can target frame types;
  /// models are free to ignore it.
  virtual bool burstLoss(NodeId /*tx*/, NodeId /*rx*/, sim::SimTime /*now*/,
                         int /*frameClass*/) {
    return false;
  }

  virtual const LinkBudget& budget() const = 0;
};

/// Standard composition used by all experiments. Owns its parts.
///
/// Infrastructure links (either endpoint id >= kFirstApId) and car-to-car
/// links use distinct path-loss models: the testbed's AP sat behind an
/// office window (large fixed penetration loss), while platoon cars keep
/// street-level line of sight.
class CompositeLinkModel final : public LinkModel {
 public:
  CompositeLinkModel(std::unique_ptr<PathLossModel> infraPathLoss,
                     std::unique_ptr<PathLossModel> carToCarPathLoss,
                     std::unique_ptr<ShadowingProvider> shadowing,
                     std::unique_ptr<FadingModel> fading, LinkBudget budget);

  /// Enables a Gilbert–Elliott overlay on every directed link (each link
  /// gets an independent chain seeded from `rng`).
  void enableBurstOverlay(GilbertElliottParams params, Rng rng);

  double meanRxPowerDbm(NodeId tx, geom::Vec2 txPos, double txPowerDbm,
                        NodeId rx, geom::Vec2 rxPos) override;
  double fadedRxPowerDbm(double meanDbm, Rng& rng) override;
  double successProbability(PhyMode mode, double sinrDb, int bits) const override;

  /// Staged struct-of-arrays pass: distances, path loss (infra/c2c split),
  /// shadowing, mean power, fading. Bit-identical to the scalar reference
  /// (see LinkModel::planBatch): every arithmetic expression matches the
  /// scalar composition term for term, and each RNG stream is consumed in
  /// receiver order within its stage.
  void planBatch(NodeId tx, geom::Vec2 txPos, double txPowerDbm,
                 LinkBatch& batch, Rng& rng) override;
  void successProbabilityBatch(PhyMode mode, const double* sinrDb, int bits,
                               double* pOut, std::size_t n) const override;
  bool burstLoss(NodeId tx, NodeId rx, sim::SimTime now,
                 int frameClass) override;
  const LinkBudget& budget() const override { return budget_; }

 private:
  std::unique_ptr<PathLossModel> infraPathLoss_;
  std::unique_ptr<PathLossModel> carToCarPathLoss_;
  std::unique_ptr<ShadowingProvider> shadowing_;
  std::unique_ptr<FadingModel> fading_;
  LinkBudget budget_;
  std::optional<GilbertElliottParams> burstParams_;
  std::optional<Rng> burstRng_;
  // Directed link (tx<<32 | rx) -> chain. Flat hash: the per-frame lookup
  // on survivors sits on the hot path and the old std::map paid a pointer
  // chase per tree level.
  util::FlatMap64<GilbertElliott> burstChains_;
};

}  // namespace vanet::channel
