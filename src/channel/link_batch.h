#pragma once

/// \file link_batch.h
/// Struct-of-arrays scratch for one transmission's receiver set.
///
/// The radio environment gathers every receiver of a transmission into
/// parallel arrays (id, position), then asks the link model to fill the
/// per-receiver plan arrays (distance, path loss, shadowing, fading, mean
/// and faded rx power) in staged passes over contiguous memory instead of
/// one virtual-call chain per receiver. Stage order is chosen so each RNG
/// stream (fading draws on the environment rng, shadowing pair constants
/// on the shadowing rng) sees its draws in exactly the per-receiver order
/// the scalar path used -- the streams are independent, so batching the
/// stages cannot reorder draws *within* any stream.
///
/// The batch is reused across transmissions (capacity sticks), so the
/// steady-state hot path performs no allocation.

#include <cstddef>
#include <vector>

#include "geom/vec2.h"
#include "util/types.h"

namespace vanet::channel {

class LinkBatch {
 public:
  /// Drops all receivers; keeps capacity.
  void clear() noexcept {
    ids_.clear();
    x_.clear();
    y_.clear();
  }

  /// Appends one receiver to the gather arrays.
  void add(NodeId id, geom::Vec2 pos) {
    ids_.push_back(id);
    x_.push_back(pos.x);
    y_.push_back(pos.y);
  }

  /// Sizes the plan arrays to the gathered receiver count. Call once after
  /// the last add() and before handing the batch to LinkModel::planBatch.
  void prepare();

  std::size_t size() const noexcept { return ids_.size(); }
  bool empty() const noexcept { return ids_.empty(); }

  const NodeId* rxIds() const noexcept { return ids_.data(); }
  const double* rxX() const noexcept { return x_.data(); }
  const double* rxY() const noexcept { return y_.data(); }
  geom::Vec2 rxPos(std::size_t i) const noexcept { return {x_[i], y_[i]}; }

  // Plan arrays, filled by LinkModel::planBatch stages. distance/loss/
  // shadow/fade are intermediate scratch; mean/faded are the outputs the
  // environment consumes.
  double* distance() noexcept { return dist_.data(); }
  double* lossDb() noexcept { return loss_.data(); }
  double* shadowDb() noexcept { return shadow_.data(); }
  double* fadeDb() noexcept { return fade_.data(); }
  double* meanDbm() noexcept { return mean_.data(); }
  double* fadedDbm() noexcept { return faded_.data(); }
  const double* meanDbm() const noexcept { return mean_.data(); }
  const double* fadedDbm() const noexcept { return faded_.data(); }

 private:
  std::vector<NodeId> ids_;
  std::vector<double> x_, y_;
  std::vector<double> dist_, loss_, shadow_, fade_, mean_, faded_;
};

}  // namespace vanet::channel
