#include "channel/error_model.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace vanet::channel {
namespace {

double qFunction(double x) noexcept { return 0.5 * std::erfc(x / std::sqrt(2.0)); }

double snrLinear(double snrDb) noexcept { return std::pow(10.0, snrDb / 10.0); }

/// Effective Eb/N0 from channel SNR: processing gain = noise bandwidth over
/// data rate (11 MHz chip rate spreading for DSSS; coded OFDM for ERP).
double ebN0Linear(PhyMode mode, double snrDb) noexcept {
  const double bandwidthHz = 22e6;
  const double rateHz = bitrateMbps(mode) * 1e6;
  return snrLinear(snrDb) * bandwidthHz / rateHz;
}

}  // namespace

double bitrateMbps(PhyMode mode) noexcept {
  switch (mode) {
    case PhyMode::kDsss1Mbps:
      return 1.0;
    case PhyMode::kDsss2Mbps:
      return 2.0;
    case PhyMode::kCck5_5Mbps:
      return 5.5;
    case PhyMode::kCck11Mbps:
      return 11.0;
    case PhyMode::kErpOfdm6Mbps:
      return 6.0;
    case PhyMode::kErpOfdm12Mbps:
      return 12.0;
    case PhyMode::kErpOfdm24Mbps:
      return 24.0;
    case PhyMode::kErpOfdm54Mbps:
      return 54.0;
  }
  return 1.0;
}

std::string_view modeName(PhyMode mode) noexcept {
  switch (mode) {
    case PhyMode::kDsss1Mbps:
      return "DSSS-1M";
    case PhyMode::kDsss2Mbps:
      return "DSSS-2M";
    case PhyMode::kCck5_5Mbps:
      return "CCK-5.5M";
    case PhyMode::kCck11Mbps:
      return "CCK-11M";
    case PhyMode::kErpOfdm6Mbps:
      return "ERP-6M";
    case PhyMode::kErpOfdm12Mbps:
      return "ERP-12M";
    case PhyMode::kErpOfdm24Mbps:
      return "ERP-24M";
    case PhyMode::kErpOfdm54Mbps:
      return "ERP-54M";
  }
  return "?";
}

double bitErrorRate(PhyMode mode, double snrDb) noexcept {
  const double ebn0 = ebN0Linear(mode, snrDb);
  switch (mode) {
    case PhyMode::kDsss1Mbps:
      // DBPSK: Pb = 1/2 exp(-Eb/N0).
      return 0.5 * std::exp(-std::min(ebn0, 700.0));
    case PhyMode::kDsss2Mbps:
      // DQPSK approximation: Pb ~ Q(sqrt(1.172 Eb/N0)) (standard fit).
      return qFunction(std::sqrt(1.172 * ebn0));
    case PhyMode::kCck5_5Mbps:
      // CCK approximations follow the shape used by simulator error
      // models: an SNR-shifted QPSK curve.
      return qFunction(std::sqrt(1.0 * ebn0 / 2.0));
    case PhyMode::kCck11Mbps:
      return qFunction(std::sqrt(1.0 * ebn0 / 4.0));
    case PhyMode::kErpOfdm6Mbps:
      // BPSK r=1/2 with ~4 dB coding gain folded in.
      return qFunction(std::sqrt(2.0 * ebn0 * 2.5));
    case PhyMode::kErpOfdm12Mbps:
      // QPSK r=1/2.
      return qFunction(std::sqrt(1.0 * ebn0 * 2.5));
    case PhyMode::kErpOfdm24Mbps:
      // 16-QAM r=1/2.
      return 0.75 * qFunction(std::sqrt(0.4 * ebn0 * 2.5));
    case PhyMode::kErpOfdm54Mbps:
      // 64-QAM r=3/4.
      return (7.0 / 12.0) * qFunction(std::sqrt(0.142 * ebn0 * 1.8));
  }
  return 0.5;
}

double frameSuccessProbability(PhyMode mode, double snrDb, int bits) noexcept {
  VANET_DASSERT(bits > 0, "frame must contain bits");
  const double ber = std::clamp(bitErrorRate(mode, snrDb), 0.0, 0.5);
  if (ber <= 0.0) return 1.0;
  // log-domain to avoid underflow for long frames at low SNR.
  const double logSuccess = static_cast<double>(bits) * std::log1p(-ber);
  return std::exp(logSuccess);
}

}  // namespace vanet::channel
