#include "channel/error_model.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"
#include "util/vmath.h"

namespace vanet::channel {
namespace {

constexpr double kRoot2 = 1.4142135623730951;  // sqrt(2), correctly rounded

/// One row per PHY mode: BER(snr) = isExp ? 0.5 exp(-min(ebn0, 700))
///                                        : k1 Q(sqrt(k2 ebn0))
/// with ebn0 = 10^(snr/10) * scale and scale = noise bandwidth / bitrate
/// (22 MHz over the data rate: 11-chip spreading for DSSS, coded OFDM for
/// ERP). Folding the per-mode constants into single factors lets the
/// scalar and batched evaluations share one literal op sequence.
struct BerParams {
  bool isExp;
  double scale;
  double k1;
  double k2;
};

constexpr BerParams berParams(PhyMode mode) noexcept {
  switch (mode) {
    case PhyMode::kDsss1Mbps:
      // DBPSK: Pb = 1/2 exp(-Eb/N0).
      return {true, 22.0, 0.0, 0.0};
    case PhyMode::kDsss2Mbps:
      // DQPSK approximation: Pb ~ Q(sqrt(1.172 Eb/N0)) (standard fit).
      return {false, 11.0, 1.0, 1.172};
    case PhyMode::kCck5_5Mbps:
      // CCK approximations follow the shape used by simulator error
      // models: an SNR-shifted QPSK curve.
      return {false, 4.0, 1.0, 1.0 / 2.0};
    case PhyMode::kCck11Mbps:
      return {false, 2.0, 1.0, 1.0 / 4.0};
    case PhyMode::kErpOfdm6Mbps:
      // BPSK r=1/2 with ~4 dB coding gain folded in.
      return {false, 22.0 / 6.0, 1.0, 2.0 * 2.5};
    case PhyMode::kErpOfdm12Mbps:
      // QPSK r=1/2.
      return {false, 22.0 / 12.0, 1.0, 2.5};
    case PhyMode::kErpOfdm24Mbps:
      // 16-QAM r=1/2.
      return {false, 22.0 / 24.0, 0.75, 0.4 * 2.5};
    case PhyMode::kErpOfdm54Mbps:
      // 64-QAM r=3/4.
      return {false, 22.0 / 54.0, 7.0 / 12.0, 0.142 * 1.8};
  }
  return {true, 22.0, 0.0, 0.0};
}

}  // namespace

double bitrateMbps(PhyMode mode) noexcept {
  switch (mode) {
    case PhyMode::kDsss1Mbps:
      return 1.0;
    case PhyMode::kDsss2Mbps:
      return 2.0;
    case PhyMode::kCck5_5Mbps:
      return 5.5;
    case PhyMode::kCck11Mbps:
      return 11.0;
    case PhyMode::kErpOfdm6Mbps:
      return 6.0;
    case PhyMode::kErpOfdm12Mbps:
      return 12.0;
    case PhyMode::kErpOfdm24Mbps:
      return 24.0;
    case PhyMode::kErpOfdm54Mbps:
      return 54.0;
  }
  return 1.0;
}

std::string_view modeName(PhyMode mode) noexcept {
  switch (mode) {
    case PhyMode::kDsss1Mbps:
      return "DSSS-1M";
    case PhyMode::kDsss2Mbps:
      return "DSSS-2M";
    case PhyMode::kCck5_5Mbps:
      return "CCK-5.5M";
    case PhyMode::kCck11Mbps:
      return "CCK-11M";
    case PhyMode::kErpOfdm6Mbps:
      return "ERP-6M";
    case PhyMode::kErpOfdm12Mbps:
      return "ERP-12M";
    case PhyMode::kErpOfdm24Mbps:
      return "ERP-24M";
    case PhyMode::kErpOfdm54Mbps:
      return "ERP-54M";
  }
  return "?";
}

double bitErrorRate(PhyMode mode, double snrDb) noexcept {
  const BerParams p = berParams(mode);
  const double ebn0 = vmath::dbToLinear(snrDb) * p.scale;
  if (p.isExp) {
    return 0.5 * vmath::vexp(-std::min(ebn0, 700.0));
  }
  const double x = std::sqrt(p.k2 * ebn0);
  return p.k1 * (0.5 * vmath::verfc(x / kRoot2));
}

double frameSuccessProbability(PhyMode mode, double snrDb, int bits) noexcept {
  VANET_DASSERT(bits > 0, "frame must contain bits");
  const double ber = std::clamp(bitErrorRate(mode, snrDb), 0.0, 0.5);
  if (ber <= 0.0) return 1.0;
  // log-domain to avoid underflow for long frames at low SNR. vlog1p and
  // vexp compose to exactly 1.0 at ber == 0, so this early return is an
  // optimisation, not a behaviour difference from the batched chain.
  const double logSuccess = static_cast<double>(bits) * vmath::vlog1p(-ber);
  return vmath::vexp(logSuccess);
}

void frameSuccessProbabilityBatch(PhyMode mode, const double* sinrDb, int bits,
                                  double* out, std::size_t n) noexcept {
  VANET_DASSERT(bits > 0, "frame must contain bits");
  // Same op sequence per element as the scalar chain above -- every
  // transcendental goes through the identical vmath kernel and every glue
  // op (scale, sqrt, clamp, negate) is a single correctly rounded IEEE
  // operation, so out[i] == frameSuccessProbability(mode, sinrDb[i], bits)
  // bit for bit (asserted by tests/channel/error_model_test.cpp).
  const BerParams p = berParams(mode);
  vmath::dbToLinear(sinrDb, out, n);
  for (std::size_t i = 0; i < n; ++i) out[i] *= p.scale;
  if (p.isExp) {
    for (std::size_t i = 0; i < n; ++i) out[i] = -std::min(out[i], 700.0);
    vmath::vexp(out, out, n);
    for (std::size_t i = 0; i < n; ++i) out[i] = 0.5 * out[i];
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = std::sqrt(p.k2 * out[i]) / kRoot2;
    }
    vmath::verfc(out, out, n);
    for (std::size_t i = 0; i < n; ++i) out[i] = p.k1 * (0.5 * out[i]);
  }
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = -std::clamp(out[i], 0.0, 0.5);
  }
  vmath::vlog1p(out, out, n);
  const double bitsD = static_cast<double>(bits);
  for (std::size_t i = 0; i < n; ++i) out[i] = bitsD * out[i];
  vmath::vexp(out, out, n);
}

}  // namespace vanet::channel
