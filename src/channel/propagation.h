#pragma once

/// \file propagation.h
/// Deterministic large-scale path-loss models. All return loss in dB for a
/// transmitter/receiver separation in metres; stochastic terms (shadowing,
/// fading) are layered on top by the composite link model.

#include <cstddef>
#include <memory>

namespace vanet::channel {

/// Distance -> mean path loss (dB). Implementations must be monotone
/// non-decreasing in distance.
class PathLossModel {
 public:
  virtual ~PathLossModel() = default;

  /// Path loss in dB at `distanceMetres` (clamped internally to >= 1 m so
  /// co-located nodes do not produce infinities).
  virtual double lossDb(double distanceMetres) const = 0;

  /// Batched lossDb over `n` distances (one transmission's receiver set).
  /// Base implementation: scalar loop. Overrides apply the identical
  /// per-element math, so outputs are bit-identical.
  virtual void lossDbBatch(const double* distanceMetres, double* out,
                           std::size_t n) const {
    for (std::size_t i = 0; i < n; ++i) out[i] = lossDb(distanceMetres[i]);
  }
};

/// Free-space (Friis) propagation at a given carrier frequency.
class FreeSpacePathLoss final : public PathLossModel {
 public:
  explicit FreeSpacePathLoss(double frequencyHz = 2.4e9);
  double lossDb(double distanceMetres) const override;
  void lossDbBatch(const double* distanceMetres, double* out,
                   std::size_t n) const override;

  double fixedTermDb() const noexcept { return fixedTermDb_; }

 private:
  double fixedTermDb_;  // 20 log10(4 pi f / c)
};

/// Log-distance model: loss(d) = refLoss(d0) + 10 n log10(d / d0).
/// The workhorse for the urban scenario (exponent ~3 captures the
/// window-mounted AP of the testbed).
class LogDistancePathLoss final : public PathLossModel {
 public:
  /// `referenceLossDb` is the loss at `referenceDistance` metres.
  LogDistancePathLoss(double exponent, double referenceLossDb,
                      double referenceDistance = 1.0);
  double lossDb(double distanceMetres) const override;
  void lossDbBatch(const double* distanceMetres, double* out,
                   std::size_t n) const override;

  double exponent() const noexcept { return exponent_; }

 private:
  double exponent_;
  double slopeDb_;  // 10 * exponent, the log10 multiplier
  double referenceLossDb_;
  double referenceDistance_;
};

/// Two-ray ground-reflection model with free-space behaviour below the
/// crossover distance; suits flat highway stretches.
class TwoRayGroundPathLoss final : public PathLossModel {
 public:
  TwoRayGroundPathLoss(double txHeightMetres, double rxHeightMetres,
                       double frequencyHz = 2.4e9);
  double lossDb(double distanceMetres) const override;
  void lossDbBatch(const double* distanceMetres, double* out,
                   std::size_t n) const override;

  double crossoverDistance() const noexcept { return crossover_; }

 private:
  double txHeight_;
  double rxHeight_;
  FreeSpacePathLoss freeSpace_;
  double crossover_;
  double heightTermDb_;  // 20 log10(ht hr)
};

}  // namespace vanet::channel
