#pragma once

/// \file fading.h
/// Small-scale fading sampled independently per frame (block fading: the
/// channel is assumed coherent over one frame and independent across
/// frames, reasonable at vehicular speeds where frames are ~10 ms apart).

#include <cstddef>

#include "util/rng.h"

namespace vanet::channel {

/// Per-frame fading gain in dB (0 dB mean-power reference).
class FadingModel {
 public:
  virtual ~FadingModel() = default;

  /// Samples the fading gain for one frame.
  virtual double sampleDb(Rng& rng) const = 0;

  /// Samples `n` per-receiver gains in receiver order (one transmission's
  /// batch). Base implementation: scalar loop; overrides must consume
  /// `rng` in exactly the same order.
  virtual void sampleDbBatch(Rng& rng, double* out, std::size_t n) const {
    for (std::size_t i = 0; i < n; ++i) out[i] = sampleDb(rng);
  }
};

/// No fading: always 0 dB.
class NoFading final : public FadingModel {
 public:
  double sampleDb(Rng&) const override { return 0.0; }
  void sampleDbBatch(Rng&, double* out, std::size_t n) const override {
    for (std::size_t i = 0; i < n; ++i) out[i] = 0.0;
  }
};

/// Rayleigh fading: power gain ~ Exp(1) (unit mean).
class RayleighFading final : public FadingModel {
 public:
  double sampleDb(Rng& rng) const override;
  void sampleDbBatch(Rng& rng, double* out, std::size_t n) const override;
};

/// Rician fading with K-factor (ratio of line-of-sight to scattered power).
/// K -> 0 degenerates to Rayleigh; large K approaches no fading.
class RicianFading final : public FadingModel {
 public:
  explicit RicianFading(double kFactor);
  double sampleDb(Rng& rng) const override;
  void sampleDbBatch(Rng& rng, double* out, std::size_t n) const override;

  double kFactor() const noexcept { return k_; }

 private:
  double k_;
};

/// Nakagami-m fading (power gain ~ Gamma(m, 1/m), unit mean). m = 1 is
/// Rayleigh; m > 1 models milder vehicular fading; m < 1 (down to 0.5)
/// is harsher than Rayleigh. The common choice for VANET channel studies.
class NakagamiFading final : public FadingModel {
 public:
  /// Requires m >= 0.5.
  explicit NakagamiFading(double m);
  double sampleDb(Rng& rng) const override;
  void sampleDbBatch(Rng& rng, double* out, std::size_t n) const override;

  double m() const noexcept { return m_; }

 private:
  double m_;
};

}  // namespace vanet::channel
