#include "analysis/csv.h"

#include <algorithm>
#include <fstream>

#include "util/log.h"

namespace vanet::analysis {

bool writeSeriesCsv(const std::string& path, const std::string& indexName,
                    const std::vector<std::string>& headers,
                    const std::vector<std::vector<double>>& columns) {
  std::ofstream out(path);
  if (!out) {
    LOG_ERROR("cannot open " << path << " for writing");
    return false;
  }
  out << indexName;
  for (const auto& header : headers) out << "," << header;
  out << "\n";
  std::size_t maxLen = 0;
  for (const auto& column : columns) maxLen = std::max(maxLen, column.size());
  for (std::size_t i = 0; i < maxLen; ++i) {
    out << (i + 1);
    for (const auto& column : columns) {
      out << ",";
      if (i < column.size()) out << column[i];
    }
    out << "\n";
  }
  return static_cast<bool>(out);
}

bool writeTable1Csv(const std::string& path, const trace::Table1Data& data) {
  std::ofstream out(path);
  if (!out) {
    LOG_ERROR("cannot open " << path << " for writing");
    return false;
  }
  out << "car,tx_by_ap_mean,tx_by_ap_sd,lost_before_mean,lost_before_sd,"
         "pct_before,lost_after_mean,lost_after_sd,pct_after,"
         "lost_joint_mean,pct_joint\n";
  for (const auto& row : data.rows) {
    out << row.car << "," << row.txByAp.mean() << "," << row.txByAp.stddev()
        << "," << row.lostBefore.mean() << "," << row.lostBefore.stddev()
        << "," << row.pctLostBefore.mean() << "," << row.lostAfter.mean()
        << "," << row.lostAfter.stddev() << "," << row.pctLostAfter.mean()
        << "," << row.lostJoint.mean() << "," << row.pctLostJoint.mean()
        << "\n";
  }
  return static_cast<bool>(out);
}

namespace {

void appendCell(std::string& out, const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    out += cell;
    return;
  }
  out += '"';
  for (const char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
}

}  // namespace

std::string renderCsv(const std::vector<std::string>& headers,
                      const std::vector<std::vector<std::string>>& rows) {
  std::string out;
  for (std::size_t i = 0; i < headers.size(); ++i) {
    if (i > 0) out += ',';
    appendCell(out, headers[i]);
  }
  out += '\n';
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ',';
      appendCell(out, row[i]);
    }
    out += '\n';
  }
  return out;
}

bool writeRowsCsv(const std::string& path,
                  const std::vector<std::string>& headers,
                  const std::vector<std::vector<std::string>>& rows) {
  std::ofstream out(path);
  if (!out) {
    LOG_ERROR("cannot open " << path << " for writing");
    return false;
  }
  out << renderCsv(headers, rows);
  return static_cast<bool>(out);
}

}  // namespace vanet::analysis
