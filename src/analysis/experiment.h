#pragma once

/// \file experiment.h
/// Experiment drivers, layered like the campaign pipeline in src/runner/:
///
///   build   round.h          pure per-round world construction
///                            (makeRound, channel/link assembly, nodes)
///   kernel  round.h          runUrbanRound / runHighwayRound: pure
///                            (config, scenario, roundIndex) -> outcome
///   fold    this file        UrbanExperiment / HighwayExperiment feed
///                            round outcomes -- strictly in round order,
///                            through the bounded reordering window of
///                            util/reorder.h -- into the Table-1 / figure
///                            accumulators and protocol totals
///
/// Rounds are independent given the per-round Rng children, so the fold
/// layer runs them on `roundThreads` workers drawn from the shared
/// util::ThreadBudget; because outcomes fold in round order the results
/// are bit-identical to the serial loop at any worker count.
///
/// UrbanExperiment reproduces the paper's testbed (30 laps of the
/// Figure-2 loop); HighwayExperiment runs the drive-thru / Infostation
/// studies (speed sweep, file download across multiple APs). Both are
/// deterministic in (config, seed).

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "channel/gilbert_elliott.h"
#include "channel/link_model.h"
#include "channel/shadowing.h"
#include "core/carq_agent.h"
#include "mac/radio_environment.h"
#include "mobility/highway.h"
#include "mobility/urban_loop.h"
#include "trace/aggregate.h"
#include "trace/round_trace.h"
#include "util/stats.h"

namespace vanet::analysis {

/// Channel composition shared by all experiments. Infra = AP->car links.
struct ChannelConfig {
  // Path loss. Infra reference loss includes the window/wall penetration
  // of the testbed's office-mounted AP.
  double infraPathLossExponent = 2.2;
  double infraReferenceLossDb = 71.8;
  double c2cPathLossExponent = 2.4;
  double c2cReferenceLossDb = 40.0;

  channel::ShadowingParams shadowing{
      /*infraSigmaDb=*/7.0, /*decorrelationMetres=*/28.0,
      /*gridStepMetres=*/3.0, /*c2cSigmaDb=*/2.0};

  /// Urban corner blocking: extra loss per metre off the covered street
  /// (see ObstructedShadowing); 0 disables. Applied by UrbanExperiment.
  double obstructionDbPerMetre = 1.4;
  double obstructionCapDb = 60.0;
  double streetHalfWidthMetres = 3.0;

  /// Rician K-factor for small-scale fading; 0 selects Rayleigh, negative
  /// disables fading entirely.
  double ricianK = 0.0;

  /// > 0 selects Nakagami-m fading instead (overrides ricianK); m = 1 is
  /// Rayleigh, m > 1 milder, 0.5 <= m < 1 harsher.
  double nakagamiM = 0.0;

  channel::LinkBudget budget{};

  /// Optional Gilbert-Elliott burst overlay on every link.
  std::optional<channel::GilbertElliottParams> burst;
};

/// Totals over protocol counters, averaged per car per round.
struct ProtocolTotals {
  RunningStats requestsPerRound;
  RunningStats requestSeqsPerRound;  ///< missing seqs enumerated in REQUESTs
  RunningStats coopDataPerRound;
  RunningStats suppressedPerRound;
  RunningStats hellosPerRound;
  RunningStats bufferedPerRound;
  mac::MediumStats medium;  ///< summed over rounds

  /// Merges totals of another run (parallel-combining form).
  void merge(const ProtocolTotals& other) noexcept {
    requestsPerRound.merge(other.requestsPerRound);
    requestSeqsPerRound.merge(other.requestSeqsPerRound);
    coopDataPerRound.merge(other.coopDataPerRound);
    suppressedPerRound.merge(other.suppressedPerRound);
    hellosPerRound.merge(other.hellosPerRound);
    bufferedPerRound.merge(other.bufferedPerRound);
    medium.merge(other.medium);
  }
};

// --------------------------------------------------------------- urban

/// Full configuration of the paper's experiment.
struct UrbanExperimentConfig {
  mobility::UrbanLoopConfig scenario{};
  carq::CarqConfig carq{};
  ChannelConfig channel{};
  double apTxPowerDbm = 18.0;
  double carTxPowerDbm = 18.0;
  double packetsPerSecondPerFlow = 5.0;  ///< paper: 5 x 1000 B per car
  int payloadBytes = 1000;
  int repeatCount = 1;  ///< AP blind retransmissions (ablation)
  int rounds = 30;      ///< paper: 30
  std::uint64_t seed = 42;
  /// Round workers for run(): 1 = serial, 0 = whatever the shared
  /// util::ThreadBudget has left, N = up to N (degrades gracefully when
  /// the budget is short). The result is bit-identical for every value.
  int roundThreads = 1;
};

/// What one round kernel produces: the trace plus this round's protocol
/// deltas. A pure value -- merging outcomes in round order reproduces the
/// serial accumulation exactly, which is what makes round parallelism
/// invisible in the results. Not default-constructible: a trace always
/// belongs to a concrete platoon.
struct UrbanRoundOutcome {
  trace::RoundTrace trace;
  ProtocolTotals totals;  ///< this round's counter samples only
};

/// Aggregated outcome of an urban experiment.
struct UrbanExperimentResult {
  trace::Table1Data table1;
  std::map<FlowId, trace::FlowFigure> figures;
  ProtocolTotals totals;
  int rounds = 0;
  int roundWorkers = 1;  ///< round workers the fold layer actually used
};

/// Drives `rounds` laps and aggregates the paper's outputs (fold layer).
class UrbanExperiment {
 public:
  explicit UrbanExperiment(UrbanExperimentConfig config);

  /// Runs every round and aggregates. Deterministic in (config, seed)
  /// for any roundThreads value.
  UrbanExperimentResult run();

  /// The round kernel: runs one round and returns its outcome. Pure in
  /// (config, roundIndex) -- owns no experiment-wide mutable state.
  UrbanRoundOutcome runRound(int roundIndex) const;

  const mobility::UrbanLoopScenario& scenario() const noexcept {
    return scenario_;
  }

 private:
  UrbanExperimentConfig config_;
  mobility::UrbanLoopScenario scenario_;
};

// -------------------------------------------------------------- highway

/// Channel defaults for roadside infostation masts: no building
/// penetration (the urban default's ~72 dB reference loss models the
/// testbed's window-mounted indoor AP), a higher exponent from ground
/// clutter, and no street-corner obstruction.
ChannelConfig highwayChannelDefaults();

/// Configuration for drive-thru / Infostation experiments.
struct HighwayExperimentConfig {
  mobility::HighwayConfig scenario{};
  carq::CarqConfig carq{};  ///< set carq.fileSizeSeqs for download studies
  ChannelConfig channel = highwayChannelDefaults();
  double apTxPowerDbm = 18.0;
  double carTxPowerDbm = 18.0;
  double packetsPerSecondPerFlow = 5.0;
  int payloadBytes = 1000;
  int rounds = 10;
  std::uint64_t seed = 42;
  /// Round workers for run(); see UrbanExperimentConfig::roundThreads.
  int roundThreads = 1;
};

/// Per-car outcome of the highway studies.
struct HighwayCarResult {
  NodeId car = 0;
  RunningStats apVisitsToComplete;  ///< file mode; counts only completions
  RunningStats timeToCompleteSeconds;
  int completedRounds = 0;
};

/// One car's raw file-download record of a single highway round.
struct HighwayCarRound {
  NodeId car = 0;
  int visitsAtComplete = -1;  ///< -1: the file did not complete this round
  double completeAtSeconds = 0.0;
};

/// What one highway round kernel produces.
struct HighwayRoundOutcome {
  trace::RoundTrace trace;
  ProtocolTotals totals;  ///< this round's counter samples only
  std::vector<HighwayCarRound> cars;  ///< ascending car id
};

struct HighwayExperimentResult {
  trace::Table1Data table1;  ///< per-pass loss stats (single-AP sweeps)
  std::map<NodeId, HighwayCarResult> cars;
  ProtocolTotals totals;
  int rounds = 0;
  int roundWorkers = 1;  ///< round workers the fold layer actually used
};

/// Drives the highway scenario `rounds` times (fold layer).
class HighwayExperiment {
 public:
  explicit HighwayExperiment(HighwayExperimentConfig config);

  /// Deterministic in (config, seed) for any roundThreads value.
  HighwayExperimentResult run();

  /// The round kernel: pure in (config, roundIndex).
  HighwayRoundOutcome runRound(int roundIndex) const;

  const mobility::HighwayScenario& scenario() const noexcept {
    return scenario_;
  }

 private:
  HighwayExperimentConfig config_;
  mobility::HighwayScenario scenario_;
};

}  // namespace vanet::analysis
