#pragma once

/// \file experiment.h
/// Experiment drivers. UrbanExperiment reproduces the paper's testbed (30
/// laps of the Figure-2 loop); HighwayExperiment runs the drive-thru /
/// Infostation studies (speed sweep, file download across multiple APs).
/// Both are deterministic in (config, seed).

#include <cstdint>
#include <map>
#include <optional>

#include "channel/gilbert_elliott.h"
#include "channel/link_model.h"
#include "channel/shadowing.h"
#include "core/carq_agent.h"
#include "mac/radio_environment.h"
#include "mobility/highway.h"
#include "mobility/urban_loop.h"
#include "trace/aggregate.h"
#include "trace/round_trace.h"
#include "util/stats.h"

namespace vanet::analysis {

/// Channel composition shared by all experiments. Infra = AP->car links.
struct ChannelConfig {
  // Path loss. Infra reference loss includes the window/wall penetration
  // of the testbed's office-mounted AP.
  double infraPathLossExponent = 2.2;
  double infraReferenceLossDb = 71.8;
  double c2cPathLossExponent = 2.4;
  double c2cReferenceLossDb = 40.0;

  channel::ShadowingParams shadowing{
      /*infraSigmaDb=*/7.0, /*decorrelationMetres=*/28.0,
      /*gridStepMetres=*/3.0, /*c2cSigmaDb=*/2.0};

  /// Urban corner blocking: extra loss per metre off the covered street
  /// (see ObstructedShadowing); 0 disables. Applied by UrbanExperiment.
  double obstructionDbPerMetre = 1.4;
  double obstructionCapDb = 60.0;
  double streetHalfWidthMetres = 3.0;

  /// Rician K-factor for small-scale fading; 0 selects Rayleigh, negative
  /// disables fading entirely.
  double ricianK = 0.0;

  /// > 0 selects Nakagami-m fading instead (overrides ricianK); m = 1 is
  /// Rayleigh, m > 1 milder, 0.5 <= m < 1 harsher.
  double nakagamiM = 0.0;

  channel::LinkBudget budget{};

  /// Optional Gilbert-Elliott burst overlay on every link.
  std::optional<channel::GilbertElliottParams> burst;
};

/// Totals over protocol counters, averaged per car per round.
struct ProtocolTotals {
  RunningStats requestsPerRound;
  RunningStats requestSeqsPerRound;  ///< missing seqs enumerated in REQUESTs
  RunningStats coopDataPerRound;
  RunningStats suppressedPerRound;
  RunningStats hellosPerRound;
  RunningStats bufferedPerRound;
  mac::MediumStats medium;  ///< summed over rounds

  /// Merges totals of another run (parallel-combining form).
  void merge(const ProtocolTotals& other) noexcept {
    requestsPerRound.merge(other.requestsPerRound);
    requestSeqsPerRound.merge(other.requestSeqsPerRound);
    coopDataPerRound.merge(other.coopDataPerRound);
    suppressedPerRound.merge(other.suppressedPerRound);
    hellosPerRound.merge(other.hellosPerRound);
    bufferedPerRound.merge(other.bufferedPerRound);
    medium.merge(other.medium);
  }
};

// --------------------------------------------------------------- urban

/// Full configuration of the paper's experiment.
struct UrbanExperimentConfig {
  mobility::UrbanLoopConfig scenario{};
  carq::CarqConfig carq{};
  ChannelConfig channel{};
  double apTxPowerDbm = 18.0;
  double carTxPowerDbm = 18.0;
  double packetsPerSecondPerFlow = 5.0;  ///< paper: 5 x 1000 B per car
  int payloadBytes = 1000;
  int repeatCount = 1;  ///< AP blind retransmissions (ablation)
  int rounds = 30;      ///< paper: 30
  std::uint64_t seed = 42;
};

/// Aggregated outcome of an urban experiment.
struct UrbanExperimentResult {
  trace::Table1Data table1;
  std::map<FlowId, trace::FlowFigure> figures;
  ProtocolTotals totals;
  int rounds = 0;
};

/// Drives `rounds` laps and aggregates the paper's outputs.
class UrbanExperiment {
 public:
  explicit UrbanExperiment(UrbanExperimentConfig config);

  /// Runs every round and aggregates. Deterministic in (config, seed).
  UrbanExperimentResult run();

  /// Runs a single round and returns its trace (used by tests and by
  /// run()). `totals` accumulation is optional.
  trace::RoundTrace runRound(int roundIndex, ProtocolTotals* totals = nullptr);

  const mobility::UrbanLoopScenario& scenario() const noexcept {
    return scenario_;
  }

 private:
  UrbanExperimentConfig config_;
  mobility::UrbanLoopScenario scenario_;
};

// -------------------------------------------------------------- highway

/// Channel defaults for roadside infostation masts: no building
/// penetration (the urban default's ~72 dB reference loss models the
/// testbed's window-mounted indoor AP), a higher exponent from ground
/// clutter, and no street-corner obstruction.
ChannelConfig highwayChannelDefaults();

/// Configuration for drive-thru / Infostation experiments.
struct HighwayExperimentConfig {
  mobility::HighwayConfig scenario{};
  carq::CarqConfig carq{};  ///< set carq.fileSizeSeqs for download studies
  ChannelConfig channel = highwayChannelDefaults();
  double apTxPowerDbm = 18.0;
  double carTxPowerDbm = 18.0;
  double packetsPerSecondPerFlow = 5.0;
  int payloadBytes = 1000;
  int rounds = 10;
  std::uint64_t seed = 42;
};

/// Per-car outcome of the highway studies.
struct HighwayCarResult {
  NodeId car = 0;
  RunningStats apVisitsToComplete;  ///< file mode; counts only completions
  RunningStats timeToCompleteSeconds;
  int completedRounds = 0;
};

struct HighwayExperimentResult {
  trace::Table1Data table1;  ///< per-pass loss stats (single-AP sweeps)
  std::map<NodeId, HighwayCarResult> cars;
  ProtocolTotals totals;
  int rounds = 0;
};

/// Drives the highway scenario `rounds` times.
class HighwayExperiment {
 public:
  explicit HighwayExperiment(HighwayExperimentConfig config);

  HighwayExperimentResult run();

  const mobility::HighwayScenario& scenario() const noexcept {
    return scenario_;
  }

 private:
  HighwayExperimentConfig config_;
  mobility::HighwayScenario scenario_;
};

/// Builds the composite link model for a given road and channel config.
/// `obstruction` (optional) is applied to infra links.
std::unique_ptr<channel::CompositeLinkModel> buildLinkModel(
    const geom::Polyline& road, const ChannelConfig& config, Rng rng,
    std::function<double(geom::Vec2)> obstruction = nullptr);

}  // namespace vanet::analysis
