#pragma once

/// \file round.h
/// The *build* and *kernel* layers of the experiment pipeline (the fold
/// layer lives in experiment.h):
///
///   build   UrbanRoundWorld / HighwayRoundWorld assemble one round's
///           entire world -- mobility round, channel, simulator, radio
///           environment, infostation(s), car nodes, C-ARQ agents and
///           the trace they record into -- as a pure function of
///           (config, scenario, roundIndex). A world owns every object
///           it wires; nothing reaches outside it, so concurrent worlds
///           never share mutable state.
///   kernel  runUrbanRound / runHighwayRound build a world, simulate it
///           to the round end, and return the outcome value
///           (experiment.h's *RoundOutcome). Pure: same arguments, same
///           bytes, whichever thread runs them.
///
/// The per-round RNG tree is rooted at
/// Rng{config.seed}.child("<scenario>-run").child(roundIndex), exactly as
/// the original serial loop derived it -- round parallelism changes no
/// stream.

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "analysis/experiment.h"
#include "net/infostation.h"
#include "net/node.h"

namespace vanet::analysis {

/// Builds the composite link model for a given road and channel config.
/// `obstruction` (optional) is applied to infra links.
std::unique_ptr<channel::CompositeLinkModel> buildLinkModel(
    const geom::Polyline& road, const ChannelConfig& config, Rng rng,
    std::function<double(geom::Vec2)> obstruction = nullptr);

// ----------------------------------------------------------------- urban

/// One fully-assembled urban round. Non-movable: nodes, agents and hooks
/// hold pointers into the world. `scenario` must outlive the world;
/// `config` is copied.
class UrbanRoundWorld {
 public:
  UrbanRoundWorld(const UrbanExperimentConfig& config,
                  const mobility::UrbanLoopScenario& scenario, int roundIndex);
  UrbanRoundWorld(const UrbanRoundWorld&) = delete;
  UrbanRoundWorld& operator=(const UrbanRoundWorld&) = delete;

  /// Starts the AP flows and the agents, then simulates to the round end.
  void simulate();

  /// Collects the round's trace and counter deltas. Call once, after
  /// simulate(); the trace is moved out.
  UrbanRoundOutcome takeOutcome();

  sim::Simulator& simulator() noexcept { return sim_; }

 private:
  UrbanExperimentConfig config_;
  Rng roundRng_;
  mobility::UrbanRound round_;
  std::unique_ptr<channel::CompositeLinkModel> link_;
  sim::Simulator sim_;
  mac::RadioEnvironment environment_;
  mobility::StaticMobility apMobility_;
  net::Node apNode_;
  std::vector<NodeId> carIds_;
  trace::RoundTrace trace_;
  std::unique_ptr<net::InfostationServer> infostation_;
  std::vector<std::unique_ptr<net::Node>> carNodes_;
  std::vector<std::unique_ptr<carq::CarqAgent>> agents_;
};

/// The urban round kernel: (config, scenario, roundIndex) -> outcome.
UrbanRoundOutcome runUrbanRound(const UrbanExperimentConfig& config,
                                const mobility::UrbanLoopScenario& scenario,
                                int roundIndex);

// --------------------------------------------------------------- highway

/// One fully-assembled highway round (multiple infostations along the
/// road, per-car file-download progress tracking). Non-movable; see
/// UrbanRoundWorld.
class HighwayRoundWorld {
 public:
  HighwayRoundWorld(const HighwayExperimentConfig& config,
                    const mobility::HighwayScenario& scenario, int roundIndex);
  HighwayRoundWorld(const HighwayRoundWorld&) = delete;
  HighwayRoundWorld& operator=(const HighwayRoundWorld&) = delete;

  void simulate();
  HighwayRoundOutcome takeOutcome();

  sim::Simulator& simulator() noexcept { return sim_; }

 private:
  /// A car's within-round download progress, filled in by agent hooks.
  struct CarProgress {
    std::set<NodeId> apsContacted;
    int visitsAtComplete = -1;
    sim::SimTime completeAt{};
  };

  HighwayExperimentConfig config_;
  Rng roundRng_;
  mobility::HighwayRound round_;
  std::unique_ptr<channel::CompositeLinkModel> link_;
  sim::Simulator sim_;
  mac::RadioEnvironment environment_;
  std::vector<NodeId> carIds_;
  trace::RoundTrace trace_;
  std::vector<std::unique_ptr<mobility::StaticMobility>> apMobilities_;
  std::vector<std::unique_ptr<net::Node>> apNodes_;
  std::vector<std::unique_ptr<net::InfostationServer>> infostations_;
  std::map<NodeId, CarProgress> progress_;
  std::vector<std::unique_ptr<net::Node>> carNodes_;
  std::vector<std::unique_ptr<carq::CarqAgent>> agents_;
};

/// The highway round kernel: (config, scenario, roundIndex) -> outcome.
HighwayRoundOutcome runHighwayRound(const HighwayExperimentConfig& config,
                                    const mobility::HighwayScenario& scenario,
                                    int roundIndex);

}  // namespace vanet::analysis
