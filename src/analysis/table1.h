#pragma once

/// \file table1.h
/// Text renderer for the paper's Table 1 ("Average values on the number of
/// packets received and lost in the three cars"), extended with the joint
/// (virtual-car) bound so the optimality gap is visible at a glance.

#include <string>

#include "trace/aggregate.h"

namespace vanet::analysis {

/// Renders the aggregated Table 1 in the paper's layout:
/// per car, mean and std-dev of packets transmitted by the AP, lost before
/// cooperation and lost after cooperation (absolute and percentage).
std::string renderTable1(const trace::Table1Data& data);

/// One-line per-car summary, for quickstart-style output.
std::string renderLossSummary(const trace::Table1Data& data);

}  // namespace vanet::analysis
