#pragma once

/// \file figures.h
/// Renderers for the paper's Figures 3-8: reception probability versus
/// packet number series, printed as aligned columns (the exact data behind
/// the paper's gnuplot curves) plus a coarse ASCII plot for quick visual
/// inspection in the bench output.

#include <string>

#include "trace/aggregate.h"

namespace vanet::analysis {

/// Figures 3-5: P(reception) of `figure.flow`'s packets at every car,
/// with the Region I/II/III boundaries.
std::string renderReceptionFigure(const trace::FlowFigure& figure,
                                  std::size_t smoothingHalfWindow = 2);

/// Figures 6-8: after-cooperation probability vs the joint (any-car)
/// probability for `figure.flow`.
std::string renderCoopFigure(const trace::FlowFigure& figure,
                             std::size_t smoothingHalfWindow = 2);

/// Compact ASCII plot of up to 4 series (rows: probability 1.0 .. 0.0).
std::string asciiPlot(const std::vector<std::vector<double>>& series,
                      const std::vector<std::string>& labels,
                      std::size_t width = 100, std::size_t height = 12);

}  // namespace vanet::analysis
