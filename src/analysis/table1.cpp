#include "analysis/table1.h"

#include <iomanip>
#include <sstream>

namespace vanet::analysis {

std::string renderTable1(const trace::Table1Data& data) {
  std::ostringstream out;
  out << "Table 1. Average values on the number of packets received and "
         "lost (over "
      << data.rounds << " rounds)\n";
  out << "-----------------------------------------------------------------"
         "-----------------------\n";
  out << std::left << std::setw(6) << "Car" << std::setw(10) << ""
      << std::right << std::setw(12) << "Tx by AP" << std::setw(11)
      << "Lost bef." << std::setw(10) << "(pct)" << std::setw(11)
      << "Lost aft." << std::setw(10) << "(pct)" << std::setw(11)
      << "Joint" << std::setw(10) << "(pct)" << "\n";
  out << "-----------------------------------------------------------------"
         "-----------------------\n";
  out << std::fixed;
  for (const trace::Table1Row& row : data.rows) {
    out << std::left << std::setw(6) << row.car << std::setw(10) << "Mean"
        << std::right << std::setprecision(1) << std::setw(12)
        << row.txByAp.mean() << std::setw(11) << row.lostBefore.mean()
        << std::setw(9) << row.pctLostBefore.mean() << "%" << std::setw(11)
        << row.lostAfter.mean() << std::setw(9) << row.pctLostAfter.mean()
        << "%" << std::setw(11) << row.lostJoint.mean() << std::setw(9)
        << row.pctLostJoint.mean() << "%\n";
    out << std::left << std::setw(6) << "" << std::setw(10) << "Std. Dev."
        << std::right << std::setw(12) << row.txByAp.stddev() << std::setw(11)
        << row.lostBefore.stddev() << std::setw(10) << "" << std::setw(11)
        << row.lostAfter.stddev() << std::setw(10) << "" << std::setw(11)
        << row.lostJoint.stddev() << std::setw(10) << "" << "\n";
    out << std::left << std::setw(6) << "" << std::setw(10) << "95% CI"
        << std::right << std::setw(11) << row.txByAp.confidence95() << " "
        << std::setw(11) << row.lostBefore.confidence95() << std::setw(10)
        << "" << std::setw(11) << row.lostAfter.confidence95()
        << std::setw(10) << "" << std::setw(11)
        << row.lostJoint.confidence95() << std::setw(10) << "" << "\n";
  }
  out << "-----------------------------------------------------------------"
         "-----------------------\n";
  return out.str();
}

std::string renderLossSummary(const trace::Table1Data& data) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(1);
  for (const trace::Table1Row& row : data.rows) {
    const double before = row.pctLostBefore.mean();
    const double after = row.pctLostAfter.mean();
    const double reduction =
        before > 0.0 ? 100.0 * (before - after) / before : 0.0;
    out << "car " << row.car << ": losses " << before << "% -> " << after
        << "% after cooperation (" << reduction << "% reduction; joint bound "
        << row.pctLostJoint.mean() << "%)\n";
  }
  return out.str();
}

}  // namespace vanet::analysis
