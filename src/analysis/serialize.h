#pragma once

/// \file serialize.h
/// JSON (de)serialization of the analysis-layer merge states
/// (ProtocolTotals with its embedded mac::MediumStats counters), used by
/// the campaign partial-result format. Like the trace serializers, the
/// full merge-state round-trips bit-identically.

#include <string>

#include "analysis/experiment.h"
#include "util/binio.h"
#include "util/json.h"

namespace vanet::analysis {

/// ProtocolTotals as a JSON object.
std::string protocolTotalsToJson(const ProtocolTotals& totals);

/// Parses protocolTotalsToJson() output; throws std::runtime_error on
/// malformed input.
ProtocolTotals protocolTotalsFromJson(const json::Value& value);

/// Binary twins for the compact campaign-partial format v3; same column
/// lists as the JSON pair (writer and reader cannot drift), raw IEEE-754
/// doubles (bit-exact by construction).
void protocolTotalsToBin(util::BinWriter& out, const ProtocolTotals& totals);
ProtocolTotals protocolTotalsFromBin(util::BinReader& in);

}  // namespace vanet::analysis
