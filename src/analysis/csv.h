#pragma once

/// \file csv.h
/// CSV export of figure series and Table 1 rows, so the paper's plots can
/// be regenerated with any plotting tool.

#include <string>
#include <vector>

#include "trace/aggregate.h"

namespace vanet::analysis {

/// Writes aligned columns to `path`. All columns share the index column
/// `indexName` starting at 1; shorter columns leave blanks.
/// Returns false (and logs) on I/O failure.
bool writeSeriesCsv(const std::string& path, const std::string& indexName,
                    const std::vector<std::string>& headers,
                    const std::vector<std::vector<double>>& columns);

/// Writes the Table 1 aggregate (one row per car).
bool writeTable1Csv(const std::string& path, const trace::Table1Data& data);

/// Renders a generic table (header row plus pre-formatted cells) as CSV
/// text. Cells containing commas, quotes or newlines are quoted per RFC
/// 4180. Used by the campaign engine's emitters.
std::string renderCsv(const std::vector<std::string>& headers,
                      const std::vector<std::vector<std::string>>& rows);

/// Writes renderCsv() output to `path`; false (and logs) on I/O failure.
bool writeRowsCsv(const std::string& path,
                  const std::vector<std::string>& headers,
                  const std::vector<std::vector<std::string>>& rows);

}  // namespace vanet::analysis
