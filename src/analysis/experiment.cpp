#include "analysis/experiment.h"

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "mobility/mobility_model.h"
#include "net/infostation.h"
#include "net/node.h"
#include "util/assert.h"

namespace vanet::analysis {
namespace {

std::unique_ptr<channel::FadingModel> makeFading(const ChannelConfig& config) {
  if (config.nakagamiM > 0.0) {
    return std::make_unique<channel::NakagamiFading>(config.nakagamiM);
  }
  if (config.ricianK < 0.0) return std::make_unique<channel::NoFading>();
  if (config.ricianK == 0.0) return std::make_unique<channel::RayleighFading>();
  return std::make_unique<channel::RicianFading>(config.ricianK);
}

/// Accumulates one car's protocol counters into the totals.
void addCounters(ProtocolTotals& totals, const carq::CarqCounters& c,
                 std::size_t buffered) {
  totals.requestsPerRound.add(static_cast<double>(c.requestsSent));
  totals.requestSeqsPerRound.add(static_cast<double>(c.requestSeqsSent));
  totals.coopDataPerRound.add(static_cast<double>(c.coopDataSent));
  totals.suppressedPerRound.add(static_cast<double>(c.responsesSuppressed));
  totals.hellosPerRound.add(static_cast<double>(c.hellosSent));
  totals.bufferedPerRound.add(static_cast<double>(buffered));
}

}  // namespace

std::unique_ptr<channel::CompositeLinkModel> buildLinkModel(
    const geom::Polyline& road, const ChannelConfig& config, Rng rng,
    std::function<double(geom::Vec2)> obstruction) {
  auto infraLoss = std::make_unique<channel::LogDistancePathLoss>(
      config.infraPathLossExponent, config.infraReferenceLossDb);
  auto c2cLoss = std::make_unique<channel::LogDistancePathLoss>(
      config.c2cPathLossExponent, config.c2cReferenceLossDb);
  std::unique_ptr<channel::ShadowingProvider> shadowing =
      std::make_unique<channel::CorrelatedRoadShadowing>(
          road, config.shadowing, rng.child("shadowing"));
  if (obstruction != nullptr) {
    shadowing = std::make_unique<channel::ObstructedShadowing>(
        std::move(shadowing), std::move(obstruction));
  }
  auto model = std::make_unique<channel::CompositeLinkModel>(
      std::move(infraLoss), std::move(c2cLoss), std::move(shadowing),
      makeFading(config), config.budget);
  if (config.burst.has_value()) {
    model->enableBurstOverlay(*config.burst, rng.child("burst"));
  }
  return model;
}

// ----------------------------------------------------------------- urban

UrbanExperiment::UrbanExperiment(UrbanExperimentConfig config)
    : config_(config), scenario_(config.scenario, config.seed) {}

trace::RoundTrace UrbanExperiment::runRound(int roundIndex,
                                            ProtocolTotals* totals) {
  const mobility::UrbanRound round = scenario_.makeRound(roundIndex);
  Rng roundRng = Rng{config_.seed}.child("urban-run").child(
      static_cast<std::uint64_t>(roundIndex));

  // Urban corner blocking: loss grows with distance off the covered
  // street (the covered street is the y ~ 0 edge of the lap).
  const double halfWidth = config_.channel.streetHalfWidthMetres;
  const double slope = config_.channel.obstructionDbPerMetre;
  const double cap = config_.channel.obstructionCapDb;
  auto obstruction = [halfWidth, slope, cap](geom::Vec2 pos) {
    const double off = std::max(0.0, pos.y - halfWidth);
    return std::min(cap, slope * off);
  };

  std::function<double(geom::Vec2)> obstructionFn;
  if (slope > 0.0) obstructionFn = obstruction;
  auto link = buildLinkModel(round.path, config_.channel,
                             roundRng.child("link"), std::move(obstructionFn));

  sim::Simulator sim;
  mac::RadioEnvironment environment(sim, *link, roundRng.child("medium"));

  // --- nodes ---
  mobility::StaticMobility apMobility(round.apPosition);
  net::Node apNode(sim, environment, kFirstApId, &apMobility,
                   mac::RadioConfig{config_.apTxPowerDbm}, mac::MacConfig{},
                   roundRng.child("ap"));

  std::vector<NodeId> carIds;
  for (int i = 0; i < config_.scenario.carCount; ++i) {
    carIds.push_back(static_cast<NodeId>(i + 1));
  }
  trace::RoundTrace roundTrace(carIds);

  net::InfostationConfig apConfig;
  apConfig.flows = carIds;
  apConfig.packetsPerSecondPerFlow = config_.packetsPerSecondPerFlow;
  apConfig.payloadBytes = config_.payloadBytes;
  apConfig.mode = config_.carq.phyMode;
  apConfig.start = round.flowStart;
  apConfig.stop = round.flowStop;
  apConfig.repeatCount = config_.repeatCount;
  net::InfostationServer infostation(
      apNode, apConfig,
      [&roundTrace](FlowId flow, SeqNo seq, int copy, sim::SimTime at) {
        roundTrace.recordApTx(flow, seq, copy, at);
      });

  std::vector<std::unique_ptr<net::Node>> carNodes;
  std::vector<std::unique_ptr<carq::CarqAgent>> agents;
  carNodes.reserve(carIds.size());
  agents.reserve(carIds.size());
  for (std::size_t i = 0; i < carIds.size(); ++i) {
    const NodeId carId = carIds[i];
    carNodes.push_back(std::make_unique<net::Node>(
        sim, environment, carId, round.cars[i].get(),
        mac::RadioConfig{config_.carTxPowerDbm}, mac::MacConfig{},
        roundRng.child("car-node").child(static_cast<std::uint64_t>(carId))));
    auto agent = std::make_unique<carq::CarqAgent>(
        *carNodes.back(), config_.carq,
        roundRng.child("agent").child(static_cast<std::uint64_t>(carId)));
    agent->hooks().onOverhearData = [&roundTrace, carId](FlowId flow, SeqNo seq,
                                                         sim::SimTime at) {
      roundTrace.recordOverhear(carId, flow, seq, at);
    };
    agent->hooks().onRecovered = [&roundTrace, carId](SeqNo seq,
                                                      sim::SimTime at) {
      roundTrace.recordRecovered(carId, seq, at);
    };
    agents.push_back(std::move(agent));
  }

  infostation.start();
  for (auto& agent : agents) {
    agent->start();
  }
  sim.runUntil(round.roundEnd);

  if (totals != nullptr) {
    for (std::size_t i = 0; i < agents.size(); ++i) {
      addCounters(*totals, agents[i]->counters(),
                  agents[i]->store().bufferedCount());
    }
    totals->medium.merge(environment.stats());
  }
  return roundTrace;
}

UrbanExperimentResult UrbanExperiment::run() {
  UrbanExperimentResult result;
  trace::Table1Accumulator table1;
  trace::FigureAccumulator figures;
  for (int round = 0; round < config_.rounds; ++round) {
    const trace::RoundTrace roundTrace = runRound(round, &result.totals);
    table1.addRound(roundTrace);
    figures.addRound(roundTrace);
  }
  result.table1 = table1.data();
  result.figures = figures.flows();
  result.rounds = config_.rounds;
  return result;
}

// --------------------------------------------------------------- highway

ChannelConfig highwayChannelDefaults() {
  ChannelConfig config;
  config.infraReferenceLossDb = 52.0;  // mast + cabling, no wall
  config.infraPathLossExponent = 2.6;  // ground clutter
  config.obstructionDbPerMetre = 0.0;  // open road
  return config;
}

HighwayExperiment::HighwayExperiment(HighwayExperimentConfig config)
    : config_(config), scenario_(config.scenario, config.seed) {}

HighwayExperimentResult HighwayExperiment::run() {
  HighwayExperimentResult result;
  trace::Table1Accumulator table1;

  for (int round = 0; round < config_.rounds; ++round) {
    const mobility::HighwayRound highwayRound = scenario_.makeRound(round);
    Rng roundRng = Rng{config_.seed}.child("highway-run").child(
        static_cast<std::uint64_t>(round));

    auto link = buildLinkModel(highwayRound.path, config_.channel,
                               roundRng.child("link"));
    sim::Simulator sim;
    mac::RadioEnvironment environment(sim, *link, roundRng.child("medium"));

    std::vector<NodeId> carIds;
    for (int i = 0; i < config_.scenario.carCount; ++i) {
      carIds.push_back(static_cast<NodeId>(i + 1));
    }
    trace::RoundTrace roundTrace(carIds);

    // --- access points along the road ---
    std::vector<std::unique_ptr<mobility::StaticMobility>> apMobilities;
    std::vector<std::unique_ptr<net::Node>> apNodes;
    std::vector<std::unique_ptr<net::InfostationServer>> infostations;
    for (std::size_t a = 0; a < highwayRound.apPositions.size(); ++a) {
      apMobilities.push_back(std::make_unique<mobility::StaticMobility>(
          highwayRound.apPositions[a]));
      apNodes.push_back(std::make_unique<net::Node>(
          sim, environment, kFirstApId + static_cast<NodeId>(a),
          apMobilities.back().get(), mac::RadioConfig{config_.apTxPowerDbm},
          mac::MacConfig{}, roundRng.child("ap").child(a)));
      net::InfostationConfig apConfig;
      apConfig.flows = carIds;
      apConfig.packetsPerSecondPerFlow = config_.packetsPerSecondPerFlow;
      apConfig.payloadBytes = config_.payloadBytes;
      apConfig.mode = config_.carq.phyMode;
      // Stagger AP schedules a little so co-channel APs do not beat.
      apConfig.start = sim::SimTime::millis(7.0 * static_cast<double>(a));
      apConfig.stop = highwayRound.roundEnd;
      apConfig.cycleLength = config_.carq.fileSizeSeqs;  // 0 = plain stream
      if (apConfig.cycleLength > 0) {
        // Stagger the content phase across infostations so consecutive
        // passes serve complementary slices of the file.
        apConfig.firstSeq =
            1 + static_cast<SeqNo>(
                    (static_cast<long>(a) * apConfig.cycleLength) /
                    static_cast<long>(highwayRound.apPositions.size()));
      }
      infostations.push_back(std::make_unique<net::InfostationServer>(
          *apNodes.back(), apConfig,
          [&roundTrace](FlowId flow, SeqNo seq, int copy, sim::SimTime at) {
            roundTrace.recordApTx(flow, seq, copy, at);
          }));
    }

    // --- cars ---
    struct CarProgress {
      std::set<NodeId> apsContacted;
      int visitsAtComplete = -1;
      sim::SimTime completeAt{};
    };
    std::map<NodeId, CarProgress> progress;

    std::vector<std::unique_ptr<net::Node>> carNodes;
    std::vector<std::unique_ptr<carq::CarqAgent>> agents;
    for (std::size_t i = 0; i < carIds.size(); ++i) {
      const NodeId carId = carIds[i];
      carNodes.push_back(std::make_unique<net::Node>(
          sim, environment, carId, highwayRound.cars[i].get(),
          mac::RadioConfig{config_.carTxPowerDbm}, mac::MacConfig{},
          roundRng.child("car-node").child(static_cast<std::uint64_t>(carId))));
      auto agent = std::make_unique<carq::CarqAgent>(
          *carNodes.back(), config_.carq,
          roundRng.child("agent").child(static_cast<std::uint64_t>(carId)));
      agent->hooks().onOverhearData = [&roundTrace, carId](
                                          FlowId flow, SeqNo seq,
                                          sim::SimTime at) {
        roundTrace.recordOverhear(carId, flow, seq, at);
      };
      agent->hooks().onRecovered = [&roundTrace, carId](SeqNo seq,
                                                        sim::SimTime at) {
        roundTrace.recordRecovered(carId, seq, at);
      };
      agent->hooks().onEnterReception = [&progress, carId](NodeId ap,
                                                           sim::SimTime) {
        progress[carId].apsContacted.insert(ap);
      };
      agent->hooks().onFileComplete = [&progress, carId](sim::SimTime at) {
        progress[carId].visitsAtComplete =
            static_cast<int>(progress[carId].apsContacted.size());
        progress[carId].completeAt = at;
      };
      agents.push_back(std::move(agent));
    }

    for (auto& infostation : infostations) infostation->start();
    for (auto& agent : agents) agent->start();
    sim.runUntil(highwayRound.roundEnd);

    table1.addRound(roundTrace);
    for (std::size_t i = 0; i < agents.size(); ++i) {
      addCounters(result.totals, agents[i]->counters(),
                  agents[i]->store().bufferedCount());
      const NodeId carId = carIds[i];
      HighwayCarResult& carResult = result.cars[carId];
      carResult.car = carId;
      const CarProgress& p = progress[carId];
      if (p.visitsAtComplete >= 0) {
        ++carResult.completedRounds;
        carResult.apVisitsToComplete.add(p.visitsAtComplete);
        carResult.timeToCompleteSeconds.add(p.completeAt.toSeconds());
      }
    }
    result.totals.medium.merge(environment.stats());
  }

  result.table1 = table1.data();
  result.rounds = config_.rounds;
  return result;
}

}  // namespace vanet::analysis
