#include "analysis/experiment.h"

#include <cstddef>

#include "analysis/round.h"
#include "obs/counters.h"
#include "util/reorder.h"
#include "util/thread_pool.h"

namespace vanet::analysis {
namespace {

/// The fold layer's round engine: resolves the round-worker count
/// against the shared thread budget, runs the kernel for every round,
/// and folds the outcomes strictly in round order through the bounded
/// reordering window -- bit-identical to the serial loop at any worker
/// count (including the degraded inline case). Returns the workers used.
template <typename Outcome, typename Kernel, typename Fold>
int runRoundsOrdered(int rounds, int requestedWorkers, Kernel&& kernel,
                     Fold&& fold) {
  util::ThreadBudget& budget = util::ThreadBudget::global();
  int want = requestedWorkers;
  if (want <= 0) {
    // Claim whatever the budget has left. The engine cannot tell whether
    // the calling thread is already registered (a campaign job worker)
    // or not (a standalone experiment), so it counts the caller against
    // the remaining room either way: nested use leaves one slot spare
    // rather than the standalone case oversubscribing by one.
    want = budget.limit() - budget.inUse();
  }
  if (want > rounds) want = rounds;
  if (want < 1) want = 1;
  // The calling thread is one worker; lease only the extras, without
  // force: nested under busy campaign job workers this degrades
  // gracefully toward inline execution instead of oversubscribing.
  const util::ThreadLease lease(budget, want - 1);
  const int workers = 1 + lease.granted();
  util::foldOrdered<Outcome>(
      static_cast<std::size_t>(rounds), workers,
      util::reorderWindowCap(workers),
      [&kernel](std::size_t round) { return kernel(static_cast<int>(round)); },
      [&fold](std::size_t round, Outcome& outcome) {
        OBS_SCOPED_TIMER("round.fold");
        fold(static_cast<int>(round), outcome);
      });
  return workers;
}

}  // namespace

// ----------------------------------------------------------------- urban

UrbanExperiment::UrbanExperiment(UrbanExperimentConfig config)
    : config_(config), scenario_(config.scenario, config.seed) {}

UrbanRoundOutcome UrbanExperiment::runRound(int roundIndex) const {
  return runUrbanRound(config_, scenario_, roundIndex);
}

UrbanExperimentResult UrbanExperiment::run() {
  UrbanExperimentResult result;
  trace::Table1Accumulator table1;
  trace::FigureAccumulator figures;
  result.roundWorkers = runRoundsOrdered<UrbanRoundOutcome>(
      config_.rounds, config_.roundThreads,
      [this](int round) { return runRound(round); },
      [&](int, UrbanRoundOutcome& outcome) {
        table1.addRound(outcome.trace);
        figures.addRound(outcome.trace);
        result.totals.merge(outcome.totals);
      });
  result.table1 = table1.data();
  result.figures = figures.flows();
  result.rounds = config_.rounds;
  return result;
}

// --------------------------------------------------------------- highway

ChannelConfig highwayChannelDefaults() {
  ChannelConfig config;
  config.infraReferenceLossDb = 52.0;  // mast + cabling, no wall
  config.infraPathLossExponent = 2.6;  // ground clutter
  config.obstructionDbPerMetre = 0.0;  // open road
  return config;
}

HighwayExperiment::HighwayExperiment(HighwayExperimentConfig config)
    : config_(config), scenario_(config.scenario, config.seed) {}

HighwayRoundOutcome HighwayExperiment::runRound(int roundIndex) const {
  return runHighwayRound(config_, scenario_, roundIndex);
}

HighwayExperimentResult HighwayExperiment::run() {
  HighwayExperimentResult result;
  trace::Table1Accumulator table1;
  result.roundWorkers = runRoundsOrdered<HighwayRoundOutcome>(
      config_.rounds, config_.roundThreads,
      [this](int round) { return runRound(round); },
      [&](int, HighwayRoundOutcome& outcome) {
        table1.addRound(outcome.trace);
        for (const HighwayCarRound& record : outcome.cars) {
          HighwayCarResult& carResult = result.cars[record.car];
          carResult.car = record.car;
          if (record.visitsAtComplete >= 0) {
            ++carResult.completedRounds;
            carResult.apVisitsToComplete.add(record.visitsAtComplete);
            carResult.timeToCompleteSeconds.add(record.completeAtSeconds);
          }
        }
        result.totals.merge(outcome.totals);
      });
  result.table1 = table1.data();
  result.rounds = config_.rounds;
  return result;
}

}  // namespace vanet::analysis
