#include "analysis/figures.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace vanet::analysis {
namespace {

/// Downsamples `series` to `width` columns by averaging.
std::vector<double> resample(const std::vector<double>& series,
                             std::size_t width) {
  if (series.empty() || series.size() <= width) return series;
  std::vector<double> out(width, 0.0);
  for (std::size_t c = 0; c < width; ++c) {
    const std::size_t lo = c * series.size() / width;
    std::size_t hi = (c + 1) * series.size() / width;
    hi = std::max(hi, lo + 1);
    double sum = 0.0;
    for (std::size_t i = lo; i < hi; ++i) sum += series[i];
    out[c] = sum / static_cast<double>(hi - lo);
  }
  return out;
}

/// First series index any round populated: earlier cells belong to packets
/// transmitted before this flow's destination ever entered coverage. The
/// paper's figures number packets from the window start, so the renderers
/// drop the leading empty cells and report the offset.
std::size_t firstActiveIndex(const trace::FlowFigure& figure) {
  std::size_t i = 0;
  while (i < figure.joint.size() && figure.joint.at(i).count() == 0) ++i;
  return i;
}

/// One past the last index with solid round coverage. Window ends jitter
/// across rounds, so tail cells fed by only a round or two would show
/// meaningless spikes; like the paper's plots we keep the common range
/// (cells populated by at least a quarter of the rounds).
std::size_t lastActiveIndex(const trace::FlowFigure& figure) {
  std::size_t maxCount = 0;
  for (std::size_t i = 0; i < figure.joint.size(); ++i) {
    maxCount = std::max(maxCount, figure.joint.at(i).count());
  }
  const std::size_t threshold = std::max<std::size_t>(1, maxCount / 4);
  std::size_t end = figure.joint.size();
  while (end > 0 && figure.joint.at(end - 1).count() < threshold) --end;
  return end;
}

std::vector<double> slice(const std::vector<double>& series, std::size_t start,
                          std::size_t end) {
  end = std::min(end, series.size());
  if (start >= end) return {};
  return std::vector<double>(series.begin() + static_cast<std::ptrdiff_t>(start),
                             series.begin() + static_cast<std::ptrdiff_t>(end));
}

void printHeaderAndRegions(std::ostringstream& out,
                           const trace::FlowFigure& figure,
                           std::size_t offset) {
  out << std::fixed << std::setprecision(1);
  if (offset > 0) {
    out << "(packet numbers relative to the window start; absolute offset +"
        << offset << ")\n";
  }
  const double shift = static_cast<double>(offset);
  out << "Region I/II boundary ~ packet "
      << figure.regionBoundary12.mean() - shift << "  (sd "
      << figure.regionBoundary12.stddev() << ")\n";
  out << "Region II/III boundary ~ packet "
      << figure.regionBoundary23.mean() - shift << "  (sd "
      << figure.regionBoundary23.stddev() << ")\n";
}

}  // namespace

std::string asciiPlot(const std::vector<std::vector<double>>& series,
                      const std::vector<std::string>& labels,
                      std::size_t width, std::size_t height) {
  static constexpr char kMarks[] = {'*', '+', 'o', 'x'};
  std::ostringstream out;
  std::vector<std::vector<double>> cols;
  cols.reserve(series.size());
  std::size_t maxLen = 0;
  for (const auto& s : series) {
    cols.push_back(resample(s, width));
    maxLen = std::max(maxLen, cols.back().size());
  }
  for (std::size_t row = 0; row < height; ++row) {
    const double hi = 1.0 - static_cast<double>(row) / static_cast<double>(height);
    const double lo = hi - 1.0 / static_cast<double>(height);
    std::string line(maxLen, ' ');
    for (std::size_t s = 0; s < cols.size(); ++s) {
      const char mark = kMarks[s % sizeof(kMarks)];
      for (std::size_t c = 0; c < cols[s].size(); ++c) {
        const double v = cols[s][c];
        if (v > lo && v <= hi) line[c] = mark;
      }
    }
    out << (row == 0 ? "1.0 |" : row == height - 1 ? "0.0 |" : "    |") << line
        << "\n";
  }
  out << "    +" << std::string(maxLen, '-') << "> packet number\n";
  for (std::size_t s = 0; s < labels.size(); ++s) {
    out << "      " << kMarks[s % sizeof(kMarks)] << " = " << labels[s] << "\n";
  }
  return out.str();
}

std::string renderReceptionFigure(const trace::FlowFigure& figure,
                                  std::size_t smoothingHalfWindow) {
  std::ostringstream out;
  out << "Probability of reception in packets addressed to car "
      << figure.flow << "\n";
  const std::size_t offset = firstActiveIndex(figure);
  const std::size_t end = lastActiveIndex(figure);
  printHeaderAndRegions(out, figure, offset);

  std::vector<std::vector<double>> series;
  std::vector<std::string> labels;
  for (const auto& [car, acc] : figure.rxByCar) {
    series.push_back(slice(acc.smoothedMeans(smoothingHalfWindow), offset, end));
    labels.push_back("Rx in car " + std::to_string(car));
  }
  out << asciiPlot(series, labels);

  // Column dump (the figure's underlying data).
  out << std::setw(8) << "packet";
  for (const auto& label : labels) out << std::setw(14) << label;
  out << "\n" << std::setprecision(3);
  std::size_t maxLen = 0;
  for (const auto& s : series) maxLen = std::max(maxLen, s.size());
  for (std::size_t i = 0; i < maxLen; ++i) {
    out << std::setw(8) << (i + 1);
    for (const auto& s : series) {
      if (i < s.size()) {
        out << std::setw(14) << s[i];
      } else {
        out << std::setw(14) << "-";
      }
    }
    out << "\n";
  }
  return out.str();
}

std::string renderCoopFigure(const trace::FlowFigure& figure,
                             std::size_t smoothingHalfWindow) {
  std::ostringstream out;
  out << "Probability of reception with C-ARQ in car " << figure.flow << "\n";
  const std::size_t offset = firstActiveIndex(figure);
  const std::size_t end = lastActiveIndex(figure);
  printHeaderAndRegions(out, figure, offset);

  const std::vector<double> after =
      slice(figure.afterCoop.smoothedMeans(smoothingHalfWindow), offset, end);
  const std::vector<double> joint =
      slice(figure.joint.smoothedMeans(smoothingHalfWindow), offset, end);
  out << asciiPlot(
      {after, joint},
      {"Rx in car " + std::to_string(figure.flow) + " after coop.",
       "Joint Rx in any car"});

  // Coincidence metric: the paper's claim is that the two curves are
  // "almost coincident".
  double maxGap = 0.0;
  double sumGap = 0.0;
  const std::size_t n = std::min(after.size(), joint.size());
  for (std::size_t i = 0; i < n; ++i) {
    const double gap = std::abs(after[i] - joint[i]);
    maxGap = std::max(maxGap, gap);
    sumGap += gap;
  }
  out << std::setprecision(4);
  out << "mean |after-coop - joint| = " << (n > 0 ? sumGap / static_cast<double>(n) : 0.0)
      << ", max = " << maxGap << "\n";

  out << std::setw(8) << "packet" << std::setw(14) << "after-coop"
      << std::setw(14) << "joint" << "\n"
      << std::setprecision(3);
  for (std::size_t i = 0; i < n; ++i) {
    out << std::setw(8) << (i + 1) << std::setw(14) << after[i]
        << std::setw(14) << joint[i] << "\n";
  }
  return out.str();
}

}  // namespace vanet::analysis
