#include "analysis/serialize.h"

#include <stdexcept>
#include <utility>
#include <vector>

#include "trace/serialize.h"

namespace vanet::analysis {
namespace {

/// The per-round stat fields in serialization order; writer and reader
/// share the list so they cannot drift.
std::vector<std::pair<const char*, RunningStats ProtocolTotals::*>>
totalsColumns() {
  return {{"requests", &ProtocolTotals::requestsPerRound},
          {"request_seqs", &ProtocolTotals::requestSeqsPerRound},
          {"coop_data", &ProtocolTotals::coopDataPerRound},
          {"suppressed", &ProtocolTotals::suppressedPerRound},
          {"hellos", &ProtocolTotals::hellosPerRound},
          {"buffered", &ProtocolTotals::bufferedPerRound}};
}

std::vector<std::pair<const char*, std::uint64_t mac::MediumStats::*>>
mediumColumns() {
  return {{"tx", &mac::MediumStats::framesTransmitted},
          {"delivered", &mac::MediumStats::framesDelivered},
          {"below_sensitivity", &mac::MediumStats::framesBelowSensitivity},
          {"collided", &mac::MediumStats::framesCollided},
          {"channel_error", &mac::MediumStats::framesChannelError},
          {"burst_lost", &mac::MediumStats::framesBurstLost},
          {"half_duplex_missed", &mac::MediumStats::framesHalfDuplexMissed},
          {"corrupt_delivered", &mac::MediumStats::framesCorruptDelivered}};
}

}  // namespace

std::string protocolTotalsToJson(const ProtocolTotals& totals) {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, field] : totalsColumns()) {
    if (!first) out += ",";
    first = false;
    out += json::quote(name) + ":" + trace::runningStatsToJson(totals.*field);
  }
  out += ",\"medium\":{";
  first = true;
  for (const auto& [name, field] : mediumColumns()) {
    if (!first) out += ",";
    first = false;
    out += json::quote(name) + ":" + std::to_string(totals.medium.*field);
  }
  out += "}}";
  return out;
}

ProtocolTotals protocolTotalsFromJson(const json::Value& value) {
  ProtocolTotals totals;
  for (const auto& [name, field] : totalsColumns()) {
    totals.*field = trace::runningStatsFromJson(value.at(name));
  }
  const json::Value& medium = value.at("medium");
  for (const auto& [name, field] : mediumColumns()) {
    totals.medium.*field = medium.at(name).asUInt64();
  }
  return totals;
}

void protocolTotalsToBin(util::BinWriter& out, const ProtocolTotals& totals) {
  for (const auto& [name, field] : totalsColumns()) {
    (void)name;  // binary records carry positions, not names
    trace::runningStatsToBin(out, totals.*field);
  }
  for (const auto& [name, field] : mediumColumns()) {
    (void)name;
    out.u64(totals.medium.*field);
  }
}

ProtocolTotals protocolTotalsFromBin(util::BinReader& in) {
  ProtocolTotals totals;
  for (const auto& [name, field] : totalsColumns()) {
    (void)name;
    totals.*field = trace::runningStatsFromBin(in);
  }
  for (const auto& [name, field] : mediumColumns()) {
    (void)name;
    totals.medium.*field = in.u64("medium counter");
  }
  return totals;
}

}  // namespace vanet::analysis
