#include "analysis/round.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "mobility/mobility_model.h"
#include "obs/counters.h"
#include "util/assert.h"

namespace vanet::analysis {
namespace {

std::unique_ptr<channel::FadingModel> makeFading(const ChannelConfig& config) {
  if (config.nakagamiM > 0.0) {
    return std::make_unique<channel::NakagamiFading>(config.nakagamiM);
  }
  if (config.ricianK < 0.0) return std::make_unique<channel::NoFading>();
  if (config.ricianK == 0.0) return std::make_unique<channel::RayleighFading>();
  return std::make_unique<channel::RicianFading>(config.ricianK);
}

/// Accumulates one car's protocol counters into the totals.
void addCounters(ProtocolTotals& totals, const carq::CarqCounters& c,
                 std::size_t buffered) {
  totals.requestsPerRound.add(static_cast<double>(c.requestsSent));
  totals.requestSeqsPerRound.add(static_cast<double>(c.requestSeqsSent));
  totals.coopDataPerRound.add(static_cast<double>(c.coopDataSent));
  totals.suppressedPerRound.add(static_cast<double>(c.responsesSuppressed));
  totals.hellosPerRound.add(static_cast<double>(c.hellosSent));
  totals.bufferedPerRound.add(static_cast<double>(buffered));
}

/// Urban corner blocking: loss grows with distance off the covered
/// street (the covered street is the y ~ 0 edge of the lap). Null when
/// obstruction is disabled.
std::function<double(geom::Vec2)> urbanObstruction(
    const ChannelConfig& channel) {
  const double halfWidth = channel.streetHalfWidthMetres;
  const double slope = channel.obstructionDbPerMetre;
  const double cap = channel.obstructionCapDb;
  if (slope <= 0.0) return nullptr;
  return [halfWidth, slope, cap](geom::Vec2 pos) {
    const double off = std::max(0.0, pos.y - halfWidth);
    return std::min(cap, slope * off);
  };
}

std::vector<NodeId> platoonIds(int carCount) {
  std::vector<NodeId> ids;
  ids.reserve(static_cast<std::size_t>(carCount));
  for (int i = 0; i < carCount; ++i) {
    ids.push_back(static_cast<NodeId>(i + 1));
  }
  return ids;
}

}  // namespace

std::unique_ptr<channel::CompositeLinkModel> buildLinkModel(
    const geom::Polyline& road, const ChannelConfig& config, Rng rng,
    std::function<double(geom::Vec2)> obstruction) {
  auto infraLoss = std::make_unique<channel::LogDistancePathLoss>(
      config.infraPathLossExponent, config.infraReferenceLossDb);
  auto c2cLoss = std::make_unique<channel::LogDistancePathLoss>(
      config.c2cPathLossExponent, config.c2cReferenceLossDb);
  std::unique_ptr<channel::ShadowingProvider> shadowing =
      std::make_unique<channel::CorrelatedRoadShadowing>(
          road, config.shadowing, rng.child("shadowing"));
  if (obstruction != nullptr) {
    shadowing = std::make_unique<channel::ObstructedShadowing>(
        std::move(shadowing), std::move(obstruction));
  }
  auto model = std::make_unique<channel::CompositeLinkModel>(
      std::move(infraLoss), std::move(c2cLoss), std::move(shadowing),
      makeFading(config), config.budget);
  if (config.burst.has_value()) {
    model->enableBurstOverlay(*config.burst, rng.child("burst"));
  }
  return model;
}

// ----------------------------------------------------------------- urban

UrbanRoundWorld::UrbanRoundWorld(const UrbanExperimentConfig& config,
                                 const mobility::UrbanLoopScenario& scenario,
                                 int roundIndex)
    : config_(config),
      roundRng_(Rng{config.seed}
                    .child("urban-run")
                    .child(static_cast<std::uint64_t>(roundIndex))),
      round_(scenario.makeRound(roundIndex)),
      link_(buildLinkModel(round_.path, config_.channel,
                           roundRng_.child("link"),
                           urbanObstruction(config_.channel))),
      environment_(sim_, *link_, roundRng_.child("medium")),
      apMobility_(round_.apPosition),
      apNode_(sim_, environment_, kFirstApId, &apMobility_,
              mac::RadioConfig{config_.apTxPowerDbm}, mac::MacConfig{},
              roundRng_.child("ap")),
      carIds_(platoonIds(config_.scenario.carCount)),
      trace_(carIds_) {
  net::InfostationConfig apConfig;
  apConfig.flows = carIds_;
  apConfig.packetsPerSecondPerFlow = config_.packetsPerSecondPerFlow;
  apConfig.payloadBytes = config_.payloadBytes;
  apConfig.mode = config_.carq.phyMode;
  apConfig.start = round_.flowStart;
  apConfig.stop = round_.flowStop;
  apConfig.repeatCount = config_.repeatCount;
  infostation_ = std::make_unique<net::InfostationServer>(
      apNode_, apConfig,
      [this](FlowId flow, SeqNo seq, int copy, sim::SimTime at) {
        trace_.recordApTx(flow, seq, copy, at);
      });

  carNodes_.reserve(carIds_.size());
  agents_.reserve(carIds_.size());
  for (std::size_t i = 0; i < carIds_.size(); ++i) {
    const NodeId carId = carIds_[i];
    carNodes_.push_back(std::make_unique<net::Node>(
        sim_, environment_, carId, round_.cars[i].get(),
        mac::RadioConfig{config_.carTxPowerDbm}, mac::MacConfig{},
        roundRng_.child("car-node").child(static_cast<std::uint64_t>(carId))));
    auto agent = std::make_unique<carq::CarqAgent>(
        *carNodes_.back(), config_.carq,
        roundRng_.child("agent").child(static_cast<std::uint64_t>(carId)));
    agent->hooks().onOverhearData = [this, carId](FlowId flow, SeqNo seq,
                                                  sim::SimTime at) {
      trace_.recordOverhear(carId, flow, seq, at);
    };
    agent->hooks().onRecovered = [this, carId](SeqNo seq, sim::SimTime at) {
      trace_.recordRecovered(carId, seq, at);
    };
    agents_.push_back(std::move(agent));
  }
}

void UrbanRoundWorld::simulate() {
  infostation_->start();
  for (auto& agent : agents_) {
    agent->start();
  }
  sim_.runUntil(round_.roundEnd);
}

UrbanRoundOutcome UrbanRoundWorld::takeOutcome() {
  ProtocolTotals totals;
  for (auto& agent : agents_) {
    addCounters(totals, agent->counters(), agent->store().bufferedCount());
  }
  totals.medium.merge(environment_.stats());
  return UrbanRoundOutcome{std::move(trace_), std::move(totals)};
}

UrbanRoundOutcome runUrbanRound(const UrbanExperimentConfig& config,
                                const mobility::UrbanLoopScenario& scenario,
                                int roundIndex) {
  // World build vs round kernel split out so the perf trajectory can
  // tell setup cost from simulation cost (the worlds are non-movable,
  // hence the optional).
  std::optional<UrbanRoundWorld> world;
  {
    OBS_SCOPED_TIMER("round.build");
    world.emplace(config, scenario, roundIndex);
  }
  OBS_SCOPED_TIMER("round.kernel");
  world->simulate();
  return world->takeOutcome();
}

// --------------------------------------------------------------- highway

HighwayRoundWorld::HighwayRoundWorld(const HighwayExperimentConfig& config,
                                     const mobility::HighwayScenario& scenario,
                                     int roundIndex)
    : config_(config),
      roundRng_(Rng{config.seed}
                    .child("highway-run")
                    .child(static_cast<std::uint64_t>(roundIndex))),
      round_(scenario.makeRound(roundIndex)),
      link_(buildLinkModel(round_.path, config_.channel,
                           roundRng_.child("link"))),
      environment_(sim_, *link_, roundRng_.child("medium")),
      carIds_(platoonIds(config_.scenario.carCount)),
      trace_(carIds_) {
  // --- access points along the road ---
  for (std::size_t a = 0; a < round_.apPositions.size(); ++a) {
    apMobilities_.push_back(
        std::make_unique<mobility::StaticMobility>(round_.apPositions[a]));
    apNodes_.push_back(std::make_unique<net::Node>(
        sim_, environment_, kFirstApId + static_cast<NodeId>(a),
        apMobilities_.back().get(), mac::RadioConfig{config_.apTxPowerDbm},
        mac::MacConfig{}, roundRng_.child("ap").child(a)));
    net::InfostationConfig apConfig;
    apConfig.flows = carIds_;
    apConfig.packetsPerSecondPerFlow = config_.packetsPerSecondPerFlow;
    apConfig.payloadBytes = config_.payloadBytes;
    apConfig.mode = config_.carq.phyMode;
    // Stagger AP schedules a little so co-channel APs do not beat.
    apConfig.start = sim::SimTime::millis(7.0 * static_cast<double>(a));
    apConfig.stop = round_.roundEnd;
    apConfig.cycleLength = config_.carq.fileSizeSeqs;  // 0 = plain stream
    if (apConfig.cycleLength > 0) {
      // Stagger the content phase across infostations so consecutive
      // passes serve complementary slices of the file.
      apConfig.firstSeq =
          1 + static_cast<SeqNo>(
                  (static_cast<long>(a) * apConfig.cycleLength) /
                  static_cast<long>(round_.apPositions.size()));
    }
    infostations_.push_back(std::make_unique<net::InfostationServer>(
        *apNodes_.back(), apConfig,
        [this](FlowId flow, SeqNo seq, int copy, sim::SimTime at) {
          trace_.recordApTx(flow, seq, copy, at);
        }));
  }

  // --- cars ---
  for (std::size_t i = 0; i < carIds_.size(); ++i) {
    const NodeId carId = carIds_[i];
    carNodes_.push_back(std::make_unique<net::Node>(
        sim_, environment_, carId, round_.cars[i].get(),
        mac::RadioConfig{config_.carTxPowerDbm}, mac::MacConfig{},
        roundRng_.child("car-node").child(static_cast<std::uint64_t>(carId))));
    auto agent = std::make_unique<carq::CarqAgent>(
        *carNodes_.back(), config_.carq,
        roundRng_.child("agent").child(static_cast<std::uint64_t>(carId)));
    agent->hooks().onOverhearData = [this, carId](FlowId flow, SeqNo seq,
                                                  sim::SimTime at) {
      trace_.recordOverhear(carId, flow, seq, at);
    };
    agent->hooks().onRecovered = [this, carId](SeqNo seq, sim::SimTime at) {
      trace_.recordRecovered(carId, seq, at);
    };
    agent->hooks().onEnterReception = [this, carId](NodeId ap, sim::SimTime) {
      progress_[carId].apsContacted.insert(ap);
    };
    agent->hooks().onFileComplete = [this, carId](sim::SimTime at) {
      progress_[carId].visitsAtComplete =
          static_cast<int>(progress_[carId].apsContacted.size());
      progress_[carId].completeAt = at;
    };
    agents_.push_back(std::move(agent));
  }
}

void HighwayRoundWorld::simulate() {
  for (auto& infostation : infostations_) {
    infostation->start();
  }
  for (auto& agent : agents_) {
    agent->start();
  }
  sim_.runUntil(round_.roundEnd);
}

HighwayRoundOutcome HighwayRoundWorld::takeOutcome() {
  ProtocolTotals totals;
  for (auto& agent : agents_) {
    addCounters(totals, agent->counters(), agent->store().bufferedCount());
  }
  totals.medium.merge(environment_.stats());
  std::vector<HighwayCarRound> cars;
  cars.reserve(carIds_.size());
  for (const NodeId carId : carIds_) {
    const CarProgress& p = progress_[carId];
    HighwayCarRound record;
    record.car = carId;
    record.visitsAtComplete = p.visitsAtComplete;
    record.completeAtSeconds = p.completeAt.toSeconds();
    cars.push_back(record);
  }
  return HighwayRoundOutcome{std::move(trace_), std::move(totals),
                             std::move(cars)};
}

HighwayRoundOutcome runHighwayRound(const HighwayExperimentConfig& config,
                                    const mobility::HighwayScenario& scenario,
                                    int roundIndex) {
  std::optional<HighwayRoundWorld> world;
  {
    OBS_SCOPED_TIMER("round.build");
    world.emplace(config, scenario, roundIndex);
  }
  OBS_SCOPED_TIMER("round.kernel");
  world->simulate();
  return world->takeOutcome();
}

}  // namespace vanet::analysis
