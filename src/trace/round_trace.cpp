#include "trace/round_trace.h"

#include <algorithm>

#include "util/assert.h"

namespace vanet::trace {

RoundTrace::RoundTrace(std::vector<NodeId> carIds) : carIds_(std::move(carIds)) {
  VANET_ASSERT(!carIds_.empty(), "a round needs at least one car");
}

void RoundTrace::recordApTx(FlowId flow, SeqNo seq, int copy, sim::SimTime at) {
  if (copy != 0) return;  // retransmissions do not advance the tx log
  tx_[flow].emplace(seq, at);
}

void RoundTrace::recordOverhear(NodeId car, FlowId flow, SeqNo seq,
                                sim::SimTime at) {
  overheard_[car][flow].insert(seq);
  // Order-insensitive min/max so traces can be assembled out of order.
  const auto firstAny = firstAnyRx_.find(car);
  if (firstAny == firstAnyRx_.end()) {
    firstAnyRx_[car] = at;
  } else {
    firstAny->second = std::min(firstAny->second, at);
  }
  lastAnyRx_[car] = std::max(lastAnyRx_[car], at);
  if (flow == car) {
    const auto firstOwn = firstOwnRx_.find(car);
    if (firstOwn == firstOwnRx_.end()) {
      firstOwnRx_[car] = at;
    } else {
      firstOwn->second = std::min(firstOwn->second, at);
    }
    auto& times = ownRxTimes_[car];
    times.insert(std::upper_bound(times.begin(), times.end(), at), at);
  }
}

void RoundTrace::recordRecovered(NodeId car, SeqNo seq, sim::SimTime) {
  recovered_[car].insert(seq);
}

bool RoundTrace::wasOverheard(NodeId car, FlowId flow, SeqNo seq) const {
  const auto carIt = overheard_.find(car);
  if (carIt == overheard_.end()) return false;
  const auto flowIt = carIt->second.find(flow);
  return flowIt != carIt->second.end() && flowIt->second.count(seq) > 0;
}

bool RoundTrace::anyOverheard(FlowId flow, SeqNo seq) const {
  return std::any_of(carIds_.begin(), carIds_.end(), [&](NodeId car) {
    return wasOverheard(car, flow, seq);
  });
}

bool RoundTrace::wasRecovered(NodeId car, SeqNo seq) const {
  const auto it = recovered_.find(car);
  return it != recovered_.end() && it->second.count(seq) > 0;
}

std::optional<sim::SimTime> RoundTrace::txTime(FlowId flow, SeqNo seq) const {
  const auto flowIt = tx_.find(flow);
  if (flowIt == tx_.end()) return std::nullopt;
  const auto seqIt = flowIt->second.find(seq);
  if (seqIt == flowIt->second.end()) return std::nullopt;
  return seqIt->second;
}

SeqNo RoundTrace::maxSeqTransmitted(FlowId flow) const {
  const auto flowIt = tx_.find(flow);
  if (flowIt == tx_.end() || flowIt->second.empty()) return 0;
  return flowIt->second.rbegin()->first;
}

std::optional<std::pair<sim::SimTime, sim::SimTime>>
RoundTrace::associationWindow(NodeId car) const {
  const auto first = firstOwnRx_.find(car);
  if (first == firstOwnRx_.end()) return std::nullopt;
  const auto last = lastAnyRx_.find(car);
  VANET_ASSERT(last != lastAnyRx_.end(), "own rx implies any rx");
  return std::make_pair(first->second, last->second);
}

std::vector<SeqNo> RoundTrace::seqsTransmittedDuring(FlowId flow,
                                                     sim::SimTime from,
                                                     sim::SimTime to) const {
  std::vector<SeqNo> out;
  const auto flowIt = tx_.find(flow);
  if (flowIt == tx_.end()) return out;
  for (const auto& [seq, at] : flowIt->second) {
    if (at >= from && at <= to) out.push_back(seq);
  }
  return out;
}

std::optional<sim::SimTime> RoundTrace::firstOverhearTime(NodeId car) const {
  const auto it = firstAnyRx_.find(car);
  if (it == firstAnyRx_.end()) return std::nullopt;
  return it->second;
}

const std::vector<sim::SimTime>& RoundTrace::directRxTimes(NodeId car) const {
  const auto it = ownRxTimes_.find(car);
  return it != ownRxTimes_.end() ? it->second : emptyTimes_;
}

std::size_t RoundTrace::txCount(FlowId flow) const {
  const auto it = tx_.find(flow);
  return it != tx_.end() ? it->second.size() : 0;
}

}  // namespace vanet::trace
