#include "trace/aggregate.h"

#include <algorithm>

#include "util/assert.h"

namespace vanet::trace {

void Table1Accumulator::addRound(const RoundTrace& trace) {
  ++rounds_;
  for (const NodeId car : trace.carIds()) {
    Table1Row& row = rows_[car];
    row.car = car;
    const auto window = trace.associationWindow(car);
    if (!window.has_value()) {
      // The car never heard the AP this round: everything it was sent is
      // lost, but there is no window to count against; record zeros.
      row.txByAp.add(0.0);
      row.lostBefore.add(0.0);
      row.lostAfter.add(0.0);
      row.lostJoint.add(0.0);
      continue;
    }
    const std::vector<SeqNo> seqs =
        trace.seqsTransmittedDuring(car, window->first, window->second);
    int before = 0;
    int after = 0;
    int joint = 0;
    for (const SeqNo seq : seqs) {
      const bool direct = trace.wasOverheard(car, car, seq);
      const bool held = direct || trace.wasRecovered(car, seq);
      const bool anyone = trace.anyOverheard(car, seq);
      if (!direct) ++before;
      if (!held) ++after;
      if (!anyone) ++joint;
    }
    const auto tx = static_cast<double>(seqs.size());
    row.txByAp.add(tx);
    row.lostBefore.add(before);
    row.lostAfter.add(after);
    row.lostJoint.add(joint);
    if (!seqs.empty()) {
      row.pctLostBefore.add(100.0 * before / tx);
      row.pctLostAfter.add(100.0 * after / tx);
      row.pctLostJoint.add(100.0 * joint / tx);
    }
  }
}

void mergeRow(Table1Row& into, const Table1Row& from) {
  VANET_ASSERT(into.car == from.car, "Table1Row merge must match car ids");
  into.txByAp.merge(from.txByAp);
  into.lostBefore.merge(from.lostBefore);
  into.lostAfter.merge(from.lostAfter);
  into.lostJoint.merge(from.lostJoint);
  into.pctLostBefore.merge(from.pctLostBefore);
  into.pctLostAfter.merge(from.pctLostAfter);
  into.pctLostJoint.merge(from.pctLostJoint);
}

void Table1Data::merge(const Table1Data& other) {
  rounds += other.rounds;
  for (const Table1Row& theirs : other.rows) {
    const auto at = std::lower_bound(
        rows.begin(), rows.end(), theirs.car,
        [](const Table1Row& row, NodeId car) { return row.car < car; });
    if (at != rows.end() && at->car == theirs.car) {
      mergeRow(*at, theirs);
    } else {
      rows.insert(at, theirs);
    }
  }
}

Table1Data Table1Accumulator::data() const {
  Table1Data out;
  out.rounds = rounds_;
  out.rows.reserve(rows_.size());
  for (const auto& [car, row] : rows_) {
    out.rows.push_back(row);
  }
  return out;
}

void FlowFigure::merge(const FlowFigure& other) {
  if (flow == 0) {
    // A default-constructed figure adopts the other side's flow, so the
    // merge folds cleanly from an empty identity element.
    flow = other.flow;
  } else {
    VANET_ASSERT(other.flow == 0 || other.flow == flow,
                 "FlowFigure merge must match flow ids");
  }
  for (const auto& [car, series] : other.rxByCar) {
    rxByCar[car].merge(series);
  }
  afterCoop.merge(other.afterCoop);
  joint.merge(other.joint);
  regionBoundary12.merge(other.regionBoundary12);
  regionBoundary23.merge(other.regionBoundary23);
}

void FigureAccumulator::addRound(const RoundTrace& trace) {
  ++rounds_;
  const auto& cars = trace.carIds();

  // The I->II boundary time: every car has decoded something from the AP.
  sim::SimTime allInside = sim::SimTime::zero();
  bool allHeard = true;
  for (const NodeId car : cars) {
    const auto first = trace.firstOverhearTime(car);
    if (!first.has_value()) {
      allHeard = false;
      break;
    }
    allInside = std::max(allInside, *first);
  }

  for (const NodeId dest : cars) {
    FlowFigure& figure = flows_[dest];
    figure.flow = dest;
    const auto window = trace.associationWindow(dest);
    if (!window.has_value()) continue;
    const std::vector<SeqNo> seqs =
        trace.seqsTransmittedDuring(dest, window->first, window->second);
    if (seqs.empty()) continue;

    for (const SeqNo seq : seqs) {
      const auto idx = static_cast<std::size_t>(seq - 1);
      for (const NodeId car : cars) {
        figure.rxByCar[car].add(idx,
                                trace.wasOverheard(car, dest, seq) ? 1.0 : 0.0);
      }
      const bool held = trace.wasOverheard(dest, dest, seq) ||
                        trace.wasRecovered(dest, seq);
      figure.afterCoop.add(idx, held ? 1.0 : 0.0);
      figure.joint.add(idx, trace.anyOverheard(dest, seq) ? 1.0 : 0.0);
    }

    // Region boundaries in packet numbers (see header for the semantics).
    if (allHeard) {
      SeqNo boundary12 = seqs.back();
      for (const SeqNo seq : seqs) {
        const auto at = trace.txTime(dest, seq);
        if (at.has_value() && *at >= allInside) {
          boundary12 = seq;
          break;
        }
      }
      figure.regionBoundary12.add(boundary12);
    }
    const auto& rxTimes = trace.directRxTimes(dest);
    if (!rxTimes.empty()) {
      const std::size_t q75 =
          std::min(rxTimes.size() - 1, (rxTimes.size() * 3) / 4);
      const sim::SimTime exitStart = rxTimes[q75];
      SeqNo boundary23 = seqs.back();
      for (const SeqNo seq : seqs) {
        const auto at = trace.txTime(dest, seq);
        if (at.has_value() && *at >= exitStart) {
          boundary23 = seq;
          break;
        }
      }
      figure.regionBoundary23.add(boundary23);
    }
  }
}

}  // namespace vanet::trace
