#pragma once

/// \file aggregate.h
/// Cross-round aggregation producing exactly what the paper reports:
/// Table 1 (per-car packets transmitted / lost before / lost after
/// cooperation, mean and standard deviation over rounds) and the
/// Figure 3-8 series (per-packet-number reception probabilities).

#include <cstdint>
#include <map>
#include <vector>

#include "trace/round_trace.h"
#include "util/stats.h"
#include "util/types.h"

namespace vanet::trace {

/// One row of Table 1, aggregated over rounds.
struct Table1Row {
  NodeId car = 0;
  RunningStats txByAp;          ///< packets addressed to the car in-window
  RunningStats lostBefore;      ///< absolute losses without cooperation
  RunningStats lostAfter;       ///< absolute losses after C-ARQ
  RunningStats lostJoint;       ///< packets no platoon member received
  RunningStats pctLostBefore;   ///< per-round percentage
  RunningStats pctLostAfter;
  RunningStats pctLostJoint;    ///< the optimal ("virtual car") bound
};

/// Merges another row for the same car (parallel-combining form); every
/// RunningStats column merges cell-wise.
void mergeRow(Table1Row& into, const Table1Row& from);

/// All Table 1 rows plus the round count.
struct Table1Data {
  std::vector<Table1Row> rows;
  /// Rounds merged in; 64-bit because replications sum here too.
  std::int64_t rounds = 0;

  /// Merges another aggregate (for example a replication run under a
  /// different seed): rows are matched by car id, new cars are inserted
  /// keeping the rows sorted by id, and round counts add. Deterministic:
  /// merging B into A always yields the same bytes regardless of how A
  /// and B were computed.
  void merge(const Table1Data& other);
};

/// Accumulates Table 1 across rounds.
class Table1Accumulator {
 public:
  void addRound(const RoundTrace& trace);
  Table1Data data() const;

 private:
  std::map<NodeId, Table1Row> rows_;
  int rounds_ = 0;
};

/// Aggregated figure data for one flow (one destination car): the paper's
/// Figure 3/4/5 (per-car reception series) and 6/7/8 (after-coop vs joint).
struct FlowFigure {
  FlowId flow = 0;
  /// P(car j received packet k of this flow), indexed by seq-1.
  std::map<NodeId, SeriesAccumulator> rxByCar;
  /// P(destination holds packet k after cooperation).
  SeriesAccumulator afterCoop;
  /// P(any platoon member received packet k).
  SeriesAccumulator joint;
  /// Region I/II and II/III boundaries, in packet numbers (see
  /// FigureAccumulator docs for the derivation).
  RunningStats regionBoundary12;
  RunningStats regionBoundary23;

  /// Merges another figure of the same flow (for example a replication
  /// run under a different seed): series merge cell-wise, per-car series
  /// are matched by car id, and the boundary stats pool. Merging a
  /// default-constructed figure is the identity, so the merge is usable
  /// as a fold over per-replication figures; like the other
  /// parallel-combining merges, folding in a fixed order yields
  /// bit-identical bytes regardless of how the inputs were computed.
  void merge(const FlowFigure& other);
};

/// Accumulates the figure series across rounds.
///
/// Alignment follows the paper: sequence numbers restart each round when
/// the platoon approaches the AP, so "packet number k" is comparable
/// across rounds. Region boundaries are derived from the traces: the
/// I->II boundary is the first packet transmitted after every car has
/// decoded something from the AP (the platoon is fully inside coverage);
/// the II->III boundary is the packet transmitted when the destination
/// car has collected 75% of its direct receptions (its reception is
/// beginning to degrade as it leaves coverage).
class FigureAccumulator {
 public:
  void addRound(const RoundTrace& trace);
  const std::map<FlowId, FlowFigure>& flows() const noexcept { return flows_; }
  int rounds() const noexcept { return rounds_; }

 private:
  std::map<FlowId, FlowFigure> flows_;
  int rounds_ = 0;
};

}  // namespace vanet::trace
