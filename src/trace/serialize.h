#pragma once

/// \file serialize.h
/// JSON (de)serialization of the trace-layer merge states, used by the
/// campaign partial-result format (runner/accumulate.h). Every
/// RunningStats is written as its full Welford state, so a round-trip is
/// bit-identical: folding deserialized partials produces the same bytes
/// as folding the in-process results they were serialized from.

#include <string>

#include "trace/aggregate.h"
#include "util/binio.h"
#include "util/json.h"

namespace vanet::trace {

/// Table1Data as a JSON object: {"rounds":N,"rows":[{"car":..,"stats":[..]}]}.
std::string table1ToJson(const Table1Data& data);

/// Parses table1ToJson() output; throws std::runtime_error on malformed
/// or version-incompatible input.
Table1Data table1FromJson(const json::Value& value);

/// FlowFigure as a JSON object (flow id, per-car cell series, after-coop
/// and joint series, region-boundary stats).
std::string flowFigureToJson(const FlowFigure& figure);

/// Parses flowFigureToJson() output; throws std::runtime_error on
/// malformed input.
FlowFigure flowFigureFromJson(const json::Value& value);

/// Shared helpers for other serializers: one RunningStats merge-state as
/// a compact JSON array `[count,mean,m2,sum,min,max]` (`[0]` when empty).
std::string runningStatsToJson(const RunningStats& stats);
RunningStats runningStatsFromJson(const json::Value& value);

/// A SeriesAccumulator as an array of cell states.
std::string seriesToJson(const SeriesAccumulator& series);
SeriesAccumulator seriesFromJson(const json::Value& value);

/// Binary twins of the JSON serializers above, used by the compact
/// campaign-partial format v3 (runner/partial_binary.h). Writer and
/// reader share the same column lists as the JSON pair, so the two wire
/// formats cannot drift apart; doubles travel as raw IEEE-754 payloads,
/// which makes the round trip bit-exact by construction rather than by
/// shortest-round-trip formatting.
void runningStatsToBin(util::BinWriter& out, const RunningStats& stats);
RunningStats runningStatsFromBin(util::BinReader& in);

void seriesToBin(util::BinWriter& out, const SeriesAccumulator& series);
SeriesAccumulator seriesFromBin(util::BinReader& in);

void table1ToBin(util::BinWriter& out, const Table1Data& data);
Table1Data table1FromBin(util::BinReader& in);

void flowFigureToBin(util::BinWriter& out, const FlowFigure& figure);
FlowFigure flowFigureFromBin(util::BinReader& in);

}  // namespace vanet::trace
