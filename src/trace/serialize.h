#pragma once

/// \file serialize.h
/// JSON (de)serialization of the trace-layer merge states, used by the
/// campaign partial-result format (runner/accumulate.h). Every
/// RunningStats is written as its full Welford state, so a round-trip is
/// bit-identical: folding deserialized partials produces the same bytes
/// as folding the in-process results they were serialized from.

#include <string>

#include "trace/aggregate.h"
#include "util/json.h"

namespace vanet::trace {

/// Table1Data as a JSON object: {"rounds":N,"rows":[{"car":..,"stats":[..]}]}.
std::string table1ToJson(const Table1Data& data);

/// Parses table1ToJson() output; throws std::runtime_error on malformed
/// or version-incompatible input.
Table1Data table1FromJson(const json::Value& value);

/// FlowFigure as a JSON object (flow id, per-car cell series, after-coop
/// and joint series, region-boundary stats).
std::string flowFigureToJson(const FlowFigure& figure);

/// Parses flowFigureToJson() output; throws std::runtime_error on
/// malformed input.
FlowFigure flowFigureFromJson(const json::Value& value);

/// Shared helpers for other serializers: one RunningStats merge-state as
/// a compact JSON array `[count,mean,m2,sum,min,max]` (`[0]` when empty).
std::string runningStatsToJson(const RunningStats& stats);
RunningStats runningStatsFromJson(const json::Value& value);

/// A SeriesAccumulator as an array of cell states.
std::string seriesToJson(const SeriesAccumulator& series);
SeriesAccumulator seriesFromJson(const json::Value& value);

}  // namespace vanet::trace
