#include "trace/reception_matrix.h"

#include <algorithm>

#include "util/assert.h"

namespace vanet::trace {

ReceptionMatrix::ReceptionMatrix(const RoundTrace& trace, FlowId flow)
    : flow_(flow), maxSeq_(trace.maxSeqTransmitted(flow)),
      carIds_(trace.carIds()) {
  direct_.resize(carIds_.size());
  const auto seqCount = static_cast<std::size_t>(std::max<SeqNo>(maxSeq_, 0));
  for (std::size_t c = 0; c < carIds_.size(); ++c) {
    direct_[c].resize(seqCount, false);
    for (SeqNo seq = 1; seq <= maxSeq_; ++seq) {
      direct_[c][static_cast<std::size_t>(seq - 1)] =
          trace.wasOverheard(carIds_[c], flow, seq);
    }
  }
  recoveredAtDest_.resize(seqCount, false);
  for (SeqNo seq = 1; seq <= maxSeq_; ++seq) {
    recoveredAtDest_[static_cast<std::size_t>(seq - 1)] =
        trace.wasRecovered(flow, seq);
  }
}

std::size_t ReceptionMatrix::carIndex(NodeId car) const {
  const auto it = std::find(carIds_.begin(), carIds_.end(), car);
  VANET_ASSERT(it != carIds_.end(), "car not part of this round");
  return static_cast<std::size_t>(it - carIds_.begin());
}

bool ReceptionMatrix::received(NodeId car, SeqNo seq) const {
  VANET_ASSERT(seq >= 1 && seq <= maxSeq_, "sequence out of range");
  return direct_[carIndex(car)][static_cast<std::size_t>(seq - 1)];
}

bool ReceptionMatrix::joint(SeqNo seq) const {
  VANET_ASSERT(seq >= 1 && seq <= maxSeq_, "sequence out of range");
  const auto idx = static_cast<std::size_t>(seq - 1);
  return std::any_of(direct_.begin(), direct_.end(),
                     [idx](const auto& row) { return row[idx]; });
}

bool ReceptionMatrix::afterCoop(SeqNo seq) const {
  VANET_ASSERT(seq >= 1 && seq <= maxSeq_, "sequence out of range");
  const auto idx = static_cast<std::size_t>(seq - 1);
  return direct_[carIndex(flow_)][idx] || recoveredAtDest_[idx];
}

int ReceptionMatrix::receivedCount(NodeId car) const {
  const auto& row = direct_[carIndex(car)];
  return static_cast<int>(std::count(row.begin(), row.end(), true));
}

int ReceptionMatrix::jointCount() const {
  int count = 0;
  for (SeqNo seq = 1; seq <= maxSeq_; ++seq) {
    if (joint(seq)) ++count;
  }
  return count;
}

int ReceptionMatrix::afterCoopCount() const {
  int count = 0;
  for (SeqNo seq = 1; seq <= maxSeq_; ++seq) {
    if (afterCoop(seq)) ++count;
  }
  return count;
}

}  // namespace vanet::trace
