#include "trace/serialize.h"

#include <stdexcept>
#include <utility>
#include <vector>

namespace vanet::trace {

std::string runningStatsToJson(const RunningStats& stats) {
  const RunningStats::State s = stats.state();
  if (s.count == 0) return "[0]";
  std::string out = "[";
  out += std::to_string(s.count);
  for (const double field : {s.mean, s.m2, s.sum, s.min, s.max}) {
    out += ',';
    out += json::num(field);
  }
  out += ']';
  return out;
}

RunningStats runningStatsFromJson(const json::Value& value) {
  const auto& cells = value.asArray();
  RunningStats::State s;
  if (cells.empty()) throw std::runtime_error("stats state: empty array");
  s.count = cells[0].asUInt64();
  if (s.count == 0) return RunningStats();
  if (cells.size() != 6) {
    throw std::runtime_error("stats state: expected 6 fields");
  }
  s.mean = cells[1].asDouble();
  s.m2 = cells[2].asDouble();
  s.sum = cells[3].asDouble();
  s.min = cells[4].asDouble();
  s.max = cells[5].asDouble();
  return RunningStats::fromState(s);
}

std::string seriesToJson(const SeriesAccumulator& series) {
  std::string out = "[";
  bool first = true;
  for (const RunningStats& cell : series.cells()) {
    if (!first) out += ",";
    first = false;
    out += runningStatsToJson(cell);
  }
  out += "]";
  return out;
}

SeriesAccumulator seriesFromJson(const json::Value& value) {
  std::vector<RunningStats> cells;
  cells.reserve(value.asArray().size());
  for (const json::Value& cell : value.asArray()) {
    cells.push_back(runningStatsFromJson(cell));
  }
  return SeriesAccumulator::fromCells(std::move(cells));
}

namespace {

/// The Table1Row stat columns in serialization order. Kept in one place
/// so writer and reader cannot drift.
std::vector<RunningStats Table1Row::*> table1Columns() {
  return {&Table1Row::txByAp,        &Table1Row::lostBefore,
          &Table1Row::lostAfter,     &Table1Row::lostJoint,
          &Table1Row::pctLostBefore, &Table1Row::pctLostAfter,
          &Table1Row::pctLostJoint};
}

}  // namespace

std::string table1ToJson(const Table1Data& data) {
  std::string out = "{\"rounds\":" + std::to_string(data.rounds);
  out += ",\"rows\":[";
  bool firstRow = true;
  for (const Table1Row& row : data.rows) {
    if (!firstRow) out += ",";
    firstRow = false;
    out += "{\"car\":" + std::to_string(row.car);
    out += ",\"stats\":[";
    bool firstCol = true;
    for (const auto column : table1Columns()) {
      if (!firstCol) out += ",";
      firstCol = false;
      out += runningStatsToJson(row.*column);
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

Table1Data table1FromJson(const json::Value& value) {
  Table1Data data;
  data.rounds = value.at("rounds").asInt64();
  const auto columns = table1Columns();
  for (const json::Value& rowValue : value.at("rows").asArray()) {
    Table1Row row;
    row.car = static_cast<NodeId>(rowValue.at("car").asInt64());
    const auto& stats = rowValue.at("stats").asArray();
    if (stats.size() != columns.size()) {
      throw std::runtime_error("table1 row: wrong stat column count");
    }
    for (std::size_t i = 0; i < columns.size(); ++i) {
      row.*columns[i] = runningStatsFromJson(stats[i]);
    }
    data.rows.push_back(std::move(row));
  }
  return data;
}

std::string flowFigureToJson(const FlowFigure& figure) {
  std::string out = "{\"flow\":" + std::to_string(figure.flow);
  out += ",\"rx_by_car\":[";
  bool first = true;
  for (const auto& [car, series] : figure.rxByCar) {
    if (!first) out += ",";
    first = false;
    out += "{\"car\":" + std::to_string(car);
    out += ",\"cells\":" + seriesToJson(series) + "}";
  }
  out += "],\"after_coop\":" + seriesToJson(figure.afterCoop);
  out += ",\"joint\":" + seriesToJson(figure.joint);
  out += ",\"rb12\":" + runningStatsToJson(figure.regionBoundary12);
  out += ",\"rb23\":" + runningStatsToJson(figure.regionBoundary23);
  out += "}";
  return out;
}

FlowFigure flowFigureFromJson(const json::Value& value) {
  FlowFigure figure;
  figure.flow = static_cast<FlowId>(value.at("flow").asInt64());
  for (const json::Value& entry : value.at("rx_by_car").asArray()) {
    const auto car = static_cast<NodeId>(entry.at("car").asInt64());
    figure.rxByCar[car] = seriesFromJson(entry.at("cells"));
  }
  figure.afterCoop = seriesFromJson(value.at("after_coop"));
  figure.joint = seriesFromJson(value.at("joint"));
  figure.regionBoundary12 = runningStatsFromJson(value.at("rb12"));
  figure.regionBoundary23 = runningStatsFromJson(value.at("rb23"));
  return figure;
}

void runningStatsToBin(util::BinWriter& out, const RunningStats& stats) {
  const RunningStats::State s = stats.state();
  out.u64(s.count);
  if (s.count == 0) return;  // empty state carries no moments, like "[0]"
  for (const double field : {s.mean, s.m2, s.sum, s.min, s.max}) {
    out.f64(field);
  }
}

RunningStats runningStatsFromBin(util::BinReader& in) {
  RunningStats::State s;
  s.count = in.u64("stats count");
  if (s.count == 0) return RunningStats();
  s.mean = in.f64("stats mean");
  s.m2 = in.f64("stats m2");
  s.sum = in.f64("stats sum");
  s.min = in.f64("stats min");
  s.max = in.f64("stats max");
  return RunningStats::fromState(s);
}

void seriesToBin(util::BinWriter& out, const SeriesAccumulator& series) {
  out.u32(static_cast<std::uint32_t>(series.cells().size()));
  for (const RunningStats& cell : series.cells()) {
    runningStatsToBin(out, cell);
  }
}

SeriesAccumulator seriesFromBin(util::BinReader& in) {
  const std::uint32_t count = in.u32("series cell count");
  std::vector<RunningStats> cells;
  cells.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    cells.push_back(runningStatsFromBin(in));
  }
  return SeriesAccumulator::fromCells(std::move(cells));
}

void table1ToBin(util::BinWriter& out, const Table1Data& data) {
  out.i64(data.rounds);
  const auto columns = table1Columns();
  out.u32(static_cast<std::uint32_t>(data.rows.size()));
  for (const Table1Row& row : data.rows) {
    out.i32(row.car);
    for (const auto column : columns) {
      runningStatsToBin(out, row.*column);
    }
  }
}

Table1Data table1FromBin(util::BinReader& in) {
  Table1Data data;
  data.rounds = in.i64("table1 rounds");
  const auto columns = table1Columns();
  const std::uint32_t rowCount = in.u32("table1 row count");
  data.rows.reserve(rowCount);
  for (std::uint32_t r = 0; r < rowCount; ++r) {
    Table1Row row;
    row.car = in.i32("table1 car id");
    for (const auto column : columns) {
      row.*column = runningStatsFromBin(in);
    }
    data.rows.push_back(std::move(row));
  }
  return data;
}

void flowFigureToBin(util::BinWriter& out, const FlowFigure& figure) {
  out.i32(figure.flow);
  out.u32(static_cast<std::uint32_t>(figure.rxByCar.size()));
  for (const auto& [car, series] : figure.rxByCar) {
    out.i32(car);
    seriesToBin(out, series);
  }
  seriesToBin(out, figure.afterCoop);
  seriesToBin(out, figure.joint);
  runningStatsToBin(out, figure.regionBoundary12);
  runningStatsToBin(out, figure.regionBoundary23);
}

FlowFigure flowFigureFromBin(util::BinReader& in) {
  FlowFigure figure;
  figure.flow = in.i32("figure flow id");
  const std::uint32_t carCount = in.u32("figure rx_by_car count");
  for (std::uint32_t c = 0; c < carCount; ++c) {
    const NodeId car = in.i32("figure car id");
    figure.rxByCar[car] = seriesFromBin(in);
  }
  figure.afterCoop = seriesFromBin(in);
  figure.joint = seriesFromBin(in);
  figure.regionBoundary12 = runningStatsFromBin(in);
  figure.regionBoundary23 = runningStatsFromBin(in);
  return figure;
}

}  // namespace vanet::trace
