#pragma once

/// \file reception_matrix.h
/// Dense per-flow view of one round: which cars decoded which sequence
/// numbers, plus recovery state at the destination. Built from a
/// RoundTrace; used by property tests (the C-ARQ optimality invariant:
/// after cooperation the destination holds the union of platoon
/// receptions) and by exports.

#include <vector>

#include "trace/round_trace.h"

namespace vanet::trace {

/// Boolean reception matrix for one flow of one round.
class ReceptionMatrix {
 public:
  /// Covers sequence numbers [1, maxSeqTransmitted(flow)].
  ReceptionMatrix(const RoundTrace& trace, FlowId flow);

  FlowId flow() const noexcept { return flow_; }
  SeqNo maxSeq() const noexcept { return maxSeq_; }
  const std::vector<NodeId>& carIds() const noexcept { return carIds_; }

  /// Direct (overheard) reception of `seq` by `car`.
  bool received(NodeId car, SeqNo seq) const;

  /// Any platoon member received `seq` (the paper's joint curve).
  bool joint(SeqNo seq) const;

  /// Destination holds `seq` after cooperation (direct or recovered).
  bool afterCoop(SeqNo seq) const;

  /// Count helpers over the full sequence range.
  int receivedCount(NodeId car) const;
  int jointCount() const;
  int afterCoopCount() const;

 private:
  std::size_t carIndex(NodeId car) const;

  FlowId flow_;
  SeqNo maxSeq_;
  std::vector<NodeId> carIds_;
  std::vector<std::vector<bool>> direct_;  // [carIndex][seq-1]
  std::vector<bool> recoveredAtDest_;
};

}  // namespace vanet::trace
