#pragma once

/// \file round_trace.h
/// Per-round packet capture, equivalent to the paper's tcpdump traces on
/// each laptop plus the AP transmission log. The analysis layer derives
/// Table 1 and Figures 3-8 from these records alone, mirroring the
/// paper's post-processing methodology.

#include <map>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "sim/time.h"
#include "util/types.h"

namespace vanet::trace {

/// Record of everything observable in one experiment round.
class RoundTrace {
 public:
  /// `carIds` lists the platoon members (flow ids equal car ids).
  explicit RoundTrace(std::vector<NodeId> carIds);

  // ------------------------------------------------------------ recording

  /// AP transmitted (flow, seq); copies > 0 are blind retransmissions.
  void recordApTx(FlowId flow, SeqNo seq, int copy, sim::SimTime at);

  /// `car` decoded an AP data frame of `flow` (own or overheard).
  void recordOverhear(NodeId car, FlowId flow, SeqNo seq, sim::SimTime at);

  /// `car` recovered an own-flow packet through cooperation.
  void recordRecovered(NodeId car, SeqNo seq, sim::SimTime at);

  // ------------------------------------------------------------- queries

  const std::vector<NodeId>& carIds() const noexcept { return carIds_; }

  /// True when `car` decoded (flow, seq) directly from the AP.
  bool wasOverheard(NodeId car, FlowId flow, SeqNo seq) const;

  /// True when any platoon member decoded (flow, seq) from the AP — the
  /// paper's "joint reception in car 1, 2 or 3".
  bool anyOverheard(FlowId flow, SeqNo seq) const;

  bool wasRecovered(NodeId car, SeqNo seq) const;

  /// Time of the first transmission (copy 0) of (flow, seq); nullopt when
  /// never transmitted.
  std::optional<sim::SimTime> txTime(FlowId flow, SeqNo seq) const;

  /// Largest sequence number transmitted for `flow` (0 when none).
  SeqNo maxSeqTransmitted(FlowId flow) const;

  /// Association window of `car`: from its first own-flow reception to the
  /// last AP frame it decoded (any flow), the paper's "Tx by the AP"
  /// accounting window. nullopt when the car never received its own flow.
  std::optional<std::pair<sim::SimTime, sim::SimTime>> associationWindow(
      NodeId car) const;

  /// Sequence numbers of `flow` first-transmitted inside [from, to].
  std::vector<SeqNo> seqsTransmittedDuring(FlowId flow, sim::SimTime from,
                                           sim::SimTime to) const;

  /// First time `car` decoded any AP frame; nullopt when it never did.
  std::optional<sim::SimTime> firstOverhearTime(NodeId car) const;

  /// Sorted reception times of `car`'s own flow (direct only).
  const std::vector<sim::SimTime>& directRxTimes(NodeId car) const;

  /// Total first-copy transmissions for `flow`.
  std::size_t txCount(FlowId flow) const;

 private:
  std::vector<NodeId> carIds_;
  // flow -> seq -> first-copy tx time (ordered by seq; tx is monotone).
  std::map<FlowId, std::map<SeqNo, sim::SimTime>> tx_;
  std::map<NodeId, std::map<FlowId, std::set<SeqNo>>> overheard_;
  std::map<NodeId, std::set<SeqNo>> recovered_;
  std::map<NodeId, sim::SimTime> firstOwnRx_;
  std::map<NodeId, sim::SimTime> lastAnyRx_;
  std::map<NodeId, sim::SimTime> firstAnyRx_;
  std::map<NodeId, std::vector<sim::SimTime>> ownRxTimes_;
  std::vector<sim::SimTime> emptyTimes_;
};

}  // namespace vanet::trace
