#pragma once

/// \file manifest.h
/// Run manifests: the provenance sidecar every emitted artefact gains so
/// a study directory is self-describing. For each JSON/CSV artefact
/// `<out>`, the writer drops `<out>.manifest.json` next to it recording
/// *how the bytes were produced*: git revision and build flags of the
/// binary, the full command line, the master seed, the parallelism axes
/// (threads / round-threads / shard / streaming), wall time, and the
/// per-point replication / achieved-CI table.
///
/// Manifests are out-of-band observability: they are separate files, so
/// the byte-diff determinism checks on the artefacts themselves are
/// untouched, and a failed sidecar write logs a warning without failing
/// the artefact write.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace vanet::obs {

/// One grid point's replication accounting inside a manifest.
struct ManifestPoint {
  std::size_t gridIndex = 0;
  int replications = 0;
  double achievedCi95 = 0.0;
};

/// Everything a sidecar records. Fields that a writer cannot know (a
/// shard partial has no wall clock; a merge has no thread count) stay at
/// their zero values and still serialize, so the schema is fixed.
struct RunManifest {
  /// Path of the artefact this manifest describes (as given to the
  /// writer).
  std::string artifact;
  std::string tool;               ///< binary name (argv[0] basename)
  std::vector<std::string> args;  ///< full flag vector (argv[1..])
  std::string gitRev;             ///< compile-time VANET_GIT_REV
  std::string buildFlags;         ///< compile-time VANET_BUILD_FLAGS
  std::string scenario;
  std::uint64_t masterSeed = 0;
  int threads = 0;
  int roundThreads = 0;
  int shardIndex = 0;
  int shardCount = 1;
  bool streaming = false;
  /// Adaptive stop rule of the run; 0 / empty when fixed-count.
  double targetCi = 0.0;
  std::string targetMetric;
  double wallSeconds = 0.0;
  double jobsPerSecond = 0.0;
  /// Spec identity of a spec-driven run (vanet_campaign / spec-backed
  /// bench): the spec path as given on the command line and the
  /// FNV-1a-64 digest of the normalized rendering
  /// (runner::campaignSpecDigest). Empty / 0 for flag-assembled runs.
  std::string specPath;
  std::uint64_t specDigest = 0;
  std::vector<ManifestPoint> points;  ///< in grid order
};

/// Captures the process identity once (call first thing in main). The
/// emitters pick it up from here so deep library code never threads argv
/// around. Safe to skip: on Linux the identity is then captured lazily
/// from /proc/self/cmdline; elsewhere manifests record an empty command
/// line.
void setRunIdentity(int argc, const char* const* argv);

/// argv[0] basename of the captured identity ("" before capture).
const std::string& runTool();

/// argv[1..] of the captured identity.
const std::vector<std::string>& runArgs();

/// Records the campaign spec driving this process (call right after
/// loading it); manifestForArtifact() then stamps every sidecar with the
/// pair, so each artefact names the exact study that produced it.
/// Process-global like setRunIdentity, for the same reason: the emitters
/// sit below the code that knows about spec files.
void setRunSpec(const std::string& specPath, std::uint64_t specDigest);

/// The recorded spec identity ("" / 0 before setRunSpec).
const std::string& runSpecPath();
std::uint64_t runSpecDigest();

/// The git revision / build flags this binary was configured with
/// ("unknown" when built outside the CMake tree).
std::string buildGitRevision();
std::string buildFlagsString();

/// A manifest pre-filled with the process identity (tool, args, git rev,
/// build flags) and `artifact`; the caller fills the campaign fields.
RunManifest manifestForArtifact(const std::string& artifactPath);

/// Deterministic JSON rendering (full precision numbers; fixed key
/// order).
std::string manifestJson(const RunManifest& manifest);

/// Parses manifestJson() output. Throws std::runtime_error on malformed
/// input. manifestJson(manifestFromJson(text)) == text for any text this
/// library wrote -- the round-trip the obs tests assert.
RunManifest manifestFromJson(const std::string& text);

/// `<artifactPath>.manifest.json`.
std::string manifestPathFor(const std::string& artifactPath);

/// Writes the sidecar next to its artefact; false (and a warning log) on
/// I/O failure. Never throws: provenance must not fail the run.
bool writeManifestSidecar(const RunManifest& manifest);

}  // namespace vanet::obs
