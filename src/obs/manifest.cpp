#include "obs/manifest.h"

#include <fstream>
#include <iterator>
#include <stdexcept>

#include "util/json.h"
#include "util/log.h"

#if __has_include("vanet_build_info.h")
#include "vanet_build_info.h"
#endif
#ifndef VANET_GIT_REV
#define VANET_GIT_REV "unknown"
#endif
#ifndef VANET_BUILD_FLAGS
#define VANET_BUILD_FLAGS "unknown"
#endif

namespace vanet::obs {
namespace {

struct RunIdentity {
  std::string tool;
  std::vector<std::string> args;
};

/// Fallback capture for binaries that never call setRunIdentity(): on
/// Linux the kernel keeps the original argv in /proc/self/cmdline
/// (NUL-separated). Elsewhere the identity simply stays empty.
RunIdentity captureFromProc() {
  RunIdentity id;
#if defined(__linux__)
  std::ifstream in("/proc/self/cmdline", std::ios::binary);
  if (!in) return id;
  std::string raw((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  std::size_t begin = 0;
  bool first = true;
  while (begin < raw.size()) {
    std::size_t end = raw.find('\0', begin);
    if (end == std::string::npos) end = raw.size();
    std::string token = raw.substr(begin, end - begin);
    if (first) {
      const auto slash = token.find_last_of('/');
      id.tool = slash == std::string::npos ? token : token.substr(slash + 1);
      first = false;
    } else {
      id.args.push_back(std::move(token));
    }
    begin = end + 1;
  }
#endif
  return id;
}

RunIdentity& identity() {
  static RunIdentity id = captureFromProc();
  return id;
}

struct RunSpecIdentity {
  std::string path;
  std::uint64_t digest = 0;
};

RunSpecIdentity& specIdentity() {
  static RunSpecIdentity spec;
  return spec;
}

/// `digest` as exactly 16 lowercase hex digits -- the sidecar encoding
/// of the spec digest (a JSON number would round through a double).
std::string hexDigest(std::uint64_t digest) {
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[digest & 0xf];
    digest >>= 4;
  }
  return out;
}

std::uint64_t parseHexDigest(const std::string& text) {
  if (text.empty() || text.size() > 16) {
    throw std::runtime_error("manifest: malformed spec_digest \"" + text +
                             "\"");
  }
  std::uint64_t digest = 0;
  for (const char c : text) {
    digest <<= 4;
    if (c >= '0' && c <= '9') {
      digest |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digest |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      throw std::runtime_error("manifest: malformed spec_digest \"" + text +
                               "\"");
    }
  }
  return digest;
}

}  // namespace

void setRunIdentity(int argc, const char* const* argv) {
  RunIdentity& id = identity();
  id.tool.clear();
  id.args.clear();
  if (argc > 0) {
    std::string tool = argv[0];
    const auto slash = tool.find_last_of('/');
    id.tool = slash == std::string::npos ? tool : tool.substr(slash + 1);
  }
  for (int i = 1; i < argc; ++i) {
    id.args.emplace_back(argv[i]);
  }
}

const std::string& runTool() { return identity().tool; }

const std::vector<std::string>& runArgs() { return identity().args; }

void setRunSpec(const std::string& specPath, std::uint64_t specDigest) {
  specIdentity().path = specPath;
  specIdentity().digest = specDigest;
}

const std::string& runSpecPath() { return specIdentity().path; }

std::uint64_t runSpecDigest() { return specIdentity().digest; }

std::string buildGitRevision() { return VANET_GIT_REV; }

std::string buildFlagsString() { return VANET_BUILD_FLAGS; }

RunManifest manifestForArtifact(const std::string& artifactPath) {
  RunManifest manifest;
  manifest.artifact = artifactPath;
  manifest.tool = runTool();
  manifest.args = runArgs();
  manifest.gitRev = buildGitRevision();
  manifest.buildFlags = buildFlagsString();
  manifest.specPath = runSpecPath();
  manifest.specDigest = runSpecDigest();
  return manifest;
}

std::string manifestJson(const RunManifest& manifest) {
  using json::num;
  using json::quote;
  std::string out = "{\n";
  out += "\"format\":\"vanet-run-manifest\",\n";
  out += "\"version\":1,\n";
  out += "\"artifact\":" + quote(manifest.artifact) + ",\n";
  out += "\"tool\":" + quote(manifest.tool) + ",\n";
  out += "\"args\":[";
  bool first = true;
  for (const std::string& arg : manifest.args) {
    if (!first) out += ",";
    first = false;
    out += quote(arg);
  }
  out += "],\n";
  out += "\"git_rev\":" + quote(manifest.gitRev) + ",\n";
  out += "\"build_flags\":" + quote(manifest.buildFlags) + ",\n";
  out += "\"scenario\":" + quote(manifest.scenario) + ",\n";
  out += "\"master_seed\":" + std::to_string(manifest.masterSeed) + ",\n";
  out += "\"threads\":" + std::to_string(manifest.threads) + ",\n";
  out += "\"round_threads\":" + std::to_string(manifest.roundThreads) + ",\n";
  out += "\"shard_index\":" + std::to_string(manifest.shardIndex) + ",\n";
  out += "\"shard_count\":" + std::to_string(manifest.shardCount) + ",\n";
  out += std::string("\"streaming\":") +
         (manifest.streaming ? "true" : "false") + ",\n";
  out += "\"target_ci\":" + num(manifest.targetCi) + ",\n";
  out += "\"target_metric\":" + quote(manifest.targetMetric) + ",\n";
  out += "\"wall_seconds\":" + num(manifest.wallSeconds) + ",\n";
  out += "\"jobs_per_second\":" + num(manifest.jobsPerSecond) + ",\n";
  out += "\"spec_path\":" + quote(manifest.specPath) + ",\n";
  out += "\"spec_digest\":" + quote(hexDigest(manifest.specDigest)) + ",\n";
  out += "\"points\":[";
  first = true;
  for (const ManifestPoint& point : manifest.points) {
    if (!first) out += ",";
    first = false;
    out += "\n {\"grid_index\":" + std::to_string(point.gridIndex) +
           ",\"replications\":" + std::to_string(point.replications) +
           ",\"achieved_ci95\":" + num(point.achievedCi95) + "}";
  }
  out += manifest.points.empty() ? "]\n" : "\n]\n";
  out += "}\n";
  return out;
}

RunManifest manifestFromJson(const std::string& text) {
  const json::Value doc = json::parse(text);
  if (doc.at("format").asString() != "vanet-run-manifest") {
    throw std::runtime_error("not a vanet run-manifest file");
  }
  RunManifest manifest;
  manifest.artifact = doc.at("artifact").asString();
  manifest.tool = doc.at("tool").asString();
  for (const json::Value& arg : doc.at("args").asArray()) {
    manifest.args.push_back(arg.asString());
  }
  manifest.gitRev = doc.at("git_rev").asString();
  manifest.buildFlags = doc.at("build_flags").asString();
  manifest.scenario = doc.at("scenario").asString();
  manifest.masterSeed = doc.at("master_seed").asUInt64();
  manifest.threads = static_cast<int>(doc.at("threads").asInt64());
  manifest.roundThreads = static_cast<int>(doc.at("round_threads").asInt64());
  manifest.shardIndex = static_cast<int>(doc.at("shard_index").asInt64());
  manifest.shardCount = static_cast<int>(doc.at("shard_count").asInt64());
  manifest.streaming = doc.at("streaming").asBool();
  manifest.targetCi = doc.at("target_ci").asDouble();
  manifest.targetMetric = doc.at("target_metric").asString();
  manifest.wallSeconds = doc.at("wall_seconds").asDouble();
  manifest.jobsPerSecond = doc.at("jobs_per_second").asDouble();
  // Spec identity arrived with format v1 sidecars of spec-driven runs;
  // find() keeps older sidecars (no such keys) parseable.
  if (const json::Value* specPath = doc.find("spec_path")) {
    manifest.specPath = specPath->asString();
  }
  if (const json::Value* specDigest = doc.find("spec_digest")) {
    manifest.specDigest = parseHexDigest(specDigest->asString());
  }
  for (const json::Value& point : doc.at("points").asArray()) {
    ManifestPoint row;
    row.gridIndex =
        static_cast<std::size_t>(point.at("grid_index").asUInt64());
    row.replications =
        static_cast<int>(point.at("replications").asInt64());
    row.achievedCi95 = point.at("achieved_ci95").asDouble();
    manifest.points.push_back(row);
  }
  return manifest;
}

std::string manifestPathFor(const std::string& artifactPath) {
  return artifactPath + ".manifest.json";
}

bool writeManifestSidecar(const RunManifest& manifest) {
  const std::string path = manifestPathFor(manifest.artifact);
  std::ofstream out(path);
  if (!out) {
    LOG_WARN("cannot open manifest sidecar " << path << " for writing");
    return false;
  }
  out << manifestJson(manifest);
  if (!out) {
    LOG_WARN("short write on manifest sidecar " << path);
    return false;
  }
  return true;
}

}  // namespace vanet::obs
