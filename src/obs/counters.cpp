#include "obs/counters.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <mutex>

#include "util/assert.h"
#include "util/json.h"

namespace vanet::obs {
namespace {

/// One thread's private accumulation cells. Cells are relaxed atomics so
/// takeSnapshot() can read a live thread's slab without tearing; the
/// owning thread is the only writer, so the adds themselves never
/// contend.
struct Slab {
  std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
  std::array<std::atomic<std::uint64_t>, kMaxTimers> timerNanos{};
  std::array<std::atomic<std::uint64_t>, kMaxTimers> timerCounts{};
};

/// Plain totals (retired threads fold here under the registry mutex).
struct Totals {
  std::array<std::uint64_t, kMaxCounters> counters{};
  std::array<std::uint64_t, kMaxTimers> timerNanos{};
  std::array<std::uint64_t, kMaxTimers> timerCounts{};
};

}  // namespace

/// The process-wide registry: interned names, handle storage, the set of
/// live slabs and the retired totals. Leaked on purpose (never destroyed)
/// so thread-exit hooks running during static destruction stay safe.
/// Named (not in the anonymous namespace) so the header's `friend class
/// Registry` grants it access to the private Counter/Timer constructors.
class Registry {
 public:
  static Registry& instance() {
    static Registry* registry = new Registry();
    return *registry;
  }

  Counter& internCounter(const std::string& name) {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = counterIds_.find(name);
    if (it != counterIds_.end()) return counters_[it->second];
    VANET_ASSERT(counterNames_.size() < kMaxCounters,
                 "obs counter vocabulary exceeded kMaxCounters");
    const std::size_t id = counterNames_.size();
    counterNames_.push_back(name);
    counterIds_.emplace(name, id);
    counters_.emplace_back(Counter(id));
    return counters_.back();
  }

  Timer& internTimer(const std::string& name) {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = timerIds_.find(name);
    if (it != timerIds_.end()) return timers_[it->second];
    VANET_ASSERT(timerNames_.size() < kMaxTimers,
                 "obs timer vocabulary exceeded kMaxTimers");
    const std::size_t id = timerNames_.size();
    timerNames_.push_back(name);
    timerIds_.emplace(name, id);
    timers_.emplace_back(Timer(id));
    return timers_.back();
  }

  const std::string& counterName(std::size_t id) {
    const std::lock_guard<std::mutex> lock(mutex_);
    return counterNames_[id];
  }

  const std::string& timerName(std::size_t id) {
    const std::lock_guard<std::mutex> lock(mutex_);
    return timerNames_[id];
  }

  void registerSlab(Slab* slab) {
    const std::lock_guard<std::mutex> lock(mutex_);
    liveSlabs_.push_back(slab);
  }

  /// Folds an exiting thread's slab into the retired totals and drops it
  /// from the live set.
  void retireSlab(Slab* slab) {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::erase(liveSlabs_, slab);
    for (std::size_t i = 0; i < kMaxCounters; ++i) {
      retired_.counters[i] +=
          slab->counters[i].load(std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < kMaxTimers; ++i) {
      retired_.timerNanos[i] +=
          slab->timerNanos[i].load(std::memory_order_relaxed);
      retired_.timerCounts[i] +=
          slab->timerCounts[i].load(std::memory_order_relaxed);
    }
  }

  Snapshot snapshot() {
    const std::lock_guard<std::mutex> lock(mutex_);
    Totals totals = retired_;
    for (const Slab* slab : liveSlabs_) {
      for (std::size_t i = 0; i < kMaxCounters; ++i) {
        totals.counters[i] +=
            slab->counters[i].load(std::memory_order_relaxed);
      }
      for (std::size_t i = 0; i < kMaxTimers; ++i) {
        totals.timerNanos[i] +=
            slab->timerNanos[i].load(std::memory_order_relaxed);
        totals.timerCounts[i] +=
            slab->timerCounts[i].load(std::memory_order_relaxed);
      }
    }
    Snapshot out;
    out.counters.reserve(counterNames_.size());
    for (std::size_t i = 0; i < counterNames_.size(); ++i) {
      out.counters.push_back(CounterValue{counterNames_[i],
                                          totals.counters[i]});
    }
    out.timers.reserve(timerNames_.size());
    for (std::size_t i = 0; i < timerNames_.size(); ++i) {
      out.timers.push_back(TimerValue{timerNames_[i], totals.timerCounts[i],
                                      totals.timerNanos[i]});
    }
    const auto byName = [](const auto& a, const auto& b) {
      return a.name < b.name;
    };
    std::sort(out.counters.begin(), out.counters.end(), byName);
    std::sort(out.timers.begin(), out.timers.end(), byName);
    return out;
  }

  void reset() noexcept {
    const std::lock_guard<std::mutex> lock(mutex_);
    retired_ = Totals{};
    for (Slab* slab : liveSlabs_) {
      for (auto& cell : slab->counters) {
        cell.store(0, std::memory_order_relaxed);
      }
      for (auto& cell : slab->timerNanos) {
        cell.store(0, std::memory_order_relaxed);
      }
      for (auto& cell : slab->timerCounts) {
        cell.store(0, std::memory_order_relaxed);
      }
    }
  }

 private:
  Registry() = default;

  std::mutex mutex_;
  std::vector<std::string> counterNames_;
  std::vector<std::string> timerNames_;
  std::map<std::string, std::size_t> counterIds_;
  std::map<std::string, std::size_t> timerIds_;
  /// Handle storage: deque so interning never invalidates references.
  std::deque<Counter> counters_;
  std::deque<Timer> timers_;
  std::vector<Slab*> liveSlabs_;
  Totals retired_;
};

namespace {

/// Registers this thread's slab on first use; the destructor folds it
/// into the retired totals when the thread exits, so short-lived pool
/// workers never lose counts.
struct SlabHandle {
  SlabHandle() : slab(std::make_unique<Slab>()) {
    Registry::instance().registerSlab(slab.get());
  }
  ~SlabHandle() {
    // Drop the header's cached cell pointers before the slab dies; a
    // stray add() during thread teardown re-registers instead of
    // touching freed memory.
    detail::tCells = detail::ThreadCells{};
    Registry::instance().retireSlab(slab.get());
  }
  std::unique_ptr<Slab> slab;
};

Slab& threadSlab() {
  thread_local SlabHandle handle;
  return *handle.slab;
}

}  // namespace

namespace detail {

thread_local ThreadCells tCells;

ThreadCells& initThreadCells() {
  Slab& slab = threadSlab();
  tCells.counters = slab.counters.data();
  tCells.timerNanos = slab.timerNanos.data();
  tCells.timerCounts = slab.timerCounts.data();
  return tCells;
}

}  // namespace detail

Counter& Counter::get(const std::string& name) {
  return Registry::instance().internCounter(name);
}

const std::string& Counter::name() const {
  return Registry::instance().counterName(id_);
}

Timer& Timer::get(const std::string& name) {
  return Registry::instance().internTimer(name);
}

const std::string& Timer::name() const {
  return Registry::instance().timerName(id_);
}

std::uint64_t Snapshot::counter(const std::string& name) const noexcept {
  for (const CounterValue& value : counters) {
    if (value.name == name) return value.value;
  }
  return 0;
}

TimerValue Snapshot::timer(const std::string& name) const noexcept {
  for (const TimerValue& value : timers) {
    if (value.name == name) return value;
  }
  return TimerValue{name, 0, 0};
}

Snapshot takeSnapshot() { return Registry::instance().snapshot(); }

void resetAll() noexcept { Registry::instance().reset(); }

std::string snapshotJson(const Snapshot& snapshot) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const CounterValue& value : snapshot.counters) {
    if (!first) out += ",";
    first = false;
    out += json::quote(value.name) + ":" + std::to_string(value.value);
  }
  out += "},\"timers\":{";
  first = true;
  for (const TimerValue& value : snapshot.timers) {
    if (!first) out += ",";
    first = false;
    out += json::quote(value.name) + ":{\"count\":" +
           std::to_string(value.count) +
           ",\"total_ns\":" + std::to_string(value.totalNanos) + "}";
  }
  out += "}}";
  return out;
}

}  // namespace vanet::obs
