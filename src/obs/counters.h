#pragma once

/// \file counters.h
/// The out-of-band observability registry: named monotonic counters and
/// scoped wall-clock timers, accumulated in per-thread slabs and merged
/// only when a snapshot is taken.
///
/// Design constraints, in order:
///
///  1. *Never perturb result bytes.* Nothing here touches an RNG, a
///     simulation object or a fold order; instrumented code behaves
///     identically whether the registry is enabled or not, and the
///     byte-diff determinism suite runs with it enabled.
///  2. *Cheap on the hot path.* A count is one relaxed fetch_add on a
///     thread-local cell (plus one relaxed enabled-flag load), inlined
///     at the call site through cached raw cell pointers; a scoped
///     timer adds two steady_clock reads. Worker threads never contend:
///     each thread owns a private slab, registered on first use and
///     folded into the retired totals when the thread exits.
///  3. *Deterministic snapshots where the workload is deterministic.*
///     snapshot() returns name-sorted totals; counters that count
///     simulation work (events dispatched, frames delivered, ...) are
///     byte-stable across --threads / --round-threads / --streaming /
///     shards because the jobs themselves are. Scheduling-dependent
///     counters (reorder-window stalls) and all timers are measurements
///     of *this* run, not of the workload, and are excluded from any
///     determinism claim.
///
/// Naming scheme: dot-separated hierarchy, `<layer>.<event>` --
/// `sim.events_dispatched`, `mac.frames_delivered`, `round.kernel`,
/// `campaign.execute`. See docs/observability.md for the full table.
///
/// Handles are interned once per call site:
///
///   static obs::Counter& c = obs::Counter::get("sim.events_dispatched");
///   c.add();
///
/// or, through the convenience macros that hide the static handle:
///
///   OBS_COUNT("sim.events_dispatched");
///   OBS_COUNT_N("mac.link_evaluations", plans.size());
///   OBS_SCOPED_TIMER("round.kernel");

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <chrono>
#include <string>
#include <vector>

namespace vanet::obs {

/// Registry capacities. Interning past these aborts (VANET_ASSERT): the
/// name set is a small, closed vocabulary, not user data.
constexpr std::size_t kMaxCounters = 96;
constexpr std::size_t kMaxTimers = 48;

namespace detail {

/// The process-wide enable flag, inline so add()/record() read it with a
/// single relaxed load instead of a cross-TU call.
inline std::atomic<bool> gEnabled{true};

/// The calling thread's accumulation cells, cached as raw pointers so
/// the hot-path increment is a zero-guard TLS load plus one fetch_add.
/// Null until the slow path registers this thread's slab.
struct ThreadCells {
  std::atomic<std::uint64_t>* counters = nullptr;
  std::atomic<std::uint64_t>* timerNanos = nullptr;
  std::atomic<std::uint64_t>* timerCounts = nullptr;
};
extern thread_local ThreadCells tCells;

/// Slow path: allocates and registers this thread's slab, fills tCells.
ThreadCells& initThreadCells();

inline ThreadCells& threadCells() {
  return tCells.counters != nullptr ? tCells : initThreadCells();
}

}  // namespace detail

/// Globally enables / disables accumulation (snapshots still work).
/// Enabled by default; the byte-invariance tests flip it both ways to
/// prove results do not depend on it. Not meant to be toggled while
/// worker threads are mid-count (counts may land on either side).
inline void setEnabled(bool enabled) noexcept {
  detail::gEnabled.store(enabled, std::memory_order_relaxed);
}
inline bool enabled() noexcept {
  return detail::gEnabled.load(std::memory_order_relaxed);
}

/// A named monotonic counter. Get once (interns the name), add anywhere;
/// thread-safe and contention-free.
class Counter {
 public:
  /// Interns `name` (idempotent) and returns its process-wide handle.
  static Counter& get(const std::string& name);

  void add(std::uint64_t n = 1) noexcept {
    if (!enabled()) return;
    detail::threadCells().counters[id_].fetch_add(n,
                                                  std::memory_order_relaxed);
  }

  std::size_t id() const noexcept { return id_; }
  const std::string& name() const;

 private:
  explicit Counter(std::size_t id) noexcept : id_(id) {}
  friend class Registry;
  std::size_t id_;
};

/// A named duration accumulator: total nanoseconds and invocation count.
/// Use through ScopedTimer; record() exists for pre-measured spans.
class Timer {
 public:
  static Timer& get(const std::string& name);

  void record(std::uint64_t nanos) noexcept {
    if (!enabled()) return;
    detail::ThreadCells& cells = detail::threadCells();
    cells.timerNanos[id_].fetch_add(nanos, std::memory_order_relaxed);
    cells.timerCounts[id_].fetch_add(1, std::memory_order_relaxed);
  }

  std::size_t id() const noexcept { return id_; }
  const std::string& name() const;

 private:
  explicit Timer(std::size_t id) noexcept : id_(id) {}
  friend class Registry;
  std::size_t id_;
};

/// Times its own lifetime into a Timer. When the registry is disabled at
/// construction the clock is never read.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer& timer) noexcept
      : timer_(enabled() ? &timer : nullptr) {
    if (timer_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (timer_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    timer_->record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count()));
  }

 private:
  Timer* timer_;
  std::chrono::steady_clock::time_point start_{};
};

/// One merged counter / timer reading.
struct CounterValue {
  std::string name;
  std::uint64_t value = 0;
};
struct TimerValue {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t totalNanos = 0;
};

/// A merged, name-sorted view over every thread's slab (live threads
/// included) plus the retired totals of exited threads.
struct Snapshot {
  std::vector<CounterValue> counters;
  std::vector<TimerValue> timers;

  /// Value of a counter / timer by name; zero-valued entry when absent.
  std::uint64_t counter(const std::string& name) const noexcept;
  TimerValue timer(const std::string& name) const noexcept;
};

/// Merges every slab into a Snapshot. Thread-safe; concurrent adds land
/// on one side of the snapshot or the other.
Snapshot takeSnapshot();

/// Zeroes every counter and timer cell, live and retired. Meant for
/// benches and tests that want per-section readings; do not call while
/// worker threads are counting.
void resetAll() noexcept;

/// Deterministic JSON rendering of a snapshot: two objects keyed by the
/// sorted names, `{"counters":{...},"timers":{"name":{"count":..,
/// "total_ns":..}}}`. Zero-count entries are kept so schema consumers
/// see the full vocabulary that was interned.
std::string snapshotJson(const Snapshot& snapshot);

}  // namespace vanet::obs

#define OBS_COUNT(name)                                     \
  do {                                                      \
    static ::vanet::obs::Counter& vanet_obs_counter_ =      \
        ::vanet::obs::Counter::get(name);                   \
    vanet_obs_counter_.add();                               \
  } while (false)

#define OBS_COUNT_N(name, n)                                \
  do {                                                      \
    static ::vanet::obs::Counter& vanet_obs_counter_ =      \
        ::vanet::obs::Counter::get(name);                   \
    vanet_obs_counter_.add(static_cast<std::uint64_t>(n));  \
  } while (false)

#define VANET_OBS_CONCAT_(a, b) a##b
#define VANET_OBS_CONCAT(a, b) VANET_OBS_CONCAT_(a, b)

/// Declares a scoped timer for the rest of the enclosing block. Names
/// embed the line number so two timers can share a scope.
#define OBS_SCOPED_TIMER(name)                                        \
  static ::vanet::obs::Timer& VANET_OBS_CONCAT(vanet_obs_timer_,      \
                                               __LINE__) =            \
      ::vanet::obs::Timer::get(name);                                 \
  const ::vanet::obs::ScopedTimer VANET_OBS_CONCAT(vanet_obs_scope_,  \
                                                   __LINE__)(         \
      VANET_OBS_CONCAT(vanet_obs_timer_, __LINE__))
