#pragma once

/// \file progress.h
/// Live campaign progress: a rate-limited stderr reporter the executor
/// feeds from its worker threads. Enabled with `--progress`; off, the
/// executor carries a null pointer and the hot path pays one branch.
///
/// Output is out-of-band observability: lines go to stderr (results go
/// to stdout / files), every line starts with `progress: ` so scripts
/// can filter it, and the reporter never touches job scheduling or fold
/// order -- result bytes are identical with it on or off.
///
/// Line shape:
///   progress: jobs 128/512 (25.0%) | wave 2 | points 3/16 |
///     431.2 jobs/s | eta 0.9s          (one line; wrapped here)

#include <chrono>
#include <cstddef>
#include <mutex>

namespace vanet::obs {

/// Thread-safe, rate-limited progress sink. jobDone() is called by every
/// worker; at most one line per `minInterval` reaches stderr (plus one
/// final line from finish()).
class ProgressReporter {
 public:
  /// `totalJobs` is the plan's job-index space -- an upper bound for
  /// adaptive campaigns, where converged points retire their tail jobs
  /// (beginWave() trims the bound as points close).
  explicit ProgressReporter(
      std::size_t totalJobs,
      std::chrono::milliseconds minInterval = std::chrono::milliseconds(250));

  /// Wave barrier: records the current wave number and, when points have
  /// converged, lowers the remaining-jobs bound so the ETA tightens.
  void beginWave(int wave, std::size_t waveJobs, std::size_t openPoints,
                 std::size_t totalPoints);

  /// One job finished. Called concurrently from workers; emits a line
  /// only when `minInterval` has elapsed since the last one.
  void jobDone();

  /// Emits the final line unconditionally (so short runs still show one).
  void finish();

 private:
  using Clock = std::chrono::steady_clock;

  /// Emits a line now. Caller holds `mutex_`.
  void emitLocked();

  const std::chrono::milliseconds minInterval_;
  const Clock::time_point started_;

  std::mutex mutex_;
  std::size_t jobsDone_ = 0;
  std::size_t jobsExpected_ = 0;  ///< done + still-possible remainder
  int wave_ = 0;
  std::size_t pointsDone_ = 0;
  std::size_t totalPoints_ = 0;
  Clock::time_point lastEmit_;
};

}  // namespace vanet::obs
