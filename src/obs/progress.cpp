#include "obs/progress.h"

#include <cstdio>

namespace vanet::obs {

ProgressReporter::ProgressReporter(std::size_t totalJobs,
                                   std::chrono::milliseconds minInterval)
    : minInterval_(minInterval),
      started_(Clock::now()),
      jobsExpected_(totalJobs),
      // Backdate the throttle so the first completed job of a slow run
      // produces a line immediately.
      lastEmit_(started_ - minInterval) {}

void ProgressReporter::beginWave(int wave, std::size_t waveJobs,
                                 std::size_t openPoints,
                                 std::size_t totalPoints) {
  (void)waveJobs;
  const std::lock_guard<std::mutex> lock(mutex_);
  wave_ = wave;
  totalPoints_ = totalPoints;
  pointsDone_ = totalPoints >= openPoints ? totalPoints - openPoints : 0;
}

void ProgressReporter::jobDone() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++jobsDone_;
  const Clock::time_point now = Clock::now();
  if (now - lastEmit_ < minInterval_ && jobsDone_ < jobsExpected_) return;
  emitLocked();
}

void ProgressReporter::finish() {
  const std::lock_guard<std::mutex> lock(mutex_);
  emitLocked();
}

void ProgressReporter::emitLocked() {
  const Clock::time_point now = Clock::now();
  lastEmit_ = now;
  const double elapsed =
      std::chrono::duration<double>(now - started_).count();
  const double rate = elapsed > 0.0
                          ? static_cast<double>(jobsDone_) / elapsed
                          : 0.0;
  const std::size_t expected =
      jobsExpected_ > jobsDone_ ? jobsExpected_ : jobsDone_;
  const double percent =
      expected > 0 ? 100.0 * static_cast<double>(jobsDone_) /
                         static_cast<double>(expected)
                   : 100.0;
  // `expected` is the plan's job-index space: exact for fixed-count
  // campaigns, an upper bound for adaptive ones (points that converge
  // retire their tail jobs), so the ETA is a worst-case estimate.
  const double eta =
      rate > 0.0 ? static_cast<double>(expected - jobsDone_) / rate : 0.0;
  std::fprintf(stderr,
               "progress: jobs %zu/%zu (%.1f%%) | wave %d | points %zu/%zu | "
               "%.1f jobs/s | eta %.1fs\n",
               jobsDone_, expected, percent, wave_, pointsDone_, totalPoints_,
               rate, eta);
}

}  // namespace vanet::obs
