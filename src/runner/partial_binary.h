#pragma once

/// \file partial_binary.h
/// Campaign-partial format v3: the compact binary twin of the JSON v1/v2
/// partials in accumulate.h, built for million-point campaigns where
/// text serialization and DOM parsing dominate merge wall time.
///
/// Wire layout (everything little-endian fixed-width; util/binio.h):
///
///   magic    8 bytes  "VNETPART"
///   version  u32      3
///   sections u32      section count N
///   table    N x { id u32, flags u32 (0), offset u64, length u64 }
///   payload  the sections, in table order: HEADER, [CHECKPOINT], POINTS
///   checksum u64      FNV-1a 64 over every preceding byte
///
/// HEADER mirrors the JSON v2 header (scenario, master seed, shard,
/// replication cap, adaptive stop rule, grid/job totals, point count).
/// CHECKPOINT (optional) carries the wave-barrier resume state. POINTS
/// holds one length-framed record per grid point -- the framing is what
/// lets readers stream records through a bounded buffer and report the
/// byte offset of a damaged record. Doubles travel as raw IEEE-754
/// payloads, so a round trip is bit-exact by construction and merged
/// results reassembled from binary shards match the single-process run
/// byte for byte (the same guarantee the JSON formats get from
/// shortest-round-trip formatting).

#include <cstddef>
#include <cstdio>
#include <string>
#include <string_view>

#include "runner/accumulate.h"

namespace vanet::runner {

/// The 8 magic bytes binary partials start with (format auto-detection).
inline constexpr char kPartialBinaryMagic[8] = {'V', 'N', 'E', 'T',
                                                'P', 'A', 'R', 'T'};

/// True when `prefix` (>= 8 bytes of a file) carries the binary magic.
bool looksLikeBinaryPartial(std::string_view prefix) noexcept;

/// Serializes `partial` to the complete v3 byte stream (checksum
/// included). Deterministic: bit-identical summaries produce identical
/// bytes.
std::string campaignPartialBinary(const CampaignPartial& partial);

/// Parses campaignPartialBinary() output. Throws std::runtime_error on
/// bad magic/version, a malformed section table, a checksum mismatch, or
/// a truncated/corrupt record -- always naming the byte offset of the
/// failure.
CampaignPartial parseCampaignPartialBinary(std::string_view data);

/// Streams one binary partial file: the header (and checkpoint trailer)
/// parse up front, then points decode one at a time through a bounded
/// read buffer whose peak size is the largest single point record --
/// never the whole points section. The running checksum is verified
/// after the last record; a mismatch throws from nextPoint().
class PartialBinaryFileReader {
 public:
  /// Opens `path` and reads everything up to the first point record.
  /// Throws std::runtime_error (message prefixed with the path) on I/O
  /// or format errors.
  explicit PartialBinaryFileReader(const std::string& path);
  ~PartialBinaryFileReader();

  PartialBinaryFileReader(const PartialBinaryFileReader&) = delete;
  PartialBinaryFileReader& operator=(const PartialBinaryFileReader&) = delete;

  /// Campaign identity + checkpoint trailer; `points` is always empty
  /// (they stream through nextPoint). sourcePath is set to the file.
  const CampaignPartial& header() const noexcept { return header_; }

  /// Points still to be streamed.
  std::size_t remainingPoints() const noexcept { return remaining_; }

  /// Decodes the next point record into `out`. Returns false once every
  /// record was consumed (the trailing checksum is verified exactly
  /// then). Throws on truncation, corruption, or checksum mismatch.
  bool nextPoint(GridPointSummary& out);

 private:
  void fail(const std::string& message) const;
  void readExact(void* into, std::size_t size, const char* what);

  std::string path_;
  std::FILE* file_ = nullptr;
  CampaignPartial header_;
  std::size_t remaining_ = 0;   ///< point records left to stream
  std::size_t streamed_ = 0;    ///< point records already decoded
  std::size_t fileOffset_ = 0;  ///< bytes consumed so far
  std::uint64_t runningHash_;   ///< FNV-1a over every byte before checksum
  std::string recordBuf_;       ///< reusable per-record buffer
};

}  // namespace vanet::runner
