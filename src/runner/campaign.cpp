#include "runner/campaign.h"

#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "util/rng.h"

namespace vanet::runner {
namespace {

int resolveThreadCount(int requested, std::size_t jobCount) {
  int threads = requested;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  if (static_cast<std::size_t>(threads) > jobCount) {
    threads = static_cast<int>(jobCount);
  }
  return threads > 0 ? threads : 1;
}

}  // namespace

CampaignResult runCampaign(const CampaignConfig& config) {
  const ScenarioInfo* scenario =
      ScenarioRegistry::global().find(config.scenario);
  if (scenario == nullptr) {
    throw std::invalid_argument("unknown scenario: \"" + config.scenario +
                                "\" (registered: " + [] {
                                  std::string all;
                                  for (const auto& name :
                                       ScenarioRegistry::global().names()) {
                                    if (!all.empty()) all += ", ";
                                    all += name;
                                  }
                                  return all;
                                }() + ")");
  }
  if (config.replications < 1) {
    throw std::invalid_argument("campaign needs replications >= 1");
  }

  // Resolve every grid point up front: scenario defaults, then the
  // campaign base, then the case overrides, then the axis values of the
  // point. Cases vary slowest, so the point list reads case-major.
  ParamSet base = ScenarioRegistry::global().defaults(config.scenario);
  base.apply(config.base);
  std::vector<ParamSet> points;
  std::vector<std::string> caseNames;
  if (config.cases.empty()) {
    points = config.grid.expand(base);
    caseNames.assign(points.size(), std::string());
  } else {
    for (const CampaignCase& campaignCase : config.cases) {
      ParamSet caseBase = base;
      caseBase.apply(campaignCase.overrides);
      for (ParamSet& point : config.grid.expand(caseBase)) {
        points.push_back(std::move(point));
        caseNames.push_back(campaignCase.name);
      }
    }
  }

  // Grid-major work-list: job i is replication i % replications of grid
  // point i / replications. The job index doubles as the RNG stream
  // index, so a fixed (grid, replications, masterSeed) layout pins every
  // job's stream no matter how many threads run it; changing the layout
  // re-derives the streams.
  const std::size_t replications =
      static_cast<std::size_t>(config.replications);
  const std::size_t jobCount = points.size() * replications;

  const int threads = resolveThreadCount(config.threads, jobCount);

  std::vector<JobResult> results(jobCount);
  std::atomic<std::size_t> nextJob{0};
  std::mutex errorMutex;
  std::exception_ptr firstError;

  const auto started = std::chrono::steady_clock::now();
  auto worker = [&] {
    for (;;) {
      const std::size_t i = nextJob.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobCount) return;
      try {
        JobContext context;
        context.params = points[i / replications];
        context.seed = Rng::deriveStreamSeed(config.masterSeed, i);
        context.replication = static_cast<int>(i % replications);
        context.jobIndex = i;
        results[i] = scenario->run(context);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(errorMutex);
        if (!firstError) firstError = std::current_exception();
        nextJob.store(jobCount, std::memory_order_relaxed);  // drain
        return;
      }
    }
  };

  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back(worker);
    }
    for (std::thread& thread : pool) {
      thread.join();
    }
  }
  if (firstError) std::rethrow_exception(firstError);
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - started;

  // Merge strictly in job order; with deterministic per-job results this
  // makes the merged campaign a pure function of (config, masterSeed).
  CampaignResult merged;
  merged.scenario = config.scenario;
  merged.masterSeed = config.masterSeed;
  merged.threads = threads;
  merged.jobCount = jobCount;
  merged.wallSeconds = elapsed.count();
  merged.jobsPerSecond =
      elapsed.count() > 0.0 ? static_cast<double>(jobCount) / elapsed.count()
                            : 0.0;
  merged.points.resize(points.size());
  for (std::size_t g = 0; g < points.size(); ++g) {
    GridPointSummary& point = merged.points[g];
    point.gridIndex = g;
    point.caseName = caseNames[g];
    point.params = points[g];
  }
  for (std::size_t i = 0; i < jobCount; ++i) {
    GridPointSummary& point = merged.points[i / replications];
    const JobResult& result = results[i];
    point.table1.merge(result.table1);
    for (const auto& [flow, figure] : result.figures) {
      point.figures[flow].merge(figure);
    }
    point.totals.merge(result.totals);
    for (const auto& [name, value] : result.metrics) {
      point.metrics[name].add(value);
    }
    point.replications += 1;
    point.rounds += result.rounds;
  }
  return merged;
}

}  // namespace vanet::runner
