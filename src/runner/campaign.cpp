#include "runner/campaign.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <utility>

#include "obs/counters.h"
#include "obs/progress.h"
#include "runner/partial_binary.h"

namespace vanet::runner {
namespace {

/// The partial header a checkpoint of this campaign must carry -- also
/// what a loaded checkpoint is validated against before its fold state
/// is trusted.
CampaignPartial partialHeaderForPlan(const CampaignConfig& config,
                                     const CampaignPlan& plan) {
  CampaignPartial header;
  header.scenario = config.scenario;
  header.masterSeed = plan.masterSeed();
  header.shard = plan.shard();
  header.replications = plan.replications();
  if (plan.adaptive()) {
    header.targetRelativeCi95 = plan.targetRelativeCi95();
    header.minReplications = plan.minReplications();
    header.maxReplications = plan.maxReplications();
    header.targetMetric = plan.targetMetric();
  }
  header.totalPoints = plan.points().size();
  header.totalJobs = plan.totalJobCount();
  return header;
}

/// Loads + validates the checkpoint at `path` against this campaign.
CampaignPartial loadCheckpoint(const std::string& path,
                               const CampaignPartial& expected) {
  CampaignPartial checkpoint = readCampaignPartial(path);
  if (!checkpoint.hasCheckpoint) {
    throw std::runtime_error(path +
                             ": not a checkpoint (no resume state; this is a "
                             "finished shard partial)");
  }
  const auto mismatch = [&path](const std::string& field) {
    throw std::runtime_error(path +
                             ": checkpoint describes a different campaign (" +
                             field + " disagrees)");
  };
  if (checkpoint.scenario != expected.scenario) mismatch("scenario");
  if (checkpoint.masterSeed != expected.masterSeed) mismatch("master seed");
  if (checkpoint.shard.index != expected.shard.index ||
      checkpoint.shard.count != expected.shard.count) {
    mismatch("shard");
  }
  if (checkpoint.replications != expected.replications) {
    mismatch("replication cap");
  }
  if (checkpoint.targetRelativeCi95 != expected.targetRelativeCi95 ||
      checkpoint.minReplications != expected.minReplications ||
      checkpoint.maxReplications != expected.maxReplications ||
      checkpoint.targetMetric != expected.targetMetric) {
    mismatch("adaptive stop rule");
  }
  if (checkpoint.totalPoints != expected.totalPoints ||
      checkpoint.totalJobs != expected.totalJobs) {
    mismatch("grid totals");
  }
  return checkpoint;
}

/// Atomic checkpoint write: the complete file lands under a temporary
/// name first, then rename() swaps it in -- a kill mid-write leaves the
/// previous checkpoint intact, never a torn file.
void writeCheckpointAtomically(const std::string& path,
                               const CampaignPartial& checkpoint) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("cannot open " + tmp +
                               " for writing the campaign checkpoint");
    }
    out << campaignPartialBinary(checkpoint);
    if (!out) {
      throw std::runtime_error("failed writing the campaign checkpoint to " +
                               tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("cannot move the campaign checkpoint into " +
                             path);
  }
}

}  // namespace

CampaignResult runCampaign(const CampaignConfig& config) {
  std::unique_ptr<const CampaignPlan> plan;
  {
    OBS_SCOPED_TIMER("campaign.plan");
    plan = std::make_unique<const CampaignPlan>(buildPlan(config));
  }
  CampaignAccumulator accumulator(*plan);

  WaveHooks hooks;
  hooks.haltAfterWaves = config.haltAfterWaves;
  if (config.resume) {
    if (config.checkpointPath.empty()) {
      throw std::invalid_argument("campaign resume needs a checkpoint path");
    }
    CampaignPartial checkpoint = loadCheckpoint(
        config.checkpointPath, partialHeaderForPlan(config, *plan));
    hooks.resumeCoveredReps = checkpoint.checkpointCoveredReps;
    accumulator.restore(std::move(checkpoint.points));
  }
  if (!config.checkpointPath.empty()) {
    hooks.onWaveBarrier = [&config, &plan, &accumulator](
                              int wave, int coveredReps, bool complete) {
      (void)wave;
      CampaignPartial checkpoint = partialHeaderForPlan(config, *plan);
      checkpoint.hasCheckpoint = true;
      checkpoint.checkpointCoveredReps = coveredReps;
      checkpoint.checkpointComplete = complete;
      checkpoint.points = accumulator.foldedPoints();  // barrier: race-free
      writeCheckpointAtomically(config.checkpointPath, checkpoint);
    };
  }

  std::unique_ptr<obs::ProgressReporter> progress;
  if (config.progress) {
    progress = std::make_unique<obs::ProgressReporter>(plan->shardJobCount());
  }
  const ExecutionStats stats =
      executeCampaign(*plan, config.threads, config.streaming, accumulator,
                      progress.get(), hooks);

  OBS_SCOPED_TIMER("campaign.accumulate");
  CampaignResult merged;
  merged.scenario = config.scenario;
  merged.masterSeed = config.masterSeed;
  merged.replications = plan->replications();
  if (plan->adaptive()) {
    merged.targetRelativeCi95 = plan->targetRelativeCi95();
    merged.minReplications = plan->minReplications();
    merged.maxReplications = plan->maxReplications();
    merged.targetMetric = plan->targetMetric();
  }
  merged.waves = stats.waves;
  merged.shard = config.shard;
  merged.threads = stats.threads;
  merged.streaming = stats.streaming;
  merged.jobCount = stats.jobsRun;
  merged.totalPoints = plan->points().size();
  merged.totalJobs = plan->totalJobCount();
  merged.peakBufferedResults = stats.peakBufferedResults;
  merged.wallSeconds = stats.wallSeconds;
  merged.jobsPerSecond = stats.wallSeconds > 0.0
                             ? static_cast<double>(merged.jobCount) /
                                   stats.wallSeconds
                             : 0.0;
  merged.halted = stats.halted;
  // A halted run surfaces no summaries: its fold state lives in the
  // checkpoint file, and take() would (correctly) refuse an incomplete
  // fold.
  if (!stats.halted) {
    merged.points = accumulator.take();
  }
  return merged;
}

CampaignPartial campaignPartial(const CampaignResult& result) {
  CampaignPartial partial;
  partial.scenario = result.scenario;
  partial.masterSeed = result.masterSeed;
  partial.shard = result.shard;
  partial.replications = result.replications;
  partial.targetRelativeCi95 = result.targetRelativeCi95;
  partial.minReplications = result.minReplications;
  partial.maxReplications = result.maxReplications;
  partial.targetMetric = result.targetMetric;
  partial.totalPoints = result.totalPoints;
  partial.totalJobs = result.totalJobs;
  partial.points = result.points;
  return partial;
}

namespace {

/// Rebuilds the full-grid CampaignResult around already-merged points;
/// `header` carries the campaign identity of the partial set.
CampaignResult resultFromMerged(const CampaignPartial& header,
                                std::vector<GridPointSummary> points) {
  CampaignResult merged;
  merged.scenario = header.scenario;
  merged.masterSeed = header.masterSeed;
  merged.replications = header.replications;
  merged.targetRelativeCi95 = header.targetRelativeCi95;
  merged.minReplications = header.minReplications;
  merged.maxReplications = header.maxReplications;
  merged.targetMetric = header.targetMetric;
  merged.shard = Shard{0, 1};  // the merge covers the full grid
  merged.totalPoints = header.totalPoints;
  merged.totalJobs = header.totalJobs;
  merged.points = std::move(points);
  // Jobs actually run across every shard: adaptive points record their
  // stop point, so the sum is exact in both modes. The executed wave
  // count is equally reconstructible -- it is the deepest per-point
  // wave trajectory, and each point's replications pin where it stopped.
  merged.jobCount = 0;
  merged.waves = merged.points.empty() ? 0 : 1;
  for (const GridPointSummary& point : merged.points) {
    merged.jobCount += static_cast<std::size_t>(point.replications);
    if (merged.targetRelativeCi95 > 0.0) {
      // Walk the shared schedule until it covers the point's stop point;
      // the cap bound keeps this finite even for a partial whose point
      // claims more replications than the header's cap.
      int waves = 1;
      for (;;) {
        const int end = waveEndFor(merged.minReplications,
                                   merged.maxReplications, waves - 1);
        if (end >= point.replications || end >= merged.maxReplications) break;
        ++waves;
      }
      merged.waves = std::max(merged.waves, waves);
    }
  }
  return merged;
}

}  // namespace

CampaignResult resultFromPartials(std::vector<CampaignPartial> partials) {
  if (partials.empty()) {
    throw std::runtime_error("no campaign partials to merge");
  }
  CampaignPartial header = partials.front();
  header.points.clear();
  return resultFromMerged(header, mergeCampaignPartials(std::move(partials)));
}

CampaignResult resultFromPartialFiles(const std::vector<std::string>& paths) {
  CampaignPartial header;
  std::vector<GridPointSummary> points =
      mergeCampaignPartialFiles(paths, &header);
  return resultFromMerged(header, std::move(points));
}

}  // namespace vanet::runner
