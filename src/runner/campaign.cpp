#include "runner/campaign.h"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>

#include "obs/counters.h"
#include "obs/progress.h"

namespace vanet::runner {

CampaignResult runCampaign(const CampaignConfig& config) {
  std::unique_ptr<const CampaignPlan> plan;
  {
    OBS_SCOPED_TIMER("campaign.plan");
    plan = std::make_unique<const CampaignPlan>(buildPlan(config));
  }
  CampaignAccumulator accumulator(*plan);
  std::unique_ptr<obs::ProgressReporter> progress;
  if (config.progress) {
    progress = std::make_unique<obs::ProgressReporter>(plan->shardJobCount());
  }
  const ExecutionStats stats = executeCampaign(
      *plan, config.threads, config.streaming, accumulator, progress.get());

  OBS_SCOPED_TIMER("campaign.accumulate");
  CampaignResult merged;
  merged.scenario = config.scenario;
  merged.masterSeed = config.masterSeed;
  merged.replications = plan->replications();
  if (plan->adaptive()) {
    merged.targetRelativeCi95 = plan->targetRelativeCi95();
    merged.minReplications = plan->minReplications();
    merged.maxReplications = plan->maxReplications();
    merged.targetMetric = plan->targetMetric();
  }
  merged.waves = stats.waves;
  merged.shard = config.shard;
  merged.threads = stats.threads;
  merged.streaming = stats.streaming;
  merged.jobCount = stats.jobsRun;
  merged.totalPoints = plan->points().size();
  merged.totalJobs = plan->totalJobCount();
  merged.peakBufferedResults = stats.peakBufferedResults;
  merged.wallSeconds = stats.wallSeconds;
  merged.jobsPerSecond = stats.wallSeconds > 0.0
                             ? static_cast<double>(merged.jobCount) /
                                   stats.wallSeconds
                             : 0.0;
  merged.points = accumulator.take();
  return merged;
}

CampaignPartial campaignPartial(const CampaignResult& result) {
  CampaignPartial partial;
  partial.scenario = result.scenario;
  partial.masterSeed = result.masterSeed;
  partial.shard = result.shard;
  partial.replications = result.replications;
  partial.targetRelativeCi95 = result.targetRelativeCi95;
  partial.minReplications = result.minReplications;
  partial.maxReplications = result.maxReplications;
  partial.targetMetric = result.targetMetric;
  partial.totalPoints = result.totalPoints;
  partial.totalJobs = result.totalJobs;
  partial.points = result.points;
  return partial;
}

CampaignResult resultFromPartials(std::vector<CampaignPartial> partials) {
  if (partials.empty()) {
    throw std::runtime_error("no campaign partials to merge");
  }
  CampaignResult merged;
  merged.scenario = partials.front().scenario;
  merged.masterSeed = partials.front().masterSeed;
  merged.replications = partials.front().replications;
  merged.targetRelativeCi95 = partials.front().targetRelativeCi95;
  merged.minReplications = partials.front().minReplications;
  merged.maxReplications = partials.front().maxReplications;
  merged.targetMetric = partials.front().targetMetric;
  merged.shard = Shard{0, 1};  // the merge covers the full grid
  merged.totalPoints = partials.front().totalPoints;
  merged.totalJobs = partials.front().totalJobs;
  merged.points = mergeCampaignPartials(std::move(partials));
  // Jobs actually run across every shard: adaptive points record their
  // stop point, so the sum is exact in both modes. The executed wave
  // count is equally reconstructible -- it is the deepest per-point
  // wave trajectory, and each point's replications pin where it stopped.
  merged.jobCount = 0;
  merged.waves = merged.points.empty() ? 0 : 1;
  for (const GridPointSummary& point : merged.points) {
    merged.jobCount += static_cast<std::size_t>(point.replications);
    if (merged.targetRelativeCi95 > 0.0) {
      // Walk the shared schedule until it covers the point's stop point;
      // the cap bound keeps this finite even for a partial whose point
      // claims more replications than the header's cap.
      int waves = 1;
      for (;;) {
        const int end = waveEndFor(merged.minReplications,
                                   merged.maxReplications, waves - 1);
        if (end >= point.replications || end >= merged.maxReplications) break;
        ++waves;
      }
      merged.waves = std::max(merged.waves, waves);
    }
  }
  return merged;
}

}  // namespace vanet::runner
