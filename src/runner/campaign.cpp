#include "runner/campaign.h"

#include <stdexcept>
#include <utility>

namespace vanet::runner {

CampaignResult runCampaign(const CampaignConfig& config) {
  const CampaignPlan plan = buildPlan(config);
  CampaignAccumulator accumulator(plan);
  const ExecutionStats stats =
      executeCampaign(plan, config.threads, config.streaming, accumulator);

  CampaignResult merged;
  merged.scenario = config.scenario;
  merged.masterSeed = config.masterSeed;
  merged.replications = config.replications;
  merged.shard = config.shard;
  merged.threads = stats.threads;
  merged.streaming = stats.streaming;
  merged.jobCount = plan.shardJobCount();
  merged.totalPoints = plan.points().size();
  merged.totalJobs = plan.totalJobCount();
  merged.peakBufferedResults = stats.peakBufferedResults;
  merged.wallSeconds = stats.wallSeconds;
  merged.jobsPerSecond = stats.wallSeconds > 0.0
                             ? static_cast<double>(merged.jobCount) /
                                   stats.wallSeconds
                             : 0.0;
  merged.points = accumulator.take();
  return merged;
}

CampaignPartial campaignPartial(const CampaignResult& result) {
  CampaignPartial partial;
  partial.scenario = result.scenario;
  partial.masterSeed = result.masterSeed;
  partial.shard = result.shard;
  partial.replications = result.replications;
  partial.totalPoints = result.totalPoints;
  partial.totalJobs = result.totalJobs;
  partial.points = result.points;
  return partial;
}

CampaignResult resultFromPartials(std::vector<CampaignPartial> partials) {
  if (partials.empty()) {
    throw std::runtime_error("no campaign partials to merge");
  }
  CampaignResult merged;
  merged.scenario = partials.front().scenario;
  merged.masterSeed = partials.front().masterSeed;
  merged.replications = partials.front().replications;
  merged.shard = Shard{0, 1};  // the merge covers the full grid
  merged.totalPoints = partials.front().totalPoints;
  merged.totalJobs = partials.front().totalJobs;
  merged.jobCount = merged.totalJobs;
  merged.points = mergeCampaignPartials(std::move(partials));
  return merged;
}

}  // namespace vanet::runner
