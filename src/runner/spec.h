#pragma once

/// \file spec.h
/// Declarative campaign specs: the `vanet-campaign-spec` v1 JSON document
/// that captures everything a study *is* — scenario, base parameters,
/// named cases, sweep grid, replication policy (fixed count or adaptive
/// CI95-targeted), master seed, and the artefacts to emit — so an
/// experiment ships as one diffable file instead of a bespoke binary
/// with a flag matrix. Engine knobs (threads, sharding, streaming,
/// checkpoints) deliberately stay command-line flags: the spec defines
/// *what* to run, the invocation decides *how*.
///
/// The document round-trips byte-exactly: renderCampaignSpec() is the
/// one normalized rendering (fixed key order, json::num numbers, every
/// optional field materialized), parseCampaignSpec() validates field by
/// field naming the offending key and the expected type, and
/// parse(render(spec)) == spec, render(parse(text)) is a fixed point.
/// The FNV-1a-64 digest of the normalized rendering is the spec's
/// identity; every artefact manifest records it (obs::setRunSpec).
///
/// Schema (top-level keys, all materialized by the normalized form):
///   format        "vanet-campaign-spec" (required)
///   version       1 (required)
///   name          artefact base name (required, non-empty)
///   title         console headline (optional, default "")
///   paper_ref     provenance line printed under the title (optional)
///   scenario      registered scenario name (required, non-empty; the
///                 registry is consulted at plan time, not parse time,
///                 so specs for plug-in scenarios parse everywhere)
///   seed          master seed, unsigned 64-bit (optional, default 2008)
///   replications  fixed replications per grid point (optional, >= 1,
///                 default 1; the adaptive floor/cap win when `adaptive`
///                 is set)
///   base          {param: number, ...} applied over scenario defaults
///   cases         [{"name": ..., "overrides": {param: number}}, ...]
///   grid          [{"axis": ..., "values": [numbers]}, ...] cartesian
///   adaptive      null, or {"target_ci": > 0, "min_replications",
///                 "max_replications", "metric"} (metric "" = scenario
///                 default)
///   emit          [{"kind": ..., "name": ...}, ...]; empty list = the
///                 scenario's ScenarioInfo::defaultEmit kinds named
///                 after the spec

#include <cstdint>
#include <string>
#include <vector>

#include "runner/campaign.h"
#include "runner/plan.h"
#include "util/flags.h"

namespace vanet::runner {

inline constexpr int kCampaignSpecVersion = 1;
inline constexpr const char* kCampaignSpecFormat = "vanet-campaign-spec";

/// One artefact of the spec's emit list. Kinds:
///   campaign_csv   <dir>/<name>_campaign.csv   (runner::writeCampaignCsv)
///   campaign_json  <dir>/<name>_campaign.json  (runner::writeCampaignJson)
///   table1_csv     <dir>/<name>.csv per grid point (_p<G> suffix when
///                  the campaign has more than one point)
///   figures        one CSV per (grid point, flow)
///                  (runner::writeCampaignFigureCsvs under <name>)
struct SpecEmit {
  std::string kind;
  std::string name;

  friend bool operator==(const SpecEmit& a, const SpecEmit& b) {
    return a.kind == b.kind && a.name == b.name;
  }
};

/// The emit kinds parseCampaignSpec accepts, sorted.
const std::vector<std::string>& specEmitKinds();

/// A parsed `vanet-campaign-spec` document. Optional fields hold their
/// defaults after parsing, so rendering is a pure function of this
/// struct and the normalized form is unique.
struct CampaignSpec {
  std::string name;
  std::string title;
  std::string paperRef;
  std::string scenario;
  std::uint64_t seed = 2008;
  int replications = 1;
  ParamSet base;
  std::vector<CampaignCase> cases;
  SweepGrid grid;
  /// Adaptive replication policy; targetCi <= 0 means a fixed count and
  /// the other three fields are ignored (and render as null).
  double targetCi = 0.0;
  int minReplications = 2;
  int maxReplications = 64;
  std::string targetMetric;
  /// Emit list; empty = the scenario's defaultEmit kinds named `name`.
  std::vector<SpecEmit> emits;
};

/// Parses and validates one spec document. Throws std::runtime_error
/// whose message names the offending key and the expected type
/// ('campaign spec: key "seed": expected an unsigned integer, got
/// string'); unknown keys are rejected with a nearest-name hint.
CampaignSpec parseCampaignSpec(const std::string& text);

/// parseCampaignSpec over a file; errors are prefixed with `path`.
CampaignSpec loadCampaignSpec(const std::string& path);

/// The unique normalized rendering (see the schema above). Byte-exact
/// round trip: parse(render(s)) == s and render(parse(t)) is a fixed
/// point of render ∘ parse.
std::string renderCampaignSpec(const CampaignSpec& spec);

/// FNV-1a-64 of renderCampaignSpec(spec) — the spec's identity, recorded
/// as `spec_digest` in every artefact manifest of a spec-driven run.
std::uint64_t campaignSpecDigest(const CampaignSpec& spec);

/// The experiment half of a CampaignConfig: scenario, seed, replication
/// policy, base params, cases and grid. Engine knobs (threads, shard,
/// streaming, checkpoint, progress) keep their defaults — apply them
/// from flags with applyEngineFlags().
CampaignConfig campaignConfigFromSpec(const CampaignSpec& spec);

/// The engine half: copies the shared run flags (threads, round workers,
/// shard, streaming, progress, checkpoint/resume, halt-after-waves) onto
/// `config` without touching the experiment definition. Seed and the
/// adaptive policy are deliberately *not* applied — they belong to the
/// spec (benches that keep flag overrides for them layer those on
/// explicitly).
void applyEngineFlags(const CampaignRunFlags& run, CampaignConfig& config);

/// The spec's emit list, or — when the spec declares none — the
/// scenario's ScenarioInfo::defaultEmit kinds named after the spec.
/// Throws std::invalid_argument when the list is empty *and* the
/// scenario is unknown to the registry.
std::vector<SpecEmit> resolvedEmits(const CampaignSpec& spec);

/// Executes the resolved emit list into `dir` (no trailing slash).
/// Every path successfully written is appended to `written`; returns
/// false as soon as one artefact fails to write (the failure is logged
/// by the emitter).
bool writeSpecArtifacts(const CampaignSpec& spec, const CampaignResult& result,
                        const std::string& dir,
                        std::vector<std::string>& written);

}  // namespace vanet::runner
