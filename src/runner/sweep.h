#pragma once

/// \file sweep.h
/// Declarative sweep grids: a cartesian product over named parameter axes
/// (speed, car count, infostation spacing, cooperation on/off, ...) that
/// expands into the work-list of independent grid points a campaign runs.

#include <cstddef>
#include <string>
#include <vector>

#include "runner/params.h"

namespace vanet::runner {

/// One swept parameter and the values it takes.
struct SweepAxis {
  std::string name;
  std::vector<double> values;
};

/// A cartesian product over axes. The first axis added varies slowest
/// (outermost loop), the last varies fastest, so expansion order reads
/// like nested for-loops in declaration order.
class SweepGrid {
 public:
  /// Adds an axis; `values` must be non-empty and `name` must not repeat.
  /// Returns *this for chaining.
  SweepGrid& add(std::string name, std::vector<double> values);

  std::size_t axisCount() const noexcept { return axes_.size(); }

  /// Number of grid points: the product of axis sizes; 1 for an empty
  /// grid (the single point that applies no overrides).
  std::size_t pointCount() const noexcept;

  /// Parameter overrides of grid point `index` (row-major over the axes,
  /// first axis slowest), applied on top of a copy of `base`.
  ParamSet point(std::size_t index, const ParamSet& base = {}) const;

  /// All grid points in order.
  std::vector<ParamSet> expand(const ParamSet& base = {}) const;

  const std::vector<SweepAxis>& axes() const noexcept { return axes_; }

 private:
  std::vector<SweepAxis> axes_;
};

}  // namespace vanet::runner
