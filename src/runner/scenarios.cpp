/// \file scenarios.cpp
/// Built-in scenarios of the campaign engine, adapting the analysis-layer
/// experiment drivers to the registry's (params, seed) -> JobResult shape.
/// Parameter names are the one vocabulary every bench and sweep shares:
///
///   common    rounds, cars, speed_kmh, coop, nakagami
///   PHY/rate  phy (0=DSSS-1M 1=DSSS-2M 2=CCK-5.5M 3=CCK-11M), payload,
///             pkts_per_s, duty_frames (> 0 derives pkts_per_s from a
///             constant channel duty of that many 1 Mbps reference
///             frames/s, split across the platoon's flows)
///   channel   c2c_ref_loss, c2c_exponent (C2C link quality knobs)
///   protocol  selection (0=all-one-hop 1=best-rssi 2=random-k),
///             max_coop, batched, batch, gossip, fc
///   urban     repeat, gap_seconds
///   highway   aps, spacing, first_ap_arc, road_length, gap_seconds
///   highway_file  file (packets per car; aps/spacing as above)

#include <iterator>
#include <stdexcept>

#include "analysis/experiment.h"
#include "mac/airtime.h"
#include "runner/registry.h"

namespace vanet::runner {

channel::PhyMode phyModeFromParam(int index) {
  static constexpr channel::PhyMode kPhyModes[] = {
      channel::PhyMode::kDsss1Mbps, channel::PhyMode::kDsss2Mbps,
      channel::PhyMode::kCck5_5Mbps, channel::PhyMode::kCck11Mbps};
  const int count = static_cast<int>(std::size(kPhyModes));
  if (index < 0 || index >= count) {
    throw std::invalid_argument("phy must be in [0, " +
                                std::to_string(count - 1) + "], got " +
                                std::to_string(index));
  }
  return kPhyModes[index];
}

namespace {

/// The ParamSpecs shared by every scenario beyond rounds/cars/speed:
/// PHY mode, packet rate, C2C channel quality and protocol policies.
std::vector<ParamSpec> commonParamSpecs() {
  return {
      {"coop", 1, "C-ARQ cooperation on/off"},
      {"phy", 0, "AP/C2C PHY mode: 0=DSSS-1M 1=DSSS-2M 2=CCK-5.5M 3=CCK-11M"},
      {"payload", 1000, "data payload, bytes"},
      {"pkts_per_s", 5, "packets per second per flow"},
      {"duty_frames", 0,
       "> 0: derive pkts_per_s from a constant duty of this many 1 Mbps "
       "reference frames/s"},
      {"c2c_ref_loss", 40, "car-to-car reference loss, dB"},
      {"c2c_exponent", 2.4, "car-to-car path-loss exponent"},
      {"selection", 0,
       "cooperator selection: 0=all-one-hop 1=best-rssi 2=random-k"},
      {"max_coop", 8, "cooperator cap for the capped policies"},
      {"batched", 0, "batched REQUEST mode"},
      {"batch", 32, "max seqs per batched REQUEST"},
      {"gossip", 0, "window-gossip extension"},
      {"fc", 0, "frame combining"},
  };
}

/// Applies the common PHY / channel / protocol params to an experiment's
/// carq + channel configs plus its packet-rate fields. Every set is
/// gated on has(): when a campaign resolves the registered defaults the
/// spec values land here, and a hand-built JobContext (tests, direct
/// scenario calls) genuinely keeps the experiment-config defaults for
/// absent params — the specs never silently shadow them. `carCount` is
/// the resolved platoon size (the constant-duty rate splits across
/// flows).
template <typename ExperimentConfig>
void applyCommonParams(const JobContext& job, int carCount,
                       ExperimentConfig& config) {
  if (job.params.has("coop")) {
    config.carq.cooperationEnabled = job.params.getBool("coop", true);
  }
  if (job.params.has("phy")) {
    config.carq.phyMode = phyModeFromParam(job.params.getInt("phy", 0));
  }
  if (job.params.has("payload")) {
    config.payloadBytes = job.params.getInt("payload", 0);
  }
  if (job.params.has("pkts_per_s")) {
    config.packetsPerSecondPerFlow = job.params.get("pkts_per_s", 0.0);
  }
  const double dutyFrames = job.params.get("duty_frames", 0.0);
  if (dutyFrames > 0.0) {
    // Constant channel duty: the AP spends the airtime of `dutyFrames`
    // 1 Mbps reference frames per second, shared across the flows; faster
    // modes therefore offer proportionally more packets.
    const double referenceDuty =
        dutyFrames * mac::frameAirtime(channel::PhyMode::kDsss1Mbps,
                                       config.payloadBytes)
                         .toSeconds();
    config.packetsPerSecondPerFlow =
        referenceDuty /
        (static_cast<double>(carCount) *
         mac::frameAirtime(config.carq.phyMode, config.payloadBytes)
             .toSeconds());
  }
  if (job.params.has("c2c_ref_loss")) {
    config.channel.c2cReferenceLossDb = job.params.get("c2c_ref_loss", 0.0);
  }
  if (job.params.has("c2c_exponent")) {
    config.channel.c2cPathLossExponent = job.params.get("c2c_exponent", 0.0);
  }
  if (job.params.has("selection")) {
    switch (job.params.getInt("selection", 0)) {
      case 0:
        config.carq.selection = carq::SelectionPolicy::kAllOneHop;
        break;
      case 1:
        config.carq.selection = carq::SelectionPolicy::kBestRssi;
        break;
      case 2:
        config.carq.selection = carq::SelectionPolicy::kRandomK;
        break;
      default:
        throw std::invalid_argument("selection must be 0, 1 or 2");
    }
  }
  if (job.params.has("max_coop")) {
    config.carq.maxCooperators = job.params.getInt("max_coop", 0);
  }
  if (job.params.has("batched")) {
    config.carq.requestMode = job.params.getBool("batched", false)
                                  ? carq::RequestMode::kBatched
                                  : carq::RequestMode::kPerPacket;
  }
  if (job.params.has("batch")) {
    config.carq.maxBatchSeqs = job.params.getInt("batch", 0);
  }
  if (job.params.has("gossip")) {
    config.carq.gossipWindowExtension = job.params.getBool("gossip", false);
  }
  if (job.params.has("fc")) {
    config.carq.frameCombining = job.params.getBool("fc", false);
  }
  if (job.params.has("nakagami")) {
    config.channel.nakagamiM = job.params.get("nakagami", 0.0);
  }
}

analysis::UrbanExperimentConfig urbanConfig(const JobContext& job) {
  analysis::UrbanExperimentConfig config;
  config.rounds = job.params.getInt("rounds", 30);
  config.seed = job.seed;
  config.roundThreads = job.roundThreads;
  config.scenario.carCount = job.params.getInt("cars", 3);
  config.scenario.baseSpeedMps = job.params.get("speed_kmh", 20.0) / 3.6;
  config.scenario.gapSeconds =
      job.params.get("gap_seconds", config.scenario.gapSeconds);
  config.repeatCount = job.params.getInt("repeat", 1);
  applyCommonParams(job, config.scenario.carCount, config);
  return config;
}

analysis::HighwayExperimentConfig highwayConfig(const JobContext& job) {
  analysis::HighwayExperimentConfig config;
  config.rounds = job.params.getInt("rounds", 15);
  config.seed = job.seed;
  config.roundThreads = job.roundThreads;
  config.scenario.carCount = job.params.getInt("cars", 3);
  config.scenario.speedMps = job.params.get("speed_kmh", 80.0) / 3.6;
  config.scenario.apCount = job.params.getInt("aps", 1);
  config.scenario.apSpacing =
      job.params.get("spacing", config.scenario.apSpacing);
  config.scenario.firstApArc =
      job.params.get("first_ap_arc", config.scenario.firstApArc);
  config.scenario.gapSeconds =
      job.params.get("gap_seconds", config.scenario.gapSeconds);
  // road_length <= 0 auto-sizes the road to cover every AP plus run-out.
  const double roadLength = job.params.get("road_length", 0.0);
  config.scenario.roadLengthMetres =
      roadLength > 0.0
          ? roadLength
          : config.scenario.firstApArc +
                config.scenario.apSpacing * (config.scenario.apCount - 1) +
                500.0;
  applyCommonParams(job, config.scenario.carCount, config);
  return config;
}

/// Fleet-mean Table 1 metrics plus the lead car's columns (the platoon
/// studies read car 1, the sweeps read the fleet average).
void addTable1Metrics(const trace::Table1Data& table1,
                      std::map<std::string, double>& metrics) {
  if (table1.rows.empty()) return;
  double tx = 0.0;
  double before = 0.0;
  double after = 0.0;
  double joint = 0.0;
  double delivered = 0.0;
  for (const trace::Table1Row& row : table1.rows) {
    tx += row.txByAp.mean();
    before += row.pctLostBefore.mean();
    after += row.pctLostAfter.mean();
    joint += row.pctLostJoint.mean();
    delivered += row.txByAp.mean() - row.lostAfter.mean();
  }
  const auto cars = static_cast<double>(table1.rows.size());
  metrics["tx_by_ap"] = tx / cars;
  metrics["pct_lost_before"] = before / cars;
  metrics["pct_lost_after"] = after / cars;
  metrics["pct_lost_joint"] = joint / cars;
  // Unique packets the car holds after all repair (the goodput proxy of
  // the retransmission and bit-rate studies).
  metrics["delivered"] = delivered / cars;
  // Fleet-mean packet delivery ratio after cooperation, as a fraction:
  // the headline Monte-Carlo mean the paper reports with CI95 bands, and
  // the default target of adaptive (CI-stopped) campaigns.
  metrics["pdr"] = 1.0 - joint / cars / 100.0;
  const trace::Table1Row& car1 = table1.rows.front();
  metrics["car1_pct_lost_before"] = car1.pctLostBefore.mean();
  metrics["car1_pct_lost_after"] = car1.pctLostAfter.mean();
  metrics["car1_pct_lost_joint"] = car1.pctLostJoint.mean();
}

void addProtocolMetrics(const analysis::ProtocolTotals& totals,
                        std::map<std::string, double>& metrics) {
  metrics["requests_per_round"] = totals.requestsPerRound.mean();
  metrics["coop_data_per_round"] = totals.coopDataPerRound.mean();
  metrics["suppressed_per_round"] = totals.suppressedPerRound.mean();
  metrics["buffered_per_round"] = totals.bufferedPerRound.mean();
}

JobResult runUrban(const JobContext& job) {
  analysis::UrbanExperiment experiment(urbanConfig(job));
  analysis::UrbanExperimentResult result = experiment.run();
  JobResult out;
  out.table1 = result.table1;
  out.figures = std::move(result.figures);
  out.totals = result.totals;
  out.rounds = result.rounds;
  addTable1Metrics(out.table1, out.metrics);
  addProtocolMetrics(out.totals, out.metrics);
  return out;
}

JobResult runHighway(const JobContext& job) {
  analysis::HighwayExperiment experiment(highwayConfig(job));
  const analysis::HighwayExperimentResult result = experiment.run();
  JobResult out;
  out.table1 = result.table1;
  out.totals = result.totals;
  out.rounds = result.rounds;
  addTable1Metrics(out.table1, out.metrics);
  addProtocolMetrics(out.totals, out.metrics);
  return out;
}

JobResult runHighwayFile(const JobContext& job) {
  analysis::HighwayExperimentConfig config = highwayConfig(job);
  config.rounds = job.params.getInt("rounds", 10);
  config.carq.fileSizeSeqs =
      static_cast<SeqNo>(job.params.getInt("file", 220));
  analysis::HighwayExperiment experiment(config);
  const analysis::HighwayExperimentResult result = experiment.run();
  JobResult out;
  out.table1 = result.table1;
  out.totals = result.totals;
  out.rounds = result.rounds;
  RunningStats visits;
  RunningStats seconds;
  int completed = 0;
  int attempts = 0;
  for (const auto& [car, carResult] : result.cars) {
    completed += carResult.completedRounds;
    attempts += config.rounds;
    visits.merge(carResult.apVisitsToComplete);
    seconds.merge(carResult.timeToCompleteSeconds);
  }
  out.metrics["completed_rounds"] = completed;
  out.metrics["attempted_rounds"] = attempts;
  out.metrics["completed_fraction"] =
      attempts > 0 ? static_cast<double>(completed) / attempts : 0.0;
  out.metrics["ap_visits"] = visits.mean();
  out.metrics["time_to_complete_s"] = seconds.mean();
  addProtocolMetrics(out.totals, out.metrics);
  return out;
}

/// `specific` followed by the common PHY/channel/protocol specs.
std::vector<ParamSpec> withCommonSpecs(std::vector<ParamSpec> specific) {
  for (ParamSpec& spec : commonParamSpecs()) {
    specific.push_back(std::move(spec));
  }
  return specific;
}

}  // namespace

namespace detail {

void registerBuiltinScenarios(ScenarioRegistry& registry) {
  registry.add(ScenarioInfo{
      "urban",
      "The paper's testbed: a platoon laps the Figure-2 urban loop past a "
      "window-mounted AP (Table 1, Figures 3-8).",
      withCommonSpecs({
          {"rounds", 30, "experiment rounds (laps)"},
          {"cars", 3, "platoon size"},
          {"speed_kmh", 20, "platoon base speed"},
          {"gap_seconds", 4, "nominal inter-car headway"},
          {"repeat", 1, "AP blind retransmissions"},
      }),
      runUrban,
      /*defaultTargetMetric=*/"pdr",
      // The urban loop is the Table 1 testbed: spec-driven runs without
      // an emit list get the per-point Table 1 CSV alongside the summary.
      /*defaultEmit=*/{"campaign_csv", "campaign_json", "table1_csv"}});
  registry.add(ScenarioInfo{
      "highway",
      "Drive-thru: a platoon passes roadside infostations at speed "
      "(Ott & Kutscher style single-AP sweeps).",
      withCommonSpecs({
          {"rounds", 15, "experiment rounds (passes)"},
          {"cars", 3, "platoon size"},
          {"speed_kmh", 80, "platoon speed"},
          {"aps", 1, "infostation count"},
          {"spacing", 1000, "infostation spacing, metres"},
          {"first_ap_arc", 1200, "arc position of the first AP"},
          {"road_length", 2400, "road length; <= 0 auto-sizes"},
          {"gap_seconds", 1.5, "inter-car headway"},
      }),
      runHighway,
      /*defaultTargetMetric=*/"pdr"});
  registry.add(ScenarioInfo{
      "highway_file",
      "Infostation file download (paper section 6): each car completes an "
      "F-packet file across multiple AP visits.",
      withCommonSpecs({
          {"rounds", 10, "experiment rounds"},
          {"cars", 3, "platoon size"},
          {"speed_kmh", 50, "platoon speed"},
          {"aps", 8, "infostation count"},
          {"spacing", 700, "infostation spacing, metres"},
          {"first_ap_arc", 500, "arc position of the first AP"},
          {"road_length", 0, "road length; <= 0 auto-sizes"},
          {"gap_seconds", 1.5, "inter-car headway"},
          {"file", 220, "file size, packets per car"},
      }),
      runHighwayFile,
      /*defaultTargetMetric=*/"completed_fraction"});
}

}  // namespace detail
}  // namespace vanet::runner
