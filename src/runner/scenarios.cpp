/// \file scenarios.cpp
/// Built-in scenarios of the campaign engine, adapting the analysis-layer
/// experiment drivers to the registry's (params, seed) -> JobResult shape.
/// Parameter names are the one vocabulary every bench and sweep shares:
///
///   common    rounds, cars, speed_kmh, coop, nakagami
///   urban     batched, gossip, fc, repeat, gap_seconds
///   highway   aps, spacing, first_ap_arc, road_length, gap_seconds
///   highway_file  file (packets per car; aps/spacing as above)

#include "analysis/experiment.h"
#include "runner/registry.h"

namespace vanet::runner {
namespace {

analysis::UrbanExperimentConfig urbanConfig(const JobContext& job) {
  analysis::UrbanExperimentConfig config;
  config.rounds = job.params.getInt("rounds", 30);
  config.seed = job.seed;
  config.scenario.carCount = job.params.getInt("cars", 3);
  config.scenario.baseSpeedMps = job.params.get("speed_kmh", 20.0) / 3.6;
  config.scenario.gapSeconds =
      job.params.get("gap_seconds", config.scenario.gapSeconds);
  config.repeatCount = job.params.getInt("repeat", 1);
  config.carq.cooperationEnabled = job.params.getBool("coop", true);
  if (job.params.getBool("batched", false)) {
    config.carq.requestMode = carq::RequestMode::kBatched;
  }
  config.carq.gossipWindowExtension = job.params.getBool("gossip", false);
  config.carq.frameCombining = job.params.getBool("fc", false);
  if (job.params.has("nakagami")) {
    config.channel.nakagamiM = job.params.get("nakagami", 0.0);
  }
  return config;
}

analysis::HighwayExperimentConfig highwayConfig(const JobContext& job) {
  analysis::HighwayExperimentConfig config;
  config.rounds = job.params.getInt("rounds", 15);
  config.seed = job.seed;
  config.scenario.carCount = job.params.getInt("cars", 3);
  config.scenario.speedMps = job.params.get("speed_kmh", 80.0) / 3.6;
  config.scenario.apCount = job.params.getInt("aps", 1);
  config.scenario.apSpacing =
      job.params.get("spacing", config.scenario.apSpacing);
  config.scenario.firstApArc =
      job.params.get("first_ap_arc", config.scenario.firstApArc);
  config.scenario.gapSeconds =
      job.params.get("gap_seconds", config.scenario.gapSeconds);
  // road_length <= 0 auto-sizes the road to cover every AP plus run-out.
  const double roadLength = job.params.get("road_length", 0.0);
  config.scenario.roadLengthMetres =
      roadLength > 0.0
          ? roadLength
          : config.scenario.firstApArc +
                config.scenario.apSpacing * (config.scenario.apCount - 1) +
                500.0;
  config.carq.cooperationEnabled = job.params.getBool("coop", true);
  if (job.params.has("nakagami")) {
    config.channel.nakagamiM = job.params.get("nakagami", 0.0);
  }
  return config;
}

/// Fleet-mean Table 1 metrics plus the lead car's columns (the platoon
/// studies read car 1, the sweeps read the fleet average).
void addTable1Metrics(const trace::Table1Data& table1,
                      std::map<std::string, double>& metrics) {
  if (table1.rows.empty()) return;
  double tx = 0.0;
  double before = 0.0;
  double after = 0.0;
  double joint = 0.0;
  for (const trace::Table1Row& row : table1.rows) {
    tx += row.txByAp.mean();
    before += row.pctLostBefore.mean();
    after += row.pctLostAfter.mean();
    joint += row.pctLostJoint.mean();
  }
  const auto cars = static_cast<double>(table1.rows.size());
  metrics["tx_by_ap"] = tx / cars;
  metrics["pct_lost_before"] = before / cars;
  metrics["pct_lost_after"] = after / cars;
  metrics["pct_lost_joint"] = joint / cars;
  const trace::Table1Row& car1 = table1.rows.front();
  metrics["car1_pct_lost_before"] = car1.pctLostBefore.mean();
  metrics["car1_pct_lost_after"] = car1.pctLostAfter.mean();
  metrics["car1_pct_lost_joint"] = car1.pctLostJoint.mean();
}

void addProtocolMetrics(const analysis::ProtocolTotals& totals,
                        std::map<std::string, double>& metrics) {
  metrics["requests_per_round"] = totals.requestsPerRound.mean();
  metrics["coop_data_per_round"] = totals.coopDataPerRound.mean();
  metrics["suppressed_per_round"] = totals.suppressedPerRound.mean();
  metrics["buffered_per_round"] = totals.bufferedPerRound.mean();
}

JobResult runUrban(const JobContext& job) {
  analysis::UrbanExperiment experiment(urbanConfig(job));
  const analysis::UrbanExperimentResult result = experiment.run();
  JobResult out;
  out.table1 = result.table1;
  out.totals = result.totals;
  out.rounds = result.rounds;
  addTable1Metrics(out.table1, out.metrics);
  addProtocolMetrics(out.totals, out.metrics);
  return out;
}

JobResult runHighway(const JobContext& job) {
  analysis::HighwayExperiment experiment(highwayConfig(job));
  const analysis::HighwayExperimentResult result = experiment.run();
  JobResult out;
  out.table1 = result.table1;
  out.totals = result.totals;
  out.rounds = result.rounds;
  addTable1Metrics(out.table1, out.metrics);
  addProtocolMetrics(out.totals, out.metrics);
  return out;
}

JobResult runHighwayFile(const JobContext& job) {
  analysis::HighwayExperimentConfig config = highwayConfig(job);
  config.rounds = job.params.getInt("rounds", 10);
  config.carq.fileSizeSeqs =
      static_cast<SeqNo>(job.params.getInt("file", 220));
  analysis::HighwayExperiment experiment(config);
  const analysis::HighwayExperimentResult result = experiment.run();
  JobResult out;
  out.table1 = result.table1;
  out.totals = result.totals;
  out.rounds = result.rounds;
  RunningStats visits;
  RunningStats seconds;
  int completed = 0;
  int attempts = 0;
  for (const auto& [car, carResult] : result.cars) {
    completed += carResult.completedRounds;
    attempts += config.rounds;
    visits.merge(carResult.apVisitsToComplete);
    seconds.merge(carResult.timeToCompleteSeconds);
  }
  out.metrics["completed_rounds"] = completed;
  out.metrics["attempted_rounds"] = attempts;
  out.metrics["completed_fraction"] =
      attempts > 0 ? static_cast<double>(completed) / attempts : 0.0;
  out.metrics["ap_visits"] = visits.mean();
  out.metrics["time_to_complete_s"] = seconds.mean();
  addProtocolMetrics(out.totals, out.metrics);
  return out;
}

}  // namespace

namespace detail {

void registerBuiltinScenarios(ScenarioRegistry& registry) {
  registry.add(ScenarioInfo{
      "urban",
      "The paper's testbed: a platoon laps the Figure-2 urban loop past a "
      "window-mounted AP (Table 1, Figures 3-8).",
      {
          {"rounds", 30, "experiment rounds (laps)"},
          {"cars", 3, "platoon size"},
          {"speed_kmh", 20, "platoon base speed"},
          {"gap_seconds", 4, "nominal inter-car headway"},
          {"coop", 1, "C-ARQ cooperation on/off"},
          {"batched", 0, "batched REQUEST mode"},
          {"gossip", 0, "window-gossip extension"},
          {"fc", 0, "frame combining"},
          {"repeat", 1, "AP blind retransmissions"},
      },
      runUrban});
  registry.add(ScenarioInfo{
      "highway",
      "Drive-thru: a platoon passes roadside infostations at speed "
      "(Ott & Kutscher style single-AP sweeps).",
      {
          {"rounds", 15, "experiment rounds (passes)"},
          {"cars", 3, "platoon size"},
          {"speed_kmh", 80, "platoon speed"},
          {"aps", 1, "infostation count"},
          {"spacing", 1000, "infostation spacing, metres"},
          {"first_ap_arc", 1200, "arc position of the first AP"},
          {"road_length", 2400, "road length; <= 0 auto-sizes"},
          {"gap_seconds", 1.5, "inter-car headway"},
          {"coop", 1, "C-ARQ cooperation on/off"},
      },
      runHighway});
  registry.add(ScenarioInfo{
      "highway_file",
      "Infostation file download (paper section 6): each car completes an "
      "F-packet file across multiple AP visits.",
      {
          {"rounds", 10, "experiment rounds"},
          {"cars", 3, "platoon size"},
          {"speed_kmh", 50, "platoon speed"},
          {"aps", 8, "infostation count"},
          {"spacing", 700, "infostation spacing, metres"},
          {"first_ap_arc", 500, "arc position of the first AP"},
          {"road_length", 0, "road length; <= 0 auto-sizes"},
          {"gap_seconds", 1.5, "inter-car headway"},
          {"file", 220, "file size, packets per car"},
          {"coop", 1, "C-ARQ cooperation on/off"},
      },
      runHighwayFile});
}

}  // namespace detail
}  // namespace vanet::runner
