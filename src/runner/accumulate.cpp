#include "runner/accumulate.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "analysis/serialize.h"
#include "obs/manifest.h"
#include "runner/partial_binary.h"
#include "trace/serialize.h"
#include "util/json.h"
#include "util/log.h"

namespace vanet::runner {

CampaignAccumulator::CampaignAccumulator(const CampaignPlan& plan)
    : adaptive_(plan.adaptive()),
      targetRelativeCi95_(plan.targetRelativeCi95()),
      minReplications_(plan.minReplications()),
      maxReplications_(plan.replications()),
      targetMetric_(plan.targetMetric()),
      expectedJobs_(plan.shardJobCount()) {
  points_.reserve(plan.shardPointIndices().size());
  for (const std::size_t p : plan.shardPointIndices()) {
    const PlannedPoint& planned = plan.points()[p];
    GridPointSummary summary;
    summary.gridIndex = planned.gridIndex;
    summary.caseName = planned.caseName;
    summary.params = planned.params;
    points_.push_back(std::move(summary));
  }
}

void CampaignAccumulator::fold(std::size_t shardSlot, int replication,
                               const JobResult& result) {
  if (shardSlot >= points_.size()) {
    throw std::logic_error("campaign fold: shard slot " +
                           std::to_string(shardSlot) + " out of range (" +
                           std::to_string(points_.size()) + " points)");
  }
  GridPointSummary& point = points_[shardSlot];
  // Per-point ascending replications without gaps: merges only combine
  // state within one point, so this ordering (which every backend's
  // wave + window discipline guarantees) is exactly what makes the
  // merged bytes a pure function of the plan.
  if (replication != point.replications) {
    throw std::logic_error(
        "campaign fold out of order: point slot " + std::to_string(shardSlot) +
        " got replication " + std::to_string(replication) + ", expected " +
        std::to_string(point.replications));
  }
  point.table1.merge(result.table1);
  for (const auto& [flow, figure] : result.figures) {
    point.figures[flow].merge(figure);
  }
  point.totals.merge(result.totals);
  for (const auto& [name, value] : result.metrics) {
    point.metrics[name].add(value);
  }
  point.replications += 1;
  point.rounds += result.rounds;
  if (!targetMetric_.empty()) {
    const auto it = point.metrics.find(targetMetric_);
    point.achievedCi95 =
        it != point.metrics.end() ? it->second.confidence95() : 0.0;
  }
  ++folded_;
}

int CampaignAccumulator::pointReplications(std::size_t shardSlot) const {
  return points_.at(shardSlot).replications;
}

bool CampaignAccumulator::converged(const GridPointSummary& point) const {
  const auto it = point.metrics.find(targetMetric_);
  if (it == point.metrics.end()) return false;  // unevaluable: run to cap
  // One sample has no confidence interval -- confidence95() returns 0
  // below two, which must not read as "target met" (minReplications=1
  // would otherwise stop every point after a single replication).
  if (it->second.count() < 2) return false;
  const double ci = it->second.confidence95();
  const double mean = std::abs(it->second.mean());
  // A zero-mean point has no defined relative width: only a degenerate
  // (zero-CI) sample set counts as converged; anything else runs to the
  // cap rather than stopping on an arbitrary scale.
  if (mean == 0.0) return ci == 0.0;
  return ci / mean <= targetRelativeCi95_;
}

bool CampaignAccumulator::pointDone(std::size_t shardSlot) const {
  const GridPointSummary& point = points_.at(shardSlot);
  if (!adaptive_) {
    return point.replications >= maxReplications_;
  }
  if (point.replications < minReplications_) return false;
  return point.replications >= maxReplications_ || converged(point);
}

bool CampaignAccumulator::complete() const noexcept {
  if (!adaptive_) return folded_ == expectedJobs_;
  for (std::size_t slot = 0; slot < points_.size(); ++slot) {
    if (!pointDone(slot)) return false;
  }
  return true;
}

std::vector<GridPointSummary> CampaignAccumulator::take() {
  if (!complete()) {
    throw std::logic_error("campaign fold incomplete: " +
                           std::to_string(folded_) + " of " +
                           std::to_string(expectedJobs_) +
                           " planned jobs folded");
  }
  return std::move(points_);
}

void CampaignAccumulator::restore(std::vector<GridPointSummary> points) {
  if (points.size() != points_.size()) {
    throw std::runtime_error(
        "checkpoint restore: " + std::to_string(points.size()) +
        " points, but the plan's shard has " + std::to_string(points_.size()));
  }
  std::size_t folded = 0;
  for (std::size_t slot = 0; slot < points.size(); ++slot) {
    if (points[slot].gridIndex != points_[slot].gridIndex) {
      throw std::runtime_error(
          "checkpoint restore: slot " + std::to_string(slot) +
          " carries grid index " + std::to_string(points[slot].gridIndex) +
          ", plan expects " + std::to_string(points_[slot].gridIndex));
    }
    folded += static_cast<std::size_t>(points[slot].replications);
  }
  points_ = std::move(points);
  folded_ = folded;
}

namespace {

std::string pointJson(const GridPointSummary& point) {
  std::string out = "{\"grid_index\":" + std::to_string(point.gridIndex);
  out += ",\"case\":" + json::quote(point.caseName);
  out += ",\"replications\":" + std::to_string(point.replications);
  out += ",\"rounds\":" + std::to_string(point.rounds);
  out += ",\"achieved_ci95\":" + json::num(point.achievedCi95);
  out += ",\"params\":{";
  bool first = true;
  for (const auto& [name, value] : point.params.values()) {
    if (!first) out += ",";
    first = false;
    out += json::quote(name) + ":" + json::num(value);
  }
  out += "},\"table1\":" + trace::table1ToJson(point.table1);
  out += ",\"figures\":[";
  first = true;
  for (const auto& [flow, figure] : point.figures) {
    (void)flow;  // the figure serializes its own flow id
    if (!first) out += ",";
    first = false;
    out += trace::flowFigureToJson(figure);
  }
  out += "],\"totals\":" + analysis::protocolTotalsToJson(point.totals);
  out += ",\"metrics\":{";
  first = true;
  for (const auto& [name, stats] : point.metrics) {
    if (!first) out += ",";
    first = false;
    out += json::quote(name) + ":" + trace::runningStatsToJson(stats);
  }
  out += "}}";
  return out;
}

GridPointSummary pointFromJson(const json::Value& value) {
  GridPointSummary point;
  point.gridIndex =
      static_cast<std::size_t>(value.at("grid_index").asUInt64());
  point.caseName = value.at("case").asString();
  point.replications = static_cast<int>(value.at("replications").asInt64());
  point.rounds = value.at("rounds").asInt64();
  // Absent in v1 partials (which predate adaptive replication).
  if (const json::Value* ci = value.find("achieved_ci95")) {
    point.achievedCi95 = ci->asDouble();
  }
  for (const auto& [name, param] : value.at("params").asObject()) {
    point.params.set(name, param.asDouble());
  }
  point.table1 = trace::table1FromJson(value.at("table1"));
  for (const json::Value& figure : value.at("figures").asArray()) {
    trace::FlowFigure parsed = trace::flowFigureFromJson(figure);
    const FlowId flow = parsed.flow;
    point.figures[flow] = std::move(parsed);
  }
  point.totals = analysis::protocolTotalsFromJson(value.at("totals"));
  for (const auto& [name, stats] : value.at("metrics").asObject()) {
    point.metrics[name] = trace::runningStatsFromJson(stats);
  }
  return point;
}

}  // namespace

std::string campaignPartialJson(const CampaignPartial& partial) {
  std::string out = "{\n\"format\":\"vanet-campaign-partial\",\n";
  out += "\"version\":" + std::to_string(CampaignPartial::kVersion) + ",\n";
  out += "\"scenario\":" + json::quote(partial.scenario) + ",\n";
  out += "\"master_seed\":" + std::to_string(partial.masterSeed) + ",\n";
  out += "\"shard_index\":" + std::to_string(partial.shard.index) + ",\n";
  out += "\"shard_count\":" + std::to_string(partial.shard.count) + ",\n";
  out += "\"replications\":" + std::to_string(partial.replications) + ",\n";
  out += "\"target_ci\":" + json::num(partial.targetRelativeCi95) + ",\n";
  out += "\"min_replications\":" + std::to_string(partial.minReplications) +
         ",\n";
  out += "\"max_replications\":" + std::to_string(partial.maxReplications) +
         ",\n";
  out += "\"target_metric\":" + json::quote(partial.targetMetric) + ",\n";
  out += "\"grid_points\":" + std::to_string(partial.totalPoints) + ",\n";
  out += "\"job_count\":" + std::to_string(partial.totalJobs) + ",\n";
  out += "\"points\":[";
  bool first = true;
  for (const GridPointSummary& point : partial.points) {
    if (!first) out += ",";
    first = false;
    out += "\n " + pointJson(point);
  }
  out += "\n]\n}\n";
  return out;
}

CampaignPartial parseCampaignPartial(const std::string& text) {
  const json::Value doc = json::parse(text);
  if (doc.at("format").asString() != "vanet-campaign-partial") {
    throw std::runtime_error("not a vanet campaign partial file");
  }
  const auto version = static_cast<int>(doc.at("version").asInt64());
  if (version < CampaignPartial::kMinVersion ||
      version > CampaignPartial::kVersion) {
    throw std::runtime_error(
        "unsupported campaign partial version " + std::to_string(version) +
        " (supported: " + std::to_string(CampaignPartial::kMinVersion) +
        ".." + std::to_string(CampaignPartial::kVersion) + ")");
  }
  CampaignPartial partial;
  partial.scenario = doc.at("scenario").asString();
  partial.masterSeed = doc.at("master_seed").asUInt64();
  partial.shard.index = static_cast<int>(doc.at("shard_index").asInt64());
  partial.shard.count = static_cast<int>(doc.at("shard_count").asInt64());
  partial.replications = static_cast<int>(doc.at("replications").asInt64());
  if (version >= 2) {
    partial.targetRelativeCi95 = doc.at("target_ci").asDouble();
    partial.minReplications =
        static_cast<int>(doc.at("min_replications").asInt64());
    partial.maxReplications =
        static_cast<int>(doc.at("max_replications").asInt64());
    partial.targetMetric = doc.at("target_metric").asString();
    // The same bounds buildPlan enforces: a corrupt or hand-edited
    // adaptive header must fail loudly here, not feed degenerate wave
    // arithmetic to downstream consumers.
    if (partial.targetRelativeCi95 > 0.0 &&
        (partial.minReplications < 1 ||
         partial.maxReplications < partial.minReplications)) {
      throw std::runtime_error(
          "malformed adaptive header: needs 1 <= min_replications <= "
          "max_replications (got " +
          std::to_string(partial.minReplications) + ".." +
          std::to_string(partial.maxReplications) + ")");
    }
  }
  partial.totalPoints =
      static_cast<std::size_t>(doc.at("grid_points").asUInt64());
  partial.totalJobs = static_cast<std::size_t>(doc.at("job_count").asUInt64());
  for (const json::Value& point : doc.at("points").asArray()) {
    partial.points.push_back(pointFromJson(point));
  }
  return partial;
}

bool writeCampaignPartial(const std::string& path,
                          const CampaignPartial& partial,
                          PartialFormat format) {
  const bool binary =
      format == PartialFormat::kBinary ||
      (format == PartialFormat::kAuto && partial.shard.count > 1);
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    LOG_ERROR("cannot open " << path << " for writing");
    return false;
  }
  out << (binary ? campaignPartialBinary(partial)
                 : campaignPartialJson(partial));
  if (!out) return false;
  // Provenance sidecar (best effort; never fails the partial write).
  obs::RunManifest manifest = obs::manifestForArtifact(path);
  manifest.scenario = partial.scenario;
  manifest.masterSeed = partial.masterSeed;
  manifest.shardIndex = partial.shard.index;
  manifest.shardCount = partial.shard.count;
  manifest.targetCi = partial.targetRelativeCi95;
  manifest.targetMetric = partial.targetMetric;
  manifest.points.reserve(partial.points.size());
  for (const GridPointSummary& point : partial.points) {
    manifest.points.push_back(obs::ManifestPoint{
        point.gridIndex, point.replications, point.achievedCi95});
  }
  obs::writeManifestSidecar(manifest);
  return true;
}

bool writeCampaignPartial(const std::string& path,
                          const CampaignPartial& partial) {
  return writeCampaignPartial(path, partial, PartialFormat::kJson);
}

CampaignPartial readCampaignPartial(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open " + path + " for reading");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  try {
    CampaignPartial partial = looksLikeBinaryPartial(text)
                                  ? parseCampaignPartialBinary(text)
                                  : parseCampaignPartial(text);
    partial.sourcePath = path;
    return partial;
  } catch (const std::runtime_error& error) {
    throw std::runtime_error(path + ": " + error.what());
  }
}

namespace {

/// Merge errors must name the culprit: "shard i/N from 'file'" pins
/// exactly which partial (and which file on disk) broke the set.
std::string describePartial(const CampaignPartial& partial) {
  std::string text = "shard " + std::to_string(partial.shard.index) + "/" +
                     std::to_string(partial.shard.count);
  if (!partial.sourcePath.empty()) {
    text += " from '" + partial.sourcePath + "'";
  }
  return text;
}

/// The campaign-identity fields of a partial, points left behind (so a
/// merger can keep them without copying point payloads).
CampaignPartial identityOf(const CampaignPartial& partial) {
  CampaignPartial header;
  header.scenario = partial.scenario;
  header.masterSeed = partial.masterSeed;
  header.shard = partial.shard;
  header.replications = partial.replications;
  header.targetRelativeCi95 = partial.targetRelativeCi95;
  header.minReplications = partial.minReplications;
  header.maxReplications = partial.maxReplications;
  header.targetMetric = partial.targetMetric;
  header.totalPoints = partial.totalPoints;
  header.totalJobs = partial.totalJobs;
  header.hasCheckpoint = partial.hasCheckpoint;
  header.checkpointCoveredReps = partial.checkpointCoveredReps;
  header.checkpointComplete = partial.checkpointComplete;
  header.sourcePath = partial.sourcePath;
  return header;
}

/// Incremental shard merge shared by the in-memory and streaming entry
/// points: shards announce themselves in ascending index order via
/// beginShard(), then feed points one at a time -- so a binary shard file
/// never needs to materialize its whole point set.
class PartialMerger {
 public:
  explicit PartialMerger(std::size_t partialCount) : total_(partialCount) {}

  void beginShard(const CampaignPartial& header) {
    // A checkpoint mid-campaign is resume state, not a shard result:
    // folding it in would silently drop every replication past its wave.
    if (header.hasCheckpoint && !header.checkpointComplete) {
      throw std::runtime_error(describePartial(header) +
                               " is an unfinished wave checkpoint (resume "
                               "state), not a finished shard partial");
    }
    if (begun_ == 0) {
      first_ = identityOf(header);
      if (total_ != static_cast<std::size_t>(first_.shard.count)) {
        throw std::runtime_error(
            "expected " + std::to_string(first_.shard.count) +
            " shard partials, got " + std::to_string(total_) +
            " (first: " + describePartial(first_) + ")");
      }
      merged_.resize(first_.totalPoints);
      filled_.assign(first_.totalPoints, false);
    } else if (header.scenario != first_.scenario ||
               header.masterSeed != first_.masterSeed ||
               header.replications != first_.replications ||
               header.targetRelativeCi95 != first_.targetRelativeCi95 ||
               header.minReplications != first_.minReplications ||
               header.maxReplications != first_.maxReplications ||
               header.targetMetric != first_.targetMetric ||
               header.totalPoints != first_.totalPoints ||
               header.totalJobs != first_.totalJobs ||
               header.shard.count != first_.shard.count) {
      throw std::runtime_error("shard partials describe different campaigns (" +
                               describePartial(header) + " disagrees)");
    }
    if (header.shard.index != static_cast<int>(begun_)) {
      throw std::runtime_error(
          "missing or duplicate shard " + std::to_string(begun_) +
          " in partial set (got " + describePartial(header) + ")");
    }
    current_ = identityOf(header);
    ++begun_;
  }

  void addPoint(GridPointSummary point) {
    if (point.gridIndex >= merged_.size()) {
      throw std::runtime_error(
          "partial grid index " + std::to_string(point.gridIndex) +
          " out of range (" + describePartial(current_) + ")");
    }
    if (filled_[point.gridIndex]) {
      throw std::runtime_error(
          "grid point " + std::to_string(point.gridIndex) +
          " appears in more than one shard (" + describePartial(current_) +
          ")");
    }
    filled_[point.gridIndex] = true;
    merged_[point.gridIndex] = std::move(point);
  }

  std::vector<GridPointSummary> finish() {
    for (std::size_t p = 0; p < filled_.size(); ++p) {
      if (!filled_[p]) {
        throw std::runtime_error("grid point " + std::to_string(p) +
                                 " is missing from every shard");
      }
    }
    return std::move(merged_);
  }

  /// Identity of the merged set (the first shard's header, points empty).
  const CampaignPartial& first() const noexcept { return first_; }

 private:
  std::size_t total_;
  std::size_t begun_ = 0;
  CampaignPartial first_;
  CampaignPartial current_;
  std::vector<GridPointSummary> merged_;
  std::vector<bool> filled_;
};

bool fileStartsWithBinaryMagic(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open " + path + " for reading");
  }
  char prefix[sizeof kPartialBinaryMagic] = {};
  in.read(prefix, sizeof prefix);
  return looksLikeBinaryPartial(
      std::string_view(prefix, static_cast<std::size_t>(in.gcount())));
}

}  // namespace

std::vector<GridPointSummary> mergeCampaignPartials(
    std::vector<CampaignPartial> partials) {
  if (partials.empty()) {
    throw std::runtime_error("no campaign partials to merge");
  }
  std::sort(partials.begin(), partials.end(),
            [](const CampaignPartial& a, const CampaignPartial& b) {
              return a.shard.index < b.shard.index;
            });
  PartialMerger merger(partials.size());
  for (CampaignPartial& partial : partials) {
    merger.beginShard(partial);
    for (GridPointSummary& point : partial.points) {
      merger.addPoint(std::move(point));
    }
    partial.points.clear();
  }
  return merger.finish();
}

std::vector<GridPointSummary> mergeCampaignPartialFiles(
    const std::vector<std::string>& paths, CampaignPartial* headerOut) {
  if (paths.empty()) {
    throw std::runtime_error("no campaign partials to merge");
  }
  // Binary files open as streaming readers (header parsed, points left on
  // disk); JSON files fall back to the DOM reader.
  struct Source {
    std::unique_ptr<PartialBinaryFileReader> bin;  // non-null => binary
    CampaignPartial json;                          // parsed JSON otherwise
  };
  const auto headerOf = [](const Source& source) -> const CampaignPartial& {
    return source.bin ? source.bin->header() : source.json;
  };
  std::vector<Source> sources(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    if (fileStartsWithBinaryMagic(paths[i])) {
      sources[i].bin = std::make_unique<PartialBinaryFileReader>(paths[i]);
    } else {
      sources[i].json = readCampaignPartial(paths[i]);
    }
  }
  std::sort(sources.begin(), sources.end(),
            [&headerOf](const Source& a, const Source& b) {
              return headerOf(a).shard.index < headerOf(b).shard.index;
            });
  PartialMerger merger(sources.size());
  for (Source& source : sources) {
    merger.beginShard(headerOf(source));
    if (source.bin) {
      GridPointSummary point;
      while (source.bin->nextPoint(point)) {
        merger.addPoint(std::move(point));
      }
    } else {
      for (GridPointSummary& point : source.json.points) {
        merger.addPoint(std::move(point));
      }
      source.json.points.clear();
    }
  }
  if (headerOut != nullptr) {
    *headerOut = merger.first();
  }
  return merger.finish();
}

}  // namespace vanet::runner
