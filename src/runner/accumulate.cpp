#include "runner/accumulate.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "analysis/serialize.h"
#include "obs/manifest.h"
#include "trace/serialize.h"
#include "util/json.h"
#include "util/log.h"

namespace vanet::runner {

CampaignAccumulator::CampaignAccumulator(const CampaignPlan& plan)
    : adaptive_(plan.adaptive()),
      targetRelativeCi95_(plan.targetRelativeCi95()),
      minReplications_(plan.minReplications()),
      maxReplications_(plan.replications()),
      targetMetric_(plan.targetMetric()),
      expectedJobs_(plan.shardJobCount()) {
  points_.reserve(plan.shardPointIndices().size());
  for (const std::size_t p : plan.shardPointIndices()) {
    const PlannedPoint& planned = plan.points()[p];
    GridPointSummary summary;
    summary.gridIndex = planned.gridIndex;
    summary.caseName = planned.caseName;
    summary.params = planned.params;
    points_.push_back(std::move(summary));
  }
}

void CampaignAccumulator::fold(std::size_t shardSlot, int replication,
                               const JobResult& result) {
  if (shardSlot >= points_.size()) {
    throw std::logic_error("campaign fold: shard slot " +
                           std::to_string(shardSlot) + " out of range (" +
                           std::to_string(points_.size()) + " points)");
  }
  GridPointSummary& point = points_[shardSlot];
  // Per-point ascending replications without gaps: merges only combine
  // state within one point, so this ordering (which every backend's
  // wave + window discipline guarantees) is exactly what makes the
  // merged bytes a pure function of the plan.
  if (replication != point.replications) {
    throw std::logic_error(
        "campaign fold out of order: point slot " + std::to_string(shardSlot) +
        " got replication " + std::to_string(replication) + ", expected " +
        std::to_string(point.replications));
  }
  point.table1.merge(result.table1);
  for (const auto& [flow, figure] : result.figures) {
    point.figures[flow].merge(figure);
  }
  point.totals.merge(result.totals);
  for (const auto& [name, value] : result.metrics) {
    point.metrics[name].add(value);
  }
  point.replications += 1;
  point.rounds += result.rounds;
  if (!targetMetric_.empty()) {
    const auto it = point.metrics.find(targetMetric_);
    point.achievedCi95 =
        it != point.metrics.end() ? it->second.confidence95() : 0.0;
  }
  ++folded_;
}

int CampaignAccumulator::pointReplications(std::size_t shardSlot) const {
  return points_.at(shardSlot).replications;
}

bool CampaignAccumulator::converged(const GridPointSummary& point) const {
  const auto it = point.metrics.find(targetMetric_);
  if (it == point.metrics.end()) return false;  // unevaluable: run to cap
  // One sample has no confidence interval -- confidence95() returns 0
  // below two, which must not read as "target met" (minReplications=1
  // would otherwise stop every point after a single replication).
  if (it->second.count() < 2) return false;
  const double ci = it->second.confidence95();
  const double mean = std::abs(it->second.mean());
  // A zero-mean point has no defined relative width: only a degenerate
  // (zero-CI) sample set counts as converged; anything else runs to the
  // cap rather than stopping on an arbitrary scale.
  if (mean == 0.0) return ci == 0.0;
  return ci / mean <= targetRelativeCi95_;
}

bool CampaignAccumulator::pointDone(std::size_t shardSlot) const {
  const GridPointSummary& point = points_.at(shardSlot);
  if (!adaptive_) {
    return point.replications >= maxReplications_;
  }
  if (point.replications < minReplications_) return false;
  return point.replications >= maxReplications_ || converged(point);
}

bool CampaignAccumulator::complete() const noexcept {
  if (!adaptive_) return folded_ == expectedJobs_;
  for (std::size_t slot = 0; slot < points_.size(); ++slot) {
    if (!pointDone(slot)) return false;
  }
  return true;
}

std::vector<GridPointSummary> CampaignAccumulator::take() {
  if (!complete()) {
    throw std::logic_error("campaign fold incomplete: " +
                           std::to_string(folded_) + " of " +
                           std::to_string(expectedJobs_) +
                           " planned jobs folded");
  }
  return std::move(points_);
}

namespace {

std::string pointJson(const GridPointSummary& point) {
  std::string out = "{\"grid_index\":" + std::to_string(point.gridIndex);
  out += ",\"case\":" + json::quote(point.caseName);
  out += ",\"replications\":" + std::to_string(point.replications);
  out += ",\"rounds\":" + std::to_string(point.rounds);
  out += ",\"achieved_ci95\":" + json::num(point.achievedCi95);
  out += ",\"params\":{";
  bool first = true;
  for (const auto& [name, value] : point.params.values()) {
    if (!first) out += ",";
    first = false;
    out += json::quote(name) + ":" + json::num(value);
  }
  out += "},\"table1\":" + trace::table1ToJson(point.table1);
  out += ",\"figures\":[";
  first = true;
  for (const auto& [flow, figure] : point.figures) {
    (void)flow;  // the figure serializes its own flow id
    if (!first) out += ",";
    first = false;
    out += trace::flowFigureToJson(figure);
  }
  out += "],\"totals\":" + analysis::protocolTotalsToJson(point.totals);
  out += ",\"metrics\":{";
  first = true;
  for (const auto& [name, stats] : point.metrics) {
    if (!first) out += ",";
    first = false;
    out += json::quote(name) + ":" + trace::runningStatsToJson(stats);
  }
  out += "}}";
  return out;
}

GridPointSummary pointFromJson(const json::Value& value) {
  GridPointSummary point;
  point.gridIndex =
      static_cast<std::size_t>(value.at("grid_index").asUInt64());
  point.caseName = value.at("case").asString();
  point.replications = static_cast<int>(value.at("replications").asInt64());
  point.rounds = value.at("rounds").asInt64();
  // Absent in v1 partials (which predate adaptive replication).
  if (const json::Value* ci = value.find("achieved_ci95")) {
    point.achievedCi95 = ci->asDouble();
  }
  for (const auto& [name, param] : value.at("params").asObject()) {
    point.params.set(name, param.asDouble());
  }
  point.table1 = trace::table1FromJson(value.at("table1"));
  for (const json::Value& figure : value.at("figures").asArray()) {
    trace::FlowFigure parsed = trace::flowFigureFromJson(figure);
    const FlowId flow = parsed.flow;
    point.figures[flow] = std::move(parsed);
  }
  point.totals = analysis::protocolTotalsFromJson(value.at("totals"));
  for (const auto& [name, stats] : value.at("metrics").asObject()) {
    point.metrics[name] = trace::runningStatsFromJson(stats);
  }
  return point;
}

}  // namespace

std::string campaignPartialJson(const CampaignPartial& partial) {
  std::string out = "{\n\"format\":\"vanet-campaign-partial\",\n";
  out += "\"version\":" + std::to_string(CampaignPartial::kVersion) + ",\n";
  out += "\"scenario\":" + json::quote(partial.scenario) + ",\n";
  out += "\"master_seed\":" + std::to_string(partial.masterSeed) + ",\n";
  out += "\"shard_index\":" + std::to_string(partial.shard.index) + ",\n";
  out += "\"shard_count\":" + std::to_string(partial.shard.count) + ",\n";
  out += "\"replications\":" + std::to_string(partial.replications) + ",\n";
  out += "\"target_ci\":" + json::num(partial.targetRelativeCi95) + ",\n";
  out += "\"min_replications\":" + std::to_string(partial.minReplications) +
         ",\n";
  out += "\"max_replications\":" + std::to_string(partial.maxReplications) +
         ",\n";
  out += "\"target_metric\":" + json::quote(partial.targetMetric) + ",\n";
  out += "\"grid_points\":" + std::to_string(partial.totalPoints) + ",\n";
  out += "\"job_count\":" + std::to_string(partial.totalJobs) + ",\n";
  out += "\"points\":[";
  bool first = true;
  for (const GridPointSummary& point : partial.points) {
    if (!first) out += ",";
    first = false;
    out += "\n " + pointJson(point);
  }
  out += "\n]\n}\n";
  return out;
}

CampaignPartial parseCampaignPartial(const std::string& text) {
  const json::Value doc = json::parse(text);
  if (doc.at("format").asString() != "vanet-campaign-partial") {
    throw std::runtime_error("not a vanet campaign partial file");
  }
  const auto version = static_cast<int>(doc.at("version").asInt64());
  if (version < CampaignPartial::kMinVersion ||
      version > CampaignPartial::kVersion) {
    throw std::runtime_error(
        "unsupported campaign partial version " + std::to_string(version) +
        " (supported: " + std::to_string(CampaignPartial::kMinVersion) +
        ".." + std::to_string(CampaignPartial::kVersion) + ")");
  }
  CampaignPartial partial;
  partial.scenario = doc.at("scenario").asString();
  partial.masterSeed = doc.at("master_seed").asUInt64();
  partial.shard.index = static_cast<int>(doc.at("shard_index").asInt64());
  partial.shard.count = static_cast<int>(doc.at("shard_count").asInt64());
  partial.replications = static_cast<int>(doc.at("replications").asInt64());
  if (version >= 2) {
    partial.targetRelativeCi95 = doc.at("target_ci").asDouble();
    partial.minReplications =
        static_cast<int>(doc.at("min_replications").asInt64());
    partial.maxReplications =
        static_cast<int>(doc.at("max_replications").asInt64());
    partial.targetMetric = doc.at("target_metric").asString();
    // The same bounds buildPlan enforces: a corrupt or hand-edited
    // adaptive header must fail loudly here, not feed degenerate wave
    // arithmetic to downstream consumers.
    if (partial.targetRelativeCi95 > 0.0 &&
        (partial.minReplications < 1 ||
         partial.maxReplications < partial.minReplications)) {
      throw std::runtime_error(
          "malformed adaptive header: needs 1 <= min_replications <= "
          "max_replications (got " +
          std::to_string(partial.minReplications) + ".." +
          std::to_string(partial.maxReplications) + ")");
    }
  }
  partial.totalPoints =
      static_cast<std::size_t>(doc.at("grid_points").asUInt64());
  partial.totalJobs = static_cast<std::size_t>(doc.at("job_count").asUInt64());
  for (const json::Value& point : doc.at("points").asArray()) {
    partial.points.push_back(pointFromJson(point));
  }
  return partial;
}

bool writeCampaignPartial(const std::string& path,
                          const CampaignPartial& partial) {
  std::ofstream out(path);
  if (!out) {
    LOG_ERROR("cannot open " << path << " for writing");
    return false;
  }
  out << campaignPartialJson(partial);
  if (!out) return false;
  // Provenance sidecar (best effort; never fails the partial write).
  obs::RunManifest manifest = obs::manifestForArtifact(path);
  manifest.scenario = partial.scenario;
  manifest.masterSeed = partial.masterSeed;
  manifest.shardIndex = partial.shard.index;
  manifest.shardCount = partial.shard.count;
  manifest.targetCi = partial.targetRelativeCi95;
  manifest.targetMetric = partial.targetMetric;
  manifest.points.reserve(partial.points.size());
  for (const GridPointSummary& point : partial.points) {
    manifest.points.push_back(obs::ManifestPoint{
        point.gridIndex, point.replications, point.achievedCi95});
  }
  obs::writeManifestSidecar(manifest);
  return true;
}

CampaignPartial readCampaignPartial(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open " + path + " for reading");
  }
  std::ostringstream text;
  text << in.rdbuf();
  try {
    CampaignPartial partial = parseCampaignPartial(text.str());
    partial.sourcePath = path;
    return partial;
  } catch (const std::runtime_error& error) {
    throw std::runtime_error(path + ": " + error.what());
  }
}

std::vector<GridPointSummary> mergeCampaignPartials(
    std::vector<CampaignPartial> partials) {
  if (partials.empty()) {
    throw std::runtime_error("no campaign partials to merge");
  }
  std::sort(partials.begin(), partials.end(),
            [](const CampaignPartial& a, const CampaignPartial& b) {
              return a.shard.index < b.shard.index;
            });
  // Merge errors must name the culprit: "shard i/N from 'file'" pins
  // exactly which partial (and which file on disk) broke the set.
  const auto describe = [](const CampaignPartial& partial) {
    std::string text = "shard " + std::to_string(partial.shard.index) + "/" +
                       std::to_string(partial.shard.count);
    if (!partial.sourcePath.empty()) {
      text += " from '" + partial.sourcePath + "'";
    }
    return text;
  };
  const CampaignPartial& first = partials.front();
  if (partials.size() != static_cast<std::size_t>(first.shard.count)) {
    throw std::runtime_error(
        "expected " + std::to_string(first.shard.count) +
        " shard partials, got " + std::to_string(partials.size()) +
        " (first: " + describe(first) + ")");
  }
  std::vector<GridPointSummary> merged(first.totalPoints);
  std::vector<bool> filled(first.totalPoints, false);
  for (std::size_t s = 0; s < partials.size(); ++s) {
    CampaignPartial& partial = partials[s];
    if (partial.scenario != first.scenario ||
        partial.masterSeed != first.masterSeed ||
        partial.replications != first.replications ||
        partial.targetRelativeCi95 != first.targetRelativeCi95 ||
        partial.minReplications != first.minReplications ||
        partial.maxReplications != first.maxReplications ||
        partial.targetMetric != first.targetMetric ||
        partial.totalPoints != first.totalPoints ||
        partial.totalJobs != first.totalJobs ||
        partial.shard.count != first.shard.count) {
      throw std::runtime_error(
          "shard partials describe different campaigns (" +
          describe(partial) + " disagrees)");
    }
    if (partial.shard.index != static_cast<int>(s)) {
      throw std::runtime_error("missing or duplicate shard " +
                               std::to_string(s) + " in partial set (got " +
                               describe(partial) + ")");
    }
    for (GridPointSummary& point : partial.points) {
      if (point.gridIndex >= merged.size()) {
        throw std::runtime_error("partial grid index " +
                                 std::to_string(point.gridIndex) +
                                 " out of range (" + describe(partial) + ")");
      }
      if (filled[point.gridIndex]) {
        throw std::runtime_error(
            "grid point " + std::to_string(point.gridIndex) +
            " appears in more than one shard (" + describe(partial) + ")");
      }
      filled[point.gridIndex] = true;
      merged[point.gridIndex] = std::move(point);
    }
  }
  for (std::size_t p = 0; p < filled.size(); ++p) {
    if (!filled[p]) {
      throw std::runtime_error("grid point " + std::to_string(p) +
                               " is missing from every shard");
    }
  }
  return merged;
}

}  // namespace vanet::runner
