#include "runner/registry.h"

#include <sstream>
#include <stdexcept>

#include "util/assert.h"

namespace vanet::runner {

ScenarioRegistry& ScenarioRegistry::global() {
  static ScenarioRegistry* registry = [] {
    auto* r = new ScenarioRegistry();
    detail::registerBuiltinScenarios(*r);
    return r;
  }();
  return *registry;
}

void ScenarioRegistry::add(ScenarioInfo info) {
  VANET_ASSERT(!info.name.empty(), "scenario name must not be empty");
  VANET_ASSERT(info.run != nullptr, "scenario must have a run function");
  VANET_ASSERT(scenarios_.count(info.name) == 0,
               "scenario name already registered");
  scenarios_.emplace(info.name, std::move(info));
}

const ScenarioInfo* ScenarioRegistry::find(const std::string& name) const {
  const auto it = scenarios_.find(name);
  return it != scenarios_.end() ? &it->second : nullptr;
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(scenarios_.size());
  for (const auto& [name, info] : scenarios_) {
    out.push_back(name);
  }
  return out;
}

ParamSet ScenarioRegistry::defaults(const std::string& name) const {
  const ScenarioInfo* info = find(name);
  if (info == nullptr) {
    throw std::invalid_argument("unknown scenario \"" + name +
                                "\" (registered: " + registeredScenarioList() +
                                ")");
  }
  ParamSet params;
  for (const ParamSpec& spec : info->params) {
    params.set(spec.name, spec.defaultValue);
  }
  return params;
}

std::string registeredScenarioList() {
  std::string out;
  for (const std::string& name : ScenarioRegistry::global().names()) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

std::string renderScenarioList() {
  std::ostringstream out;
  for (const std::string& name : ScenarioRegistry::global().names()) {
    const ScenarioInfo& info = *ScenarioRegistry::global().find(name);
    out << info.name << ": " << info.description << "\n";
    if (!info.defaultTargetMetric.empty()) {
      out << "  default target metric: " << info.defaultTargetMetric << "\n";
    }
    if (!info.defaultEmit.empty()) {
      out << "  default emit:";
      for (const std::string& kind : info.defaultEmit) out << " " << kind;
      out << "\n";
    }
    for (const ParamSpec& param : info.params) {
      out << "    " << param.name << " = " << param.defaultValue;
      if (!param.help.empty()) out << "  " << param.help;
      out << "\n";
    }
  }
  return out.str();
}

ScenarioRegistrar::ScenarioRegistrar(ScenarioInfo info) {
  ScenarioRegistry::global().add(std::move(info));
}

}  // namespace vanet::runner
