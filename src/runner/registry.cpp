#include "runner/registry.h"

#include "util/assert.h"

namespace vanet::runner {

ScenarioRegistry& ScenarioRegistry::global() {
  static ScenarioRegistry* registry = [] {
    auto* r = new ScenarioRegistry();
    detail::registerBuiltinScenarios(*r);
    return r;
  }();
  return *registry;
}

void ScenarioRegistry::add(ScenarioInfo info) {
  VANET_ASSERT(!info.name.empty(), "scenario name must not be empty");
  VANET_ASSERT(info.run != nullptr, "scenario must have a run function");
  VANET_ASSERT(scenarios_.count(info.name) == 0,
               "scenario name already registered");
  scenarios_.emplace(info.name, std::move(info));
}

const ScenarioInfo* ScenarioRegistry::find(const std::string& name) const {
  const auto it = scenarios_.find(name);
  return it != scenarios_.end() ? &it->second : nullptr;
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(scenarios_.size());
  for (const auto& [name, info] : scenarios_) {
    out.push_back(name);
  }
  return out;
}

ParamSet ScenarioRegistry::defaults(const std::string& name) const {
  ParamSet params;
  if (const ScenarioInfo* info = find(name)) {
    for (const ParamSpec& spec : info->params) {
      params.set(spec.name, spec.defaultValue);
    }
  }
  return params;
}

ScenarioRegistrar::ScenarioRegistrar(ScenarioInfo info) {
  ScenarioRegistry::global().add(std::move(info));
}

}  // namespace vanet::runner
