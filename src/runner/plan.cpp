#include "runner/plan.h"

#include <stdexcept>
#include <utility>

#include "util/rng.h"

namespace vanet::runner {

JobSpec CampaignPlan::shardJob(std::size_t localIndex) const {
  const auto replications = static_cast<std::size_t>(replications_);
  JobSpec job;
  job.pointIndex = shardPoints_[localIndex / replications];
  job.replication = static_cast<int>(localIndex % replications);
  // Grid-major layout over the *full* campaign: job seeds depend only on
  // (masterSeed, global index), so a shard runs exactly the streams the
  // unsharded run would.
  job.globalIndex = job.pointIndex * replications +
                    static_cast<std::size_t>(job.replication);
  job.seed = Rng::deriveStreamSeed(masterSeed_, job.globalIndex);
  return job;
}

CampaignPlan buildPlan(const CampaignConfig& config) {
  const ScenarioInfo* scenario =
      ScenarioRegistry::global().find(config.scenario);
  if (scenario == nullptr) {
    throw std::invalid_argument("unknown scenario: \"" + config.scenario +
                                "\" (registered: " + [] {
                                  std::string all;
                                  for (const auto& name :
                                       ScenarioRegistry::global().names()) {
                                    if (!all.empty()) all += ", ";
                                    all += name;
                                  }
                                  return all;
                                }() + ")");
  }
  if (config.replications < 1) {
    throw std::invalid_argument("campaign needs replications >= 1");
  }
  if (config.shard.count < 1 || config.shard.index < 0 ||
      config.shard.index >= config.shard.count) {
    throw std::invalid_argument(
        "campaign shard must satisfy 0 <= index < count (got " +
        std::to_string(config.shard.index) + "/" +
        std::to_string(config.shard.count) + ")");
  }

  CampaignPlan plan;
  plan.scenario_ = scenario;
  plan.masterSeed_ = config.masterSeed;
  plan.replications_ = config.replications;
  plan.roundThreads_ = config.roundThreads;
  plan.shard_ = config.shard;

  // Resolve every grid point up front: scenario defaults, then the
  // campaign base, then the case overrides, then the axis values of the
  // point. Cases vary slowest, so the point list reads case-major.
  ParamSet base = ScenarioRegistry::global().defaults(config.scenario);
  base.apply(config.base);
  if (config.cases.empty()) {
    for (ParamSet& point : config.grid.expand(base)) {
      PlannedPoint planned;
      planned.gridIndex = plan.points_.size();
      planned.params = std::move(point);
      plan.points_.push_back(std::move(planned));
    }
  } else {
    for (const CampaignCase& campaignCase : config.cases) {
      ParamSet caseBase = base;
      caseBase.apply(campaignCase.overrides);
      for (ParamSet& point : config.grid.expand(caseBase)) {
        PlannedPoint planned;
        planned.gridIndex = plan.points_.size();
        planned.caseName = campaignCase.name;
        planned.params = std::move(point);
        plan.points_.push_back(std::move(planned));
      }
    }
  }

  // Round-robin point partition: shard s owns points {p : p % count == s}.
  // Whole points, so every point's job-order fold happens inside one
  // shard; round-robin keeps shards balanced when cost varies along an
  // axis (e.g. a speed sweep where slow speeds simulate longest).
  for (std::size_t p = static_cast<std::size_t>(plan.shard_.index);
       p < plan.points_.size();
       p += static_cast<std::size_t>(plan.shard_.count)) {
    plan.shardPoints_.push_back(p);
  }
  return plan;
}

}  // namespace vanet::runner
