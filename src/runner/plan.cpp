#include "runner/plan.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "util/rng.h"

namespace vanet::runner {

JobSpec CampaignPlan::pointJob(std::size_t pointIndex,
                               int replication) const {
  JobSpec job;
  job.pointIndex = pointIndex;
  job.replication = replication;
  // Grid-major layout over the *full* campaign: job seeds depend only on
  // (masterSeed, global index), so a shard runs exactly the streams the
  // unsharded run would -- and an adaptive point that stops early ran
  // exactly the stream prefix the fixed-count run would have.
  job.globalIndex = pointIndex * static_cast<std::size_t>(replications_) +
                    static_cast<std::size_t>(replication);
  job.seed = Rng::deriveStreamSeed(masterSeed_, job.globalIndex);
  return job;
}

JobSpec CampaignPlan::shardJob(std::size_t localIndex) const {
  const auto replications = static_cast<std::size_t>(replications_);
  return pointJob(shardPoints_[localIndex / replications],
                  static_cast<int>(localIndex % replications));
}

int waveEndFor(int minReplications, int cap, int wave) noexcept {
  // min * 2^wave without overflow: doubling past the cap saturates.
  long long end = minReplications;
  for (int k = 0; k < wave && end < cap; ++k) end *= 2;
  return static_cast<int>(std::min<long long>(end, cap));
}

int CampaignPlan::waveEndReplication(int wave) const noexcept {
  if (!adaptive()) return replications_;
  return waveEndFor(minReplications_, replications_, wave);
}

CampaignPlan buildPlan(const CampaignConfig& config) {
  const ScenarioInfo* scenario =
      ScenarioRegistry::global().find(config.scenario);
  if (scenario == nullptr) {
    throw std::invalid_argument("unknown scenario: \"" + config.scenario +
                                "\" (registered: " + registeredScenarioList() +
                                ")");
  }
  const bool adaptive = config.targetRelativeCi95 > 0.0;
  if (adaptive) {
    if (config.minReplications < 1 ||
        config.maxReplications < config.minReplications) {
      throw std::invalid_argument(
          "adaptive campaign needs 1 <= minReplications <= maxReplications "
          "(got " +
          std::to_string(config.minReplications) + ".." +
          std::to_string(config.maxReplications) + ")");
    }
  } else if (config.replications < 1) {
    throw std::invalid_argument("campaign needs replications >= 1");
  }
  if (config.shard.count < 1 || config.shard.index < 0 ||
      config.shard.index >= config.shard.count) {
    throw std::invalid_argument(
        "campaign shard must satisfy 0 <= index < count (got " +
        std::to_string(config.shard.index) + "/" +
        std::to_string(config.shard.count) + ")");
  }

  CampaignPlan plan;
  plan.scenario_ = scenario;
  plan.masterSeed_ = config.masterSeed;
  plan.replications_ = adaptive ? config.maxReplications : config.replications;
  plan.targetRelativeCi95_ = adaptive ? config.targetRelativeCi95 : 0.0;
  plan.minReplications_ = adaptive ? config.minReplications : 1;
  if (adaptive) {
    plan.targetMetric_ = config.targetMetric.empty()
                             ? scenario->defaultTargetMetric
                             : config.targetMetric;
    if (plan.targetMetric_.empty()) {
      throw std::invalid_argument(
          "adaptive campaign needs a target metric: scenario \"" +
          config.scenario +
          "\" declares no default, set CampaignConfig::targetMetric");
    }
  }
  plan.roundThreads_ = config.roundThreads;
  plan.shard_ = config.shard;

  // Resolve every grid point up front: scenario defaults, then the
  // campaign base, then the case overrides, then the axis values of the
  // point. Cases vary slowest, so the point list reads case-major.
  ParamSet base = ScenarioRegistry::global().defaults(config.scenario);
  base.apply(config.base);
  if (config.cases.empty()) {
    for (ParamSet& point : config.grid.expand(base)) {
      PlannedPoint planned;
      planned.gridIndex = plan.points_.size();
      planned.params = std::move(point);
      plan.points_.push_back(std::move(planned));
    }
  } else {
    for (const CampaignCase& campaignCase : config.cases) {
      ParamSet caseBase = base;
      caseBase.apply(campaignCase.overrides);
      for (ParamSet& point : config.grid.expand(caseBase)) {
        PlannedPoint planned;
        planned.gridIndex = plan.points_.size();
        planned.caseName = campaignCase.name;
        planned.params = std::move(point);
        plan.points_.push_back(std::move(planned));
      }
    }
  }

  // Round-robin point partition: shard s owns points {p : p % count == s}.
  // Whole points, so every point's job-order fold happens inside one
  // shard; round-robin keeps shards balanced when cost varies along an
  // axis (e.g. a speed sweep where slow speeds simulate longest).
  for (std::size_t p = static_cast<std::size_t>(plan.shard_.index);
       p < plan.points_.size();
       p += static_cast<std::size_t>(plan.shard_.count)) {
    plan.shardPoints_.push_back(p);
  }
  return plan;
}

}  // namespace vanet::runner
