#include "runner/sweep.h"

#include "util/assert.h"

namespace vanet::runner {

SweepGrid& SweepGrid::add(std::string name, std::vector<double> values) {
  VANET_ASSERT(!values.empty(), "a sweep axis needs at least one value");
  for (const SweepAxis& axis : axes_) {
    VANET_ASSERT(axis.name != name, "duplicate sweep axis name");
  }
  axes_.push_back(SweepAxis{std::move(name), std::move(values)});
  return *this;
}

std::size_t SweepGrid::pointCount() const noexcept {
  std::size_t count = 1;
  for (const SweepAxis& axis : axes_) {
    count *= axis.values.size();
  }
  return count;
}

ParamSet SweepGrid::point(std::size_t index, const ParamSet& base) const {
  VANET_ASSERT(index < pointCount(), "grid point index out of range");
  ParamSet params = base;
  // Decode `index` as mixed-radix digits, last axis fastest.
  std::size_t rest = index;
  for (auto axis = axes_.rbegin(); axis != axes_.rend(); ++axis) {
    const std::size_t arity = axis->values.size();
    params.set(axis->name, axis->values[rest % arity]);
    rest /= arity;
  }
  return params;
}

std::vector<ParamSet> SweepGrid::expand(const ParamSet& base) const {
  std::vector<ParamSet> points;
  points.reserve(pointCount());
  for (std::size_t i = 0; i < pointCount(); ++i) {
    points.push_back(point(i, base));
  }
  return points;
}

}  // namespace vanet::runner
