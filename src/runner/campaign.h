#pragma once

/// \file campaign.h
/// The top of the campaign pipeline: runCampaign() composes the three
/// layers -- plan (plan.h: case x grid expansion, job layout, per-job
/// seed derivation), execute (executor.h: thread-pool backends, buffered
/// or streaming), accumulate (accumulate.h: job-order fold plus shard
/// partial serialization) -- into the one-call API every bench and
/// example uses. Per-job determinism comes from
/// Rng::deriveStreamSeed(masterSeed, jobIndex): each job owns a private
/// RNG stream that is a pure function of the master seed and its index,
/// and results are folded strictly in job order, so the merged output is
/// bit-identical no matter how many threads -- or shard processes -- ran.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "runner/accumulate.h"
#include "runner/executor.h"
#include "runner/plan.h"

namespace vanet::runner {

/// The merged campaign outcome plus throughput accounting. For sharded
/// configs, `points` holds only this shard's grid points (each tagged
/// with its full-grid index) and `jobCount` the jobs this process ran;
/// `totalPoints` / `totalJobs` describe the full plan.
struct CampaignResult {
  std::string scenario;
  std::uint64_t masterSeed = 0;
  /// Per-point replication cap: the configured fixed count, or
  /// maxReplications for adaptive campaigns (each GridPointSummary
  /// reports the replications it actually used).
  int replications = 0;
  /// Adaptive-replication stop rule of the run (see CampaignConfig);
  /// targetRelativeCi95 == 0 means a fixed count. `targetMetric` is the
  /// resolved name (config override or scenario default).
  double targetRelativeCi95 = 0.0;
  int minReplications = 0;
  int maxReplications = 0;
  std::string targetMetric;
  int waves = 0;         ///< replication waves executed (1 when fixed)
  Shard shard{};         ///< which slice this process ran
  int threads = 0;           ///< workers actually used
  bool streaming = false;    ///< executor backend used
  std::size_t jobCount = 0;  ///< jobs run by this process
  std::size_t totalPoints = 0;  ///< full-grid point count
  /// Full job-index space of the plan (upper bound when adaptive).
  std::size_t totalJobs = 0;
  /// High-water mark of completed-but-unfolded JobResults (streaming
  /// mode is bounded by streamingWindowCap(threads)).
  std::size_t peakBufferedResults = 0;
  double wallSeconds = 0.0;
  double jobsPerSecond = 0.0;
  /// True when CampaignConfig::haltAfterWaves stopped the run at a wave
  /// barrier: the checkpoint file holds the fold state, `points` is empty
  /// (a halted run has no complete summary to surface).
  bool halted = false;
  std::vector<GridPointSummary> points;  ///< in grid order
};

/// Expands, executes and merges `config`.
///
/// Throws std::invalid_argument when the scenario is unknown, the
/// replication count is < 1 or the shard is malformed. Worker exceptions
/// are rethrown on the calling thread after the pool drains; no partial
/// summaries survive a failed run.
///
/// With config.checkpointPath set, a binary checkpoint partial is written
/// atomically at every wave barrier; with config.resume also set, the
/// fold state restores from that file (std::runtime_error when it
/// describes a different campaign) and execution continues at the first
/// uncovered wave -- byte-identical to the uninterrupted run.
CampaignResult runCampaign(const CampaignConfig& config);

/// This result's shard contribution, ready for writeCampaignPartial().
CampaignPartial campaignPartial(const CampaignResult& result);

/// Reassembles a full CampaignResult from every shard's partial (see
/// mergeCampaignPartials for validation). Emitted CSV/JSON/figure bytes
/// of the returned result match the single-process run exactly;
/// throughput fields (threads, wall-clock) are zeroed -- they are not
/// meaningful for a merge.
CampaignResult resultFromPartials(std::vector<CampaignPartial> partials);

/// resultFromPartials over files: the streaming fast path of
/// campaign_merge. Binary shard files fold point-by-point through
/// buffered reads (peak memory one point record); JSON files fall back
/// to the DOM reader. Formats may be mixed. Same validation -- and the
/// same merged bytes -- as reading every file and calling
/// resultFromPartials.
CampaignResult resultFromPartialFiles(const std::vector<std::string>& paths);

}  // namespace vanet::runner
