#pragma once

/// \file campaign.h
/// The parallel campaign executor. A campaign names a registered
/// scenario, a sweep grid and a replication count; the executor expands
/// the grid into independent (config, seed, replication) jobs, runs them
/// on a thread pool, and merges per-grid-point results *in job order* so
/// the merged output is bit-identical no matter how many threads ran or
/// how the scheduler interleaved them. Per-job determinism comes from
/// Rng::deriveStreamSeed(masterSeed, jobIndex): each job owns a private
/// RNG stream that is a pure function of the master seed and its index.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "runner/registry.h"
#include "runner/sweep.h"
#include "util/stats.h"

namespace vanet::runner {

/// A named parameter combination that a study compares side by side
/// ("plain" / "c-arq" / "c-arq+fc", or selection policies with their
/// caps). Cases express *correlated* parameters a cartesian grid cannot:
/// each case overrides several parameters at once.
struct CampaignCase {
  std::string name;
  ParamSet overrides;
};

/// What to run. Parameters resolve, least specific first, as
///   scenario defaults <- base <- case overrides <- grid axis values,
/// and the expanded point list is cases (slowest) x grid points. An empty
/// `cases` vector behaves like one unnamed case with no overrides.
struct CampaignConfig {
  std::string scenario;
  ParamSet base;
  std::vector<CampaignCase> cases;
  SweepGrid grid;
  int replications = 1;
  std::uint64_t masterSeed = 2008;
  /// Worker threads; 0 picks std::thread::hardware_concurrency().
  int threads = 0;
};

/// One grid point after merging its replications (in job order).
struct GridPointSummary {
  std::size_t gridIndex = 0;
  std::string caseName;             ///< owning case; empty without cases
  ParamSet params;  ///< fully resolved (defaults+base+case+axes)
  trace::Table1Data table1;         ///< merged over replications
  /// Per-flow figure series, merged over replications in job order
  /// (empty for scenarios without figure traces).
  std::map<FlowId, trace::FlowFigure> figures;
  analysis::ProtocolTotals totals;  ///< merged over replications
  /// Per-metric aggregate over the point's jobs: each job contributes one
  /// sample per metric it reported.
  std::map<std::string, RunningStats> metrics;
  int replications = 0;
  int rounds = 0;  ///< total simulated rounds across replications
};

/// The merged campaign outcome plus throughput accounting.
struct CampaignResult {
  std::string scenario;
  std::uint64_t masterSeed = 0;
  int threads = 0;           ///< workers actually used
  std::size_t jobCount = 0;  ///< grid points x replications
  double wallSeconds = 0.0;
  double jobsPerSecond = 0.0;
  std::vector<GridPointSummary> points;  ///< in grid order
};

/// Expands, executes and merges `config`.
///
/// Throws std::invalid_argument when the scenario is unknown or the
/// replication count is < 1. Worker exceptions are rethrown on the
/// calling thread after the pool drains.
CampaignResult runCampaign(const CampaignConfig& config);

}  // namespace vanet::runner
