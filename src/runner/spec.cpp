#include "runner/spec.h"

#include <algorithm>
#include <fstream>
#include <iterator>
#include <stdexcept>

#include "analysis/csv.h"
#include "runner/emit.h"
#include "runner/registry.h"
#include "util/binio.h"
#include "util/json.h"
#include "util/text.h"

namespace vanet::runner {
namespace {

using json::quote;

[[noreturn]] void specError(const std::string& message) {
  throw std::runtime_error("campaign spec: " + message);
}

const char* describe(const json::Value& value) {
  switch (value.type()) {
    case json::Value::Type::Null:
      return "null";
    case json::Value::Type::Bool:
      return "a bool";
    case json::Value::Type::Number:
      return "a number";
    case json::Value::Type::String:
      return "a string";
    case json::Value::Type::Array:
      return "an array";
    case json::Value::Type::Object:
      return "an object";
  }
  return "an unknown value";
}

[[noreturn]] void typeError(const std::string& key, const std::string& expected,
                            const json::Value& got) {
  specError("key \"" + key + "\": expected " + expected + ", got " +
            describe(got));
}

/// Rejects `key` naming the closest legal key when one is within editing
/// distance — the spec-file analogue of the flag parser's did-you-mean.
[[noreturn]] void unknownKey(const std::string& context, const std::string& key,
                             const std::vector<std::string>& known) {
  std::string message = "unknown key \"" + key + "\"" + context;
  const std::string hint = util::nearestName(key, known);
  if (!hint.empty()) message += " (did you mean \"" + hint + "\"?)";
  specError(message);
}

std::string stringField(const json::Value& value, const std::string& key) {
  if (value.type() != json::Value::Type::String) {
    typeError(key, "a string", value);
  }
  return value.asString();
}

std::string nonEmptyStringField(const json::Value& value,
                                const std::string& key) {
  if (value.type() != json::Value::Type::String || value.asString().empty()) {
    typeError(key, "a non-empty string", value);
  }
  return value.asString();
}

double numberField(const json::Value& value, const std::string& key) {
  if (value.type() != json::Value::Type::Number) {
    typeError(key, "a number", value);
  }
  return value.asDouble();
}

std::int64_t intField(const json::Value& value, const std::string& key) {
  if (value.type() != json::Value::Type::Number) {
    typeError(key, "an integer", value);
  }
  try {
    return value.asInt64();
  } catch (const std::exception&) {
    typeError(key, "an integer", value);
  }
}

std::uint64_t uintField(const json::Value& value, const std::string& key) {
  if (value.type() != json::Value::Type::Number) {
    typeError(key, "an unsigned integer", value);
  }
  try {
    return value.asUInt64();
  } catch (const std::exception&) {
    typeError(key, "an unsigned integer", value);
  }
}

/// `{param: number, ...}` with duplicate names rejected.
ParamSet paramsField(const json::Value& value, const std::string& key) {
  if (value.type() != json::Value::Type::Object) {
    typeError(key, "an object of {param: number}", value);
  }
  ParamSet params;
  for (const auto& [name, entry] : value.asObject()) {
    if (name.empty()) specError("key \"" + key + "\": empty parameter name");
    if (params.has(name)) {
      specError("key \"" + key + "\": duplicate parameter \"" + name + "\"");
    }
    params.set(name, numberField(entry, key + "." + name));
  }
  return params;
}

/// Every object member must be one of `known` (sorted); returns the
/// member map with duplicates rejected.
std::vector<std::pair<std::string, const json::Value*>> checkedMembers(
    const json::Value& object, const std::string& context,
    const std::vector<std::string>& known) {
  std::vector<std::pair<std::string, const json::Value*>> members;
  for (const auto& [key, value] : object.asObject()) {
    if (!std::binary_search(known.begin(), known.end(), key)) {
      unknownKey(context, key, known);
    }
    for (const auto& [seen, unused] : members) {
      if (seen == key) {
        specError("duplicate key \"" + key + "\"" + context);
      }
    }
    members.emplace_back(key, &value);
  }
  return members;
}

const json::Value* memberOrNull(
    const std::vector<std::pair<std::string, const json::Value*>>& members,
    const std::string& key) {
  for (const auto& [name, value] : members) {
    if (name == key) return value;
  }
  return nullptr;
}

/// `{"target_ci": ..., "min_replications": ..., "max_replications": ...,
/// "metric": ...}` onto the spec's flattened adaptive fields.
void parseAdaptive(const json::Value& value, CampaignSpec& spec) {
  static const std::vector<std::string> kKeys = {
      "max_replications", "metric", "min_replications", "target_ci"};
  if (value.type() != json::Value::Type::Object) {
    typeError("adaptive", "null or an object", value);
  }
  const auto members = checkedMembers(value, " in \"adaptive\"", kKeys);
  const json::Value* targetCi = memberOrNull(members, "target_ci");
  if (targetCi == nullptr) {
    specError("key \"adaptive\": missing required key \"target_ci\" "
              "(a number > 0)");
  }
  spec.targetCi = numberField(*targetCi, "adaptive.target_ci");
  if (spec.targetCi <= 0.0) {
    specError("key \"adaptive.target_ci\": expected a number > 0, got " +
              json::num(spec.targetCi));
  }
  if (const json::Value* minReps = memberOrNull(members, "min_replications")) {
    spec.minReplications =
        static_cast<int>(intField(*minReps, "adaptive.min_replications"));
  }
  if (const json::Value* maxReps = memberOrNull(members, "max_replications")) {
    spec.maxReplications =
        static_cast<int>(intField(*maxReps, "adaptive.max_replications"));
  }
  if (spec.minReplications < 1 ||
      spec.maxReplications < spec.minReplications) {
    specError(
        "key \"adaptive\": need 1 <= min_replications <= max_replications, "
        "got " +
        std::to_string(spec.minReplications) + ".." +
        std::to_string(spec.maxReplications));
  }
  if (const json::Value* metric = memberOrNull(members, "metric")) {
    spec.targetMetric = stringField(*metric, "adaptive.metric");
  }
}

void parseCases(const json::Value& value, CampaignSpec& spec) {
  static const std::vector<std::string> kKeys = {"name", "overrides"};
  if (value.type() != json::Value::Type::Array) {
    typeError("cases", "an array of {name, overrides}", value);
  }
  for (std::size_t i = 0; i < value.asArray().size(); ++i) {
    const std::string context = "cases[" + std::to_string(i) + "]";
    const json::Value& entry = value.asArray()[i];
    if (entry.type() != json::Value::Type::Object) {
      typeError(context, "an object {name, overrides}", entry);
    }
    const auto members = checkedMembers(entry, " in \"" + context + "\"", kKeys);
    const json::Value* name = memberOrNull(members, "name");
    if (name == nullptr) {
      specError("key \"" + context +
                "\": missing required key \"name\" (a non-empty string)");
    }
    CampaignCase campaignCase;
    campaignCase.name = nonEmptyStringField(*name, context + ".name");
    for (const CampaignCase& seen : spec.cases) {
      if (seen.name == campaignCase.name) {
        specError("key \"" + context + ".name\": duplicate case name \"" +
                  campaignCase.name + "\"");
      }
    }
    if (const json::Value* overrides = memberOrNull(members, "overrides")) {
      campaignCase.overrides = paramsField(*overrides, context + ".overrides");
    }
    spec.cases.push_back(std::move(campaignCase));
  }
}

void parseGrid(const json::Value& value, CampaignSpec& spec) {
  static const std::vector<std::string> kKeys = {"axis", "values"};
  if (value.type() != json::Value::Type::Array) {
    typeError("grid", "an array of {axis, values}", value);
  }
  for (std::size_t i = 0; i < value.asArray().size(); ++i) {
    const std::string context = "grid[" + std::to_string(i) + "]";
    const json::Value& entry = value.asArray()[i];
    if (entry.type() != json::Value::Type::Object) {
      typeError(context, "an object {axis, values}", entry);
    }
    const auto members = checkedMembers(entry, " in \"" + context + "\"", kKeys);
    const json::Value* axis = memberOrNull(members, "axis");
    if (axis == nullptr) {
      specError("key \"" + context +
                "\": missing required key \"axis\" (a non-empty string)");
    }
    const std::string axisName = nonEmptyStringField(*axis, context + ".axis");
    for (const SweepAxis& seen : spec.grid.axes()) {
      if (seen.name == axisName) {
        specError("key \"" + context + ".axis\": duplicate axis \"" +
                  axisName + "\"");
      }
    }
    const json::Value* values = memberOrNull(members, "values");
    if (values == nullptr || values->type() != json::Value::Type::Array ||
        values->asArray().empty()) {
      specError("key \"" + context +
                ".values\": expected a non-empty array of numbers");
    }
    std::vector<double> axisValues;
    axisValues.reserve(values->asArray().size());
    for (std::size_t v = 0; v < values->asArray().size(); ++v) {
      axisValues.push_back(
          numberField(values->asArray()[v],
                      context + ".values[" + std::to_string(v) + "]"));
    }
    spec.grid.add(axisName, std::move(axisValues));
  }
}

void parseEmits(const json::Value& value, CampaignSpec& spec) {
  static const std::vector<std::string> kKeys = {"kind", "name"};
  if (value.type() != json::Value::Type::Array) {
    typeError("emit", "an array of {kind, name}", value);
  }
  for (std::size_t i = 0; i < value.asArray().size(); ++i) {
    const std::string context = "emit[" + std::to_string(i) + "]";
    const json::Value& entry = value.asArray()[i];
    if (entry.type() != json::Value::Type::Object) {
      typeError(context, "an object {kind, name}", entry);
    }
    const auto members = checkedMembers(entry, " in \"" + context + "\"", kKeys);
    const json::Value* kind = memberOrNull(members, "kind");
    if (kind == nullptr) {
      specError("key \"" + context + "\": missing required key \"kind\"");
    }
    SpecEmit emit;
    emit.kind = nonEmptyStringField(*kind, context + ".kind");
    const std::vector<std::string>& kinds = specEmitKinds();
    if (!std::binary_search(kinds.begin(), kinds.end(), emit.kind)) {
      std::string message = "key \"" + context + ".kind\": unknown emit kind \"" +
                            emit.kind + "\"";
      const std::string hint = util::nearestName(emit.kind, kinds);
      if (!hint.empty()) message += " (did you mean \"" + hint + "\"?)";
      specError(message);
    }
    if (const json::Value* name = memberOrNull(members, "name")) {
      emit.name = nonEmptyStringField(*name, context + ".name");
    }
    spec.emits.push_back(std::move(emit));
  }
}

/// `{"cars": 3, "rounds": 10}` — inline, sorted by name (ParamSet order).
std::string renderParams(const ParamSet& params) {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, value] : params.values()) {
    if (!first) out += ", ";
    first = false;
    out += quote(name) + ": " + json::num(value);
  }
  out += "}";
  return out;
}

}  // namespace

const std::vector<std::string>& specEmitKinds() {
  static const std::vector<std::string> kinds = {"campaign_csv",
                                                 "campaign_json", "figures",
                                                 "table1_csv"};  // sorted
  return kinds;
}

CampaignSpec parseCampaignSpec(const std::string& text) {
  json::Value doc;
  try {
    doc = json::parse(text);
  } catch (const std::exception& error) {
    specError(std::string("malformed JSON: ") + error.what());
  }
  if (doc.type() != json::Value::Type::Object) {
    specError(std::string("expected a JSON object at the top level, got ") +
              describe(doc));
  }
  static const std::vector<std::string> kTopKeys = {
      "adaptive", "base",         "cases",    "emit", "format",
      "grid",     "name",         "paper_ref", "replications",
      "scenario", "seed",         "title",    "version"};
  const auto members = checkedMembers(doc, "", kTopKeys);
  const auto require = [&](const char* key,
                           const char* expected) -> const json::Value& {
    const json::Value* value = memberOrNull(members, key);
    if (value == nullptr) {
      specError(std::string("missing required key \"") + key + "\" (" +
                expected + ")");
    }
    return *value;
  };

  const std::string format =
      stringField(require("format", "the string \"vanet-campaign-spec\""),
                  "format");
  if (format != kCampaignSpecFormat) {
    specError("key \"format\": expected \"" +
              std::string(kCampaignSpecFormat) + "\", got \"" + format + "\"");
  }
  const std::int64_t version =
      intField(require("version", "the number 1"), "version");
  if (version != kCampaignSpecVersion) {
    specError("key \"version\": expected " +
              std::to_string(kCampaignSpecVersion) +
              " (the only vanet-campaign-spec version), got " +
              std::to_string(version));
  }

  CampaignSpec spec;
  spec.name = nonEmptyStringField(require("name", "a non-empty string"),
                                  "name");
  spec.scenario = nonEmptyStringField(
      require("scenario", "a non-empty string"), "scenario");
  if (const json::Value* title = memberOrNull(members, "title")) {
    spec.title = stringField(*title, "title");
  }
  if (const json::Value* paperRef = memberOrNull(members, "paper_ref")) {
    spec.paperRef = stringField(*paperRef, "paper_ref");
  }
  if (const json::Value* seed = memberOrNull(members, "seed")) {
    spec.seed = uintField(*seed, "seed");
  }
  if (const json::Value* replications = memberOrNull(members, "replications")) {
    const std::int64_t count = intField(*replications, "replications");
    if (count < 1) {
      specError("key \"replications\": expected an integer >= 1, got " +
                std::to_string(count));
    }
    spec.replications = static_cast<int>(count);
  }
  if (const json::Value* base = memberOrNull(members, "base")) {
    spec.base = paramsField(*base, "base");
  }
  if (const json::Value* cases = memberOrNull(members, "cases")) {
    parseCases(*cases, spec);
  }
  if (const json::Value* grid = memberOrNull(members, "grid")) {
    parseGrid(*grid, spec);
  }
  if (const json::Value* adaptive = memberOrNull(members, "adaptive")) {
    if (!adaptive->isNull()) parseAdaptive(*adaptive, spec);
  }
  if (const json::Value* emit = memberOrNull(members, "emit")) {
    parseEmits(*emit, spec);
  }
  // Emit names default to the spec name: the normalized form always
  // materializes them, so parse(render(spec)) == spec.
  for (SpecEmit& emit : spec.emits) {
    if (emit.name.empty()) emit.name = spec.name;
  }
  return spec;
}

CampaignSpec loadCampaignSpec(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open campaign spec '" + path + "'");
  }
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  try {
    return parseCampaignSpec(text);
  } catch (const std::exception& error) {
    throw std::runtime_error(path + ": " + error.what());
  }
}

std::string renderCampaignSpec(const CampaignSpec& spec) {
  std::string out = "{\n";
  out += "  \"format\": " + quote(kCampaignSpecFormat) + ",\n";
  out += "  \"version\": " + std::to_string(kCampaignSpecVersion) + ",\n";
  out += "  \"name\": " + quote(spec.name) + ",\n";
  out += "  \"title\": " + quote(spec.title) + ",\n";
  out += "  \"paper_ref\": " + quote(spec.paperRef) + ",\n";
  out += "  \"scenario\": " + quote(spec.scenario) + ",\n";
  out += "  \"seed\": " + std::to_string(spec.seed) + ",\n";
  out += "  \"replications\": " + std::to_string(spec.replications) + ",\n";
  out += "  \"base\": " + renderParams(spec.base) + ",\n";
  if (spec.cases.empty()) {
    out += "  \"cases\": [],\n";
  } else {
    out += "  \"cases\": [\n";
    for (std::size_t i = 0; i < spec.cases.size(); ++i) {
      out += "    {\"name\": " + quote(spec.cases[i].name) +
             ", \"overrides\": " + renderParams(spec.cases[i].overrides) +
             "}";
      out += i + 1 < spec.cases.size() ? ",\n" : "\n";
    }
    out += "  ],\n";
  }
  if (spec.grid.axisCount() == 0) {
    out += "  \"grid\": [],\n";
  } else {
    out += "  \"grid\": [\n";
    const std::vector<SweepAxis>& axes = spec.grid.axes();
    for (std::size_t i = 0; i < axes.size(); ++i) {
      out += "    {\"axis\": " + quote(axes[i].name) + ", \"values\": [";
      for (std::size_t v = 0; v < axes[i].values.size(); ++v) {
        if (v > 0) out += ", ";
        out += json::num(axes[i].values[v]);
      }
      out += "]}";
      out += i + 1 < axes.size() ? ",\n" : "\n";
    }
    out += "  ],\n";
  }
  if (spec.targetCi <= 0.0) {
    out += "  \"adaptive\": null,\n";
  } else {
    out += "  \"adaptive\": {\"target_ci\": " + json::num(spec.targetCi) +
           ", \"min_replications\": " + std::to_string(spec.minReplications) +
           ", \"max_replications\": " + std::to_string(spec.maxReplications) +
           ", \"metric\": " + quote(spec.targetMetric) + "},\n";
  }
  if (spec.emits.empty()) {
    out += "  \"emit\": []\n";
  } else {
    out += "  \"emit\": [\n";
    for (std::size_t i = 0; i < spec.emits.size(); ++i) {
      out += "    {\"kind\": " + quote(spec.emits[i].kind) +
             ", \"name\": " + quote(spec.emits[i].name) + "}";
      out += i + 1 < spec.emits.size() ? ",\n" : "\n";
    }
    out += "  ]\n";
  }
  out += "}\n";
  return out;
}

std::uint64_t campaignSpecDigest(const CampaignSpec& spec) {
  const std::string normalized = renderCampaignSpec(spec);
  return util::fnv1a64(normalized.data(), normalized.size());
}

CampaignConfig campaignConfigFromSpec(const CampaignSpec& spec) {
  CampaignConfig config;
  config.scenario = spec.scenario;
  config.masterSeed = spec.seed;
  config.replications = spec.replications;
  config.base = spec.base;
  config.cases = spec.cases;
  config.grid = spec.grid;
  if (spec.targetCi > 0.0) {
    config.targetRelativeCi95 = spec.targetCi;
    config.minReplications = spec.minReplications;
    config.maxReplications = spec.maxReplications;
    config.targetMetric = spec.targetMetric;
  }
  return config;
}

void applyEngineFlags(const CampaignRunFlags& run, CampaignConfig& config) {
  config.threads = run.threads;
  config.roundThreads = run.roundThreads;
  config.shard = Shard{run.shard.index, run.shard.count};
  config.streaming = run.streaming;
  config.progress = run.progress;
  config.checkpointPath = run.checkpoint;
  config.resume = run.resume;
  config.haltAfterWaves = run.haltAfterWaves;
}

std::vector<SpecEmit> resolvedEmits(const CampaignSpec& spec) {
  if (!spec.emits.empty()) return spec.emits;
  const ScenarioInfo* scenario =
      ScenarioRegistry::global().find(spec.scenario);
  if (scenario == nullptr) {
    throw std::invalid_argument(
        "cannot resolve default emits: unknown scenario \"" + spec.scenario +
        "\" (registered: " + registeredScenarioList() + ")");
  }
  std::vector<SpecEmit> emits;
  emits.reserve(scenario->defaultEmit.size());
  for (const std::string& kind : scenario->defaultEmit) {
    emits.push_back(SpecEmit{kind, spec.name});
  }
  return emits;
}

bool writeSpecArtifacts(const CampaignSpec& spec, const CampaignResult& result,
                        const std::string& dir,
                        std::vector<std::string>& written) {
  for (const SpecEmit& emit : resolvedEmits(spec)) {
    if (emit.kind == "campaign_csv") {
      const std::string path = dir + "/" + emit.name + "_campaign.csv";
      if (!writeCampaignCsv(path, result)) return false;
      written.push_back(path);
    } else if (emit.kind == "campaign_json") {
      const std::string path = dir + "/" + emit.name + "_campaign.json";
      if (!writeCampaignJson(path, result)) return false;
      written.push_back(path);
    } else if (emit.kind == "table1_csv") {
      for (const GridPointSummary& point : result.points) {
        std::string path = dir + "/" + emit.name;
        if (result.points.size() > 1) {
          path += "_p" + std::to_string(point.gridIndex);
        }
        path += ".csv";
        if (!analysis::writeTable1Csv(path, point.table1)) return false;
        writeCampaignArtifactManifest(path, result);
        written.push_back(path);
      }
    } else if (emit.kind == "figures") {
      std::size_t expected = 0;
      for (const GridPointSummary& point : result.points) {
        expected += point.figures.size();
      }
      if (writeCampaignFigureCsvs(dir, emit.name, result, &written) !=
          expected) {
        return false;
      }
    } else {
      // parseCampaignSpec validates kinds; an unknown one here means the
      // spec was built by hand with a kind this build does not know.
      throw std::invalid_argument("unknown emit kind \"" + emit.kind + "\"");
    }
  }
  return true;
}

}  // namespace vanet::runner
