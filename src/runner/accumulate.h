#pragma once

/// \file accumulate.h
/// The *accumulate* layer of the campaign pipeline: folds JobResults
/// into per-grid-point summaries strictly in job order (the merge that
/// used to live inline in runCampaign), and (de)serializes summaries to
/// the versioned JSON partial-result format that shard processes
/// exchange. Because every RunningStats round-trips its full Welford
/// merge state, results reassembled from shard files are bit-identical
/// to a single-process run.

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "runner/plan.h"
#include "util/stats.h"

namespace vanet::runner {

/// One grid point after merging its replications (in job order).
struct GridPointSummary {
  std::size_t gridIndex = 0;
  std::string caseName;             ///< owning case; empty without cases
  ParamSet params;  ///< fully resolved (defaults+base+case+axes)
  trace::Table1Data table1;         ///< merged over replications
  /// Per-flow figure series, merged over replications in job order
  /// (empty for scenarios without figure traces).
  std::map<FlowId, trace::FlowFigure> figures;
  analysis::ProtocolTotals totals;  ///< merged over replications
  /// Per-metric aggregate over the point's jobs: each job contributes one
  /// sample per metric it reported.
  std::map<std::string, RunningStats> metrics;
  int replications = 0;
  /// Total simulated rounds across replications; 64-bit so
  /// million-replication campaigns cannot overflow.
  std::int64_t rounds = 0;
};

/// Folds job results into the shard's grid-point summaries. fold() must
/// be called in ascending local job order -- exactly the order the
/// executor's reordering window releases results -- so the merged bytes
/// are a pure function of the plan, never of scheduling.
class CampaignAccumulator {
 public:
  explicit CampaignAccumulator(const CampaignPlan& plan);

  /// Folds the result of plan.shardJob(localIndex). Throws
  /// std::logic_error when called out of order.
  void fold(std::size_t localIndex, const JobResult& result);

  std::size_t foldedJobs() const noexcept { return folded_; }
  bool complete() const noexcept { return folded_ == expectedJobs_; }

  /// The merged summaries, in grid order (the shard's points only).
  /// Throws std::logic_error when the fold is incomplete -- a failed
  /// run must never surface a truncated summary set.
  std::vector<GridPointSummary> take();

 private:
  std::vector<GridPointSummary> points_;
  std::size_t replications_ = 1;
  std::size_t expectedJobs_ = 0;
  std::size_t folded_ = 0;
};

/// A shard's serialized contribution: the campaign identity (so merging
/// validates shards belong together) plus its merged point summaries.
struct CampaignPartial {
  /// Format version of the partial-result file; readers reject other
  /// versions.
  static constexpr int kVersion = 1;

  std::string scenario;
  std::uint64_t masterSeed = 0;
  Shard shard{};
  int replications = 0;
  std::size_t totalPoints = 0;  ///< full-grid point count of the plan
  std::size_t totalJobs = 0;    ///< full-campaign job count of the plan
  std::vector<GridPointSummary> points;  ///< this shard's, in grid order
};

/// Serializes a partial to its versioned JSON document. Deterministic:
/// bit-identical summaries render byte-identical text.
std::string campaignPartialJson(const CampaignPartial& partial);

/// Parses campaignPartialJson() output. Throws std::runtime_error on
/// malformed input or a version mismatch.
CampaignPartial parseCampaignPartial(const std::string& text);

/// Writes the partial to `path`; false (and logs) on I/O failure.
bool writeCampaignPartial(const std::string& path,
                          const CampaignPartial& partial);

/// Reads and parses a partial file. Throws std::runtime_error when the
/// file cannot be read or parsed.
CampaignPartial readCampaignPartial(const std::string& path);

/// Folds shard partials (any order given; folded in shard order) back
/// into the full grid. Validates that the partials describe the same
/// campaign, that every shard 0..count-1 is present exactly once, and
/// that the points cover the full grid without overlap. Throws
/// std::runtime_error on any mismatch. The returned summaries are
/// bit-identical to the single-process run's.
std::vector<GridPointSummary> mergeCampaignPartials(
    std::vector<CampaignPartial> partials);

}  // namespace vanet::runner
