#pragma once

/// \file accumulate.h
/// The *accumulate* layer of the campaign pipeline: folds JobResults
/// into per-grid-point summaries strictly in job order (the merge that
/// used to live inline in runCampaign), and (de)serializes summaries to
/// the versioned JSON partial-result format that shard processes
/// exchange. Because every RunningStats round-trips its full Welford
/// merge state, results reassembled from shard files are bit-identical
/// to a single-process run.

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "runner/plan.h"
#include "util/stats.h"

namespace vanet::runner {

/// One grid point after merging its replications (in job order).
struct GridPointSummary {
  std::size_t gridIndex = 0;
  std::string caseName;             ///< owning case; empty without cases
  ParamSet params;  ///< fully resolved (defaults+base+case+axes)
  trace::Table1Data table1;         ///< merged over replications
  /// Per-flow figure series, merged over replications in job order
  /// (empty for scenarios without figure traces).
  std::map<FlowId, trace::FlowFigure> figures;
  analysis::ProtocolTotals totals;  ///< merged over replications
  /// Per-metric aggregate over the point's jobs: each job contributes one
  /// sample per metric it reported.
  std::map<std::string, RunningStats> metrics;
  /// Replications actually folded into this point: the fixed count, or --
  /// under adaptive replication -- wherever the CI95 stop rule fired.
  int replications = 0;
  /// Total simulated rounds across replications; 64-bit so
  /// million-replication campaigns cannot overflow.
  std::int64_t rounds = 0;
  /// 95 % CI half-width of the campaign's target metric after the last
  /// fold (the achieved CI the adaptive stop rule judged); 0 when the
  /// campaign has no target metric or fewer than two samples exist.
  double achievedCi95 = 0.0;
};

/// Folds job results into the shard's grid-point summaries. Each point's
/// replications must fold in ascending order without gaps -- exactly the
/// order the executor's waves and reordering window release results --
/// so the merged bytes are a pure function of the plan, never of
/// scheduling. It also owns the adaptive stop rule: pointDone() is a
/// pure function of the folded state, which is what keeps the wave
/// schedule identical at any thread count and across shard processes.
class CampaignAccumulator {
 public:
  explicit CampaignAccumulator(const CampaignPlan& plan);

  /// Folds replication `replication` of the shard's `shardSlot`-th point
  /// (an index into plan.shardPointIndices()). Throws std::logic_error
  /// when the slot is out of range or the replication is not the point's
  /// next one.
  void fold(std::size_t shardSlot, int replication, const JobResult& result);

  std::size_t foldedJobs() const noexcept { return folded_; }

  /// Fixed mode: every planned job folded. Adaptive mode: every point
  /// done (converged or at the replication cap).
  bool complete() const noexcept;

  /// Replications folded into the shard's `shardSlot`-th point so far.
  int pointReplications(std::size_t shardSlot) const;

  /// The adaptive stop rule, evaluated at wave barriers: true once the
  /// point folded minReplications samples and either reached the cap or
  /// tightened confidence95/|mean| of the target metric to the target.
  /// Convergence needs at least two samples of the metric (one sample
  /// has no confidence interval); a zero mean converges only with a
  /// zero CI; a point that never reports the target metric runs to the
  /// cap. Always true for fixed campaigns once the fixed count folded.
  bool pointDone(std::size_t shardSlot) const;

  /// The merged summaries, in grid order (the shard's points only).
  /// Throws std::logic_error when the fold is incomplete -- a failed
  /// run must never surface a truncated summary set.
  std::vector<GridPointSummary> take();

 private:
  bool converged(const GridPointSummary& point) const;

  std::vector<GridPointSummary> points_;
  bool adaptive_ = false;
  double targetRelativeCi95_ = 0.0;
  int minReplications_ = 1;
  int maxReplications_ = 1;
  std::string targetMetric_;
  std::size_t expectedJobs_ = 0;
  std::size_t folded_ = 0;
};

/// A shard's serialized contribution: the campaign identity (so merging
/// validates shards belong together) plus its merged point summaries.
struct CampaignPartial {
  /// Format version of the partial-result file. Writers always emit the
  /// current version; readers accept every version back to kMinVersion
  /// (v1 files predate adaptive replication -- their adaptive fields
  /// read as "fixed count") and reject anything else.
  static constexpr int kVersion = 2;
  static constexpr int kMinVersion = 1;

  std::string scenario;
  std::uint64_t masterSeed = 0;
  Shard shard{};
  /// Per-point replication cap of the plan (the fixed count, or
  /// maxReplications for adaptive campaigns).
  int replications = 0;
  /// Adaptive-replication header (v2): all shards of one campaign must
  /// agree on the stop rule. 0 / empty for fixed-count campaigns.
  double targetRelativeCi95 = 0.0;
  int minReplications = 0;
  int maxReplications = 0;
  std::string targetMetric;
  std::size_t totalPoints = 0;  ///< full-grid point count of the plan
  /// Full job-index space of the plan (points x cap; an upper bound for
  /// adaptive campaigns, whose converged points stop early).
  std::size_t totalJobs = 0;
  std::vector<GridPointSummary> points;  ///< this shard's, in grid order
  /// Where this partial was read from (set by readCampaignPartial; empty
  /// for in-process partials). Never serialized -- it exists so merge
  /// validation errors can name the offending file.
  std::string sourcePath;
};

/// Serializes a partial to its versioned JSON document. Deterministic:
/// bit-identical summaries render byte-identical text.
std::string campaignPartialJson(const CampaignPartial& partial);

/// Parses campaignPartialJson() output. Throws std::runtime_error on
/// malformed input or a version mismatch.
CampaignPartial parseCampaignPartial(const std::string& text);

/// Writes the partial to `path`; false (and logs) on I/O failure.
bool writeCampaignPartial(const std::string& path,
                          const CampaignPartial& partial);

/// Reads and parses a partial file. Throws std::runtime_error when the
/// file cannot be read or parsed.
CampaignPartial readCampaignPartial(const std::string& path);

/// Folds shard partials (any order given; folded in shard order) back
/// into the full grid. Validates that the partials describe the same
/// campaign, that every shard 0..count-1 is present exactly once, and
/// that the points cover the full grid without overlap. Throws
/// std::runtime_error on any mismatch. The returned summaries are
/// bit-identical to the single-process run's.
std::vector<GridPointSummary> mergeCampaignPartials(
    std::vector<CampaignPartial> partials);

}  // namespace vanet::runner
