#pragma once

/// \file accumulate.h
/// The *accumulate* layer of the campaign pipeline: folds JobResults
/// into per-grid-point summaries strictly in job order (the merge that
/// used to live inline in runCampaign), and (de)serializes summaries to
/// the versioned partial-result formats that shard processes exchange:
/// JSON v1/v2 (text, human-greppable) and the compact binary v3
/// (runner/partial_binary.h; the fast path for large campaigns).
/// Because every RunningStats round-trips its full Welford merge state
/// -- shortest-round-trip text in JSON, raw IEEE-754 payloads in binary
/// -- results reassembled from shard files are bit-identical to a
/// single-process run whichever format carried them.

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "runner/plan.h"
#include "util/stats.h"

namespace vanet::runner {

/// One grid point after merging its replications (in job order).
struct GridPointSummary {
  std::size_t gridIndex = 0;
  std::string caseName;             ///< owning case; empty without cases
  ParamSet params;  ///< fully resolved (defaults+base+case+axes)
  trace::Table1Data table1;         ///< merged over replications
  /// Per-flow figure series, merged over replications in job order
  /// (empty for scenarios without figure traces).
  std::map<FlowId, trace::FlowFigure> figures;
  analysis::ProtocolTotals totals;  ///< merged over replications
  /// Per-metric aggregate over the point's jobs: each job contributes one
  /// sample per metric it reported.
  std::map<std::string, RunningStats> metrics;
  /// Replications actually folded into this point: the fixed count, or --
  /// under adaptive replication -- wherever the CI95 stop rule fired.
  int replications = 0;
  /// Total simulated rounds across replications; 64-bit so
  /// million-replication campaigns cannot overflow.
  std::int64_t rounds = 0;
  /// 95 % CI half-width of the campaign's target metric after the last
  /// fold (the achieved CI the adaptive stop rule judged); 0 when the
  /// campaign has no target metric or fewer than two samples exist.
  double achievedCi95 = 0.0;
};

/// Folds job results into the shard's grid-point summaries. Each point's
/// replications must fold in ascending order without gaps -- exactly the
/// order the executor's waves and reordering window release results --
/// so the merged bytes are a pure function of the plan, never of
/// scheduling. It also owns the adaptive stop rule: pointDone() is a
/// pure function of the folded state, which is what keeps the wave
/// schedule identical at any thread count and across shard processes.
class CampaignAccumulator {
 public:
  explicit CampaignAccumulator(const CampaignPlan& plan);

  /// Folds replication `replication` of the shard's `shardSlot`-th point
  /// (an index into plan.shardPointIndices()). Throws std::logic_error
  /// when the slot is out of range or the replication is not the point's
  /// next one.
  void fold(std::size_t shardSlot, int replication, const JobResult& result);

  std::size_t foldedJobs() const noexcept { return folded_; }

  /// Fixed mode: every planned job folded. Adaptive mode: every point
  /// done (converged or at the replication cap).
  bool complete() const noexcept;

  /// Replications folded into the shard's `shardSlot`-th point so far.
  int pointReplications(std::size_t shardSlot) const;

  /// The adaptive stop rule, evaluated at wave barriers: true once the
  /// point folded minReplications samples and either reached the cap or
  /// tightened confidence95/|mean| of the target metric to the target.
  /// Convergence needs at least two samples of the metric (one sample
  /// has no confidence interval); a zero mean converges only with a
  /// zero CI; a point that never reports the target metric runs to the
  /// cap. Always true for fixed campaigns once the fixed count folded.
  bool pointDone(std::size_t shardSlot) const;

  /// The merged summaries, in grid order (the shard's points only).
  /// Throws std::logic_error when the fold is incomplete -- a failed
  /// run must never surface a truncated summary set.
  std::vector<GridPointSummary> take();

  /// Read-only view of the fold state so far, in shard-slot order. Only
  /// meaningful at wave barriers (no worker is folding); this is what
  /// the per-wave checkpoint writer snapshots.
  const std::vector<GridPointSummary>& foldedPoints() const noexcept {
    return points_;
  }

  /// Restores a wave-barrier fold state saved by a checkpoint: `points`
  /// must describe exactly this shard's grid points in slot order (same
  /// gridIndex per slot). Because the summaries round-trip their full
  /// merge state bit-exactly, folding the remaining replications on top
  /// reproduces the uninterrupted run's bytes. Throws std::runtime_error
  /// when the points do not match the plan.
  void restore(std::vector<GridPointSummary> points);

 private:
  bool converged(const GridPointSummary& point) const;

  std::vector<GridPointSummary> points_;
  bool adaptive_ = false;
  double targetRelativeCi95_ = 0.0;
  int minReplications_ = 1;
  int maxReplications_ = 1;
  std::string targetMetric_;
  std::size_t expectedJobs_ = 0;
  std::size_t folded_ = 0;
};

/// A shard's serialized contribution: the campaign identity (so merging
/// validates shards belong together) plus its merged point summaries.
struct CampaignPartial {
  /// Format version of the JSON partial-result file. Writers always emit
  /// the current version; readers accept every version back to
  /// kMinVersion (v1 files predate adaptive replication -- their
  /// adaptive fields read as "fixed count") and reject anything else.
  static constexpr int kVersion = 2;
  static constexpr int kMinVersion = 1;
  /// Version of the compact binary encoding (runner/partial_binary.h).
  /// The version space is shared across formats: v1/v2 are JSON, v3 is
  /// binary; readCampaignPartial auto-detects by magic.
  static constexpr int kBinaryVersion = 3;

  std::string scenario;
  std::uint64_t masterSeed = 0;
  Shard shard{};
  /// Per-point replication cap of the plan (the fixed count, or
  /// maxReplications for adaptive campaigns).
  int replications = 0;
  /// Adaptive-replication header (v2): all shards of one campaign must
  /// agree on the stop rule. 0 / empty for fixed-count campaigns.
  double targetRelativeCi95 = 0.0;
  int minReplications = 0;
  int maxReplications = 0;
  std::string targetMetric;
  std::size_t totalPoints = 0;  ///< full-grid point count of the plan
  /// Full job-index space of the plan (points x cap; an upper bound for
  /// adaptive campaigns, whose converged points stop early).
  std::size_t totalJobs = 0;
  std::vector<GridPointSummary> points;  ///< this shard's, in grid order
  /// Checkpoint trailer (binary v3 only): set when this partial is a
  /// per-wave checkpoint rather than a finished shard contribution.
  /// `checkpointCoveredReps` is the replication prefix every still-open
  /// point has folded; `checkpointComplete` marks the final barrier (the
  /// campaign finished -- resuming just re-emits). Incomplete checkpoints
  /// are rejected by mergeCampaignPartials: they are resume state, not a
  /// shard result.
  bool hasCheckpoint = false;
  int checkpointCoveredReps = 0;
  bool checkpointComplete = false;
  /// Where this partial was read from (set by readCampaignPartial; empty
  /// for in-process partials). Never serialized -- it exists so merge
  /// validation errors can name the offending file.
  std::string sourcePath;
};

/// On-disk encoding of a campaign partial. kAuto picks binary for shard
/// runs (the CLI default for --shard; compact and ~an order of magnitude
/// faster to write+merge) and JSON otherwise (back-compat for tooling
/// that greps partials).
enum class PartialFormat { kAuto, kJson, kBinary };

/// Serializes a partial to its versioned JSON document. Deterministic:
/// bit-identical summaries render byte-identical text.
std::string campaignPartialJson(const CampaignPartial& partial);

/// Parses campaignPartialJson() output. Throws std::runtime_error on
/// malformed input or a version mismatch.
CampaignPartial parseCampaignPartial(const std::string& text);

/// Writes the partial to `path` in the requested format (kAuto: binary
/// when partial.shard.count > 1, JSON otherwise); false (and logs) on
/// I/O failure. The two-argument overload keeps the historical JSON
/// behaviour.
bool writeCampaignPartial(const std::string& path,
                          const CampaignPartial& partial,
                          PartialFormat format);
bool writeCampaignPartial(const std::string& path,
                          const CampaignPartial& partial);

/// Reads and parses a partial file, auto-detecting the format by magic:
/// binary v3 files start with the kPartialBinaryMagic bytes, everything
/// else parses as JSON v1/v2. Throws std::runtime_error (prefixed with
/// the path; binary errors also carry the byte offset of the bad
/// section) when the file cannot be read or parsed.
CampaignPartial readCampaignPartial(const std::string& path);

/// Folds shard partials (any order given; folded in shard order) back
/// into the full grid. Validates that the partials describe the same
/// campaign, that every shard 0..count-1 is present exactly once, that
/// none is an unfinished checkpoint, and that the points cover the full
/// grid without overlap. Throws std::runtime_error on any mismatch. The
/// returned summaries are bit-identical to the single-process run's.
std::vector<GridPointSummary> mergeCampaignPartials(
    std::vector<CampaignPartial> partials);

/// The streaming fast path behind campaign_merge: reads the named shard
/// files and folds their points into the full grid with the same
/// validation as mergeCampaignPartials, but binary partials stream
/// point-by-point through buffered reads (peak memory one point record,
/// never a parsed DOM). JSON files fall back to the DOM reader. When
/// `headerOut` is non-null it receives the campaign identity of the set
/// (points left empty). Formats may be mixed across files.
std::vector<GridPointSummary> mergeCampaignPartialFiles(
    const std::vector<std::string>& paths,
    CampaignPartial* headerOut = nullptr);

}  // namespace vanet::runner
