#pragma once

/// \file emit.h
/// Campaign emitters: a per-grid-point CSV table (via analysis/csv), a
/// machine-readable JSON summary, and a human console rendering with
/// wall-clock / jobs-per-second throughput.
///
/// campaignPointsJson() and campaignCsv() render only deterministic
/// fields with full-precision (%.17g) numbers: two campaigns whose merged
/// results are bit-identical render byte-identical text, which is exactly
/// what the determinism tests and bench_runner_scaling compare.

#include <string>

#include "runner/campaign.h"

namespace vanet::runner {

/// One CSV row per grid point: grid index, every swept axis value,
/// replications, rounds, then mean/stddev of every metric (sorted union
/// of metric names over the campaign). Deterministic.
std::string campaignCsv(const CampaignResult& result);

/// Writes campaignCsv() to `path`; false (and logs) on I/O failure.
bool writeCampaignCsv(const std::string& path, const CampaignResult& result);

/// The "points" JSON array: fully resolved params, merged Table 1 rows,
/// and metric aggregates per grid point. Deterministic.
std::string campaignPointsJson(const CampaignResult& result);

/// The full JSON document: campaign header (scenario, seed, threads,
/// wall-clock, jobs/sec) plus campaignPointsJson().
std::string campaignJson(const CampaignResult& result);

/// Writes campaignJson() to `path`; false (and logs) on I/O failure.
bool writeCampaignJson(const std::string& path, const CampaignResult& result);

/// Human summary: one line per grid point (axis values and headline
/// metrics) plus the throughput footer.
std::string renderCampaignSummary(const CampaignResult& result,
                                  const SweepGrid& grid);

}  // namespace vanet::runner
