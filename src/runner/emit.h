#pragma once

/// \file emit.h
/// Campaign emitters: a per-grid-point CSV table (via analysis/csv), a
/// machine-readable JSON summary, and a human console rendering with
/// wall-clock / jobs-per-second throughput.
///
/// campaignPointsJson(), campaignCsv() and figureSeriesCsv() render only
/// deterministic fields with full-precision (%.17g) numbers: two
/// campaigns whose merged results are bit-identical render byte-identical
/// text, which is exactly what the determinism tests and
/// bench_runner_scaling compare.

#include <string>

#include "runner/campaign.h"

namespace vanet::runner {

/// One CSV row per grid point: grid index (plus the case name when the
/// campaign declared cases), every swept axis value, replications
/// (actually used -- the adaptive stop point when --target-ci ran),
/// rounds, then mean/stddev/ci95 of every metric (sorted union of metric
/// names over the campaign; ci95 is the achieved 95 % half-width).
/// Deterministic.
std::string campaignCsv(const CampaignResult& result);

/// Writes campaignCsv() to `path`; false (and logs) on I/O failure.
bool writeCampaignCsv(const std::string& path, const CampaignResult& result);

/// The "points" JSON array: fully resolved params, merged Table 1 rows,
/// and metric aggregates per grid point. Deterministic.
std::string campaignPointsJson(const CampaignResult& result);

/// The full JSON document: campaign header (scenario, seed, threads,
/// wall-clock, jobs/sec) plus campaignPointsJson().
std::string campaignJson(const CampaignResult& result);

/// Writes campaignJson() to `path`; false (and logs) on I/O failure.
bool writeCampaignJson(const std::string& path, const CampaignResult& result);

/// Human summary: one line per grid point (case name, axis values and
/// headline metrics) plus the throughput footer.
std::string renderCampaignSummary(const CampaignResult& result,
                                  const SweepGrid& grid);

/// One figure series as CSV: a `packet` index column, then mean and
/// 95 % CI half-width per per-car reception series, for the after-coop
/// series and for the joint (any-car) series, plus the per-packet sample
/// count of the joint series. Full-precision numbers: byte-comparing two
/// renderings is a bit-identity check on the merged figure.
std::string figureSeriesCsv(const trace::FlowFigure& figure);

/// Writes figureSeriesCsv() to `path`; false (and logs) on I/O failure.
bool writeFigureCsv(const std::string& path, const trace::FlowFigure& figure);

/// Writes one CSV per (grid point, flow) of `result` into `dir`:
///   dir/<base>_flow<F>.csv            for single-point campaigns,
///   dir/<base>_p<G>_flow<F>.csv       otherwise.
/// Returns the number of files written; stops and logs on I/O failure.
/// When `writtenPaths` is non-null, every path successfully written is
/// appended to it (spec-driven runs report their artefact list).
std::size_t writeCampaignFigureCsvs(const std::string& dir,
                                    const std::string& base,
                                    const CampaignResult& result,
                                    std::vector<std::string>* writtenPaths =
                                        nullptr);

/// Drops the provenance sidecar (obs::writeManifestSidecar) next to an
/// artefact of `result` at `path`. The CSV/JSON writers above call it
/// themselves; exposed for emitters outside this file (per-point Table 1
/// CSVs of spec-driven runs). Best effort: a failed sidecar write warns
/// without failing the artefact, and the artefact bytes are untouched.
void writeCampaignArtifactManifest(const std::string& path,
                                   const CampaignResult& result);

}  // namespace vanet::runner
