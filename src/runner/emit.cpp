#include "runner/emit.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "analysis/csv.h"
#include "obs/manifest.h"
#include "util/json.h"
#include "util/log.h"

namespace vanet::runner {
namespace {

/// Shortest round-trip, locale-independent double rendering (see
/// json::num): equal bit patterns render to equal text, so byte
/// comparison of emitted artefacts is a bit-identity check on the
/// underlying stats.
using json::num;
using json::quote;

void appendStats(std::string& out, const RunningStats& stats) {
  out += "{\"count\":" + std::to_string(stats.count());
  out += ",\"mean\":" + num(stats.mean());
  out += ",\"stddev\":" + num(stats.stddev());
  out += ",\"ci95\":" + num(stats.confidence95());
  out += ",\"min\":" + num(stats.min());
  out += ",\"max\":" + num(stats.max());
  out += ",\"sum\":" + num(stats.sum());
  out += "}";
}

/// Sorted union of metric names over every grid point.
std::set<std::string> metricNames(const CampaignResult& result) {
  std::set<std::string> names;
  for (const GridPointSummary& point : result.points) {
    for (const auto& [name, stats] : point.metrics) {
      names.insert(name);
    }
  }
  return names;
}

bool anyCaseNames(const CampaignResult& result) {
  for (const GridPointSummary& point : result.points) {
    if (!point.caseName.empty()) return true;
  }
  return false;
}

}  // namespace

void writeCampaignArtifactManifest(const std::string& path,
                                   const CampaignResult& result) {
  obs::RunManifest manifest = obs::manifestForArtifact(path);
  manifest.scenario = result.scenario;
  manifest.masterSeed = result.masterSeed;
  manifest.threads = result.threads;
  manifest.shardIndex = result.shard.index;
  manifest.shardCount = result.shard.count;
  manifest.streaming = result.streaming;
  manifest.targetCi = result.targetRelativeCi95;
  manifest.targetMetric = result.targetMetric;
  manifest.wallSeconds = result.wallSeconds;
  manifest.jobsPerSecond = result.jobsPerSecond;
  manifest.points.reserve(result.points.size());
  for (const GridPointSummary& point : result.points) {
    manifest.points.push_back(obs::ManifestPoint{
        point.gridIndex, point.replications, point.achievedCi95});
  }
  obs::writeManifestSidecar(manifest);
}

std::string campaignCsv(const CampaignResult& result) {
  const std::set<std::string> metrics = metricNames(result);
  // Swept axes vary by point only through params; emit every resolved
  // param so a row is self-describing.
  std::set<std::string> paramNames;
  for (const GridPointSummary& point : result.points) {
    for (const auto& [name, value] : point.params.values()) {
      paramNames.insert(name);
    }
  }

  // "total_rounds" = simulated rounds merged into the row (the resolved
  // per-replication "rounds" param appears among the param columns). The
  // "case" column only exists for campaigns that declared cases, so
  // case-less campaigns keep their historical layout.
  const bool withCases = anyCaseNames(result);
  std::vector<std::string> headers{"grid_index"};
  if (withCases) headers.push_back("case");
  headers.push_back("replications");
  headers.push_back("total_rounds");
  for (const std::string& name : paramNames) headers.push_back(name);
  // mean/stddev/ci95 per metric: the ci95 column is the achieved 95 %
  // half-width -- what an adaptive campaign's stop rule judged, and the
  // error bar the paper's tables quote either way.
  for (const std::string& name : metrics) {
    headers.push_back(name + "_mean");
    headers.push_back(name + "_stddev");
    headers.push_back(name + "_ci95");
  }

  std::vector<std::vector<std::string>> rows;
  rows.reserve(result.points.size());
  for (const GridPointSummary& point : result.points) {
    std::vector<std::string> row{std::to_string(point.gridIndex)};
    if (withCases) row.push_back(point.caseName);
    row.push_back(std::to_string(point.replications));
    row.push_back(std::to_string(point.rounds));
    for (const std::string& name : paramNames) {
      row.push_back(point.params.has(name) ? num(point.params.get(name, 0.0))
                                           : std::string());
    }
    for (const std::string& name : metrics) {
      const auto it = point.metrics.find(name);
      if (it != point.metrics.end()) {
        row.push_back(num(it->second.mean()));
        row.push_back(num(it->second.stddev()));
        row.push_back(num(it->second.confidence95()));
      } else {
        row.emplace_back();
        row.emplace_back();
        row.emplace_back();
      }
    }
    rows.push_back(std::move(row));
  }
  return analysis::renderCsv(headers, rows);
}

bool writeCampaignCsv(const std::string& path, const CampaignResult& result) {
  std::ofstream out(path);
  if (!out) {
    LOG_ERROR("cannot open " << path << " for writing");
    return false;
  }
  out << campaignCsv(result);
  if (!out) return false;
  writeCampaignArtifactManifest(path, result);
  return true;
}

std::string campaignPointsJson(const CampaignResult& result) {
  std::string out = "[";
  for (std::size_t p = 0; p < result.points.size(); ++p) {
    const GridPointSummary& point = result.points[p];
    if (p > 0) out += ",";
    out += "\n  {\"grid_index\":" + std::to_string(point.gridIndex);
    if (!point.caseName.empty()) {
      out += ",\"case\":" + quote(point.caseName);
    }
    out += ",\"replications\":" + std::to_string(point.replications);
    out += ",\"rounds\":" + std::to_string(point.rounds);
    if (!result.targetMetric.empty()) {
      out += ",\"achieved_ci95\":" + num(point.achievedCi95);
    }
    out += ",\"params\":{";
    bool first = true;
    for (const auto& [name, value] : point.params.values()) {
      if (!first) out += ",";
      first = false;
      out += quote(name) + ":" + num(value);
    }
    out += "},\"table1\":[";
    for (std::size_t r = 0; r < point.table1.rows.size(); ++r) {
      const trace::Table1Row& row = point.table1.rows[r];
      if (r > 0) out += ",";
      out += "{\"car\":" + std::to_string(row.car);
      out += ",\"tx_by_ap\":";
      appendStats(out, row.txByAp);
      out += ",\"lost_before\":";
      appendStats(out, row.lostBefore);
      out += ",\"lost_after\":";
      appendStats(out, row.lostAfter);
      out += ",\"lost_joint\":";
      appendStats(out, row.lostJoint);
      out += ",\"pct_lost_before\":";
      appendStats(out, row.pctLostBefore);
      out += ",\"pct_lost_after\":";
      appendStats(out, row.pctLostAfter);
      out += ",\"pct_lost_joint\":";
      appendStats(out, row.pctLostJoint);
      out += "}";
    }
    out += "],\"metrics\":{";
    first = true;
    for (const auto& [name, stats] : point.metrics) {
      if (!first) out += ",";
      first = false;
      out += quote(name) + ":";
      appendStats(out, stats);
    }
    out += "}}";
  }
  out += "\n]";
  return out;
}

std::string campaignJson(const CampaignResult& result) {
  std::string out = "{\n";
  out += "\"scenario\":" + quote(result.scenario) + ",\n";
  out += "\"master_seed\":" + std::to_string(result.masterSeed) + ",\n";
  if (result.targetRelativeCi95 > 0.0) {
    out += "\"target_ci\":" + num(result.targetRelativeCi95) + ",\n";
    out += "\"target_metric\":" + quote(result.targetMetric) + ",\n";
    out += "\"min_replications\":" + std::to_string(result.minReplications) +
           ",\n";
    out += "\"max_replications\":" + std::to_string(result.maxReplications) +
           ",\n";
    out += "\"waves\":" + std::to_string(result.waves) + ",\n";
  }
  out += "\"threads\":" + std::to_string(result.threads) + ",\n";
  out += "\"job_count\":" + std::to_string(result.jobCount) + ",\n";
  out += "\"wall_seconds\":" + num(result.wallSeconds) + ",\n";
  out += "\"jobs_per_second\":" + num(result.jobsPerSecond) + ",\n";
  out += "\"points\":" + campaignPointsJson(result) + "\n}\n";
  return out;
}

bool writeCampaignJson(const std::string& path, const CampaignResult& result) {
  std::ofstream out(path);
  if (!out) {
    LOG_ERROR("cannot open " << path << " for writing");
    return false;
  }
  out << campaignJson(result);
  if (!out) return false;
  writeCampaignArtifactManifest(path, result);
  return true;
}

std::string renderCampaignSummary(const CampaignResult& result,
                                  const SweepGrid& grid) {
  std::ostringstream out;
  out << "campaign: scenario=" << result.scenario
      << " seed=" << result.masterSeed << " jobs=" << result.jobCount
      << " threads=" << result.threads;
  if (result.targetRelativeCi95 > 0.0) {
    out << " target-ci=" << result.targetRelativeCi95 << " ("
        << result.targetMetric << ", " << result.minReplications << ".."
        << result.maxReplications << " reps, " << result.waves << " waves)";
  }
  out << "\n";
  const std::set<std::string> metrics = metricNames(result);
  for (const GridPointSummary& point : result.points) {
    out << "  [" << point.gridIndex << "]";
    if (!point.caseName.empty()) out << " " << point.caseName;
    for (const SweepAxis& axis : grid.axes()) {
      out << " " << axis.name << "=" << point.params.get(axis.name, 0.0);
    }
    out << " (" << point.replications << " repl, " << point.rounds
        << " rounds)";
    if (!result.targetMetric.empty()) {
      char ci[48];
      std::snprintf(ci, sizeof ci, " ci95=%.3g", point.achievedCi95);
      out << ci;
    }
    for (const std::string& name : metrics) {
      const auto it = point.metrics.find(name);
      if (it == point.metrics.end()) continue;
      char cell[64];
      std::snprintf(cell, sizeof cell, " %s=%.2f", name.c_str(),
                    it->second.mean());
      out << cell;
    }
    out << "\n";
  }
  char footer[128];
  std::snprintf(footer, sizeof footer,
                "wall %.2fs, %.2f jobs/s on %d thread(s)\n",
                result.wallSeconds, result.jobsPerSecond, result.threads);
  out << footer;
  return out.str();
}

std::string figureSeriesCsv(const trace::FlowFigure& figure) {
  std::vector<std::string> headers{"packet"};
  // Columns in series-major order; every series pairs mean with the 95 %
  // CI half-width so the CSV plots directly as mean +- CI curves.
  std::vector<const SeriesAccumulator*> series;
  for (const auto& [car, acc] : figure.rxByCar) {
    headers.push_back("rx_car" + std::to_string(car) + "_mean");
    headers.push_back("rx_car" + std::to_string(car) + "_ci95");
    series.push_back(&acc);
  }
  headers.push_back("after_coop_mean");
  headers.push_back("after_coop_ci95");
  series.push_back(&figure.afterCoop);
  headers.push_back("joint_mean");
  headers.push_back("joint_ci95");
  series.push_back(&figure.joint);
  headers.push_back("joint_n");

  std::size_t length = 0;
  for (const SeriesAccumulator* acc : series) {
    length = std::max(length, acc->size());
  }
  std::vector<std::vector<std::string>> rows;
  rows.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    std::vector<std::string> row{std::to_string(i + 1)};
    for (const SeriesAccumulator* acc : series) {
      if (i < acc->size()) {
        row.push_back(num(acc->at(i).mean()));
        row.push_back(num(acc->at(i).confidence95()));
      } else {
        row.emplace_back();
        row.emplace_back();
      }
    }
    row.push_back(std::to_string(
        i < figure.joint.size() ? figure.joint.at(i).count() : 0));
    rows.push_back(std::move(row));
  }
  return analysis::renderCsv(headers, rows);
}

bool writeFigureCsv(const std::string& path, const trace::FlowFigure& figure) {
  std::ofstream out(path);
  if (!out) {
    LOG_ERROR("cannot open " << path << " for writing");
    return false;
  }
  out << figureSeriesCsv(figure);
  return static_cast<bool>(out);
}

std::size_t writeCampaignFigureCsvs(const std::string& dir,
                                    const std::string& base,
                                    const CampaignResult& result,
                                    std::vector<std::string>* writtenPaths) {
  std::size_t written = 0;
  for (const GridPointSummary& point : result.points) {
    for (const auto& [flow, figure] : point.figures) {
      std::string path = dir + "/" + base;
      if (result.points.size() > 1) {
        path += "_p" + std::to_string(point.gridIndex);
      }
      path += "_flow" + std::to_string(flow) + ".csv";
      if (!writeFigureCsv(path, figure)) return written;
      writeCampaignArtifactManifest(path, result);
      if (writtenPaths != nullptr) writtenPaths->push_back(path);
      ++written;
    }
  }
  return written;
}

}  // namespace vanet::runner
