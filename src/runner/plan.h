#pragma once

/// \file plan.h
/// The *plan* layer of the campaign pipeline. A campaign runs in three
/// composable stages:
///
///   plan (this file)      case x grid expansion, job layout, per-job
///                         seed derivation -- pure and backend-agnostic
///   execute (executor.h)  runs the planned jobs on a thread pool,
///                         buffered or streaming
///   accumulate            folds job results into grid-point summaries
///   (accumulate.h)        and (de)serializes shard partials
///
/// The plan is a pure function of the CampaignConfig: every backend
/// (in-process thread pool, shard processes) expands the same job list
/// with the same per-job RNG stream seeds, which is what makes sharded
/// and multi-threaded runs bit-identical to the serial run.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "runner/registry.h"
#include "runner/sweep.h"

namespace vanet::runner {

/// A named parameter combination that a study compares side by side
/// ("plain" / "c-arq" / "c-arq+fc", or selection policies with their
/// caps). Cases express *correlated* parameters a cartesian grid cannot:
/// each case overrides several parameters at once.
struct CampaignCase {
  std::string name;
  ParamSet overrides;
};

/// One shard of a campaign: shard `index` of `count` runs the grid
/// points p with p % count == index (whole points, never split jobs).
/// Each point's replications fold inside exactly one shard in the same
/// job order as an unsharded run, so merging the shard partials in shard
/// order reproduces the single-process result bit for bit. Seeds are
/// still derived from the *global* job index -- sharding never re-seeds.
struct Shard {
  int index = 0;
  int count = 1;
};

/// What to run. Parameters resolve, least specific first, as
///   scenario defaults <- base <- case overrides <- grid axis values,
/// and the expanded point list is cases (slowest) x grid points. An empty
/// `cases` vector behaves like one unnamed case with no overrides.
struct CampaignConfig {
  std::string scenario;
  ParamSet base;
  std::vector<CampaignCase> cases;
  SweepGrid grid;
  /// Replications per grid point when running a fixed count
  /// (targetRelativeCi95 <= 0); ignored in adaptive mode.
  int replications = 1;
  /// Adaptive replication (CLI: --target-ci): when > 0, every grid point
  /// runs replications in deterministic *waves* -- wave k covers the
  /// replication indices [0, minReplications * 2^k), capped at
  /// maxReplications -- and a point stops replicating once the 95 %
  /// confidence half-width of its target metric, divided by |mean|,
  /// drops to this value (never before minReplications, never past
  /// maxReplications). The stop decision is a pure function of the
  /// wave-boundary fold state, so adaptive campaigns stay byte-identical
  /// at any thread count, under streaming, and across shard processes.
  double targetRelativeCi95 = 0.0;
  int minReplications = 2;   ///< wave-0 size; also the convergence floor
  int maxReplications = 64;  ///< hard cap (and the per-point seed stride)
  /// Metric whose CI drives the stop rule; empty picks the scenario's
  /// defaultTargetMetric ("pdr" for the built-in urban/highway
  /// scenarios, "completed_fraction" for highway_file).
  std::string targetMetric;
  std::uint64_t masterSeed = 2008;
  /// Worker threads; 0 picks std::thread::hardware_concurrency().
  int threads = 0;
  /// Round workers *inside* each job's experiment (rounds are independent
  /// given the per-round RNG children, so they parallelise too): 1 runs
  /// rounds serially, 0 claims whatever the shared thread budget has
  /// left, N asks for N. Nested under busy job workers the round engine
  /// degrades gracefully toward inline execution -- the combined jobs x
  /// round-workers never oversubscribes the budget -- and the merged
  /// bytes are identical for every value. Prefer job parallelism for
  /// many-point campaigns; round workers exist for low-point-count,
  /// high-round campaigns that would otherwise idle most cores.
  int roundThreads = 1;
  /// Which slice of the grid this process runs; {0, 1} = everything.
  Shard shard{};
  /// Stream job results through a bounded reordering window instead of
  /// buffering all of them: peak memory O(grid points + threads)
  /// JobResult-sized buffers instead of O(job count). Bit-identical to
  /// the buffered mode.
  bool streaming = false;
  /// Live progress lines on stderr (CLI: --progress). Observability only:
  /// result bytes are identical with it on or off.
  bool progress = false;
  /// Per-wave checkpoint file (CLI: --checkpoint). Non-empty makes
  /// runCampaign write a binary-v3 checkpoint partial (atomically:
  /// tmp + rename) at every wave barrier; with `resume` also set, a
  /// matching checkpoint at this path restores the fold state and the
  /// run continues at the first uncovered wave -- final artifacts are
  /// byte-identical to the uninterrupted run (same seeds, same fold
  /// order). Checkpointing is observability-grade: result bytes are
  /// identical with it on or off.
  std::string checkpointPath;
  /// Resume from `checkpointPath` (CLI: --resume). The checkpoint must
  /// describe this exact campaign (scenario, master seed, shard,
  /// replication cap, adaptive stop rule, grid totals) or runCampaign
  /// throws. A missing checkpoint file is an error; a *complete*
  /// checkpoint just re-emits the finished result.
  bool resume = false;
  /// Stop after this many wave barriers (< 0: run to completion); the
  /// result comes back with halted = true and no points. Simulates a
  /// kill between waves for checkpoint tests and the CI resume smoke.
  int haltAfterWaves = -1;
};

/// One fully resolved grid point of the expanded campaign.
struct PlannedPoint {
  std::size_t gridIndex = 0;  ///< index in the full (unsharded) grid
  std::string caseName;       ///< owning case; empty without cases
  ParamSet params;            ///< defaults + base + case + axis values
};

/// One schedulable job: replication `replication` of grid point
/// `pointIndex`, with its private RNG stream seed.
struct JobSpec {
  std::size_t globalIndex = 0;  ///< index in the full campaign work-list
  std::size_t pointIndex = 0;   ///< full-grid index of the owning point
  int replication = 0;
  std::uint64_t seed = 0;  ///< Rng::deriveStreamSeed(masterSeed, globalIndex)
};

/// The expanded campaign: the full grid, the shard's slice of it, and
/// the job layout. Immutable after buildPlan().
class CampaignPlan {
 public:
  const ScenarioInfo& scenario() const noexcept { return *scenario_; }
  std::uint64_t masterSeed() const noexcept { return masterSeed_; }
  /// Per-point replication *cap*: the fixed count, or maxReplications in
  /// adaptive mode. This is the job-layout stride -- seeds derive from
  /// pointIndex * replications() + replication whether or not a point
  /// ends up running all of them.
  int replications() const noexcept { return replications_; }
  int roundThreads() const noexcept { return roundThreads_; }
  Shard shard() const noexcept { return shard_; }

  /// Adaptive-replication vocabulary (see CampaignConfig). adaptive()
  /// false means one fixed-count wave.
  bool adaptive() const noexcept { return targetRelativeCi95_ > 0.0; }
  double targetRelativeCi95() const noexcept { return targetRelativeCi95_; }
  int minReplications() const noexcept { return minReplications_; }
  int maxReplications() const noexcept { return replications_; }
  /// The stop metric, resolved against the scenario default. Non-empty
  /// whenever adaptive() (buildPlan rejects unresolvable configs).
  const std::string& targetMetric() const noexcept { return targetMetric_; }

  /// One past the last replication index wave `wave` covers:
  /// min(minReplications * 2^wave, replications()). Fixed-count plans
  /// have exactly one wave covering everything.
  int waveEndReplication(int wave) const noexcept;

  /// Every grid point of the campaign, shard-independent, in grid order.
  const std::vector<PlannedPoint>& points() const noexcept { return points_; }

  /// Full-grid indices of the points this shard owns, ascending.
  const std::vector<std::size_t>& shardPointIndices() const noexcept {
    return shardPoints_;
  }

  /// The job-index space of the full campaign: points x replications().
  /// In adaptive mode this is the upper bound -- converged points leave
  /// their tail indices unrun (the seeds simply go unused).
  std::size_t totalJobCount() const noexcept {
    return points_.size() * static_cast<std::size_t>(replications_);
  }

  /// The shard's slice of the job-index space (upper bound when
  /// adaptive).
  std::size_t shardJobCount() const noexcept {
    return shardPoints_.size() * static_cast<std::size_t>(replications_);
  }

  /// Replication `replication` of full-grid point `pointIndex`, with its
  /// seed derived from the *global* job index -- the one derivation every
  /// backend (threads, waves, shards) shares.
  JobSpec pointJob(std::size_t pointIndex, int replication) const;

  /// The shard's `localIndex`-th job (0 <= localIndex < shardJobCount()).
  /// Local job order within each point equals global job order, so a
  /// fold over local jobs reproduces the unsharded per-point fold.
  JobSpec shardJob(std::size_t localIndex) const;

  /// The resolved parameters of `job`.
  const ParamSet& jobParams(const JobSpec& job) const {
    return points_[job.pointIndex].params;
  }

 private:
  friend CampaignPlan buildPlan(const CampaignConfig& config);

  const ScenarioInfo* scenario_ = nullptr;
  std::uint64_t masterSeed_ = 0;
  int replications_ = 1;  ///< the cap: fixed count, or max when adaptive
  double targetRelativeCi95_ = 0.0;
  int minReplications_ = 1;
  std::string targetMetric_;
  int roundThreads_ = 1;
  Shard shard_{};
  std::vector<PlannedPoint> points_;
  std::vector<std::size_t> shardPoints_;
};

/// One past the last replication index wave `wave` covers under the
/// doubling schedule: min(minReplications * 2^wave, cap). The single
/// definition of the wave schedule -- the executor's wave loop (via
/// CampaignPlan::waveEndReplication) and the shard-merge reconstruction
/// of the executed wave count both call it, so they cannot drift apart.
int waveEndFor(int minReplications, int cap, int wave) noexcept;

/// Expands `config` into a plan. Throws std::invalid_argument when the
/// scenario is unknown, replications < 1 (fixed mode), the adaptive
/// bounds are malformed (minReplications < 1 or maxReplications <
/// minReplications), the adaptive target metric cannot be resolved
/// (config and scenario default both empty), or the shard is malformed
/// (count < 1 or index outside [0, count)).
CampaignPlan buildPlan(const CampaignConfig& config);

}  // namespace vanet::runner
