#pragma once

/// \file plan.h
/// The *plan* layer of the campaign pipeline. A campaign runs in three
/// composable stages:
///
///   plan (this file)      case x grid expansion, job layout, per-job
///                         seed derivation -- pure and backend-agnostic
///   execute (executor.h)  runs the planned jobs on a thread pool,
///                         buffered or streaming
///   accumulate            folds job results into grid-point summaries
///   (accumulate.h)        and (de)serializes shard partials
///
/// The plan is a pure function of the CampaignConfig: every backend
/// (in-process thread pool, shard processes) expands the same job list
/// with the same per-job RNG stream seeds, which is what makes sharded
/// and multi-threaded runs bit-identical to the serial run.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "runner/registry.h"
#include "runner/sweep.h"

namespace vanet::runner {

/// A named parameter combination that a study compares side by side
/// ("plain" / "c-arq" / "c-arq+fc", or selection policies with their
/// caps). Cases express *correlated* parameters a cartesian grid cannot:
/// each case overrides several parameters at once.
struct CampaignCase {
  std::string name;
  ParamSet overrides;
};

/// One shard of a campaign: shard `index` of `count` runs the grid
/// points p with p % count == index (whole points, never split jobs).
/// Each point's replications fold inside exactly one shard in the same
/// job order as an unsharded run, so merging the shard partials in shard
/// order reproduces the single-process result bit for bit. Seeds are
/// still derived from the *global* job index -- sharding never re-seeds.
struct Shard {
  int index = 0;
  int count = 1;
};

/// What to run. Parameters resolve, least specific first, as
///   scenario defaults <- base <- case overrides <- grid axis values,
/// and the expanded point list is cases (slowest) x grid points. An empty
/// `cases` vector behaves like one unnamed case with no overrides.
struct CampaignConfig {
  std::string scenario;
  ParamSet base;
  std::vector<CampaignCase> cases;
  SweepGrid grid;
  int replications = 1;
  std::uint64_t masterSeed = 2008;
  /// Worker threads; 0 picks std::thread::hardware_concurrency().
  int threads = 0;
  /// Round workers *inside* each job's experiment (rounds are independent
  /// given the per-round RNG children, so they parallelise too): 1 runs
  /// rounds serially, 0 claims whatever the shared thread budget has
  /// left, N asks for N. Nested under busy job workers the round engine
  /// degrades gracefully toward inline execution -- the combined jobs x
  /// round-workers never oversubscribes the budget -- and the merged
  /// bytes are identical for every value. Prefer job parallelism for
  /// many-point campaigns; round workers exist for low-point-count,
  /// high-round campaigns that would otherwise idle most cores.
  int roundThreads = 1;
  /// Which slice of the grid this process runs; {0, 1} = everything.
  Shard shard{};
  /// Stream job results through a bounded reordering window instead of
  /// buffering all of them: peak memory O(grid points + threads)
  /// JobResult-sized buffers instead of O(job count). Bit-identical to
  /// the buffered mode.
  bool streaming = false;
};

/// One fully resolved grid point of the expanded campaign.
struct PlannedPoint {
  std::size_t gridIndex = 0;  ///< index in the full (unsharded) grid
  std::string caseName;       ///< owning case; empty without cases
  ParamSet params;            ///< defaults + base + case + axis values
};

/// One schedulable job: replication `replication` of grid point
/// `pointIndex`, with its private RNG stream seed.
struct JobSpec {
  std::size_t globalIndex = 0;  ///< index in the full campaign work-list
  std::size_t pointIndex = 0;   ///< full-grid index of the owning point
  int replication = 0;
  std::uint64_t seed = 0;  ///< Rng::deriveStreamSeed(masterSeed, globalIndex)
};

/// The expanded campaign: the full grid, the shard's slice of it, and
/// the job layout. Immutable after buildPlan().
class CampaignPlan {
 public:
  const ScenarioInfo& scenario() const noexcept { return *scenario_; }
  std::uint64_t masterSeed() const noexcept { return masterSeed_; }
  int replications() const noexcept { return replications_; }
  int roundThreads() const noexcept { return roundThreads_; }
  Shard shard() const noexcept { return shard_; }

  /// Every grid point of the campaign, shard-independent, in grid order.
  const std::vector<PlannedPoint>& points() const noexcept { return points_; }

  /// Full-grid indices of the points this shard owns, ascending.
  const std::vector<std::size_t>& shardPointIndices() const noexcept {
    return shardPoints_;
  }

  /// Jobs in the full campaign: points x replications.
  std::size_t totalJobCount() const noexcept {
    return points_.size() * static_cast<std::size_t>(replications_);
  }

  /// Jobs this shard runs.
  std::size_t shardJobCount() const noexcept {
    return shardPoints_.size() * static_cast<std::size_t>(replications_);
  }

  /// The shard's `localIndex`-th job (0 <= localIndex < shardJobCount()).
  /// Local job order within each point equals global job order, so a
  /// fold over local jobs reproduces the unsharded per-point fold.
  JobSpec shardJob(std::size_t localIndex) const;

  /// The resolved parameters of `job`.
  const ParamSet& jobParams(const JobSpec& job) const {
    return points_[job.pointIndex].params;
  }

 private:
  friend CampaignPlan buildPlan(const CampaignConfig& config);

  const ScenarioInfo* scenario_ = nullptr;
  std::uint64_t masterSeed_ = 0;
  int replications_ = 1;
  int roundThreads_ = 1;
  Shard shard_{};
  std::vector<PlannedPoint> points_;
  std::vector<std::size_t> shardPoints_;
};

/// Expands `config` into a plan. Throws std::invalid_argument when the
/// scenario is unknown, replications < 1, or the shard is malformed
/// (count < 1 or index outside [0, count)).
CampaignPlan buildPlan(const CampaignConfig& config);

}  // namespace vanet::runner
