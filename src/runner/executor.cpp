#include "runner/executor.h"

#include <atomic>
#include <chrono>
#include <exception>
#include <functional>
#include <mutex>
#include <vector>

#include "util/reorder.h"
#include "util/thread_pool.h"

namespace vanet::runner {
namespace {

int resolveThreadCount(int requested, std::size_t jobCount) {
  int threads = requested;
  if (threads <= 0) {
    threads = util::hardwareThreads();
  }
  if (static_cast<std::size_t>(threads) > jobCount) {
    threads = static_cast<int>(jobCount);
  }
  return threads > 0 ? threads : 1;
}

JobResult runJob(const CampaignPlan& plan, std::size_t localIndex) {
  const JobSpec spec = plan.shardJob(localIndex);
  JobContext context;
  context.params = plan.jobParams(spec);
  context.seed = spec.seed;
  context.replication = spec.replication;
  context.jobIndex = spec.globalIndex;
  context.roundThreads = plan.roundThreads();
  return plan.scenario().run(context);
}

/// Buffered backend: collect everything, then fold once the pool drains.
std::size_t executeBuffered(const CampaignPlan& plan, int threads,
                            CampaignAccumulator& into) {
  const std::size_t jobCount = plan.shardJobCount();
  std::vector<JobResult> results(jobCount);
  std::atomic<std::size_t> nextJob{0};
  std::mutex errorMutex;
  std::exception_ptr firstError;

  const auto worker = [&] {
    for (;;) {
      const std::size_t i = nextJob.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobCount) return;
      try {
        results[i] = runJob(plan, i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(errorMutex);
        if (!firstError) firstError = std::current_exception();
        nextJob.store(jobCount, std::memory_order_relaxed);  // drain
        return;
      }
    }
  };
  util::runWorkers(threads, worker);
  if (firstError) std::rethrow_exception(firstError);

  for (std::size_t i = 0; i < jobCount; ++i) {
    into.fold(i, results[i]);
  }
  return jobCount;  // the peak: every result was buffered at once
}

/// Streaming backend: the bounded job-order reordering window of
/// util/reorder.h (the machinery originally lived here; the experiment
/// layer's round engine now folds through the same template).
std::size_t executeStreaming(const CampaignPlan& plan, int threads,
                             CampaignAccumulator& into) {
  return util::foldOrdered<JobResult>(
      plan.shardJobCount(), threads, streamingWindowCap(threads),
      [&plan](std::size_t i) { return runJob(plan, i); },
      [&into](std::size_t i, JobResult& result) { into.fold(i, result); });
}

}  // namespace

std::size_t streamingWindowCap(int threads) noexcept {
  return util::reorderWindowCap(threads);
}

ExecutionStats executeCampaign(const CampaignPlan& plan, int requestedThreads,
                               bool streaming, CampaignAccumulator& into) {
  const std::size_t jobCount = plan.shardJobCount();
  ExecutionStats stats;
  stats.threads = resolveThreadCount(requestedThreads, jobCount);
  stats.streaming = streaming;

  // Record the job workers in the global budget (force: an explicit
  // --threads count is an instruction). Round engines nested inside the
  // jobs draw *their* workers from what remains, so one budget splits as
  // jobs x round-workers instead of the two layers multiplying.
  const util::ThreadLease lease(util::ThreadBudget::global(), stats.threads,
                                /*force=*/true);

  const auto started = std::chrono::steady_clock::now();
  stats.peakBufferedResults =
      streaming ? executeStreaming(plan, stats.threads, into)
                : executeBuffered(plan, stats.threads, into);
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - started;
  stats.wallSeconds = elapsed.count();
  return stats;
}

}  // namespace vanet::runner
