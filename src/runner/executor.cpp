#include "runner/executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace vanet::runner {
namespace {

int resolveThreadCount(int requested, std::size_t jobCount) {
  int threads = requested;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  if (static_cast<std::size_t>(threads) > jobCount) {
    threads = static_cast<int>(jobCount);
  }
  return threads > 0 ? threads : 1;
}

JobResult runJob(const CampaignPlan& plan, std::size_t localIndex) {
  const JobSpec spec = plan.shardJob(localIndex);
  JobContext context;
  context.params = plan.jobParams(spec);
  context.seed = spec.seed;
  context.replication = spec.replication;
  context.jobIndex = spec.globalIndex;
  return plan.scenario().run(context);
}

void runPool(int threads, const std::function<void()>& worker) {
  if (threads == 1) {
    worker();
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back(worker);
  }
  for (std::thread& thread : pool) {
    thread.join();
  }
}

/// Buffered backend: collect everything, then fold once the pool drains.
std::size_t executeBuffered(const CampaignPlan& plan, int threads,
                            CampaignAccumulator& into) {
  const std::size_t jobCount = plan.shardJobCount();
  std::vector<JobResult> results(jobCount);
  std::atomic<std::size_t> nextJob{0};
  std::mutex errorMutex;
  std::exception_ptr firstError;

  const auto worker = [&] {
    for (;;) {
      const std::size_t i = nextJob.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobCount) return;
      try {
        results[i] = runJob(plan, i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(errorMutex);
        if (!firstError) firstError = std::current_exception();
        nextJob.store(jobCount, std::memory_order_relaxed);  // drain
        return;
      }
    }
  };
  runPool(threads, worker);
  if (firstError) std::rethrow_exception(firstError);

  for (std::size_t i = 0; i < jobCount; ++i) {
    into.fold(i, results[i]);
  }
  return jobCount;  // the peak: every result was buffered at once
}

/// Streaming backend: a bounded job-order reordering window. Workers
/// park completed results in `pending` (keyed by local job index); the
/// worker whose insert completes the window front folds every contiguous
/// result. Claiming a job beyond frontier + cap blocks, so `pending`
/// never holds more than streamingWindowCap(threads) results.
std::size_t executeStreaming(const CampaignPlan& plan, int threads,
                             CampaignAccumulator& into) {
  const std::size_t jobCount = plan.shardJobCount();
  const std::size_t cap = streamingWindowCap(threads);

  std::mutex mutex;
  std::condition_variable claimable;
  std::map<std::size_t, JobResult> pending;
  std::size_t nextClaim = 0;
  std::size_t frontier = 0;  ///< next local job index to fold
  std::size_t peakPending = 0;
  bool aborted = false;
  std::exception_ptr firstError;

  const auto worker = [&] {
    for (;;) {
      std::size_t i = 0;
      {
        std::unique_lock<std::mutex> lock(mutex);
        claimable.wait(lock, [&] {
          return aborted || nextClaim >= jobCount || nextClaim < frontier + cap;
        });
        if (aborted || nextClaim >= jobCount) return;
        i = nextClaim++;
      }
      // The park-and-fold below can throw too (allocation in emplace or
      // in the merges), so the whole step shares the abort path: the
      // error must reach the calling thread, never the thread entry.
      try {
        JobResult result = runJob(plan, i);
        const std::lock_guard<std::mutex> lock(mutex);
        if (aborted) return;  // another worker failed; drop the result
        pending.emplace(i, std::move(result));
        peakPending = std::max(peakPending, pending.size());
        while (!pending.empty() && pending.begin()->first == frontier) {
          into.fold(frontier, pending.begin()->second);
          pending.erase(pending.begin());
          ++frontier;
        }
        // Folding moved the window; blocked claimants may now proceed.
        claimable.notify_all();
      } catch (...) {
        const std::lock_guard<std::mutex> lock(mutex);
        if (!firstError) firstError = std::current_exception();
        aborted = true;
        claimable.notify_all();
        return;
      }
    }
  };
  runPool(threads, worker);
  if (firstError) std::rethrow_exception(firstError);
  return peakPending;
}

}  // namespace

std::size_t streamingWindowCap(int threads) noexcept {
  // Twice the worker count: every worker can have one in-flight job plus
  // one parked result before the frontier job completes, and the bound
  // stays O(threads) however large the campaign grows.
  const std::size_t workers = threads > 0 ? static_cast<std::size_t>(threads)
                                          : std::size_t{1};
  return std::max<std::size_t>(2, 2 * workers);
}

ExecutionStats executeCampaign(const CampaignPlan& plan, int requestedThreads,
                               bool streaming, CampaignAccumulator& into) {
  const std::size_t jobCount = plan.shardJobCount();
  ExecutionStats stats;
  stats.threads = resolveThreadCount(requestedThreads, jobCount);
  stats.streaming = streaming;

  const auto started = std::chrono::steady_clock::now();
  stats.peakBufferedResults =
      streaming ? executeStreaming(plan, stats.threads, into)
                : executeBuffered(plan, stats.threads, into);
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - started;
  stats.wallSeconds = elapsed.count();
  return stats;
}

}  // namespace vanet::runner
