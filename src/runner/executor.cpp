#include "runner/executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/counters.h"
#include "obs/progress.h"
#include "util/reorder.h"
#include "util/thread_pool.h"

namespace vanet::runner {
namespace {

int resolveThreadCount(int requested, std::size_t jobCount) {
  int threads = requested;
  if (threads <= 0) {
    threads = util::hardwareThreads();
  }
  if (static_cast<std::size_t>(threads) > jobCount) {
    threads = static_cast<int>(jobCount);
  }
  return threads > 0 ? threads : 1;
}

/// One wave entry: which shard point slot it folds into, and the fully
/// derived job.
struct WaveJob {
  std::size_t shardSlot = 0;
  JobSpec spec;
};

/// The wave's job list: replications [fromRep, toRep) of every open
/// point, point-major -- the global job order restricted to the wave,
/// and therefore (per point) ascending replications without gaps.
std::vector<WaveJob> buildWave(const CampaignPlan& plan,
                               const std::vector<std::size_t>& openSlots,
                               int fromRep, int toRep) {
  std::vector<WaveJob> jobs;
  jobs.reserve(openSlots.size() * static_cast<std::size_t>(toRep - fromRep));
  for (const std::size_t slot : openSlots) {
    const std::size_t pointIndex = plan.shardPointIndices()[slot];
    for (int rep = fromRep; rep < toRep; ++rep) {
      jobs.push_back(WaveJob{slot, plan.pointJob(pointIndex, rep)});
    }
  }
  return jobs;
}

JobResult runJob(const CampaignPlan& plan, const JobSpec& spec) {
  JobContext context;
  context.params = plan.jobParams(spec);
  context.seed = spec.seed;
  context.replication = spec.replication;
  context.jobIndex = spec.globalIndex;
  context.roundThreads = plan.roundThreads();
  try {
    JobResult result = plan.scenario().run(context);
    OBS_COUNT("campaign.jobs_run");
    return result;
  } catch (const std::exception& e) {
    // Name the failing job precisely: the global index pins the seed
    // stream, the (point, replication) pair pins the grid coordinates --
    // enough to re-run exactly this job in isolation.
    throw std::runtime_error(
        "campaign job " + std::to_string(spec.globalIndex) +
        " failed (grid point " + std::to_string(spec.pointIndex) +
        ", replication " + std::to_string(spec.replication) +
        "): " + e.what());
  }
}

/// Buffered backend: collect the wave, then fold once the pool drains.
std::size_t executeWaveBuffered(const CampaignPlan& plan,
                                const std::vector<WaveJob>& jobs, int threads,
                                CampaignAccumulator& into,
                                obs::ProgressReporter* progress) {
  std::vector<JobResult> results(jobs.size());
  std::atomic<std::size_t> nextJob{0};
  std::mutex errorMutex;
  std::exception_ptr firstError;

  const auto worker = [&] {
    for (;;) {
      const std::size_t i = nextJob.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs.size()) return;
      try {
        results[i] = runJob(plan, jobs[i].spec);
        if (progress != nullptr) progress->jobDone();
      } catch (...) {
        const std::lock_guard<std::mutex> lock(errorMutex);
        if (!firstError) firstError = std::current_exception();
        nextJob.store(jobs.size(), std::memory_order_relaxed);  // drain
        return;
      }
    }
  };
  util::runWorkers(threads, worker);
  if (firstError) std::rethrow_exception(firstError);

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    into.fold(jobs[i].shardSlot, jobs[i].spec.replication, results[i]);
  }
  return jobs.size();  // the peak: every wave result was buffered at once
}

/// Streaming backend: the bounded job-order reordering window of
/// util/reorder.h (the machinery originally lived here; the experiment
/// layer's round engine now folds through the same template).
std::size_t executeWaveStreaming(const CampaignPlan& plan,
                                 const std::vector<WaveJob>& jobs, int threads,
                                 CampaignAccumulator& into,
                                 obs::ProgressReporter* progress) {
  return util::foldOrdered<JobResult>(
      jobs.size(), threads, streamingWindowCap(threads),
      [&plan, &jobs, progress](std::size_t i) {
        JobResult result = runJob(plan, jobs[i].spec);
        if (progress != nullptr) progress->jobDone();
        return result;
      },
      [&into, &jobs](std::size_t i, JobResult& result) {
        into.fold(jobs[i].shardSlot, jobs[i].spec.replication, result);
      });
}

}  // namespace

std::size_t streamingWindowCap(int threads) noexcept {
  return util::reorderWindowCap(threads);
}

ExecutionStats executeCampaign(const CampaignPlan& plan, int requestedThreads,
                               bool streaming, CampaignAccumulator& into,
                               obs::ProgressReporter* progress,
                               const WaveHooks& hooks) {
  OBS_SCOPED_TIMER("campaign.execute");
  const std::size_t jobCount = plan.shardJobCount();
  ExecutionStats stats;
  stats.threads = resolveThreadCount(requestedThreads, jobCount);
  stats.streaming = streaming;

  // Record the job workers in the global budget (force: an explicit
  // --threads count is an instruction). Round engines nested inside the
  // jobs draw *their* workers from what remains, so one budget splits as
  // jobs x round-workers instead of the two layers multiplying.
  const util::ThreadLease lease(util::ThreadBudget::global(), stats.threads,
                                /*force=*/true);

  const auto started = std::chrono::steady_clock::now();

  // Wave loop. Fixed-count plans have one wave covering [0, replications);
  // adaptive plans double the covered prefix each wave and, at each wave
  // barrier, drop the points whose stop rule fired. The open set and the
  // wave bounds are pure functions of the folded state, so the schedule
  // -- and therefore the bytes -- never depend on thread count. A resumed
  // run seeds both from the restored accumulator: the open set filters on
  // the (pure) stop rule, and the wave counter skips the prefix the
  // checkpoint already covered, so the continuation replays the exact
  // schedule tail of the uninterrupted run.
  std::vector<std::size_t> open;
  open.reserve(plan.shardPointIndices().size());
  for (std::size_t slot = 0; slot < plan.shardPointIndices().size(); ++slot) {
    if (!into.pointDone(slot)) open.push_back(slot);
  }
  int coveredReps = hooks.resumeCoveredReps;
  int wave = 0;
  if (coveredReps > 0 && coveredReps < plan.replications()) {
    while (plan.waveEndReplication(wave) <= coveredReps) ++wave;
  }
  for (; !open.empty(); ++wave) {
    const int waveEnd = plan.waveEndReplication(wave);
    const std::vector<WaveJob> jobs =
        buildWave(plan, open, coveredReps, waveEnd);
    OBS_COUNT("campaign.waves");
    if (progress != nullptr) {
      progress->beginWave(wave, jobs.size(), open.size(),
                          plan.shardPointIndices().size());
    }
    const std::size_t peak =
        streaming
            ? executeWaveStreaming(plan, jobs, stats.threads, into, progress)
            : executeWaveBuffered(plan, jobs, stats.threads, into, progress);
    stats.peakBufferedResults = std::max(stats.peakBufferedResults, peak);
    stats.jobsRun += jobs.size();
    stats.waves += 1;
    coveredReps = waveEnd;
    if (coveredReps >= plan.replications()) {
      open.clear();  // cap reached: every point is done
    } else {
      open.erase(
          std::remove_if(
              open.begin(), open.end(),
              [&into](std::size_t slot) { return into.pointDone(slot); }),
          open.end());
    }
    if (hooks.onWaveBarrier) {
      hooks.onWaveBarrier(wave, coveredReps, open.empty());
    }
    if (open.empty()) break;
    if (hooks.haltAfterWaves >= 0 && stats.waves >= hooks.haltAfterWaves) {
      stats.halted = true;
      break;
    }
  }

  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - started;
  stats.wallSeconds = elapsed.count();
  if (progress != nullptr) progress->finish();
  return stats;
}

}  // namespace vanet::runner
