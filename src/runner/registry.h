#pragma once

/// \file registry.h
/// Scenario registry of the campaign engine. An experiment family
/// (urban loop, highway drive-thru, infostation file download, ...)
/// registers itself under a name together with the parameters it
/// understands; campaigns then refer to scenarios purely by name, and
/// benches share one parameter vocabulary instead of hand-rolling flag
/// parsing each (this subsumes the per-bench config code that used to
/// live in bench/bench_common.h).

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "analysis/experiment.h"
#include "runner/params.h"
#include "trace/aggregate.h"

namespace vanet::runner {

/// One tunable a scenario accepts, with its default.
struct ParamSpec {
  std::string name;
  double defaultValue = 0.0;
  std::string help;
};

/// Everything one job needs: resolved parameters and a private seed.
struct JobContext {
  ParamSet params;
  std::uint64_t seed = 0;    ///< per-job stream; see Rng::deriveStreamSeed
  int replication = 0;       ///< 0-based replication index at this point
  std::size_t jobIndex = 0;  ///< global index in the campaign work-list
  /// Round workers the experiment may use (CampaignConfig::roundThreads;
  /// an engine knob, deliberately not a ParamSet entry so it never lands
  /// in emitted params). Results are identical for every value.
  int roundThreads = 1;
};

/// What one job returns. `table1`, `figures` and `totals` merge across
/// replications with the library's parallel-combining merges; `metrics`
/// are scalar outcomes (lexicographically ordered by name) that aggregate
/// into one RunningStats per metric at each grid point.
struct JobResult {
  trace::Table1Data table1;
  /// Per-flow Figure 3-8 series (empty for scenarios without figure
  /// traces); merged per grid point via FlowFigure::merge.
  std::map<FlowId, trace::FlowFigure> figures;
  analysis::ProtocolTotals totals;
  std::map<std::string, double> metrics;
  /// Simulated rounds in this job; 64-bit so the per-point sum cannot
  /// overflow on million-replication campaigns.
  std::int64_t rounds = 0;
};

using ScenarioFn = std::function<JobResult(const JobContext&)>;

/// Maps the shared "phy" parameter value (0=DSSS-1M 1=DSSS-2M 2=CCK-5.5M
/// 3=CCK-11M) to its PhyMode. The one place that defines the index
/// vocabulary — benches rendering mode names must use it too. Throws
/// std::invalid_argument when out of range.
channel::PhyMode phyModeFromParam(int index);

/// A registered scenario: name, documentation, accepted parameters, and
/// the factory that runs one job.
struct ScenarioInfo {
  std::string name;
  std::string description;
  std::vector<ParamSpec> params;
  ScenarioFn run;
  /// Metric an adaptive campaign targets when CampaignConfig leaves
  /// targetMetric empty ("pdr" for the built-in urban/highway scenarios,
  /// "completed_fraction" for highway_file). Empty means adaptive
  /// campaigns must name their metric explicitly.
  std::string defaultTargetMetric = {};
  /// Emit kinds (see runner/spec.h specEmitKinds()) a spec-driven run
  /// produces when its spec declares no `emit` list. The initializer is
  /// the sensible plug-in default -- summary CSV + JSON; scenarios with
  /// richer artefacts (per-point Table 1 CSVs, figure series) override.
  std::vector<std::string> defaultEmit = {"campaign_csv", "campaign_json"};
};

/// Name -> scenario map. The built-in scenarios ("urban", "highway",
/// "highway_file") are registered on first access of global(); user code
/// adds its own via ScenarioRegistrar or add().
class ScenarioRegistry {
 public:
  /// The process-wide registry, built-ins included.
  static ScenarioRegistry& global();

  /// Registers `info`; the name must be new and `info.run` non-null.
  void add(ScenarioInfo info);

  /// Looks `name` up; nullptr when unknown.
  const ScenarioInfo* find(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> names() const;

  /// The defaults of `name` as a ParamSet. Throws std::invalid_argument
  /// naming the sorted registered scenarios when `name` is unknown -- a
  /// silent empty set here used to let a typo'd scenario plan a 0-param
  /// grid and run garbage.
  ParamSet defaults(const std::string& name) const;

 private:
  std::map<std::string, ScenarioInfo> scenarios_;
};

/// "urban, highway, ..." -- the sorted registered names of the global
/// registry as one comma-separated list, for unknown-scenario error
/// messages (buildPlan, ScenarioRegistry::defaults, resolvedEmits all
/// quote the same list).
std::string registeredScenarioList();

/// Human rendering of every registered scenario: name, description,
/// default target metric, default emit kinds, and each ParamSpec as
///   name = default  help
/// -- what `vanet_campaign list` and `campaign_sweep --list` print.
std::string renderScenarioList();

/// Registers a scenario at static-initialisation time -- the plug-in
/// path: a new experiment family is one self-contained translation unit
///
///   #include "runner/registry.h"
///   namespace {
///   vanet::runner::JobResult runMine(const vanet::runner::JobContext& ctx) {
///     ...  // ctx.params, ctx.seed, ctx.roundThreads
///   }
///   vanet::runner::ScenarioRegistrar registerMine{{
///       "mine",
///       "one-line description",
///       {{"rounds", 10, "simulated rounds"}, ...},  // ParamSpecs
///       runMine,
///       "pdr",                                // defaultTargetMetric
///       {"campaign_csv", "campaign_json"},    // defaultEmit
///   }};
///   }  // namespace
///
/// linked into the binary; campaigns and spec files then refer to it
/// purely by name. Note: inside a static library, self-registration only
/// fires when the translation unit is linked in (or force-linked); the
/// built-ins are therefore pulled in explicitly by
/// ScenarioRegistry::global().
struct ScenarioRegistrar {
  explicit ScenarioRegistrar(ScenarioInfo info);
};

namespace detail {
/// Defined in scenarios.cpp; called once by global().
void registerBuiltinScenarios(ScenarioRegistry& registry);
}  // namespace detail

}  // namespace vanet::runner
