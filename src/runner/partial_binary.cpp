#include "runner/partial_binary.h"

#include <cstring>
#include <stdexcept>
#include <utility>

#include "analysis/serialize.h"
#include "trace/serialize.h"
#include "util/binio.h"

namespace vanet::runner {
namespace {

using util::BinReader;
using util::BinWriter;

constexpr std::uint32_t kSectionHeader = 1;
constexpr std::uint32_t kSectionPoints = 2;
constexpr std::uint32_t kSectionCheckpoint = 3;

/// magic + version + section count.
constexpr std::size_t kProloguePrefix = 8 + 4 + 4;
constexpr std::size_t kTableEntrySize = 4 + 4 + 8 + 8;
constexpr std::size_t kChecksumSize = 8;

struct SectionEntry {
  std::uint32_t id = 0;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
};

/// The v2 JSON parser enforces the same bounds: a corrupt or hand-edited
/// adaptive header must fail loudly, never feed degenerate wave
/// arithmetic downstream.
void validateAdaptiveHeader(const CampaignPartial& partial) {
  if (partial.targetRelativeCi95 > 0.0 &&
      (partial.minReplications < 1 ||
       partial.maxReplications < partial.minReplications)) {
    throw std::runtime_error(
        "malformed adaptive header: needs 1 <= min_replications <= "
        "max_replications (got " + std::to_string(partial.minReplications) +
        ".." + std::to_string(partial.maxReplications) + ")");
  }
}

void writeHeaderSection(BinWriter& out, const CampaignPartial& partial) {
  out.str(partial.scenario);
  out.u64(partial.masterSeed);
  out.i32(partial.shard.index);
  out.i32(partial.shard.count);
  out.i32(partial.replications);
  out.f64(partial.targetRelativeCi95);
  out.i32(partial.minReplications);
  out.i32(partial.maxReplications);
  out.str(partial.targetMetric);
  out.u64(partial.totalPoints);
  out.u64(partial.totalJobs);
  out.u64(partial.points.size());
}

/// Parses the header section; returns the point-record count.
std::uint64_t parseHeaderSection(BinReader& in, CampaignPartial& partial) {
  partial.scenario = in.str("header scenario");
  partial.masterSeed = in.u64("header master_seed");
  partial.shard.index = in.i32("header shard_index");
  partial.shard.count = in.i32("header shard_count");
  partial.replications = in.i32("header replications");
  partial.targetRelativeCi95 = in.f64("header target_ci");
  partial.minReplications = in.i32("header min_replications");
  partial.maxReplications = in.i32("header max_replications");
  partial.targetMetric = in.str("header target_metric");
  partial.totalPoints = in.u64("header grid_points");
  partial.totalJobs = in.u64("header job_count");
  const std::uint64_t pointCount = in.u64("header point count");
  validateAdaptiveHeader(partial);
  return pointCount;
}

void writeCheckpointSection(BinWriter& out, const CampaignPartial& partial) {
  out.i32(partial.checkpointCoveredReps);
  out.u8(partial.checkpointComplete ? 1 : 0);
}

void parseCheckpointSection(BinReader& in, CampaignPartial& partial) {
  partial.hasCheckpoint = true;
  partial.checkpointCoveredReps = in.i32("checkpoint covered_replications");
  partial.checkpointComplete = in.u8("checkpoint complete flag") != 0;
}

void writePointRecord(BinWriter& out, const GridPointSummary& point) {
  out.u64(point.gridIndex);
  out.str(point.caseName);
  out.i32(point.replications);
  out.i64(point.rounds);
  out.f64(point.achievedCi95);
  out.u32(static_cast<std::uint32_t>(point.params.values().size()));
  for (const auto& [name, value] : point.params.values()) {
    out.str(name);
    out.f64(value);
  }
  trace::table1ToBin(out, point.table1);
  out.u32(static_cast<std::uint32_t>(point.figures.size()));
  for (const auto& [flow, figure] : point.figures) {
    (void)flow;  // the figure serializes its own flow id
    trace::flowFigureToBin(out, figure);
  }
  analysis::protocolTotalsToBin(out, point.totals);
  out.u32(static_cast<std::uint32_t>(point.metrics.size()));
  for (const auto& [name, stats] : point.metrics) {
    out.str(name);
    trace::runningStatsToBin(out, stats);
  }
}

GridPointSummary parsePointRecord(BinReader& in) {
  GridPointSummary point;
  point.gridIndex = static_cast<std::size_t>(in.u64("point grid_index"));
  point.caseName = in.str("point case name");
  point.replications = in.i32("point replications");
  point.rounds = in.i64("point rounds");
  point.achievedCi95 = in.f64("point achieved_ci95");
  const std::uint32_t paramCount = in.u32("point param count");
  for (std::uint32_t p = 0; p < paramCount; ++p) {
    const std::string name = in.str("param name");
    point.params.set(name, in.f64("param value"));
  }
  point.table1 = trace::table1FromBin(in);
  const std::uint32_t figureCount = in.u32("point figure count");
  for (std::uint32_t f = 0; f < figureCount; ++f) {
    trace::FlowFigure figure = trace::flowFigureFromBin(in);
    const FlowId flow = figure.flow;
    point.figures[flow] = std::move(figure);
  }
  point.totals = analysis::protocolTotalsFromBin(in);
  const std::uint32_t metricCount = in.u32("point metric count");
  for (std::uint32_t m = 0; m < metricCount; ++m) {
    const std::string name = in.str("metric name");
    point.metrics[name] = trace::runningStatsFromBin(in);
  }
  if (!in.atEnd()) {
    throw std::runtime_error("trailing bytes at byte offset " +
                             std::to_string(in.offset()) +
                             " after point record");
  }
  return point;
}

/// Parses the fixed prologue (magic, version, section table) out of
/// `data`; used by both the in-memory parser and the streaming reader.
std::vector<SectionEntry> parsePrologue(BinReader& in) {
  char magic[8];
  in.need(sizeof magic, "magic");
  for (char& byte : magic) {
    byte = static_cast<char>(in.u8("magic"));
  }
  if (std::memcmp(magic, kPartialBinaryMagic, sizeof magic) != 0) {
    throw std::runtime_error("not a binary campaign partial (bad magic)");
  }
  const std::uint32_t version = in.u32("format version");
  if (version != static_cast<std::uint32_t>(CampaignPartial::kBinaryVersion)) {
    throw std::runtime_error(
        "unsupported binary campaign partial version " +
        std::to_string(version) + " (supported: " +
        std::to_string(CampaignPartial::kBinaryVersion) + ")");
  }
  const std::uint32_t sectionCount = in.u32("section count");
  if (sectionCount == 0 || sectionCount > 16) {
    throw std::runtime_error("implausible section count " +
                             std::to_string(sectionCount) +
                             " at byte offset 12");
  }
  std::vector<SectionEntry> table(sectionCount);
  for (SectionEntry& entry : table) {
    entry.id = in.u32("section id");
    (void)in.u32("section flags");  // reserved, must round-trip as written
    entry.offset = in.u64("section offset");
    entry.length = in.u64("section length");
  }
  return table;
}

/// Section-table sanity shared by both readers: offsets must tile the
/// payload region [payloadStart, payloadEnd) in order, gap-free.
void validateSectionTable(const std::vector<SectionEntry>& table,
                          std::size_t payloadStart, std::size_t payloadEnd) {
  std::size_t cursor = payloadStart;
  for (std::size_t s = 0; s < table.size(); ++s) {
    const SectionEntry& entry = table[s];
    if (entry.id != kSectionHeader && entry.id != kSectionPoints &&
        entry.id != kSectionCheckpoint) {
      throw std::runtime_error("unknown section id " +
                               std::to_string(entry.id) + " in section table");
    }
    if (entry.offset != cursor) {
      throw std::runtime_error(
          "section table entry " + std::to_string(s) + " claims byte offset " +
          std::to_string(entry.offset) + ", expected " +
          std::to_string(cursor));
    }
    if (entry.length > payloadEnd - cursor) {
      throw std::runtime_error(
          "section " + std::to_string(entry.id) + " at byte offset " +
          std::to_string(entry.offset) + " overruns the file (length " +
          std::to_string(entry.length) + ", " +
          std::to_string(payloadEnd - cursor) + " bytes before checksum)");
    }
    cursor += entry.length;
  }
  if (table.front().id != kSectionHeader) {
    throw std::runtime_error("first section must be the header");
  }
  if (table.back().id != kSectionPoints) {
    throw std::runtime_error("last section must be the points");
  }
  if (cursor != payloadEnd) {
    throw std::runtime_error(
        "section table covers " + std::to_string(cursor - payloadStart) +
        " payload bytes, file has " + std::to_string(payloadEnd - payloadStart));
  }
}

}  // namespace

bool looksLikeBinaryPartial(std::string_view prefix) noexcept {
  return prefix.size() >= sizeof kPartialBinaryMagic &&
         std::memcmp(prefix.data(), kPartialBinaryMagic,
                     sizeof kPartialBinaryMagic) == 0;
}

std::string campaignPartialBinary(const CampaignPartial& partial) {
  BinWriter header;
  writeHeaderSection(header, partial);
  BinWriter checkpoint;
  if (partial.hasCheckpoint) {
    writeCheckpointSection(checkpoint, partial);
  }
  BinWriter points;
  for (const GridPointSummary& point : partial.points) {
    BinWriter record;
    writePointRecord(record, point);
    points.u64(record.size());  // length framing per record
    points.raw(record.buffer().data(), record.size());
  }

  const std::uint32_t sectionCount = partial.hasCheckpoint ? 3 : 2;
  const std::size_t tableSize = sectionCount * kTableEntrySize;
  std::uint64_t offset = kProloguePrefix + tableSize;

  BinWriter out;
  out.raw(kPartialBinaryMagic, sizeof kPartialBinaryMagic);
  out.u32(static_cast<std::uint32_t>(CampaignPartial::kBinaryVersion));
  out.u32(sectionCount);
  const auto tableEntry = [&out, &offset](std::uint32_t id,
                                          const BinWriter& payload) {
    out.u32(id);
    out.u32(0);  // flags, reserved
    out.u64(offset);
    out.u64(payload.size());
    offset += payload.size();
  };
  tableEntry(kSectionHeader, header);
  if (partial.hasCheckpoint) tableEntry(kSectionCheckpoint, checkpoint);
  tableEntry(kSectionPoints, points);

  out.raw(header.buffer().data(), header.size());
  if (partial.hasCheckpoint) {
    out.raw(checkpoint.buffer().data(), checkpoint.size());
  }
  out.raw(points.buffer().data(), points.size());
  out.u64(util::fnv1a64(out.buffer().data(), out.size()));
  return out.take();
}

CampaignPartial parseCampaignPartialBinary(std::string_view data) {
  BinReader prologue(data);
  const std::vector<SectionEntry> table = parsePrologue(prologue);
  if (data.size() < prologue.offset() + kChecksumSize) {
    throw std::runtime_error("truncated at byte offset " +
                             std::to_string(data.size()) +
                             ": no room for the trailing checksum");
  }
  validateSectionTable(table, prologue.offset(), data.size() - kChecksumSize);
  const std::uint64_t expected = util::fnv1a64(
      data.data(), data.size() - kChecksumSize);
  BinReader trailer(data.substr(data.size() - kChecksumSize),
                    data.size() - kChecksumSize);
  const std::uint64_t stored = trailer.u64("file checksum");
  if (stored != expected) {
    throw std::runtime_error("checksum mismatch: file is corrupt (stored " +
                             std::to_string(stored) + ", computed " +
                             std::to_string(expected) + ")");
  }

  CampaignPartial partial;
  std::uint64_t pointCount = 0;
  for (const SectionEntry& entry : table) {
    BinReader in(data.substr(entry.offset, entry.length), entry.offset);
    switch (entry.id) {
      case kSectionHeader:
        pointCount = parseHeaderSection(in, partial);
        break;
      case kSectionCheckpoint:
        parseCheckpointSection(in, partial);
        break;
      case kSectionPoints: {
        partial.points.reserve(pointCount);
        for (std::uint64_t k = 0; k < pointCount; ++k) {
          try {
            const std::uint64_t recordLen = in.u64("point record length");
            const std::size_t recordOffset = in.offset();
            BinReader record(in.view(recordLen, "point record"), recordOffset);
            partial.points.push_back(parsePointRecord(record));
          } catch (const std::runtime_error& error) {
            throw std::runtime_error("point record " + std::to_string(k + 1) +
                                     " of " + std::to_string(pointCount) +
                                     ": " + error.what());
          }
        }
        if (!in.atEnd()) {
          throw std::runtime_error(
              "trailing bytes at byte offset " + std::to_string(in.offset()) +
              " after the last point record");
        }
        break;
      }
      default:
        break;  // unreachable: validateSectionTable rejected unknown ids
    }
  }
  return partial;
}

PartialBinaryFileReader::PartialBinaryFileReader(const std::string& path)
    : path_(path), runningHash_(util::fnv1a64(nullptr, 0)) {
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) {
    throw std::runtime_error("cannot open " + path + " for reading");
  }
  try {
    // Prologue: magic, version, section count, then the table.
    std::string prefix(kProloguePrefix, '\0');
    readExact(prefix.data(), prefix.size(), "file prologue");
    BinReader prefixReader(prefix);
    char magic[8];
    for (char& byte : magic) byte = static_cast<char>(prefixReader.u8("magic"));
    if (!looksLikeBinaryPartial(std::string_view(magic, sizeof magic))) {
      fail("not a binary campaign partial (bad magic)");
    }
    const std::uint32_t version = prefixReader.u32("format version");
    if (version !=
        static_cast<std::uint32_t>(CampaignPartial::kBinaryVersion)) {
      fail("unsupported binary campaign partial version " +
           std::to_string(version) + " (supported: " +
           std::to_string(CampaignPartial::kBinaryVersion) + ")");
    }
    const std::uint32_t sectionCount = prefixReader.u32("section count");
    if (sectionCount == 0 || sectionCount > 16) {
      fail("implausible section count " + std::to_string(sectionCount));
    }
    std::string tableBytes(sectionCount * kTableEntrySize, '\0');
    readExact(tableBytes.data(), tableBytes.size(), "section table");
    std::vector<SectionEntry> table(sectionCount);
    BinReader tableReader(tableBytes, kProloguePrefix);
    for (SectionEntry& entry : table) {
      entry.id = tableReader.u32("section id");
      (void)tableReader.u32("section flags");
      entry.offset = tableReader.u64("section offset");
      entry.length = tableReader.u64("section length");
    }
    // Streamed sequentially: each section must start exactly where the
    // previous one ended (validateSectionTable's tiling rule, minus the
    // end-of-file bound we cannot know without a seek).
    std::size_t cursor = fileOffset_;
    for (std::size_t s = 0; s < table.size(); ++s) {
      const SectionEntry& entry = table[s];
      if (entry.id != kSectionHeader && entry.id != kSectionPoints &&
          entry.id != kSectionCheckpoint) {
        fail("unknown section id " + std::to_string(entry.id) +
             " in section table");
      }
      if (entry.offset != cursor) {
        fail("section table entry " + std::to_string(s) +
             " claims byte offset " + std::to_string(entry.offset) +
             ", expected " + std::to_string(cursor));
      }
      cursor += entry.length;
    }
    if (table.front().id != kSectionHeader) {
      fail("first section must be the header");
    }
    if (table.back().id != kSectionPoints) {
      fail("last section must be the points");
    }

    // Everything before the points parses up front (header, checkpoint);
    // the points then stream record by record.
    std::uint64_t pointCount = 0;
    for (std::size_t s = 0; s + 1 < table.size(); ++s) {
      const SectionEntry& entry = table[s];
      std::string payload(entry.length, '\0');
      readExact(payload.data(), payload.size(),
                entry.id == kSectionHeader ? "header section"
                                           : "checkpoint section");
      BinReader in(payload, entry.offset);
      if (entry.id == kSectionHeader) {
        pointCount = parseHeaderSection(in, header_);
      } else {
        parseCheckpointSection(in, header_);
      }
    }
    header_.sourcePath = path_;
    remaining_ = static_cast<std::size_t>(pointCount);
    if (remaining_ == 0) {
      // Zero-point shard: nothing will call into the record loop, so the
      // checksum trailer verifies here.
      GridPointSummary unused;
      nextPoint(unused);
    }
  } catch (...) {
    std::fclose(file_);
    file_ = nullptr;
    throw;
  }
}

PartialBinaryFileReader::~PartialBinaryFileReader() {
  if (file_ != nullptr) std::fclose(file_);
}

void PartialBinaryFileReader::fail(const std::string& message) const {
  throw std::runtime_error(path_ + ": " + message);
}

void PartialBinaryFileReader::readExact(void* into, std::size_t size,
                                        const char* what) {
  if (size == 0) return;
  const std::size_t got = std::fread(into, 1, size, file_);
  if (got != size) {
    fail("truncated at byte offset " + std::to_string(fileOffset_ + got) +
         " while reading " + what + " (need " + std::to_string(size) +
         " bytes, have " + std::to_string(got) + ")");
  }
  runningHash_ = util::fnv1a64(into, size, runningHash_);
  fileOffset_ += size;
}

bool PartialBinaryFileReader::nextPoint(GridPointSummary& out) {
  if (remaining_ == 0) {
    if (file_ != nullptr) {
      // Verify the trailing checksum exactly once, after the last record.
      const std::uint64_t computed = runningHash_;
      char trailer[kChecksumSize];
      readExact(trailer, sizeof trailer, "file checksum");
      BinReader in(std::string_view(trailer, sizeof trailer),
                   fileOffset_ - kChecksumSize);
      const std::uint64_t stored = in.u64("file checksum");
      if (stored != computed) {
        fail("checksum mismatch: file is corrupt (stored " +
             std::to_string(stored) + ", computed " +
             std::to_string(computed) + ")");
      }
      if (std::fgetc(file_) != EOF) {
        fail("trailing garbage after the checksum at byte offset " +
             std::to_string(fileOffset_));
      }
      std::fclose(file_);
      file_ = nullptr;
    }
    return false;
  }
  char lenBytes[8];
  readExact(lenBytes, sizeof lenBytes, "point record length");
  BinReader lenReader(std::string_view(lenBytes, sizeof lenBytes),
                      fileOffset_ - sizeof lenBytes);
  const std::uint64_t recordLen = lenReader.u64("point record length");
  recordBuf_.resize(static_cast<std::size_t>(recordLen));
  const std::size_t recordOffset = fileOffset_;
  readExact(recordBuf_.data(), recordBuf_.size(), "point record");
  try {
    BinReader record(recordBuf_, recordOffset);
    out = parsePointRecord(record);
  } catch (const std::runtime_error& error) {
    fail("point record " + std::to_string(streamed_ + 1) + ": " +
         error.what());
  }
  ++streamed_;
  --remaining_;
  return true;
}

}  // namespace vanet::runner
