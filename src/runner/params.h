#pragma once

/// \file params.h
/// Named parameter sets for the experiment-campaign engine. Every tunable
/// of a registered scenario is a named double (booleans are 0/1, counts
/// are integral doubles), so sweep grids, CSV columns, and JSON summaries
/// share one uniform value space.

#include <map>
#include <string>

namespace vanet::runner {

/// An ordered name -> value map. Ordering is lexicographic by name, which
/// keeps every derived artefact (expansion order aside, CSV columns, JSON
/// keys) deterministic.
class ParamSet {
 public:
  ParamSet() = default;
  ParamSet(std::initializer_list<std::pair<const std::string, double>> init)
      : values_(init) {}

  /// Sets or overwrites `name`.
  void set(const std::string& name, double value) { values_[name] = value; }

  bool has(const std::string& name) const { return values_.count(name) > 0; }

  /// Returns the value of `name`, or `fallback` when absent.
  double get(const std::string& name, double fallback) const {
    const auto it = values_.find(name);
    return it != values_.end() ? it->second : fallback;
  }

  int getInt(const std::string& name, int fallback) const {
    return static_cast<int>(get(name, fallback));
  }

  bool getBool(const std::string& name, bool fallback) const {
    return get(name, fallback ? 1.0 : 0.0) != 0.0;
  }

  /// Applies every entry of `overrides` on top of this set.
  void apply(const ParamSet& overrides) {
    for (const auto& [name, value] : overrides.values_) {
      values_[name] = value;
    }
  }

  const std::map<std::string, double>& values() const noexcept {
    return values_;
  }

  std::size_t size() const noexcept { return values_.size(); }

 private:
  std::map<std::string, double> values_;
};

}  // namespace vanet::runner
