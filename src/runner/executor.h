#pragma once

/// \file executor.h
/// The *execute* layer of the campaign pipeline: runs a CampaignPlan's
/// shard jobs on a thread pool and feeds the results, strictly in job
/// order, into a CampaignAccumulator.
///
/// Two backends share the same fold (and therefore the same bytes):
///
///  - buffered: every JobResult is kept in a vector sized shardJobCount
///    and folded after the pool drains (the original runCampaign
///    behaviour). Peak memory O(job count).
///  - streaming: each worker hands its result to a bounded job-order
///    reordering window; results are folded the moment they become the
///    lowest outstanding job index, and a worker may only claim a new
///    job while the window has room. Peak memory O(grid points +
///    threads) JobResult-sized buffers, independent of job count.
///
/// Error path: if any job throws, the pool drains, every buffered /
/// windowed result is discarded with the executor's state, and the first
/// exception is rethrown on the calling thread *before* anything can be
/// emitted -- the accumulator is left incomplete, and
/// CampaignAccumulator::take() refuses to surface a truncated summary.

#include <cstddef>

#include "runner/accumulate.h"
#include "runner/plan.h"

namespace vanet::runner {

/// What the executor measured while running the plan.
struct ExecutionStats {
  int threads = 0;          ///< workers actually used
  double wallSeconds = 0.0;
  bool streaming = false;
  /// High-water mark of completed-but-unfolded JobResults held at once.
  /// Buffered mode reports the full job count; streaming mode is bounded
  /// by streamingWindowCap(threads).
  std::size_t peakBufferedResults = 0;
};

/// The reordering-window capacity for `threads` workers: the most
/// completed-but-unfolded results streaming mode ever holds. O(threads),
/// never O(job count).
std::size_t streamingWindowCap(int threads) noexcept;

/// Runs every shard job of `plan` and folds the results into `into` in
/// ascending local job order. `requestedThreads` <= 0 picks the hardware
/// concurrency; the count is clamped to the job count. Rethrows the
/// first worker exception after the pool drains; `into` is then
/// incomplete and must be discarded.
ExecutionStats executeCampaign(const CampaignPlan& plan, int requestedThreads,
                               bool streaming, CampaignAccumulator& into);

}  // namespace vanet::runner
