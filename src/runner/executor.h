#pragma once

/// \file executor.h
/// The *execute* layer of the campaign pipeline: runs a CampaignPlan's
/// shard jobs on a thread pool, in replication *waves*, and feeds the
/// results, strictly in wave-job order, into a CampaignAccumulator.
///
/// Fixed-count campaigns run one wave covering every replication.
/// Adaptive campaigns (CampaignConfig::targetRelativeCi95 > 0) run wave
/// k over the replication indices [waveEnd(k-1), waveEnd(k)) of every
/// still-open point; at each wave barrier the accumulator's stop rule
/// (a pure function of the folded state) drops converged points from
/// the next wave. Seeds derive from the global (point, replication)
/// index either way, so the adaptive schedule is byte-identical at any
/// thread count, under streaming, and across shard processes.
///
/// Two backends share the same fold (and therefore the same bytes):
///
///  - buffered: every JobResult of the wave is kept in a vector sized
///    to the wave and folded after the pool drains (the original
///    runCampaign behaviour). Peak memory O(wave job count).
///  - streaming: each worker hands its result to a bounded job-order
///    reordering window; results are folded the moment they become the
///    lowest outstanding job index, and a worker may only claim a new
///    job while the window has room. Peak memory O(grid points +
///    threads) JobResult-sized buffers, independent of job count.
///
/// Error path: if any job throws, the pool drains, every buffered /
/// windowed result is discarded with the executor's state, and the first
/// exception is rethrown on the calling thread *before* anything can be
/// emitted -- the accumulator is left incomplete, and
/// CampaignAccumulator::take() refuses to surface a truncated summary.

#include <cstddef>
#include <functional>

#include "runner/accumulate.h"
#include "runner/plan.h"

namespace vanet::obs {
class ProgressReporter;
}  // namespace vanet::obs

namespace vanet::runner {

/// What the executor measured while running the plan.
struct ExecutionStats {
  int threads = 0;          ///< workers actually used
  double wallSeconds = 0.0;
  bool streaming = false;
  /// Jobs actually executed: the full planned count for fixed campaigns,
  /// possibly fewer for adaptive ones (converged points stop early).
  std::size_t jobsRun = 0;
  /// Replication waves executed (1 for fixed-count campaigns, 0 for an
  /// empty shard).
  int waves = 0;
  /// High-water mark of completed-but-unfolded JobResults held at once.
  /// Buffered mode reports the largest wave's job count; streaming mode
  /// is bounded by streamingWindowCap(threads).
  std::size_t peakBufferedResults = 0;
  /// True when WaveHooks::haltAfterWaves stopped the run at a barrier
  /// before the campaign completed. The accumulator then holds a valid
  /// wave-boundary fold state but take() would (correctly) refuse.
  bool halted = false;
};

/// Checkpoint/resume instrumentation of the executor's wave loop. All
/// hooks run at wave *barriers* -- no worker is executing -- so reading
/// the accumulator from onWaveBarrier is race-free.
struct WaveHooks {
  /// Replication prefix every still-open point had folded when a resumed
  /// checkpoint was written; 0 starts from scratch. The wave loop skips
  /// the waves that prefix already covers and continues the schedule
  /// exactly where the checkpointed run stopped (the accumulator must
  /// have been restore()d to the matching fold state first).
  int resumeCoveredReps = 0;
  /// Stop after this many wave barriers *this process* (< 0: run to
  /// completion). Simulates a kill at a barrier for checkpoint tests and
  /// the CI resume smoke; the executor returns with stats.halted = true.
  int haltAfterWaves = -1;
  /// Called after each wave barrier's fold + stop-rule pruning, with the
  /// wave index, the covered replication prefix, and whether the campaign
  /// is now complete. This is where runCampaign snapshots the accumulator
  /// into a checkpoint file. Exceptions propagate to the caller.
  std::function<void(int wave, int coveredReps, bool complete)> onWaveBarrier;
};

/// The reordering-window capacity for `threads` workers: the most
/// completed-but-unfolded results streaming mode ever holds. O(threads),
/// never O(job count).
std::size_t streamingWindowCap(int threads) noexcept;

/// Runs every shard job of `plan` and folds the results into `into` in
/// ascending local job order. `requestedThreads` <= 0 picks the hardware
/// concurrency; the count is clamped to the job count. Rethrows the
/// first worker exception after the pool drains -- wrapped with the
/// failing job's global index, grid point and replication -- and `into`
/// is then incomplete and must be discarded. `progress`, when non-null,
/// receives a wave notification at each barrier and a (thread-safe)
/// tick per completed job; it observes only, never schedules.
ExecutionStats executeCampaign(const CampaignPlan& plan, int requestedThreads,
                               bool streaming, CampaignAccumulator& into,
                               obs::ProgressReporter* progress = nullptr,
                               const WaveHooks& hooks = {});

}  // namespace vanet::runner
