#pragma once

/// \file time.h
/// Simulation time as a strong integer-nanosecond type. Integer ticks make
/// event ordering exact and runs bit-reproducible; doubles are only used at
/// the API edges (seconds in, seconds out).

#include <cstdint>
#include <ostream>

namespace vanet::sim {

/// A point in (or duration of) simulation time, in integer nanoseconds.
class SimTime {
 public:
  constexpr SimTime() noexcept = default;

  /// Named constructors. `seconds`/`millis`/`micros` round to the nearest
  /// nanosecond.
  static constexpr SimTime nanos(std::int64_t ns) noexcept { return SimTime{ns}; }
  static constexpr SimTime micros(double us) noexcept {
    return SimTime{llround(us * 1e3)};
  }
  static constexpr SimTime millis(double ms) noexcept {
    return SimTime{llround(ms * 1e6)};
  }
  static constexpr SimTime seconds(double s) noexcept {
    return SimTime{llround(s * 1e9)};
  }

  /// The zero instant / empty duration.
  static constexpr SimTime zero() noexcept { return SimTime{0}; }

  /// A sentinel later than any reachable simulation time.
  static constexpr SimTime max() noexcept { return SimTime{INT64_MAX}; }

  constexpr std::int64_t ns() const noexcept { return ns_; }
  constexpr double toSeconds() const noexcept { return static_cast<double>(ns_) * 1e-9; }
  constexpr double toMillis() const noexcept { return static_cast<double>(ns_) * 1e-6; }

  friend constexpr SimTime operator+(SimTime a, SimTime b) noexcept {
    return SimTime{a.ns_ + b.ns_};
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) noexcept {
    return SimTime{a.ns_ - b.ns_};
  }
  friend constexpr SimTime operator*(SimTime a, std::int64_t k) noexcept {
    return SimTime{a.ns_ * k};
  }
  friend constexpr SimTime operator*(std::int64_t k, SimTime a) noexcept {
    return SimTime{a.ns_ * k};
  }
  constexpr SimTime& operator+=(SimTime other) noexcept {
    ns_ += other.ns_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime other) noexcept {
    ns_ -= other.ns_;
    return *this;
  }

  friend constexpr auto operator<=>(SimTime, SimTime) noexcept = default;

  friend std::ostream& operator<<(std::ostream& os, SimTime t) {
    return os << t.toSeconds() << "s";
  }

 private:
  constexpr explicit SimTime(std::int64_t ns) noexcept : ns_(ns) {}

  // constexpr-friendly llround for non-negative and negative values alike.
  static constexpr std::int64_t llround(double x) noexcept {
    return x >= 0 ? static_cast<std::int64_t>(x + 0.5)
                  : static_cast<std::int64_t>(x - 0.5);
  }

  std::int64_t ns_ = 0;
};

}  // namespace vanet::sim
