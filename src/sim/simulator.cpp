#include "sim/simulator.h"

#include <algorithm>
#include <utility>

#include "obs/counters.h"
#include "util/assert.h"

namespace vanet::sim {

EventId Simulator::scheduleAt(SimTime at, std::function<void()> fn) {
  VANET_ASSERT(at >= now_, "cannot schedule an event in the past");
  VANET_ASSERT(fn != nullptr, "event handler must be callable");
  const EventId id = nextId_++;
  queue_.push_back(Entry{at, nextSeq_++, id});
  std::push_heap(queue_.begin(), queue_.end(), EntryLater{});
  handlers_.emplace(id, std::move(fn));
  return id;
}

EventId Simulator::scheduleAfter(SimTime delay, std::function<void()> fn) {
  VANET_ASSERT(delay >= SimTime::zero(), "delay must be non-negative");
  return scheduleAt(now_ + delay, std::move(fn));
}

void Simulator::cancel(EventId id) {
  if (handlers_.erase(id) == 0) return;  // already fired or cancelled
  OBS_COUNT("sim.events_cancelled");
  ++cancelledInQueue_;
  maybeCompact();
}

void Simulator::maybeCompact() {
  if (cancelledInQueue_ <= kCompactionSlack ||
      cancelledInQueue_ <= handlers_.size()) {
    return;
  }
  OBS_COUNT("sim.queue_compactions");
  const auto live = std::remove_if(
      queue_.begin(), queue_.end(),
      [this](const Entry& entry) { return handlers_.count(entry.id) == 0; });
  queue_.erase(live, queue_.end());
  // Capacity is kept: steady schedule-cancel churn would otherwise pay a
  // free/realloc cycle per compaction. It stays bounded by the largest
  // pre-compaction queue, which the compaction keeps O(pending).
  std::make_heap(queue_.begin(), queue_.end(), EntryLater{});
  cancelledInQueue_ = 0;
}

bool Simulator::popNextLive(Entry& out) {
  while (!queue_.empty()) {
    const Entry top = queue_.front();
    if (handlers_.count(top.id) == 0) {
      std::pop_heap(queue_.begin(), queue_.end(), EntryLater{});
      queue_.pop_back();  // cancelled; discard lazily
      if (cancelledInQueue_ > 0) --cancelledInQueue_;
      continue;
    }
    out = top;
    return true;
  }
  return false;
}

bool Simulator::step() {
  Entry entry;
  if (!popNextLive(entry)) return false;
  std::pop_heap(queue_.begin(), queue_.end(), EntryLater{});
  queue_.pop_back();
  auto it = handlers_.find(entry.id);
  std::function<void()> fn = std::move(it->second);
  handlers_.erase(it);
  VANET_ASSERT(entry.at >= now_, "event queue must be monotone");
  now_ = entry.at;
  ++executed_;
  OBS_COUNT("sim.events_dispatched");
  fn();
  return true;
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

void Simulator::runUntil(SimTime until) {
  stopped_ = false;
  Entry entry;
  while (!stopped_ && popNextLive(entry) && entry.at <= until) {
    step();
  }
  if (!stopped_ && now_ < until) {
    now_ = until;
  }
}

}  // namespace vanet::sim
