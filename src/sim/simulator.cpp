#include "sim/simulator.h"

#include <algorithm>
#include <utility>

#include "obs/counters.h"
#include "util/assert.h"

namespace vanet::sim {

EventId Simulator::scheduleAt(SimTime at, std::function<void()> fn) {
  VANET_ASSERT(at >= now_, "cannot schedule an event in the past");
  VANET_ASSERT(fn != nullptr, "event handler must be callable");
  std::size_t slot;
  if (!freeSlots_.empty()) {
    slot = freeSlots_.back();
    freeSlots_.pop_back();
  } else {
    slot = slots_.size();
    VANET_ASSERT(slot <= 0xffffffffu, "event slot space exhausted");
    slots_.emplace_back();
  }
  Slot& cell = slots_[slot];
  cell.fn = std::move(fn);
  cell.live = true;
  ++liveCount_;
  const EventId id =
      (static_cast<EventId>(cell.generation) << 32) | static_cast<EventId>(slot);
  queue_.push_back(Entry{at, nextSeq_++, id});
  std::push_heap(queue_.begin(), queue_.end(), EntryLater{});
  return id;
}

EventId Simulator::scheduleAfter(SimTime delay, std::function<void()> fn) {
  VANET_ASSERT(delay >= SimTime::zero(), "delay must be non-negative");
  return scheduleAt(now_ + delay, std::move(fn));
}

void Simulator::releaseSlot(std::size_t slot) noexcept {
  Slot& cell = slots_[slot];
  ++cell.generation;
  if (cell.generation == 0) cell.generation = 1;  // keep ids non-zero
  freeSlots_.push_back(static_cast<std::uint32_t>(slot));
}

void Simulator::cancel(EventId id) {
  const std::size_t slot = slotOf(id);
  if (slot >= slots_.size() || slots_[slot].generation != generationOf(id) ||
      !slots_[slot].live) {
    return;  // already fired or cancelled
  }
  // Release the closure eagerly (it may pin resources); the queue entry is
  // discarded lazily and the slot recycled when the entry surfaces or the
  // queue compacts.
  slots_[slot].fn = nullptr;
  slots_[slot].live = false;
  --liveCount_;
  OBS_COUNT("sim.events_cancelled");
  ++cancelledInQueue_;
  maybeCompact();
}

void Simulator::maybeCompact() {
  if (cancelledInQueue_ <= kCompactionSlack || cancelledInQueue_ <= liveCount_) {
    return;
  }
  OBS_COUNT("sim.queue_compactions");
  const auto live =
      std::remove_if(queue_.begin(), queue_.end(), [this](const Entry& entry) {
        const std::size_t slot = slotOf(entry.id);
        if (slots_[slot].generation == generationOf(entry.id) &&
            slots_[slot].live) {
          return false;
        }
        releaseSlot(slot);
        return true;
      });
  queue_.erase(live, queue_.end());
  // Capacity is kept: steady schedule-cancel churn would otherwise pay a
  // free/realloc cycle per compaction. It stays bounded by the largest
  // pre-compaction queue, which the compaction keeps O(pending).
  std::make_heap(queue_.begin(), queue_.end(), EntryLater{});
  cancelledInQueue_ = 0;
}

bool Simulator::popNextLive(Entry& out) {
  while (!queue_.empty()) {
    const Entry top = queue_.front();
    const std::size_t slot = slotOf(top.id);
    if (slots_[slot].generation != generationOf(top.id) || !slots_[slot].live) {
      std::pop_heap(queue_.begin(), queue_.end(), EntryLater{});
      queue_.pop_back();  // cancelled; discard lazily
      if (slots_[slot].generation == generationOf(top.id)) releaseSlot(slot);
      if (cancelledInQueue_ > 0) --cancelledInQueue_;
      continue;
    }
    out = top;
    return true;
  }
  return false;
}

bool Simulator::step() {
  Entry entry;
  if (!popNextLive(entry)) return false;
  std::pop_heap(queue_.begin(), queue_.end(), EntryLater{});
  queue_.pop_back();
  const std::size_t slot = slotOf(entry.id);
  std::function<void()> fn = std::move(slots_[slot].fn);
  slots_[slot].fn = nullptr;
  slots_[slot].live = false;
  --liveCount_;
  releaseSlot(slot);
  VANET_ASSERT(entry.at >= now_, "event queue must be monotone");
  now_ = entry.at;
  ++executed_;
  OBS_COUNT("sim.events_dispatched");
  fn();
  return true;
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

void Simulator::runUntil(SimTime until) {
  stopped_ = false;
  Entry entry;
  while (!stopped_ && popNextLive(entry) && entry.at <= until) {
    step();
  }
  if (!stopped_ && now_ < until) {
    now_ = until;
  }
}

}  // namespace vanet::sim
