#include "sim/simulator.h"

#include <utility>

#include "util/assert.h"

namespace vanet::sim {

EventId Simulator::scheduleAt(SimTime at, std::function<void()> fn) {
  VANET_ASSERT(at >= now_, "cannot schedule an event in the past");
  VANET_ASSERT(fn != nullptr, "event handler must be callable");
  const EventId id = nextId_++;
  queue_.push(Entry{at, nextSeq_++, id});
  handlers_.emplace(id, std::move(fn));
  return id;
}

EventId Simulator::scheduleAfter(SimTime delay, std::function<void()> fn) {
  VANET_ASSERT(delay >= SimTime::zero(), "delay must be non-negative");
  return scheduleAt(now_ + delay, std::move(fn));
}

void Simulator::cancel(EventId id) { handlers_.erase(id); }

bool Simulator::popNextLive(Entry& out) {
  while (!queue_.empty()) {
    const Entry top = queue_.top();
    if (handlers_.count(top.id) == 0) {
      queue_.pop();  // cancelled; discard lazily
      continue;
    }
    out = top;
    return true;
  }
  return false;
}

bool Simulator::step() {
  Entry entry;
  if (!popNextLive(entry)) return false;
  queue_.pop();
  auto it = handlers_.find(entry.id);
  std::function<void()> fn = std::move(it->second);
  handlers_.erase(it);
  VANET_ASSERT(entry.at >= now_, "event queue must be monotone");
  now_ = entry.at;
  ++executed_;
  fn();
  return true;
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

void Simulator::runUntil(SimTime until) {
  stopped_ = false;
  Entry entry;
  while (!stopped_ && popNextLive(entry) && entry.at <= until) {
    step();
  }
  if (!stopped_ && now_ < until) {
    now_ = until;
  }
}

}  // namespace vanet::sim
