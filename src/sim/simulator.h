#pragma once

/// \file simulator.h
/// Single-threaded discrete-event scheduler. Events at equal timestamps fire
/// in insertion order (stable), which keeps runs deterministic.

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/time.h"

namespace vanet::sim {

/// Handle for a scheduled event; used to cancel it. Id 0 is never issued.
using EventId = std::uint64_t;

/// Discrete-event simulation kernel.
///
/// Typical use:
/// ```
/// Simulator sim;
/// sim.scheduleAt(SimTime::seconds(1.0), [&] { ... });
/// sim.runUntil(SimTime::seconds(10.0));
/// ```
///
/// Handlers live in a pooled slot store: an EventId encodes (generation,
/// slot) and slots are recycled through a free list, so steady
/// schedule/dispatch churn performs no per-event allocation and no hashing
/// (the previous id->handler hash map dominated event dispatch cost).
/// Handlers with captures up to the std::function small-buffer size are
/// therefore allocation-free end to end.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time. Starts at zero.
  SimTime now() const noexcept { return now_; }

  /// Schedules `fn` at absolute time `at` (>= now). Returns a cancellable id.
  EventId scheduleAt(SimTime at, std::function<void()> fn);

  /// Schedules `fn` after `delay` (>= 0) from now.
  EventId scheduleAfter(SimTime delay, std::function<void()> fn);

  /// Cancels a pending event; no-op if it already fired or was cancelled.
  /// The handler is released eagerly; the queue entry is discarded lazily
  /// but compacted whenever cancelled entries outnumber live ones, so a
  /// long round cancelling many far-future timers (C-ARQ timeout churn)
  /// keeps the queue O(pending), never O(all timers ever cancelled).
  void cancel(EventId id);

  /// True if the event is still pending.
  bool isPending(EventId id) const noexcept {
    const std::size_t slot = slotOf(id);
    return slot < slots_.size() && slots_[slot].generation == generationOf(id) &&
           slots_[slot].live;
  }

  /// Runs until the queue drains or stop() is called.
  void run();

  /// Runs events with timestamp <= `until`, then sets now() = `until`
  /// (unless stopped earlier).
  void runUntil(SimTime until);

  /// Executes exactly one event if available; returns false on empty queue.
  bool step();

  /// Makes run()/runUntil() return after the current event completes.
  void stop() noexcept { stopped_ = true; }

  /// Clears a previous stop() so the simulator can be driven further.
  void clearStop() noexcept { stopped_ = false; }

  /// Number of events currently pending (excluding cancelled ones).
  std::size_t pendingCount() const noexcept { return liveCount_; }

  /// Queue entries currently held, *including* not-yet-discarded
  /// cancelled ones -- the memory the queue actually occupies. Compaction
  /// keeps it <= pendingCount() + max(pendingCount(), compaction slack):
  /// O(pending), never O(all timers ever cancelled). Exposed for the
  /// cancellation-growth regression test.
  std::size_t queueDepth() const noexcept { return queue_.size(); }

  /// Total events executed since construction.
  std::uint64_t executedCount() const noexcept { return executed_; }

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;  // insertion order; breaks timestamp ties stably
    EventId id;
  };
  struct EntryLater {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };
  /// One pooled handler cell. `generation` advances on every recycle so a
  /// stale EventId can never resolve to a newer occupant of the slot.
  struct Slot {
    std::function<void()> fn;
    std::uint32_t generation = 1;
    bool live = false;
  };

  static constexpr std::size_t slotOf(EventId id) noexcept {
    return static_cast<std::size_t>(id & 0xffffffffu);
  }
  static constexpr std::uint32_t generationOf(EventId id) noexcept {
    return static_cast<std::uint32_t>(id >> 32);
  }

  // Returns a slot to the free list and invalidates outstanding ids to it.
  void releaseSlot(std::size_t slot) noexcept;

  // Pops queue entries whose handler was cancelled; returns false when empty.
  bool popNextLive(Entry& out);

  // Drops every cancelled entry and re-heapifies when the dead entries
  // dominate the queue. Amortised O(1) per cancel.
  void maybeCompact();

  // Compaction slack: below this many dead entries the O(queue) sweep is
  // not worth it (tiny queues churn timers constantly).
  static constexpr std::size_t kCompactionSlack = 64;

  SimTime now_{};
  bool stopped_ = false;
  std::uint64_t nextSeq_ = 0;
  std::uint64_t executed_ = 0;
  // Binary min-heap (std::push_heap/pop_heap with EntryLater) instead of
  // std::priority_queue: compaction needs access to the container.
  std::vector<Entry> queue_;
  std::size_t cancelledInQueue_ = 0;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> freeSlots_;
  std::size_t liveCount_ = 0;
};

}  // namespace vanet::sim
