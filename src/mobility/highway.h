#pragma once

/// \file highway.h
/// Straight-road scenario for the drive-thru and Infostation studies: a
/// platoon crosses a highway with access points placed every `apSpacing`
/// metres (the Infostation model of Small & Haas). Used by the speed-sweep
/// ablation and the file-download / AP-density experiment (paper §6).

#include <cstdint>
#include <memory>
#include <vector>

#include "geom/polyline.h"
#include "mobility/mobility_model.h"
#include "mobility/path_mobility.h"
#include "sim/time.h"
#include "util/rng.h"

namespace vanet::mobility {

/// Tunables for the highway scenario.
struct HighwayConfig {
  double roadLengthMetres = 6000.0;
  double maxSegment = 25.0;

  int apCount = 5;
  double firstApArc = 500.0;    ///< arc position of the first AP
  double apSpacing = 1000.0;    ///< distance between consecutive APs
  double apOffset = 12.0;       ///< lateral AP distance from the road

  int carCount = 3;
  double speedMps = 25.0;       ///< 90 km/h default
  double edgeSpeedSigma = 0.05;
  double gapSeconds = 1.5;      ///< highway headway (~37 m at 90 km/h)
  double gapJitterSigma = 0.3;
  double delayNoiseSigma = 0.08;
  double tailSeconds = 10.0;
};

/// One traversal of the highway.
struct HighwayRound {
  geom::Polyline path;
  std::vector<geom::Vec2> apPositions;
  std::vector<std::unique_ptr<SchedulePathMobility>> cars;  ///< [0] leads
  sim::SimTime roundEnd;
};

/// Deterministic factory mirroring UrbanLoopScenario.
class HighwayScenario {
 public:
  HighwayScenario(HighwayConfig config, std::uint64_t masterSeed);

  HighwayRound makeRound(int roundIndex) const;

  const HighwayConfig& config() const noexcept { return config_; }
  const geom::Polyline& path() const noexcept { return path_; }

  /// Arc position of AP `i` along the road.
  double apArc(int i) const;

 private:
  HighwayConfig config_;
  std::uint64_t masterSeed_;
  geom::Polyline path_;
};

}  // namespace vanet::mobility
