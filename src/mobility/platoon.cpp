#include "mobility/platoon.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace vanet::mobility {

geom::Polyline subdivide(const geom::Polyline& path, double maxSegment) {
  VANET_ASSERT(maxSegment > 0.0, "maxSegment must be positive");
  std::vector<geom::Vec2> out;
  const auto& verts = path.vertices();
  for (std::size_t i = 0; i + 1 < verts.size(); ++i) {
    const geom::Vec2 a = verts[i];
    const geom::Vec2 b = verts[i + 1];
    const double len = geom::distance(a, b);
    const auto pieces = static_cast<std::size_t>(std::ceil(len / maxSegment));
    for (std::size_t k = 0; k < pieces; ++k) {
      out.push_back(geom::lerp(a, b, static_cast<double>(k) / static_cast<double>(pieces)));
    }
  }
  out.push_back(verts.back());
  return geom::Polyline{std::move(out)};
}

std::vector<sim::SimTime> leaderVertexTimes(const geom::Polyline& path,
                                            double baseSpeedMps,
                                            double edgeSpeedSigma,
                                            sim::SimTime departure, Rng& rng) {
  VANET_ASSERT(baseSpeedMps > 0.0, "speed must be positive");
  std::vector<sim::SimTime> times;
  times.reserve(path.vertices().size());
  times.push_back(departure);
  double t = departure.toSeconds();
  for (std::size_t i = 1; i < path.vertices().size(); ++i) {
    const double len = path.arcAtVertex(i) - path.arcAtVertex(i - 1);
    const double factor = std::exp(rng.normal(0.0, edgeSpeedSigma));
    t += len / (baseSpeedMps * factor);
    times.push_back(sim::SimTime::seconds(t));
  }
  return times;
}

std::vector<sim::SimTime> followerVertexTimes(
    const geom::Polyline& path, const std::vector<sim::SimTime>& reference,
    const DelayProfile& delay, double delayNoiseSigma, Rng& rng) {
  VANET_ASSERT(reference.size() == path.vertices().size(),
               "reference schedule must cover every vertex");
  std::vector<sim::SimTime> times;
  times.reserve(reference.size());
  // Minimum headway keeps schedules strictly monotone after noise repair.
  const sim::SimTime minStep = sim::SimTime::millis(1.0);
  for (std::size_t i = 0; i < reference.size(); ++i) {
    const double arc = path.arcAtVertex(i);
    const double lag = delay(arc) + rng.normal(0.0, delayNoiseSigma);
    sim::SimTime t = reference[i] + sim::SimTime::seconds(std::max(0.05, lag));
    if (!times.empty() && t <= times.back()) {
      t = times.back() + minStep;
    }
    times.push_back(t);
  }
  return times;
}

DelayProfile constantDelay(double seconds) {
  return [seconds](double) { return seconds; };
}

DelayProfile rampDelay(double startSeconds, double endSeconds, double fromArc,
                       double toArc) {
  VANET_ASSERT(toArc > fromArc, "ramp must span a positive arc range");
  return [=](double arc) {
    if (arc <= fromArc) return startSeconds;
    if (arc >= toArc) return endSeconds;
    const double f = (arc - fromArc) / (toArc - fromArc);
    return startSeconds + f * (endSeconds - startSeconds);
  };
}

}  // namespace vanet::mobility
