#pragma once

/// \file mobility_model.h
/// Interface mapping simulation time to node position. Mobility is
/// precomputed per experiment round (kinematic schedules), so queries are
/// pure and side-effect free.

#include "geom/vec2.h"
#include "sim/time.h"

namespace vanet::mobility {

/// Time -> position mapping for one node over one simulation run.
class MobilityModel {
 public:
  virtual ~MobilityModel() = default;

  /// Node position at time `t` (clamped to the model's defined range).
  virtual geom::Vec2 positionAt(sim::SimTime t) const = 0;

  /// Instantaneous speed in m/s at time `t` (0 outside the motion window).
  virtual double speedAt(sim::SimTime t) const = 0;
};

/// A node that never moves (access points, parked cars).
class StaticMobility final : public MobilityModel {
 public:
  explicit StaticMobility(geom::Vec2 position) noexcept : position_(position) {}

  geom::Vec2 positionAt(sim::SimTime) const override { return position_; }
  double speedAt(sim::SimTime) const override { return 0.0; }

 private:
  geom::Vec2 position_;
};

}  // namespace vanet::mobility
