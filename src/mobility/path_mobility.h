#pragma once

/// \file path_mobility.h
/// Mobility that follows a polyline according to a per-vertex arrival
/// schedule. Scenario builders (platoon, urban loop, highway) construct the
/// schedules; this class only interpolates them.

#include <vector>

#include "geom/polyline.h"
#include "mobility/mobility_model.h"

namespace vanet::mobility {

/// Follows `path`, reaching vertex `i` exactly at `vertexTimes[i]`.
///
/// Between vertices, arc length advances linearly in time (constant speed
/// per segment). Before the first time the node waits at the first vertex;
/// after the last it parks at the last vertex.
class SchedulePathMobility final : public MobilityModel {
 public:
  /// Requires `vertexTimes.size() == path.vertices().size()` and strictly
  /// increasing times.
  SchedulePathMobility(geom::Polyline path, std::vector<sim::SimTime> vertexTimes);

  geom::Vec2 positionAt(sim::SimTime t) const override;
  double speedAt(sim::SimTime t) const override;

  /// Arc length travelled at time `t` (clamped to [0, path length]).
  double arcAt(sim::SimTime t) const;

  /// Inverse of arcAt: the time the node crosses arc length `s` (clamped to
  /// the schedule's ends). Used to derive AP trigger instants.
  sim::SimTime timeAtArc(double s) const;

  const geom::Polyline& path() const noexcept { return path_; }
  sim::SimTime departureTime() const noexcept { return vertexTimes_.front(); }
  sim::SimTime arrivalTime() const noexcept { return vertexTimes_.back(); }

 private:
  /// Schedule segment containing `t` (vertexTimes_[seg] <= t <
  /// vertexTimes_[seg+1]); checks the cached hint before binary-searching.
  std::size_t timeSegmentAt(sim::SimTime t) const;

  geom::Polyline path_;
  std::vector<sim::SimTime> vertexTimes_;
  // Query-locality hints (mobility advances along the path, so successive
  // lookups almost always land on the same segment). Pure caches: hit or
  // miss, the interpolated values are bit-identical. Mutating them from
  // const accessors keeps the query API const; instances are not meant to
  // be queried from several threads at once (each simulated world owns
  // its mobility models and runs on one thread).
  mutable std::size_t timeHint_ = 0;
  mutable std::size_t pointHint_ = 0;
};

}  // namespace vanet::mobility
