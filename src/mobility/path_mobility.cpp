#include "mobility/path_mobility.h"

#include <algorithm>

#include "util/assert.h"

namespace vanet::mobility {

SchedulePathMobility::SchedulePathMobility(geom::Polyline path,
                                           std::vector<sim::SimTime> vertexTimes)
    : path_(std::move(path)), vertexTimes_(std::move(vertexTimes)) {
  VANET_ASSERT(vertexTimes_.size() == path_.vertices().size(),
               "one arrival time per path vertex required");
  for (std::size_t i = 1; i < vertexTimes_.size(); ++i) {
    VANET_ASSERT(vertexTimes_[i] > vertexTimes_[i - 1],
                 "vertex times must be strictly increasing");
  }
}

std::size_t SchedulePathMobility::timeSegmentAt(sim::SimTime t) const {
  // The hint names the containing interval iff vertexTimes_[h] <= t <
  // vertexTimes_[h+1] -- the segment upper_bound selects (times are
  // strictly increasing), so hit or miss the caller sees the same index.
  const std::size_t h = timeHint_;
  if (h + 1 < vertexTimes_.size() && vertexTimes_[h] <= t &&
      t < vertexTimes_[h + 1]) {
    return h;
  }
  const auto it = std::upper_bound(vertexTimes_.begin(), vertexTimes_.end(), t);
  const auto seg = static_cast<std::size_t>(it - vertexTimes_.begin()) - 1;
  timeHint_ = seg;
  return seg;
}

double SchedulePathMobility::arcAt(sim::SimTime t) const {
  if (t <= vertexTimes_.front()) return 0.0;
  if (t >= vertexTimes_.back()) return path_.length();
  // Find the segment whose time interval contains t.
  const std::size_t seg = timeSegmentAt(t);
  const double t0 = vertexTimes_[seg].toSeconds();
  const double t1 = vertexTimes_[seg + 1].toSeconds();
  const double s0 = path_.arcAtVertex(seg);
  const double s1 = path_.arcAtVertex(seg + 1);
  const double frac = (t.toSeconds() - t0) / (t1 - t0);
  return s0 + frac * (s1 - s0);
}

geom::Vec2 SchedulePathMobility::positionAt(sim::SimTime t) const {
  return path_.pointAt(arcAt(t), pointHint_);
}

double SchedulePathMobility::speedAt(sim::SimTime t) const {
  if (t <= vertexTimes_.front() || t >= vertexTimes_.back()) return 0.0;
  const std::size_t seg = timeSegmentAt(t);
  const double dt =
      (vertexTimes_[seg + 1] - vertexTimes_[seg]).toSeconds();
  const double ds = path_.arcAtVertex(seg + 1) - path_.arcAtVertex(seg);
  return ds / dt;
}

sim::SimTime SchedulePathMobility::timeAtArc(double s) const {
  const double clamped = std::clamp(s, 0.0, path_.length());
  // Find the vertex pair bracketing the arc length.
  std::size_t seg = 0;
  while (seg + 2 < vertexTimes_.size() && path_.arcAtVertex(seg + 1) < clamped) {
    ++seg;
  }
  const double s0 = path_.arcAtVertex(seg);
  const double s1 = path_.arcAtVertex(seg + 1);
  const double frac = s1 > s0 ? (clamped - s0) / (s1 - s0) : 0.0;
  const double t0 = vertexTimes_[seg].toSeconds();
  const double t1 = vertexTimes_[seg + 1].toSeconds();
  return sim::SimTime::seconds(t0 + frac * (t1 - t0));
}

}  // namespace vanet::mobility
