#pragma once

/// \file platoon.h
/// Builders that turn driver profiles into per-vertex arrival schedules for
/// a platoon of cars following the same path. The leader's schedule comes
/// from a noisy speed profile; followers are expressed as arc-dependent
/// time lags behind the leader (which is how the paper's corner-C
/// convergence between car 2 and car 3 is modelled).

#include <functional>
#include <vector>

#include "geom/polyline.h"
#include "mobility/path_mobility.h"
#include "sim/time.h"
#include "util/rng.h"

namespace vanet::mobility {

/// Arc-dependent time lag (seconds) of a follower behind the reference car.
/// Receives the arc length of the vertex being scheduled.
using DelayProfile = std::function<double(double arc)>;

/// Subdivides a polyline so no segment exceeds `maxSegment` metres.
/// Shorter segments give the per-edge speed noise a finer grain.
geom::Polyline subdivide(const geom::Polyline& path, double maxSegment);

/// Arrival times for the platoon leader.
///
/// Each edge is traversed at `baseSpeed * f` where `f` is log-normal-ish
/// noise: exp(N(0, edgeSpeedSigma)). `departure` is the time at vertex 0.
std::vector<sim::SimTime> leaderVertexTimes(const geom::Polyline& path,
                                            double baseSpeedMps,
                                            double edgeSpeedSigma,
                                            sim::SimTime departure, Rng& rng);

/// Arrival times for a follower expressed as a lag behind `reference`.
///
/// `time[i] = reference[i] + delay(arc_i) + N(0, delayNoiseSigma)`, then
/// monotonicity is enforced (a car cannot arrive at vertex i+1 before
/// vertex i). The delay profile must stay positive if overtaking is to be
/// excluded; small noise excursions are tolerated and repaired.
std::vector<sim::SimTime> followerVertexTimes(const geom::Polyline& path,
                                              const std::vector<sim::SimTime>& reference,
                                              const DelayProfile& delay,
                                              double delayNoiseSigma, Rng& rng);

/// A constant delay profile (steady gap in seconds).
DelayProfile constantDelay(double seconds);

/// A delay profile that interpolates linearly from `startSeconds` at
/// `fromArc` to `endSeconds` at `toArc`, constant outside that range.
/// Models a car closing (or opening) a gap along a stretch of road.
DelayProfile rampDelay(double startSeconds, double endSeconds, double fromArc,
                       double toArc);

}  // namespace vanet::mobility
