#include "mobility/highway.h"

#include <algorithm>

#include "mobility/platoon.h"
#include "util/assert.h"

namespace vanet::mobility {

HighwayScenario::HighwayScenario(HighwayConfig config, std::uint64_t masterSeed)
    : config_(config), masterSeed_(masterSeed),
      path_(subdivide(geom::Polyline{{{0.0, 0.0}, {config.roadLengthMetres, 0.0}}},
                      config.maxSegment)) {
  VANET_ASSERT(config_.apCount >= 1, "need at least one AP");
  VANET_ASSERT(config_.carCount >= 1, "need at least one car");
  VANET_ASSERT(config_.firstApArc +
                       (config_.apCount - 1) * config_.apSpacing <=
                   config_.roadLengthMetres,
               "APs must fit on the road");
}

double HighwayScenario::apArc(int i) const {
  VANET_ASSERT(i >= 0 && i < config_.apCount, "AP index out of range");
  return config_.firstApArc + static_cast<double>(i) * config_.apSpacing;
}

HighwayRound HighwayScenario::makeRound(int roundIndex) const {
  Rng roundRng = Rng{masterSeed_}.child("highway-round").child(
      static_cast<std::uint64_t>(roundIndex));

  HighwayRound round{path_, {}, {}, sim::SimTime::zero()};
  round.apPositions.reserve(static_cast<std::size_t>(config_.apCount));
  for (int i = 0; i < config_.apCount; ++i) {
    round.apPositions.push_back(
        geom::Vec2{apArc(i), -config_.apOffset});
  }

  Rng leaderRng = roundRng.child("leader");
  const sim::SimTime departure = sim::SimTime::seconds(1.0);
  auto leaderTimes = leaderVertexTimes(path_, config_.speedMps,
                                       config_.edgeSpeedSigma, departure,
                                       leaderRng);
  std::vector<sim::SimTime> referenceTimes = leaderTimes;
  round.cars.push_back(
      std::make_unique<SchedulePathMobility>(path_, leaderTimes));

  for (int car = 1; car < config_.carCount; ++car) {
    Rng carRng = roundRng.child("car").child(static_cast<std::uint64_t>(car));
    const double gap = std::max(
        0.5, config_.gapSeconds + carRng.normal(0.0, config_.gapJitterSigma));
    auto times = followerVertexTimes(path_, referenceTimes, constantDelay(gap),
                                     config_.delayNoiseSigma, carRng);
    referenceTimes = times;
    round.cars.push_back(std::make_unique<SchedulePathMobility>(path_, times));
  }

  round.roundEnd = round.cars.back()->arrivalTime() +
                   sim::SimTime::seconds(config_.tailSeconds);
  return round;
}

}  // namespace vanet::mobility
