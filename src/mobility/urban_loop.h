#pragma once

/// \file urban_loop.h
/// The paper's Figure-2 testbed as a parametric scenario: a rectangular
/// urban lap with one AP behind the kerb of the covered street, three (by
/// default) cars lapping in a platoon at ~20 km/h, and the corner-C
/// behaviour that lets car 3 close on car 2 along the covered street.
///
/// Lap geometry (width W = loopWidth, height H = loopHeight):
///
///   (0,H) ◀──────── return street ───────── (W,H)
///     │                                       ▲
///   approach                                exit side
///     ▼                                       │
///   (0,0) ────── covered street ──────────▶ (W,0)
///              AP at (W/2, -apSetback)
///
/// Cars start at (0,H), far from the AP and blocked by the building
/// corner. Corner C is (0,0): car 3 exits it close behind car 2 and
/// converges further along the covered street, correlating their
/// reception near the end of the coverage area exactly as the paper
/// reports. Arc length runs 0 at (0,H), H at corner C, H+W at the exit
/// corner (W,0), and 2H+2W back at the start.
///
/// The testbed's cars lapped continuously for 30 rounds, so a round's
/// dark area is driven at normal platoon gaps, never parked. Each
/// simulated round therefore spans TWO laps of path: the AP transmits
/// during lap one, and the round ends as the leader approaches corner C
/// again on lap two (where the next round's coverage would begin). This
/// keeps every car moving -- and keeps inter-car distances honest --
/// through the whole Cooperative-ARQ phase.

#include <cstdint>
#include <memory>
#include <vector>

#include "geom/polyline.h"
#include "mobility/mobility_model.h"
#include "mobility/path_mobility.h"
#include "sim/time.h"
#include "util/rng.h"

namespace vanet::mobility {

/// Tunables for the urban-loop scenario. Defaults reproduce the paper.
struct UrbanLoopConfig {
  double loopWidth = 160.0;   ///< metres, covered street length
  double loopHeight = 90.0;   ///< metres, side streets
  double maxSegment = 10.0;   ///< polyline subdivision grain
  double apSetback = 8.0;     ///< AP distance behind the kerb (in-building)

  int carCount = 3;            ///< platoon size (paper: 3)
  double baseSpeedMps = 5.56;  ///< ~20 km/h
  double edgeSpeedSigma = 0.10;   ///< per-edge log-speed noise
  double startJitterSigma = 1.2;  ///< per-round departure jitter, seconds

  double gapSeconds = 4.0;        ///< nominal inter-car headway (~22 m)
  double gapJitterSigma = 0.7;    ///< per-round headway jitter, seconds
  double delayNoiseSigma = 0.15;  ///< per-vertex headway noise, seconds

  /// Car 3 closes on car 2 along the covered street (corner-C effect):
  /// its headway behind car 2 ramps from `gapSeconds` down to this value
  /// by the end of the covered street. Set equal to gapSeconds to disable.
  double cornerCCloseGapSeconds = 0.9;

  /// Metres before corner C at which AP flows begin numbering each round,
  /// so sequence numbers align across rounds like the paper's packet
  /// numbers (slightly before any car can decode).
  double flowTriggerLeadMetres = 20.0;

  /// Extra simulated time after the leader re-reaches the flow trigger on
  /// lap two, as slack for in-flight recoveries.
  double tailSeconds = 5.0;
};

/// Everything the experiment layer needs to wire one round.
struct UrbanRound {
  geom::Polyline path;  ///< two subdivided laps (cars never park mid-round)
  geom::Vec2 apPosition;
  std::vector<std::unique_ptr<SchedulePathMobility>> cars;  ///< [0]=car 1
  sim::SimTime flowStart;  ///< AP begins flow numbering (lap one)
  sim::SimTime flowStop;   ///< AP stops before lap-two coverage
  sim::SimTime roundEnd;   ///< stop simulating here
};

/// Deterministic factory: round `k` of seed `s` is always the same lap.
class UrbanLoopScenario {
 public:
  UrbanLoopScenario(UrbanLoopConfig config, std::uint64_t masterSeed);

  /// Builds the mobility and timing for one round (lap).
  UrbanRound makeRound(int roundIndex) const;

  const UrbanLoopConfig& config() const noexcept { return config_; }

  /// The (subdivided) two-lap round polyline shared by every round.
  const geom::Polyline& path() const noexcept { return path_; }

  /// Arc length of one lap of the block.
  double lapLength() const noexcept {
    return 2.0 * (config_.loopWidth + config_.loopHeight);
  }

  geom::Vec2 apPosition() const noexcept {
    return {config_.loopWidth / 2.0, -config_.apSetback};
  }

  /// Arc range of the covered street.
  double coveredStreetBeginArc() const noexcept { return config_.loopHeight; }
  double coveredStreetEndArc() const noexcept {
    return config_.loopHeight + config_.loopWidth;
  }

 private:
  UrbanLoopConfig config_;
  std::uint64_t masterSeed_;
  geom::Polyline path_;
};

}  // namespace vanet::mobility
