#include "mobility/urban_loop.h"

#include <algorithm>
#include <string>

#include "mobility/platoon.h"
#include "util/assert.h"

namespace vanet::mobility {
namespace {

/// Two consecutive laps of the block, so cars drive through the whole
/// Cooperative-ARQ phase instead of parking at the lap terminus.
geom::Polyline makeTwoLaps(const UrbanLoopConfig& config) {
  const double w = config.loopWidth;
  const double h = config.loopHeight;
  const std::vector<geom::Vec2> lap{{0.0, h},
                                    {0.0, 0.0},
                                    {w, 0.0},
                                    {w, h},
                                    {0.0, h}};
  std::vector<geom::Vec2> twoLaps = lap;
  twoLaps.insert(twoLaps.end(), lap.begin() + 1, lap.end());
  return subdivide(geom::Polyline{std::move(twoLaps)}, config.maxSegment);
}

}  // namespace

UrbanLoopScenario::UrbanLoopScenario(UrbanLoopConfig config,
                                     std::uint64_t masterSeed)
    : config_(config), masterSeed_(masterSeed), path_(makeTwoLaps(config)) {
  VANET_ASSERT(config_.carCount >= 1, "need at least one car");
  VANET_ASSERT(config_.gapSeconds > 0.0, "headway must be positive");
  VANET_ASSERT(config_.flowTriggerLeadMetres < config_.loopHeight,
               "flow trigger must lie on the approach street");
}

UrbanRound UrbanLoopScenario::makeRound(int roundIndex) const {
  Rng roundRng = Rng{masterSeed_}.child("urban-round").child(
      static_cast<std::uint64_t>(roundIndex));

  UrbanRound round{path_,   apPosition(),        {},
                   sim::SimTime::zero(), sim::SimTime::zero(),
                   sim::SimTime::zero()};

  // Leader departs at a jittered instant after t=0 (never before zero).
  Rng leaderRng = roundRng.child("leader");
  const double departJitter =
      std::max(0.0, 2.0 + leaderRng.normal(0.0, config_.startJitterSigma));
  const sim::SimTime departure = sim::SimTime::seconds(departJitter);
  auto leaderTimes = leaderVertexTimes(path_, config_.baseSpeedMps,
                                       config_.edgeSpeedSigma, departure,
                                       leaderRng);
  auto leader = std::make_unique<SchedulePathMobility>(path_, leaderTimes);
  const double triggerArc =
      coveredStreetBeginArc() - config_.flowTriggerLeadMetres;
  round.flowStart = leader->timeAtArc(triggerArc);
  // The AP keeps transmitting until the round ends: the leader reaching
  // the lap-two trigger point, where the next round's cycle would begin.
  round.flowStop = leader->timeAtArc(lapLength() + triggerArc);
  round.roundEnd =
      round.flowStop + sim::SimTime::seconds(config_.tailSeconds);
  round.cars.push_back(std::move(leader));

  // Followers: car i trails car i-1. Car 3's headway behind car 2 ramps
  // down along the covered street (corner-C convergence); every other pair
  // keeps a constant (jittered) headway.
  std::vector<sim::SimTime> referenceTimes = leaderTimes;
  for (int car = 1; car < config_.carCount; ++car) {
    Rng carRng = roundRng.child("car").child(static_cast<std::uint64_t>(car));
    const double gap = std::max(
        0.8, config_.gapSeconds + carRng.normal(0.0, config_.gapJitterSigma));
    DelayProfile profile;
    if (car == 2 && config_.cornerCCloseGapSeconds < config_.gapSeconds) {
      const double closeGap = std::max(
          0.4, config_.cornerCCloseGapSeconds + carRng.normal(0.0, 0.15));
      // Converge along the covered street, then fall back over the rest of
      // the lap as car 3 gives the slow car-2 driver room again.
      const double streetBegin = coveredStreetBeginArc();
      const double streetEnd = coveredStreetEndArc();
      const double reopenArc = std::min(path_.length(), streetEnd + 120.0);
      const DelayProfile closing =
          rampDelay(gap, closeGap, streetBegin, streetEnd);
      const DelayProfile reopening =
          rampDelay(closeGap, gap, streetEnd, reopenArc);
      profile = [closing, reopening, streetEnd](double arc) {
        return arc <= streetEnd ? closing(arc) : reopening(arc);
      };
    } else {
      profile = constantDelay(gap);
    }
    auto times = followerVertexTimes(path_, referenceTimes, profile,
                                     config_.delayNoiseSigma, carRng);
    referenceTimes = times;
    round.cars.push_back(std::make_unique<SchedulePathMobility>(path_, times));
  }
  return round;
}

}  // namespace vanet::mobility
