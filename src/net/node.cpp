#include "net/node.h"

namespace vanet::net {

Node::Node(sim::Simulator& sim, mac::RadioEnvironment& environment, NodeId id,
           const mobility::MobilityModel* mobility,
           mac::RadioConfig radioConfig, mac::MacConfig macConfig, Rng rng)
    : sim_(sim), id_(id), mobility_(mobility),
      radio_(sim, environment, id, mobility, radioConfig),
      mac_(sim, environment, radio_, macConfig, rng.child("mac")) {}

}  // namespace vanet::net
