#include "net/infostation.h"

#include <utility>

#include "util/assert.h"

namespace vanet::net {

InfostationServer::InfostationServer(Node& node, InfostationConfig config,
                                     TxObserver observer)
    : node_(node), config_(std::move(config)), observer_(std::move(observer)) {
  VANET_ASSERT(!config_.flows.empty(), "infostation needs at least one flow");
  VANET_ASSERT(config_.packetsPerSecondPerFlow > 0.0,
               "flow rate must be positive");
  VANET_ASSERT(config_.repeatCount >= 1, "repeatCount must be >= 1");
  const double totalRate =
      config_.packetsPerSecondPerFlow * static_cast<double>(config_.flows.size());
  interFrame_ = sim::SimTime::seconds(1.0 / totalRate);
}

void InfostationServer::start() {
  VANET_ASSERT(!started_, "infostation already started");
  started_ = true;
  node_.simulator().scheduleAt(config_.start, [this] { transmitTick(); });
}

SeqNo InfostationServer::seqForCounter(std::uint64_t packetCounter) const {
  const auto logical =
      static_cast<SeqNo>(packetCounter / static_cast<std::uint64_t>(config_.repeatCount));
  if (config_.cycleLength > 0) {
    // Cycling flows stay within [1, cycleLength]; firstSeq only sets the
    // phase (deployments stagger it per infostation so consecutive AP
    // passes serve complementary slices of the file).
    return 1 + (config_.firstSeq - 1 + logical) % config_.cycleLength;
  }
  return config_.firstSeq + logical;
}

SeqNo InfostationServer::nextSeq(FlowId flow) const {
  // Flow `flow` transmits on ticks where tick % flows == index(flow).
  for (std::size_t i = 0; i < config_.flows.size(); ++i) {
    if (config_.flows[i] == flow) {
      const std::uint64_t flowTicks =
          (tick_ + config_.flows.size() - 1 - i) / config_.flows.size();
      return seqForCounter(flowTicks);
    }
  }
  VANET_ASSERT(false, "unknown flow");
  return 0;
}

void InfostationServer::transmitTick() {
  if (node_.simulator().now() >= config_.stop) return;

  const std::size_t flowIdx = tick_ % config_.flows.size();
  const std::uint64_t flowTicks = tick_ / config_.flows.size();
  const FlowId flow = config_.flows[flowIdx];
  const SeqNo seq = seqForCounter(flowTicks);
  const int copy =
      static_cast<int>(flowTicks % static_cast<std::uint64_t>(config_.repeatCount));

  mac::Frame frame;
  frame.kind = mac::FrameKind::kData;
  frame.src = node_.id();
  frame.dst = kBroadcastId;
  frame.bytes = config_.payloadBytes;
  frame.payload = mac::DataPayload{flow, seq, copy};
  node_.mac().enqueue(std::move(frame), config_.mode);
  ++framesQueued_;
  if (observer_) {
    observer_(flow, seq, copy, node_.simulator().now());
  }

  ++tick_;
  node_.simulator().scheduleAfter(interFrame_, [this] { transmitTick(); });
}

}  // namespace vanet::net
