#pragma once

/// \file infostation.h
/// The access-point application: continuously transmits numbered packets
/// round-robin across one flow per car (the paper's AP sent three ICMP
/// streams of 5 x 1000-byte packets per second). Supports two extensions
/// used by the ablation studies:
///   * blind retransmissions (`repeatCount`), the future-work scheme of
///     paper §3.2 — each packet is sent `repeatCount` times within the
///     same channel budget, trading new-data rate for per-packet
///     reliability;
///   * file cycling (`cycleLength`), the Infostation download model — the
///     sequence space wraps so a car can fill gaps on a later AP pass.

#include <functional>
#include <vector>

#include "net/node.h"
#include "sim/time.h"
#include "util/types.h"

namespace vanet::net {

/// Configuration of one AP's transmission schedule.
struct InfostationConfig {
  std::vector<FlowId> flows;          ///< destination car ids
  double packetsPerSecondPerFlow = 5.0;
  int payloadBytes = 1000;
  channel::PhyMode mode = channel::PhyMode::kDsss1Mbps;
  sim::SimTime start{};               ///< first transmission instant
  sim::SimTime stop = sim::SimTime::max();
  int repeatCount = 1;                ///< blind retransmissions per packet
  SeqNo firstSeq = 1;
  SeqNo cycleLength = 0;              ///< >0: wrap sequence space (file mode)
};

/// Observer invoked on every transmitted data frame (copy 0 is the first
/// transmission of a sequence number).
using TxObserver =
    std::function<void(FlowId flow, SeqNo seq, int copy, sim::SimTime at)>;

/// AP-side data source. The total frame rate is
/// `packetsPerSecondPerFlow * flows.size()` regardless of `repeatCount`,
/// so retransmissions consume the same channel budget they would in a real
/// deployment.
class InfostationServer {
 public:
  InfostationServer(Node& node, InfostationConfig config,
                    TxObserver observer = nullptr);

  /// Schedules the transmission stream; call once.
  void start();

  /// Sequence number the given flow will use next.
  SeqNo nextSeq(FlowId flow) const;

  std::uint64_t framesQueued() const noexcept { return framesQueued_; }

 private:
  void transmitTick();
  SeqNo seqForCounter(std::uint64_t packetCounter) const;

  Node& node_;
  InfostationConfig config_;
  TxObserver observer_;
  sim::SimTime interFrame_{};
  std::uint64_t tick_ = 0;  // one frame per tick, round-robin over flows
  std::uint64_t framesQueued_ = 0;
  bool started_ = false;
};

}  // namespace vanet::net
