#pragma once

/// \file node.h
/// A network node: identity + mobility + radio + MAC, wired together. Cars
/// and access points are both Nodes; what differs is the application
/// attached on top (carq::CarqAgent for cars, net::InfostationServer for
/// APs).

#include <memory>

#include "mac/csma.h"
#include "mac/radio.h"
#include "mac/radio_environment.h"
#include "mobility/mobility_model.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/types.h"

namespace vanet::net {

/// Aggregates the per-node protocol stack. Non-copyable; nodes live for
/// one simulation run.
class Node {
 public:
  /// `mobility` must outlive the node. The node derives its own RNG
  /// streams (MAC backoff) from `rng`.
  Node(sim::Simulator& sim, mac::RadioEnvironment& environment, NodeId id,
       const mobility::MobilityModel* mobility, mac::RadioConfig radioConfig,
       mac::MacConfig macConfig, Rng rng);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const noexcept { return id_; }
  geom::Vec2 position() const { return radio_.position(); }

  mac::Radio& radio() noexcept { return radio_; }
  const mac::Radio& radio() const noexcept { return radio_; }
  mac::CsmaMac& mac() noexcept { return mac_; }
  const mac::CsmaMac& mac() const noexcept { return mac_; }
  const mobility::MobilityModel* mobility() const noexcept { return mobility_; }
  sim::Simulator& simulator() noexcept { return sim_; }

 private:
  sim::Simulator& sim_;
  NodeId id_;
  const mobility::MobilityModel* mobility_;
  mac::Radio radio_;
  mac::CsmaMac mac_;
};

}  // namespace vanet::net
