#pragma once

/// \file frame.h
/// Frame formats of the C-ARQ protocol family. The testbed ran in 802.11
/// monitor mode, so every protocol message is a raw link-layer broadcast;
/// frames here carry their logical payload directly (no serialisation) and
/// a byte size that drives airtime and error probability.

#include <cstdint>
#include <utility>
#include <variant>
#include <vector>

#include "util/types.h"

namespace vanet::mac {

/// Protocol frame kinds (paper §3).
enum class FrameKind {
  kData,      ///< AP -> cars: one numbered packet of a car's flow
  kHello,     ///< car broadcast: presence + cooperator list (order matters)
  kRequest,   ///< car broadcast: please resend these missing packets
  kCoopData,  ///< cooperator -> requester: a recovered packet
};

/// AP data packet addressed to the car with id == flow.
struct DataPayload {
  FlowId flow = 0;
  SeqNo seq = 0;
  int copy = 0;  ///< 0 = first transmission; >0 = blind AP retransmission
};

/// Periodic HELLO: `cooperators` is the sender's ordered cooperator list;
/// a node's position in this list is its response backoff order.
/// `bufferedMaxSeq` (window-gossip extension, off by default) advertises
/// the highest sequence number the sender holds per buffered flow, so a
/// destination that left coverage early learns how far its flow went.
struct HelloPayload {
  std::vector<NodeId> cooperators;
  std::vector<std::pair<FlowId, SeqNo>> bufferedMaxSeq;
};

/// Request for missing packets of the origin's own flow. The paper sends
/// one seq per REQUEST; batched mode (paper §3.3 optimisation) packs many.
struct RequestPayload {
  NodeId origin = 0;
  FlowId flow = 0;
  std::vector<SeqNo> seqs;
};

/// A buffered packet re-sent by a cooperator.
struct CoopDataPayload {
  NodeId helper = 0;
  FlowId flow = 0;
  SeqNo seq = 0;
};

/// One over-the-air frame. `bytes` is the MAC payload length used for
/// airtime and error-rate computations.
struct Frame {
  FrameKind kind = FrameKind::kData;
  NodeId src = 0;
  NodeId dst = kBroadcastId;  ///< all protocol frames are broadcast
  int bytes = 0;
  std::uint64_t frameId = 0;  ///< assigned by the radio environment
  std::variant<DataPayload, HelloPayload, RequestPayload, CoopDataPayload>
      payload;
};

/// Convenience accessors (assert on kind mismatch via std::get).
inline const DataPayload& dataOf(const Frame& f) {
  return std::get<DataPayload>(f.payload);
}
inline const HelloPayload& helloOf(const Frame& f) {
  return std::get<HelloPayload>(f.payload);
}
inline const RequestPayload& requestOf(const Frame& f) {
  return std::get<RequestPayload>(f.payload);
}
inline const CoopDataPayload& coopDataOf(const Frame& f) {
  return std::get<CoopDataPayload>(f.payload);
}

}  // namespace vanet::mac
