#include "mac/radio_environment.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "mac/airtime.h"
#include "mac/radio.h"
#include "obs/counters.h"
#include "util/assert.h"

namespace vanet::mac {
namespace {

/// How long finished transmissions are retained for overlap computations.
/// Must exceed the longest frame airtime (1500 B at 1 Mbps is ~12.5 ms).
constexpr sim::SimTime kOverlapWindow = sim::SimTime::millis(50.0);

double dbmToMilliwatt(double dbm) noexcept { return std::pow(10.0, dbm / 10.0); }
double milliwattToDbm(double mw) noexcept {
  return 10.0 * std::log10(std::max(mw, 1e-15));
}

}  // namespace

const RadioEnvironment::PlannedRx* RadioEnvironment::ActiveTx::planFor(
    const Radio* rx) const {
  for (const PlannedRx& plan : plans) {
    if (plan.rx == rx) return &plan;
  }
  return nullptr;
}

RadioEnvironment::RadioEnvironment(sim::Simulator& sim, channel::LinkModel& link,
                                   Rng rng)
    : sim_(sim), link_(link), rng_(rng) {}

void RadioEnvironment::attach(Radio* radio) {
  VANET_ASSERT(radio != nullptr, "cannot attach a null radio");
  radios_.push_back(radio);
}

void RadioEnvironment::detach(Radio* radio) {
  std::erase(radios_, radio);
  // Forget any planned delivery to the detached radio.
  for (auto& tx : active_) {
    std::erase_if(tx->plans,
                  [radio](const PlannedRx& p) { return p.rx == radio; });
  }
}

sim::SimTime RadioEnvironment::beginTransmission(Radio& src, Frame frame,
                                                 channel::PhyMode mode) {
  auto tx = std::make_shared<ActiveTx>();
  tx->id = nextFrameId_++;
  tx->src = src.id();
  frame.frameId = tx->id;
  tx->frame = std::move(frame);
  tx->mode = mode;
  tx->start = sim_.now();
  tx->end = sim_.now() + frameAirtime(mode, tx->frame.bytes);

  const geom::Vec2 txPos = src.position();
  tx->plans.reserve(radios_.size());
  for (Radio* rx : radios_) {
    if (rx == &src) continue;
    OBS_COUNT("mac.link_evaluations");
    const double mean = link_.meanRxPowerDbm(src.id(), txPos, src.txPowerDbm(),
                                             rx->id(), rx->position());
    const double faded = link_.fadedRxPowerDbm(mean, rng_);
    tx->plans.push_back(PlannedRx{rx, mean, faded});
  }

  active_.push_back(tx);
  ++stats_.framesTransmitted;
  sim_.scheduleAt(tx->end, [this, tx] { finalize(tx); });
  return tx->end;
}

double RadioEnvironment::interferenceDbmAt(const Radio* rx,
                                           const ActiveTx& target) const {
  double totalMw = 0.0;
  const auto accumulate = [&](const ActiveTx& other) {
    if (other.id == target.id) return;
    if (other.start >= target.end || target.start >= other.end) return;
    if (const PlannedRx* plan = other.planFor(rx)) {
      totalMw += dbmToMilliwatt(plan->fadedDbm);
    }
  };
  for (const auto& other : active_) accumulate(*other);
  for (const auto& other : recent_) accumulate(*other);
  return totalMw > 0.0 ? milliwattToDbm(totalMw)
                       : -std::numeric_limits<double>::infinity();
}

void RadioEnvironment::pruneRecent() {
  const sim::SimTime horizon = sim_.now() - kOverlapWindow;
  std::erase_if(recent_,
                [horizon](const auto& tx) { return tx->end < horizon; });
}

void RadioEnvironment::finalize(const std::shared_ptr<ActiveTx>& tx) {
  // Move from in-flight to recent before evaluating receivers, so the frame
  // no longer contributes to carrier sensing but still counts as
  // interference for overlapping frames.
  std::erase(active_, tx);
  recent_.push_back(tx);
  pruneRecent();

  const channel::LinkBudget& budget = link_.budget();
  const int bits = frameBits(tx->frame.bytes);
  for (const PlannedRx& plan : tx->plans) {
    Radio* rx = plan.rx;
    if (rx->transmittedDuring(tx->start, tx->end)) {
      ++stats_.framesHalfDuplexMissed;
      OBS_COUNT("mac.frames_dropped");
      continue;
    }
    if (plan.fadedDbm < budget.sensitivityDbm) {
      ++stats_.framesBelowSensitivity;
      OBS_COUNT("mac.frames_dropped");
      continue;
    }
    const double interferenceDbm = interferenceDbmAt(rx, *tx);
    const double noiseMw = dbmToMilliwatt(budget.noiseFloorDbm);
    const double interferenceMw = std::isinf(interferenceDbm)
                                      ? 0.0
                                      : dbmToMilliwatt(interferenceDbm);
    const double sinrDb =
        plan.fadedDbm - milliwattToDbm(noiseMw + interferenceMw);
    if (interferenceMw > 0.0 && sinrDb < budget.captureThresholdDb) {
      ++stats_.framesCollided;
      OBS_COUNT("mac.frames_dropped");
      continue;
    }
    const double pSuccess = link_.successProbability(tx->mode, sinrDb, bits);
    if (!rng_.bernoulli(pSuccess)) {
      ++stats_.framesChannelError;
      OBS_COUNT("mac.frames_dropped");
      // The frame was detected (preamble robust, above sensitivity) but
      // the payload failed: radios that opted in receive it with its
      // SINR so they can soft-combine copies (C-ARQ/FC).
      if (rx->wantsCorruptFrames()) {
        ++stats_.framesCorruptDelivered;
        rx->onFrameCorrupted(tx->frame,
                             RxInfo{tx->src, plan.fadedDbm, sinrDb, sim_.now()});
      }
      continue;
    }
    if (link_.burstLoss(tx->src, rx->id(), sim_.now(),
                        static_cast<int>(tx->frame.kind))) {
      ++stats_.framesBurstLost;
      OBS_COUNT("mac.frames_dropped");
      continue;
    }
    ++stats_.framesDelivered;
    OBS_COUNT("mac.frames_delivered");
    rx->onFrameDelivered(tx->frame,
                         RxInfo{tx->src, plan.fadedDbm, sinrDb, sim_.now()});
  }
}

bool RadioEnvironment::channelBusy(const Radio& sensor) const {
  if (sensor.transmitting()) return true;
  const double threshold = link_.budget().carrierSenseDbm;
  for (const auto& tx : active_) {
    if (tx->src == sensor.id()) continue;
    if (const PlannedRx* plan = tx->planFor(&sensor)) {
      if (plan->meanDbm >= threshold) return true;
    }
  }
  return false;
}

sim::SimTime RadioEnvironment::channelBusyUntil(const Radio& sensor) const {
  sim::SimTime until = sim_.now();
  if (sensor.transmitting()) until = std::max(until, sensor.transmitUntil());
  const double threshold = link_.budget().carrierSenseDbm;
  for (const auto& tx : active_) {
    if (tx->src == sensor.id()) continue;
    if (const PlannedRx* plan = tx->planFor(&sensor)) {
      if (plan->meanDbm >= threshold) until = std::max(until, tx->end);
    }
  }
  return until;
}

}  // namespace vanet::mac
