#include "mac/radio_environment.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "mac/airtime.h"
#include "mac/radio.h"
#include "obs/counters.h"
#include "util/assert.h"
#include "util/vmath.h"

namespace vanet::mac {
namespace {

/// How long finished transmissions are retained for overlap computations.
/// Must exceed the longest frame airtime (1500 B at 1 Mbps is ~12.5 ms).
constexpr sim::SimTime kOverlapWindow = sim::SimTime::millis(50.0);

// dB <-> mW through the shared vmath helpers (one kernel, one documented
// 1e-15 floor) instead of per-call std::pow / std::log10.
double dbmToMilliwatt(double dbm) noexcept { return vmath::dbToLinear(dbm); }
double milliwattToDbm(double mw) noexcept { return vmath::linearToDb(mw); }

}  // namespace

const RadioEnvironment::PlannedRx* RadioEnvironment::ActiveTx::planFor(
    const Radio* rx) const {
  const std::size_t slot = rx->envSlot();
  if (slot >= planBySlot.size()) return nullptr;  // attached after planning
  const std::int32_t idx = planBySlot[slot];
  return idx >= 0 ? &plans[static_cast<std::size_t>(idx)] : nullptr;
}

void RadioEnvironment::ActiveTx::rebuildSlotIndex(std::size_t slotCount) {
  planBySlot.assign(slotCount, -1);
  for (std::size_t i = 0; i < plans.size(); ++i) {
    planBySlot[plans[i].rx->envSlot()] = static_cast<std::int32_t>(i);
  }
}

RadioEnvironment::RadioEnvironment(sim::Simulator& sim, channel::LinkModel& link,
                                   Rng rng)
    : sim_(sim), link_(link), rng_(rng) {}

void RadioEnvironment::attach(Radio* radio) {
  VANET_ASSERT(radio != nullptr, "cannot attach a null radio");
  radio->setEnvSlot(radios_.size());
  radios_.push_back(radio);
}

void RadioEnvironment::detach(Radio* radio) {
  std::erase(radios_, radio);
  for (std::size_t slot = 0; slot < radios_.size(); ++slot) {
    radios_[slot]->setEnvSlot(slot);
  }
  // Forget any planned delivery to the detached radio and re-key the
  // surviving plans against the renumbered slots (recent_ records are
  // still consulted by interference lookups of *other* receivers).
  const auto scrub = [&](ActiveTx* tx) {
    std::erase_if(tx->plans,
                  [radio](const PlannedRx& p) { return p.rx == radio; });
    tx->rebuildSlotIndex(radios_.size());
  };
  for (ActiveTx* tx : active_) scrub(tx);
  for (ActiveTx* tx : recent_) scrub(tx);
}

RadioEnvironment::ActiveTx* RadioEnvironment::acquireTx() {
  if (!freeTx_.empty()) {
    ActiveTx* tx = freeTx_.back();
    freeTx_.pop_back();
    tx->plans.clear();  // keeps capacity
    return tx;
  }
  pool_.push_back(std::make_unique<ActiveTx>());
  return pool_.back().get();
}

sim::SimTime RadioEnvironment::beginTransmission(Radio& src, Frame frame,
                                                 channel::PhyMode mode) {
  ActiveTx* tx = acquireTx();
  tx->id = nextFrameId_++;
  tx->src = src.id();
  frame.frameId = tx->id;
  tx->frame = std::move(frame);
  tx->mode = mode;
  tx->start = sim_.now();
  tx->end = sim_.now() + frameAirtime(mode, tx->frame.bytes);

  // Gather every other radio into the struct-of-arrays batch (receiver
  // order = attach order, as the scalar loop iterated), plan all links in
  // staged passes, then scatter into the per-transmission plan records.
  const geom::Vec2 txPos = src.position();
  batch_.clear();
  for (Radio* rx : radios_) {
    if (rx == &src) continue;
    batch_.add(rx->id(), rx->position());
  }
  OBS_COUNT_N("mac.link_evaluations", batch_.size());
  batch_.prepare();
  link_.planBatch(src.id(), txPos, src.txPowerDbm(), batch_, rng_);

  tx->plans.reserve(batch_.size());
  tx->planBySlot.assign(radios_.size(), -1);
  std::size_t i = 0;
  for (Radio* rx : radios_) {
    if (rx == &src) continue;
    tx->planBySlot[rx->envSlot()] =
        static_cast<std::int32_t>(tx->plans.size());
    tx->plans.push_back(
        PlannedRx{rx, batch_.meanDbm()[i], batch_.fadedDbm()[i]});
    ++i;
  }

  active_.push_back(tx);
  // Wake consolidated-backoff MACs now that the sensed-busy state may
  // have changed. Snapshot first: every listener removes itself from
  // mediumListeners_ while reacting.
  if (!mediumListeners_.empty()) {
    listenerScratch_ = mediumListeners_;
    for (MediumActivityListener* listener : listenerScratch_) {
      listener->onMediumActivity();
    }
  }
  ++stats_.framesTransmitted;
  // Raw-pointer capture: fits std::function's small buffer (no per-event
  // allocation). The pool owns `tx` for the environment's lifetime, and
  // the record cannot be recycled before this event runs (recycling only
  // happens once the record ages out of recent_, 50 ms *after* delivery).
  sim_.scheduleAt(tx->end, [this, tx] { deliver(tx); });
  return tx->end;
}

double RadioEnvironment::interferenceDbmAt(const Radio* rx,
                                           const ActiveTx& target) const {
  double totalMw = 0.0;
  const auto accumulate = [&](const ActiveTx& other) {
    if (other.id == target.id) return;
    if (other.start >= target.end || target.start >= other.end) return;
    if (const PlannedRx* plan = other.planFor(rx)) {
      totalMw += dbmToMilliwatt(plan->fadedDbm);
    }
  };
  for (const ActiveTx* other : active_) accumulate(*other);
  for (const ActiveTx* other : recent_) accumulate(*other);
  return totalMw > 0.0 ? milliwattToDbm(totalMw)
                       : -std::numeric_limits<double>::infinity();
}

double RadioEnvironment::interferenceDbmFromOverlap(const Radio* rx) const {
  // Same accumulation (and order: active_ then recent_) as
  // interferenceDbmAt, over the overlap set hoisted once per delivery.
  double totalMw = 0.0;
  for (const ActiveTx* other : overlap_) {
    if (const PlannedRx* plan = other->planFor(rx)) {
      totalMw += dbmToMilliwatt(plan->fadedDbm);
    }
  }
  return totalMw > 0.0 ? milliwattToDbm(totalMw)
                       : -std::numeric_limits<double>::infinity();
}

void RadioEnvironment::pruneRecent() {
  const sim::SimTime horizon = sim_.now() - kOverlapWindow;
  std::erase_if(recent_, [&](ActiveTx* tx) {
    if (tx->end >= horizon) return false;
    freeTx_.push_back(tx);  // recycle: no pending event references it
    return true;
  });
}

void RadioEnvironment::deliver(ActiveTx* tx) {
  // Move from in-flight to recent before evaluating receivers, so the frame
  // no longer contributes to carrier sensing but still counts as
  // interference for overlapping frames.
  std::erase(active_, tx);
  recent_.push_back(tx);
  pruneRecent();

  // Batch-occupancy histogram: how many receiver plans this delivery
  // processes at once, i.e. how full the SIMD lanes of the batched
  // pipeline run. Visible in any campaign's counter snapshot.
  {
    const std::size_t occupancy = tx->plans.size();
    if (occupancy <= 1) {
      OBS_COUNT("mac.batch_size_1");
    } else if (occupancy <= 4) {
      OBS_COUNT("mac.batch_size_2_4");
    } else if (occupancy <= 8) {
      OBS_COUNT("mac.batch_size_5_8");
    } else {
      OBS_COUNT("mac.batch_size_9plus");
    }
  }

  const channel::LinkBudget& budget = link_.budget();
  const int bits = frameBits(tx->frame.bytes);
  const double noiseMw = dbmToMilliwatt(budget.noiseFloorDbm);

  // The overlap set is a property of the transmission, not the receiver:
  // hoist it out of the gate loop (active_ then recent_, the accumulation
  // order of interferenceDbmAt). In the common no-overlap case every
  // receiver then reuses one noise-only denominator instead of paying a
  // log10 each (x + 0.0 == x for the positive noiseMw, so the shared
  // value is bit-identical to the per-receiver computation).
  overlap_.clear();
  for (ActiveTx* other : active_) {
    if (other->id != tx->id && other->start < tx->end &&
        tx->start < other->end) {
      overlap_.push_back(other);
    }
  }
  for (ActiveTx* other : recent_) {
    if (other->id != tx->id && other->start < tx->end &&
        tx->start < other->end) {
      overlap_.push_back(other);
    }
  }
  const double noiseOnlyDbm = milliwattToDbm(noiseMw);

  // Stage 1 -- gates, one pass over the contiguous plan array: half-duplex,
  // sensitivity, capture-vs-interference. No RNG is consumed here, so
  // hoisting the gates off the per-receiver draw loop cannot reorder any
  // stream. Receiver callbacks have not run yet either: MACs never
  // transmit synchronously from a delivery (the CSMA kick schedules a
  // timer), so gate inputs cannot depend on this stage's outcome order.
  survivorIdx_.clear();
  survivorSinrDb_.clear();
  for (std::size_t i = 0; i < tx->plans.size(); ++i) {
    const PlannedRx& plan = tx->plans[i];
    if (plan.rx->transmittedDuring(tx->start, tx->end)) {
      ++stats_.framesHalfDuplexMissed;
      OBS_COUNT("mac.frames_dropped");
      continue;
    }
    if (plan.fadedDbm < budget.sensitivityDbm) {
      ++stats_.framesBelowSensitivity;
      OBS_COUNT("mac.frames_dropped");
      continue;
    }
    double sinrDb;
    if (overlap_.empty()) {
      sinrDb = plan.fadedDbm - noiseOnlyDbm;
    } else {
      const double interferenceDbm = interferenceDbmFromOverlap(plan.rx);
      const double interferenceMw = std::isinf(interferenceDbm)
                                        ? 0.0
                                        : dbmToMilliwatt(interferenceDbm);
      sinrDb = plan.fadedDbm - milliwattToDbm(noiseMw + interferenceMw);
      if (interferenceMw > 0.0 && sinrDb < budget.captureThresholdDb) {
        ++stats_.framesCollided;
        OBS_COUNT("mac.frames_dropped");
        continue;
      }
    }
    survivorIdx_.push_back(static_cast<std::uint32_t>(i));
    survivorSinrDb_.push_back(sinrDb);
  }

  // Stage 2 -- decode probabilities for all survivors, batched (pure
  // function of SINR; no draws).
  survivorPSuccess_.resize(survivorIdx_.size());
  link_.successProbabilityBatch(tx->mode, survivorSinrDb_.data(), bits,
                                survivorPSuccess_.data(), survivorIdx_.size());

  // Stage 3 -- conditional draws and delivery, in receiver order: the
  // decode bernoulli on the environment stream, then the burst-chain
  // advance, exactly the per-survivor sequence of the scalar loop.
  for (std::size_t k = 0; k < survivorIdx_.size(); ++k) {
    const PlannedRx& plan = tx->plans[survivorIdx_[k]];
    Radio* rx = plan.rx;
    const double sinrDb = survivorSinrDb_[k];
    if (!rng_.bernoulli(survivorPSuccess_[k])) {
      ++stats_.framesChannelError;
      OBS_COUNT("mac.frames_dropped");
      // The frame was detected (preamble robust, above sensitivity) but
      // the payload failed: radios that opted in receive it with its
      // SINR so they can soft-combine copies (C-ARQ/FC).
      if (rx->wantsCorruptFrames()) {
        ++stats_.framesCorruptDelivered;
        rx->onFrameCorrupted(tx->frame,
                             RxInfo{tx->src, plan.fadedDbm, sinrDb, sim_.now()});
      }
      continue;
    }
    if (link_.burstLoss(tx->src, rx->id(), sim_.now(),
                        static_cast<int>(tx->frame.kind))) {
      ++stats_.framesBurstLost;
      OBS_COUNT("mac.frames_dropped");
      continue;
    }
    ++stats_.framesDelivered;
    OBS_COUNT("mac.frames_delivered");
    rx->onFrameDelivered(tx->frame,
                         RxInfo{tx->src, plan.fadedDbm, sinrDb, sim_.now()});
  }
}

void RadioEnvironment::addMediumListener(MediumActivityListener* listener) {
  mediumListeners_.push_back(listener);
}

void RadioEnvironment::removeMediumListener(
    MediumActivityListener* listener) noexcept {
  std::erase(mediumListeners_, listener);
}

bool RadioEnvironment::channelBusy(const Radio& sensor) const {
  if (sensor.transmitting()) return true;
  const double threshold = link_.budget().carrierSenseDbm;
  for (const ActiveTx* tx : active_) {
    if (tx->src == sensor.id()) continue;
    if (const PlannedRx* plan = tx->planFor(&sensor)) {
      if (plan->meanDbm >= threshold) return true;
    }
  }
  return false;
}

sim::SimTime RadioEnvironment::channelBusyUntil(const Radio& sensor) const {
  sim::SimTime until = sim_.now();
  if (sensor.transmitting()) until = std::max(until, sensor.transmitUntil());
  const double threshold = link_.budget().carrierSenseDbm;
  for (const ActiveTx* tx : active_) {
    if (tx->src == sensor.id()) continue;
    if (const PlannedRx* plan = tx->planFor(&sensor)) {
      if (plan->meanDbm >= threshold) until = std::max(until, tx->end);
    }
  }
  return until;
}

}  // namespace vanet::mac
