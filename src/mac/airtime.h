#pragma once

/// \file airtime.h
/// Frame airtime for the 802.11b/g PHY modes: PLCP preamble + header plus
/// MAC header + payload at the data rate. Used by the radio environment to
/// occupy the medium and by the MAC for spacing constants.

#include "channel/error_model.h"
#include "sim/time.h"

namespace vanet::mac {

/// Fixed MAC overhead added to every payload (header + FCS), bytes.
inline constexpr int kMacOverheadBytes = 28;

/// 802.11 DCF timing constants (long-slot 802.11b/g coexistence values,
/// matching the testbed's 802.11g-at-1-Mbps configuration).
inline constexpr sim::SimTime kSifs = sim::SimTime::micros(10.0);
inline constexpr sim::SimTime kSlotTime = sim::SimTime::micros(20.0);
inline constexpr sim::SimTime kDifs = sim::SimTime::micros(50.0);

/// Time on air for a frame with `payloadBytes` of MAC payload.
sim::SimTime frameAirtime(channel::PhyMode mode, int payloadBytes) noexcept;

/// Number of bits that must decode correctly (MAC header + payload).
int frameBits(int payloadBytes) noexcept;

}  // namespace vanet::mac
