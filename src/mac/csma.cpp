#include "mac/csma.h"

#include <algorithm>
#include <utility>

#include "util/assert.h"

namespace vanet::mac {

CsmaMac::CsmaMac(sim::Simulator& sim, RadioEnvironment& environment,
                 Radio& radio, MacConfig config, Rng rng)
    : sim_(sim), environment_(environment), radio_(radio), config_(config),
      rng_(rng) {
  VANET_ASSERT(config_.cwMin >= 0, "contention window must be non-negative");
}

CsmaMac::~CsmaMac() {
  // Same lifetime convention as Radio::~Radio: the environment outlives
  // the MACs attached to it.
  if (listening_) environment_.removeMediumListener(this);
}

void CsmaMac::setRxHandler(Radio::RxCallback callback) {
  radio_.setRxCallback(std::move(callback));
}

void CsmaMac::setCorruptRxHandler(Radio::RxCallback callback) {
  radio_.setCorruptRxCallback(std::move(callback));
}

void CsmaMac::enqueue(Frame frame, channel::PhyMode mode) {
  if (queue_.size() >= config_.maxQueue) {
    ++drops_;
    return;
  }
  queue_.push_back(Pending{std::move(frame), mode});
  if (state_ == State::kIdle) {
    kick();
  }
}

void CsmaMac::kick() {
  if (state_ != State::kIdle || queue_.empty()) return;
  if (environment_.channelBusy(radio_)) {
    retryLater();
    return;
  }
  state_ = State::kDifs;
  timer_ = sim_.scheduleAfter(config_.difs, [this] { onDifsElapsed(); });
}

void CsmaMac::retryLater() {
  // Re-attempt shortly after the sensed busy condition is due to end. The
  // small epsilon avoids re-kicking at the exact boundary instant where the
  // ending transmission still counts as active.
  const sim::SimTime when =
      std::max(environment_.channelBusyUntil(radio_), sim_.now()) +
      sim::SimTime::micros(15.0);
  state_ = State::kIdle;
  timer_ = sim_.scheduleAt(when, [this] { kick(); });
}

void CsmaMac::onDifsElapsed() {
  if (environment_.channelBusy(radio_)) {
    retryLater();
    return;
  }
  if (!backoffInProgress_) {
    slotsRemaining_ = rng_.uniformInt(0, config_.cwMin);
    backoffInProgress_ = true;
  }
  state_ = State::kBackoff;
  if (slotsRemaining_ == 0) {
    startTransmission();
    return;
  }
  beginBackoffWait();
}

void CsmaMac::onSlotElapsed() {
  if (environment_.channelBusy(radio_)) {
    // Freeze the counter; resume with the same residual backoff after the
    // medium clears and a fresh DIFS passes.
    retryLater();
    return;
  }
  --slotsRemaining_;
  if (slotsRemaining_ <= 0) {
    startTransmission();
    return;
  }
  // Idle again after a busy spell: go back to sleeping the residual
  // countdown on one timer.
  beginBackoffWait();
}

void CsmaMac::beginBackoffWait() {
  backoffAnchor_ = sim_.now();
  environment_.addMediumListener(this);
  listening_ = true;
  timer_ = sim_.scheduleAfter(config_.slot * slotsRemaining_,
                              [this] { onBackoffElapsed(); });
}

void CsmaMac::onBackoffElapsed() {
  // Nothing entered the air since the anchor (activity would have
  // demoted this wait to per-slot stepping), so every slot boundary
  // passed with an idle medium and the countdown is spent.
  environment_.removeMediumListener(this);
  listening_ = false;
  slotsRemaining_ = 0;
  startTransmission();
}

void CsmaMac::onMediumActivity() {
  if (!listening_) return;
  environment_.removeMediumListener(this);
  listening_ = false;
  sim_.cancel(timer_);
  // Boundaries strictly before now passed an idle medium (this call is
  // the first activity since the anchor): count them down, then resume
  // per-slot stepping at the next boundary, which senses the new
  // transmission exactly as the per-slot formulation would have.
  const std::int64_t elapsedNs = (sim_.now() - backoffAnchor_).ns();
  const std::int64_t slotNs = config_.slot.ns();
  const std::int64_t passed = elapsedNs > 0 ? (elapsedNs - 1) / slotNs : 0;
  slotsRemaining_ -= static_cast<int>(passed);
  timer_ = sim_.scheduleAt(backoffAnchor_ + config_.slot * (passed + 1),
                           [this] { onSlotElapsed(); });
}

void CsmaMac::startTransmission() {
  VANET_ASSERT(!queue_.empty(), "attempt with empty queue");
  backoffInProgress_ = false;
  Pending next = std::move(queue_.front());
  queue_.pop_front();
  state_ = State::kTransmitting;
  radio_.transmit(next.frame, next.mode);
  ++sent_;
  const sim::SimTime done = radio_.transmitUntil() + sim::SimTime::micros(1.0);
  timer_ = sim_.scheduleAt(done, [this] {
    state_ = State::kIdle;
    kick();
  });
}

}  // namespace vanet::mac
