#pragma once

/// \file csma.h
/// DCF-lite broadcast MAC: carrier sense, DIFS, slotted random backoff
/// with freeze-and-resume, no RTS/CTS, no ACKs and no retransmissions
/// (the testbed explicitly disabled them). Contention is light in the
/// target scenarios, so this simplified DCF captures what matters: frames
/// never start while the medium is sensed busy, and simultaneous backoff
/// expiry produces real collisions in the environment.

#include <cstdint>
#include <deque>

#include "mac/airtime.h"
#include "mac/frame.h"
#include "mac/radio.h"
#include "mac/radio_environment.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace vanet::mac {

/// MAC tunables; defaults match long-slot 802.11b/g.
struct MacConfig {
  sim::SimTime difs = kDifs;
  sim::SimTime slot = kSlotTime;
  int cwMin = 31;               ///< backoff drawn uniformly from [0, cwMin]
  std::size_t maxQueue = 1024;  ///< enqueue beyond this drops the frame
};

/// Carrier-sense multiple access for one radio. Single transmit queue,
/// strictly FIFO.
///
/// Backoff is *consolidated*: while the medium stays idle the whole
/// residual countdown sleeps on one timer instead of one event per slot
/// (the dominant event load of a round was idle slot ticks). Carrier
/// sense of an idle radio can only flip when a transmission enters the
/// air, so the environment wakes waiting MACs synchronously at that
/// instant (MediumActivityListener); the MAC then falls back to the
/// classic per-slot step at the next slot boundary, freezing there if
/// the medium is still sensed busy. Slot-boundary arithmetic is exact
/// integer SimTime, so transmit instants match the per-slot formulation.
class CsmaMac : public MediumActivityListener {
 public:
  CsmaMac(sim::Simulator& sim, RadioEnvironment& environment, Radio& radio,
          MacConfig config, Rng rng);
  ~CsmaMac();  // deregisters a pending medium-activity subscription
  CsmaMac(const CsmaMac&) = delete;
  CsmaMac& operator=(const CsmaMac&) = delete;

  /// Queues a frame for transmission; drops (and counts) when full.
  void enqueue(Frame frame, channel::PhyMode mode);

  /// Forwards received frames to `callback` (convenience passthrough).
  void setRxHandler(Radio::RxCallback callback);

  /// Opts in to detected-but-corrupt frames (soft combining support).
  void setCorruptRxHandler(Radio::RxCallback callback);

  std::size_t queueDepth() const noexcept { return queue_.size(); }
  std::uint64_t drops() const noexcept { return drops_; }
  std::uint64_t sent() const noexcept { return sent_; }

 private:
  enum class State { kIdle, kDifs, kBackoff, kTransmitting };

  struct Pending {
    Frame frame;
    channel::PhyMode mode;
  };

  void kick();          // start an access attempt if possible
  void retryLater();    // medium busy: re-kick when it frees up
  void onDifsElapsed();
  void onSlotElapsed();
  void beginBackoffWait();  // sleep the residual countdown on one timer
  void onBackoffElapsed();  // countdown ran its course over an idle medium
  void onMediumActivity() override;
  void startTransmission();

  sim::Simulator& sim_;
  RadioEnvironment& environment_;
  Radio& radio_;
  MacConfig config_;
  Rng rng_;
  std::deque<Pending> queue_;
  State state_ = State::kIdle;
  int slotsRemaining_ = 0;
  bool backoffInProgress_ = false;  // freeze-and-resume across busy periods
  bool listening_ = false;          // consolidated wait in progress
  sim::SimTime backoffAnchor_{};    // slot boundaries = anchor + k*slot
  sim::EventId timer_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t sent_ = 0;
};

}  // namespace vanet::mac
