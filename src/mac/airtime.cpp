#include "mac/airtime.h"

#include <cmath>

#include "util/assert.h"

namespace vanet::mac {

int frameBits(int payloadBytes) noexcept {
  return (kMacOverheadBytes + payloadBytes) * 8;
}

sim::SimTime frameAirtime(channel::PhyMode mode, int payloadBytes) noexcept {
  VANET_DASSERT(payloadBytes >= 0, "payload size must be non-negative");
  const int bits = frameBits(payloadBytes);
  const double rateMbps = channel::bitrateMbps(mode);
  switch (mode) {
    case channel::PhyMode::kDsss1Mbps:
    case channel::PhyMode::kDsss2Mbps:
    case channel::PhyMode::kCck5_5Mbps:
    case channel::PhyMode::kCck11Mbps: {
      // Long PLCP preamble + header: 144 + 48 us at 1 Mbps.
      const double plcpUs = 192.0;
      return sim::SimTime::micros(plcpUs + static_cast<double>(bits) / rateMbps);
    }
    case channel::PhyMode::kErpOfdm6Mbps:
    case channel::PhyMode::kErpOfdm12Mbps:
    case channel::PhyMode::kErpOfdm24Mbps:
    case channel::PhyMode::kErpOfdm54Mbps: {
      // 20 us preamble+signal; SERVICE(16) + TAIL(6) bits; 4 us symbols.
      const double bitsPerSymbol = rateMbps * 4.0;
      const double symbols =
          std::ceil((16.0 + 6.0 + static_cast<double>(bits)) / bitsPerSymbol);
      return sim::SimTime::micros(20.0 + 4.0 * symbols);
    }
  }
  return sim::SimTime::micros(static_cast<double>(bits) / rateMbps);
}

}  // namespace vanet::mac
