#include "mac/radio.h"

#include <algorithm>

#include "mac/radio_environment.h"
#include "util/assert.h"

namespace vanet::mac {

Radio::Radio(sim::Simulator& sim, RadioEnvironment& environment, NodeId id,
             const mobility::MobilityModel* mobility, RadioConfig config)
    : sim_(sim), environment_(environment), id_(id), mobility_(mobility),
      config_(config) {
  VANET_ASSERT(mobility_ != nullptr, "radio requires a mobility model");
  environment_.attach(this);
}

Radio::~Radio() { environment_.detach(this); }

void Radio::transmit(const Frame& frame, channel::PhyMode mode) {
  VANET_ASSERT(!transmitting(), "half-duplex radio is already transmitting");
  Frame outgoing = frame;
  outgoing.src = id_;
  const sim::SimTime end = environment_.beginTransmission(*this, outgoing, mode);
  txUntil_ = end;
  txHistory_.emplace_back(sim_.now(), end);
  ++framesSent_;
  // Prune history entries that can no longer overlap any in-flight frame.
  const sim::SimTime horizon = sim_.now() - sim::SimTime::seconds(1.0);
  std::erase_if(txHistory_,
                [horizon](const auto& span) { return span.second < horizon; });
}

void Radio::onFrameDelivered(const Frame& frame, const RxInfo& info) {
  ++framesReceived_;
  if (rxCallback_) {
    rxCallback_(frame, info);
  }
}

void Radio::onFrameCorrupted(const Frame& frame, const RxInfo& info) {
  if (corruptCallback_) {
    corruptCallback_(frame, info);
  }
}

bool Radio::transmittedDuring(sim::SimTime start, sim::SimTime end) const {
  return std::any_of(txHistory_.begin(), txHistory_.end(),
                     [start, end](const auto& span) {
                       return span.first < end && start < span.second;
                     });
}

}  // namespace vanet::mac
