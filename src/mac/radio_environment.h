#pragma once

/// \file radio_environment.h
/// The shared wireless medium. Tracks every in-flight transmission,
/// computes per-receiver powers through the link model, applies
/// interference (SINR with a capture threshold), half-duplex loss, channel
/// error sampling and the optional burst overlay, then delivers frames to
/// the surviving receivers at airtime end.
///
/// Hot-path layout: receivers of one transmission are gathered into a
/// struct-of-arrays LinkBatch and planned in staged passes (see
/// channel/link_batch.h); in-flight transmission records are pooled and
/// referenced by raw pointer (their finalize closures fit std::function's
/// small buffer, so steady-state transmission churn never allocates); and
/// each radio carries a dense environment slot so plan lookups during
/// carrier sense / interference accumulation are O(1) array reads.

#include <cstdint>
#include <memory>
#include <vector>

#include "channel/link_batch.h"
#include "channel/link_model.h"
#include "mac/frame.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace vanet::mac {

class Radio;

/// Implemented by MACs that sleep through an idle backoff countdown on a
/// single timer: the environment calls onMediumActivity() synchronously
/// the moment any transmission enters the air, which is the only instant
/// the sensed-busy state of an idle, non-transmitting radio can change
/// (carrier sense reads the plans frozen at transmission start, never
/// live positions). The callback must not start a transmission.
class MediumActivityListener {
 public:
  virtual void onMediumActivity() = 0;

 protected:
  ~MediumActivityListener() = default;
};

/// Medium-level loss statistics (per simulation run).
struct MediumStats {
  std::uint64_t framesTransmitted = 0;
  std::uint64_t framesDelivered = 0;
  std::uint64_t framesBelowSensitivity = 0;
  std::uint64_t framesCollided = 0;      ///< SINR under capture threshold
  std::uint64_t framesChannelError = 0;  ///< decode failure (BER)
  std::uint64_t framesBurstLost = 0;
  std::uint64_t framesHalfDuplexMissed = 0;
  std::uint64_t framesCorruptDelivered = 0;  ///< surfaced for soft combining

  /// Adds another counter block (rounds of one run, or parallel runs).
  void merge(const MediumStats& other) noexcept {
    framesTransmitted += other.framesTransmitted;
    framesDelivered += other.framesDelivered;
    framesBelowSensitivity += other.framesBelowSensitivity;
    framesCollided += other.framesCollided;
    framesChannelError += other.framesChannelError;
    framesBurstLost += other.framesBurstLost;
    framesHalfDuplexMissed += other.framesHalfDuplexMissed;
    framesCorruptDelivered += other.framesCorruptDelivered;
  }
};

/// Broadcast wireless medium shared by all attached radios.
class RadioEnvironment {
 public:
  RadioEnvironment(sim::Simulator& sim, channel::LinkModel& link, Rng rng);
  RadioEnvironment(const RadioEnvironment&) = delete;
  RadioEnvironment& operator=(const RadioEnvironment&) = delete;

  void attach(Radio* radio);
  void detach(Radio* radio);

  /// Starts a transmission; returns its airtime end. Called by Radio.
  sim::SimTime beginTransmission(Radio& src, Frame frame,
                                 channel::PhyMode mode);

  /// Carrier sense at `sensor`: true while any other transmission arrives
  /// above the carrier-sense threshold, or the sensor itself transmits.
  bool channelBusy(const Radio& sensor) const;

  /// Time until which the sensed busy condition is guaranteed to persist
  /// (now when the channel is idle).
  sim::SimTime channelBusyUntil(const Radio& sensor) const;

  /// Registers / removes a consolidated-backoff listener. Idempotence is
  /// the caller's job: add exactly once per wait, remove before (or
  /// while) reacting.
  void addMediumListener(MediumActivityListener* listener);
  void removeMediumListener(MediumActivityListener* listener) noexcept;

  const MediumStats& stats() const noexcept { return stats_; }

 private:
  struct PlannedRx {
    Radio* rx = nullptr;
    double meanDbm = 0.0;   // without fading: carrier sense, interference base
    double fadedDbm = 0.0;  // per-frame fading applied
  };
  /// One in-flight (or recently finished) transmission. Pooled: acquired
  /// in beginTransmission, recycled when it ages out of the overlap
  /// window, so the vectors inside keep their capacity across reuse.
  struct ActiveTx {
    std::uint64_t id = 0;
    NodeId src = 0;
    Frame frame;
    channel::PhyMode mode{};
    sim::SimTime start{};
    sim::SimTime end{};
    std::vector<PlannedRx> plans;  ///< receiver order (= attach order)
    /// Env slot -> index into `plans`, -1 when the slot's radio is the
    /// source or detached. Sized to the radio count at planning time.
    std::vector<std::int32_t> planBySlot;

    const PlannedRx* planFor(const Radio* rx) const;
    void rebuildSlotIndex(std::size_t slotCount);
  };

  ActiveTx* acquireTx();
  void deliver(ActiveTx* tx);
  double interferenceDbmAt(const Radio* rx, const ActiveTx& target) const;
  /// Same accumulation over the per-delivery hoisted overlap_ set.
  double interferenceDbmFromOverlap(const Radio* rx) const;
  void pruneRecent();

  sim::Simulator& sim_;
  channel::LinkModel& link_;
  Rng rng_;
  std::vector<Radio*> radios_;
  channel::LinkBatch batch_;             ///< per-transmission SoA scratch
  std::vector<std::unique_ptr<ActiveTx>> pool_;  ///< owns every ActiveTx
  std::vector<ActiveTx*> freeTx_;        ///< recycled records
  std::vector<ActiveTx*> active_;        ///< airtime in progress
  std::vector<ActiveTx*> recent_;        ///< kept for overlap checks
  std::vector<MediumActivityListener*> mediumListeners_;
  /// Snapshot iterated during notification (listeners self-remove).
  std::vector<MediumActivityListener*> listenerScratch_;
  // deliver() scratch (member so steady state does not allocate):
  std::vector<ActiveTx*> overlap_;  ///< per-delivery overlapping-tx scratch
  std::vector<std::uint32_t> survivorIdx_;  ///< plan indices past the gates
  std::vector<double> survivorSinrDb_;
  std::vector<double> survivorPSuccess_;
  std::uint64_t nextFrameId_ = 1;
  MediumStats stats_;
};

}  // namespace vanet::mac
