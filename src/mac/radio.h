#pragma once

/// \file radio.h
/// A half-duplex 802.11-style radio bound to a node's mobility. The radio
/// transmits frames into a RadioEnvironment and surfaces delivered frames
/// through a callback. It is deliberately thin: medium access lives in
/// CsmaMac, propagation in the environment/link model.

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "channel/error_model.h"
#include "geom/vec2.h"
#include "mac/frame.h"
#include "mobility/mobility_model.h"
#include "sim/simulator.h"

namespace vanet::mac {

class RadioEnvironment;

/// Per-radio configuration.
struct RadioConfig {
  double txPowerDbm = 16.0;  ///< EIRP including antenna gain
};

/// Reception metadata passed to the rx callback.
struct RxInfo {
  NodeId src = 0;
  double rxPowerDbm = 0.0;
  double sinrDb = 0.0;
  sim::SimTime at{};
};

/// Half-duplex radio; one per node.
class Radio {
 public:
  using RxCallback = std::function<void(const Frame&, const RxInfo&)>;

  /// Attaches itself to `environment`; `mobility` must outlive the radio.
  Radio(sim::Simulator& sim, RadioEnvironment& environment, NodeId id,
        const mobility::MobilityModel* mobility, RadioConfig config);
  ~Radio();
  Radio(const Radio&) = delete;
  Radio& operator=(const Radio&) = delete;

  NodeId id() const noexcept { return id_; }
  geom::Vec2 position() const { return mobility_->positionAt(sim_.now()); }
  double txPowerDbm() const noexcept { return config_.txPowerDbm; }

  /// True while a transmission of this radio occupies the medium.
  bool transmitting() const noexcept { return sim_.now() < txUntil_; }
  sim::SimTime transmitUntil() const noexcept { return txUntil_; }

  /// Starts transmitting `frame`; requires the radio to be idle.
  /// The caller (MAC) is responsible for medium access rules.
  void transmit(const Frame& frame, channel::PhyMode mode);

  void setRxCallback(RxCallback callback) { rxCallback_ = std::move(callback); }

  /// Opts in to corrupted-frame delivery: frames that were detected
  /// (above sensitivity, no collision) but failed decoding are surfaced
  /// with their SINR, enabling soft combining (C-ARQ/FC).
  void setCorruptRxCallback(RxCallback callback) {
    corruptCallback_ = std::move(callback);
  }
  bool wantsCorruptFrames() const noexcept {
    return static_cast<bool>(corruptCallback_);
  }

  /// Environment-facing: delivers a successfully decoded frame.
  void onFrameDelivered(const Frame& frame, const RxInfo& info);

  /// Environment-facing: delivers a detected-but-corrupt frame (only when
  /// wantsCorruptFrames()).
  void onFrameCorrupted(const Frame& frame, const RxInfo& info);

  /// Environment-facing: whether this radio transmitted at any point in
  /// [start, end] (half-duplex receivers miss such frames).
  bool transmittedDuring(sim::SimTime start, sim::SimTime end) const;

  /// Environment bookkeeping: this radio's dense index in the
  /// environment's attach list, letting in-flight transmissions map a
  /// receiver to its planned delivery in O(1) (carrier sense and
  /// interference queries sit on the hot path).
  std::size_t envSlot() const noexcept { return envSlot_; }
  void setEnvSlot(std::size_t slot) noexcept { envSlot_ = slot; }

  std::uint64_t framesSent() const noexcept { return framesSent_; }
  std::uint64_t framesReceived() const noexcept { return framesReceived_; }

 private:
  sim::Simulator& sim_;
  RadioEnvironment& environment_;
  NodeId id_;
  const mobility::MobilityModel* mobility_;
  RadioConfig config_;
  RxCallback rxCallback_;
  RxCallback corruptCallback_;
  sim::SimTime txUntil_{};
  std::size_t envSlot_ = 0;
  std::vector<std::pair<sim::SimTime, sim::SimTime>> txHistory_;
  std::uint64_t framesSent_ = 0;
  std::uint64_t framesReceived_ = 0;
};

}  // namespace vanet::mac
