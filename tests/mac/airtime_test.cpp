#include "mac/airtime.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vanet::mac {
namespace {

using channel::PhyMode;
using sim::SimTime;

TEST(AirtimeTest, Dsss1MbpsThousandBytes) {
  // 192 us PLCP + (28 + 1000) * 8 bits at 1 Mbps = 192 + 8224 us.
  const SimTime t = frameAirtime(PhyMode::kDsss1Mbps, 1000);
  EXPECT_NEAR(t.toMillis(), 8.416, 0.001);
}

TEST(AirtimeTest, Dsss2MbpsHalvesPayloadTime) {
  const SimTime t1 = frameAirtime(PhyMode::kDsss1Mbps, 1000);
  const SimTime t2 = frameAirtime(PhyMode::kDsss2Mbps, 1000);
  const double payloadUs1 = t1.toMillis() * 1000.0 - 192.0;
  const double payloadUs2 = t2.toMillis() * 1000.0 - 192.0;
  EXPECT_NEAR(payloadUs2, payloadUs1 / 2.0, 0.5);
}

TEST(AirtimeTest, LongerPayloadsTakeLonger) {
  for (const PhyMode mode :
       {PhyMode::kDsss1Mbps, PhyMode::kCck11Mbps, PhyMode::kErpOfdm6Mbps,
        PhyMode::kErpOfdm54Mbps}) {
    SimTime prev = SimTime::zero();
    for (int bytes = 0; bytes <= 1500; bytes += 100) {
      const SimTime t = frameAirtime(mode, bytes);
      EXPECT_GE(t, prev);
      prev = t;
    }
  }
}

TEST(AirtimeTest, FasterModesAreFaster) {
  const int bytes = 1000;
  EXPECT_LT(frameAirtime(PhyMode::kDsss2Mbps, bytes),
            frameAirtime(PhyMode::kDsss1Mbps, bytes));
  EXPECT_LT(frameAirtime(PhyMode::kCck11Mbps, bytes),
            frameAirtime(PhyMode::kCck5_5Mbps, bytes));
  EXPECT_LT(frameAirtime(PhyMode::kErpOfdm54Mbps, bytes),
            frameAirtime(PhyMode::kErpOfdm6Mbps, bytes));
}

TEST(AirtimeTest, OfdmSymbolQuantisation) {
  // ERP frames are a 20 us preamble plus whole 4 us symbols.
  const SimTime t = frameAirtime(PhyMode::kErpOfdm6Mbps, 100);
  const double usAfterPreamble = t.toMillis() * 1000.0 - 20.0;
  const double symbols = usAfterPreamble / 4.0;
  EXPECT_NEAR(symbols, std::round(symbols), 1e-6);
}

TEST(AirtimeTest, FrameBitsIncludesMacOverhead) {
  EXPECT_EQ(frameBits(0), kMacOverheadBytes * 8);
  EXPECT_EQ(frameBits(1000), (kMacOverheadBytes + 1000) * 8);
}

TEST(AirtimeTest, TimingConstants) {
  EXPECT_EQ(kSifs, SimTime::micros(10.0));
  EXPECT_EQ(kSlotTime, SimTime::micros(20.0));
  EXPECT_EQ(kDifs, SimTime::micros(50.0));
}

TEST(AirtimeTest, PaperDataFrameFitsInCoopSlot) {
  // The default coop slot (12 ms) must exceed one CoopData airtime
  // (1016-byte payload at 1 Mbps) so ordered-backoff suppression works.
  const SimTime coopData = frameAirtime(PhyMode::kDsss1Mbps, 1016);
  EXPECT_LT(coopData, SimTime::millis(12.0));
}

}  // namespace
}  // namespace vanet::mac
