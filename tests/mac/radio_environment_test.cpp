#include "mac/radio_environment.h"

#include <gtest/gtest.h>

#include "../testing/medium_fixture.h"
#include "mac/airtime.h"
#include "obs/counters.h"

namespace vanet::mac {
namespace {

using channel::PhyMode;
using sim::SimTime;
using vanet::testing::MediumHarness;

TEST(RadioEnvironmentTest, BroadcastReachesAllOtherRadios) {
  MediumHarness h;
  h.addRadio(1, {0.0, 0.0});
  h.addRadio(2, {20.0, 0.0});
  h.addRadio(3, {40.0, 0.0});
  int rx2 = 0;
  int rx3 = 0;
  h.radio(1).setRxCallback([&rx2](const Frame&, const RxInfo&) { ++rx2; });
  h.radio(2).setRxCallback([&rx3](const Frame&, const RxInfo&) { ++rx3; });

  h.radio(0).transmit(MediumHarness::dataFrame(2, 1), PhyMode::kDsss1Mbps);
  h.sim().run();
  EXPECT_EQ(rx2, 1);
  EXPECT_EQ(rx3, 1);
  EXPECT_EQ(h.environment().stats().framesDelivered, 2u);
}

TEST(RadioEnvironmentTest, SenderDoesNotHearItself) {
  MediumHarness h;
  h.addRadio(1, {0.0, 0.0});
  h.addRadio(2, {20.0, 0.0});
  int rx1 = 0;
  h.radio(0).setRxCallback([&rx1](const Frame&, const RxInfo&) { ++rx1; });
  h.radio(1).setRxCallback([](const Frame&, const RxInfo&) {});
  h.radio(0).transmit(MediumHarness::dataFrame(2, 1), PhyMode::kDsss1Mbps);
  h.sim().run();
  EXPECT_EQ(rx1, 0);
}

TEST(RadioEnvironmentTest, DeliveryHappensAtAirtimeEnd) {
  MediumHarness h;
  h.addRadio(1, {0.0, 0.0});
  h.addRadio(2, {20.0, 0.0});
  SimTime deliveredAt{};
  h.radio(1).setRxCallback(
      [&](const Frame&, const RxInfo& info) { deliveredAt = info.at; });
  h.radio(0).transmit(MediumHarness::dataFrame(2, 1, 1000),
                      PhyMode::kDsss1Mbps);
  h.sim().run();
  EXPECT_EQ(deliveredAt, frameAirtime(PhyMode::kDsss1Mbps, 1000));
}

TEST(RadioEnvironmentTest, OutOfRangeReceiverMissesFrame) {
  MediumHarness h;
  h.addRadio(1, {0.0, 0.0});
  h.addRadio(2, {50000.0, 0.0});  // 50 km away
  int rx = 0;
  h.radio(1).setRxCallback([&rx](const Frame&, const RxInfo&) { ++rx; });
  h.radio(0).transmit(MediumHarness::dataFrame(2, 1), PhyMode::kDsss1Mbps);
  h.sim().run();
  EXPECT_EQ(rx, 0);
  EXPECT_EQ(h.environment().stats().framesBelowSensitivity, 1u);
}

TEST(RadioEnvironmentTest, HalfDuplexReceiverMissesOverlap) {
  MediumHarness h;
  h.addRadio(1, {0.0, 0.0});
  h.addRadio(2, {20.0, 0.0});
  int rx2 = 0;
  h.radio(1).setRxCallback([&rx2](const Frame&, const RxInfo&) { ++rx2; });
  h.radio(0).setRxCallback([](const Frame&, const RxInfo&) {});
  // Both transmit at t=0: each is deaf to the other's frame.
  h.radio(0).transmit(MediumHarness::dataFrame(2, 1), PhyMode::kDsss1Mbps);
  h.radio(1).transmit(MediumHarness::dataFrame(1, 1), PhyMode::kDsss1Mbps);
  h.sim().run();
  EXPECT_EQ(rx2, 0);
  EXPECT_EQ(h.environment().stats().framesHalfDuplexMissed, 2u);
}

TEST(RadioEnvironmentTest, CollisionAtEquidistantReceiverDestroysBoth) {
  MediumHarness h;
  h.addRadio(1, {0.0, 0.0});
  h.addRadio(2, {100.0, 0.0});
  h.addRadio(3, {50.0, 40.0});  // equidistant from 1 and 2 -> SINR ~ 0 dB
  int rx3 = 0;
  h.radio(2).setRxCallback([&rx3](const Frame&, const RxInfo&) { ++rx3; });
  h.radio(0).transmit(MediumHarness::dataFrame(3, 1), PhyMode::kDsss1Mbps);
  h.radio(1).transmit(MediumHarness::dataFrame(3, 2), PhyMode::kDsss1Mbps);
  h.sim().run();
  EXPECT_EQ(rx3, 0);
  EXPECT_EQ(h.environment().stats().framesCollided, 2u);
}

TEST(RadioEnvironmentTest, CaptureStrongFrameOverWeakInterferer) {
  MediumHarness h;
  h.addRadio(1, {0.0, 0.0});     // strong: 10 m from receiver
  h.addRadio(2, {500.0, 0.0});   // weak interferer: 490 m away
  h.addRadio(3, {10.0, 0.0});
  int rx3 = 0;
  h.radio(2).setRxCallback([&rx3](const Frame& f, const RxInfo&) {
    if (dataOf(f).seq == 1) ++rx3;
  });
  h.radio(0).transmit(MediumHarness::dataFrame(3, 1), PhyMode::kDsss1Mbps);
  h.radio(1).transmit(MediumHarness::dataFrame(3, 2), PhyMode::kDsss1Mbps);
  h.sim().run();
  EXPECT_EQ(rx3, 1);  // near frame captured despite overlap
}

TEST(RadioEnvironmentTest, ChannelBusyDuringTransmission) {
  MediumHarness h;
  h.addRadio(1, {0.0, 0.0});
  h.addRadio(2, {20.0, 0.0});
  h.radio(1).setRxCallback([](const Frame&, const RxInfo&) {});
  EXPECT_FALSE(h.environment().channelBusy(h.radio(1)));
  h.radio(0).transmit(MediumHarness::dataFrame(2, 1), PhyMode::kDsss1Mbps);
  EXPECT_TRUE(h.environment().channelBusy(h.radio(1)));
  EXPECT_TRUE(h.environment().channelBusy(h.radio(0)));  // own tx
  const SimTime end = h.environment().channelBusyUntil(h.radio(1));
  EXPECT_EQ(end, frameAirtime(PhyMode::kDsss1Mbps, 1000));
  h.sim().run();
  EXPECT_FALSE(h.environment().channelBusy(h.radio(1)));
}

TEST(RadioEnvironmentTest, FarTransmitterDoesNotTriggerCarrierSense) {
  MediumHarness h;
  h.addRadio(1, {0.0, 0.0});
  h.addRadio(2, {50000.0, 0.0});
  h.radio(1).setRxCallback([](const Frame&, const RxInfo&) {});
  h.radio(0).transmit(MediumHarness::dataFrame(2, 1), PhyMode::kDsss1Mbps);
  EXPECT_FALSE(h.environment().channelBusy(h.radio(1)));
}

TEST(RadioEnvironmentTest, RxInfoCarriesPlausibleValues) {
  MediumHarness h;
  h.addRadio(1, {0.0, 0.0});
  h.addRadio(2, {10.0, 0.0});
  RxInfo seen;
  h.radio(1).setRxCallback(
      [&seen](const Frame&, const RxInfo& info) { seen = info; });
  h.radio(0).transmit(MediumHarness::dataFrame(2, 1), PhyMode::kDsss1Mbps);
  h.sim().run();
  EXPECT_EQ(seen.src, 1);
  // 18 dBm - (40 + 20 log10 10) = -42 dBm at 10 m (free-space-like).
  EXPECT_NEAR(seen.rxPowerDbm, -42.0, 0.5);
  EXPECT_GT(seen.sinrDb, 40.0);
}

TEST(RadioEnvironmentTest, StatsCountTransmissions) {
  MediumHarness h;
  h.addRadio(1, {0.0, 0.0});
  h.addRadio(2, {20.0, 0.0});
  h.radio(1).setRxCallback([](const Frame&, const RxInfo&) {});
  for (int i = 0; i < 5; ++i) {
    h.radio(0).transmit(MediumHarness::dataFrame(2, i), PhyMode::kDsss1Mbps);
    h.sim().run();
  }
  EXPECT_EQ(h.environment().stats().framesTransmitted, 5u);
  EXPECT_EQ(h.environment().stats().framesDelivered, 5u);
  EXPECT_EQ(h.radio(0).framesSent(), 5u);
  EXPECT_EQ(h.radio(1).framesReceived(), 5u);
}

TEST(RadioEnvironmentTest, CorruptFramesDeliveredOnlyToOptedInRadios) {
  // A weak (but detected) CCK-11 link produces decode failures; radios
  // that opted in receive the corrupt frames with their SINR.
  auto weak = std::make_unique<channel::CompositeLinkModel>(
      std::make_unique<channel::LogDistancePathLoss>(2.0, 40.0),
      // car-to-car at 20 m: ~ -80 dBm -> SNR ~14 dB, under the CCK-11
      // cliff for 1028-byte frames.
      std::make_unique<channel::LogDistancePathLoss>(2.4, 66.8),
      std::make_unique<channel::NoShadowing>(),
      std::make_unique<channel::NoFading>(), channel::LinkBudget{});
  vanet::testing::MediumHarness h(std::move(weak));
  h.addRadio(1, {0.0, 0.0});
  h.addRadio(2, {20.0, 0.0});
  h.addRadio(3, {20.0, 1.0});
  int corrupt2 = 0;
  double sinr2 = 0.0;
  h.radio(1).setRxCallback([](const Frame&, const RxInfo&) {});
  h.radio(1).setCorruptRxCallback([&](const Frame&, const RxInfo& info) {
    ++corrupt2;
    sinr2 = info.sinrDb;
  });
  int corrupt3 = 0;
  h.radio(2).setRxCallback([](const Frame&, const RxInfo&) {});
  // radio 3 does NOT opt in.
  int delivered = 0;
  h.radio(1).setRxCallback([&delivered](const Frame&, const RxInfo&) { ++delivered; });
  for (int i = 0; i < 60; ++i) {
    h.radio(0).transmit(MediumHarness::dataFrame(2, i), PhyMode::kCck11Mbps);
    h.sim().run();
  }
  EXPECT_GT(corrupt2, 10);  // most copies fail at ~14 dB
  EXPECT_EQ(corrupt3, 0);
  EXPECT_NEAR(sinr2, 14.0, 1.5);
  EXPECT_EQ(h.environment().stats().framesCorruptDelivered,
            static_cast<std::uint64_t>(corrupt2));
  EXPECT_GT(h.environment().stats().framesChannelError, 0u);
}

TEST(RadioEnvironmentTest, BelowSensitivityNeverSurfacesCorruptFrames) {
  vanet::testing::MediumHarness h;
  h.addRadio(1, {0.0, 0.0});
  h.addRadio(2, {50000.0, 0.0});
  int corrupt = 0;
  h.radio(1).setCorruptRxCallback(
      [&corrupt](const Frame&, const RxInfo&) { ++corrupt; });
  h.radio(1).setRxCallback([](const Frame&, const RxInfo&) {});
  for (int i = 0; i < 20; ++i) {
    h.radio(0).transmit(MediumHarness::dataFrame(2, i), PhyMode::kDsss1Mbps);
    h.sim().run();
  }
  EXPECT_EQ(corrupt, 0);  // undetectable frames contribute no soft energy
}

TEST(RadioEnvironmentTest, EmptyReceiverSetAdvancesNothing) {
  // A transmission with zero receivers (sole radio on the medium) must
  // not draw randomness, evaluate links, or touch any delivery counter:
  // the batched path has to early-out before the plan stage.
  MediumHarness h;
  h.addRadio(1, {0.0, 0.0});
  const std::uint64_t evalsBefore =
      obs::takeSnapshot().counter("mac.link_evaluations");
  h.radio(0).transmit(MediumHarness::dataFrame(2, 1), PhyMode::kDsss1Mbps);
  h.sim().run();
  const MediumStats& stats = h.environment().stats();
  EXPECT_EQ(stats.framesTransmitted, 1u);
  EXPECT_EQ(stats.framesDelivered, 0u);
  EXPECT_EQ(stats.framesBelowSensitivity, 0u);
  EXPECT_EQ(stats.framesHalfDuplexMissed, 0u);
  EXPECT_EQ(stats.framesCollided, 0u);
  EXPECT_EQ(stats.framesChannelError, 0u);
  EXPECT_EQ(stats.framesBurstLost, 0u);
  EXPECT_EQ(stats.framesCorruptDelivered, 0u);
  EXPECT_EQ(obs::takeSnapshot().counter("mac.link_evaluations"), evalsBefore);
}

TEST(RadioEnvironmentDeathTest, DoubleTransmitAsserts) {
  MediumHarness h;
  h.addRadio(1, {0.0, 0.0});
  h.radio(0).transmit(MediumHarness::dataFrame(2, 1), PhyMode::kDsss1Mbps);
  EXPECT_DEATH(
      h.radio(0).transmit(MediumHarness::dataFrame(2, 2), PhyMode::kDsss1Mbps),
      "already transmitting");
}

}  // namespace
}  // namespace vanet::mac
