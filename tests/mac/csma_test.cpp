#include "mac/csma.h"

#include <gtest/gtest.h>

#include "../testing/medium_fixture.h"
#include "mac/airtime.h"

namespace vanet::mac {
namespace {

using channel::PhyMode;
using sim::SimTime;
using vanet::testing::MediumHarness;

struct MacUnderTest {
  explicit MacUnderTest(MediumHarness& h, std::size_t radioIdx,
                        std::uint64_t seed = 1)
      : mac(h.sim(), h.environment(), h.radio(radioIdx), MacConfig{},
            Rng{seed}) {}
  CsmaMac mac;
};

TEST(CsmaTest, SingleFrameIsTransmitted) {
  MediumHarness h;
  h.addRadio(1, {0.0, 0.0});
  h.addRadio(2, {20.0, 0.0});
  MacUnderTest sender(h, 0);
  int rx = 0;
  h.radio(1).setRxCallback([&rx](const Frame&, const RxInfo&) { ++rx; });
  sender.mac.enqueue(MediumHarness::dataFrame(2, 1), PhyMode::kDsss1Mbps);
  h.sim().run();
  EXPECT_EQ(rx, 1);
  EXPECT_EQ(sender.mac.sent(), 1u);
  EXPECT_EQ(sender.mac.queueDepth(), 0u);
}

TEST(CsmaTest, TransmissionWaitsAtLeastDifs) {
  MediumHarness h;
  h.addRadio(1, {0.0, 0.0});
  h.addRadio(2, {20.0, 0.0});
  MacUnderTest sender(h, 0);
  SimTime deliveredAt{};
  h.radio(1).setRxCallback(
      [&](const Frame&, const RxInfo& info) { deliveredAt = info.at; });
  sender.mac.enqueue(MediumHarness::dataFrame(2, 1, 100), PhyMode::kDsss1Mbps);
  h.sim().run();
  // delivery >= DIFS + airtime (plus 0..cwMin slots of backoff)
  const SimTime airtime = frameAirtime(PhyMode::kDsss1Mbps, 100);
  EXPECT_GE(deliveredAt, kDifs + airtime);
  EXPECT_LE(deliveredAt, kDifs + airtime + 31 * kSlotTime + SimTime::millis(1.0));
}

TEST(CsmaTest, FifoOrderPreserved) {
  MediumHarness h;
  h.addRadio(1, {0.0, 0.0});
  h.addRadio(2, {20.0, 0.0});
  MacUnderTest sender(h, 0);
  std::vector<SeqNo> seqs;
  h.radio(1).setRxCallback([&seqs](const Frame& f, const RxInfo&) {
    seqs.push_back(dataOf(f).seq);
  });
  for (SeqNo s = 1; s <= 5; ++s) {
    sender.mac.enqueue(MediumHarness::dataFrame(2, s, 200),
                       PhyMode::kDsss1Mbps);
  }
  h.sim().run();
  EXPECT_EQ(seqs, (std::vector<SeqNo>{1, 2, 3, 4, 5}));
}

TEST(CsmaTest, QueueOverflowDrops) {
  MediumHarness h;
  h.addRadio(1, {0.0, 0.0});
  MacConfig config;
  config.maxQueue = 3;
  CsmaMac mac(h.sim(), h.environment(), h.radio(0), config, Rng{1});
  for (SeqNo s = 1; s <= 10; ++s) {
    mac.enqueue(MediumHarness::dataFrame(2, s), PhyMode::kDsss1Mbps);
  }
  EXPECT_GT(mac.drops(), 0u);
  EXPECT_LE(mac.queueDepth(), 3u);
}

TEST(CsmaTest, DefersWhileChannelBusy) {
  MediumHarness h;
  h.addRadio(1, {0.0, 0.0});
  h.addRadio(2, {20.0, 0.0});
  h.addRadio(3, {10.0, 10.0});
  MacUnderTest sender(h, 0);
  std::vector<std::pair<NodeId, SimTime>> deliveries;
  h.radio(2).setRxCallback([&](const Frame& f, const RxInfo& info) {
    deliveries.emplace_back(f.src, info.at);
  });
  // Radio 2 seizes the channel directly at t=0 with a long frame.
  h.radio(1).transmit(MediumHarness::dataFrame(9, 1, 1400),
                      PhyMode::kDsss1Mbps);
  // The MAC node enqueues immediately; it must wait for the channel.
  sender.mac.enqueue(MediumHarness::dataFrame(2, 7, 100), PhyMode::kDsss1Mbps);
  h.sim().run();
  ASSERT_EQ(deliveries.size(), 2u);
  const SimTime longFrameEnd = frameAirtime(PhyMode::kDsss1Mbps, 1400);
  // Second delivery is the MAC's frame; it must start after the long frame
  // ended (delivery = start + its own airtime > longFrameEnd).
  EXPECT_EQ(deliveries[1].first, 1);
  EXPECT_GT(deliveries[1].second,
            longFrameEnd + frameAirtime(PhyMode::kDsss1Mbps, 100));
}

TEST(CsmaTest, TwoContendersBothEventuallyDeliver) {
  MediumHarness h;
  h.addRadio(1, {0.0, 0.0});
  h.addRadio(2, {20.0, 0.0});
  h.addRadio(3, {10.0, 10.0});
  MacUnderTest a(h, 0, 11);
  MacUnderTest b(h, 1, 22);
  int rx = 0;
  h.radio(2).setRxCallback([&rx](const Frame&, const RxInfo&) { ++rx; });
  for (SeqNo s = 1; s <= 10; ++s) {
    a.mac.enqueue(MediumHarness::dataFrame(3, s, 500), PhyMode::kDsss1Mbps);
    b.mac.enqueue(MediumHarness::dataFrame(3, 100 + s, 500),
                  PhyMode::kDsss1Mbps);
  }
  h.sim().run();
  // Random backoff may still collide occasionally, but the large majority
  // of the 20 frames must arrive.
  EXPECT_GE(rx, 16);
  EXPECT_EQ(a.mac.sent() + b.mac.sent(), 20u);
}

TEST(CsmaTest, RxHandlerForwardsFrames) {
  MediumHarness h;
  h.addRadio(1, {0.0, 0.0});
  h.addRadio(2, {20.0, 0.0});
  MacUnderTest sender(h, 0);
  MacUnderTest receiver(h, 1);
  int rx = 0;
  receiver.mac.setRxHandler([&rx](const Frame&, const RxInfo&) { ++rx; });
  sender.mac.enqueue(MediumHarness::dataFrame(2, 1), PhyMode::kDsss1Mbps);
  h.sim().run();
  EXPECT_EQ(rx, 1);
}

TEST(CsmaTest, ManyFramesAllDeliveredOnCleanChannel) {
  MediumHarness h;
  h.addRadio(1, {0.0, 0.0});
  h.addRadio(2, {20.0, 0.0});
  MacUnderTest sender(h, 0);
  int rx = 0;
  h.radio(1).setRxCallback([&rx](const Frame&, const RxInfo&) { ++rx; });
  const int n = 100;
  for (SeqNo s = 1; s <= n; ++s) {
    sender.mac.enqueue(MediumHarness::dataFrame(2, s, 1000),
                       PhyMode::kDsss1Mbps);
  }
  h.sim().run();
  EXPECT_EQ(rx, n);
  EXPECT_EQ(sender.mac.drops(), 0u);
}

}  // namespace
}  // namespace vanet::mac
