/// \file invariance_test.cpp
/// The tentpole contract of the observability layer: instrumentation is
/// out-of-band. Result bytes must be identical with the registry enabled
/// or disabled, and the work-counting counters (sim.*, mac.*) must read
/// the same no matter how the jobs were scheduled, because they count
/// the workload, not the schedule.

#include <gtest/gtest.h>

#include <string>

#include "obs/counters.h"
#include "runner/campaign.h"
#include "runner/emit.h"

namespace vanet::runner {
namespace {

CampaignConfig tinyUrbanCampaign() {
  CampaignConfig config;
  config.scenario = "urban";
  config.masterSeed = 2008;
  config.replications = 2;
  config.threads = 2;
  config.base.set("rounds", 2);
  config.base.set("cars", 2);
  config.grid.add("speed_kmh", {20.0, 30.0}).add("coop", {0.0, 1.0});
  return config;
}

/// The deterministic slice of a snapshot: counters that tally simulation
/// work. Timers and scheduling counters (util.reorder.stalls) are
/// explicitly not here -- they measure this run, not the workload.
std::string workCounters(const obs::Snapshot& snapshot) {
  std::string out;
  for (const obs::CounterValue& counter : snapshot.counters) {
    const bool deterministic =
        counter.name.rfind("sim.", 0) == 0 ||
        counter.name.rfind("mac.", 0) == 0 ||
        counter.name == "campaign.jobs_run";
    if (!deterministic) continue;
    out += counter.name + "=" + std::to_string(counter.value) + "\n";
  }
  return out;
}

TEST(ObsInvarianceTest, ResultBytesIdenticalWithObsOnOffAndProgress) {
  CampaignConfig config = tinyUrbanCampaign();
  obs::setEnabled(true);
  const CampaignResult withObs = runCampaign(config);

  obs::setEnabled(false);
  const CampaignResult withoutObs = runCampaign(config);
  obs::setEnabled(true);

  // --progress only writes rate-limited lines to stderr.
  config.progress = true;
  const CampaignResult withProgress = runCampaign(config);

  EXPECT_EQ(campaignPointsJson(withObs), campaignPointsJson(withoutObs));
  EXPECT_EQ(campaignCsv(withObs), campaignCsv(withoutObs));
  EXPECT_EQ(campaignPointsJson(withObs), campaignPointsJson(withProgress));
}

TEST(ObsInvarianceTest, WorkCountersEqualAcrossScheduleAxes) {
  CampaignConfig config = tinyUrbanCampaign();
  config.threads = 1;
  obs::resetAll();
  runCampaign(config);
  const std::string serial = workCounters(obs::takeSnapshot());
  ASSERT_NE(serial.find("campaign.jobs_run=8"), std::string::npos);
  ASSERT_NE(serial.find("sim.events_dispatched="), std::string::npos);
  ASSERT_NE(serial.find("mac.frames_delivered="), std::string::npos);

  config.threads = 2;
  obs::resetAll();
  runCampaign(config);
  EXPECT_EQ(workCounters(obs::takeSnapshot()), serial);

  config.streaming = true;
  obs::resetAll();
  runCampaign(config);
  EXPECT_EQ(workCounters(obs::takeSnapshot()), serial);

  config.streaming = false;
  config.roundThreads = 2;
  obs::resetAll();
  runCampaign(config);
  EXPECT_EQ(workCounters(obs::takeSnapshot()), serial);
}

TEST(ObsInvarianceTest, ShardCountersSumToTheFullRun) {
  CampaignConfig config = tinyUrbanCampaign();
  obs::resetAll();
  runCampaign(config);
  const obs::Snapshot full = obs::takeSnapshot();

  // The two shards partition the job set, so per-counter totals add up.
  config.shard = Shard{0, 2};
  obs::resetAll();
  runCampaign(config);
  const obs::Snapshot first = obs::takeSnapshot();

  config.shard = Shard{1, 2};
  obs::resetAll();
  runCampaign(config);
  const obs::Snapshot second = obs::takeSnapshot();

  for (const obs::CounterValue& counter : full.counters) {
    const bool deterministic = counter.name.rfind("sim.", 0) == 0 ||
                               counter.name.rfind("mac.", 0) == 0 ||
                               counter.name == "campaign.jobs_run";
    if (!deterministic) continue;
    EXPECT_EQ(first.counter(counter.name) + second.counter(counter.name),
              counter.value)
        << counter.name;
  }
}

}  // namespace
}  // namespace vanet::runner
