#include "obs/manifest.h"

#include <gtest/gtest.h>

#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string>

namespace vanet::obs {
namespace {

RunManifest fullManifest() {
  RunManifest manifest;
  manifest.artifact = "out/campaign.json";
  manifest.tool = "example_campaign_sweep";
  manifest.args = {"--seed=2008", "--threads=2", "--out=out"};
  manifest.gitRev = "abc1234";
  manifest.buildFlags = "Release sanitize=OFF";
  manifest.scenario = "highway";
  manifest.masterSeed = 2008;
  manifest.threads = 2;
  manifest.roundThreads = 1;
  manifest.shardIndex = 1;
  manifest.shardCount = 3;
  manifest.streaming = true;
  manifest.targetCi = 0.05;
  manifest.targetMetric = "pct_lost_after";
  manifest.wallSeconds = 1.25;
  manifest.jobsPerSecond = 12.5;
  manifest.specPath = "specs/table1.json";
  manifest.specDigest = 0xdeadbeefcafef00dULL;
  manifest.points = {{0, 4, 0.031}, {1, 8, 0.049}};
  return manifest;
}

TEST(ObsManifestTest, RoundTripsEveryField) {
  const RunManifest original = fullManifest();
  const RunManifest parsed = manifestFromJson(manifestJson(original));
  EXPECT_EQ(parsed.artifact, original.artifact);
  EXPECT_EQ(parsed.tool, original.tool);
  EXPECT_EQ(parsed.args, original.args);
  EXPECT_EQ(parsed.gitRev, original.gitRev);
  EXPECT_EQ(parsed.buildFlags, original.buildFlags);
  EXPECT_EQ(parsed.scenario, original.scenario);
  EXPECT_EQ(parsed.masterSeed, original.masterSeed);
  EXPECT_EQ(parsed.threads, original.threads);
  EXPECT_EQ(parsed.roundThreads, original.roundThreads);
  EXPECT_EQ(parsed.shardIndex, original.shardIndex);
  EXPECT_EQ(parsed.shardCount, original.shardCount);
  EXPECT_EQ(parsed.streaming, original.streaming);
  EXPECT_DOUBLE_EQ(parsed.targetCi, original.targetCi);
  EXPECT_EQ(parsed.targetMetric, original.targetMetric);
  EXPECT_DOUBLE_EQ(parsed.wallSeconds, original.wallSeconds);
  EXPECT_DOUBLE_EQ(parsed.jobsPerSecond, original.jobsPerSecond);
  EXPECT_EQ(parsed.specPath, original.specPath);
  EXPECT_EQ(parsed.specDigest, original.specDigest);
  ASSERT_EQ(parsed.points.size(), 2u);
  EXPECT_EQ(parsed.points[1].gridIndex, 1u);
  EXPECT_EQ(parsed.points[1].replications, 8);
  EXPECT_DOUBLE_EQ(parsed.points[1].achievedCi95, 0.049);
}

TEST(ObsManifestTest, RenderParseRenderIsByteExact) {
  // json::num round-trips doubles exactly, so render -> parse -> render
  // is the identity on bytes; archived sidecars can be re-canonicalised.
  const std::string text = manifestJson(fullManifest());
  EXPECT_EQ(manifestJson(manifestFromJson(text)), text);

  const std::string empty = manifestJson(RunManifest{});
  EXPECT_EQ(manifestJson(manifestFromJson(empty)), empty);
}

TEST(ObsManifestTest, RejectsForeignDocuments) {
  EXPECT_THROW(manifestFromJson("{\"format\":\"vanet-bench\",\"version\":1}"),
               std::runtime_error);
  EXPECT_THROW(manifestFromJson("not json at all"), std::runtime_error);
}

TEST(ObsManifestTest, SidecarPathAppendsSuffix) {
  EXPECT_EQ(manifestPathFor("out/campaign.csv"),
            "out/campaign.csv.manifest.json");
}

TEST(ObsManifestTest, SetRunIdentityCapturesToolBasenameAndArgs) {
  const char* argv[] = {"/usr/local/bin/my_tool", "--seed=1", "--progress"};
  setRunIdentity(3, argv);
  EXPECT_EQ(runTool(), "my_tool");
  ASSERT_EQ(runArgs().size(), 2u);
  EXPECT_EQ(runArgs()[0], "--seed=1");
  EXPECT_EQ(runArgs()[1], "--progress");

  RunManifest manifest = manifestForArtifact("a.json");
  EXPECT_EQ(manifest.artifact, "a.json");
  EXPECT_EQ(manifest.tool, "my_tool");
  EXPECT_EQ(manifest.args.size(), 2u);
  EXPECT_FALSE(manifest.gitRev.empty());
  EXPECT_FALSE(manifest.buildFlags.empty());
}

TEST(ObsManifestTest, WriteSidecarLandsNextToArtifactAndParses) {
  const std::string artifact = ::testing::TempDir() + "/manifest_probe.json";
  RunManifest manifest = fullManifest();
  manifest.artifact = artifact;
  ASSERT_TRUE(writeManifestSidecar(manifest));

  std::ifstream in(manifestPathFor(artifact));
  ASSERT_TRUE(in.good());
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  const RunManifest parsed = manifestFromJson(text);
  EXPECT_EQ(parsed.artifact, artifact);
  EXPECT_EQ(parsed.scenario, "highway");

  // Unwritable sidecar directory: warn-and-false, never throw -- the
  // artefact write must not fail because its provenance could not land.
  manifest.artifact = ::testing::TempDir() + "/no_such_dir/x.json";
  EXPECT_FALSE(writeManifestSidecar(manifest));
}

TEST(ObsManifestTest, SetRunSpecFlowsIntoEveryManifest) {
  setRunSpec("specs/ablation_speed.json", 0x0123456789abcdefULL);
  EXPECT_EQ(runSpecPath(), "specs/ablation_speed.json");
  EXPECT_EQ(runSpecDigest(), 0x0123456789abcdefULL);

  const RunManifest manifest = manifestForArtifact("b.csv");
  EXPECT_EQ(manifest.specPath, "specs/ablation_speed.json");
  EXPECT_EQ(manifest.specDigest, 0x0123456789abcdefULL);

  // The digest renders as a 16-hex-digit string (not a JSON number:
  // 64-bit values do not survive double rounding) and parses back.
  const std::string text = manifestJson(manifest);
  EXPECT_NE(text.find("\"spec_path\":\"specs/ablation_speed.json\""),
            std::string::npos);
  EXPECT_NE(text.find("\"spec_digest\":\"0123456789abcdef\""),
            std::string::npos);
  const RunManifest parsed = manifestFromJson(text);
  EXPECT_EQ(parsed.specDigest, 0x0123456789abcdefULL);

  setRunSpec("", 0);  // reset for the other tests in this binary
}

TEST(ObsManifestTest, ManifestsWithoutSpecKeysStillParse) {
  // Sidecars written before the spec layer carry no spec_path or
  // spec_digest; they parse with the flag-assembled defaults.
  RunManifest old = fullManifest();
  old.specPath.clear();
  old.specDigest = 0;
  std::string text = manifestJson(old);
  // The normalized form always renders the keys; simulate an archived
  // pre-spec sidecar by removing them line by line.
  std::string pruned;
  for (std::size_t start = 0; start < text.size();) {
    const std::size_t end = text.find('\n', start);
    const std::string line = text.substr(start, end - start + 1);
    if (line.find("\"spec_path\"") == std::string::npos &&
        line.find("\"spec_digest\"") == std::string::npos) {
      pruned += line;
    }
    start = end + 1;
  }
  const RunManifest parsed = manifestFromJson(pruned);
  EXPECT_EQ(parsed.specPath, "");
  EXPECT_EQ(parsed.specDigest, 0u);
  EXPECT_EQ(parsed.scenario, old.scenario);
}

TEST(ObsManifestTest, MalformedSpecDigestIsRejected) {
  RunManifest manifest = fullManifest();
  std::string text = manifestJson(manifest);
  const std::string needle = "\"spec_digest\":\"";
  const std::size_t at = text.find(needle);
  ASSERT_NE(at, std::string::npos);
  text.replace(at, needle.size() + 16, needle + "not-hexadecimal!");
  EXPECT_THROW(manifestFromJson(text), std::runtime_error);
}

}  // namespace
}  // namespace vanet::obs
