#include "obs/manifest.h"

#include <gtest/gtest.h>

#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string>

namespace vanet::obs {
namespace {

RunManifest fullManifest() {
  RunManifest manifest;
  manifest.artifact = "out/campaign.json";
  manifest.tool = "example_campaign_sweep";
  manifest.args = {"--seed=2008", "--threads=2", "--out=out"};
  manifest.gitRev = "abc1234";
  manifest.buildFlags = "Release sanitize=OFF";
  manifest.scenario = "highway";
  manifest.masterSeed = 2008;
  manifest.threads = 2;
  manifest.roundThreads = 1;
  manifest.shardIndex = 1;
  manifest.shardCount = 3;
  manifest.streaming = true;
  manifest.targetCi = 0.05;
  manifest.targetMetric = "pct_lost_after";
  manifest.wallSeconds = 1.25;
  manifest.jobsPerSecond = 12.5;
  manifest.points = {{0, 4, 0.031}, {1, 8, 0.049}};
  return manifest;
}

TEST(ObsManifestTest, RoundTripsEveryField) {
  const RunManifest original = fullManifest();
  const RunManifest parsed = manifestFromJson(manifestJson(original));
  EXPECT_EQ(parsed.artifact, original.artifact);
  EXPECT_EQ(parsed.tool, original.tool);
  EXPECT_EQ(parsed.args, original.args);
  EXPECT_EQ(parsed.gitRev, original.gitRev);
  EXPECT_EQ(parsed.buildFlags, original.buildFlags);
  EXPECT_EQ(parsed.scenario, original.scenario);
  EXPECT_EQ(parsed.masterSeed, original.masterSeed);
  EXPECT_EQ(parsed.threads, original.threads);
  EXPECT_EQ(parsed.roundThreads, original.roundThreads);
  EXPECT_EQ(parsed.shardIndex, original.shardIndex);
  EXPECT_EQ(parsed.shardCount, original.shardCount);
  EXPECT_EQ(parsed.streaming, original.streaming);
  EXPECT_DOUBLE_EQ(parsed.targetCi, original.targetCi);
  EXPECT_EQ(parsed.targetMetric, original.targetMetric);
  EXPECT_DOUBLE_EQ(parsed.wallSeconds, original.wallSeconds);
  EXPECT_DOUBLE_EQ(parsed.jobsPerSecond, original.jobsPerSecond);
  ASSERT_EQ(parsed.points.size(), 2u);
  EXPECT_EQ(parsed.points[1].gridIndex, 1u);
  EXPECT_EQ(parsed.points[1].replications, 8);
  EXPECT_DOUBLE_EQ(parsed.points[1].achievedCi95, 0.049);
}

TEST(ObsManifestTest, RenderParseRenderIsByteExact) {
  // json::num round-trips doubles exactly, so render -> parse -> render
  // is the identity on bytes; archived sidecars can be re-canonicalised.
  const std::string text = manifestJson(fullManifest());
  EXPECT_EQ(manifestJson(manifestFromJson(text)), text);

  const std::string empty = manifestJson(RunManifest{});
  EXPECT_EQ(manifestJson(manifestFromJson(empty)), empty);
}

TEST(ObsManifestTest, RejectsForeignDocuments) {
  EXPECT_THROW(manifestFromJson("{\"format\":\"vanet-bench\",\"version\":1}"),
               std::runtime_error);
  EXPECT_THROW(manifestFromJson("not json at all"), std::runtime_error);
}

TEST(ObsManifestTest, SidecarPathAppendsSuffix) {
  EXPECT_EQ(manifestPathFor("out/campaign.csv"),
            "out/campaign.csv.manifest.json");
}

TEST(ObsManifestTest, SetRunIdentityCapturesToolBasenameAndArgs) {
  const char* argv[] = {"/usr/local/bin/my_tool", "--seed=1", "--progress"};
  setRunIdentity(3, argv);
  EXPECT_EQ(runTool(), "my_tool");
  ASSERT_EQ(runArgs().size(), 2u);
  EXPECT_EQ(runArgs()[0], "--seed=1");
  EXPECT_EQ(runArgs()[1], "--progress");

  RunManifest manifest = manifestForArtifact("a.json");
  EXPECT_EQ(manifest.artifact, "a.json");
  EXPECT_EQ(manifest.tool, "my_tool");
  EXPECT_EQ(manifest.args.size(), 2u);
  EXPECT_FALSE(manifest.gitRev.empty());
  EXPECT_FALSE(manifest.buildFlags.empty());
}

TEST(ObsManifestTest, WriteSidecarLandsNextToArtifactAndParses) {
  const std::string artifact = ::testing::TempDir() + "/manifest_probe.json";
  RunManifest manifest = fullManifest();
  manifest.artifact = artifact;
  ASSERT_TRUE(writeManifestSidecar(manifest));

  std::ifstream in(manifestPathFor(artifact));
  ASSERT_TRUE(in.good());
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  const RunManifest parsed = manifestFromJson(text);
  EXPECT_EQ(parsed.artifact, artifact);
  EXPECT_EQ(parsed.scenario, "highway");

  // Unwritable sidecar directory: warn-and-false, never throw -- the
  // artefact write must not fail because its provenance could not land.
  manifest.artifact = ::testing::TempDir() + "/no_such_dir/x.json";
  EXPECT_FALSE(writeManifestSidecar(manifest));
}

}  // namespace
}  // namespace vanet::obs
