#include "obs/counters.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace vanet::obs {
namespace {

/// Every test owns distinct counter names (the registry is process-wide
/// and monotonic), and resets the cells it is about to read.

TEST(ObsCountersTest, GetInternsOnceAndAddAccumulates) {
  Counter& a = Counter::get("test.counters.basic");
  Counter& b = Counter::get("test.counters.basic");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.name(), "test.counters.basic");

  resetAll();
  a.add();
  a.add(41);
  EXPECT_EQ(takeSnapshot().counter("test.counters.basic"), 42u);
}

TEST(ObsCountersTest, SnapshotIsNameSortedAndKeepsZeroEntries) {
  Counter::get("test.counters.zzz");
  Counter::get("test.counters.aaa");
  resetAll();
  Counter::get("test.counters.aaa").add(1);
  const Snapshot snapshot = takeSnapshot();
  ASSERT_GE(snapshot.counters.size(), 2u);
  for (std::size_t i = 1; i < snapshot.counters.size(); ++i) {
    EXPECT_LT(snapshot.counters[i - 1].name, snapshot.counters[i].name);
  }
  // A zero-valued counter still appears: the vocabulary is the schema.
  EXPECT_EQ(snapshot.counter("test.counters.zzz"), 0u);
  EXPECT_EQ(snapshot.counter("test.counters.never_interned"), 0u);
}

TEST(ObsCountersTest, MergeAcrossThreadsIsExactRegardlessOfSchedule) {
  Counter& counter = Counter::get("test.counters.threads");
  resetAll();
  constexpr int kThreads = 4;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&counter] {
      for (int i = 0; i < kAddsPerThread; ++i) counter.add();
    });
  }
  for (std::thread& worker : workers) worker.join();
  // Some slabs are retired (threads exited), some may be live; the merge
  // must see every add exactly once either way.
  EXPECT_EQ(takeSnapshot().counter("test.counters.threads"),
            static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
}

TEST(ObsCountersTest, DisabledRegistryDropsCountsAndTimersReadNoClock) {
  Counter& counter = Counter::get("test.counters.disabled");
  Timer& timer = Timer::get("test.timers.disabled");
  resetAll();
  setEnabled(false);
  counter.add(7);
  { ScopedTimer scope(timer); }
  setEnabled(true);
  const Snapshot snapshot = takeSnapshot();
  EXPECT_EQ(snapshot.counter("test.counters.disabled"), 0u);
  EXPECT_EQ(snapshot.timer("test.timers.disabled").count, 0u);
}

TEST(ObsCountersTest, ScopedTimerRecordsCountAndNanos) {
  Timer& timer = Timer::get("test.timers.scoped");
  resetAll();
  { ScopedTimer scope(timer); }
  { ScopedTimer scope(timer); }
  timer.record(1000);
  const TimerValue value = takeSnapshot().timer("test.timers.scoped");
  EXPECT_EQ(value.count, 3u);
  EXPECT_GE(value.totalNanos, 1000u);
}

TEST(ObsCountersTest, ResetZeroesRetiredSlabsToo) {
  Counter& counter = Counter::get("test.counters.reset");
  resetAll();
  std::thread([&counter] { counter.add(5); }).join();
  EXPECT_EQ(takeSnapshot().counter("test.counters.reset"), 5u);
  resetAll();
  EXPECT_EQ(takeSnapshot().counter("test.counters.reset"), 0u);
}

TEST(ObsCountersTest, SnapshotJsonRendersBothSections) {
  Counter::get("test.counters.json").add(0);
  Timer::get("test.timers.json").record(0);
  resetAll();
  Counter::get("test.counters.json").add(3);
  const std::string json = snapshotJson(takeSnapshot());
  EXPECT_EQ(json.rfind("{\"counters\":{", 0), 0u);
  EXPECT_NE(json.find("\"test.counters.json\":3"), std::string::npos);
  EXPECT_NE(json.find("\"timers\":{"), std::string::npos);
  EXPECT_NE(json.find("\"test.timers.json\":{\"count\":0,\"total_ns\":0}"),
            std::string::npos);
}

}  // namespace
}  // namespace vanet::obs
