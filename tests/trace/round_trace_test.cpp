#include "trace/round_trace.h"

#include <gtest/gtest.h>

namespace vanet::trace {
namespace {

using sim::SimTime;

RoundTrace threeCars() { return RoundTrace{{1, 2, 3}}; }

TEST(RoundTraceTest, TxLogKeepsFirstCopyOnly) {
  RoundTrace trace = threeCars();
  trace.recordApTx(1, 1, 0, SimTime::seconds(1.0));
  trace.recordApTx(1, 1, 1, SimTime::seconds(1.2));  // blind retransmission
  ASSERT_TRUE(trace.txTime(1, 1).has_value());
  EXPECT_EQ(*trace.txTime(1, 1), SimTime::seconds(1.0));
  EXPECT_EQ(trace.txCount(1), 1u);
}

TEST(RoundTraceTest, MaxSeqTransmitted) {
  RoundTrace trace = threeCars();
  EXPECT_EQ(trace.maxSeqTransmitted(1), 0);
  trace.recordApTx(1, 3, 0, SimTime::seconds(1.0));
  trace.recordApTx(1, 7, 0, SimTime::seconds(2.0));
  EXPECT_EQ(trace.maxSeqTransmitted(1), 7);
  EXPECT_EQ(trace.maxSeqTransmitted(2), 0);
}

TEST(RoundTraceTest, OverhearAndJoint) {
  RoundTrace trace = threeCars();
  trace.recordOverhear(2, 1, 5, SimTime::seconds(1.0));
  EXPECT_TRUE(trace.wasOverheard(2, 1, 5));
  EXPECT_FALSE(trace.wasOverheard(1, 1, 5));
  EXPECT_TRUE(trace.anyOverheard(1, 5));
  EXPECT_FALSE(trace.anyOverheard(1, 6));
  EXPECT_FALSE(trace.anyOverheard(2, 5));
}

TEST(RoundTraceTest, RecoveredBookkeeping) {
  RoundTrace trace = threeCars();
  trace.recordRecovered(1, 9, SimTime::seconds(30.0));
  EXPECT_TRUE(trace.wasRecovered(1, 9));
  EXPECT_FALSE(trace.wasRecovered(2, 9));
  EXPECT_FALSE(trace.wasRecovered(1, 8));
}

TEST(RoundTraceTest, AssociationWindowNeedsOwnFlow) {
  RoundTrace trace = threeCars();
  EXPECT_FALSE(trace.associationWindow(1).has_value());
  // Overhearing a foreign flow does not open the window...
  trace.recordOverhear(1, 2, 1, SimTime::seconds(1.0));
  EXPECT_FALSE(trace.associationWindow(1).has_value());
  // ...but an own-flow packet does.
  trace.recordOverhear(1, 1, 1, SimTime::seconds(2.0));
  const auto window = trace.associationWindow(1);
  ASSERT_TRUE(window.has_value());
  EXPECT_EQ(window->first, SimTime::seconds(2.0));
  EXPECT_EQ(window->second, SimTime::seconds(2.0));
}

TEST(RoundTraceTest, WindowEndIsLastAnyFlowReception) {
  RoundTrace trace = threeCars();
  trace.recordOverhear(1, 1, 1, SimTime::seconds(2.0));
  trace.recordOverhear(1, 3, 9, SimTime::seconds(8.0));  // foreign flow
  const auto window = trace.associationWindow(1);
  ASSERT_TRUE(window.has_value());
  EXPECT_EQ(window->first, SimTime::seconds(2.0));
  EXPECT_EQ(window->second, SimTime::seconds(8.0));
}

TEST(RoundTraceTest, OutOfOrderRecordingIsSupported) {
  // Traces may be assembled in any order (the aggregators rely on
  // min/max semantics, not insertion order).
  RoundTrace trace = threeCars();
  trace.recordOverhear(1, 1, 5, SimTime::seconds(9.0));
  trace.recordOverhear(1, 1, 1, SimTime::seconds(2.0));  // earlier, later
  trace.recordOverhear(1, 2, 9, SimTime::seconds(1.0));  // earliest overall
  const auto window = trace.associationWindow(1);
  ASSERT_TRUE(window.has_value());
  EXPECT_EQ(window->first, SimTime::seconds(2.0));
  EXPECT_EQ(window->second, SimTime::seconds(9.0));
  ASSERT_TRUE(trace.firstOverhearTime(1).has_value());
  EXPECT_EQ(*trace.firstOverhearTime(1), SimTime::seconds(1.0));
  const auto& times = trace.directRxTimes(1);
  ASSERT_EQ(times.size(), 2u);
  EXPECT_LT(times[0], times[1]);  // sorted despite reversed insertion
}

TEST(RoundTraceTest, SeqsTransmittedDuringFiltersByTime) {
  RoundTrace trace = threeCars();
  for (SeqNo seq = 1; seq <= 10; ++seq) {
    trace.recordApTx(1, seq, 0, SimTime::seconds(static_cast<double>(seq)));
  }
  const auto seqs =
      trace.seqsTransmittedDuring(1, SimTime::seconds(3.0), SimTime::seconds(6.0));
  EXPECT_EQ(seqs, (std::vector<SeqNo>{3, 4, 5, 6}));
}

TEST(RoundTraceTest, FirstOverhearTime) {
  RoundTrace trace = threeCars();
  EXPECT_FALSE(trace.firstOverhearTime(1).has_value());
  trace.recordOverhear(1, 2, 4, SimTime::seconds(5.0));
  trace.recordOverhear(1, 1, 1, SimTime::seconds(7.0));
  ASSERT_TRUE(trace.firstOverhearTime(1).has_value());
  EXPECT_EQ(*trace.firstOverhearTime(1), SimTime::seconds(5.0));
}

TEST(RoundTraceTest, DirectRxTimesOwnFlowOnly) {
  RoundTrace trace = threeCars();
  trace.recordOverhear(1, 1, 1, SimTime::seconds(1.0));
  trace.recordOverhear(1, 2, 1, SimTime::seconds(2.0));
  trace.recordOverhear(1, 1, 2, SimTime::seconds(3.0));
  const auto& times = trace.directRxTimes(1);
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(times[0], SimTime::seconds(1.0));
  EXPECT_EQ(times[1], SimTime::seconds(3.0));
  EXPECT_TRUE(trace.directRxTimes(3).empty());
}

}  // namespace
}  // namespace vanet::trace
