#include "trace/aggregate.h"

#include <gtest/gtest.h>

namespace vanet::trace {
namespace {

using sim::SimTime;

/// Builds a round where, for each car's flow, `txCount` packets are
/// transmitted inside the car's window, the destination directly receives
/// all but `lostBefore`, and recovers `recoveredCount` of the lost ones
/// (which another car overheard).
RoundTrace syntheticRound(int txCount, int lostBefore, int recoveredCount) {
  RoundTrace trace{{1, 2}};
  for (const NodeId car : {1, 2}) {
    const NodeId helper = car == 1 ? 2 : 1;
    for (SeqNo seq = 1; seq <= txCount; ++seq) {
      const double t = static_cast<double>(seq);
      trace.recordApTx(car, seq, 0, SimTime::seconds(t));
      if (seq > lostBefore) {
        trace.recordOverhear(car, car, seq, SimTime::seconds(t));
      } else {
        // Lost at destination; the helper overheard it.
        trace.recordOverhear(helper, car, seq, SimTime::seconds(t));
      }
    }
    // The destination's window must span all transmissions: make sure it
    // received the first and last packet (adjust bookkeeping packets).
    trace.recordOverhear(car, car, 1, SimTime::seconds(1.0));
    trace.recordOverhear(car, car, txCount,
                         SimTime::seconds(static_cast<double>(txCount)));
    for (SeqNo seq = 2; seq <= 1 + recoveredCount && seq <= lostBefore; ++seq) {
      trace.recordRecovered(car, seq, SimTime::seconds(100.0));
    }
  }
  return trace;
}

TEST(Table1AccumulatorTest, SingleRoundCounts) {
  // 10 packets; seqs 1..3 "lost" but seq 1 then marked received for the
  // window, so before-losses are seqs 2,3 = 2; one of them recovered.
  Table1Accumulator acc;
  acc.addRound(syntheticRound(10, 3, 1));
  const Table1Data data = acc.data();
  EXPECT_EQ(data.rounds, 1);
  ASSERT_EQ(data.rows.size(), 2u);
  for (const auto& row : data.rows) {
    EXPECT_DOUBLE_EQ(row.txByAp.mean(), 10.0);
    EXPECT_DOUBLE_EQ(row.lostBefore.mean(), 2.0);
    EXPECT_DOUBLE_EQ(row.lostAfter.mean(), 1.0);
    EXPECT_DOUBLE_EQ(row.lostJoint.mean(), 0.0);  // helper heard everything
    EXPECT_DOUBLE_EQ(row.pctLostBefore.mean(), 20.0);
    EXPECT_DOUBLE_EQ(row.pctLostAfter.mean(), 10.0);
  }
}

TEST(Table1AccumulatorTest, MeansAcrossRounds) {
  Table1Accumulator acc;
  acc.addRound(syntheticRound(10, 3, 1));  // 2 lost before, 1 after
  acc.addRound(syntheticRound(10, 5, 3));  // 4 lost before, 1 after
  const Table1Data data = acc.data();
  EXPECT_EQ(data.rounds, 2);
  const auto& row = data.rows.front();
  EXPECT_DOUBLE_EQ(row.lostBefore.mean(), 3.0);
  EXPECT_DOUBLE_EQ(row.lostAfter.mean(), 1.0);
  EXPECT_GT(row.lostBefore.stddev(), 0.0);
}

TEST(Table1AccumulatorTest, CarThatNeverHeardApRecordsZeros) {
  RoundTrace trace{{1, 2}};
  trace.recordApTx(1, 1, 0, SimTime::seconds(1.0));
  trace.recordApTx(2, 1, 0, SimTime::seconds(1.1));
  trace.recordOverhear(1, 1, 1, SimTime::seconds(1.0));
  Table1Accumulator acc;
  acc.addRound(trace);
  const Table1Data data = acc.data();
  const auto& row2 = data.rows.back();
  EXPECT_EQ(row2.car, 2);
  EXPECT_DOUBLE_EQ(row2.txByAp.mean(), 0.0);
  EXPECT_EQ(row2.pctLostBefore.count(), 0u);  // no percentage sample
}

TEST(Table1AccumulatorTest, AfterNeverExceedsBeforeAndJointIsLowerBound) {
  Table1Accumulator acc;
  for (int r = 0; r < 5; ++r) {
    acc.addRound(syntheticRound(20, 4 + r, r));
  }
  for (const auto& row : acc.data().rows) {
    EXPECT_LE(row.lostAfter.mean(), row.lostBefore.mean());
    EXPECT_LE(row.lostJoint.mean(), row.lostAfter.mean());
  }
}

TEST(FigureAccumulatorTest, SeriesProbabilities) {
  FigureAccumulator acc;
  // Round A: car 1 receives seq 1 and 2; round B: only seq 1.
  RoundTrace a{{1, 2}};
  a.recordApTx(1, 1, 0, SimTime::seconds(1.0));
  a.recordApTx(1, 2, 0, SimTime::seconds(2.0));
  a.recordOverhear(1, 1, 1, SimTime::seconds(1.0));
  a.recordOverhear(1, 1, 2, SimTime::seconds(2.0));
  acc.addRound(a);
  RoundTrace b{{1, 2}};
  b.recordApTx(1, 1, 0, SimTime::seconds(1.0));
  b.recordApTx(1, 2, 0, SimTime::seconds(2.0));
  b.recordOverhear(1, 1, 1, SimTime::seconds(1.0));
  b.recordOverhear(1, 1, 2, SimTime::seconds(2.0));
  // Pretend car 1 missed seq 2 in round b: rebuild without it.
  RoundTrace b2{{1, 2}};
  b2.recordApTx(1, 1, 0, SimTime::seconds(1.0));
  b2.recordApTx(1, 2, 0, SimTime::seconds(2.0));
  b2.recordOverhear(1, 1, 1, SimTime::seconds(1.0));
  b2.recordOverhear(1, 1, 2, SimTime::seconds(2.0));
  // (window end must cover seq 2's tx for it to count as lost)
  acc.addRound(b2);

  const auto& figure = acc.flows().at(1);
  const auto means = figure.rxByCar.at(1).means();
  ASSERT_GE(means.size(), 2u);
  EXPECT_DOUBLE_EQ(means[0], 1.0);
  EXPECT_DOUBLE_EQ(means[1], 1.0);
  EXPECT_EQ(acc.rounds(), 2);
}

TEST(FigureAccumulatorTest, AfterCoopAndJointSeries) {
  FigureAccumulator acc;
  RoundTrace trace{{1, 2}};
  for (SeqNo seq = 1; seq <= 3; ++seq) {
    trace.recordApTx(1, seq, 0, SimTime::seconds(static_cast<double>(seq)));
  }
  trace.recordOverhear(1, 1, 1, SimTime::seconds(1.0));
  trace.recordOverhear(2, 1, 2, SimTime::seconds(2.0));
  trace.recordOverhear(1, 1, 3, SimTime::seconds(3.0));
  trace.recordRecovered(1, 2, SimTime::seconds(50.0));
  acc.addRound(trace);

  const auto& figure = acc.flows().at(1);
  const auto after = figure.afterCoop.means();
  const auto joint = figure.joint.means();
  ASSERT_EQ(after.size(), 3u);
  EXPECT_DOUBLE_EQ(after[0], 1.0);
  EXPECT_DOUBLE_EQ(after[1], 1.0);  // recovered
  EXPECT_DOUBLE_EQ(after[2], 1.0);
  EXPECT_DOUBLE_EQ(joint[1], 1.0);
  // afterCoop <= joint for every index.
  for (std::size_t i = 0; i < after.size(); ++i) {
    EXPECT_LE(after[i], joint[i] + 1e-12);
  }
}

TEST(FigureAccumulatorTest, RegionBoundariesWithinDomain) {
  FigureAccumulator acc;
  RoundTrace trace{{1, 2}};
  for (SeqNo seq = 1; seq <= 20; ++seq) {
    trace.recordApTx(1, seq, 0, SimTime::seconds(static_cast<double>(seq)));
    trace.recordOverhear(1, 1, seq, SimTime::seconds(static_cast<double>(seq)));
  }
  // Car 2 only joins from t=10: boundary12 must land around seq 10.
  trace.recordOverhear(2, 1, 10, SimTime::seconds(10.0));
  acc.addRound(trace);
  const auto& figure = acc.flows().at(1);
  EXPECT_NEAR(figure.regionBoundary12.mean(), 10.0, 1.0);
  EXPECT_GE(figure.regionBoundary23.mean(), figure.regionBoundary12.mean());
  EXPECT_LE(figure.regionBoundary23.mean(), 20.0);
}

}  // namespace
}  // namespace vanet::trace
