#include "trace/reception_matrix.h"

#include <gtest/gtest.h>

namespace vanet::trace {
namespace {

using sim::SimTime;

RoundTrace scriptedRound() {
  RoundTrace trace{{1, 2, 3}};
  // Flow 1: seqs 1..4 transmitted.
  for (SeqNo seq = 1; seq <= 4; ++seq) {
    trace.recordApTx(1, seq, 0, SimTime::seconds(static_cast<double>(seq)));
  }
  // Car 1 receives 1 and 4; car 2 receives 2; car 3 receives nothing.
  trace.recordOverhear(1, 1, 1, SimTime::seconds(1.0));
  trace.recordOverhear(1, 1, 4, SimTime::seconds(4.0));
  trace.recordOverhear(2, 1, 2, SimTime::seconds(2.0));
  // Car 1 recovers seq 2 via cooperation.
  trace.recordRecovered(1, 2, SimTime::seconds(20.0));
  return trace;
}

TEST(ReceptionMatrixTest, DimensionsFromTrace) {
  const RoundTrace trace = scriptedRound();
  const ReceptionMatrix matrix(trace, 1);
  EXPECT_EQ(matrix.flow(), 1);
  EXPECT_EQ(matrix.maxSeq(), 4);
  EXPECT_EQ(matrix.carIds().size(), 3u);
}

TEST(ReceptionMatrixTest, DirectReceptions) {
  const ReceptionMatrix matrix(scriptedRound(), 1);
  EXPECT_TRUE(matrix.received(1, 1));
  EXPECT_FALSE(matrix.received(1, 2));
  EXPECT_TRUE(matrix.received(2, 2));
  EXPECT_FALSE(matrix.received(3, 1));
  EXPECT_EQ(matrix.receivedCount(1), 2);
  EXPECT_EQ(matrix.receivedCount(2), 1);
  EXPECT_EQ(matrix.receivedCount(3), 0);
}

TEST(ReceptionMatrixTest, JointIsUnionOfCars) {
  const ReceptionMatrix matrix(scriptedRound(), 1);
  EXPECT_TRUE(matrix.joint(1));
  EXPECT_TRUE(matrix.joint(2));
  EXPECT_FALSE(matrix.joint(3));
  EXPECT_TRUE(matrix.joint(4));
  EXPECT_EQ(matrix.jointCount(), 3);
}

TEST(ReceptionMatrixTest, AfterCoopIsDirectPlusRecovered) {
  const ReceptionMatrix matrix(scriptedRound(), 1);
  EXPECT_TRUE(matrix.afterCoop(1));   // direct
  EXPECT_TRUE(matrix.afterCoop(2));   // recovered
  EXPECT_FALSE(matrix.afterCoop(3));  // lost everywhere
  EXPECT_TRUE(matrix.afterCoop(4));
  EXPECT_EQ(matrix.afterCoopCount(), 3);
}

TEST(ReceptionMatrixTest, OptimalityInvariantHolds) {
  // afterCoop can never exceed joint: a car cannot end up with packets no
  // platoon member received.
  const ReceptionMatrix matrix(scriptedRound(), 1);
  for (SeqNo seq = 1; seq <= matrix.maxSeq(); ++seq) {
    EXPECT_LE(matrix.afterCoop(seq), matrix.joint(seq)) << "seq " << seq;
  }
}

TEST(ReceptionMatrixTest, EmptyFlow) {
  RoundTrace trace{{1, 2}};
  const ReceptionMatrix matrix(trace, 1);
  EXPECT_EQ(matrix.maxSeq(), 0);
  EXPECT_EQ(matrix.jointCount(), 0);
}

TEST(ReceptionMatrixDeathTest, RejectsUnknownCarAndBadSeq) {
  const ReceptionMatrix matrix(scriptedRound(), 1);
  EXPECT_DEATH(matrix.received(9, 1), "not part");
  EXPECT_DEATH(matrix.received(1, 0), "out of range");
  EXPECT_DEATH(matrix.joint(5), "out of range");
}

}  // namespace
}  // namespace vanet::trace
