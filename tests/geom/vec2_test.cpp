#include "geom/vec2.h"

#include <gtest/gtest.h>

namespace vanet::geom {
namespace {

TEST(Vec2Test, Arithmetic) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, -4.0};
  EXPECT_EQ(a + b, (Vec2{4.0, -2.0}));
  EXPECT_EQ(a - b, (Vec2{-2.0, 6.0}));
  EXPECT_EQ(a * 2.0, (Vec2{2.0, 4.0}));
  EXPECT_EQ(2.0 * a, (Vec2{2.0, 4.0}));
  EXPECT_EQ(b / 2.0, (Vec2{1.5, -2.0}));
}

TEST(Vec2Test, DotAndNorm) {
  const Vec2 a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.normSquared(), 25.0);
  EXPECT_DOUBLE_EQ(a.dot(Vec2{1.0, 0.0}), 3.0);
  EXPECT_DOUBLE_EQ(a.dot(a), 25.0);
}

TEST(Vec2Test, Normalized) {
  const Vec2 a{3.0, 4.0};
  const Vec2 n = a.normalized();
  EXPECT_DOUBLE_EQ(n.norm(), 1.0);
  EXPECT_DOUBLE_EQ(n.x, 0.6);
  EXPECT_DOUBLE_EQ(n.y, 0.8);
}

TEST(Vec2Test, NormalizedZeroIsZero) {
  const Vec2 z{};
  EXPECT_EQ(z.normalized(), z);
}

TEST(Vec2Test, Distance) {
  EXPECT_DOUBLE_EQ(distance(Vec2{0.0, 0.0}, Vec2{3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(distance(Vec2{1.0, 1.0}, Vec2{1.0, 1.0}), 0.0);
}

TEST(Vec2Test, Lerp) {
  const Vec2 a{0.0, 0.0};
  const Vec2 b{10.0, -10.0};
  EXPECT_EQ(lerp(a, b, 0.0), a);
  EXPECT_EQ(lerp(a, b, 1.0), b);
  EXPECT_EQ(lerp(a, b, 0.5), (Vec2{5.0, -5.0}));
}

TEST(Vec2Test, CompoundAssign) {
  Vec2 a{1.0, 1.0};
  a += Vec2{2.0, 3.0};
  EXPECT_EQ(a, (Vec2{3.0, 4.0}));
}

}  // namespace
}  // namespace vanet::geom
