#include "geom/polyline.h"

#include <gtest/gtest.h>

namespace vanet::geom {
namespace {

Polyline lShape() {
  return Polyline{{{0.0, 0.0}, {10.0, 0.0}, {10.0, 5.0}}};
}

TEST(PolylineTest, LengthAndVertexArcs) {
  const Polyline p = lShape();
  EXPECT_DOUBLE_EQ(p.length(), 15.0);
  EXPECT_DOUBLE_EQ(p.arcAtVertex(0), 0.0);
  EXPECT_DOUBLE_EQ(p.arcAtVertex(1), 10.0);
  EXPECT_DOUBLE_EQ(p.arcAtVertex(2), 15.0);
  EXPECT_EQ(p.segmentCount(), 2u);
}

TEST(PolylineTest, PointAtInterpolates) {
  const Polyline p = lShape();
  EXPECT_EQ(p.pointAt(0.0), (Vec2{0.0, 0.0}));
  EXPECT_EQ(p.pointAt(5.0), (Vec2{5.0, 0.0}));
  EXPECT_EQ(p.pointAt(10.0), (Vec2{10.0, 0.0}));
  EXPECT_EQ(p.pointAt(12.5), (Vec2{10.0, 2.5}));
  EXPECT_EQ(p.pointAt(15.0), (Vec2{10.0, 5.0}));
}

TEST(PolylineTest, PointAtClampsOutOfRange) {
  const Polyline p = lShape();
  EXPECT_EQ(p.pointAt(-3.0), (Vec2{0.0, 0.0}));
  EXPECT_EQ(p.pointAt(99.0), (Vec2{10.0, 5.0}));
}

TEST(PolylineTest, WrappedPointForLoops) {
  const Polyline loop = makeRectangleLoop(10.0, 5.0);
  EXPECT_DOUBLE_EQ(loop.length(), 30.0);
  EXPECT_EQ(loop.pointAtWrapped(0.0), (Vec2{0.0, 0.0}));
  EXPECT_EQ(loop.pointAtWrapped(30.0), (Vec2{0.0, 0.0}));
  EXPECT_EQ(loop.pointAtWrapped(35.0), loop.pointAt(5.0));
  EXPECT_EQ(loop.pointAtWrapped(-5.0), loop.pointAt(25.0));
}

TEST(PolylineTest, TangentPerSegment) {
  const Polyline p = lShape();
  EXPECT_EQ(p.tangentAt(5.0), (Vec2{1.0, 0.0}));
  EXPECT_EQ(p.tangentAt(12.0), (Vec2{0.0, 1.0}));
}

TEST(PolylineTest, ProjectOntoSegments) {
  const Polyline p = lShape();
  // Point above the first segment projects straight down.
  EXPECT_DOUBLE_EQ(p.project(Vec2{4.0, 3.0}), 4.0);
  // Point right of the second segment.
  EXPECT_DOUBLE_EQ(p.project(Vec2{12.0, 2.0}), 12.0);
  // Point beyond the end clamps to the last vertex.
  EXPECT_DOUBLE_EQ(p.project(Vec2{10.0, 50.0}), 15.0);
}

TEST(PolylineTest, ProjectVertexRoundTrip) {
  const Polyline p = makeRectangleLoop(20.0, 10.0);
  for (double s = 0.0; s < p.length(); s += 2.5) {
    EXPECT_NEAR(p.project(p.pointAt(s)), s, 1e-9) << "arc " << s;
  }
}

TEST(PolylineTest, RectangleLoopClosed) {
  const Polyline loop = makeRectangleLoop(10.0, 5.0);
  EXPECT_EQ(loop.vertices().front(), loop.vertices().back());
  EXPECT_EQ(loop.vertices().size(), 5u);
}

TEST(PolylineDeathTest, RejectsDegenerateInput) {
  EXPECT_DEATH((Polyline{{{0.0, 0.0}}}), "two vertices");
  EXPECT_DEATH((Polyline{{{0.0, 0.0}, {0.0, 0.0}}}), "zero-length");
}

}  // namespace
}  // namespace vanet::geom
