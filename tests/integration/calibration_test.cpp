#include <gtest/gtest.h>

#include "analysis/experiment.h"
#include "analysis/round.h"
#include "mac/airtime.h"

namespace vanet::analysis {
namespace {

/// Empirical per-frame success probability for a car parked at `pos`
/// listening to the urban AP, under the default channel (Rayleigh fading
/// sampled `trials` times over fresh shadowing fields).
double successProbabilityAt(geom::Vec2 pos, int trials = 4000) {
  const mobility::UrbanLoopScenario scenario(mobility::UrbanLoopConfig{}, 1);
  const geom::Vec2 apPos = scenario.apPosition();
  const ChannelConfig channelConfig;  // urban defaults
  const double halfWidth = channelConfig.streetHalfWidthMetres;
  const double slope = channelConfig.obstructionDbPerMetre;
  const double cap = channelConfig.obstructionCapDb;
  const int bits = mac::frameBits(1000);

  int successes = 0;
  for (int trial = 0; trial < trials; ++trial) {
    Rng rng{static_cast<std::uint64_t>(trial) + 1};
    auto link = buildLinkModel(
        scenario.path(), channelConfig, rng.child("link"),
        [halfWidth, slope, cap](geom::Vec2 p) {
          return std::min(cap, slope * std::max(0.0, p.y - halfWidth));
        });
    Rng frameRng = rng.child("frame");
    const double mean = link->meanRxPowerDbm(kFirstApId, apPos, 18.0, 1, pos);
    const double faded = link->fadedRxPowerDbm(mean, frameRng);
    if (faded < link->budget().sensitivityDbm) continue;
    const double snr = faded - link->budget().noiseFloorDbm;
    if (frameRng.bernoulli(link->successProbability(
            channel::PhyMode::kDsss1Mbps, snr, bits))) {
      ++successes;
    }
  }
  return static_cast<double>(successes) / trials;
}

/// These bounds pin the calibrated urban channel in the regime that
/// produces the paper's Table 1 (23-29 % window losses). If a channel or
/// scenario change moves them, the headline reproduction moves with it,
/// so fail loudly here rather than mysteriously there.

TEST(ChannelCalibrationTest, MidStreetIsNearlyLossless) {
  // Opposite the AP (distance ~8 m): Region II plateau.
  const double p = successProbabilityAt({80.0, 0.0});
  EXPECT_GT(p, 0.95);
}

TEST(ChannelCalibrationTest, QuarterStreetIsStrong) {
  const double p = successProbabilityAt({40.0, 0.0});
  EXPECT_GT(p, 0.60);
  EXPECT_LT(p, 0.90);
}

TEST(ChannelCalibrationTest, StreetCornersAreMarginal) {
  // Coverage entry/exit (~80 m): the loss ramp the regions are made of.
  const double pEntry = successProbabilityAt({0.0, 0.0});
  const double pExit = successProbabilityAt({160.0, 0.0});
  EXPECT_GT(pEntry, 0.20);
  EXPECT_LT(pEntry, 0.75);
  EXPECT_GT(pExit, 0.20);
  EXPECT_LT(pExit, 0.75);
}

TEST(ChannelCalibrationTest, AroundTheCornerIsDark) {
  // 25 m up the exit side street: obstruction must have killed the link.
  const double p = successProbabilityAt({160.0, 25.0});
  EXPECT_LT(p, 0.05);
}

TEST(ChannelCalibrationTest, ReturnStreetIsFullyDark) {
  const double p = successProbabilityAt({80.0, 90.0});
  EXPECT_LT(p, 0.01);
}

TEST(ChannelCalibrationTest, ApproachStreetOpensNearCornerC) {
  // Halfway down the approach street: still blocked.
  EXPECT_LT(successProbabilityAt({0.0, 45.0}), 0.05);
  // A few metres before corner C: the link starts breathing.
  EXPECT_GT(successProbabilityAt({0.0, 4.0}), 0.15);
}

TEST(ChannelCalibrationTest, CarToCarAtPlatoonDistancesIsReliable) {
  // Default C2C channel at a 22 m headway: cooperation must be cheap.
  const ChannelConfig channelConfig;
  const geom::Polyline road{{{0.0, 0.0}, {500.0, 0.0}}};
  int successes = 0;
  const int trials = 4000;
  const int bits = mac::frameBits(1016);
  for (int trial = 0; trial < trials; ++trial) {
    Rng rng{static_cast<std::uint64_t>(trial) + 1};
    auto link = buildLinkModel(road, channelConfig, rng.child("link"));
    Rng frameRng = rng.child("frame");
    const double mean =
        link->meanRxPowerDbm(1, {0.0, 0.0}, 18.0, 2, {22.0, 0.0});
    const double faded = link->fadedRxPowerDbm(mean, frameRng);
    if (faded < link->budget().sensitivityDbm) continue;
    const double snr = faded - link->budget().noiseFloorDbm;
    if (frameRng.bernoulli(link->successProbability(
            channel::PhyMode::kDsss1Mbps, snr, bits))) {
      ++successes;
    }
  }
  EXPECT_GT(static_cast<double>(successes) / trials, 0.98);
}

TEST(ChannelCalibrationTest, WindowLossesLandInThePaperBand) {
  // The end-to-end anchor: a short experiment's before-coop losses must
  // stay in the neighbourhood of the paper's 23-29 %.
  UrbanExperimentConfig config;
  config.rounds = 4;
  config.seed = 77;
  const auto result = UrbanExperiment(config).run();
  for (const auto& row : result.table1.rows) {
    EXPECT_GT(row.pctLostBefore.mean(), 15.0) << "car " << row.car;
    EXPECT_LT(row.pctLostBefore.mean(), 40.0) << "car " << row.car;
  }
}

}  // namespace
}  // namespace vanet::analysis
