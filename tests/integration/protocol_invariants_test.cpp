#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "../testing/scripted_link.h"
#include "core/carq_agent.h"
#include "mobility/mobility_model.h"
#include "net/node.h"

namespace vanet::carq {
namespace {

using mac::Frame;
using mac::FrameKind;
using sim::SimTime;

/// Fuzz-style harness: a static 4-car platoon, an AP streaming three
/// interleaved flows, and i.i.d. random frame drops on every link at a
/// parameterised rate. After the dust settles, the C-ARQ bookkeeping
/// invariants must hold no matter what was lost.
class ProtocolInvariants
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(ProtocolInvariants, HoldUnderRandomLoss) {
  const auto [seed, dropProbability] = GetParam();

  sim::Simulator sim;
  vanet::testing::ScriptedLinkModel link;
  auto dropRng = std::make_shared<Rng>(seed);
  const double p = dropProbability;
  link.setDropPredicate(
      [dropRng, p](NodeId, NodeId) { return dropRng->bernoulli(p); });
  mac::RadioEnvironment environment(sim, link, Rng{seed}.child("medium"));

  mobility::StaticMobility apMobility{geom::Vec2{0.0, -10.0}};
  net::Node apNode(sim, environment, kFirstApId, &apMobility,
                   mac::RadioConfig{18.0}, mac::MacConfig{},
                   Rng{seed}.child("ap"));

  CarqConfig config;
  config.helloPeriod = SimTime::millis(150.0);
  config.receptionTimeout = SimTime::millis(500.0);
  config.coopSlot = SimTime::millis(12.0);
  config.unproductiveCycleBackoff = SimTime::millis(200.0);

  const int carCount = 4;
  std::vector<std::unique_ptr<mobility::StaticMobility>> mobilities;
  std::vector<std::unique_ptr<net::Node>> nodes;
  std::vector<std::unique_ptr<CarqAgent>> agents;
  for (int i = 0; i < carCount; ++i) {
    const NodeId id = static_cast<NodeId>(i + 1);
    mobilities.push_back(std::make_unique<mobility::StaticMobility>(
        geom::Vec2{18.0 * static_cast<double>(i), 0.0}));
    nodes.push_back(std::make_unique<net::Node>(
        sim, environment, id, mobilities.back().get(),
        mac::RadioConfig{18.0}, mac::MacConfig{},
        Rng{seed}.child("node").child(static_cast<std::uint64_t>(id))));
    agents.push_back(std::make_unique<CarqAgent>(
        *nodes.back(), config,
        Rng{seed}.child("agent").child(static_cast<std::uint64_t>(id))));
    agents.back()->start();
  }
  sim.runUntil(SimTime::seconds(1.0));  // HELLO exchange (lossy!)

  // Stream 3 flows x 40 packets through the lossy medium.
  Rng apRng = Rng{seed}.child("ap-schedule");
  for (SeqNo seq = 1; seq <= 40; ++seq) {
    for (FlowId flow = 1; flow <= 3; ++flow) {
      Frame frame;
      frame.kind = FrameKind::kData;
      frame.src = kFirstApId;
      frame.bytes = 1000;
      frame.payload = mac::DataPayload{flow, seq, 0};
      apNode.mac().enqueue(std::move(frame), channel::PhyMode::kDsss1Mbps);
    }
    sim.runUntil(sim.now() +
                 SimTime::millis(60.0 + apRng.uniform(0.0, 10.0)));
  }
  // Dark area: let the Cooperative-ARQ phase run its cycles.
  sim.runUntil(sim.now() + SimTime::seconds(12.0));

  // ---- invariants ----
  for (int i = 0; i < carCount; ++i) {
    const CarqAgent& agent = *agents[i];
    const CarqCounters& c = agent.counters();
    const PacketStore& store = agent.store();

    // Bookkeeping consistency.
    EXPECT_EQ(store.recoveredCount(), c.recovered) << "car " << i + 1;
    EXPECT_LE(c.recovered, c.coopDataReceived) << "car " << i + 1;
    EXPECT_LE(c.requestSeqsSent, c.requestsSent * 64) << "car " << i + 1;
    EXPECT_GE(c.requestSeqsSent, c.requestsSent) << "car " << i + 1;

    // The window rule: nothing outside [firstSeen, lastSeen] is held.
    for (SeqNo seq = 1; seq <= 40; ++seq) {
      if (store.hasOwn(seq)) {
        EXPECT_GE(seq, store.firstSeen());
        EXPECT_LE(seq, store.lastSeen());
      }
    }

  }

  // Global: total recoveries cannot exceed total cooperator responses.
  std::uint64_t totalRecovered = 0;
  std::uint64_t totalResponses = 0;
  std::uint64_t totalSuppressed = 0;
  std::uint64_t totalRequestsReceived = 0;
  for (const auto& agent : agents) {
    totalRecovered += agent->counters().recovered;
    totalResponses += agent->counters().coopDataSent;
    totalSuppressed += agent->counters().responsesSuppressed;
    totalRequestsReceived += agent->counters().requestsReceived;
  }
  EXPECT_LE(totalRecovered, totalResponses);
  // A response can only be suppressed if it was first scheduled by a
  // received request.
  EXPECT_LE(totalSuppressed, totalRequestsReceived * 64);

  // Liveness / eventual optimality at moderate loss: after 12 s of
  // cycling, any packet still missing in-window must be missing because
  // no cooperator holds a copy (edge losses fall outside the paper's
  // request window; jointly-lost packets are unrecoverable by design).
  if (dropProbability <= 0.2) {
    for (int i = 0; i < 3; ++i) {  // cars with a flow of their own
      const NodeId dest = static_cast<NodeId>(i + 1);
      const auto& store = agents[static_cast<std::size_t>(i)]->store();
      for (const SeqNo seq : store.missingInWindow()) {
        for (const auto& other : agents) {
          if (other->id() == dest) continue;
          EXPECT_FALSE(other->store().hasBuffered(dest, seq))
              << "car " << dest << " seq " << seq << " is held by car "
              << other->id() << " but was never recovered";
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ProtocolInvariants,
    ::testing::Combine(::testing::Values(1ULL, 7ULL, 42ULL, 2008ULL),
                       ::testing::Values(0.05, 0.2, 0.5)));

}  // namespace
}  // namespace vanet::carq
