#include <gtest/gtest.h>

#include "analysis/experiment.h"

namespace vanet::analysis {
namespace {

UrbanExperimentConfig baseConfig(std::uint64_t seed = 31) {
  UrbanExperimentConfig config;
  config.rounds = 3;
  config.seed = seed;
  return config;
}

double meanLossAfter(const UrbanExperimentResult& result) {
  double total = 0.0;
  for (const auto& row : result.table1.rows) {
    total += row.pctLostAfter.mean();
  }
  return total / static_cast<double>(result.table1.rows.size());
}

double meanLossBefore(const UrbanExperimentResult& result) {
  double total = 0.0;
  for (const auto& row : result.table1.rows) {
    total += row.pctLostBefore.mean();
  }
  return total / static_cast<double>(result.table1.rows.size());
}

TEST(AblationBatchingTest, BatchedRequestsCutRequestTraffic) {
  UrbanExperimentConfig perPacket = baseConfig();
  UrbanExperimentConfig batched = baseConfig();
  batched.carq.requestMode = carq::RequestMode::kBatched;
  batched.carq.maxBatchSeqs = 16;
  const auto resultPer = UrbanExperiment(perPacket).run();
  const auto resultBatch = UrbanExperiment(batched).run();
  // Same recovery power...
  EXPECT_NEAR(meanLossAfter(resultBatch), meanLossAfter(resultPer), 4.0);
  // ...with a fraction of the REQUEST frames.
  EXPECT_LT(resultBatch.totals.requestsPerRound.mean(),
            0.5 * resultPer.totals.requestsPerRound.mean());
}

TEST(AblationPlatoonSizeTest, LoneCarGainsNothing) {
  UrbanExperimentConfig config = baseConfig();
  config.scenario.carCount = 1;
  const auto result = UrbanExperiment(config).run();
  ASSERT_EQ(result.table1.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(result.table1.rows[0].pctLostAfter.mean(),
                   result.table1.rows[0].pctLostBefore.mean());
}

TEST(AblationPlatoonSizeTest, MoreCarsMoreDiversity) {
  UrbanExperimentConfig two = baseConfig();
  two.scenario.carCount = 2;
  UrbanExperimentConfig five = baseConfig();
  five.scenario.carCount = 5;
  const auto resultTwo = UrbanExperiment(two).run();
  const auto resultFive = UrbanExperiment(five).run();
  // Joint losses (the diversity bound) shrink with platoon size for the
  // lead car.
  EXPECT_LT(resultFive.table1.rows[0].pctLostJoint.mean(),
            resultTwo.table1.rows[0].pctLostJoint.mean() + 1.0);
  // And the realised after-coop loss improves accordingly.
  EXPECT_LT(meanLossAfter(resultFive), meanLossBefore(resultFive));
}

TEST(AblationRetransmissionTest, BlindRepeatsReduceLossButCostRate) {
  UrbanExperimentConfig plain = baseConfig();
  plain.carq.cooperationEnabled = false;
  UrbanExperimentConfig repeat = baseConfig();
  repeat.carq.cooperationEnabled = false;
  repeat.repeatCount = 2;
  const auto resultPlain = UrbanExperiment(plain).run();
  const auto resultRepeat = UrbanExperiment(repeat).run();
  // Per-packet loss falls (each packet gets two shots)...
  EXPECT_LT(meanLossBefore(resultRepeat), meanLossBefore(resultPlain));
  // ...but the unique-packet window halves (same channel budget).
  const double uniquePlain = resultPlain.table1.rows[0].txByAp.mean();
  const double uniqueRepeat = resultRepeat.table1.rows[0].txByAp.mean();
  EXPECT_LT(uniqueRepeat, 0.7 * uniquePlain);
}

TEST(AblationRetransmissionTest, CoopBeatsBlindRepeatsOnGoodput) {
  // The paper's §3.2 argument: spend the channel on new data and repair in
  // the dark area, instead of retransmitting in coverage.
  UrbanExperimentConfig coop = baseConfig();
  UrbanExperimentConfig repeat = baseConfig();
  repeat.carq.cooperationEnabled = false;
  repeat.repeatCount = 2;
  const auto resultCoop = UrbanExperiment(coop).run();
  const auto resultRepeat = UrbanExperiment(repeat).run();
  double deliveredCoop = 0.0;
  double deliveredRepeat = 0.0;
  for (std::size_t i = 0; i < resultCoop.table1.rows.size(); ++i) {
    const auto& c = resultCoop.table1.rows[i];
    const auto& r = resultRepeat.table1.rows[i];
    deliveredCoop += c.txByAp.mean() - c.lostAfter.mean();
    deliveredRepeat += r.txByAp.mean() - r.lostAfter.mean();
  }
  EXPECT_GT(deliveredCoop, 1.2 * deliveredRepeat);
}

TEST(AblationC2cQualityTest, BadCarToCarChannelWidensOptimalityGap) {
  UrbanExperimentConfig good = baseConfig();
  UrbanExperimentConfig bad = baseConfig();
  // Degrade car-to-car links severely (e.g. occupants/cargo blocking LOS).
  bad.channel.c2cReferenceLossDb = 82.0;
  bad.channel.shadowing.c2cSigmaDb = 6.0;
  const auto resultGood = UrbanExperiment(good).run();
  const auto resultBad = UrbanExperiment(bad).run();
  double gapGood = 0.0;
  double gapBad = 0.0;
  for (std::size_t i = 0; i < resultGood.table1.rows.size(); ++i) {
    gapGood += resultGood.table1.rows[i].pctLostAfter.mean() -
               resultGood.table1.rows[i].pctLostJoint.mean();
    gapBad += resultBad.table1.rows[i].pctLostAfter.mean() -
              resultBad.table1.rows[i].pctLostJoint.mean();
  }
  EXPECT_GT(gapBad, gapGood);
}

TEST(AblationSelectionTest, PoliciesAllRecoverWithThreeCars) {
  for (const auto policy :
       {carq::SelectionPolicy::kAllOneHop, carq::SelectionPolicy::kBestRssi,
        carq::SelectionPolicy::kRandomK}) {
    UrbanExperimentConfig config = baseConfig();
    config.carq.selection = policy;
    config.carq.maxCooperators = 2;
    const auto result = UrbanExperiment(config).run();
    EXPECT_LT(meanLossAfter(result), meanLossBefore(result))
        << "policy " << static_cast<int>(policy);
  }
}

}  // namespace
}  // namespace vanet::analysis
