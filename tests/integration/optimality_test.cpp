#include <gtest/gtest.h>

#include "analysis/experiment.h"
#include "trace/reception_matrix.h"

namespace vanet::analysis {
namespace {

/// The paper's optimality claim (Figs. 6-8): given the receptions across
/// the platoon, each car recovers essentially every packet some platoon
/// member holds. With a clean car-to-car channel and enough dark-area
/// time, the delivered set must match the joint set within the car's
/// request window almost exactly.
class OptimalityProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OptimalityProperty, AfterCoopEqualsJointWithinWindow) {
  UrbanExperimentConfig config;
  config.rounds = 1;
  config.seed = GetParam();
  // Clean car-to-car links: LOS, mild exponent, no burstiness.
  config.channel.c2cReferenceLossDb = 30.0;
  config.channel.shadowing.c2cSigmaDb = 0.5;
  config.scenario.tailSeconds = 25.0;  // generous dark-area time
  UrbanExperiment experiment(config);
  const trace::RoundTrace trace = experiment.runRound(0).trace;

  for (const NodeId car : trace.carIds()) {
    const trace::ReceptionMatrix matrix(trace, car);
    if (matrix.maxSeq() == 0) continue;
    // The car's request window: [first, last] directly received seq.
    SeqNo first = 0;
    SeqNo last = 0;
    for (SeqNo seq = 1; seq <= matrix.maxSeq(); ++seq) {
      if (matrix.received(car, seq)) {
        if (first == 0) first = seq;
        last = seq;
      }
    }
    ASSERT_GT(first, 0) << "car " << car << " never heard its flow";

    int jointInWindow = 0;
    int heldInWindow = 0;
    int violations = 0;
    for (SeqNo seq = first; seq <= last; ++seq) {
      const bool joint = matrix.joint(seq);
      const bool held = matrix.afterCoop(seq);
      EXPECT_LE(held, joint) << "car " << car << " seq " << seq;
      if (joint) ++jointInWindow;
      if (held) ++heldInWindow;
      if (joint && !held) ++violations;
    }
    // Allow a whisker of slack (<2 %) for responses still in flight when
    // the round ends; the paper's curves show the same hairline gaps.
    EXPECT_LE(violations,
              std::max(1, static_cast<int>(0.02 * jointInWindow)))
        << "car " << car << ": " << heldInWindow << "/" << jointInWindow;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimalityProperty,
                         ::testing::Values(1ULL, 2ULL, 3ULL, 5ULL, 8ULL));

/// Baseline sanity: with cooperation disabled nothing is ever recovered.
TEST(OptimalityBaselineTest, NoCooperationMeansNoRecoveries) {
  UrbanExperimentConfig config;
  config.rounds = 1;
  config.seed = 99;
  config.carq.cooperationEnabled = false;
  UrbanExperiment experiment(config);
  const trace::RoundTrace trace = experiment.runRound(0).trace;
  for (const NodeId car : trace.carIds()) {
    const trace::ReceptionMatrix matrix(trace, car);
    for (SeqNo seq = 1; seq <= matrix.maxSeq(); ++seq) {
      EXPECT_EQ(matrix.afterCoop(seq), matrix.received(car, seq));
    }
  }
}

/// The recovered set never contains packets nobody received (no packet is
/// conjured out of thin air), under any channel configuration.
class NoFabricationProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NoFabricationProperty, RecoveredSubsetOfJoint) {
  UrbanExperimentConfig config;
  config.rounds = 1;
  config.seed = GetParam();
  // Hostile channel: bursty losses everywhere.
  channel::GilbertElliottParams burst;
  burst.meanGoodSeconds = 2.0;
  burst.meanBadSeconds = 0.5;
  burst.lossInBad = 0.9;
  config.channel.burst = burst;
  UrbanExperiment experiment(config);
  const trace::RoundTrace trace = experiment.runRound(0).trace;
  for (const NodeId car : trace.carIds()) {
    const trace::ReceptionMatrix matrix(trace, car);
    for (SeqNo seq = 1; seq <= matrix.maxSeq(); ++seq) {
      if (matrix.afterCoop(seq)) {
        EXPECT_TRUE(matrix.joint(seq)) << "car " << car << " seq " << seq;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NoFabricationProperty,
                         ::testing::Values(11ULL, 22ULL, 33ULL));

}  // namespace
}  // namespace vanet::analysis
