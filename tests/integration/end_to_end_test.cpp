#include <gtest/gtest.h>

#include "analysis/experiment.h"
#include "analysis/table1.h"

namespace vanet::analysis {
namespace {

/// Shared 5-round experiment result (runs once; the suite asserts many
/// facets of it, mirroring how the paper reads one dataset).
const UrbanExperimentResult& sharedResult() {
  static const UrbanExperimentResult result = [] {
    UrbanExperimentConfig config;
    config.rounds = 5;
    config.seed = 2008;
    return UrbanExperiment(config).run();
  }();
  return result;
}

TEST(EndToEndUrbanTest, EveryCarHasMeaningfulCoverageWindow) {
  for (const auto& row : sharedResult().table1.rows) {
    // Paper: 121-143 packets per window; shape target is the same order.
    EXPECT_GT(row.txByAp.mean(), 60.0) << "car " << row.car;
    EXPECT_LT(row.txByAp.mean(), 320.0) << "car " << row.car;
  }
}

TEST(EndToEndUrbanTest, LossesBeforeCooperationAreSubstantial) {
  for (const auto& row : sharedResult().table1.rows) {
    // Paper: 23-29 % in the urban testbed.
    EXPECT_GT(row.pctLostBefore.mean(), 10.0) << "car " << row.car;
    EXPECT_LT(row.pctLostBefore.mean(), 45.0) << "car " << row.car;
  }
}

TEST(EndToEndUrbanTest, CooperationReducesLossesForEveryCar) {
  for (const auto& row : sharedResult().table1.rows) {
    EXPECT_LT(row.pctLostAfter.mean(), row.pctLostBefore.mean())
        << "car " << row.car;
  }
}

TEST(EndToEndUrbanTest, HeadlineResultLossesRoughlyHalve) {
  // Paper Table 1: car 1 sees >50 % reduction; all cars see >= ~35 %.
  double bestReduction = 0.0;
  for (const auto& row : sharedResult().table1.rows) {
    const double reduction = 1.0 - row.pctLostAfter.mean() /
                                       row.pctLostBefore.mean();
    EXPECT_GT(reduction, 0.25) << "car " << row.car;
    bestReduction = std::max(bestReduction, reduction);
  }
  EXPECT_GT(bestReduction, 0.45);
}

TEST(EndToEndUrbanTest, AfterCoopLossIsNeverBelowJointBound) {
  for (const auto& row : sharedResult().table1.rows) {
    EXPECT_GE(row.lostAfter.mean(), row.lostJoint.mean() - 1e-9)
        << "car " << row.car;
  }
}

TEST(EndToEndUrbanTest, AfterCoopIsCloseToTheJointBound) {
  // Figures 6-8: the after-coop and joint curves are almost coincident.
  for (const auto& row : sharedResult().table1.rows) {
    EXPECT_LT(row.pctLostAfter.mean() - row.pctLostJoint.mean(), 6.0)
        << "car " << row.car;
  }
}

TEST(EndToEndUrbanTest, FigureSeriesAreProbabilities) {
  for (const auto& [flow, figure] : sharedResult().figures) {
    for (const auto& [car, series] : figure.rxByCar) {
      for (const double p : series.means()) {
        EXPECT_GE(p, 0.0);
        EXPECT_LE(p, 1.0);
      }
    }
  }
}

TEST(EndToEndUrbanTest, AfterCoopSeriesDominatesDirectSeries) {
  for (const auto& [flow, figure] : sharedResult().figures) {
    const auto direct = figure.rxByCar.at(flow).means();
    const auto after = figure.afterCoop.means();
    ASSERT_EQ(direct.size(), after.size());
    for (std::size_t i = 0; i < direct.size(); ++i) {
      EXPECT_GE(after[i], direct[i] - 1e-9)
          << "flow " << flow << " packet " << i + 1;
    }
  }
}

TEST(EndToEndUrbanTest, AfterCoopSeriesBoundedByJointSeries) {
  for (const auto& [flow, figure] : sharedResult().figures) {
    const auto after = figure.afterCoop.means();
    const auto joint = figure.joint.means();
    for (std::size_t i = 0; i < std::min(after.size(), joint.size()); ++i) {
      EXPECT_LE(after[i], joint[i] + 1e-9)
          << "flow " << flow << " packet " << i + 1;
    }
  }
}

TEST(EndToEndUrbanTest, RegionStructureIsOrdered) {
  for (const auto& [flow, figure] : sharedResult().figures) {
    EXPECT_GT(figure.regionBoundary12.mean(), 1.0);
    EXPECT_GT(figure.regionBoundary23.mean(), figure.regionBoundary12.mean());
  }
}

TEST(EndToEndUrbanTest, Figure3ShapeCar1LeavesCoverageFirst) {
  // Region III of Figure 3: car 1's own reception degrades while cars 2
  // and 3 still hear its packets -> in the last quarter of the packet
  // range, car 2+3's average reception of flow 1 exceeds car 1's.
  const auto& figure = sharedResult().figures.at(1);
  const auto own = figure.rxByCar.at(1).means();
  const auto rx2 = figure.rxByCar.at(2).means();
  const auto rx3 = figure.rxByCar.at(3).means();
  const std::size_t n = own.size();
  ASSERT_GT(n, 20u);
  double ownTail = 0.0;
  double helperTail = 0.0;
  std::size_t count = 0;
  for (std::size_t i = (n * 3) / 4; i < n; ++i) {
    ownTail += own[i];
    helperTail += std::max(rx2[i], rx3[i]);
    ++count;
  }
  EXPECT_GT(helperTail / count, ownTail / count);
}

TEST(EndToEndUrbanTest, Figure5ShapeCar3EntersCoverageLast) {
  // Region I of Figure 5: cars 1 and 2 hear car 3's early packets better
  // than car 3 itself.
  const auto& figure = sharedResult().figures.at(3);
  const auto own = figure.rxByCar.at(3).means();
  const auto rx1 = figure.rxByCar.at(1).means();
  const auto rx2 = figure.rxByCar.at(2).means();
  const std::size_t n = own.size();
  ASSERT_GT(n, 20u);
  // Car 3's window opens late; skip leading cells no round populated.
  std::size_t start = 0;
  while (start < n && figure.joint.at(start).count() == 0) ++start;
  ASSERT_LT(start + 20, n);
  double ownHead = 0.0;
  double helperHead = 0.0;
  std::size_t count = 0;
  for (std::size_t i = start; i < start + (n - start) / 4; ++i) {
    ownHead += own[i];
    helperHead += std::max(rx1[i], rx2[i]);
    ++count;
  }
  ASSERT_GT(count, 0u);
  EXPECT_GT(helperHead / count, ownHead / count);
}

TEST(EndToEndUrbanTest, RenderersHandleRealData) {
  const std::string table = renderTable1(sharedResult().table1);
  EXPECT_NE(table.find("Car"), std::string::npos);
  const std::string summary = renderLossSummary(sharedResult().table1);
  EXPECT_NE(summary.find("reduction"), std::string::npos);
}

}  // namespace
}  // namespace vanet::analysis
