#pragma once

/// A link model for protocol tests: physically near-perfect (free-space,
/// no shadowing, no fading) with a scriptable per-frame drop hook, so
/// tests can lose exactly the frames they mean to lose. The hook rides on
/// the burst-loss path, which the radio environment consults once per
/// (frame, receiver) after SINR evaluation.

#include <functional>
#include <tuple>
#include <map>
#include <memory>
#include <utility>

#include "channel/link_model.h"

namespace vanet::testing {

class ScriptedLinkModel final : public channel::LinkModel {
 public:
  /// Near-perfect physics (free-space-ish, no shadowing, no fading).
  ScriptedLinkModel()
      : ScriptedLinkModel(std::make_unique<channel::CompositeLinkModel>(
            std::make_unique<channel::LogDistancePathLoss>(2.0, 40.0),
            std::make_unique<channel::LogDistancePathLoss>(2.0, 40.0),
            std::make_unique<channel::NoShadowing>(),
            std::make_unique<channel::NoFading>(), channel::LinkBudget{})) {}

  /// Custom physics with the scripted drop hook layered on top.
  explicit ScriptedLinkModel(std::unique_ptr<channel::CompositeLinkModel> inner)
      : inner_(std::move(inner)) {}

  /// Matches any frame kind in dropNext.
  static constexpr int kAnyFrameClass = -1;

  /// Drops the next `count` frames on the directed link tx -> rx. When
  /// `frameClass` is given (the MAC's FrameKind as int), only frames of
  /// that kind are dropped and counted.
  void dropNext(NodeId tx, NodeId rx, int count = 1,
                int frameClass = kAnyFrameClass) {
    dropCounters_[{tx, rx, frameClass}] += count;
  }

  /// Arbitrary predicate consulted per (tx, rx) frame after counters.
  void setDropPredicate(std::function<bool(NodeId, NodeId)> predicate) {
    predicate_ = std::move(predicate);
  }

  double meanRxPowerDbm(NodeId tx, geom::Vec2 txPos, double txPowerDbm,
                        NodeId rx, geom::Vec2 rxPos) override {
    return inner_->meanRxPowerDbm(tx, txPos, txPowerDbm, rx, rxPos);
  }
  double fadedRxPowerDbm(double meanDbm, Rng& rng) override {
    return inner_->fadedRxPowerDbm(meanDbm, rng);
  }
  double successProbability(channel::PhyMode mode, double sinrDb,
                            int bits) const override {
    return inner_->successProbability(mode, sinrDb, bits);
  }
  bool burstLoss(NodeId tx, NodeId rx, sim::SimTime /*now*/,
                 int frameClass) override {
    for (const int match : {frameClass, kAnyFrameClass}) {
      const auto it = dropCounters_.find({tx, rx, match});
      if (it != dropCounters_.end() && it->second > 0) {
        --it->second;
        return true;
      }
    }
    return predicate_ && predicate_(tx, rx);
  }
  const channel::LinkBudget& budget() const override {
    return inner_->budget();
  }

 private:
  std::unique_ptr<channel::CompositeLinkModel> inner_;
  std::map<std::tuple<NodeId, NodeId, int>, int> dropCounters_;
  std::function<bool(NodeId, NodeId)> predicate_;
};

}  // namespace vanet::testing
