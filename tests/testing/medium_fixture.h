#pragma once

/// Shared test scaffolding: a simulator + ideal (or configurable) link
/// model + radio environment with statically placed radios, so MAC and
/// protocol tests can exercise real frame exchange without a scenario.

#include <memory>
#include <vector>

#include "channel/link_model.h"
#include "mac/csma.h"
#include "mac/radio.h"
#include "mac/radio_environment.h"
#include "mobility/mobility_model.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace vanet::testing {

/// A link model where every link at reasonable distance decodes reliably
/// (free-space-ish losses, no shadowing, no fading).
inline std::unique_ptr<channel::CompositeLinkModel> perfectLinkModel() {
  return std::make_unique<channel::CompositeLinkModel>(
      std::make_unique<channel::LogDistancePathLoss>(2.0, 40.0),
      std::make_unique<channel::LogDistancePathLoss>(2.0, 40.0),
      std::make_unique<channel::NoShadowing>(),
      std::make_unique<channel::NoFading>(), channel::LinkBudget{});
}

/// Simulator + environment + N statically placed radios.
class MediumHarness {
 public:
  explicit MediumHarness(std::unique_ptr<channel::LinkModel> link,
                         std::uint64_t seed = 42)
      : link_(std::move(link)),
        environment_(sim_, *link_, Rng{seed}.child("medium")) {}

  MediumHarness() : MediumHarness(perfectLinkModel()) {}

  /// Adds a radio at a fixed position. Returns its index.
  std::size_t addRadio(NodeId id, geom::Vec2 position,
                       double txPowerDbm = 18.0) {
    mobilities_.push_back(
        std::make_unique<mobility::StaticMobility>(position));
    radios_.push_back(std::make_unique<mac::Radio>(
        sim_, environment_, id, mobilities_.back().get(),
        mac::RadioConfig{txPowerDbm}));
    return radios_.size() - 1;
  }

  sim::Simulator& sim() noexcept { return sim_; }
  mac::RadioEnvironment& environment() noexcept { return environment_; }
  mac::Radio& radio(std::size_t i) { return *radios_.at(i); }
  channel::LinkModel& link() noexcept { return *link_; }

  /// Builds a broadcast data frame of `bytes` payload.
  static mac::Frame dataFrame(FlowId flow, SeqNo seq, int bytes = 1000) {
    mac::Frame frame;
    frame.kind = mac::FrameKind::kData;
    frame.bytes = bytes;
    frame.payload = mac::DataPayload{flow, seq, 0};
    return frame;
  }

 private:
  sim::Simulator sim_;
  std::unique_ptr<channel::LinkModel> link_;
  mac::RadioEnvironment environment_;
  std::vector<std::unique_ptr<mobility::StaticMobility>> mobilities_;
  std::vector<std::unique_ptr<mac::Radio>> radios_;
};

}  // namespace vanet::testing
