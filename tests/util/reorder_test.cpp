#include "util/reorder.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.h"

namespace vanet::util {
namespace {

TEST(ReorderWindowCapTest, IsTwiceTheWorkersAndAtLeastTwo) {
  EXPECT_EQ(reorderWindowCap(0), 2u);
  EXPECT_EQ(reorderWindowCap(1), 2u);
  EXPECT_EQ(reorderWindowCap(4), 8u);
  EXPECT_EQ(reorderWindowCap(16), 32u);
}

TEST(ReorderWindowTest, ReleasesPermutedCompletionsInIndexOrder) {
  // Complete a window's worth of claims in a scrambled order: the fold
  // must still observe 0, 1, 2, ... with the matching payloads.
  std::vector<std::size_t> foldedIndices;
  std::vector<int> foldedValues;
  ReorderWindow<int> window(
      /*count=*/6, /*cap=*/6, [&](std::size_t index, int& value) {
        foldedIndices.push_back(index);
        foldedValues.push_back(value);
      });
  std::size_t claimed = 0;
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(window.claim(claimed));
    EXPECT_EQ(claimed, static_cast<std::size_t>(i));
  }
  for (const std::size_t index : {3u, 1u, 5u, 0u, 2u, 4u}) {
    window.complete(index, static_cast<int>(index) * 10);
  }
  window.rethrowIfFailed();
  EXPECT_EQ(foldedIndices, (std::vector<std::size_t>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(foldedValues, (std::vector<int>{0, 10, 20, 30, 40, 50}));
  EXPECT_EQ(window.folded(), 6u);
  // {3,1,5} were parked when 0 arrived and completed the window front.
  EXPECT_EQ(window.peakParked(), 4u);
  EXPECT_FALSE(window.claim(claimed));  // drained
}

TEST(ReorderWindowTest, FailDropsLateCompletionsAndRethrows) {
  int folds = 0;
  ReorderWindow<int> window(4, 4, [&](std::size_t, int&) { ++folds; });
  std::size_t claimed = 0;
  ASSERT_TRUE(window.claim(claimed));
  ASSERT_TRUE(window.claim(claimed));
  window.fail(std::make_exception_ptr(std::runtime_error("job 0 failed")));
  window.complete(1, 11);  // late completion after the failure: dropped
  EXPECT_FALSE(window.claim(claimed));
  EXPECT_EQ(folds, 0);
  EXPECT_THROW(window.rethrowIfFailed(), std::runtime_error);
}

TEST(FoldOrderedTest, FoldsEveryIndexInOrderOnManyWorkers) {
  const std::size_t count = 200;
  std::vector<std::size_t> order;
  const std::size_t peak = foldOrdered<std::size_t>(
      count, /*workers=*/4, reorderWindowCap(4),
      [](std::size_t i) { return i * i; },
      [&](std::size_t i, std::size_t& value) {
        EXPECT_EQ(value, i * i);
        order.push_back(i);
      });
  ASSERT_EQ(order.size(), count);
  for (std::size_t i = 0; i < count; ++i) {
    EXPECT_EQ(order[i], i);
  }
  // The window bound held: O(workers) parked results, never O(count).
  EXPECT_LE(peak, reorderWindowCap(4));
}

TEST(FoldOrderedTest, InlineExecutionMatchesParallel) {
  const auto run = [](int workers) {
    std::vector<std::size_t> order;
    foldOrdered<std::size_t>(
        50, workers, reorderWindowCap(workers),
        [](std::size_t i) { return i + 7; },
        [&](std::size_t i, std::size_t& value) {
          order.push_back(i * 1000 + value);
        });
    return order;
  };
  EXPECT_EQ(run(1), run(3));
}

TEST(FoldOrderedTest, JobErrorRethrowsAndStopsTheFold) {
  std::atomic<int> folds{0};
  EXPECT_THROW(
      foldOrdered<int>(
          64, 4, reorderWindowCap(4),
          [](std::size_t i) -> int {
            if (i == 5) throw std::runtime_error("job 5 failed");
            return static_cast<int>(i);
          },
          [&](std::size_t, int&) { ++folds; }),
      std::runtime_error);
  // Nothing beyond the contiguous prefix before the failure ever folded.
  EXPECT_LT(folds.load(), 64);
}

TEST(FoldOrderedTest, FoldErrorPropagatesToo) {
  EXPECT_THROW(foldOrdered<int>(
                   8, 2, reorderWindowCap(2),
                   [](std::size_t i) { return static_cast<int>(i); },
                   [](std::size_t i, int&) {
                     if (i == 3) throw std::runtime_error("fold failed");
                   }),
               std::runtime_error);
}

TEST(RunWorkersTest, RunsTheWorkerOnEveryThread) {
  std::atomic<int> calls{0};
  runWorkers(4, [&] { ++calls; });
  EXPECT_EQ(calls.load(), 4);
  runWorkers(0, [&] { ++calls; });  // <= 1 runs inline exactly once
  EXPECT_EQ(calls.load(), 5);
}

TEST(ThreadBudgetTest, GrantsOnlyWhatTheLimitAllows) {
  ThreadBudget budget(4);
  EXPECT_EQ(budget.limit(), 4);
  EXPECT_EQ(budget.acquire(3), 3);
  EXPECT_EQ(budget.inUse(), 3);
  EXPECT_EQ(budget.acquire(3), 1);  // clamped to the remaining room
  EXPECT_EQ(budget.acquire(1), 0);  // exhausted: degrade to inline
  budget.release(4);
  EXPECT_EQ(budget.inUse(), 0);
  EXPECT_EQ(budget.acquire(0), 0);
}

TEST(ThreadBudgetTest, ForceOverridesTheLimit) {
  // An explicit --threads count is an instruction: force-acquires always
  // grant in full and merely record the usage for nested layers.
  ThreadBudget budget(2);
  EXPECT_EQ(budget.acquire(5, /*force=*/true), 5);
  EXPECT_EQ(budget.inUse(), 5);
  EXPECT_EQ(budget.acquire(1), 0);  // non-forced sees a saturated budget
  budget.release(5);
}

TEST(ThreadBudgetTest, LeaseReleasesOnDestruction) {
  ThreadBudget budget(4);
  {
    const ThreadLease lease(budget, 3);
    EXPECT_EQ(lease.granted(), 3);
    EXPECT_EQ(budget.inUse(), 3);
  }
  EXPECT_EQ(budget.inUse(), 0);
}

TEST(ThreadBudgetTest, SetLimitZeroResetsToHardware) {
  ThreadBudget budget(3);
  budget.setLimit(0);
  EXPECT_EQ(budget.limit(), hardwareThreads());
  EXPECT_GE(hardwareThreads(), 1);
}

}  // namespace
}  // namespace vanet::util
