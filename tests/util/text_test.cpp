/// \file text_test.cpp
/// Levenshtein distance and nearest-name lookup — the machinery behind
/// the did-you-mean hints of Flags::allowOnly and the spec parser.

#include "util/text.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace vanet::util {
namespace {

TEST(TextTest, EditDistanceBasics) {
  EXPECT_EQ(editDistance("", ""), 0u);
  EXPECT_EQ(editDistance("abc", "abc"), 0u);
  EXPECT_EQ(editDistance("", "abc"), 3u);
  EXPECT_EQ(editDistance("abc", ""), 3u);
  EXPECT_EQ(editDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(editDistance("threads", "thread"), 1u);   // deletion
  EXPECT_EQ(editDistance("sede", "seed"), 2u);        // transposition = 2
  EXPECT_EQ(editDistance("scenario", "scenarios"), 1u);
}

TEST(TextTest, EditDistanceIsSymmetric) {
  const std::vector<std::string> words = {"seed", "threads", "grid", ""};
  for (const std::string& a : words) {
    for (const std::string& b : words) {
      EXPECT_EQ(editDistance(a, b), editDistance(b, a)) << a << " vs " << b;
    }
  }
}

TEST(TextTest, NearestNamePicksTheClosestCandidate) {
  const std::vector<std::string> names = {"threads", "seed", "scenario"};
  EXPECT_EQ(nearestName("thread", names), "threads");
  EXPECT_EQ(nearestName("sed", names), "seed");
  EXPECT_EQ(nearestName("scenarios", names), "scenario");
  // An exact match is distance 0.
  EXPECT_EQ(nearestName("seed", names), "seed");
}

TEST(TextTest, NearestNameReturnsEmptyBeyondTheCap) {
  const std::vector<std::string> names = {"threads", "seed"};
  EXPECT_EQ(nearestName("completely-unrelated", names), "");
  EXPECT_EQ(nearestName("x", {}), "");
  // A generous cap widens the net.
  EXPECT_EQ(nearestName("thrxxds", names, 7), "threads");
}

TEST(TextTest, NearestNameTiesGoToTheFirstCandidate) {
  // "ab" is distance 1 from both; the first listed wins so hints are
  // deterministic across builds.
  EXPECT_EQ(nearestName("ab", {"abc", "abd"}), "abc");
  EXPECT_EQ(nearestName("ab", {"abd", "abc"}), "abd");
}

}  // namespace
}  // namespace vanet::util
