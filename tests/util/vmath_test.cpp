#include "util/vmath.h"

#include <gtest/gtest.h>

#include <cfloat>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "util/rng.h"

namespace vanet {
namespace {

std::uint64_t bitsOf(double x) {
  std::uint64_t b;
  std::memcpy(&b, &x, sizeof b);
  return b;
}

// ULP distance between two finite doubles of the same sign (monotone
// mapping of the binary64 lattice onto integers).
std::uint64_t ulpDistance(double a, double b) {
  auto key = [](double x) {
    std::uint64_t u = bitsOf(x);
    return (u & 0x8000000000000000ull) ? (0x8000000000000000ull - (u << 1 >> 1))
                                       : (0x8000000000000000ull + u);
  };
  const std::uint64_t ka = key(a);
  const std::uint64_t kb = key(b);
  return ka > kb ? ka - kb : kb - ka;
}

// Deterministic domain sweep: log-spaced magnitudes plus sign, denormals,
// zeros and boundary values, filtered to [lo, hi].
std::vector<double> sweep(double lo, double hi) {
  std::vector<double> xs;
  auto push = [&](double v) {
    if (v >= lo && v <= hi) xs.push_back(v);
  };
  push(0.0);
  push(-0.0);
  push(DBL_MIN);
  push(4.9e-324);          // smallest denormal
  push(1e-310);            // mid denormal
  push(DBL_MIN * 0.999);   // just below normal
  for (int e = -320; e <= 308; e += 1) {
    const double m = std::pow(10.0, e);
    for (double f : {1.0, 1.7, 2.5, 3.9, 7.3, 9.99}) {
      push(m * f);
      push(-m * f);
    }
  }
  Rng rng{20260807};
  for (int i = 0; i < 20000; ++i) {
    push(lo + (hi - lo) * rng.uniform());
  }
  return xs;
}

TEST(VmathTest, ExpMatchesLibmWithin2Ulp) {
  for (double x : sweep(-745.0, 709.7)) {
    const double got = vmath::vexp(x);
    const double ref = std::exp(x);
    ASSERT_LE(ulpDistance(got, ref), 2u) << "x=" << x;
  }
}

TEST(VmathTest, ExpSaturatesInsteadOfOverflowing) {
  // Below the clamp the result pins to exp(-745) (denormal, nonzero);
  // above it pins to exp(709.7) (finite). No infs, no exact zeros, so a
  // downstream 1/p or log(p) never sees a singularity the scalar path
  // would not.
  EXPECT_EQ(vmath::vexp(-800.0), vmath::vexp(-745.0));
  EXPECT_EQ(vmath::vexp(-1e308), vmath::vexp(-745.0));
  EXPECT_GT(vmath::vexp(-745.0), 0.0);
  EXPECT_EQ(vmath::vexp(800.0), vmath::vexp(709.7));
  EXPECT_TRUE(std::isfinite(vmath::vexp(1e308)));
  EXPECT_EQ(vmath::vexp(0.0), 1.0);
  EXPECT_EQ(vmath::vexp(-0.0), 1.0);
}

TEST(VmathTest, ExpClampRegionNearMinus700StaysAccurate) {
  // The BER chain clamps Eb/N0 at 700 before exp(-x); the whole
  // [-745, -690] strip is deep-denormal-adjacent and must stay tight.
  for (double x = -745.0; x <= -690.0; x += 0.001) {
    ASSERT_LE(ulpDistance(vmath::vexp(x), std::exp(x)), 2u) << "x=" << x;
  }
}

TEST(VmathTest, LogMatchesLibmWithin3Ulp) {
  for (double x : sweep(4.9e-324, 1e308)) {
    if (x <= 0.0) continue;
    ASSERT_LE(ulpDistance(vmath::vlog(x), std::log(x)), 3u) << "x=" << x;
  }
}

TEST(VmathTest, Log10MatchesLibmWithin3Ulp) {
  for (double x : sweep(4.9e-324, 1e308)) {
    if (x <= 0.0) continue;
    ASSERT_LE(ulpDistance(vmath::vlog10(x), std::log10(x)), 3u) << "x=" << x;
  }
}

TEST(VmathTest, LogExactAnchors) {
  EXPECT_EQ(vmath::vlog(1.0), 0.0);
  EXPECT_EQ(vmath::vlog10(1.0), 0.0);
  EXPECT_EQ(vmath::vlog10(10.0), 1.0);
  EXPECT_EQ(vmath::vlog10(100.0), 2.0);
  // log(0) saturates finite (callers floor at kLinearFloor anyway).
  EXPECT_TRUE(std::isfinite(vmath::vlog(0.0)));
  EXPECT_LT(vmath::vlog(0.0), -745.0);
}

TEST(VmathTest, Log1pMatchesLibmWithin3UlpOnItsDomain) {
  for (double x : sweep(-0.5, 0.5)) {
    ASSERT_LE(ulpDistance(vmath::vlog1p(x), std::log1p(x)), 3u) << "x=" << x;
  }
  EXPECT_EQ(vmath::vlog1p(0.0), 0.0);
  EXPECT_EQ(vmath::vlog1p(-0.0), -0.0);
}

TEST(VmathTest, Pow10DbMatchesLibmWithinConditioningBudget) {
  // Budget (0.5|x|+8)*2^-53 relative: the |x| term is the inherent rounding
  // of the x*ln10/10 argument product, which std::pow pays for x/10 too.
  for (double db : sweep(-320.0, 320.0)) {
    const double got = vmath::vpow10db(db);
    const double ref = std::pow(10.0, db / 10.0);
    const double budget = (0.5 * std::fabs(db) + 8.0) * 0x1p-53;
    ASSERT_LE(std::fabs(got - ref), budget * ref) << "db=" << db;
  }
  EXPECT_EQ(vmath::vpow10db(0.0), 1.0);
}

TEST(VmathTest, Pow10DbExtremeDbSaturates) {
  // +4000 dB would overflow: clamps to a huge finite value. -4000 dB pins
  // to a denormal instead of flushing to zero.
  EXPECT_TRUE(std::isfinite(vmath::vpow10db(4000.0)));
  EXPECT_GT(vmath::vpow10db(-4000.0), 0.0);
}

TEST(VmathTest, Linear2DbMatchesFlooredLog10) {
  for (double mw : sweep(0.0, 1e300)) {
    if (mw < 0.0) continue;
    const double got = vmath::vlinear2db(mw);
    const double floored = mw < vmath::kLinearFloor ? vmath::kLinearFloor : mw;
    const double ref = 10.0 * std::log10(floored);
    ASSERT_NEAR(got, ref, 1e-12) << "mw=" << mw;
  }
  EXPECT_EQ(vmath::vlinear2db(0.0), vmath::vlinear2db(vmath::kLinearFloor));
  EXPECT_NEAR(vmath::vlinear2db(0.0), -150.0, 1e-12);
}

TEST(VmathTest, ErfcMatchesLibmWithinBudget) {
  // Relative budget (2x^2+8)*2^-53 for x > 0 (the x^2 term is the rounding
  // of -x*x feeding exp), absolute-ish 6e-16 for x <= 0 where erfc ~ 2.
  for (double x : sweep(-30.0, 30.0)) {
    const double got = vmath::verfc(x);
    const double ref = std::erfc(x);
    if (x > 0.0) {
      if (ref == 0.0) {
        EXPECT_EQ(got, 0.0) << "x=" << x;
        continue;
      }
      const double budget = (2.0 * x * x + 8.0) * 0x1p-53;
      ASSERT_LE(std::fabs(got - ref), budget * ref + 5e-324) << "x=" << x;
    } else {
      ASSERT_LE(std::fabs(got - ref), 6e-16 * 2.0) << "x=" << x;
    }
  }
  EXPECT_EQ(vmath::verfc(0.0), 1.0);
}

TEST(VmathTest, Sincos2PiMatchesLibmAbsolutely) {
  for (double u : sweep(0.0, 1.0)) {
    if (u < 0.0) continue;
    double s, c;
    vmath::vsincos2pi(u, s, c);
    // Reference computed through the same "angle in turns" definition.
    const long double a = 2.0L * 3.14159265358979323846264338327950288L *
                          static_cast<long double>(u);
    ASSERT_NEAR(s, static_cast<double>(std::sin(a)), 2.5e-16) << "u=" << u;
    ASSERT_NEAR(c, static_cast<double>(std::cos(a)), 2.5e-16) << "u=" << u;
  }
  double s, c;
  vmath::vsincos2pi(0.0, s, c);
  EXPECT_EQ(s, 0.0);
  EXPECT_EQ(c, 1.0);
}

TEST(VmathTest, NormalPairMatchesScalarComposition) {
  Rng rng{7};
  for (int i = 0; i < 5000; ++i) {
    double u1 = rng.uniform();
    if (u1 <= 0.0) u1 = 0.5;
    const double u2 = rng.uniform();
    double z0, z1;
    vmath::vnormalpair(u1, u2, z0, z1);
    const double radius = std::sqrt(-2.0 * vmath::vlog(u1));
    double s, c;
    vmath::vsincos2pi(u2, s, c);
    EXPECT_EQ(bitsOf(z0), bitsOf(radius * c));
    EXPECT_EQ(bitsOf(z1), bitsOf(radius * s));
  }
}

// --- scalar vs SIMD bit identity over every vector length 0..67 ---

class VmathBitIdentityTest : public ::testing::Test {
 protected:
  void TearDown() override { vmath::setSimdEnabled(true); }

  template <class Fn>
  void checkLengths(Fn&& run, double lo, double hi) {
    Rng rng{99};
    for (std::size_t n = 0; n <= 67; ++n) {
      std::vector<double> x(n), simd(n, 0.0), scalar(n, 0.0);
      for (auto& v : x) v = lo + (hi - lo) * rng.uniform();
      vmath::setSimdEnabled(true);
      run(x.data(), simd.data(), n);
      vmath::setSimdEnabled(false);
      run(x.data(), scalar.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(bitsOf(simd[i]), bitsOf(scalar[i]))
            << "n=" << n << " i=" << i << " x=" << x[i];
      }
    }
  }
};

TEST_F(VmathBitIdentityTest, Exp) {
  checkLengths([](const double* x, double* o, std::size_t n) {
    vmath::vexp(x, o, n);
  }, -745.0, 710.0);
}

TEST_F(VmathBitIdentityTest, Log) {
  checkLengths([](const double* x, double* o, std::size_t n) {
    vmath::vlog(x, o, n);
  }, 1e-300, 1e300);
}

TEST_F(VmathBitIdentityTest, Log10) {
  checkLengths([](const double* x, double* o, std::size_t n) {
    vmath::vlog10(x, o, n);
  }, 1e-15, 1e12);
}

TEST_F(VmathBitIdentityTest, Log1p) {
  checkLengths([](const double* x, double* o, std::size_t n) {
    vmath::vlog1p(x, o, n);
  }, -0.5, 0.5);
}

TEST_F(VmathBitIdentityTest, Pow10Db) {
  checkLengths([](const double* x, double* o, std::size_t n) {
    vmath::vpow10db(x, o, n);
  }, -200.0, 100.0);
}

TEST_F(VmathBitIdentityTest, Linear2Db) {
  checkLengths([](const double* x, double* o, std::size_t n) {
    vmath::vlinear2db(x, o, n);
  }, 0.0, 1e6);
}

TEST_F(VmathBitIdentityTest, Erfc) {
  checkLengths([](const double* x, double* o, std::size_t n) {
    vmath::verfc(x, o, n);
  }, -6.0, 30.0);
}

TEST_F(VmathBitIdentityTest, NormalPair) {
  Rng rng{123};
  for (std::size_t n = 0; n <= 67; ++n) {
    std::vector<double> u1(n), u2(n);
    std::vector<double> a0(n, 0.0), a1(n, 0.0), b0(n, 0.0), b1(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      u1[i] = 1.0 - rng.uniform();  // (0, 1]
      u2[i] = rng.uniform();
    }
    vmath::setSimdEnabled(true);
    vmath::vnormalpair(u1.data(), u2.data(), a0.data(), a1.data(), n);
    vmath::setSimdEnabled(false);
    vmath::vnormalpair(u1.data(), u2.data(), b0.data(), b1.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(bitsOf(a0[i]), bitsOf(b0[i])) << "n=" << n << " i=" << i;
      ASSERT_EQ(bitsOf(a1[i]), bitsOf(b1[i])) << "n=" << n << " i=" << i;
    }
  }
}

TEST_F(VmathBitIdentityTest, ScalarElementMatchesBatch) {
  // The scalar element overloads must equal the batch output elementwise —
  // that is what keeps the scalar link-model reference paths bit-identical
  // to the batched pipeline.
  Rng rng{5};
  std::vector<double> x(67);
  for (auto& v : x) v = -140.0 + 280.0 * rng.uniform();
  std::vector<double> batch(x.size());
  vmath::vpow10db(x.data(), batch.data(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    ASSERT_EQ(bitsOf(vmath::vpow10db(x[i])), bitsOf(batch[i]));
  }
  vmath::verfc(x.data(), batch.data(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    ASSERT_EQ(bitsOf(vmath::verfc(x[i])), bitsOf(batch[i]));
  }
}

TEST(VmathTest, InPlaceAliasingWorks) {
  Rng rng{11};
  std::vector<double> x(37), ref(37);
  for (auto& v : x) v = rng.uniform() * 100.0;
  ref = x;
  std::vector<double> out(37);
  vmath::vlog10(ref.data(), out.data(), ref.size());
  vmath::vlog10(x.data(), x.data(), x.size());  // exact alias
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(bitsOf(x[i]), bitsOf(out[i]));
  }
}

TEST(VmathTest, SimdIsaReportsSomething) {
  const char* isa = vmath::simdIsa();
  ASSERT_NE(isa, nullptr);
  EXPECT_TRUE(std::strcmp(isa, "avx2") == 0 || std::strcmp(isa, "sse2") == 0 ||
              std::strcmp(isa, "neon") == 0 || std::strcmp(isa, "scalar") == 0)
      << isa;
}

}  // namespace
}  // namespace vanet
