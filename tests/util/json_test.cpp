#include "util/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

namespace vanet::json {
namespace {

double reparse(double x) { return parse(num(x)).asDouble(); }

TEST(JsonNumTest, ShortestRoundTripIsExact) {
  for (const double x : {0.0, 1.0, -1.5, 0.1, 1.0 / 3.0, 6.02214076e23,
                         5e-324, std::numeric_limits<double>::max()}) {
    const double back = reparse(x);
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    std::memcpy(&a, &x, sizeof a);
    std::memcpy(&b, &back, sizeof b);
    EXPECT_EQ(a, b) << "value " << x << " rendered as " << num(x);
  }
}

TEST(JsonNumTest, NonFiniteTokensParse) {
  EXPECT_TRUE(std::isinf(reparse(std::numeric_limits<double>::infinity())));
  EXPECT_TRUE(std::isinf(reparse(-std::numeric_limits<double>::infinity())));
  EXPECT_TRUE(std::isnan(reparse(std::numeric_limits<double>::quiet_NaN())));
}

TEST(JsonParseTest, ScalarsAndContainers) {
  const Value v = parse(
      R"({"name":"urban","count":3,"on":true,"off":false,"none":null,)"
      R"("list":[1,2.5,-3],"nested":{"k":"v"}})");
  EXPECT_EQ(v.at("name").asString(), "urban");
  EXPECT_EQ(v.at("count").asInt64(), 3);
  EXPECT_TRUE(v.at("on").asBool());
  EXPECT_FALSE(v.at("off").asBool());
  EXPECT_TRUE(v.at("none").isNull());
  ASSERT_EQ(v.at("list").asArray().size(), 3u);
  EXPECT_DOUBLE_EQ(v.at("list").asArray()[1].asDouble(), 2.5);
  EXPECT_EQ(v.at("list").asArray()[2].asInt64(), -3);
  EXPECT_EQ(v.at("nested").at("k").asString(), "v");
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_THROW(v.at("missing"), std::runtime_error);
}

TEST(JsonParseTest, UInt64KeepsFullPrecision) {
  // 2^64 - 1 is not representable as a double; the raw token must be
  // used for exact integer recovery (master seeds, sample counts).
  const Value v = parse("{\"seed\":18446744073709551615}");
  EXPECT_EQ(v.at("seed").asUInt64(), 18446744073709551615ull);
  EXPECT_THROW(parse("-4").asUInt64(), std::runtime_error);
  EXPECT_EQ(parse("-4").asInt64(), -4);
}

TEST(JsonParseTest, StringEscapesRoundTrip) {
  const std::string original = "a\"b\\c\nd\te\rf\x01g";
  const Value v = parse(quote(original));
  EXPECT_EQ(v.asString(), original);
}

TEST(JsonParseTest, WhitespaceTolerated) {
  const Value v = parse(" {\n \"a\" : [ 1 , 2 ] \t}\n");
  EXPECT_EQ(v.at("a").asArray().size(), 2u);
}

TEST(JsonParseTest, MalformedInputThrows) {
  EXPECT_THROW(parse(""), std::runtime_error);
  EXPECT_THROW(parse("{"), std::runtime_error);
  EXPECT_THROW(parse("{\"a\":}"), std::runtime_error);
  EXPECT_THROW(parse("[1,]"), std::runtime_error);
  EXPECT_THROW(parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW(parse("12 34"), std::runtime_error);  // trailing garbage
  EXPECT_THROW(parse("tru"), std::runtime_error);
}

TEST(JsonParseTest, TypeMismatchThrows) {
  const Value v = parse("{\"a\":1}");
  EXPECT_THROW(v.at("a").asString(), std::runtime_error);
  EXPECT_THROW(v.at("a").asArray(), std::runtime_error);
  EXPECT_THROW(v.asDouble(), std::runtime_error);
}

}  // namespace
}  // namespace vanet::json
