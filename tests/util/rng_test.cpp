#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace vanet {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, ZeroSeedIsNotDegenerate) {
  Rng rng{0};
  std::set<std::uint64_t> values;
  for (int i = 0; i < 100; ++i) {
    values.insert(rng.next());
  }
  EXPECT_GT(values.size(), 95u);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng{7};
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng{7};
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntInclusiveBothEnds) {
  Rng rng{11};
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.uniformInt(2, 5);
    ASSERT_GE(v, 2);
    ASSERT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all of {2,3,4,5} appear
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng{11};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.uniformInt(3, 3), 3);
  }
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng{13};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng{17};
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.015);
}

TEST(RngTest, NormalMoments) {
  Rng rng{19};
  double sum = 0.0;
  double sumSq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(2.0, 3.0);
    sum += x;
    sumSq += x * x;
  }
  const double mean = sum / n;
  const double var = sumSq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.08);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.08);
}

TEST(RngTest, ExponentialMean) {
  Rng rng{23};
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(0.5);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 2.0, 0.08);
}

TEST(RngTest, NamedChildrenAreIndependent) {
  const Rng parent{42};
  Rng a = parent.child("alpha");
  Rng b = parent.child("beta");
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, ChildDerivationIsStable) {
  const Rng parent{42};
  Rng a = parent.child("stream");
  Rng b = parent.child("stream");
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(RngTest, ChildDerivationDoesNotPerturbParent) {
  Rng parent1{42};
  Rng parent2{42};
  (void)parent1.child("x");
  (void)parent1.child("y");
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(parent1.next(), parent2.next());
  }
}

TEST(RngTest, IndexedChildrenDiffer) {
  const Rng parent{42};
  Rng a = parent.child(std::uint64_t{0});
  Rng b = parent.child(std::uint64_t{1});
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, DeriveStreamSeedIsStable) {
  EXPECT_EQ(Rng::deriveStreamSeed(2008, 5), Rng::deriveStreamSeed(2008, 5));
  EXPECT_NE(Rng::deriveStreamSeed(2008, 5), Rng::deriveStreamSeed(2008, 6));
  EXPECT_NE(Rng::deriveStreamSeed(2008, 5), Rng::deriveStreamSeed(2009, 5));
}

TEST(RngTest, DeriveStreamSeedStreamsAreIndependent) {
  Rng a{Rng::deriveStreamSeed(42, 0)};
  Rng b{Rng::deriveStreamSeed(42, 1)};
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, HashIsFnv1aReference) {
  // Reference value for the empty string per FNV-1a spec.
  EXPECT_EQ(Rng::hash(""), 0xcbf29ce484222325ULL);
  EXPECT_NE(Rng::hash("a"), Rng::hash("b"));
}

// Property sweep: uniform() mean stays near 0.5 across many seeds.
class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformMeanNearHalf) {
  Rng rng{GetParam()};
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 1234567ULL,
                                           0xffffffffffffffffULL));

}  // namespace
}  // namespace vanet
